//! Offline stand-in for the subset of `parking_lot` used by this workspace:
//! [`RwLock`], [`Mutex`] and [`Condvar`] wrappers over the `std::sync`
//! primitives with parking_lot's panic-free (non-poisoning)
//! guard-returning API. See `shims/README.md`.

#![warn(missing_docs)]

use std::sync::{self, TryLockError};

/// Read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard (never poisons).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard (never poisons).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Get a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable with `parking_lot`'s `&mut guard` API.
///
/// Like the real crate, [`Condvar::wait`] takes the guard by mutable
/// reference and re-acquires the lock before returning.  Shim caveat
/// (inherited from the `std::sync::Condvar` backend): one `Condvar` must
/// only ever be used with one `Mutex`.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the lock behind `guard` and block until notified,
    /// then re-acquire the lock.  Spurious wakeups are possible, exactly as
    /// with the real crate: callers must re-check their predicate in a loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Unwinding out of `std`'s `wait` (it panics when one condvar is
        // used with two different mutexes) would leave `*guard` logically
        // moved-out and double-drop it during the caller's unwind — so any
        // panic while the guard is taken escalates to an abort instead.
        struct AbortOnUnwind;
        impl Drop for AbortOnUnwind {
            fn drop(&mut self) {
                eprintln!("parking_lot shim: Condvar::wait panicked (one condvar, two mutexes?); aborting");
                std::process::abort();
            }
        }
        // SAFETY: the guard is moved out for the duration of the wait and a
        // valid guard for the same mutex is moved back in before anyone can
        // observe `*guard` again.  Lock poisoning is returned as `Err` and
        // converted below (non-poisoning shim semantics); the only panic
        // path is cut off by the abort bomb above, so the moved-out state
        // is never observable.
        unsafe {
            let taken = std::ptr::read(guard);
            let bomb = AbortOnUnwind;
            let result = self.0.wait(taken);
            std::mem::forget(bomb);
            std::ptr::write(guard, result.unwrap_or_else(|e| e.into_inner()));
        }
    }

    /// Like [`Condvar::wait`], but give up after `timeout`.  Returns a
    /// [`WaitTimeoutResult`] whose [`timed_out`](WaitTimeoutResult::timed_out)
    /// reports whether the wait ended by timeout rather than notification;
    /// either way the lock is re-acquired before returning.  As with
    /// `wait`, spurious wakeups are possible and callers must re-check
    /// their predicate.
    pub fn wait_timeout<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        struct AbortOnUnwind;
        impl Drop for AbortOnUnwind {
            fn drop(&mut self) {
                eprintln!("parking_lot shim: Condvar::wait_timeout panicked (one condvar, two mutexes?); aborting");
                std::process::abort();
            }
        }
        // SAFETY: identical to `wait` — the guard is moved out for the
        // duration of the wait and a valid guard for the same mutex is
        // moved back in before `*guard` is observable again; the only
        // panic path is cut off by the abort bomb.
        unsafe {
            let taken = std::ptr::read(guard);
            let bomb = AbortOnUnwind;
            let (g, timed_out) = match self.0.wait_timeout(taken, timeout) {
                Ok((g, r)) => (g, r.timed_out()),
                Err(e) => {
                    let (g, r) = e.into_inner();
                    (g, r.timed_out())
                }
            };
            std::mem::forget(bomb);
            std::ptr::write(guard, g);
            WaitTimeoutResult(timed_out)
        }
    }

    /// Wake one thread blocked in [`Condvar::wait`].  Always reports `true`
    /// (the `std` backend does not count waiters like the real crate does).
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake every thread blocked in [`Condvar::wait`].  Always reports `0`
    /// (the `std` backend does not count waiters like the real crate does).
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Result of [`Condvar::wait_timeout`], mirroring the real crate's type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed (the
    /// predicate should still be re-checked — a notification and the
    /// timeout can race).
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write_roundtrip() {
        let lock = RwLock::new(1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter_and_reacquires_lock() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready // lock is held again here
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(handle.join().unwrap());
    }

    #[test]
    fn condvar_wait_timeout_times_out_and_reacquires_lock() {
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let mut g = m.lock();
        let t0 = std::time::Instant::now();
        let r = cv.wait_timeout(&mut g, std::time::Duration::from_millis(20));
        assert!(r.timed_out());
        assert!(t0.elapsed() >= std::time::Duration::from_millis(15));
        *g += 1; // lock is held again here
        assert_eq!(*g, 1);
    }

    #[test]
    fn condvar_wait_timeout_observes_notification() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                let r = cv.wait_timeout(&mut ready, std::time::Duration::from_secs(30));
                assert!(!r.timed_out() || *ready);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        handle.join().unwrap();
    }

    #[test]
    fn condvar_notify_one_wakes_exactly_at_least_one() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let p = Arc::clone(&pair);
            handles.push(std::thread::spawn(move || {
                let (m, cv) = &*p;
                let mut n = m.lock();
                while *n == 0 {
                    cv.wait(&mut n);
                }
                *n -= 1;
            }));
        }
        let (m, cv) = &*pair;
        for _ in 0..3 {
            *m.lock() += 1;
            cv.notify_one();
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 0);
    }
}
