//! Offline stand-in for the subset of `parking_lot` used by this workspace:
//! [`RwLock`] and [`Mutex`] wrappers over the `std::sync` primitives with
//! parking_lot's panic-free (non-poisoning) guard-returning API. See
//! `shims/README.md`.

#![warn(missing_docs)]

use std::sync::{self, TryLockError};

/// Read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard (never poisons).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard (never poisons).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Get a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write_roundtrip() {
        let lock = RwLock::new(1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
