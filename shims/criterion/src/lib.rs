//! Offline stand-in for the subset of `criterion` used by this workspace.
//!
//! Implements [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Bencher::iter`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Timing is a simple mean over `sample_size` samples (no outlier
//! analysis, no HTML reports); results are printed one line per benchmark.
//! See `shims/README.md`.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Set the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        // Warm-up: run once so lazy initialisation does not pollute sample 0.
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            f(&mut bencher, input);
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        bencher.samples.clear();
        let deadline = Instant::now() + self.measurement_time;
        while bencher.samples.len() < bencher.sample_size && Instant::now() < deadline {
            f(&mut bencher, input);
        }
        let mean = if bencher.samples.is_empty() {
            Duration::ZERO
        } else {
            bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32
        };
        println!(
            "{}/{}/{}: mean {:?} over {} samples",
            self.name,
            id.function,
            id.parameter,
            mean,
            bencher.samples.len()
        );
        self
    }

    /// Finish the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time one sample of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

/// Define a benchmark group function from a config and target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the `main` function running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut group = c.benchmark_group("shim");
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("noop", 1), &1, |b, _| {
            runs += 1;
            b.iter(|| black_box(2 + 2))
        });
        group.finish();
        assert!(runs >= 1);
    }
}
