//! Offline stand-in for `serde_derive`: the `Serialize` / `Deserialize`
//! derives expand to nothing. The workspace only uses the derives as
//! annotations (no code actually serializes through serde traits), so an
//! empty expansion keeps every `#[derive(Serialize, Deserialize)]` compiling
//! without the real crates. See `shims/README.md`.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
