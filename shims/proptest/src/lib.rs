//! Offline stand-in for the subset of `proptest` used by this workspace.
//!
//! Provides the [`proptest!`] macro, [`Strategy`] implementations for
//! numeric ranges / [`collection::vec`] / [`bool::ANY`], a
//! [`ProptestConfig`] with a case count, and the `prop_assert*` macros.
//! Unlike the real crate there is no shrinking: each test runs
//! `config.cases` deterministic cases (seeded from the test name and the
//! case index) and fails on the first assertion failure, printing the
//! generated inputs via the assertion message. See `shims/README.md`.

#![warn(missing_docs)]

use std::ops::Range;

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic test RNG and helpers.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    /// Deterministic generator (the `rand` shim's SplitMix64 `StdRng`)
    /// used to drive all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seed derived from a test name and a case index, so every
        /// property sees a distinct but reproducible stream.
        pub fn deterministic(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h ^ ((case as u64) << 1 | 1)),
            }
        }

        /// Next pseudo-random 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            self.inner.gen_f64()
        }

        /// Uniform integer in `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// A generator of test inputs (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Generate one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generate a `Vec` of exactly `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over `bool`.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy type of [`ANY`].
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Glob import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Assert a boolean property inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in 0.0f64..10.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..10.0).contains(&y));
        }

        #[test]
        fn vec_strategy_has_exact_len(v in crate::collection::vec(0u64..5, 7)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn bool_any_generates_both_values() {
        use crate::test_runner::TestRng;
        let mut seen = [false; 2];
        for case in 0..64 {
            let mut rng = TestRng::deterministic("bool_any", case);
            seen[crate::Strategy::generate(&crate::bool::ANY, &mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn cases_are_reproducible() {
        use crate::test_runner::TestRng;
        let a: Vec<u64> = (0..4)
            .map(|c| TestRng::deterministic("t", c).next_u64())
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| TestRng::deterministic("t", c).next_u64())
            .collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }
}
