//! Offline stand-in for the subset of `serde` used by this workspace:
//! the `Serialize` / `Deserialize` derive macros (re-exported from the
//! no-op [`serde_derive`] shim) and marker traits of the same names so
//! that generic bounds would still typecheck. See `shims/README.md`.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
