//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace: a deterministic [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`] and a uniform [`distributions::Uniform`]
//! sampler over `f64`.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the few external crates it needs as minimal shims (see `shims/README.md`).
//! The generator is SplitMix64 — not cryptographic, but statistically fine
//! for test-matrix generation and fully reproducible across platforms.

#![warn(missing_docs)]

/// A source of random 64-bit words (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Return the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Convenience extension trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from a small seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Value distributions (subset of `rand::distributions`).
pub mod distributions {
    /// Types that can sample values of `T` from an RNG.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: crate::RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over an `f64` interval.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform {
        low: f64,
        high: f64,
        inclusive: bool,
    }

    impl Uniform {
        /// Uniform over the half-open interval `[low, high)`.
        pub fn new(low: f64, high: f64) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Uniform {
                low,
                high,
                inclusive: false,
            }
        }

        /// Uniform over the closed interval `[low, high]`.
        pub fn new_inclusive(low: f64, high: f64) -> Self {
            assert!(low <= high, "Uniform::new_inclusive requires low <= high");
            Uniform {
                low,
                high,
                inclusive: true,
            }
        }
    }

    impl Distribution<f64> for Uniform {
        fn sample<R: crate::RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            let bits = rng.next_u64() >> 11;
            let unit = if self.inclusive {
                bits as f64 / ((1u64 << 53) - 1) as f64
            } else {
                bits as f64 / (1u64 << 53) as f64
            };
            self.low + (self.high - self.low) * unit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::SeedableRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        use crate::RngCore;
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let open = Uniform::new(f64::MIN_POSITIVE, 1.0);
        let closed = Uniform::new_inclusive(-1.0, 1.0);
        for _ in 0..10_000 {
            let x = open.sample(&mut rng);
            assert!(x > 0.0 && x < 1.0);
            let y = closed.sample(&mut rng);
            assert!((-1.0..=1.0).contains(&y));
        }
    }
}
