//! Offline stand-in for the subset of `crossbeam` used by this workspace:
//! the [`deque`] module of work-stealing double-ended queues (the
//! `crossbeam-deque` re-export of the real crate), which is what the
//! work-stealing executor of `bidiag-runtime` is built on. See
//! `shims/README.md`.
//!
//! The real crate implements the Chase–Lev lock-free deque; this shim keeps
//! the exact same API and end semantics (LIFO owner end, FIFO steal end) over
//! a `Mutex<VecDeque>`.  Critical sections are a single push/pop, so on the
//! task granularities of this workspace (tile kernels of `nb^3` flops) the
//! mutex is never the bottleneck, and the shim stays obviously correct.

#![warn(missing_docs)]

/// Work-stealing double-ended queues (API of `crossbeam::deque`).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// A double-ended queue owned by a single worker thread.
    ///
    /// The owner pushes and pops at one end; [`Stealer`]s obtained from
    /// [`Worker::stealer`] take elements from the opposite end.  Created with
    /// [`Worker::new_lifo`], the owner end behaves like a stack (depth-first
    /// execution order) while thieves see the queue as FIFO (they steal the
    /// oldest element).
    pub struct Worker<T>(Arc<Mutex<VecDeque<T>>>);

    /// A handle for stealing elements from the cold end of a [`Worker`]'s
    /// deque.  Cloneable and shareable across threads.
    pub struct Stealer<T>(Arc<Mutex<VecDeque<T>>>);

    /// Outcome of a steal attempt.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The deque was empty at the time of the attempt.
        Empty,
        /// An element was stolen.
        Success(T),
        /// The attempt lost a race and should be retried.  The mutex-based
        /// shim never returns this; callers written against the real
        /// lock-free crate must still handle it.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen element, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }
    }

    impl<T> Worker<T> {
        /// Create a new deque whose owner end is LIFO (a work-stealing
        /// stack: the owner pops the most recently pushed element).
        pub fn new_lifo() -> Self {
            Worker(Arc::new(Mutex::new(VecDeque::new())))
        }

        /// Push an element on the owner (hot) end.
        pub fn push(&self, value: T) {
            self.0.lock().unwrap().push_back(value);
        }

        /// Pop an element from the owner (hot) end — the most recently
        /// pushed one.
        pub fn pop(&self) -> Option<T> {
            self.0.lock().unwrap().pop_back()
        }

        /// True when the deque currently holds no element.
        pub fn is_empty(&self) -> bool {
            self.0.lock().unwrap().is_empty()
        }

        /// Number of elements currently in the deque.
        pub fn len(&self) -> usize {
            self.0.lock().unwrap().len()
        }

        /// Create a [`Stealer`] taking elements from the cold end.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer(Arc::clone(&self.0))
        }
    }

    impl<T> Stealer<T> {
        /// Steal the oldest element (FIFO end) of the associated deque.
        pub fn steal(&self) -> Steal<T> {
            match self.0.lock().unwrap().pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// True when the deque currently holds no element.
        pub fn is_empty(&self) -> bool {
            self.0.lock().unwrap().is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer(Arc::clone(&self.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Steal, Worker};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn owner_end_is_lifo() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn steal_end_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn concurrent_steals_take_every_element_exactly_once() {
        let w = Worker::new_lifo();
        for i in 0..1000usize {
            w.push(i);
        }
        let sum = AtomicUsize::new(0);
        let count = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = w.stealer();
                let sum = &sum;
                let count = &count;
                scope.spawn(move || {
                    while let Steal::Success(v) = s.steal() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(sum.load(Ordering::Relaxed), 1000 * 999 / 2);
    }

    #[test]
    fn len_and_is_empty_track_content() {
        let w: Worker<u32> = Worker::new_lifo();
        assert!(w.is_empty());
        assert!(w.stealer().is_empty());
        w.push(7);
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }
}
