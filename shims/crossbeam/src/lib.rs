//! Offline stand-in for the subset of `crossbeam` used by this workspace:
//! an unbounded MPMC [`channel`] built on `Mutex<VecDeque>` + `Condvar`.
//! Unlike `std::sync::mpsc`, the [`channel::Receiver`] is cloneable, which
//! is what the work-sharing executor relies on. See `shims/README.md`.

#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// Sending half of an unbounded channel. Cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of an unbounded channel. Cloneable (MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.inner.lock().unwrap().receivers -= 1;
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, failing only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value is available or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.ready.wait(inner).unwrap();
            }
        }

        /// Block for at most `timeout` waiting for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = self.0.ready.wait_timeout(inner, deadline - now).unwrap();
                inner = guard;
                if result.timed_out() && inner.queue.is_empty() {
                    return if inner.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Pop a value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.0.inner.lock().unwrap();
            if let Some(v) = inner.queue.pop_front() {
                Ok(v)
            } else if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_roundtrip() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx2.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_timeout_times_out_then_disconnects() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_handoff() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            handle.join().unwrap();
            assert_eq!(sum, 4950);
        }
    }
}
