//! Offline deterministic fault-injection registry, in the spirit of the
//! `fail` crate (which the container cannot fetch).  See `shims/README.md`.
//!
//! Production code places *named injection points* on its failure-relevant
//! paths by calling [`fire`].  When nothing is armed — the only state a
//! production process ever sees — a fired point costs one relaxed atomic
//! load and returns [`None`].  Robustness tests arm points with a
//! [`FailAction`] to force the error paths that are otherwise impossible
//! to reach deterministically: a kernel that panics mid-DAG, an admission
//! queue that stays full, a dqds segment poisoned with NaN.
//!
//! Two of the actions are executed *inside* [`fire`] ([`FailAction::Panic`]
//! unwinds, [`FailAction::Delay`] sleeps); the other two are returned to
//! the site, which interprets them ([`FailAction::PoisonNan`] corrupts the
//! site's data, [`FailAction::Trigger`] forces the site's guarded failure
//! branch).  Every armed firing is counted, so tests can assert an
//! injection actually happened rather than silently missing its site.
//!
//! The registry is process-global.  Tests that arm points MUST serialize
//! through [`scoped`], which holds a global lock for the guard's lifetime
//! and disarms everything on drop (including on panic), so parallel tests
//! in the same binary never see each other's faults.

#![warn(missing_docs)]

use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// What an armed injection point does when [`fire`]d.
#[derive(Clone, Debug, PartialEq)]
pub enum FailAction {
    /// Panic with the given message (executed inside [`fire`]).
    Panic(String),
    /// Sleep for the given duration (executed inside [`fire`]), then
    /// continue normally.  Lets tests hold work in flight long enough to
    /// observe full queues, deadlines and cancellation windows.
    Delay(Duration),
    /// Returned to the site: poison the site's floating-point data with
    /// NaN so downstream numerics must contain the damage.
    PoisonNan,
    /// Returned to the site: take the site's guarded failure branch (e.g.
    /// "budget exhausted", "rung failed") without any real fault.
    Trigger,
}

struct Registry {
    points: HashMap<String, Point>,
}

struct Point {
    action: FailAction,
    hits: usize,
}

/// Number of armed points, mirrored outside the lock so a disarmed
/// process pays one relaxed load per [`fire`].
static ARMED: AtomicUsize = AtomicUsize::new(0);

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| {
            Mutex::new(Registry {
                points: HashMap::new(),
            })
        })
        .lock()
}

/// Arm the injection point `name` with `action` (re-arming replaces the
/// action and resets the hit counter).  Prefer [`scoped`] in tests.
pub fn arm(name: &str, action: FailAction) {
    let mut reg = registry();
    if reg
        .points
        .insert(name.to_string(), Point { action, hits: 0 })
        .is_none()
    {
        ARMED.fetch_add(1, Ordering::Release);
    }
}

/// Disarm the injection point `name` (no-op when not armed).
pub fn disarm(name: &str) {
    let mut reg = registry();
    if reg.points.remove(name).is_some() {
        ARMED.fetch_sub(1, Ordering::Release);
    }
}

/// Disarm every injection point.
pub fn reset() {
    let mut reg = registry();
    let n = reg.points.len();
    reg.points.clear();
    ARMED.fetch_sub(n, Ordering::Release);
}

/// Number of times the armed point `name` has fired since it was armed
/// (0 when not armed) — lets tests assert an injection actually reached
/// its site.
pub fn hits(name: &str) -> usize {
    registry().points.get(name).map_or(0, |p| p.hits)
}

/// Fire the injection point `name`.
///
/// Disarmed (the production state): one relaxed atomic load, returns
/// [`None`].  Armed: the hit is counted, then [`FailAction::Panic`]
/// panics and [`FailAction::Delay`] sleeps (both return [`None`] to the
/// site — `Delay` after waking); [`FailAction::PoisonNan`] and
/// [`FailAction::Trigger`] are returned for the site to interpret.
pub fn fire(name: &str) -> Option<FailAction> {
    if ARMED.load(Ordering::Acquire) == 0 {
        return None;
    }
    let action = {
        let mut reg = registry();
        let point = reg.points.get_mut(name)?;
        point.hits += 1;
        point.action.clone()
    };
    match action {
        FailAction::Panic(msg) => panic!("failpoint {name}: {msg}"),
        FailAction::Delay(d) => {
            std::thread::sleep(d);
            None
        }
        site_interpreted => Some(site_interpreted),
    }
}

/// Guard returned by [`scoped`]: holds the global fault-test lock and
/// disarms every point when dropped (also on panic/unwind).
pub struct ScopedFaults {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for ScopedFaults {
    fn drop(&mut self) {
        reset();
    }
}

/// Serialize a fault-injection test and arm `points` for its duration.
///
/// Takes a global lock (so concurrent tests in the same binary cannot
/// observe each other's injected faults), resets any stale state, arms
/// the given points, and returns a guard that disarms everything on drop.
pub fn scoped(points: &[(&str, FailAction)]) -> ScopedFaults {
    static SERIAL: OnceLock<Mutex<()>> = OnceLock::new();
    let serial = SERIAL.get_or_init(|| Mutex::new(())).lock();
    reset();
    for (name, action) in points {
        arm(name, action.clone());
    }
    ScopedFaults { _serial: serial }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_points_are_silent_and_free() {
        let _guard = scoped(&[]);
        assert_eq!(fire("nowhere"), None);
        assert_eq!(hits("nowhere"), 0);
    }

    #[test]
    fn site_interpreted_actions_are_returned_and_counted() {
        let _guard = scoped(&[("a", FailAction::PoisonNan), ("b", FailAction::Trigger)]);
        assert_eq!(fire("a"), Some(FailAction::PoisonNan));
        assert_eq!(fire("a"), Some(FailAction::PoisonNan));
        assert_eq!(fire("b"), Some(FailAction::Trigger));
        assert_eq!(fire("other"), None);
        assert_eq!(hits("a"), 2);
        assert_eq!(hits("b"), 1);
    }

    #[test]
    fn panic_action_panics_with_the_message() {
        let _guard = scoped(&[("boom", FailAction::Panic("injected".into()))]);
        let err = std::panic::catch_unwind(|| fire("boom")).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("failpoint boom: injected"), "{msg}");
        assert_eq!(hits("boom"), 1);
    }

    #[test]
    fn delay_action_sleeps_then_continues() {
        let _guard = scoped(&[("slow", FailAction::Delay(Duration::from_millis(30)))]);
        let t0 = std::time::Instant::now();
        assert_eq!(fire("slow"), None);
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn scoped_guard_disarms_on_drop() {
        {
            let _guard = scoped(&[("temp", FailAction::Trigger)]);
            assert_eq!(fire("temp"), Some(FailAction::Trigger));
        }
        let _guard = scoped(&[]);
        assert_eq!(fire("temp"), None);
    }
}
