//! # bidiag-repro
//!
//! Facade crate of the reproduction of *"Bidiagonalization and
//! R-Bidiagonalization: Parallel Tiled Algorithms, Critical Paths and
//! Distributed-Memory Implementation"* (Faverge, Langou, Robert, Dongarra,
//! IPDPS 2017).
//!
//! It re-exports the workspace crates under one roof so that the examples
//! and integration tests (and downstream users) can depend on a single
//! crate:
//!
//! * [`matrix`] — dense/tiled matrices, generators, block-cyclic maps,
//! * [`kernels`] — Householder/Givens tile kernels, band reduction, SVD,
//! * [`svd`] — the singular-value solver subsystem (dqds, spectrum
//!   slicing, bisection oracle) behind the BD2VAL stage,
//! * [`trees`] — FLATTS/FLATTT/GREEDY/AUTO and hierarchical reduction trees,
//! * [`runtime`] — task-graph runtime, threaded executor, cluster simulator,
//! * [`core`] — BIDIAG / R-BIDIAG, critical paths, GE2BND/GE2VAL pipelines,
//! * [`baselines`] — one-stage GEBRD-class baselines and competitor models,
//! * [`obs`] — the observability plane: per-worker span rings, metrics
//!   registry, Chrome-trace/Perfetto export (`BIDIAG_TRACE=path`).
//!
//! ```
//! use bidiag_repro::prelude::*;
//!
//! let (a, sigma) = latms(48, 32, &SpectrumKind::Geometric { cond: 1.0e3 }, 1);
//! let result = ge2val(&a, &Ge2Options::new(8));
//! assert!(singular_values_match(&result.singular_values, &sigma, 1.0e-10));
//! ```

pub use bidiag_baselines as baselines;
pub use bidiag_core as core;
pub use bidiag_kernels as kernels;
pub use bidiag_matrix as matrix;
pub use bidiag_obs as obs;
pub use bidiag_runtime as runtime;
pub use bidiag_svd as svd;
pub use bidiag_trees as trees;

/// Convenient glob import for examples and quick experiments.
pub mod prelude {
    pub use bidiag_core::batch::{
        ge2val_batch, AdmissionPolicy, SessionConfig, SvdJob, SvdSession,
    };
    pub use bidiag_core::cp;
    pub use bidiag_core::drivers::{bidiag_ops, ge2bnd_ops, rbidiag_ops, Algorithm, GenConfig};
    pub use bidiag_core::error::{validate_finite, SvdError};
    pub use bidiag_core::flops;
    pub use bidiag_core::pipeline::{
        ge2bnd, ge2val, try_ge2bnd, try_ge2val, AlgorithmChoice, Ge2Options, DIRECT_CROSSOVER,
    };
    pub use bidiag_kernels::svd::bidiagonal_singular_values;
    pub use bidiag_kernels::{BandMatrix, Bidiagonal, KernelKind};
    pub use bidiag_matrix::checks::{singular_value_error, singular_values_match};
    pub use bidiag_matrix::gen::{latms, random_gaussian, SpectrumKind};
    pub use bidiag_matrix::{BlockCyclic, Matrix, TiledMatrix};
    pub use bidiag_obs::{MetricsRegistry, MetricsSnapshot, ScopedObs, Span};
    pub use bidiag_runtime::{simulate, validate_trace, MachineModel, TaskGraph, TraceValidation};
    pub use bidiag_svd::{
        dqds_singular_values, singular_values_with, singular_values_with_report, Bd2ValOptions,
        SolveReport, SvdSolver,
    };
    pub use bidiag_trees::{HighLevelTree, NamedTree, TreeConfig};
}
