//! Stress tests of the work-stealing executor: randomized layered DAGs must
//! produce results identical to sequential execution at every thread count,
//! and pathological graph shapes must not deadlock even when the thread
//! count far exceeds the hardware parallelism.

use bidiag_runtime::{execute_parallel, execute_sequential, AccessMode, TaskBody, TaskGraph};
use rand::{rngs::StdRng, RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Build a random layered DAG: `layers` layers of up to `width` tasks, each
/// task reading a few random outputs of the previous layer and writing its
/// own key.  Every dependency is expressed through the data-flow keys, so
/// the graph captures all conflicts.
fn random_layered_graph(layers: usize, width: usize, seed: u64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = TaskGraph::new();
    let key = |layer: usize, slot: usize| (layer * width + slot) as u64;
    for layer in 0..layers {
        let count = 1 + (rng.next_u64() as usize) % width;
        for slot in 0..count {
            let mut accesses = vec![(key(layer + 1, slot), AccessMode::Write)];
            if layer > 0 {
                let fanin = 1 + (rng.next_u64() as usize) % 3;
                for _ in 0..fanin {
                    let src = (rng.next_u64() as usize) % width;
                    accesses.push((key(layer, src), AccessMode::Read));
                }
            }
            let weight = 1.0 + (rng.next_u64() % 5) as f64;
            g.add_task(weight, 0, 0, &accesses);
        }
    }
    g
}

/// Run the graph with bodies that fold each task's id into per-task cells
/// using an order-sensitive hash of its predecessors' cells, so any
/// dependency violation or dropped task changes the final digest.
fn run_digest(g: &TaskGraph, threads: Option<usize>) -> Vec<u64> {
    let n = g.len();
    let cells: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
    let bodies: Vec<TaskBody> = (0..n)
        .map(|i| {
            let cells = Arc::clone(&cells);
            let preds: Vec<usize> = g.predecessors(i).to_vec();
            Box::new(move || {
                let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (i as u64);
                for &p in &preds {
                    let v = cells[p].load(Ordering::SeqCst);
                    assert_ne!(v, 0, "task {i} ran before its predecessor {p}");
                    h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(v);
                }
                cells[i].store(h | 1, Ordering::SeqCst);
            }) as TaskBody
        })
        .collect();
    match threads {
        Some(t) => execute_parallel(g, bodies, t),
        None => execute_sequential(g, bodies),
    }
    cells.iter().map(|c| c.load(Ordering::SeqCst)).collect()
}

#[test]
fn random_layered_dags_match_sequential_at_every_thread_count() {
    for seed in [1u64, 7, 42, 1234] {
        let g = random_layered_graph(12, 9, seed);
        let reference = run_digest(&g, None);
        for threads in [1usize, 2, 4, 8] {
            let digest = run_digest(&g, Some(threads));
            assert_eq!(
                digest, reference,
                "seed {seed}, {threads} threads: digest diverged from sequential"
            );
        }
    }
}

#[test]
fn deep_chain_matches_sequential() {
    // A single chain forces full serialization through the idle gate: every
    // completion publishes exactly one successor while other workers sleep.
    let mut g = TaskGraph::new();
    for _ in 0..400 {
        g.add_task(1.0, 0, 0, &[(0, AccessMode::Write)]);
    }
    let reference = run_digest(&g, None);
    for threads in [2usize, 8] {
        assert_eq!(run_digest(&g, Some(threads)), reference);
    }
}

#[test]
fn sink_heavy_graph_does_not_deadlock_under_oversubscription() {
    // Many independent diamonds all draining into one sink: the sink's
    // release is the last publication, and with 32 threads on (possibly)
    // one core, most workers spend the run parked.  The test passes iff it
    // terminates with the right digest.
    let mut g = TaskGraph::new();
    let diamonds = 40u64;
    for d in 0..diamonds {
        let top = 10 * d;
        g.add_task(1.0, 0, 0, &[(top, AccessMode::Write)]);
        g.add_task(
            1.0,
            0,
            0,
            &[(top, AccessMode::Read), (top + 1, AccessMode::Write)],
        );
        g.add_task(
            1.0,
            0,
            0,
            &[(top, AccessMode::Read), (top + 2, AccessMode::Write)],
        );
        g.add_task(
            1.0,
            0,
            0,
            &[
                (top + 1, AccessMode::Read),
                (top + 2, AccessMode::Read),
                (top + 3, AccessMode::Write),
            ],
        );
    }
    let sink_reads: Vec<(u64, AccessMode)> = (0..diamonds)
        .map(|d| (10 * d + 3, AccessMode::Read))
        .chain([(u64::MAX, AccessMode::Write)])
        .collect();
    g.add_task(1.0, 0, 0, &sink_reads);

    let reference = run_digest(&g, None);
    assert_eq!(run_digest(&g, Some(32)), reference);
}

#[test]
fn source_heavy_graph_seeds_every_worker() {
    // More sources than workers: round-robin seeding plus stealing must
    // execute every source exactly once (the digest catches double or
    // missed execution).
    let mut g = TaskGraph::new();
    for i in 0..100u64 {
        g.add_task(1.0, 0, 0, &[(i, AccessMode::Write)]);
    }
    let sink_reads: Vec<(u64, AccessMode)> = (0..100u64)
        .map(|i| (i, AccessMode::Read))
        .chain([(u64::MAX, AccessMode::Write)])
        .collect();
    g.add_task(1.0, 0, 0, &sink_reads);
    let reference = run_digest(&g, None);
    for threads in [3usize, 16] {
        assert_eq!(run_digest(&g, Some(threads)), reference);
    }
}
