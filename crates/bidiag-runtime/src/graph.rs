//! Task graphs with automatic data-flow dependency inference.
//!
//! The paper's implementation relies on the PaRSEC runtime, which derives the
//! task DAG from a symbolic data-flow description.  We obtain the identical
//! DAG by *task insertion*: the algorithm inserts its tasks in a valid
//! sequential order, declaring which data each task reads and writes, and the
//! graph records read-after-write, write-after-read and write-after-write
//! dependencies (the StarPU/QUARK model).  The resulting partial order is the
//! same as the PaRSEC one because both express exactly the data-flow
//! constraints of the sequential algorithm.

use std::collections::HashMap;

/// Identifier of a task inside a [`TaskGraph`].
pub type TaskId = usize;

/// Identifier of a piece of data (a tile, a tau vector, a band...).  The
/// caller chooses the encoding; the graph only uses it as an opaque key.
pub type DataKey = u64;

/// How a task accesses a piece of data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessMode {
    /// The task only reads the data.
    Read,
    /// The task writes (or reads and writes) the data.
    Write,
}

/// Static description of one task.
#[derive(Clone, Debug)]
pub struct TaskNode {
    /// Cost of the task in abstract time units (Table I weights for the tile
    /// kernels).
    pub weight: f64,
    /// Node (process) that executes the task under the owner-computes rule;
    /// `0` in shared memory.
    pub owner: usize,
    /// Free-form tag identifying the kind of task (used for reporting).
    pub tag: u32,
}

/// A directed acyclic graph of tasks with data-flow dependencies.
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    tasks: Vec<TaskNode>,
    successors: Vec<Vec<TaskId>>,
    predecessors: Vec<Vec<TaskId>>,
    last_writer: HashMap<DataKey, TaskId>,
    readers_since_write: HashMap<DataKey, Vec<TaskId>>,
    /// For every task, the data it writes (used by the distributed simulator
    /// to attribute communications).
    writes: Vec<Vec<DataKey>>,
    reads: Vec<Vec<DataKey>>,
}

impl TaskGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the graph has no task.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total weight of all tasks (sequential execution time).
    pub fn total_weight(&self) -> f64 {
        self.tasks.iter().map(|t| t.weight).sum()
    }

    /// Borrow a task descriptor.
    pub fn task(&self, id: TaskId) -> &TaskNode {
        &self.tasks[id]
    }

    /// Successors of a task.
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.successors[id]
    }

    /// Predecessors of a task.
    pub fn predecessors(&self, id: TaskId) -> &[TaskId] {
        &self.predecessors[id]
    }

    /// Data written by a task.
    pub fn written_data(&self, id: TaskId) -> &[DataKey] {
        &self.writes[id]
    }

    /// Data read (but not written) by a task.
    pub fn read_data(&self, id: TaskId) -> &[DataKey] {
        &self.reads[id]
    }

    /// Insert a task.  `accesses` lists every piece of data the task touches
    /// together with the access mode; dependencies on previously inserted
    /// tasks are inferred automatically.
    pub fn add_task(
        &mut self,
        weight: f64,
        owner: usize,
        tag: u32,
        accesses: &[(DataKey, AccessMode)],
    ) -> TaskId {
        let id = self.tasks.len();
        self.tasks.push(TaskNode { weight, owner, tag });
        self.successors.push(Vec::new());
        self.predecessors.push(Vec::new());
        self.writes.push(Vec::new());
        self.reads.push(Vec::new());

        let mut preds: Vec<TaskId> = Vec::new();
        for &(key, mode) in accesses {
            match mode {
                AccessMode::Read => {
                    if let Some(&w) = self.last_writer.get(&key) {
                        preds.push(w);
                    }
                    self.readers_since_write.entry(key).or_default().push(id);
                    self.reads[id].push(key);
                }
                AccessMode::Write => {
                    // WAR on all readers since the last write, WAW/RAW on the
                    // last writer.
                    if let Some(readers) = self.readers_since_write.get(&key) {
                        preds.extend(readers.iter().copied());
                    }
                    if let Some(&w) = self.last_writer.get(&key) {
                        preds.push(w);
                    }
                    self.readers_since_write.insert(key, Vec::new());
                    self.last_writer.insert(key, id);
                    self.writes[id].push(key);
                }
            }
        }
        preds.sort_unstable();
        preds.dedup();
        preds.retain(|&p| p != id);
        for p in preds {
            self.successors[p].push(id);
            self.predecessors[id].push(p);
        }
        id
    }

    /// The last task that wrote `key`, if any.
    pub fn last_writer_of(&self, key: DataKey) -> Option<TaskId> {
        self.last_writer.get(&key).copied()
    }

    /// Length of the critical path (longest weighted path, node weights).
    ///
    /// Task insertion order is a topological order by construction, so a
    /// single forward sweep suffices.
    pub fn critical_path(&self) -> f64 {
        let mut finish = vec![0.0_f64; self.tasks.len()];
        let mut best: f64 = 0.0;
        for id in 0..self.tasks.len() {
            let start = self.predecessors[id]
                .iter()
                .map(|&p| finish[p])
                .fold(0.0_f64, f64::max);
            finish[id] = start + self.tasks[id].weight;
            best = best.max(finish[id]);
        }
        best
    }

    /// Number of tasks on the longest dependent chain (unit weights): the
    /// critical path *by task count*.  This is the quantity the
    /// observability plane's critical-path analyzer reconstructs from a
    /// recorded trace, so [`crate::trace::validate_trace`] can compare a
    /// measurement against the model without depending on kernel weights.
    pub fn longest_chain_tasks(&self) -> usize {
        let n = self.tasks.len();
        let mut depth = vec![0usize; n];
        let mut best = 0usize;
        for id in 0..n {
            let d = self.predecessors[id]
                .iter()
                .map(|&p| depth[p])
                .max()
                .unwrap_or(0)
                + 1;
            depth[id] = d;
            best = best.max(d);
        }
        best
    }

    /// Bottom levels: for each task, the longest weighted path from the task
    /// (inclusive) to any exit.  Used as the scheduling priority, exactly as
    /// the paper's runtime prioritises tasks on the critical path.
    pub fn bottom_levels(&self) -> Vec<f64> {
        let n = self.tasks.len();
        let mut bl = vec![0.0_f64; n];
        for id in (0..n).rev() {
            let succ_max = self.successors[id]
                .iter()
                .map(|&s| bl[s])
                .fold(0.0_f64, f64::max);
            bl[id] = self.tasks[id].weight + succ_max;
        }
        bl
    }

    /// Number of tasks with no predecessor (initially ready tasks).
    pub fn num_sources(&self) -> usize {
        (0..self.len())
            .filter(|&i| self.predecessors[i].is_empty())
            .count()
    }

    /// Maximum number of simultaneously runnable tasks under an ASAP
    /// schedule with unbounded resources (a coarse parallelism metric).
    pub fn max_parallelism(&self) -> usize {
        // Simulate ASAP with unit sampling on event boundaries.
        let n = self.len();
        if n == 0 {
            return 0;
        }
        let mut start = vec![0.0_f64; n];
        let mut finish = vec![0.0_f64; n];
        for id in 0..n {
            let s = self.predecessors[id]
                .iter()
                .map(|&p| finish[p])
                .fold(0.0_f64, f64::max);
            start[id] = s;
            finish[id] = s + self.tasks[id].weight;
        }
        // Sweep events.
        let mut events: Vec<(f64, i32)> = Vec::with_capacity(2 * n);
        for id in 0..n {
            events.push((start[id], 1));
            events.push((finish[id], -1));
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let mut cur = 0i64;
        let mut best = 0i64;
        for (_, d) in events {
            cur += d as i64;
            best = best.max(cur);
        }
        best as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: AccessMode = AccessMode::Read;
    const W: AccessMode = AccessMode::Write;

    #[test]
    fn raw_dependency() {
        let mut g = TaskGraph::new();
        let a = g.add_task(1.0, 0, 0, &[(1, W)]);
        let b = g.add_task(1.0, 0, 0, &[(1, R)]);
        assert_eq!(g.predecessors(b), &[a]);
        assert_eq!(g.successors(a), &[b]);
        assert_eq!(g.critical_path(), 2.0);
    }

    #[test]
    fn independent_reads_run_in_parallel() {
        let mut g = TaskGraph::new();
        let w = g.add_task(1.0, 0, 0, &[(1, W)]);
        let r1 = g.add_task(2.0, 0, 0, &[(1, R), (2, W)]);
        let r2 = g.add_task(3.0, 0, 0, &[(1, R), (3, W)]);
        assert_eq!(g.predecessors(r1), &[w]);
        assert_eq!(g.predecessors(r2), &[w]);
        assert_eq!(g.critical_path(), 4.0);
        assert_eq!(g.max_parallelism(), 2);
    }

    #[test]
    fn war_and_waw_dependencies() {
        let mut g = TaskGraph::new();
        let w1 = g.add_task(1.0, 0, 0, &[(7, W)]);
        let r = g.add_task(1.0, 0, 0, &[(7, R)]);
        let w2 = g.add_task(1.0, 0, 0, &[(7, W)]);
        // w2 must wait for both the reader (WAR) and the first writer (WAW).
        let mut preds = g.predecessors(w2).to_vec();
        preds.sort_unstable();
        assert_eq!(preds, vec![w1, r]);
        assert_eq!(g.critical_path(), 3.0);
    }

    #[test]
    fn duplicate_accesses_do_not_create_duplicate_edges() {
        let mut g = TaskGraph::new();
        let a = g.add_task(1.0, 0, 0, &[(1, W), (2, W)]);
        let b = g.add_task(1.0, 0, 0, &[(1, R), (2, W)]);
        assert_eq!(g.predecessors(b), &[a]);
        assert_eq!(g.successors(a).len(), 1);
    }

    #[test]
    fn chain_critical_path_and_bottom_levels() {
        let mut g = TaskGraph::new();
        let mut prev = None;
        for i in 0..5 {
            let accesses = [(0u64, W)];
            let id = g.add_task((i + 1) as f64, 0, 0, &accesses);
            prev = Some(id);
        }
        let _ = prev;
        assert_eq!(g.critical_path(), 15.0);
        let bl = g.bottom_levels();
        assert_eq!(bl[0], 15.0);
        assert_eq!(bl[4], 5.0);
        assert_eq!(g.num_sources(), 1);
        assert_eq!(g.max_parallelism(), 1);
    }

    #[test]
    fn total_weight_is_sequential_time() {
        let mut g = TaskGraph::new();
        g.add_task(2.0, 0, 0, &[(1, W)]);
        g.add_task(3.0, 0, 0, &[(2, W)]);
        assert_eq!(g.total_weight(), 5.0);
    }
}
