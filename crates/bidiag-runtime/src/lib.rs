//! # bidiag-runtime
//!
//! A task-based runtime substrate reproducing the role of PaRSEC/DPLASMA in
//! the paper:
//!
//! * [`graph::TaskGraph`] — data-flow task graphs built by task insertion
//!   with automatic RAW/WAR/WAW dependency inference,
//! * [`executor`] — a work-stealing, event-driven scheduler executing the
//!   graph on the local machine (shared-memory experiments): per-worker
//!   LIFO deques with random stealing, bottom-level priorities, and a
//!   condition-variable idle protocol with no timed polling,
//! * [`pool::TaskPool`] — the same scheduler made persistent: long-lived
//!   workers serving a *stream* of independent task graphs (the batched
//!   SVD session of `bidiag-core` is built on it), parked on the idle
//!   gate between submissions,
//! * [`sim`] — a deterministic list-scheduling simulator with per-node core
//!   pools and an `alpha/beta` communication model, used for critical-path
//!   measurements and for the distributed-memory experiments that the paper
//!   runs on a 25-node cluster.
//!
//! # Scheduling invariants
//!
//! The executor may run independent tasks in any interleaving, yet every
//! algorithm built on it is deterministic: the [`graph::TaskGraph`] encodes
//! *all* data conflicts of the sequential algorithm as edges (reads and
//! writes are declared per task, and RAW/WAR/WAW pairs become
//! dependencies), so any topological execution applies exactly the same
//! kernels to exactly the same operand values as the sequential order.
//! Floating-point results are therefore bitwise identical across thread
//! counts and schedules — the property the randomized stress tests in
//! `tests/scheduler_stress.rs` exercise.  See the [`executor`] module docs
//! for the steal protocol and its exclusivity guarantees.

#![warn(missing_docs)]

pub mod executor;
pub mod graph;
pub mod pool;
pub mod sim;
pub mod trace;

pub use executor::{
    execute_parallel, execute_parallel_with, execute_sequential, TaskBody, TaskBodyWith,
};
pub use graph::{AccessMode, DataKey, TaskGraph, TaskId, TaskNode};
pub use pool::{JobError, JobHandle, PoolConfig, SubmitError, TaskPool};
pub use sim::{critical_path_via_sim, simulate, MachineModel, SimResult};
pub use trace::{validate_trace, TraceValidation};
