//! # bidiag-runtime
//!
//! A task-based runtime substrate reproducing the role of PaRSEC/DPLASMA in
//! the paper:
//!
//! * [`graph::TaskGraph`] — data-flow task graphs built by task insertion
//!   with automatic RAW/WAR/WAW dependency inference,
//! * [`executor`] — a multi-threaded work queue executing the graph on the
//!   local machine (shared-memory experiments),
//! * [`sim`] — a deterministic list-scheduling simulator with per-node core
//!   pools and an `alpha/beta` communication model, used for critical-path
//!   measurements and for the distributed-memory experiments that the paper
//!   runs on a 25-node cluster.

#![warn(missing_docs)]

pub mod executor;
pub mod graph;
pub mod sim;

pub use executor::{execute_parallel, execute_sequential, TaskBody};
pub use graph::{AccessMode, DataKey, TaskGraph, TaskId, TaskNode};
pub use sim::{critical_path_via_sim, simulate, MachineModel, SimResult};
