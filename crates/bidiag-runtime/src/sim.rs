//! Machine-model simulation of task graphs.
//!
//! Two uses in the reproduction:
//!
//! * **bounded-resource shared memory** — list-schedule the DAG on `c` cores
//!   to estimate parallel execution time and GFlop/s (Figure 2 trends),
//! * **distributed memory** — list-schedule on an `N`-node cluster with
//!   `c` cores per node, owner-computes task placement (2D block cyclic) and
//!   an `alpha + size * beta` communication cost for every dependency that
//!   crosses a node boundary (Figures 3 and 4 trends).
//!
//! The simulator is deterministic: tasks are started in order of data
//! availability, ties broken by the longest path to an exit (bottom level),
//! which mirrors the critical-path-first priority used by the DPLASMA
//! implementation.

use crate::graph::{TaskGraph, TaskId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Description of the simulated machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineModel {
    /// Number of nodes (processes).
    pub nodes: usize,
    /// Cores per node; `usize::MAX` means unbounded (critical-path mode).
    pub cores_per_node: usize,
    /// Time of one abstract weight unit on one core (seconds per unit).  The
    /// tile kernels use Table I weights, i.e. one unit is `nb^3/3` flops.
    pub time_per_weight_unit: f64,
    /// Fixed latency of one inter-node data transfer (seconds).
    pub comm_latency: f64,
    /// Per-transfer serialized time of moving one tile between nodes
    /// (seconds); roughly `tile_bytes / bandwidth`.
    pub comm_tile_time: f64,
}

impl MachineModel {
    /// Unbounded resources, no communication: the makespan equals the
    /// critical path length (in weight units when `time_per_weight_unit = 1`).
    pub fn unbounded() -> Self {
        Self {
            nodes: 1,
            cores_per_node: usize::MAX,
            time_per_weight_unit: 1.0,
            comm_latency: 0.0,
            comm_tile_time: 0.0,
        }
    }

    /// A single shared-memory node with `cores` cores, unit weight time.
    pub fn shared_memory(cores: usize) -> Self {
        Self {
            nodes: 1,
            cores_per_node: cores,
            time_per_weight_unit: 1.0,
            comm_latency: 0.0,
            comm_tile_time: 0.0,
        }
    }

    /// A cluster of `nodes` nodes with `cores` cores each.
    pub fn cluster(
        nodes: usize,
        cores: usize,
        time_per_weight_unit: f64,
        comm_latency: f64,
        comm_tile_time: f64,
    ) -> Self {
        Self {
            nodes,
            cores_per_node: cores,
            time_per_weight_unit,
            comm_latency,
            comm_tile_time,
        }
    }

    /// Calibrate the model from hardware-like characteristics: per-core
    /// GFlop/s, tile size `nb`, network bandwidth (GB/s) and latency (s).
    ///
    /// The paper's platform is 24-core Haswell nodes at ~37 GFlop/s per core
    /// with a 40 Gb/s InfiniBand network.
    pub fn calibrated(
        nodes: usize,
        cores: usize,
        core_gflops: f64,
        nb: usize,
        net_gbytes_per_s: f64,
        latency: f64,
    ) -> Self {
        let unit_flops = (nb as f64).powi(3) / 3.0;
        let time_per_weight_unit = unit_flops / (core_gflops * 1.0e9);
        let tile_bytes = (nb * nb * 8) as f64;
        let comm_tile_time = tile_bytes / (net_gbytes_per_s * 1.0e9);
        Self {
            nodes,
            cores_per_node: cores,
            time_per_weight_unit,
            comm_latency: latency,
            comm_tile_time,
        }
    }
}

/// Result of a simulation.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Total simulated execution time (same unit as the machine model times).
    pub makespan: f64,
    /// Per-task finish times (same order as the task ids).
    pub finish_times: Vec<f64>,
    /// Number of inter-node transfers charged.
    pub messages: usize,
    /// Sum of per-core busy time divided by `makespan * total cores`
    /// (parallel efficiency of the schedule), `NaN` for unbounded cores.
    pub efficiency: f64,
}

/// Simulate the execution of `graph` on `machine`.
pub fn simulate(graph: &TaskGraph, machine: &MachineModel) -> SimResult {
    let n = graph.len();
    if n == 0 {
        return SimResult {
            makespan: 0.0,
            finish_times: Vec::new(),
            messages: 0,
            efficiency: 1.0,
        };
    }
    let unbounded = machine.cores_per_node == usize::MAX;
    let bl = graph.bottom_levels();

    // Remaining predecessor counts and per-task data-ready times.
    let mut remaining: Vec<usize> = (0..n).map(|i| graph.predecessors(i).len()).collect();
    let mut data_ready = vec![0.0_f64; n];
    let mut finish = vec![f64::NAN; n];
    let mut messages = 0usize;

    // Ready heap ordered by (ready time, -bottom level, id).
    #[derive(PartialEq)]
    struct Ready {
        time: f64,
        priority: f64,
        id: TaskId,
    }
    impl Eq for Ready {}
    impl PartialOrd for Ready {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Ready {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // BinaryHeap is a max-heap: invert time (earlier first), then take
            // larger priority first, then smaller id.
            other
                .time
                .partial_cmp(&self.time)
                .unwrap()
                .then(self.priority.partial_cmp(&other.priority).unwrap())
                .then(other.id.cmp(&self.id))
        }
    }

    let mut ready: BinaryHeap<Ready> = BinaryHeap::new();
    for id in 0..n {
        if remaining[id] == 0 {
            ready.push(Ready {
                time: 0.0,
                priority: bl[id],
                id,
            });
        }
    }

    // Per-node min-heaps of core-free times.
    let mut cores: Vec<BinaryHeap<Reverse<OrderedF64>>> = Vec::new();
    if !unbounded {
        for _ in 0..machine.nodes.max(1) {
            let mut h = BinaryHeap::new();
            for _ in 0..machine.cores_per_node {
                h.push(Reverse(OrderedF64(0.0)));
            }
            cores.push(h);
        }
    }
    let mut busy_time = 0.0_f64;
    let mut makespan = 0.0_f64;

    while let Some(Ready { time, id, .. }) = ready.pop() {
        let exec = graph.task(id).weight * machine.time_per_weight_unit;
        let node = if machine.nodes <= 1 {
            0
        } else {
            graph.task(id).owner % machine.nodes
        };
        let start = if unbounded {
            time
        } else {
            let Reverse(OrderedF64(core_free)) =
                cores[node].pop().expect("node has at least one core");
            let s = time.max(core_free);
            cores[node].push(Reverse(OrderedF64(s + exec)));
            s
        };
        let f = start + exec;
        finish[id] = f;
        busy_time += exec;
        makespan = makespan.max(f);

        for &succ in graph.successors(id) {
            // Communication cost if the successor lives on another node.
            let succ_node = if machine.nodes <= 1 {
                0
            } else {
                graph.task(succ).owner % machine.nodes
            };
            let mut avail = f;
            if succ_node != node && machine.nodes > 1 {
                avail += machine.comm_latency + machine.comm_tile_time;
                messages += 1;
            }
            if avail > data_ready[succ] {
                data_ready[succ] = avail;
            }
            remaining[succ] -= 1;
            if remaining[succ] == 0 {
                ready.push(Ready {
                    time: data_ready[succ],
                    priority: bl[succ],
                    id: succ,
                });
            }
        }
    }

    let efficiency = if unbounded {
        f64::NAN
    } else {
        let total_cores = (machine.nodes.max(1) * machine.cores_per_node) as f64;
        busy_time / (makespan.max(f64::MIN_POSITIVE) * total_cores)
    };
    SimResult {
        makespan,
        finish_times: finish,
        messages,
        efficiency,
    }
}

/// Convenience: critical path of the graph through the simulator (must agree
/// with [`TaskGraph::critical_path`]).
pub fn critical_path_via_sim(graph: &TaskGraph) -> f64 {
    simulate(graph, &MachineModel::unbounded()).makespan
}

/// Total-order float wrapper for use inside heaps (simulation times are
/// always finite).
#[derive(PartialEq, PartialOrd, Clone, Copy, Debug)]
struct OrderedF64(f64);
impl Eq for OrderedF64 {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AccessMode::{Read, Write};

    /// Diamond: a -> (b, c) -> d, unit weights.
    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new();
        g.add_task(1.0, 0, 0, &[(0, Write)]);
        g.add_task(1.0, 0, 0, &[(0, Read), (1, Write)]);
        g.add_task(1.0, 0, 0, &[(0, Read), (2, Write)]);
        g.add_task(1.0, 0, 0, &[(1, Read), (2, Read), (3, Write)]);
        g
    }

    #[test]
    fn unbounded_matches_critical_path() {
        let g = diamond();
        assert_eq!(g.critical_path(), 3.0);
        assert_eq!(critical_path_via_sim(&g), 3.0);
    }

    #[test]
    fn one_core_matches_sequential_time() {
        let g = diamond();
        let r = simulate(&g, &MachineModel::shared_memory(1));
        assert_eq!(r.makespan, g.total_weight());
        assert!((r.efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_cores_exploit_the_diamond() {
        let g = diamond();
        let r = simulate(&g, &MachineModel::shared_memory(2));
        assert_eq!(r.makespan, 3.0);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn communication_is_charged_across_nodes() {
        let mut g = TaskGraph::new();
        // Task on node 0 feeding a task on node 1.
        g.add_task(1.0, 0, 0, &[(0, Write)]);
        g.add_task(1.0, 1, 0, &[(0, Read), (1, Write)]);
        let machine = MachineModel::cluster(2, 1, 1.0, 0.5, 0.25);
        let r = simulate(&g, &machine);
        assert_eq!(r.messages, 1);
        assert!((r.makespan - (1.0 + 0.5 + 0.25 + 1.0)).abs() < 1e-12);

        // Same graph on a single node: no communication.
        let r1 = simulate(&g, &MachineModel::shared_memory(1));
        assert_eq!(r1.messages, 0);
        assert_eq!(r1.makespan, 2.0);
    }

    #[test]
    fn makespan_monotone_in_core_count() {
        // A wide fork-join graph.
        let mut g = TaskGraph::new();
        g.add_task(1.0, 0, 0, &[(0, Write)]);
        for i in 0..16 {
            g.add_task(1.0, 0, 0, &[(0, Read), (10 + i, Write)]);
        }
        let accesses: Vec<_> = (0..16)
            .map(|i| (10 + i as u64, Read))
            .chain([(100u64, Write)])
            .collect();
        g.add_task(1.0, 0, 0, &accesses);

        let mut prev = f64::INFINITY;
        for cores in [1usize, 2, 4, 8, 16, 32] {
            let r = simulate(&g, &MachineModel::shared_memory(cores));
            assert!(
                r.makespan <= prev + 1e-12,
                "makespan increased with more cores"
            );
            prev = r.makespan;
        }
        // With >= 16 cores the makespan equals the critical path.
        assert_eq!(prev, g.critical_path());
    }

    #[test]
    fn calibrated_model_units() {
        let m = MachineModel::calibrated(4, 24, 37.0, 160, 5.0, 1.0e-6);
        // One weight unit = 160^3/3 flops at 37 GFlop/s.
        let expected = (160.0_f64.powi(3) / 3.0) / 37.0e9;
        assert!((m.time_per_weight_unit - expected).abs() < 1e-18);
        assert!(m.comm_tile_time > 0.0);
    }
}
