//! A *persistent* work-stealing pool: the executor's scheduler re-armed for
//! a stream of independent task graphs instead of one graph per thread team.
//!
//! [`crate::execute_parallel_with`] spawns its workers, runs one graph, and
//! joins — the right shape for one big factorization, but pure overhead when
//! serving millions of small problems (the batched-SVD scenario of the
//! ROADMAP).  [`TaskPool`] keeps the same scheduling protocol — per-worker
//! LIFO deques, random stealing, bottom-level priorities, work-first
//! handoff, and the condition-variable [`IdleGate`](crate::executor) — but
//! makes the workers long-lived:
//!
//! * **Submissions, not teams.**  [`TaskPool::submit`] packages a
//!   [`TaskGraph`] plus its bodies into an [`Arc`]'d submission and seeds
//!   its source tasks into a shared injector queue.  Deque items are
//!   `(submission, task id)` pairs, so tasks of *different* submissions
//!   interleave freely on the same deques — workers never idle while any
//!   submitted problem has ready tasks (inter-problem parallelism).
//! * **Per-worker, per-lifetime scratch.**  Each worker owns one scratch
//!   value created by the pool's `init` closure at spawn time and lends it
//!   to every body it ever runs, across all submissions — allocation reuse
//!   spans the pool's lifetime, not a single graph.
//! * **Idle = parked.**  Between submissions every worker blocks on the
//!   idle gate; a parked pool consumes no CPU until the next `submit`
//!   publishes work.
//! * **Per-submission completion.**  Each submission counts down its own
//!   remaining tasks and signals its own condition variable;
//!   [`JobHandle::wait`] blocks on that, not on the pool.  A body panic is
//!   caught, the submission is flagged failed (remaining bodies of *that*
//!   submission are skipped, its graph still drains so counters stay
//!   consistent), and the panic payload is re-thrown from `wait` — other
//!   submissions and the pool itself are unaffected.
//!
//! The once-cell body-slot soundness argument of the executor carries over
//! verbatim: a task id of a given submission becomes ready exactly once,
//! is claimed exactly once (deque and injector ends are mutually
//! exclusive), and the claim is ordered after the slot write by the
//! injector/deque mutex.
//!
//! Dropping the pool closes the gate; each worker drains every task it can
//! still find (its own deque, the injector, every victim) and exits, so no
//! submitted work is abandoned — the work-first handoff guarantees the
//! chain a worker is executing stays its own, and anything it releases
//! lands on its own deque, which it drains before exiting.

use crate::executor::{BodySlots, IdleGate, TaskBodyWith};
use crate::graph::{TaskGraph, TaskId};
use crossbeam::deque::{Steal, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One submitted task graph with all the scheduler state it travels with.
struct Submission<S> {
    graph: TaskGraph,
    /// Bottom levels, the intra-submission scheduling priority.
    priority: Vec<f64>,
    /// Remaining-predecessor counters; the worker that drops one to zero
    /// owns the publication of that task.
    remaining_preds: Vec<AtomicUsize>,
    /// Countdown of unfinished tasks of this submission.
    remaining_tasks: AtomicUsize,
    slots: BodySlots<S>,
    /// Set when a body of this submission panicked: the remaining bodies
    /// of the submission are skipped (its graph still drains).
    failed: AtomicBool,
    done: Mutex<JobState>,
    done_cv: Condvar,
}

struct JobState {
    finished: bool,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// A deque/injector item: one ready task of one submission.
type PoolItem<S> = (Arc<Submission<S>>, TaskId);

/// Completion handle of one [`TaskPool::submit`] call.
///
/// Detaching (dropping without [`wait`](JobHandle::wait)) is allowed: the
/// submission keeps itself alive through the `Arc`s on the deques and runs
/// to completion regardless.
#[must_use = "dropping the handle detaches the job; call wait() to block on completion"]
pub struct JobHandle<S> {
    sub: Arc<Submission<S>>,
}

impl<S> JobHandle<S> {
    /// Block until every task of the submission has completed.
    ///
    /// If a task body panicked, the first panic payload is re-thrown here
    /// (mirroring what `thread::scope` does for the one-shot executor).
    pub fn wait(self) {
        let mut st = self.sub.done.lock();
        while !st.finished {
            self.sub.done_cv.wait(&mut st);
        }
        let panic = st.panic.take();
        drop(st);
        if let Some(p) = panic {
            resume_unwind(p);
        }
    }

    /// True once every task of the submission has completed (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.sub.done.lock().finished
    }
}

/// State shared by every worker of the pool.
struct PoolShared<S> {
    /// Overflow/entry queue: `submit` seeds source tasks here (callers do
    /// not own a deque); workers pull from it when their deque drains.
    injector: Mutex<VecDeque<PoolItem<S>>>,
    stealers: Vec<Stealer<PoolItem<S>>>,
    gate: IdleGate,
}

impl<S> PoolShared<S> {
    /// Run `id` of `sub`, release its successors, and return the
    /// highest-priority newly-ready successor for direct execution
    /// (work-first handoff) — the pool twin of the executor's `run_task`.
    fn run_item(
        &self,
        sub: &Arc<Submission<S>>,
        id: TaskId,
        local: &Worker<PoolItem<S>>,
        scratch: &mut S,
    ) -> Option<TaskId> {
        if !sub.failed.load(Ordering::Acquire) {
            let body = sub.slots.take(id);
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| body(scratch))) {
                sub.failed.store(true, Ordering::Release);
                let mut st = sub.done.lock();
                if st.panic.is_none() {
                    st.panic = Some(p);
                }
            }
        }

        let mut ready: Vec<TaskId> = Vec::new();
        for &succ in sub.graph.successors(id) {
            if sub.remaining_preds[succ].fetch_sub(1, Ordering::AcqRel) == 1 {
                ready.push(succ);
            }
        }
        ready.sort_by(|&a, &b| {
            sub.priority[a]
                .partial_cmp(&sub.priority[b])
                .expect("bottom levels are finite")
        });
        let next = ready.pop();
        if !ready.is_empty() {
            for t in ready {
                local.push((Arc::clone(sub), t));
            }
            self.gate.publish();
        }

        if sub.remaining_tasks.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut st = sub.done.lock();
            st.finished = true;
            sub.done_cv.notify_all();
        }
        next
    }

    /// One full scan: local deque, then the injector, then every victim in
    /// a pseudo-random order.
    fn find_item(
        &self,
        me: usize,
        local: &Worker<PoolItem<S>>,
        rng: &mut u64,
    ) -> Option<PoolItem<S>> {
        if let Some(item) = local.pop() {
            return Some(item);
        }
        if let Some(item) = self.injector.lock().pop_front() {
            return Some(item);
        }
        let n = self.stealers.len();
        if n <= 1 {
            return None;
        }
        let start = (crate::executor::xorshift(rng) as usize) % n;
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == me {
                continue;
            }
            loop {
                match self.stealers[victim].steal() {
                    Steal::Success(item) => return Some(item),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }

    fn worker_loop(&self, me: usize, local: Worker<PoolItem<S>>, scratch: &mut S) {
        let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ ((me as u64 + 1) << 17);
        let mut seen = 0u64;
        loop {
            while let Some((sub, id)) = self.find_item(me, &local, &mut rng) {
                let mut current = id;
                while let Some(next) = self.run_item(&sub, current, &local, scratch) {
                    current = next;
                }
            }
            if !self.gate.park(&mut seen) {
                break;
            }
        }
        // Shutdown drain: the gate is closed, but submissions may still
        // have runnable tasks.  Keep executing everything findable; chains
        // this worker releases land on its own deque and are drained here
        // too, so no submission is left incomplete.
        while let Some((sub, id)) = self.find_item(me, &local, &mut rng) {
            let mut current = id;
            while let Some(next) = self.run_item(&sub, current, &local, scratch) {
                current = next;
            }
        }
    }
}

/// A persistent work-stealing thread pool executing a stream of
/// [`TaskGraph`] submissions — see the [module docs](self).
///
/// `S` is the per-worker scratch type: one value per worker thread, created
/// once at spawn time and lent to every task body the worker ever runs.
///
/// # Examples
///
/// ```
/// use bidiag_runtime::{AccessMode, TaskBodyWith, TaskGraph, TaskPool};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let pool: TaskPool<()> = TaskPool::new(4, || ());
/// let acc = Arc::new(AtomicU64::new(0));
/// let handles: Vec<_> = (0..8u64)
///     .map(|p| {
///         let mut g = TaskGraph::new();
///         g.add_task(1.0, 0, 0, &[(p, AccessMode::Write)]);
///         g.add_task(1.0, 0, 0, &[(p, AccessMode::Write)]);
///         let bodies: Vec<TaskBodyWith<()>> = (0..2)
///             .map(|_| {
///                 let acc = Arc::clone(&acc);
///                 Box::new(move |_: &mut ()| {
///                     acc.fetch_add(1, Ordering::SeqCst);
///                 }) as TaskBodyWith<()>
///             })
///             .collect();
///         pool.submit(g, bodies)
///     })
///     .collect();
/// for h in handles {
///     h.wait();
/// }
/// assert_eq!(acc.load(Ordering::SeqCst), 16);
/// ```
pub struct TaskPool<S: 'static> {
    shared: Arc<PoolShared<S>>,
    threads: usize,
    handles: Vec<JoinHandle<()>>,
}

impl<S: Send + 'static> TaskPool<S> {
    /// Spawn a pool of `threads` workers (at least one), each owning one
    /// scratch value created by `init` on that worker's thread.
    pub fn new(threads: usize, init: impl Fn() -> S + Send + Sync + 'static) -> Self {
        let threads = threads.max(1);
        let workers: Vec<Worker<PoolItem<S>>> = (0..threads).map(|_| Worker::new_lifo()).collect();
        let shared = Arc::new(PoolShared {
            injector: Mutex::new(VecDeque::new()),
            stealers: workers.iter().map(Worker::stealer).collect(),
            gate: IdleGate::new(),
        });
        let init = Arc::new(init);
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(me, local)| {
                let shared = Arc::clone(&shared);
                let init = Arc::clone(&init);
                std::thread::spawn(move || {
                    let mut scratch = init();
                    shared.worker_loop(me, local, &mut scratch);
                })
            })
            .collect();
        TaskPool {
            shared,
            threads,
            handles,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submit one task graph for execution; `bodies[i]` runs exactly once
    /// for task `i`, on some worker, with that worker's scratch.
    ///
    /// Returns immediately; block on the returned handle's
    /// [`wait`](JobHandle::wait) for completion.  Panics if
    /// `bodies.len() != graph.len()`.
    pub fn submit(&self, graph: TaskGraph, bodies: Vec<TaskBodyWith<S>>) -> JobHandle<S> {
        let n = graph.len();
        assert_eq!(bodies.len(), n, "one body per task is required");
        let sub = Arc::new(Submission {
            priority: graph.bottom_levels(),
            remaining_preds: (0..n)
                .map(|i| AtomicUsize::new(graph.predecessors(i).len()))
                .collect(),
            remaining_tasks: AtomicUsize::new(n),
            slots: BodySlots::new(bodies),
            failed: AtomicBool::new(false),
            done: Mutex::new(JobState {
                finished: n == 0,
                panic: None,
            }),
            done_cv: Condvar::new(),
            graph,
        });

        if n > 0 {
            // Seed the sources highest bottom level first: the injector is
            // FIFO, so workers pull the most critical source first.
            let mut sources: Vec<TaskId> = (0..n)
                .filter(|&i| sub.graph.predecessors(i).is_empty())
                .collect();
            sources.sort_by(|&a, &b| {
                sub.priority[b]
                    .partial_cmp(&sub.priority[a])
                    .expect("bottom levels are finite")
            });
            let mut inj = self.shared.injector.lock();
            for id in sources {
                inj.push_back((Arc::clone(&sub), id));
            }
            drop(inj);
            self.shared.gate.publish();
        }
        JobHandle { sub }
    }
}

impl<S: 'static> Drop for TaskPool<S> {
    fn drop(&mut self) {
        self.shared.gate.finish();
        for h in self.handles.drain(..) {
            // A worker thread can only panic through a scheduler bug (body
            // panics are caught per submission); surface it.
            if let Err(p) = h.join() {
                if !std::thread::panicking() {
                    resume_unwind(p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AccessMode::{Read, Write};
    use std::sync::atomic::AtomicU64;

    fn counting_bodies(n: usize, acc: &Arc<AtomicU64>) -> Vec<TaskBodyWith<u64>> {
        (0..n)
            .map(|_| {
                let acc = Arc::clone(acc);
                Box::new(move |s: &mut u64| {
                    *s += 1; // exercise the per-worker scratch
                    acc.fetch_add(1, Ordering::SeqCst);
                }) as TaskBodyWith<u64>
            })
            .collect()
    }

    #[test]
    fn submissions_respect_dependencies() {
        let pool: TaskPool<u64> = TaskPool::new(4, || 0);
        let mut g = TaskGraph::new();
        g.add_task(1.0, 0, 0, &[(9, Write)]);
        for c in 0..3u64 {
            for s in 0..20u64 {
                if s == 0 {
                    g.add_task(1.0, 0, 0, &[(9, Read), (c, Write)]);
                } else {
                    g.add_task(1.0, 0, 0, &[(c, Write)]);
                }
            }
        }
        let n = g.len();
        let stamp = Arc::new(AtomicU64::new(1));
        let order: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let bodies: Vec<TaskBodyWith<u64>> = (0..n)
            .map(|i| {
                let stamp = Arc::clone(&stamp);
                let order = Arc::clone(&order);
                Box::new(move |_: &mut u64| {
                    order[i].store(stamp.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
                }) as TaskBodyWith<u64>
            })
            .collect();
        let graph = g.clone();
        pool.submit(g, bodies).wait();
        for id in 0..n {
            let t = order[id].load(Ordering::SeqCst);
            assert!(t > 0, "task {id} never ran");
            for &p in graph.predecessors(id) {
                assert!(
                    order[p].load(Ordering::SeqCst) < t,
                    "task {id} ran before its predecessor {p}"
                );
            }
        }
    }

    #[test]
    fn many_interleaved_submissions_all_complete() {
        let pool: TaskPool<u64> = TaskPool::new(4, || 0);
        let acc = Arc::new(AtomicU64::new(0));
        let mut expected = 0u64;
        let handles: Vec<JobHandle<u64>> = (0..50u64)
            .map(|p| {
                let len = 1 + (p % 7) as usize;
                expected += len as u64;
                let mut g = TaskGraph::new();
                for _ in 0..len {
                    g.add_task(1.0, 0, 0, &[(p, Write)]);
                }
                pool.submit(g, counting_bodies(len, &acc))
            })
            .collect();
        for h in handles {
            h.wait();
        }
        assert_eq!(acc.load(Ordering::SeqCst), expected);
    }

    #[test]
    fn empty_submission_finishes_immediately() {
        let pool: TaskPool<u64> = TaskPool::new(2, || 0);
        let h = pool.submit(TaskGraph::new(), Vec::new());
        assert!(h.is_finished());
        h.wait();
    }

    #[test]
    fn panic_in_one_submission_does_not_poison_the_pool() {
        let pool: TaskPool<u64> = TaskPool::new(4, || 0);
        let mut g = TaskGraph::new();
        g.add_task(1.0, 0, 0, &[(1, Write)]);
        g.add_task(1.0, 0, 0, &[(1, Write)]); // skipped after the panic
        let bodies: Vec<TaskBodyWith<u64>> = (0..2)
            .map(|i| {
                Box::new(move |_: &mut u64| {
                    if i == 0 {
                        panic!("kernel failure");
                    }
                }) as TaskBodyWith<u64>
            })
            .collect();
        let bad = pool.submit(g, bodies);
        let err = catch_unwind(AssertUnwindSafe(|| bad.wait()));
        assert!(err.is_err(), "the body panic must reach wait()");

        // The pool still serves fresh submissions afterwards.
        let acc = Arc::new(AtomicU64::new(0));
        let mut g = TaskGraph::new();
        for _ in 0..10 {
            g.add_task(1.0, 0, 0, &[(2, Write)]);
        }
        pool.submit(g, counting_bodies(10, &acc)).wait();
        assert_eq!(acc.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn submit_from_many_threads_is_safe() {
        let pool: Arc<TaskPool<u64>> = Arc::new(TaskPool::new(3, || 0));
        let acc = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let pool = Arc::clone(&pool);
                let acc = Arc::clone(&acc);
                scope.spawn(move || {
                    for p in 0..20u64 {
                        let mut g = TaskGraph::new();
                        g.add_task(1.0, 0, 0, &[(p, Write)]);
                        g.add_task(1.0, 0, 0, &[(p, Read)]);
                        g.add_task(1.0, 0, 0, &[(p, Read)]);
                        pool.submit(g, counting_bodies(3, &acc)).wait();
                    }
                });
            }
        });
        assert_eq!(acc.load(Ordering::SeqCst), 8 * 20 * 3);
    }

    #[test]
    fn detached_submissions_finish_before_drop_returns() {
        let acc = Arc::new(AtomicU64::new(0));
        {
            let pool: TaskPool<u64> = TaskPool::new(2, || 0);
            for p in 0..10u64 {
                let mut g = TaskGraph::new();
                for _ in 0..5 {
                    g.add_task(1.0, 0, 0, &[(p, Write)]);
                }
                let _detached = pool.submit(g, counting_bodies(5, &acc));
            }
            // Drop without waiting: the shutdown drain must run them all.
        }
        assert_eq!(acc.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn worker_scratch_persists_across_submissions() {
        // Each worker counts the tasks it ran in its scratch; the total
        // across workers must equal the total submitted, proving scratch
        // values survive from one submission to the next.
        let total = Arc::new(AtomicU64::new(0));
        {
            let total = Arc::clone(&total);
            let pool: TaskPool<Tally> = TaskPool::new(3, move || Tally(0, Arc::clone(&total)));
            for p in 0..30u64 {
                let mut g = TaskGraph::new();
                g.add_task(1.0, 0, 0, &[(p, Write)]);
                let bodies: Vec<TaskBodyWith<Tally>> =
                    vec![Box::new(move |s: &mut Tally| s.0 += 1)];
                pool.submit(g, bodies).wait();
            }
        }
        assert_eq!(total.load(Ordering::SeqCst), 30);
    }

    struct Tally(u64, Arc<AtomicU64>);
    impl Drop for Tally {
        fn drop(&mut self) {
            self.1.fetch_add(self.0, Ordering::SeqCst);
        }
    }
}
