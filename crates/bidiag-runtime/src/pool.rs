//! A *persistent* work-stealing pool: the executor's scheduler re-armed for
//! a stream of independent task graphs instead of one graph per thread team.
//!
//! [`crate::execute_parallel_with`] spawns its workers, runs one graph, and
//! joins — the right shape for one big factorization, but pure overhead when
//! serving millions of small problems (the batched-SVD scenario of the
//! ROADMAP).  [`TaskPool`] keeps the same scheduling protocol — per-worker
//! LIFO deques, random stealing, bottom-level priorities, work-first
//! handoff, and the condition-variable [`IdleGate`](crate::executor) — but
//! makes the workers long-lived:
//!
//! * **Submissions, not teams.**  [`TaskPool::submit`] packages a
//!   [`TaskGraph`] plus its bodies into an [`Arc`]'d submission and seeds
//!   its source tasks into a shared injector queue.  Deque items are
//!   `(submission, task id)` pairs, so tasks of *different* submissions
//!   interleave freely on the same deques — workers never idle while any
//!   submitted problem has ready tasks (inter-problem parallelism).
//! * **Per-worker, per-lifetime scratch.**  Each worker owns one scratch
//!   value created by the pool's `init` closure at spawn time and lends it
//!   to every body it ever runs, across all submissions — allocation reuse
//!   spans the pool's lifetime, not a single graph.
//! * **Idle = parked.**  Between submissions every worker blocks on the
//!   idle gate; a parked pool consumes no CPU until the next `submit`
//!   publishes work.
//! * **Bounded admission with backpressure.**  A pool built with
//!   [`TaskPool::with_config`] caps the number of submissions in flight:
//!   [`TaskPool::submit`] parks the *caller* on a condition variable until
//!   a slot frees (a million-problem burst holds at most `max_in_flight`
//!   live job graphs), while [`TaskPool::try_submit`] sheds load instead,
//!   returning [`SubmitError::QueueFull`].  [`TaskPool::close`] rejects
//!   all further submissions ([`SubmitError::Shutdown`]) while everything
//!   already admitted still drains.
//! * **Per-submission completion and failure containment.**  Each
//!   submission counts down its own remaining tasks and signals its own
//!   condition variable; [`JobHandle::wait`] blocks on that, not on the
//!   pool.  A body panic is caught and *converted to a value*: the
//!   submission is flagged failed (remaining bodies of *that* submission
//!   are skipped, its graph still drains so counters stay consistent) and
//!   `wait` returns [`JobError::Panicked`] carrying the payload message —
//!   nothing is ever re-thrown across the pool boundary, and other
//!   submissions are unaffected.  [`JobHandle::cancel`] reuses the same
//!   drain-as-no-ops machinery for cooperative cancellation, and
//!   [`JobHandle::wait_timeout`] bounds how long a caller blocks.
//!
//! The once-cell body-slot soundness argument of the executor carries over
//! verbatim: a task id of a given submission becomes ready exactly once,
//! is claimed exactly once (deque and injector ends are mutually
//! exclusive), and the claim is ordered after the slot write by the
//! injector/deque mutex.
//!
//! Dropping the pool closes admission, then the gate; each worker drains
//! every task it can still find (its own deque, the injector, every
//! victim) and exits, so no submitted work is abandoned — the work-first
//! handoff guarantees the chain a worker is executing stays its own, and
//! anything it releases lands on its own deque, which it drains before
//! exiting.
//!
//! Fault injection: the failpoints `pool::body` (inside the per-body
//! `catch_unwind`, so an injected panic exercises the real containment
//! path) and `pool::admission` (in the non-blocking admission check;
//! `Trigger` forces a [`SubmitError::QueueFull`]) let the robustness suite
//! drive every error path deterministically.  Disarmed they cost one
//! relaxed atomic load.

use crate::executor::{BodySlots, IdleGate, TaskBodyWith};
use crate::graph::{TaskGraph, TaskId};
use bidiag_obs as obs;
use crossbeam::deque::{Steal, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a submission finished without producing its results.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// A task body panicked; the submission's remaining bodies were
    /// skipped and its graph drained.  Carries the panic payload message
    /// (the pool never re-throws a payload across `wait`).
    Panicked(String),
    /// The submission was cancelled via [`JobHandle::cancel`] before it
    /// finished; bodies that had not started were skipped.
    Cancelled,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "task body panicked: {msg}"),
            JobError::Cancelled => write!(f, "submission was cancelled"),
        }
    }
}

impl std::error::Error for JobError {}

/// Why a submission was not admitted to the pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The pool already has `max_in_flight` submissions in flight and the
    /// caller asked not to block ([`TaskPool::try_submit`]).
    QueueFull {
        /// The pool's in-flight cap at the time of rejection.
        max_in_flight: usize,
    },
    /// The pool was [`close`](TaskPool::close)d (or is being dropped);
    /// no further submissions are accepted.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { max_in_flight } => {
                write!(f, "admission queue is full ({max_in_flight} in flight)")
            }
            SubmitError::Shutdown => write!(f, "pool is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Admission configuration of a [`TaskPool`].
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Maximum number of submissions in flight (submitted, not yet
    /// finished).  `0` means unbounded — the pre-backpressure behaviour.
    pub max_in_flight: usize,
}

impl Default for PoolConfig {
    /// Unbounded admission, matching [`TaskPool::new`].
    fn default() -> Self {
        PoolConfig { max_in_flight: 0 }
    }
}

/// One submitted task graph with all the scheduler state it travels with.
struct Submission<S> {
    graph: TaskGraph,
    /// Bottom levels, the intra-submission scheduling priority.
    priority: Vec<f64>,
    /// Remaining-predecessor counters; the worker that drops one to zero
    /// owns the publication of that task.
    remaining_preds: Vec<AtomicUsize>,
    /// Countdown of unfinished tasks of this submission.
    remaining_tasks: AtomicUsize,
    slots: BodySlots<S>,
    /// Set when a body of this submission panicked: the remaining bodies
    /// of the submission are skipped (its graph still drains).
    failed: AtomicBool,
    /// Set by [`JobHandle::cancel`]: remaining bodies are skipped exactly
    /// like the failure path, but `wait` reports [`JobError::Cancelled`].
    cancelled: AtomicBool,
    done: Mutex<JobState>,
    done_cv: Condvar,
    /// Observability run id (0 = tracing was off at submit time).
    trace_id: u64,
    /// Admission timestamp (ns), valid when `trace_id != 0`.
    submitted_ns: u64,
    /// First body start (ns), CAS'd from 0 by the first worker to touch the
    /// submission; splits end-to-end latency into queue wait vs compute.
    first_start_ns: AtomicU64,
}

struct JobState {
    finished: bool,
    /// Message of the first body panic (payload converted to a string at
    /// catch time; the payload itself is dropped, never re-thrown).
    panic: Option<String>,
}

/// Best-effort conversion of a panic payload to its message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task body panicked (non-string payload)".to_string()
    }
}

/// A deque/injector item: one ready task of one submission.
type PoolItem<S> = (Arc<Submission<S>>, TaskId);

/// Completion handle of one [`TaskPool::submit`] call.
///
/// Detaching (dropping without [`wait`](JobHandle::wait)) is allowed: the
/// submission keeps itself alive through the `Arc`s on the deques and runs
/// to completion regardless.
#[must_use = "dropping the handle detaches the job; call wait() to block on completion"]
pub struct JobHandle<S> {
    sub: Arc<Submission<S>>,
}

impl<S> std::fmt::Debug for JobHandle<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("finished", &self.is_finished())
            .finish_non_exhaustive()
    }
}

impl<S> JobHandle<S> {
    /// Block until every task of the submission has completed (bodies run
    /// or skipped).  Returns `Ok(())` on clean completion,
    /// [`JobError::Panicked`] with the first panic's message if a body
    /// panicked, or [`JobError::Cancelled`] if the job was cancelled.
    pub fn wait(self) -> Result<(), JobError> {
        let mut st = self.sub.done.lock();
        while !st.finished {
            self.sub.done_cv.wait(&mut st);
        }
        self.outcome(&st)
    }

    /// Like [`wait`](JobHandle::wait), but give up after `timeout`:
    /// returns `None` if the submission is still running at the deadline
    /// (the handle stays usable — cancel it, keep waiting, or detach).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<(), JobError>> {
        let deadline = Instant::now().checked_add(timeout)?;
        let mut st = self.sub.done.lock();
        while !st.finished {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.sub.done_cv.wait_timeout(&mut st, deadline - now);
        }
        Some(self.outcome(&st))
    }

    /// Request cooperative cancellation: every body of this submission
    /// that has not started yet is skipped (the graph still drains, so
    /// counters and dependent bookkeeping stay consistent), and `wait`
    /// reports [`JobError::Cancelled`].  Best-effort: bodies already
    /// executing run to completion, and a submission that finishes before
    /// the flag lands is unaffected.  Idempotent.
    pub fn cancel(&self) {
        // The lock makes "finished" exact: a job observed complete here is
        // never retroactively marked cancelled.
        let st = self.sub.done.lock();
        if !st.finished {
            self.sub.cancelled.store(true, Ordering::Release);
        }
    }

    /// True once every task of the submission has completed (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.sub.done.lock().finished
    }

    fn outcome(&self, st: &JobState) -> Result<(), JobError> {
        if let Some(msg) = &st.panic {
            Err(JobError::Panicked(msg.clone()))
        } else if self.sub.cancelled.load(Ordering::Acquire) {
            Err(JobError::Cancelled)
        } else {
            Ok(())
        }
    }
}

/// In-flight submission accounting, shared by admission and completion.
struct AdmissionState {
    in_flight: usize,
    /// High-water mark of `in_flight` over the pool's lifetime — lets the
    /// memory-bound tests assert the cap was never exceeded.
    peak: usize,
    closed: bool,
}

/// State shared by every worker of the pool.
struct PoolShared<S> {
    /// Overflow/entry queue: `submit` seeds source tasks here (callers do
    /// not own a deque); workers pull from it when their deque drains.
    injector: Mutex<VecDeque<PoolItem<S>>>,
    stealers: Vec<Stealer<PoolItem<S>>>,
    gate: IdleGate,
    admission: Mutex<AdmissionState>,
    admission_cv: Condvar,
    /// In-flight submission cap (`0` = unbounded).
    max_in_flight: usize,
}

impl<S> PoolShared<S> {
    /// Run `id` of `sub`, release its successors, and return the
    /// highest-priority newly-ready successor for direct execution
    /// (work-first handoff) — the pool twin of the executor's `run_task`.
    fn run_item(
        &self,
        sub: &Arc<Submission<S>>,
        id: TaskId,
        me: usize,
        local: &Worker<PoolItem<S>>,
        scratch: &mut S,
    ) -> Option<TaskId> {
        // Span timestamps bracket the body (or the skip); the span is
        // recorded before any successor is released, so recorded traces
        // satisfy `end[pred] <= start[succ]` on every edge.
        let start_ns = if sub.trace_id != 0 {
            let t = obs::now_ns();
            let _ = sub
                .first_start_ns
                .compare_exchange(0, t, Ordering::Relaxed, Ordering::Relaxed);
            t
        } else {
            0
        };
        if !sub.failed.load(Ordering::Acquire) && !sub.cancelled.load(Ordering::Acquire) {
            let body = sub.slots.take(id);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let _ = failpoint::fire("pool::body");
                body(scratch)
            }));
            if let Err(p) = outcome {
                sub.failed.store(true, Ordering::Release);
                let mut st = sub.done.lock();
                if st.panic.is_none() {
                    st.panic = Some(panic_message(&*p));
                }
                // `p` is dropped here: the payload never crosses the pool.
            }
        }
        if sub.trace_id != 0 {
            obs::record_span(obs::Span {
                submission: sub.trace_id,
                task: id as u32,
                kind: sub.graph.task(id).tag,
                worker: me as u32,
                start_ns,
                end_ns: obs::now_ns(),
            });
            obs::registry().tasks_executed.incr();
        }

        let mut ready: Vec<TaskId> = Vec::new();
        for &succ in sub.graph.successors(id) {
            if sub.remaining_preds[succ].fetch_sub(1, Ordering::AcqRel) == 1 {
                ready.push(succ);
            }
        }
        ready.sort_by(|&a, &b| {
            sub.priority[a]
                .partial_cmp(&sub.priority[b])
                .expect("bottom levels are finite")
        });
        let next = ready.pop();
        if !ready.is_empty() {
            for t in ready {
                local.push((Arc::clone(sub), t));
            }
            self.gate.publish();
        }

        if sub.remaining_tasks.fetch_sub(1, Ordering::AcqRel) == 1 {
            if sub.trace_id != 0 {
                // Split the submission's end-to-end latency at its first
                // body start: before = queue wait, after = compute.
                let end = obs::now_ns();
                let first = sub.first_start_ns.load(Ordering::Relaxed);
                let reg = obs::registry();
                reg.queue_wait
                    .record(first.saturating_sub(sub.submitted_ns));
                reg.compute.record(end.saturating_sub(first));
                reg.latency.record(end.saturating_sub(sub.submitted_ns));
            }
            {
                let mut st = sub.done.lock();
                st.finished = true;
                sub.done_cv.notify_all();
            }
            // Release the admission slot only after completion is
            // published, so `in_flight` never under-counts live jobs.
            let mut adm = self.admission.lock();
            adm.in_flight -= 1;
            drop(adm);
            self.admission_cv.notify_one();
        }
        next
    }

    /// One full scan: local deque, then the injector, then every victim in
    /// a pseudo-random order.
    fn find_item(
        &self,
        me: usize,
        local: &Worker<PoolItem<S>>,
        rng: &mut u64,
    ) -> Option<PoolItem<S>> {
        if let Some(item) = local.pop() {
            return Some(item);
        }
        if let Some(item) = self.injector.lock().pop_front() {
            return Some(item);
        }
        let n = self.stealers.len();
        if n <= 1 {
            return None;
        }
        let start = (crate::executor::xorshift(rng) as usize) % n;
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == me {
                continue;
            }
            loop {
                match self.stealers[victim].steal() {
                    Steal::Success(item) => {
                        if obs::enabled() {
                            obs::registry().steals.incr();
                        }
                        return Some(item);
                    }
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }

    fn worker_loop(&self, me: usize, local: Worker<PoolItem<S>>, scratch: &mut S) {
        let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ ((me as u64 + 1) << 17);
        let mut seen = 0u64;
        loop {
            while let Some((sub, id)) = self.find_item(me, &local, &mut rng) {
                let mut current = id;
                while let Some(next) = self.run_item(&sub, current, me, &local, scratch) {
                    current = next;
                }
            }
            if !self.gate.park(&mut seen) {
                break;
            }
        }
        // Shutdown drain: the gate is closed, but submissions may still
        // have runnable tasks.  Keep executing everything findable; chains
        // this worker releases land on its own deque and are drained here
        // too, so no submission is left incomplete.
        while let Some((sub, id)) = self.find_item(me, &local, &mut rng) {
            let mut current = id;
            while let Some(next) = self.run_item(&sub, current, me, &local, scratch) {
                current = next;
            }
        }
    }
}

/// A persistent work-stealing thread pool executing a stream of
/// [`TaskGraph`] submissions — see the [module docs](self).
///
/// `S` is the per-worker scratch type: one value per worker thread, created
/// once at spawn time and lent to every task body the worker ever runs.
///
/// # Examples
///
/// ```
/// use bidiag_runtime::{AccessMode, TaskBodyWith, TaskGraph, TaskPool};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let pool: TaskPool<()> = TaskPool::new(4, || ());
/// let acc = Arc::new(AtomicU64::new(0));
/// let handles: Vec<_> = (0..8u64)
///     .map(|p| {
///         let mut g = TaskGraph::new();
///         g.add_task(1.0, 0, 0, &[(p, AccessMode::Write)]);
///         g.add_task(1.0, 0, 0, &[(p, AccessMode::Write)]);
///         let bodies: Vec<TaskBodyWith<()>> = (0..2)
///             .map(|_| {
///                 let acc = Arc::clone(&acc);
///                 Box::new(move |_: &mut ()| {
///                     acc.fetch_add(1, Ordering::SeqCst);
///                 }) as TaskBodyWith<()>
///             })
///             .collect();
///         pool.submit(g, bodies).expect("pool is open")
///     })
///     .collect();
/// for h in handles {
///     h.wait().expect("no body panicked");
/// }
/// assert_eq!(acc.load(Ordering::SeqCst), 16);
/// ```
pub struct TaskPool<S: 'static> {
    shared: Arc<PoolShared<S>>,
    threads: usize,
    handles: Vec<JoinHandle<()>>,
}

impl<S: Send + 'static> TaskPool<S> {
    /// Spawn a pool of `threads` workers (at least one) with unbounded
    /// admission, each worker owning one scratch value created by `init`
    /// on that worker's thread.
    pub fn new(threads: usize, init: impl Fn() -> S + Send + Sync + 'static) -> Self {
        Self::with_config(threads, PoolConfig::default(), init)
    }

    /// Spawn a pool with explicit admission configuration — see
    /// [`PoolConfig`].
    pub fn with_config(
        threads: usize,
        config: PoolConfig,
        init: impl Fn() -> S + Send + Sync + 'static,
    ) -> Self {
        let threads = threads.max(1);
        let workers: Vec<Worker<PoolItem<S>>> = (0..threads).map(|_| Worker::new_lifo()).collect();
        let shared = Arc::new(PoolShared {
            injector: Mutex::new(VecDeque::new()),
            stealers: workers.iter().map(Worker::stealer).collect(),
            gate: IdleGate::new(),
            admission: Mutex::new(AdmissionState {
                in_flight: 0,
                peak: 0,
                closed: false,
            }),
            admission_cv: Condvar::new(),
            max_in_flight: config.max_in_flight,
        });
        let init = Arc::new(init);
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(me, local)| {
                let shared = Arc::clone(&shared);
                let init = Arc::clone(&init);
                std::thread::spawn(move || {
                    let mut scratch = init();
                    shared.worker_loop(me, local, &mut scratch);
                })
            })
            .collect();
        TaskPool {
            shared,
            threads,
            handles,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The in-flight submission cap (`0` = unbounded).
    pub fn max_in_flight(&self) -> usize {
        self.shared.max_in_flight
    }

    /// Number of submissions currently in flight (admitted, not finished).
    pub fn in_flight(&self) -> usize {
        self.shared.admission.lock().in_flight
    }

    /// High-water mark of [`in_flight`](TaskPool::in_flight) over the
    /// pool's lifetime.  On a bounded pool this never exceeds
    /// [`max_in_flight`](TaskPool::max_in_flight) — the property the
    /// memory-bound tests assert.
    pub fn in_flight_peak(&self) -> usize {
        self.shared.admission.lock().peak
    }

    /// Acquire one admission slot.  `block` selects backpressure (park on
    /// the admission condvar until a slot frees) versus load shedding
    /// (return [`SubmitError::QueueFull`]).
    fn admit(&self, block: bool) -> Result<(), SubmitError> {
        let mut adm = self.shared.admission.lock();
        // Set when this admission had to park at least once; the wait is
        // charged to the registry on whichever outcome ends it.
        let mut wait_from: Option<u64> = None;
        loop {
            if adm.closed {
                return Err(SubmitError::Shutdown);
            }
            let full = self.shared.max_in_flight > 0 && adm.in_flight >= self.shared.max_in_flight;
            if !full {
                if !block {
                    // Injected "momentarily full" admission outcome, so
                    // load-shedding paths are testable without real
                    // saturation.  Only the non-blocking path consults it:
                    // a blocking caller would park forever on a fault that
                    // no completion ever clears.
                    if matches!(
                        failpoint::fire("pool::admission"),
                        Some(failpoint::FailAction::Trigger)
                    ) {
                        if obs::enabled() {
                            obs::registry().shed_submissions.incr();
                        }
                        return Err(SubmitError::QueueFull {
                            max_in_flight: self.shared.max_in_flight,
                        });
                    }
                }
                adm.in_flight += 1;
                adm.peak = adm.peak.max(adm.in_flight);
                if obs::enabled() {
                    let reg = obs::registry();
                    reg.in_flight_peak.record(adm.in_flight as u64);
                    if let Some(t0) = wait_from {
                        reg.admission_wait_ns.add(obs::now_ns() - t0);
                    }
                }
                return Ok(());
            }
            if !block {
                if obs::enabled() {
                    obs::registry().shed_submissions.incr();
                }
                return Err(SubmitError::QueueFull {
                    max_in_flight: self.shared.max_in_flight,
                });
            }
            if obs::enabled() && wait_from.is_none() {
                obs::registry().admission_waits.incr();
                wait_from = Some(obs::now_ns());
            }
            self.shared.admission_cv.wait(&mut adm);
        }
    }

    /// Submit one task graph for execution; `bodies[i]` runs exactly once
    /// for task `i`, on some worker, with that worker's scratch.
    ///
    /// On a bounded pool this **blocks** while `max_in_flight` submissions
    /// are in flight (backpressure), waking when a slot frees.  Returns
    /// [`SubmitError::Shutdown`] if the pool was closed.  Panics if
    /// `bodies.len() != graph.len()` (an internal-invariant breach of the
    /// caller, not a runtime condition).
    pub fn submit(
        &self,
        graph: TaskGraph,
        bodies: Vec<TaskBodyWith<S>>,
    ) -> Result<JobHandle<S>, SubmitError> {
        self.submit_inner(graph, bodies, true)
    }

    /// Non-blocking twin of [`submit`](TaskPool::submit): when the pool is
    /// full, returns [`SubmitError::QueueFull`] immediately instead of
    /// parking the caller — the load-shedding admission policy.
    pub fn try_submit(
        &self,
        graph: TaskGraph,
        bodies: Vec<TaskBodyWith<S>>,
    ) -> Result<JobHandle<S>, SubmitError> {
        self.submit_inner(graph, bodies, false)
    }

    fn submit_inner(
        &self,
        graph: TaskGraph,
        bodies: Vec<TaskBodyWith<S>>,
        block: bool,
    ) -> Result<JobHandle<S>, SubmitError> {
        let n = graph.len();
        assert_eq!(bodies.len(), n, "one body per task is required");
        if n == 0 {
            // Nothing to run: never admitted (no slot to leak), but a
            // closed pool still rejects, so shutdown is observable.
            if self.shared.admission.lock().closed {
                return Err(SubmitError::Shutdown);
            }
            return Ok(JobHandle {
                sub: Arc::new(Submission {
                    priority: Vec::new(),
                    remaining_preds: Vec::new(),
                    remaining_tasks: AtomicUsize::new(0),
                    slots: BodySlots::new(bodies),
                    failed: AtomicBool::new(false),
                    cancelled: AtomicBool::new(false),
                    done: Mutex::new(JobState {
                        finished: true,
                        panic: None,
                    }),
                    done_cv: Condvar::new(),
                    graph,
                    trace_id: 0,
                    submitted_ns: 0,
                    first_start_ns: AtomicU64::new(0),
                }),
            });
        }
        self.admit(block)?;
        let (trace_id, submitted_ns) = if obs::enabled() {
            obs::registry().submissions.incr();
            (obs::next_submission_id(), obs::now_ns())
        } else {
            (0, 0)
        };
        let sub = Arc::new(Submission {
            priority: graph.bottom_levels(),
            remaining_preds: (0..n)
                .map(|i| AtomicUsize::new(graph.predecessors(i).len()))
                .collect(),
            remaining_tasks: AtomicUsize::new(n),
            slots: BodySlots::new(bodies),
            failed: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            done: Mutex::new(JobState {
                finished: false,
                panic: None,
            }),
            done_cv: Condvar::new(),
            graph,
            trace_id,
            submitted_ns,
            first_start_ns: AtomicU64::new(0),
        });

        // Seed the sources highest bottom level first: the injector is
        // FIFO, so workers pull the most critical source first.
        let mut sources: Vec<TaskId> = (0..n)
            .filter(|&i| sub.graph.predecessors(i).is_empty())
            .collect();
        sources.sort_by(|&a, &b| {
            sub.priority[b]
                .partial_cmp(&sub.priority[a])
                .expect("bottom levels are finite")
        });
        let mut inj = self.shared.injector.lock();
        for id in sources {
            inj.push_back((Arc::clone(&sub), id));
        }
        drop(inj);
        self.shared.gate.publish();
        Ok(JobHandle { sub })
    }
}

impl<S: 'static> TaskPool<S> {
    /// Close admission: every subsequent `submit`/`try_submit` (and every
    /// caller currently parked in a blocking `submit`) gets
    /// [`SubmitError::Shutdown`].  Work already admitted still drains.
    /// Idempotent; [`Drop`] calls it first.
    pub fn close(&self) {
        let mut adm = self.shared.admission.lock();
        adm.closed = true;
        drop(adm);
        self.shared.admission_cv.notify_all();
    }
}

impl<S: 'static> Drop for TaskPool<S> {
    fn drop(&mut self) {
        self.close();
        self.shared.gate.finish();
        for h in self.handles.drain(..) {
            // A worker thread can only panic through a scheduler bug (body
            // panics are caught per submission); surface it.
            if let Err(p) = h.join() {
                if !std::thread::panicking() {
                    resume_unwind(p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AccessMode::{Read, Write};
    use std::sync::atomic::AtomicU64;

    fn counting_bodies(n: usize, acc: &Arc<AtomicU64>) -> Vec<TaskBodyWith<u64>> {
        (0..n)
            .map(|_| {
                let acc = Arc::clone(acc);
                Box::new(move |s: &mut u64| {
                    *s += 1; // exercise the per-worker scratch
                    acc.fetch_add(1, Ordering::SeqCst);
                }) as TaskBodyWith<u64>
            })
            .collect()
    }

    #[test]
    fn submissions_respect_dependencies() {
        let pool: TaskPool<u64> = TaskPool::new(4, || 0);
        let mut g = TaskGraph::new();
        g.add_task(1.0, 0, 0, &[(9, Write)]);
        for c in 0..3u64 {
            for s in 0..20u64 {
                if s == 0 {
                    g.add_task(1.0, 0, 0, &[(9, Read), (c, Write)]);
                } else {
                    g.add_task(1.0, 0, 0, &[(c, Write)]);
                }
            }
        }
        let n = g.len();
        let stamp = Arc::new(AtomicU64::new(1));
        let order: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let bodies: Vec<TaskBodyWith<u64>> = (0..n)
            .map(|i| {
                let stamp = Arc::clone(&stamp);
                let order = Arc::clone(&order);
                Box::new(move |_: &mut u64| {
                    order[i].store(stamp.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
                }) as TaskBodyWith<u64>
            })
            .collect();
        let graph = g.clone();
        pool.submit(g, bodies).unwrap().wait().unwrap();
        for id in 0..n {
            let t = order[id].load(Ordering::SeqCst);
            assert!(t > 0, "task {id} never ran");
            for &p in graph.predecessors(id) {
                assert!(
                    order[p].load(Ordering::SeqCst) < t,
                    "task {id} ran before its predecessor {p}"
                );
            }
        }
    }

    #[test]
    fn many_interleaved_submissions_all_complete() {
        let pool: TaskPool<u64> = TaskPool::new(4, || 0);
        let acc = Arc::new(AtomicU64::new(0));
        let mut expected = 0u64;
        let handles: Vec<JobHandle<u64>> = (0..50u64)
            .map(|p| {
                let len = 1 + (p % 7) as usize;
                expected += len as u64;
                let mut g = TaskGraph::new();
                for _ in 0..len {
                    g.add_task(1.0, 0, 0, &[(p, Write)]);
                }
                pool.submit(g, counting_bodies(len, &acc)).unwrap()
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        assert_eq!(acc.load(Ordering::SeqCst), expected);
    }

    #[test]
    fn empty_submission_finishes_immediately() {
        let pool: TaskPool<u64> = TaskPool::new(2, || 0);
        let h = pool.submit(TaskGraph::new(), Vec::new()).unwrap();
        assert!(h.is_finished());
        h.wait().unwrap();
        // Empty submissions are never admitted, so they cannot leak slots.
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn panic_in_one_submission_does_not_poison_the_pool() {
        let pool: TaskPool<u64> = TaskPool::new(4, || 0);
        let mut g = TaskGraph::new();
        g.add_task(1.0, 0, 0, &[(1, Write)]);
        g.add_task(1.0, 0, 0, &[(1, Write)]); // skipped after the panic
        let bodies: Vec<TaskBodyWith<u64>> = (0..2)
            .map(|i| {
                Box::new(move |_: &mut u64| {
                    if i == 0 {
                        panic!("kernel failure");
                    }
                }) as TaskBodyWith<u64>
            })
            .collect();
        let bad = pool.submit(g, bodies).unwrap();
        // The panic arrives as a *value* carrying the payload message —
        // nothing unwinds across wait().
        match bad.wait() {
            Err(JobError::Panicked(msg)) => assert!(msg.contains("kernel failure"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }

        // The pool still serves fresh submissions afterwards.
        let acc = Arc::new(AtomicU64::new(0));
        let mut g = TaskGraph::new();
        for _ in 0..10 {
            g.add_task(1.0, 0, 0, &[(2, Write)]);
        }
        pool.submit(g, counting_bodies(10, &acc))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(acc.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn submit_from_many_threads_is_safe() {
        let pool: Arc<TaskPool<u64>> = Arc::new(TaskPool::new(3, || 0));
        let acc = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let pool = Arc::clone(&pool);
                let acc = Arc::clone(&acc);
                scope.spawn(move || {
                    for p in 0..20u64 {
                        let mut g = TaskGraph::new();
                        g.add_task(1.0, 0, 0, &[(p, Write)]);
                        g.add_task(1.0, 0, 0, &[(p, Read)]);
                        g.add_task(1.0, 0, 0, &[(p, Read)]);
                        pool.submit(g, counting_bodies(3, &acc))
                            .unwrap()
                            .wait()
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(acc.load(Ordering::SeqCst), 8 * 20 * 3);
    }

    #[test]
    fn detached_submissions_finish_before_drop_returns() {
        let acc = Arc::new(AtomicU64::new(0));
        {
            let pool: TaskPool<u64> = TaskPool::new(2, || 0);
            for p in 0..10u64 {
                let mut g = TaskGraph::new();
                for _ in 0..5 {
                    g.add_task(1.0, 0, 0, &[(p, Write)]);
                }
                let _detached = pool.submit(g, counting_bodies(5, &acc)).unwrap();
            }
            // Drop without waiting: the shutdown drain must run them all.
        }
        assert_eq!(acc.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn worker_scratch_persists_across_submissions() {
        // Each worker counts the tasks it ran in its scratch; the total
        // across workers must equal the total submitted, proving scratch
        // values survive from one submission to the next.
        let total = Arc::new(AtomicU64::new(0));
        {
            let total = Arc::clone(&total);
            let pool: TaskPool<Tally> = TaskPool::new(3, move || Tally(0, Arc::clone(&total)));
            for p in 0..30u64 {
                let mut g = TaskGraph::new();
                g.add_task(1.0, 0, 0, &[(p, Write)]);
                let bodies: Vec<TaskBodyWith<Tally>> =
                    vec![Box::new(move |s: &mut Tally| s.0 += 1)];
                pool.submit(g, bodies).unwrap().wait().unwrap();
            }
        }
        assert_eq!(total.load(Ordering::SeqCst), 30);
    }

    struct Tally(u64, Arc<AtomicU64>);
    impl Drop for Tally {
        fn drop(&mut self) {
            self.1.fetch_add(self.0, Ordering::SeqCst);
        }
    }

    /// A submission whose single body parks until released, so tests can
    /// hold the pool provably busy without timing assumptions.
    fn parked_job(pool: &TaskPool<u64>, release: &Arc<AtomicBool>, key: u64) -> JobHandle<u64> {
        let mut g = TaskGraph::new();
        g.add_task(1.0, 0, 0, &[(key, Write)]);
        let release = Arc::clone(release);
        let bodies: Vec<TaskBodyWith<u64>> = vec![Box::new(move |_: &mut u64| {
            while !release.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        })];
        pool.submit(g, bodies).expect("pool is open")
    }

    #[test]
    fn try_submit_sheds_load_when_full_and_recovers() {
        let pool: TaskPool<u64> = TaskPool::with_config(1, PoolConfig { max_in_flight: 2 }, || 0);
        let release = Arc::new(AtomicBool::new(false));
        let a = parked_job(&pool, &release, 1);
        let b = parked_job(&pool, &release, 2);
        // Third submission must be rejected, not queued.
        let mut g = TaskGraph::new();
        g.add_task(1.0, 0, 0, &[(3, Write)]);
        let acc = Arc::new(AtomicU64::new(0));
        match pool.try_submit(g.clone(), counting_bodies(1, &acc)) {
            Err(SubmitError::QueueFull { max_in_flight: 2 }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(pool.in_flight(), 2);
        release.store(true, Ordering::Release);
        a.wait().unwrap();
        b.wait().unwrap();
        // Slots freed: admission works again.
        pool.try_submit(g, counting_bodies(1, &acc))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(acc.load(Ordering::SeqCst), 1);
        assert_eq!(pool.in_flight_peak(), 2);
    }

    #[test]
    fn blocking_submit_parks_until_a_slot_frees() {
        let pool: Arc<TaskPool<u64>> = Arc::new(TaskPool::with_config(
            1,
            PoolConfig { max_in_flight: 1 },
            || 0,
        ));
        let release = Arc::new(AtomicBool::new(false));
        let first = parked_job(&pool, &release, 1);
        let acc = Arc::new(AtomicU64::new(0));
        let submitted = Arc::new(AtomicBool::new(false));
        let waiter = {
            let pool = Arc::clone(&pool);
            let acc = Arc::clone(&acc);
            let submitted = Arc::clone(&submitted);
            std::thread::spawn(move || {
                let mut g = TaskGraph::new();
                g.add_task(1.0, 0, 0, &[(2, Write)]);
                // Blocks here until the parked job finishes.
                let h = pool.submit(g, counting_bodies(1, &acc)).unwrap();
                submitted.store(true, Ordering::Release);
                h.wait().unwrap();
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            !submitted.load(Ordering::Acquire),
            "submit returned while the pool was full"
        );
        release.store(true, Ordering::Release);
        first.wait().unwrap();
        waiter.join().unwrap();
        assert_eq!(acc.load(Ordering::SeqCst), 1);
        assert_eq!(pool.in_flight_peak(), 1);
    }

    #[test]
    fn cancel_skips_unstarted_bodies_and_reports_cancelled() {
        let pool: TaskPool<u64> = TaskPool::new(1, || 0);
        let release = Arc::new(AtomicBool::new(false));
        let blocker = parked_job(&pool, &release, 1);
        // A second submission queued behind the blocker: cancel it before
        // any of its bodies can start.
        let ran = Arc::new(AtomicU64::new(0));
        let mut g = TaskGraph::new();
        for _ in 0..4 {
            g.add_task(1.0, 0, 0, &[(2, Write)]);
        }
        let victim = pool.submit(g, counting_bodies(4, &ran)).unwrap();
        victim.cancel();
        release.store(true, Ordering::Release);
        blocker.wait().unwrap();
        assert_eq!(victim.wait(), Err(JobError::Cancelled));
        assert_eq!(ran.load(Ordering::SeqCst), 0, "cancelled bodies ran");
        // The graph drained: the slot was released and the pool is reusable.
        let acc = Arc::new(AtomicU64::new(0));
        let mut g = TaskGraph::new();
        g.add_task(1.0, 0, 0, &[(3, Write)]);
        pool.submit(g, counting_bodies(1, &acc))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(acc.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn cancel_after_completion_is_a_no_op() {
        let pool: TaskPool<u64> = TaskPool::new(2, || 0);
        let acc = Arc::new(AtomicU64::new(0));
        let mut g = TaskGraph::new();
        g.add_task(1.0, 0, 0, &[(1, Write)]);
        let h = pool.submit(g, counting_bodies(1, &acc)).unwrap();
        while !h.is_finished() {
            std::thread::yield_now();
        }
        h.cancel();
        assert_eq!(h.wait(), Ok(()));
    }

    #[test]
    fn wait_timeout_returns_none_while_running_and_some_after() {
        let pool: TaskPool<u64> = TaskPool::new(1, || 0);
        let release = Arc::new(AtomicBool::new(false));
        let job = parked_job(&pool, &release, 1);
        assert_eq!(job.wait_timeout(Duration::from_millis(30)), None);
        release.store(true, Ordering::Release);
        // Generous bound: the body exits as soon as it sees the flag.
        assert_eq!(job.wait_timeout(Duration::from_secs(30)), Some(Ok(())));
        job.wait().unwrap();
    }

    #[test]
    fn closed_pool_rejects_submissions_but_drains_admitted_work() {
        let pool: TaskPool<u64> = TaskPool::new(2, || 0);
        let acc = Arc::new(AtomicU64::new(0));
        let mut g = TaskGraph::new();
        for _ in 0..5 {
            g.add_task(1.0, 0, 0, &[(1, Write)]);
        }
        let admitted = pool.submit(g.clone(), counting_bodies(5, &acc)).unwrap();
        pool.close();
        assert_eq!(
            pool.submit(g.clone(), counting_bodies(5, &acc))
                .unwrap_err(),
            SubmitError::Shutdown
        );
        assert_eq!(
            pool.try_submit(g, counting_bodies(5, &acc)).unwrap_err(),
            SubmitError::Shutdown
        );
        // Empty submissions are also refused after close.
        assert_eq!(
            pool.submit(TaskGraph::new(), Vec::new()).unwrap_err(),
            SubmitError::Shutdown
        );
        admitted.wait().unwrap();
        assert_eq!(acc.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn close_wakes_blocked_submitters_with_shutdown() {
        let pool: Arc<TaskPool<u64>> = Arc::new(TaskPool::with_config(
            1,
            PoolConfig { max_in_flight: 1 },
            || 0,
        ));
        let release = Arc::new(AtomicBool::new(false));
        let blocker = parked_job(&pool, &release, 1);
        let waiter = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let mut g = TaskGraph::new();
                g.add_task(1.0, 0, 0, &[(2, Write)]);
                let bodies: Vec<TaskBodyWith<u64>> = vec![Box::new(|_: &mut u64| {})];
                pool.submit(g, bodies)
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        pool.close();
        assert_eq!(waiter.join().unwrap().unwrap_err(), SubmitError::Shutdown);
        release.store(true, Ordering::Release);
        blocker.wait().unwrap();
    }
}
