//! Multi-threaded execution of task graphs (the shared-memory runtime).
//!
//! This plays the role PaRSEC plays in the paper's implementation: tasks
//! become ready when their data-flow predecessors complete and are executed
//! by a pool of worker threads.  Correctness does not depend on scheduling
//! order — any topological execution yields the same numerical result —
//! which is asserted by the determinism tests in `bidiag-core`.

use crate::graph::{TaskGraph, TaskId};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A task body: the closure that actually runs the kernel.  Bodies are
/// indexed by [`TaskId`] and own whatever shared state they need (typically
/// `Arc`s of per-tile locks).
pub type TaskBody = Box<dyn FnOnce() + Send>;

/// Execute every task of `graph` on `threads` worker threads, respecting the
/// data-flow dependencies.  `bodies[i]` is run exactly once for task `i`.
///
/// Panics if `bodies.len() != graph.len()`.
pub fn execute_parallel(graph: &TaskGraph, bodies: Vec<TaskBody>, threads: usize) {
    let n = graph.len();
    assert_eq!(bodies.len(), n, "one body per task is required");
    if n == 0 {
        return;
    }
    let threads = threads.max(1);

    // Remaining predecessor counters.
    let remaining: Vec<AtomicUsize> = (0..n)
        .map(|i| AtomicUsize::new(graph.predecessors(i).len()))
        .collect();
    let completed = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<TaskBody>>> =
        bodies.into_iter().map(|b| Mutex::new(Some(b))).collect();

    let (tx, rx): (Sender<TaskId>, Receiver<TaskId>) = unbounded();
    // Seed with the source tasks, highest-priority (longest bottom level) first.
    let bl = graph.bottom_levels();
    let mut sources: Vec<TaskId> = (0..n)
        .filter(|&i| graph.predecessors(i).is_empty())
        .collect();
    sources.sort_by(|&a, &b| bl[b].partial_cmp(&bl[a]).unwrap());
    for id in sources {
        tx.send(id).expect("queue alive");
    }

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rx = rx.clone();
            let tx = tx.clone();
            let remaining = &remaining;
            let completed = &completed;
            let slots = &slots;
            scope.spawn(move || loop {
                match rx.recv_timeout(Duration::from_millis(5)) {
                    Ok(id) => {
                        let body = slots[id]
                            .lock()
                            .unwrap()
                            .take()
                            .expect("task executed twice");
                        body();
                        for &succ in graph.successors(id) {
                            if remaining[succ].fetch_sub(1, Ordering::AcqRel) == 1 {
                                let _ = tx.send(succ);
                            }
                        }
                        completed.fetch_add(1, Ordering::AcqRel);
                    }
                    Err(_) => {
                        if completed.load(Ordering::Acquire) >= n {
                            break;
                        }
                    }
                }
            });
        }
        drop(tx);
        drop(rx);
    });

    assert_eq!(
        completed.load(Ordering::Acquire),
        n,
        "not every task was executed"
    );
}

/// Execute the tasks sequentially in insertion order (which is a topological
/// order).  This is the reference execution used by the correctness tests.
pub fn execute_sequential(graph: &TaskGraph, bodies: Vec<TaskBody>) {
    assert_eq!(bodies.len(), graph.len());
    for body in bodies {
        body();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AccessMode::{Read, Write};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    /// Build a random-ish layered DAG and check that parallel execution
    /// respects dependencies (every predecessor ran before its successor).
    #[test]
    fn parallel_execution_respects_dependencies() {
        let mut g = TaskGraph::new();
        // 4 chains of 25 tasks sharing a common root and a common sink.
        g.add_task(1.0, 0, 0, &[(999, Write)]);
        for c in 0..4u64 {
            for s in 0..25u64 {
                let key = 1000 + c;
                if s == 0 {
                    g.add_task(1.0, 0, 0, &[(999, Read), (key, Write)]);
                } else {
                    g.add_task(1.0, 0, 0, &[(key, Write)]);
                }
            }
        }
        let sink_accesses: Vec<_> = (0..4u64)
            .map(|c| (1000 + c, Read))
            .chain([(2000, Write)])
            .collect();
        g.add_task(1.0, 0, 0, &sink_accesses);

        let n = g.len();
        let stamp = Arc::new(AtomicU64::new(1));
        let order: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let bodies: Vec<TaskBody> = (0..n)
            .map(|i| {
                let stamp = Arc::clone(&stamp);
                let order = Arc::clone(&order);
                Box::new(move || {
                    let t = stamp.fetch_add(1, Ordering::SeqCst);
                    order[i].store(t, Ordering::SeqCst);
                }) as TaskBody
            })
            .collect();
        execute_parallel(&g, bodies, 8);

        for id in 0..n {
            let t = order[id].load(Ordering::SeqCst);
            assert!(t > 0, "task {id} never ran");
            for &p in g.predecessors(id) {
                let tp = order[p].load(Ordering::SeqCst);
                assert!(tp < t, "task {id} ran before its predecessor {p}");
            }
        }
    }

    #[test]
    fn parallel_and_sequential_produce_same_result() {
        // Sum reduction where each task adds its id into a shared accumulator
        // guarded by dependencies (single chain).
        let mut g = TaskGraph::new();
        let n = 50;
        for _ in 0..n {
            g.add_task(1.0, 0, 0, &[(1, Write)]);
        }
        let acc_par = Arc::new(AtomicU64::new(0));
        let bodies_par: Vec<TaskBody> = (0..n)
            .map(|i| {
                let acc = Arc::clone(&acc_par);
                Box::new(move || {
                    acc.fetch_add(i as u64, Ordering::SeqCst);
                }) as TaskBody
            })
            .collect();
        execute_parallel(&g, bodies_par, 4);

        let acc_seq = Arc::new(AtomicU64::new(0));
        let bodies_seq: Vec<TaskBody> = (0..n)
            .map(|i| {
                let acc = Arc::clone(&acc_seq);
                Box::new(move || {
                    acc.fetch_add(i as u64, Ordering::SeqCst);
                }) as TaskBody
            })
            .collect();
        execute_sequential(&g, bodies_seq);
        assert_eq!(
            acc_par.load(Ordering::SeqCst),
            acc_seq.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = TaskGraph::new();
        execute_parallel(&g, Vec::new(), 4);
        execute_sequential(&g, Vec::new());
    }

    #[test]
    fn single_thread_execution_works() {
        let mut g = TaskGraph::new();
        for _ in 0..10 {
            g.add_task(1.0, 0, 0, &[(7, Write)]);
        }
        let counter = Arc::new(AtomicU64::new(0));
        let bodies: Vec<TaskBody> = (0..10)
            .map(|_| {
                let c = Arc::clone(&counter);
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as TaskBody
            })
            .collect();
        execute_parallel(&g, bodies, 1);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }
}
