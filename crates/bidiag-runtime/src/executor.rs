//! Work-stealing multi-threaded execution of task graphs (the shared-memory
//! runtime).
//!
//! This plays the role PaRSEC plays in the paper's implementation: tasks
//! become ready when their data-flow predecessors complete and are executed
//! by a pool of worker threads.  Correctness does not depend on scheduling
//! order — any topological execution yields the same numerical result —
//! which is asserted by the determinism tests in `bidiag-core` and by the
//! randomized stress tests in `tests/scheduler_stress.rs`.
//!
//! # Scheduler design
//!
//! The scheduler is *work-stealing* and *event-driven*; there is no timed
//! polling anywhere on the execution path.
//!
//! * **Per-worker LIFO deques.** Every worker owns a
//!   [`crossbeam::deque::Worker`] deque.  Tasks a worker makes ready are
//!   pushed on its own deque, so the successors of a just-finished tile
//!   kernel — whose operands are hot in that worker's cache — are executed
//!   by the same worker in depth-first order, exactly like the
//!   locality-aware queues of PaRSEC.
//! * **Random stealing.** A worker whose deque drains picks victims in a
//!   per-worker pseudo-random order and steals the *oldest* entry of a
//!   victim's deque (the FIFO end), which is the entry the victim would
//!   touch last.
//! * **Priorities.** When a finished task releases several successors at
//!   once, they are pushed in increasing bottom-level order so that the
//!   LIFO pop picks the successor with the *longest* remaining critical
//!   path first — the same bottom-level priority the paper's runtime uses.
//!   The highest-priority successor skips the deque entirely and is
//!   returned to the worker loop as the next task to run (a work-first
//!   handoff).  Initial source tasks are dealt round-robin across all
//!   workers in the same order.
//! * **Idle protocol.** Workers that find no runnable task block on a
//!   condition variable guarded by a generation counter (the internal
//!   `IdleGate`): publishing new tasks bumps the generation and wakes
//!   sleepers, so a worker only rescans when something actually changed.
//!   There is no `recv_timeout`/sleep loop; a sleeping worker consumes no
//!   CPU until a task is published or the graph drains.
//! * **Completion detection.** A single atomic countdown of unfinished
//!   tasks; the worker that completes the last task closes the gate and
//!   every worker exits.  No thread ever waits on a timeout to notice
//!   termination.
//!
//! # Why the once-cell task slots are sound
//!
//! Task bodies are stored in [`UnsafeCell`] slots without any lock.  The
//! dependency protocol guarantees exclusive access:
//!
//! 1. a task id becomes *ready* exactly once — only the worker whose
//!    `fetch_sub` drops the predecessor counter to zero publishes it (and
//!    source tasks are seeded exactly once before the workers start);
//! 2. a published id is claimed exactly once — deque ends are
//!    mutually exclusive, so exactly one worker pops or steals it;
//! 3. the handoff happens through the deque (or through thread spawn for
//!    the seeds), which orders the slot write before the slot take.
//!
//! Hence each slot is taken exactly once, by exactly one thread, after its
//! body was written — the invariant the internal `BodySlots::take` relies
//! on.

use crate::graph::{TaskGraph, TaskId};
use bidiag_obs as obs;
use crossbeam::deque::{Steal, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A task body: the closure that actually runs the kernel.  Bodies are
/// indexed by [`TaskId`] and own whatever shared state they need (typically
/// `Arc`s of per-tile locks).
pub type TaskBody = Box<dyn FnOnce() + Send>;

/// A task body that receives the executing worker's private scratch.
///
/// This is how the blocked tile kernels run allocation-free: every worker
/// thread owns one long-lived scratch value (created by the `init` closure
/// of [`execute_parallel_with`]) and lends it to each body it executes, so
/// kernel workspaces are reused across all the tasks a worker runs instead
/// of being reallocated per task.
pub type TaskBodyWith<S> = Box<dyn FnOnce(&mut S) + Send>;

/// Once-cell storage of the task bodies: each slot is written once before
/// the workers start and taken exactly once by the worker that claimed the
/// task (see the module docs for the exclusivity argument).
pub(crate) struct BodySlots<S>(Vec<UnsafeCell<Option<TaskBodyWith<S>>>>);

// SAFETY: slots are only accessed through `take`, whose per-id exclusivity
// is guaranteed by the ready/claim protocol described in the module docs.
unsafe impl<S> Sync for BodySlots<S> {}

impl<S> BodySlots<S> {
    pub(crate) fn new(bodies: Vec<TaskBodyWith<S>>) -> Self {
        BodySlots(
            bodies
                .into_iter()
                .map(|b| UnsafeCell::new(Some(b)))
                .collect(),
        )
    }

    /// Take the body of task `id`.
    ///
    /// SAFETY contract (upheld by the scheduler): `take(id)` is called at
    /// most once per id, and the call happens after the constructor's write
    /// with a synchronization edge in between (deque mutex or thread spawn).
    pub(crate) fn take(&self, id: TaskId) -> TaskBodyWith<S> {
        unsafe { (*self.0[id].get()).take().expect("task executed twice") }
    }
}

/// The event gate of the idle protocol: a generation counter bumped on every
/// publication of new work, plus a `done` latch flipped by the completion
/// countdown.  Workers park on the condition variable when a full scan of
/// all deques found nothing and the generation has not moved since the scan
/// started — so a publication between scan and park is never lost.
pub(crate) struct IdleGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    generation: u64,
    sleepers: usize,
    done: bool,
}

impl IdleGate {
    pub(crate) fn new() -> Self {
        IdleGate {
            state: Mutex::new(GateState {
                generation: 0,
                sleepers: 0,
                done: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Announce that new tasks were pushed on some deque.
    pub(crate) fn publish(&self) {
        let mut st = self.state.lock();
        st.generation += 1;
        if st.sleepers > 0 {
            self.cv.notify_all();
        }
    }

    /// Announce that every task has completed (executor) or that the pool
    /// is shutting down ([`crate::pool::TaskPool`]).
    pub(crate) fn finish(&self) {
        let mut st = self.state.lock();
        st.done = true;
        self.cv.notify_all();
    }

    /// Park until something changes.  `seen` is the generation the caller's
    /// last (fruitless) scan started from; returns `true` when the caller
    /// should rescan for work and `false` when the graph has drained.
    pub(crate) fn park(&self, seen: &mut u64) -> bool {
        let mut st = self.state.lock();
        loop {
            if st.done {
                return false;
            }
            if st.generation != *seen {
                *seen = st.generation;
                return true;
            }
            st.sleepers += 1;
            if obs::enabled() {
                let reg = obs::registry();
                reg.parks.incr();
                let t0 = obs::now_ns();
                self.cv.wait(&mut st);
                reg.idle_ns.add(obs::now_ns() - t0);
            } else {
                self.cv.wait(&mut st);
            }
            st.sleepers -= 1;
        }
    }
}

/// Everything the workers share.
struct Scheduler<'g, S> {
    graph: &'g TaskGraph,
    /// Bottom levels, the scheduling priority (longest path to an exit).
    priority: Vec<f64>,
    /// Remaining-predecessor counters; the worker that drops one to zero
    /// owns the publication of that task.
    remaining_preds: Vec<AtomicUsize>,
    /// Countdown of unfinished tasks (completion detection).
    remaining_tasks: AtomicUsize,
    slots: BodySlots<S>,
    stealers: Vec<Stealer<TaskId>>,
    gate: IdleGate,
    /// Observability run id for this graph execution; 0 when tracing is off
    /// at launch, making every per-task tracing branch a single predictable
    /// integer compare.
    trace_id: u64,
}

impl<S> Scheduler<'_, S> {
    /// Run `id` with the worker's scratch, release its successors, and
    /// return the highest-priority newly-ready successor for direct
    /// execution (work-first handoff).
    ///
    /// When tracing is on, the span (including its end timestamp) is
    /// recorded *before* any successor is released: the recorded trace then
    /// satisfies `end[pred] <= start[succ]` for every DAG edge, which is the
    /// invariant the critical-path analyzer relies on.
    fn run_task(
        &self,
        id: TaskId,
        me: usize,
        local: &Worker<TaskId>,
        scratch: &mut S,
    ) -> Option<TaskId> {
        if self.trace_id != 0 {
            let start_ns = obs::now_ns();
            self.slots.take(id)(scratch);
            obs::record_span(obs::Span {
                submission: self.trace_id,
                task: id as u32,
                kind: self.graph.task(id).tag,
                worker: me as u32,
                start_ns,
                end_ns: obs::now_ns(),
            });
            obs::registry().tasks_executed.incr();
        } else {
            self.slots.take(id)(scratch);
        }

        let mut ready: Vec<TaskId> = Vec::new();
        for &succ in self.graph.successors(id) {
            if self.remaining_preds[succ].fetch_sub(1, Ordering::AcqRel) == 1 {
                ready.push(succ);
            }
        }
        // Ascending bottom level: the LIFO pop (and the direct handoff of
        // the last element) then serves the most critical successor first.
        ready.sort_by(|&a, &b| {
            self.priority[a]
                .partial_cmp(&self.priority[b])
                .expect("bottom levels are finite")
        });
        let next = ready.pop();
        if !ready.is_empty() {
            for t in ready {
                local.push(t);
            }
            self.gate.publish();
        }

        if self.remaining_tasks.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.gate.finish();
        }
        next
    }

    /// One full scan: the local deque first, then every victim in a
    /// pseudo-random order starting from `rng`'s draw.
    fn find_task(&self, me: usize, local: &Worker<TaskId>, rng: &mut u64) -> Option<TaskId> {
        if let Some(id) = local.pop() {
            return Some(id);
        }
        let n = self.stealers.len();
        if n <= 1 {
            return None;
        }
        let start = (xorshift(rng) as usize) % n;
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == me {
                continue;
            }
            loop {
                match self.stealers[victim].steal() {
                    Steal::Success(id) => {
                        if obs::enabled() {
                            obs::registry().steals.incr();
                        }
                        return Some(id);
                    }
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }

    fn worker_loop(&self, me: usize, local: Worker<TaskId>, scratch: &mut S) {
        // If a task body panics, this worker unwinds without ever reaching
        // the completion countdown; the drain guard then flips the `done`
        // latch so the other workers exit instead of parking forever, and
        // `thread::scope` re-propagates the panic to the caller.
        struct PanicDrain<'a>(&'a IdleGate);
        impl Drop for PanicDrain<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.finish();
                }
            }
        }
        let _drain = PanicDrain(&self.gate);

        let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ ((me as u64 + 1) << 17);
        let mut seen = 0u64;
        loop {
            while let Some(id) = self.find_task(me, &local, &mut rng) {
                let mut current = id;
                while let Some(next) = self.run_task(current, me, &local, scratch) {
                    current = next;
                }
            }
            if !self.gate.park(&mut seen) {
                return;
            }
        }
    }
}

#[inline]
pub(crate) fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Execute every task of `graph` on `threads` worker threads, respecting the
/// data-flow dependencies.  `bodies[i]` is run exactly once for task `i`.
///
/// Workers follow the work-stealing, event-driven protocol described in the
/// [module docs](self): per-worker LIFO deques, random stealing,
/// bottom-level priorities, and a condition-variable idle gate instead of
/// any timed polling.  Any interleaving the scheduler produces is a
/// topological order of `graph`, so the result equals
/// [`execute_sequential`]'s whenever the bodies only communicate through
/// data the graph knows about.
///
/// Panics if `bodies.len() != graph.len()`.
///
/// # Examples
///
/// ```
/// use bidiag_runtime::{execute_parallel, AccessMode, TaskBody, TaskGraph};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// // a -> b and a -> c: both updates read the value task `a` wrote.
/// let mut g = TaskGraph::new();
/// let data = 7u64; // opaque data key chosen by the caller
/// g.add_task(1.0, 0, 0, &[(data, AccessMode::Write)]);
/// g.add_task(1.0, 0, 0, &[(data, AccessMode::Read)]);
/// g.add_task(1.0, 0, 0, &[(data, AccessMode::Read)]);
///
/// let cell = Arc::new(AtomicU64::new(0));
/// let bodies: Vec<TaskBody> = (0..3)
///     .map(|i| {
///         let cell = Arc::clone(&cell);
///         Box::new(move || {
///             if i == 0 {
///                 cell.store(40, Ordering::SeqCst); // the write
///             } else {
///                 cell.fetch_add(1, Ordering::SeqCst); // runs after it
///             }
///         }) as TaskBody
///     })
///     .collect();
/// execute_parallel(&g, bodies, 4);
/// assert_eq!(cell.load(Ordering::SeqCst), 42);
/// ```
pub fn execute_parallel(graph: &TaskGraph, bodies: Vec<TaskBody>, threads: usize) {
    let bodies: Vec<TaskBodyWith<()>> = bodies
        .into_iter()
        .map(|b| Box::new(move |_: &mut ()| b()) as TaskBodyWith<()>)
        .collect();
    execute_parallel_with(graph, bodies, threads, || ());
}

/// Like [`execute_parallel`], but every worker thread owns a private
/// scratch value created by `init` and passes it to each body it runs.
///
/// This is the entry point of the blocked-kernel data plane: `bidiag-core`
/// hands a `Workspace`-producing `init` here, so the compact-WY kernels a
/// worker executes share one growable workspace instead of reallocating
/// scratch per task.  `init` runs once per worker, on that worker's thread.
pub fn execute_parallel_with<S>(
    graph: &TaskGraph,
    bodies: Vec<TaskBodyWith<S>>,
    threads: usize,
    init: impl Fn() -> S + Sync,
) {
    let n = graph.len();
    assert_eq!(bodies.len(), n, "one body per task is required");
    if n == 0 {
        return;
    }
    let threads = threads.max(1).min(n);

    let scheduler = Scheduler {
        graph,
        priority: graph.bottom_levels(),
        remaining_preds: (0..n)
            .map(|i| AtomicUsize::new(graph.predecessors(i).len()))
            .collect(),
        remaining_tasks: AtomicUsize::new(n),
        slots: BodySlots::new(bodies),
        stealers: Vec::new(),
        gate: IdleGate::new(),
        trace_id: if obs::enabled() {
            obs::next_submission_id()
        } else {
            0
        },
    };

    let workers: Vec<Worker<TaskId>> = (0..threads).map(|_| Worker::new_lifo()).collect();
    let mut scheduler = scheduler;
    scheduler.stealers = workers.iter().map(Worker::stealer).collect();
    let scheduler = scheduler;

    // Seed the source tasks round-robin, highest bottom level first; within
    // one deque the seeds are pushed in ascending priority so the LIFO pop
    // serves the most critical one first.
    let mut sources: Vec<TaskId> = (0..n)
        .filter(|&i| graph.predecessors(i).is_empty())
        .collect();
    sources.sort_by(|&a, &b| {
        scheduler.priority[b]
            .partial_cmp(&scheduler.priority[a])
            .expect("bottom levels are finite")
    });
    let mut per_worker: Vec<Vec<TaskId>> = (0..threads).map(|_| Vec::new()).collect();
    for (rank, id) in sources.into_iter().enumerate() {
        per_worker[rank % threads].push(id);
    }
    for (w, seeds) in workers.iter().zip(&per_worker) {
        for &id in seeds.iter().rev() {
            w.push(id);
        }
    }

    std::thread::scope(|scope| {
        for (me, local) in workers.into_iter().enumerate() {
            let scheduler = &scheduler;
            let init = &init;
            scope.spawn(move || {
                let mut scratch = init();
                scheduler.worker_loop(me, local, &mut scratch)
            });
        }
    });

    assert_eq!(
        scheduler.remaining_tasks.load(Ordering::Acquire),
        0,
        "not every task was executed"
    );
}

/// Execute the tasks sequentially in insertion order (which is a topological
/// order).  This is the reference execution used by the correctness tests.
pub fn execute_sequential(graph: &TaskGraph, bodies: Vec<TaskBody>) {
    assert_eq!(bodies.len(), graph.len());
    for body in bodies {
        body();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AccessMode::{Read, Write};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    /// Build a random-ish layered DAG and check that parallel execution
    /// respects dependencies (every predecessor ran before its successor).
    #[test]
    fn parallel_execution_respects_dependencies() {
        let mut g = TaskGraph::new();
        // 4 chains of 25 tasks sharing a common root and a common sink.
        g.add_task(1.0, 0, 0, &[(999, Write)]);
        for c in 0..4u64 {
            for s in 0..25u64 {
                let key = 1000 + c;
                if s == 0 {
                    g.add_task(1.0, 0, 0, &[(999, Read), (key, Write)]);
                } else {
                    g.add_task(1.0, 0, 0, &[(key, Write)]);
                }
            }
        }
        let sink_accesses: Vec<_> = (0..4u64)
            .map(|c| (1000 + c, Read))
            .chain([(2000, Write)])
            .collect();
        g.add_task(1.0, 0, 0, &sink_accesses);

        let n = g.len();
        let stamp = Arc::new(AtomicU64::new(1));
        let order: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let bodies: Vec<TaskBody> = (0..n)
            .map(|i| {
                let stamp = Arc::clone(&stamp);
                let order = Arc::clone(&order);
                Box::new(move || {
                    let t = stamp.fetch_add(1, Ordering::SeqCst);
                    order[i].store(t, Ordering::SeqCst);
                }) as TaskBody
            })
            .collect();
        execute_parallel(&g, bodies, 8);

        for id in 0..n {
            let t = order[id].load(Ordering::SeqCst);
            assert!(t > 0, "task {id} never ran");
            for &p in g.predecessors(id) {
                let tp = order[p].load(Ordering::SeqCst);
                assert!(tp < t, "task {id} ran before its predecessor {p}");
            }
        }
    }

    #[test]
    fn parallel_and_sequential_produce_same_result() {
        // Sum reduction where each task adds its id into a shared accumulator
        // guarded by dependencies (single chain).
        let mut g = TaskGraph::new();
        let n = 50;
        for _ in 0..n {
            g.add_task(1.0, 0, 0, &[(1, Write)]);
        }
        let acc_par = Arc::new(AtomicU64::new(0));
        let bodies_par: Vec<TaskBody> = (0..n)
            .map(|i| {
                let acc = Arc::clone(&acc_par);
                Box::new(move || {
                    acc.fetch_add(i as u64, Ordering::SeqCst);
                }) as TaskBody
            })
            .collect();
        execute_parallel(&g, bodies_par, 4);

        let acc_seq = Arc::new(AtomicU64::new(0));
        let bodies_seq: Vec<TaskBody> = (0..n)
            .map(|i| {
                let acc = Arc::clone(&acc_seq);
                Box::new(move || {
                    acc.fetch_add(i as u64, Ordering::SeqCst);
                }) as TaskBody
            })
            .collect();
        execute_sequential(&g, bodies_seq);
        assert_eq!(
            acc_par.load(Ordering::SeqCst),
            acc_seq.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = TaskGraph::new();
        execute_parallel(&g, Vec::new(), 4);
        execute_sequential(&g, Vec::new());
    }

    #[test]
    fn single_thread_execution_works() {
        let mut g = TaskGraph::new();
        for _ in 0..10 {
            g.add_task(1.0, 0, 0, &[(7, Write)]);
        }
        let counter = Arc::new(AtomicU64::new(0));
        let bodies: Vec<TaskBody> = (0..10)
            .map(|_| {
                let c = Arc::clone(&counter);
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as TaskBody
            })
            .collect();
        execute_parallel(&g, bodies, 1);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn more_threads_than_tasks_terminates() {
        let mut g = TaskGraph::new();
        g.add_task(1.0, 0, 0, &[(1, Write)]);
        g.add_task(1.0, 0, 0, &[(1, Write)]);
        let counter = Arc::new(AtomicU64::new(0));
        let bodies: Vec<TaskBody> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as TaskBody
            })
            .collect();
        execute_parallel(&g, bodies, 64);
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn panicking_body_propagates_instead_of_deadlocking() {
        // One source panics while an independent chain keeps the other
        // workers busy; the pool must drain (no worker parks forever) and
        // the panic must reach the caller through thread::scope.
        let mut g = TaskGraph::new();
        g.add_task(1.0, 0, 0, &[(1, Write)]); // the panicking source
        for _ in 0..50 {
            g.add_task(1.0, 0, 0, &[(2, Write)]); // independent chain
        }
        let n = g.len();
        let bodies: Vec<TaskBody> = (0..n)
            .map(|i| {
                Box::new(move || {
                    if i == 0 {
                        panic!("kernel failure");
                    }
                }) as TaskBody
            })
            .collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_parallel(&g, bodies, 4);
        }));
        assert!(result.is_err(), "the body panic must propagate");
    }

    #[test]
    fn wide_fanout_releases_all_successors() {
        // One root releasing 100 independent successors at once exercises
        // the batched publish path (sort + push + single publish).
        let mut g = TaskGraph::new();
        g.add_task(1.0, 0, 0, &[(0, Write)]);
        for i in 0..100u64 {
            g.add_task((i % 7) as f64 + 1.0, 0, 0, &[(0, Read), (i + 1, Write)]);
        }
        let counter = Arc::new(AtomicU64::new(0));
        let bodies: Vec<TaskBody> = (0..g.len())
            .map(|_| {
                let c = Arc::clone(&counter);
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as TaskBody
            })
            .collect();
        execute_parallel(&g, bodies, 8);
        assert_eq!(counter.load(Ordering::SeqCst), 101);
    }
}
