//! Critical-path analysis of recorded task traces.
//!
//! The paper's Section IV argument is a closed-form critical-path model of
//! the tiled GE2BND DAG.  The observability plane lets us check that model
//! against *measurements*: every task span recorded by the executor carries
//! its task id, so a run's spans can be reattached to the [`TaskGraph`] it
//! executed and the longest dependent chain recomputed from what actually
//! ran.  Because the executor records a task's span (including its end
//! timestamp) before releasing any successor, a correct run always satisfies
//! `end[pred] <= start[succ]` on every DAG edge — making the comparison
//! deterministic rather than timing-sensitive.

use crate::graph::TaskGraph;
use bidiag_obs::Span;

/// Result of checking one run's recorded spans against its task graph.
#[derive(Clone, Debug)]
pub struct TraceValidation {
    /// Distinct graph tasks with a recorded span.
    pub tasks_recorded: usize,
    /// Tasks in the graph (`tasks_recorded` should equal this when the ring
    /// did not wrap).
    pub tasks_expected: usize,
    /// DAG edges whose endpoint spans violate `end[pred] <= start[succ]`.
    pub edge_violations: usize,
    /// Longest dependent chain, by task count, restricted to recorded tasks.
    pub chain_tasks: usize,
    /// Sum of measured span durations (ns) along one such maximal chain.
    pub chain_ns: u64,
    /// Wall-clock extent of the run: latest end minus earliest start (ns).
    pub makespan_ns: u64,
}

impl TraceValidation {
    /// True when every task was recorded, no edge violated the
    /// record-before-release invariant, and the measured chain length
    /// matches the model's longest chain.
    pub fn matches_model(&self, graph: &TaskGraph) -> bool {
        self.tasks_recorded == self.tasks_expected
            && self.edge_violations == 0
            && self.chain_tasks == graph.longest_chain_tasks()
    }
}

/// Reattach `spans` (one GE2BND/pipeline run, already filtered to a single
/// submission id) to `graph` and recompute the longest dependent chain from
/// the measurement.
///
/// Spans whose task id falls outside the graph are ignored; if a task id
/// appears twice (ring wrap of a huge run), the last span wins.
pub fn validate_trace(graph: &TaskGraph, spans: &[Span]) -> TraceValidation {
    let n = graph.len();
    let mut recorded: Vec<Option<Span>> = vec![None; n];
    for s in spans {
        if (s.task as usize) < n {
            recorded[s.task as usize] = Some(*s);
        }
    }
    let tasks_recorded = recorded.iter().flatten().count();

    let mut edge_violations = 0usize;
    let mut first_start = u64::MAX;
    let mut last_end = 0u64;
    // Insertion order is a topological order, so one forward sweep computes
    // the deepest chain over recorded tasks; ties prefer the predecessor
    // chain with the larger measured duration.
    let mut depth = vec![0usize; n];
    let mut chain_dur = vec![0u64; n];
    let mut best = (0usize, 0u64);
    for id in 0..n {
        let span = match recorded[id] {
            Some(s) => s,
            None => continue,
        };
        first_start = first_start.min(span.start_ns);
        last_end = last_end.max(span.end_ns);
        let mut d = (0usize, 0u64);
        for &p in graph.predecessors(id) {
            if let Some(ps) = recorded[p] {
                if ps.end_ns > span.start_ns {
                    edge_violations += 1;
                }
                d = d.max((depth[p], chain_dur[p]));
            }
        }
        depth[id] = d.0 + 1;
        chain_dur[id] = d.1 + span.end_ns.saturating_sub(span.start_ns);
        best = best.max((depth[id], chain_dur[id]));
    }

    TraceValidation {
        tasks_recorded,
        tasks_expected: n,
        edge_violations,
        chain_tasks: best.0,
        chain_ns: best.1,
        makespan_ns: if tasks_recorded == 0 {
            0
        } else {
            last_end.saturating_sub(first_start)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AccessMode::{Read, Write};

    fn span(task: u32, start_ns: u64, end_ns: u64) -> Span {
        Span {
            submission: 1,
            task,
            kind: 0,
            worker: 0,
            start_ns,
            end_ns,
        }
    }

    /// Diamond: 0 -> {1, 2} -> 3.  Chain by count is 3.
    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new();
        g.add_task(1.0, 0, 0, &[(0, Write)]);
        g.add_task(1.0, 0, 0, &[(0, Read), (1, Write)]);
        g.add_task(1.0, 0, 0, &[(0, Read), (2, Write)]);
        g.add_task(1.0, 0, 0, &[(1, Read), (2, Read), (3, Write)]);
        g
    }

    #[test]
    fn longest_chain_counts_tasks() {
        let g = diamond();
        assert_eq!(g.longest_chain_tasks(), 3);
        assert_eq!(TaskGraph::new().longest_chain_tasks(), 0);
    }

    #[test]
    fn consistent_trace_matches_model() {
        let g = diamond();
        let spans = vec![
            span(0, 0, 10),
            span(1, 10, 30),
            span(2, 12, 25),
            span(3, 30, 40),
        ];
        let v = validate_trace(&g, &spans);
        assert_eq!(v.tasks_recorded, 4);
        assert_eq!(v.edge_violations, 0);
        assert_eq!(v.chain_tasks, 3);
        // Deepest chain picks the longer-duration arm: 10 + 20 + 10.
        assert_eq!(v.chain_ns, 40);
        assert_eq!(v.makespan_ns, 40);
        assert!(v.matches_model(&g));
    }

    #[test]
    fn edge_violation_is_detected() {
        let g = diamond();
        let spans = vec![
            span(0, 0, 10),
            span(1, 5, 30), // starts before its predecessor ended
            span(2, 12, 25),
            span(3, 30, 40),
        ];
        let v = validate_trace(&g, &spans);
        assert_eq!(v.edge_violations, 1);
        assert!(!v.matches_model(&g));
    }

    #[test]
    fn missing_span_fails_completeness() {
        let g = diamond();
        let spans = vec![span(0, 0, 10), span(1, 10, 30), span(3, 30, 40)];
        let v = validate_trace(&g, &spans);
        assert_eq!(v.tasks_recorded, 3);
        assert!(!v.matches_model(&g));
    }
}
