//! Forced-backend equivalence matrix for the SIMD layer.
//!
//! Every kernel routed through `bidiag_matrix::simd` must produce the same
//! answer under the scalar and AVX2 backends, exercised through the *real*
//! dispatch path: [`simd::with_forced_backend`] pins the process-global
//! backend, then the public entry points (`simd::axpy`, `gemm_nn`, ...)
//! consult [`simd::backend`] exactly as production code does.
//!
//! Tolerances follow the module's numerical contract: the scalar backend
//! is unfused, AVX2 fuses multiply-adds, so the backends agree to ~1 ulp
//! per operation — a flat `1e-15` for element-wise kernels, `1e-15 *
//! sqrt(n)` for length-`n` accumulations, and a backward-style normwise
//! `1e-15 * sqrt(k)` for GEMM.
//!
//! On a host without AVX2+FMA the cross-backend half of each test is
//! skipped (the suite then only pins scalar-vs-scalar determinism, and the
//! `BIDIAG_SIMD=scalar` CI leg still runs everything).

use bidiag_matrix::gemm::{gemm_nn, gemm_nn_packed, gemm_nt, gemm_tn, GemmScratch};
use bidiag_matrix::gen::random_gaussian;
use bidiag_matrix::simd::{self, SimdBackend};
use bidiag_matrix::Matrix;
use proptest::prelude::*;

/// The ISSUE-mandated size ladder: degenerate (1), below/at/above every
/// vector step (3..9), straddling the 4-lane and unroll boundaries
/// (15/16/17), a cache-friendly block (64) and a ragged prime (97).
const SIZES: [usize; 13] = [1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 64, 97];

/// Deterministic test vector (same LCG as the simd unit tests).
fn test_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

fn acc_tol(n: usize) -> f64 {
    1e-15 * (n as f64).sqrt().max(1.0)
}

/// Run `f` once under each backend; returns `None` for the AVX2 result on
/// hosts without AVX2+FMA.
fn under_both<R>(f: impl Fn() -> R) -> (R, Option<R>) {
    let scalar = simd::with_forced_backend(SimdBackend::Scalar, &f);
    let avx2 = simd::avx2_available().then(|| simd::with_forced_backend(SimdBackend::Avx2, &f));
    (scalar, avx2)
}

#[test]
fn primitive_kernels_agree_across_backends_on_size_ladder() {
    for &n in &SIZES {
        let x0 = test_vec(n, 1 + n as u64);
        let x1 = test_vec(n, 2 + n as u64);
        let x2 = test_vec(n, 3 + n as u64);
        let x3 = test_vec(n, 4 + n as u64);
        let y0 = test_vec(n, 5 + n as u64);

        let (s, v) = under_both(|| {
            let be = simd::backend();
            let mut y = y0.clone();
            simd::axpy(be, &mut y, 0.37, &x0);
            let mut y4 = y0.clone();
            simd::axpy4(be, &mut y4, [0.3, -0.7, 1.1, 0.05], &x0, &x1, &x2, &x3);
            let d = simd::dot(be, &x0, &x1);
            let d4 = simd::dot4(be, &y0, &x0, &x1, &x2, &x3);
            let mut xs = x2.clone();
            let mut ys = x3.clone();
            simd::rot_strips(be, &mut xs, &mut ys, 0.8, 0.6);
            (y, y4, d, d4, xs, ys)
        });
        let Some(v) = v else {
            eprintln!("skipping AVX2 half: not available on this host");
            return;
        };

        for i in 0..n {
            assert!(
                (s.0[i] - v.0[i]).abs() <= 1e-15 * s.0[i].abs().max(1.0),
                "axpy n={n} i={i}: {} vs {}",
                s.0[i],
                v.0[i]
            );
            assert!(
                (s.1[i] - v.1[i]).abs() <= 1e-15 * s.1[i].abs().max(1.0),
                "axpy4 n={n} i={i}"
            );
            assert!(
                (s.4[i] - v.4[i]).abs() <= 1e-15 * s.4[i].abs().max(1.0),
                "rot xs n={n} i={i}"
            );
            assert!(
                (s.5[i] - v.5[i]).abs() <= 1e-15 * s.5[i].abs().max(1.0),
                "rot ys n={n} i={i}"
            );
        }
        assert!(
            (s.2 - v.2).abs() <= acc_tol(n) * s.2.abs().max(1.0),
            "dot n={n}: {} vs {}",
            s.2,
            v.2
        );
        for j in 0..4 {
            assert!(
                (s.3[j] - v.3[j]).abs() <= acc_tol(n) * s.3[j].abs().max(1.0),
                "dot4 n={n} j={j}"
            );
        }
    }
}

#[test]
fn microkernel_agrees_across_backends_on_size_ladder() {
    for &kc in &SIZES {
        let ap = test_vec(kc * simd::MR, 11 + kc as u64);
        let bp = test_vec(kc * simd::NR, 13 + kc as u64);
        let (s, v) = under_both(|| simd::microkernel_8x4(simd::backend(), kc, &ap, &bp));
        let Some(v) = v else {
            eprintln!("skipping AVX2 half: not available on this host");
            return;
        };
        for j in 0..simd::NR {
            for i in 0..simd::MR {
                assert!(
                    (s[j][i] - v[j][i]).abs() <= acc_tol(kc) * s[j][i].abs().max(1.0),
                    "microkernel kc={kc} i={i} j={j}: {} vs {}",
                    s[j][i],
                    v[j][i]
                );
            }
        }
    }
}

/// Backward-style normwise gap between two GEMM results sharing the same
/// operands: `||s - v|| / max(||s||, ||A|| ||B||)`.
fn gemm_gap(s: &Matrix, v: &Matrix, a: &Matrix, b: &Matrix) -> f64 {
    s.sub(v).norm_fro()
        / s.norm_fro()
            .max(a.norm_fro() * b.norm_fro())
            .max(f64::EPSILON)
}

#[test]
fn gemm_dispatch_agrees_across_backends_on_size_ladder() {
    // The full m x n x k cross-product is 13^3 GEMMs per variant; thin it to
    // the diagonal-plus-extremes mix that still straddles every microkernel
    // and cache-block boundary in each dimension.
    for &m in &SIZES {
        for &n in &[1usize, 8, 17, 64, 97] {
            for &k in &[1usize, 4, 31, 97] {
                let a = random_gaussian(m, k, (m * 211 + k) as u64);
                let b = random_gaussian(k, n, (n * 223 + k) as u64);
                let c0 = random_gaussian(m, n, (m * 227 + n) as u64);
                let (s, v) = under_both(|| {
                    let mut c = c0.clone();
                    gemm_nn(&mut c.as_view_mut(), 1.25, a.as_view(), b.as_view());
                    c
                });
                let Some(v) = v else {
                    eprintln!("skipping AVX2 half: not available on this host");
                    return;
                };
                assert!(
                    gemm_gap(&s, &v, &a, &b) <= acc_tol(k.max(1)),
                    "gemm_nn {m}x{n}x{k}: gap {}",
                    gemm_gap(&s, &v, &a, &b)
                );
            }
        }
    }
}

#[test]
fn gemm_transposed_variants_agree_across_backends() {
    for &(m, n, k) in &[
        (31usize, 17usize, 97usize),
        (97, 64, 31),
        (8, 8, 8),
        (5, 3, 7),
    ] {
        let at = random_gaussian(k, m, (m * 229 + k) as u64); // op(A) = A^T
        let bt = random_gaussian(n, k, (n * 233 + k) as u64); // op(B) = B^T
        let a = random_gaussian(m, k, (m * 239 + k) as u64);
        let b = random_gaussian(k, n, (n * 241 + k) as u64);
        let c0 = random_gaussian(m, n, (m * 251 + n) as u64);

        let (s, v) = under_both(|| {
            let mut ctn = c0.clone();
            gemm_tn(&mut ctn.as_view_mut(), -0.5, at.as_view(), b.as_view());
            let mut cnt = c0.clone();
            gemm_nt(&mut cnt.as_view_mut(), 2.0, a.as_view(), bt.as_view());
            (ctn, cnt)
        });
        let Some(v) = v else {
            eprintln!("skipping AVX2 half: not available on this host");
            return;
        };
        assert!(
            gemm_gap(&s.0, &v.0, &at, &b) <= acc_tol(k),
            "gemm_tn {m}x{n}x{k}"
        );
        assert!(
            gemm_gap(&s.1, &v.1, &a, &bt) <= acc_tol(k),
            "gemm_nt {m}x{n}x{k}"
        );
    }
}

#[test]
fn gemm_on_ld_subviews_agrees_across_backends() {
    // Windows of a larger buffer (leading dimension > rows): the packed
    // path's pack routines and the AVX2 microkernel must agree on strided
    // inputs exactly as on contiguous ones.
    let big_a = random_gaussian(120, 120, 17);
    let big_b = random_gaussian(120, 120, 18);
    for &(m, n, k, ro, co) in &[
        (97usize, 33usize, 41usize, 11usize, 5usize),
        (64, 64, 64, 1, 19),
        (9, 17, 97, 23, 0),
    ] {
        let c0 = random_gaussian(m, n, (ro * 257 + co) as u64);
        let a = big_a.block(ro, co, m, k);
        let b = big_b.block(co, ro, k, n);
        let (s, v) = under_both(|| {
            let mut scratch = GemmScratch::new();
            let mut c = c0.clone();
            gemm_nn_packed(
                &mut c.as_view_mut(),
                1.0,
                big_a.as_view().submatrix(ro, co, m, k),
                big_b.as_view().submatrix(co, ro, k, n),
                &mut scratch,
            );
            c
        });
        let Some(v) = v else {
            eprintln!("skipping AVX2 half: not available on this host");
            return;
        };
        assert!(
            gemm_gap(&s, &v, &a, &b) <= acc_tol(k),
            "subview gemm {m}x{n}x{k} @({ro},{co})"
        );
    }
}

/// The `BIDIAG_SIMD` override must be honored by a *fresh process* (the
/// in-crate unit tests can only pin the pure policy function, because by
/// the time any test runs the process-global decision may already be
/// made). Re-exec this test binary filtered to this very test with the
/// env var set; the child branch prints the decided backend.
#[test]
fn env_override_is_respected_at_process_startup() {
    if std::env::var("SIMD_BACKENDS_CHILD").is_ok() {
        println!("decided-backend={}", simd::backend().name());
        return;
    }
    let exe = std::env::current_exe().unwrap();
    let mut cases = vec![("scalar", "scalar")];
    if simd::avx2_available() {
        cases.push(("avx2", "avx2"));
        cases.push(("auto", "avx2"));
    }
    for (env_val, expect) in cases {
        let out = std::process::Command::new(&exe)
            .args([
                "env_override_is_respected_at_process_startup",
                "--exact",
                "--nocapture",
            ])
            .env("BIDIAG_SIMD", env_val)
            .env("SIMD_BACKENDS_CHILD", "1")
            .output()
            .expect("re-exec test binary");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success() && stdout.contains(&format!("decided-backend={expect}")),
            "BIDIAG_SIMD={env_val}: expected {expect}, child said:\n{stdout}"
        );
    }
    // An unrecognized value must abort startup with a diagnostic, not
    // silently fall back.
    let out = std::process::Command::new(&exe)
        .args([
            "env_override_is_respected_at_process_startup",
            "--exact",
            "--nocapture",
        ])
        .env("BIDIAG_SIMD", "sse9000")
        .env("SIMD_BACKENDS_CHILD", "1")
        .output()
        .expect("re-exec test binary");
    assert!(
        !out.status.success(),
        "BIDIAG_SIMD=sse9000 should fail the child process"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomized shapes and scalars: dispatching GEMM agrees across
    /// backends everywhere, not just on the curated ladder.
    #[test]
    fn gemm_agrees_across_backends_on_random_shapes(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..48,
        seed in 0u64..1000,
    ) {
        let a = random_gaussian(m, k, seed.wrapping_mul(3).wrapping_add(1));
        let b = random_gaussian(k, n, seed.wrapping_mul(5).wrapping_add(2));
        let c0 = random_gaussian(m, n, seed.wrapping_mul(7).wrapping_add(3));
        let (s, v) = under_both(|| {
            let mut c = c0.clone();
            gemm_nn(&mut c.as_view_mut(), 1.0, a.as_view(), b.as_view());
            c
        });
        if let Some(v) = v {
            prop_assert!(
                gemm_gap(&s, &v, &a, &b) <= acc_tol(k),
                "gemm {}x{}x{} seed {}: gap {}", m, n, k, seed, gemm_gap(&s, &v, &a, &b)
            );
        }
    }

    /// Randomized axpy/dot lengths, including the remainder-heavy short
    /// range the size ladder samples only sparsely.
    #[test]
    fn primitives_agree_across_backends_on_random_lengths(
        n in 1usize..200,
        seed in 0u64..1000,
    ) {
        let x = test_vec(n, seed.wrapping_add(11));
        let y0 = test_vec(n, seed.wrapping_add(13));
        let (s, v) = under_both(|| {
            let be = simd::backend();
            let mut y = y0.clone();
            simd::axpy(be, &mut y, -0.91, &x);
            (y, simd::dot(be, &x, &y0))
        });
        if let Some(v) = v {
            for i in 0..n {
                prop_assert!((s.0[i] - v.0[i]).abs() <= 1e-15 * s.0[i].abs().max(1.0));
            }
            prop_assert!((s.1 - v.1).abs() <= acc_tol(n) * s.1.abs().max(1.0));
        }
    }
}
