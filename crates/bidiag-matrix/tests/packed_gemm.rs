//! Property tests of the GEMM layer: every path (dispatching, forced
//! packed, forced unpacked) of every transpose variant must match the
//! naive triple-loop reference to 1e-13 (relative) on a ragged shape
//! sweep that straddles the microkernel (`MR`/`NR`), cache-block and
//! dispatch-crossover boundaries.

use bidiag_matrix::checks::{matmul_reference, RefOp};
use bidiag_matrix::gemm::{
    gemm_nn, gemm_nn_packed, gemm_nn_unpacked, gemm_nt, gemm_nt_packed, gemm_nt_unpacked, gemm_tn,
    gemm_tn_packed, gemm_tn_unpacked, GemmScratch,
};
use bidiag_matrix::gen::random_gaussian;
use bidiag_matrix::Matrix;

/// Ragged sizes: 1 (degenerate), 3/7 (below every unroll), 31 (straddles
/// MR/NR panels), 64 (reference tile size), 97 (above the crossover and
/// not a multiple of anything).
const SIZES: [usize; 6] = [1, 3, 7, 31, 64, 97];
const TOL: f64 = 1e-13;

/// Normwise error against the scale of the *operands*, not just the result:
/// `||want - got|| / max(||want||, |alpha| ||A|| ||B||)`.  A cancellation in
/// the product must not amplify a ~ulp rounding difference (the SIMD
/// microkernel fuses multiply-adds; the triple-loop reference does not) into
/// a spurious relative-error failure.
fn rel_err(want: &Matrix, got: &Matrix, alpha: f64, a: &Matrix, b: &Matrix) -> f64 {
    let scale = want
        .norm_fro()
        .max(alpha.abs() * a.norm_fro() * b.norm_fro())
        .max(f64::EPSILON);
    want.sub(got).norm_fro() / scale
}

/// Reference `C += alpha * op(A) * op(B)` built from the naive triple loop.
fn expected(c0: &Matrix, alpha: f64, a: &Matrix, op_a: RefOp, b: &Matrix, op_b: RefOp) -> Matrix {
    let mut e = c0.clone();
    matmul_reference(&mut e, alpha, a, op_a, b, op_b);
    e
}

#[test]
fn gemm_nn_matches_triple_loop_on_ragged_shapes() {
    let mut scratch = GemmScratch::new();
    for &m in &SIZES {
        for &n in &SIZES {
            for &k in &SIZES {
                let a = random_gaussian(m, k, (m * 101 + k) as u64);
                let b = random_gaussian(k, n, (n * 103 + k) as u64);
                let c0 = random_gaussian(m, n, (m * 107 + n) as u64);
                let want = expected(&c0, 1.5, &a, RefOp::None, &b, RefOp::None);

                let mut c = c0.clone();
                gemm_nn(&mut c.as_view_mut(), 1.5, a.as_view(), b.as_view());
                assert!(
                    rel_err(&want, &c, 1.5, &a, &b) < TOL,
                    "nn dispatch {m}x{n}x{k}"
                );

                let mut c = c0.clone();
                gemm_nn_unpacked(&mut c.as_view_mut(), 1.5, a.as_view(), b.as_view());
                assert!(
                    rel_err(&want, &c, 1.5, &a, &b) < TOL,
                    "nn unpacked {m}x{n}x{k}"
                );

                let mut c = c0.clone();
                gemm_nn_packed(
                    &mut c.as_view_mut(),
                    1.5,
                    a.as_view(),
                    b.as_view(),
                    &mut scratch,
                );
                assert!(
                    rel_err(&want, &c, 1.5, &a, &b) < TOL,
                    "nn packed {m}x{n}x{k}"
                );
            }
        }
    }
}

#[test]
fn gemm_tn_matches_triple_loop_on_ragged_shapes() {
    let mut scratch = GemmScratch::new();
    for &m in &SIZES {
        for &n in &SIZES {
            for &k in &SIZES {
                // op(A) = A^T with A stored k x m.
                let a = random_gaussian(k, m, (m * 109 + k) as u64);
                let b = random_gaussian(k, n, (n * 113 + k) as u64);
                let c0 = random_gaussian(m, n, (m * 127 + n) as u64);
                let want = expected(&c0, -0.75, &a, RefOp::Transpose, &b, RefOp::None);

                let mut c = c0.clone();
                gemm_tn(&mut c.as_view_mut(), -0.75, a.as_view(), b.as_view());
                assert!(
                    rel_err(&want, &c, 0.75, &a, &b) < TOL,
                    "tn dispatch {m}x{n}x{k}"
                );

                let mut c = c0.clone();
                gemm_tn_unpacked(&mut c.as_view_mut(), -0.75, a.as_view(), b.as_view());
                assert!(
                    rel_err(&want, &c, 0.75, &a, &b) < TOL,
                    "tn unpacked {m}x{n}x{k}"
                );

                let mut c = c0.clone();
                gemm_tn_packed(
                    &mut c.as_view_mut(),
                    -0.75,
                    a.as_view(),
                    b.as_view(),
                    &mut scratch,
                );
                assert!(
                    rel_err(&want, &c, 0.75, &a, &b) < TOL,
                    "tn packed {m}x{n}x{k}"
                );
            }
        }
    }
}

#[test]
fn gemm_nt_matches_triple_loop_on_ragged_shapes() {
    let mut scratch = GemmScratch::new();
    for &m in &SIZES {
        for &n in &SIZES {
            for &k in &SIZES {
                // op(B) = B^T with B stored n x k.
                let a = random_gaussian(m, k, (m * 131 + k) as u64);
                let b = random_gaussian(n, k, (n * 137 + k) as u64);
                let c0 = random_gaussian(m, n, (m * 139 + n) as u64);
                let want = expected(&c0, 2.0, &a, RefOp::None, &b, RefOp::Transpose);

                let mut c = c0.clone();
                gemm_nt(&mut c.as_view_mut(), 2.0, a.as_view(), b.as_view());
                assert!(
                    rel_err(&want, &c, 2.0, &a, &b) < TOL,
                    "nt dispatch {m}x{n}x{k}"
                );

                let mut c = c0.clone();
                gemm_nt_unpacked(&mut c.as_view_mut(), 2.0, a.as_view(), b.as_view());
                assert!(
                    rel_err(&want, &c, 2.0, &a, &b) < TOL,
                    "nt unpacked {m}x{n}x{k}"
                );

                let mut c = c0.clone();
                gemm_nt_packed(
                    &mut c.as_view_mut(),
                    2.0,
                    a.as_view(),
                    b.as_view(),
                    &mut scratch,
                );
                assert!(
                    rel_err(&want, &c, 2.0, &a, &b) < TOL,
                    "nt packed {m}x{n}x{k}"
                );
            }
        }
    }
}

#[test]
fn packed_gemm_on_subviews_respects_leading_dimension() {
    // Windows of a larger buffer (ld > rows) through the packed path: the
    // pack routines must honour the view offsets and strides.
    let mut scratch = GemmScratch::new();
    let big_a = random_gaussian(120, 120, 7);
    let big_b = random_gaussian(120, 120, 8);
    let (m, n, k) = (97, 33, 41);
    let a = big_a.block(11, 5, m, k);
    let b = big_b.block(2, 19, k, n);
    let c0 = random_gaussian(m, n, 9);
    let want = expected(&c0, 1.0, &a, RefOp::None, &b, RefOp::None);

    let mut c = c0.clone();
    gemm_nn_packed(
        &mut c.as_view_mut(),
        1.0,
        big_a.as_view().submatrix(11, 5, m, k),
        big_b.as_view().submatrix(2, 19, k, n),
        &mut scratch,
    );
    assert!(rel_err(&want, &c, 1.0, &a, &b) < TOL);
}
