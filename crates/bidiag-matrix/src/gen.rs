//! Test-matrix generators.
//!
//! The paper validates its implementation with matrices of prescribed
//! singular values produced by LAPACK's `xLATMS`.  We reproduce the same
//! functionality: [`latms`] builds `A = U * diag(sigma) * V^T` with random
//! orthogonal factors obtained from Householder QR of Gaussian matrices.

use crate::dense::Matrix;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Prescribed singular-value profiles, mirroring the LATMS `MODE` parameter.
#[derive(Clone, Debug, PartialEq)]
pub enum SpectrumKind {
    /// All singular values equal to 1.
    Uniform,
    /// Geometric decay from 1 down to `cond^-1`: `sigma_i = cond^(-i/(n-1))`.
    Geometric {
        /// Condition number (ratio of largest to smallest singular value).
        cond: f64,
    },
    /// Arithmetic decay from 1 down to `cond^-1`.
    Arithmetic {
        /// Condition number (ratio of largest to smallest singular value).
        cond: f64,
    },
    /// One large singular value, the rest equal to `cond^-1`.
    OneLarge {
        /// Condition number (ratio of largest to smallest singular value).
        cond: f64,
    },
    /// Explicit list of singular values (must have length `min(m, n)`).
    Explicit(Vec<f64>),
}

impl SpectrumKind {
    /// Materialise the singular values, sorted in non-increasing order.
    pub fn values(&self, k: usize) -> Vec<f64> {
        let mut s = match self {
            SpectrumKind::Uniform => vec![1.0; k],
            SpectrumKind::Geometric { cond } => (0..k)
                .map(|i| {
                    if k == 1 {
                        1.0
                    } else {
                        cond.powf(-(i as f64) / ((k - 1) as f64))
                    }
                })
                .collect(),
            SpectrumKind::Arithmetic { cond } => (0..k)
                .map(|i| {
                    if k == 1 {
                        1.0
                    } else {
                        1.0 - (1.0 - 1.0 / cond) * (i as f64) / ((k - 1) as f64)
                    }
                })
                .collect(),
            SpectrumKind::OneLarge { cond } => {
                let mut v = vec![1.0 / cond; k];
                if k > 0 {
                    v[0] = 1.0;
                }
                v
            }
            SpectrumKind::Explicit(v) => {
                assert_eq!(v.len(), k, "explicit spectrum length mismatch");
                v.clone()
            }
        };
        s.sort_by(|a, b| b.partial_cmp(a).unwrap());
        s
    }
}

/// Standard normal matrix with a deterministic seed.
pub fn random_gaussian(m: usize, n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let normal = NormalBoxMuller::new();
    Matrix::from_fn(m, n, |_, _| normal.sample(&mut rng))
}

/// Uniform `[-1, 1]` matrix with a deterministic seed.
pub fn random_uniform(m: usize, n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = rand::distributions::Uniform::new_inclusive(-1.0, 1.0);
    Matrix::from_fn(m, n, |_, _| dist.sample(&mut rng))
}

/// Box–Muller standard normal sampler (keeps us independent of the
/// `rand_distr` crate, which is not in the approved dependency list).
struct NormalBoxMuller;

impl NormalBoxMuller {
    fn new() -> Self {
        Self
    }
    fn sample(&self, rng: &mut StdRng) -> f64 {
        let dist = rand::distributions::Uniform::new(f64::MIN_POSITIVE, 1.0f64);
        let u1: f64 = dist.sample(rng);
        let u2: f64 = dist.sample(rng);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Orthonormalise the columns of `a` in place with modified Gram–Schmidt and
/// return the resulting matrix (used to build random orthogonal factors).
fn orthonormal_columns(mut a: Matrix) -> Matrix {
    let n = a.cols();
    for j in 0..n {
        // Two MGS passes for numerical safety.
        for _ in 0..2 {
            for k in 0..j {
                let mut dot = 0.0;
                for i in 0..a.rows() {
                    dot += a.get(i, k) * a.get(i, j);
                }
                for i in 0..a.rows() {
                    let v = a.get(i, j) - dot * a.get(i, k);
                    a.set(i, j, v);
                }
            }
        }
        let nrm: f64 = (0..a.rows())
            .map(|i| a.get(i, j).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(
            nrm > 0.0,
            "rank-deficient random matrix (astronomically unlikely)"
        );
        for i in 0..a.rows() {
            let v = a.get(i, j) / nrm;
            a.set(i, j, v);
        }
    }
    a
}

/// Random matrix with orthonormal columns (`m x n`, `m >= n`).
pub fn random_orthonormal(m: usize, n: usize, seed: u64) -> Matrix {
    assert!(m >= n);
    orthonormal_columns(random_gaussian(m, n, seed))
}

/// LATMS-style generator: an `m x n` matrix with prescribed singular values.
///
/// `A = U * diag(sigma) * V^T`, where `U` is `m x k` and `V` is `n x k` with
/// orthonormal columns (`k = min(m, n)`), both pseudo-random but fully
/// determined by `seed`.
pub fn latms(m: usize, n: usize, spectrum: &SpectrumKind, seed: u64) -> (Matrix, Vec<f64>) {
    let k = m.min(n);
    let sigma = spectrum.values(k);
    let u = random_orthonormal(m, k, seed ^ 0x5eed_0001);
    let v = random_orthonormal(n, k, seed ^ 0x5eed_0002);
    // A = U * S * V^T computed as (U * S) * V^T.
    let mut us = u;
    for (j, &s) in sigma.iter().enumerate() {
        for i in 0..us.rows() {
            let val = us.get(i, j) * s;
            us.set(i, j, val);
        }
    }
    (us.matmul_nt(&v), sigma)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectra_are_sorted_and_sized() {
        for kind in [
            SpectrumKind::Uniform,
            SpectrumKind::Geometric { cond: 100.0 },
            SpectrumKind::Arithmetic { cond: 10.0 },
            SpectrumKind::OneLarge { cond: 50.0 },
        ] {
            let s = kind.values(7);
            assert_eq!(s.len(), 7);
            for w in s.windows(2) {
                assert!(w[0] >= w[1]);
            }
            assert!((s[0] - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn random_orthonormal_has_orthonormal_columns() {
        let q = random_orthonormal(20, 6, 42);
        let qtq = q.matmul_tn(&q);
        let err = qtq.sub(&Matrix::identity(6)).norm_max();
        assert!(err < 1e-12, "orthogonality error {err}");
    }

    #[test]
    fn latms_reproducible_and_right_shape() {
        let (a1, s1) = latms(12, 8, &SpectrumKind::Geometric { cond: 1e3 }, 7);
        let (a2, s2) = latms(12, 8, &SpectrumKind::Geometric { cond: 1e3 }, 7);
        assert_eq!(a1, a2);
        assert_eq!(s1, s2);
        assert_eq!(a1.rows(), 12);
        assert_eq!(a1.cols(), 8);
    }

    #[test]
    fn latms_frobenius_norm_matches_spectrum() {
        // ||A||_F^2 = sum sigma_i^2 for any orthogonally invariant construction.
        let spec = SpectrumKind::Explicit(vec![3.0, 2.0, 1.0, 0.5]);
        let (a, s) = latms(10, 4, &spec, 3);
        let fro2: f64 = s.iter().map(|x| x * x).sum();
        assert!((a.norm_fro().powi(2) - fro2).abs() < 1e-9 * fro2);
    }

    #[test]
    fn gaussian_is_seeded() {
        assert_eq!(random_gaussian(5, 5, 1), random_gaussian(5, 5, 1));
        assert_ne!(random_gaussian(5, 5, 1), random_gaussian(5, 5, 2));
    }
}
