//! 2D block-cyclic data distributions.
//!
//! The distributed-memory experiments of the paper map the tile grid onto an
//! `R x C` process grid with the 2D block-cyclic rule used by ScaLAPACK and
//! DPLASMA: tile `(i, j)` lives on process `(i mod R, j mod C)`.
//! [`BlockCyclic`] captures that mapping and is consumed by the cluster
//! simulator in `bidiag-runtime` and by the hierarchical reduction trees in
//! `bidiag-trees`.

use serde::{Deserialize, Serialize};

/// A 2D block-cyclic distribution of a `p x q` tile grid over an `R x C`
/// process (node) grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockCyclic {
    /// Number of process rows `R`.
    pub proc_rows: usize,
    /// Number of process columns `C`.
    pub proc_cols: usize,
}

impl BlockCyclic {
    /// Create a distribution over an `R x C` process grid.
    pub fn new(proc_rows: usize, proc_cols: usize) -> Self {
        assert!(proc_rows > 0 && proc_cols > 0);
        Self {
            proc_rows,
            proc_cols,
        }
    }

    /// A single-node distribution (shared memory).
    pub fn single_node() -> Self {
        Self::new(1, 1)
    }

    /// The square-ish grid used by the paper for square matrices:
    /// `sqrt(nodes) x sqrt(nodes)` (requires `nodes` to be a perfect square,
    /// otherwise the closest `r x c` factorisation with `r <= c` is used).
    pub fn square_grid(nodes: usize) -> Self {
        assert!(nodes > 0);
        let mut r = (nodes as f64).sqrt().floor() as usize;
        while r > 1 && !nodes.is_multiple_of(r) {
            r -= 1;
        }
        Self::new(r.max(1), nodes / r.max(1))
    }

    /// The `nodes x 1` grid used by the paper for tall-and-skinny matrices.
    pub fn tall_grid(nodes: usize) -> Self {
        Self::new(nodes, 1)
    }

    /// Total number of processes.
    pub fn nodes(&self) -> usize {
        self.proc_rows * self.proc_cols
    }

    /// Process row owning tile row `i`.
    pub fn owner_row(&self, tile_row: usize) -> usize {
        tile_row % self.proc_rows
    }

    /// Process column owning tile column `j`.
    pub fn owner_col(&self, tile_col: usize) -> usize {
        tile_col % self.proc_cols
    }

    /// Linear rank of the process owning tile `(i, j)` (row-major ranks).
    pub fn owner(&self, tile_row: usize, tile_col: usize) -> usize {
        self.owner_row(tile_row) * self.proc_cols + self.owner_col(tile_col)
    }

    /// Number of tile rows of a `p`-row matrix owned by process row `r`.
    pub fn local_tile_rows(&self, p: usize, proc_row: usize) -> usize {
        if proc_row >= self.proc_rows {
            return 0;
        }
        (p + self.proc_rows - 1 - proc_row) / self.proc_rows
    }

    /// Number of tile columns of a `q`-column matrix owned by process column `c`.
    pub fn local_tile_cols(&self, q: usize, proc_col: usize) -> usize {
        if proc_col >= self.proc_cols {
            return 0;
        }
        (q + self.proc_cols - 1 - proc_col) / self.proc_cols
    }

    /// The global tile rows owned by process row `r`, in increasing order.
    pub fn rows_of(&self, p: usize, proc_row: usize) -> Vec<usize> {
        (proc_row..p).step_by(self.proc_rows).collect()
    }

    /// The global tile columns owned by process column `c`, in increasing order.
    pub fn cols_of(&self, q: usize, proc_col: usize) -> Vec<usize> {
        (proc_col..q).step_by(self.proc_cols).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_cyclic() {
        let d = BlockCyclic::new(2, 3);
        assert_eq!(d.owner(0, 0), 0);
        assert_eq!(d.owner(1, 0), 3);
        assert_eq!(d.owner(2, 0), 0);
        assert_eq!(d.owner(0, 1), 1);
        assert_eq!(d.owner(0, 3), 0);
        assert_eq!(d.nodes(), 6);
    }

    #[test]
    fn local_counts_add_up() {
        let d = BlockCyclic::new(3, 2);
        let p = 10;
        let q = 7;
        let rows: usize = (0..3).map(|r| d.local_tile_rows(p, r)).sum();
        let cols: usize = (0..2).map(|c| d.local_tile_cols(q, c)).sum();
        assert_eq!(rows, p);
        assert_eq!(cols, q);
    }

    #[test]
    fn rows_of_matches_owner() {
        let d = BlockCyclic::new(4, 1);
        for r in 0..4 {
            for &i in &d.rows_of(13, r) {
                assert_eq!(d.owner_row(i), r);
            }
        }
    }

    #[test]
    fn grid_constructors() {
        assert_eq!(BlockCyclic::square_grid(16), BlockCyclic::new(4, 4));
        assert_eq!(BlockCyclic::square_grid(12), BlockCyclic::new(3, 4));
        assert_eq!(BlockCyclic::square_grid(7), BlockCyclic::new(1, 7));
        assert_eq!(BlockCyclic::tall_grid(25), BlockCyclic::new(25, 1));
        assert_eq!(BlockCyclic::single_node().nodes(), 1);
    }
}
