//! Numerical verification helpers used across the test suites.
//!
//! The paper's experimental section states that "for each experiment, we
//! generated a matrix with prescribed singular values ... and checked that
//! the computed singular values were satisfactory up to machine precision".
//! These helpers implement the corresponding residual and orthogonality
//! checks.

use crate::dense::Matrix;

/// Machine epsilon for `f64`.
pub const EPS: f64 = f64::EPSILON;

/// Relative orthogonality error `||Q^T Q - I||_max`.
pub fn orthogonality_error(q: &Matrix) -> f64 {
    let n = q.cols();
    let qtq = q.matmul_tn(q);
    qtq.sub(&Matrix::identity(n)).norm_max()
}

/// Relative reconstruction error `||A - B||_F / ||A||_F`.
pub fn relative_error(a: &Matrix, b: &Matrix) -> f64 {
    let denom = a.norm_fro().max(EPS);
    a.sub(b).norm_fro() / denom
}

/// Relative difference between two sets of singular values, both sorted
/// descending internally: `max_i |s1_i - s2_i| / s1_0`.
pub fn singular_value_error(s1: &[f64], s2: &[f64]) -> f64 {
    assert_eq!(s1.len(), s2.len(), "spectrum length mismatch");
    let mut a = s1.to_vec();
    let mut b = s2.to_vec();
    a.sort_by(|x, y| y.partial_cmp(x).unwrap());
    b.sort_by(|x, y| y.partial_cmp(x).unwrap());
    let scale = a.first().copied().unwrap_or(1.0).max(EPS);
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0_f64, f64::max)
        / scale
}

/// `true` when the singular values agree to `tol * sigma_max` absolute
/// accuracy (this is the accuracy that orthogonal reductions guarantee).
pub fn singular_values_match(s1: &[f64], s2: &[f64], tol: f64) -> bool {
    singular_value_error(s1, s2) <= tol
}

/// Whether an operand of [`matmul_reference`] is transposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefOp {
    /// Use the operand as stored.
    None,
    /// Use the transpose of the operand.
    Transpose,
}

/// Naive triple-loop `C += alpha * op(A) * op(B)` reference in the plainest
/// possible index order — the oracle the packed/blocked GEMM paths are
/// property-tested against.  Deliberately free of unrolling, views and
/// accumulation tricks so a bug in the fast paths cannot be mirrored here.
pub fn matmul_reference(
    c: &mut Matrix,
    alpha: f64,
    a: &Matrix,
    op_a: RefOp,
    b: &Matrix,
    op_b: RefOp,
) {
    let get_a = |i: usize, l: usize| match op_a {
        RefOp::None => a.get(i, l),
        RefOp::Transpose => a.get(l, i),
    };
    let get_b = |l: usize, j: usize| match op_b {
        RefOp::None => b.get(l, j),
        RefOp::Transpose => b.get(j, l),
    };
    let k = match op_a {
        RefOp::None => a.cols(),
        RefOp::Transpose => a.rows(),
    };
    for j in 0..c.cols() {
        for i in 0..c.rows() {
            let mut s = 0.0;
            for l in 0..k {
                s += get_a(i, l) * get_b(l, j);
            }
            c.set(i, j, c.get(i, j) + alpha * s);
        }
    }
}

/// The upper triangle of `a` (diagonal included), zeros below — e.g. the
/// `R` of a factored tile with the Householder vectors masked off.
pub fn upper_triangle_of(a: &Matrix) -> Matrix {
    Matrix::from_fn(
        a.rows(),
        a.cols(),
        |i, j| if j >= i { a.get(i, j) } else { 0.0 },
    )
}

/// The lower triangle of `a` (diagonal included), zeros above — the LQ
/// dual of [`upper_triangle_of`].
pub fn lower_triangle_of(a: &Matrix) -> Matrix {
    Matrix::from_fn(
        a.rows(),
        a.cols(),
        |i, j| if j <= i { a.get(i, j) } else { 0.0 },
    )
}

/// Frobenius norm of the strictly-lower-triangular part relative to the
/// whole matrix: measures "how far from upper triangular".
pub fn below_diagonal_mass(a: &Matrix) -> f64 {
    let mut s = 0.0;
    for j in 0..a.cols() {
        for i in (j + 1)..a.rows() {
            s += a.get(i, j).powi(2);
        }
    }
    s.sqrt() / a.norm_fro().max(EPS)
}

/// Frobenius mass outside the upper bidiagonal band, relative to the matrix
/// norm: measures "how far from upper bidiagonal".
pub fn off_bidiagonal_mass(a: &Matrix) -> f64 {
    let mut s = 0.0;
    for j in 0..a.cols() {
        for i in 0..a.rows() {
            if i != j && i + 1 != j {
                s += a.get(i, j).powi(2);
            }
        }
    }
    s.sqrt() / a.norm_fro().max(EPS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{latms, random_orthonormal, SpectrumKind};

    #[test]
    fn orthogonality_of_random_q() {
        let q = random_orthonormal(15, 5, 11);
        assert!(orthogonality_error(&q) < 1e-12);
    }

    #[test]
    fn relative_error_zero_for_equal() {
        let (a, _) = latms(6, 6, &SpectrumKind::Uniform, 1);
        assert_eq!(relative_error(&a, &a), 0.0);
    }

    #[test]
    fn singular_value_error_is_scale_relative() {
        let s1 = vec![10.0, 5.0, 1.0];
        let s2 = vec![10.0, 5.0, 1.0 + 1e-8];
        assert!(singular_value_error(&s1, &s2) < 1e-8);
        assert!(singular_values_match(&s1, &s2, 1e-8));
        assert!(!singular_values_match(&s1, &[10.0, 4.0, 1.0], 1e-3));
    }

    #[test]
    fn masses_detect_structure() {
        let mut a = Matrix::zeros(4, 4);
        for i in 0..4 {
            a[(i, i)] = 1.0;
        }
        assert_eq!(below_diagonal_mass(&a), 0.0);
        assert_eq!(off_bidiagonal_mass(&a), 0.0);
        a[(3, 0)] = 1.0;
        assert!(below_diagonal_mass(&a) > 0.1);
        assert!(off_bidiagonal_mass(&a) > 0.1);
    }
}
