//! Runtime-dispatched SIMD kernel layer.
//!
//! This module is the single home of every explicitly vectorized inner loop
//! in the workspace. It follows the faer-rs pattern: each kernel is written
//! **once** as a generic body over a [`SimdLane`] (a zero-sized token that
//! knows how to load/store/FMA one register's worth of `f64`s), and the body
//! is instantiated twice —
//!
//! * with [`ScalarLane`] (`LANES = 1`, plain `f64` arithmetic, no `unsafe`
//!   ISA requirements) — this is the portable fallback and is exactly the
//!   scalar code the kernels used before this layer existed, and
//! * with [`Avx2Lane`] (`LANES = 4`, `__m256d` + FMA via `core::arch`)
//!   inside a `#[target_feature(enable = "avx2,fma")]` shell so LLVM emits
//!   256-bit FMA instructions for it.
//!
//! # Dispatch
//!
//! The backend is decided **once per process** (guarded by an atomic
//! compare-exchange; see [`backend`]) from the `BIDIAG_SIMD` environment
//! variable (`auto` | `scalar` | `avx2`) and `is_x86_feature_detected!`.
//! After that, the hot path pays one relaxed atomic load + a predictable
//! branch per kernel call — never a `cpuid`-backed feature test.
//! [`selection_count`] exposes the number of detections so tests can pin
//! the decided-exactly-once property.
//!
//! # Safety argument
//!
//! All `unsafe` here reduces to two obligations, discharged at the dispatch
//! boundary:
//!
//! 1. **ISA availability** — [`Avx2Lane`] methods require AVX2+FMA. The only
//!    paths that construct an [`Avx2Lane`] are the `#[target_feature]`
//!    wrappers, and every public dispatcher asserts [`avx2_available`]
//!    before calling one (so even a hand-constructed
//!    [`SimdBackend::Avx2`] on a non-AVX2 host panics instead of executing
//!    illegal instructions).
//! 2. **Bounds** — lane `load`/`store` use unchecked indexing. Every public
//!    dispatcher asserts the full slice-length contract up front, and the
//!    generic bodies only touch indices below those lengths (plain
//!    `debug_assert!`s re-state the per-access contract).
//!
//! # Numerical contract
//!
//! The scalar lane deliberately implements [`SimdLane::mul_add`] as an
//! **unfused** `a * b + c`: the fallback must never lower to a libm `fma`
//! call on hosts without the instruction, and it keeps the scalar backend
//! bit-identical to the pre-SIMD kernels. The AVX2 lane fuses. The two
//! backends therefore agree to ~1 ulp per operation, not bitwise; the
//! forced-backend equivalence suite pins them to each other at `1e-15`
//! relative error on remainder-straddling sizes.
//!
//! # Adding a kernel
//!
//! Write one `#[inline(always)] unsafe fn foo_body<S: SimdLane>(...)`
//! using only lane ops plus a scalar tail, add a
//! `#[target_feature(enable = "avx2,fma")] unsafe fn foo_avx2` shell that
//! calls it with [`Avx2Lane`], and a safe `pub fn foo(be: SimdBackend, ...)`
//! that asserts lengths and matches on the backend. Then extend the
//! forced-backend equivalence tests with the new kernel.

use core::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Rows of the packed-GEMM register microkernel (C tile height).
pub const MR: usize = 8;
/// Columns of the packed-GEMM register microkernel (C tile width).
pub const NR: usize = 4;

/// Which instruction-set backend the kernels in this module run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdBackend {
    /// Portable scalar fallback (the pre-SIMD kernel bodies, `LANES = 1`).
    Scalar,
    /// AVX2 + FMA (`__m256d`, 4 × f64 lanes, fused multiply-add).
    Avx2,
}

impl SimdBackend {
    /// Human-readable backend name (`"scalar"` / `"avx2"`), as accepted by
    /// the `BIDIAG_SIMD` environment variable.
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Scalar => "scalar",
            SimdBackend::Avx2 => "avx2",
        }
    }

    /// f64 lanes per vector register on this backend.
    pub fn lanes(self) -> usize {
        match self {
            SimdBackend::Scalar => 1,
            SimdBackend::Avx2 => 4,
        }
    }
}

const STATE_UNDECIDED: u8 = 0;
const STATE_SCALAR: u8 = 1;
const STATE_AVX2: u8 = 2;

/// Cached backend decision. `STATE_UNDECIDED` until the first [`backend`]
/// call (or a [`with_forced_backend`] override) stores a decision.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNDECIDED);
/// Number of times the undecided→decided transition ran environment/CPU
/// selection. Pinned to exactly 1 per process by the dispatch tests.
static SELECTIONS: AtomicUsize = AtomicUsize::new(0);
/// Serializes [`with_forced_backend`] scopes (tests in one binary run on
/// multiple threads; a forced backend is process-global state).
static FORCE_LOCK: Mutex<()> = Mutex::new(());

fn encode(be: SimdBackend) -> u8 {
    match be {
        SimdBackend::Scalar => STATE_SCALAR,
        SimdBackend::Avx2 => STATE_AVX2,
    }
}

fn decode(state: u8) -> Option<SimdBackend> {
    match state {
        STATE_SCALAR => Some(SimdBackend::Scalar),
        STATE_AVX2 => Some(SimdBackend::Avx2),
        _ => None,
    }
}

/// Does this CPU support the AVX2 backend (AVX2 and FMA)?
///
/// `is_x86_feature_detected!` caches the cpuid result internally, but the
/// hot path never reaches this: [`backend`] consults it only on the single
/// undecided→decided transition.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Pure backend-selection policy: combine the `BIDIAG_SIMD` override
/// (`None` = unset) with CPU capability. Returns `Err` with a diagnostic for
/// misconfigurations (unknown value, or `avx2` forced on a host without it).
pub fn choose_backend(env: Option<&str>, avx2: bool) -> Result<SimdBackend, String> {
    let trimmed = env.map(str::trim).filter(|s| !s.is_empty());
    match trimmed.map(str::to_ascii_lowercase).as_deref() {
        None | Some("auto") => Ok(if avx2 {
            SimdBackend::Avx2
        } else {
            SimdBackend::Scalar
        }),
        Some("scalar") => Ok(SimdBackend::Scalar),
        Some("avx2") => {
            if avx2 {
                Ok(SimdBackend::Avx2)
            } else {
                Err("BIDIAG_SIMD=avx2 but this CPU does not support AVX2+FMA".to_string())
            }
        }
        Some(other) => Err(format!(
            "BIDIAG_SIMD={other:?} is not recognized (expected auto, scalar, or avx2)"
        )),
    }
}

#[cold]
fn select_backend() -> SimdBackend {
    let env = std::env::var("BIDIAG_SIMD").ok();
    let chosen = match choose_backend(env.as_deref(), avx2_available()) {
        Ok(be) => be,
        Err(msg) => panic!("{msg}"),
    };
    // Only the thread that wins the undecided->decided race records a
    // selection; losers adopt whatever the winner stored.
    match STATE.compare_exchange(
        STATE_UNDECIDED,
        encode(chosen),
        Ordering::AcqRel,
        Ordering::Acquire,
    ) {
        Ok(_) => {
            SELECTIONS.fetch_add(1, Ordering::Relaxed);
            chosen
        }
        Err(existing) => decode(existing).unwrap_or(chosen),
    }
}

/// The process-wide SIMD backend, decided once on first call.
///
/// Hot-path cost after the first call: one relaxed atomic load and a
/// predictable branch. Override with `BIDIAG_SIMD={auto,scalar,avx2}` (read
/// at decision time), or scoped in tests/benches via
/// [`with_forced_backend`].
#[inline]
pub fn backend() -> SimdBackend {
    match decode(STATE.load(Ordering::Relaxed)) {
        Some(be) => be,
        None => select_backend(),
    }
}

/// How many times backend selection (env + CPU detection) has run in this
/// process. The dispatch tests pin this to exactly 1: kernels must never
/// re-detect per call.
pub fn selection_count() -> usize {
    SELECTIONS.load(Ordering::Relaxed)
}

/// Run `f` with the backend forced to `be`, restoring the previous decision
/// state afterwards (even on panic). Scopes are serialized by a global lock
/// so concurrent tests cannot observe each other's forced backend.
///
/// Forcing [`SimdBackend::Avx2`] on a host without AVX2+FMA panics.
/// This is a test/bench hook; production code selects via [`backend`].
pub fn with_forced_backend<R>(be: SimdBackend, f: impl FnOnce() -> R) -> R {
    let _guard = FORCE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    if be == SimdBackend::Avx2 {
        assert!(
            avx2_available(),
            "cannot force the AVX2 backend: this CPU lacks AVX2+FMA"
        );
    }
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            STATE.store(self.0, Ordering::Release);
        }
    }
    let _restore = Restore(STATE.load(Ordering::Acquire));
    STATE.store(encode(be), Ordering::Release);
    f()
}

// ---------------------------------------------------------------------------
// Lane abstraction
// ---------------------------------------------------------------------------

/// One register's worth of `f64` arithmetic: the abstraction each generic
/// kernel body is written against.
///
/// # Safety
///
/// Every method is `unsafe` under a single contract:
///
/// * the CPU supports the lane's instruction set (trivially true for
///   [`ScalarLane`]; AVX2+FMA for [`Avx2Lane`] — guaranteed by constructing
///   it only inside `#[target_feature(enable = "avx2,fma")]` wrappers), and
/// * for `load`/`store`, `i + Self::LANES <= p.len()`.
pub trait SimdLane: Copy {
    /// Number of `f64` lanes per register.
    const LANES: usize;
    /// The register type.
    type V: Copy;

    /// Broadcast `x` into all lanes.
    ///
    /// # Safety
    /// See the trait-level contract.
    unsafe fn splat(self, x: f64) -> Self::V;
    /// All-zero register.
    ///
    /// # Safety
    /// See the trait-level contract.
    unsafe fn zero(self) -> Self::V;
    /// Load `LANES` values from `p[i..]`.
    ///
    /// # Safety
    /// See the trait-level contract; requires `i + LANES <= p.len()`.
    unsafe fn load(self, p: &[f64], i: usize) -> Self::V;
    /// Store `LANES` values to `p[i..]`.
    ///
    /// # Safety
    /// See the trait-level contract; requires `i + LANES <= p.len()`.
    unsafe fn store(self, p: &mut [f64], i: usize, v: Self::V);
    /// Lane-wise `a + b`.
    ///
    /// # Safety
    /// See the trait-level contract.
    unsafe fn add(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise `a * b`.
    ///
    /// # Safety
    /// See the trait-level contract.
    unsafe fn mul(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise `a * b + c` — **fused** on AVX2, **unfused** on scalar
    /// (see the module-level numerical contract).
    ///
    /// # Safety
    /// See the trait-level contract.
    unsafe fn mul_add(self, a: Self::V, b: Self::V, c: Self::V) -> Self::V;
    /// Horizontal sum of all lanes.
    ///
    /// # Safety
    /// See the trait-level contract.
    unsafe fn reduce_sum(self, a: Self::V) -> f64;
}

/// `LANES = 1` lane: plain `f64` arithmetic, no ISA requirements. The
/// generic bodies instantiated with this lane are the portable fallback
/// kernels (and match the pre-SIMD scalar code bit-for-bit).
#[derive(Clone, Copy)]
pub struct ScalarLane;

impl SimdLane for ScalarLane {
    const LANES: usize = 1;
    type V = f64;

    #[inline(always)]
    unsafe fn splat(self, x: f64) -> f64 {
        x
    }
    #[inline(always)]
    unsafe fn zero(self) -> f64 {
        0.0
    }
    #[inline(always)]
    unsafe fn load(self, p: &[f64], i: usize) -> f64 {
        debug_assert!(i < p.len());
        // SAFETY: caller guarantees i + LANES (= 1) <= p.len().
        unsafe { *p.get_unchecked(i) }
    }
    #[inline(always)]
    unsafe fn store(self, p: &mut [f64], i: usize, v: f64) {
        debug_assert!(i < p.len());
        // SAFETY: caller guarantees i + LANES (= 1) <= p.len().
        unsafe {
            *p.get_unchecked_mut(i) = v;
        }
    }
    #[inline(always)]
    unsafe fn add(self, a: f64, b: f64) -> f64 {
        a + b
    }
    #[inline(always)]
    unsafe fn mul(self, a: f64, b: f64) -> f64 {
        a * b
    }
    #[inline(always)]
    unsafe fn mul_add(self, a: f64, b: f64, c: f64) -> f64 {
        // Deliberately unfused: keeps the fallback free of soft-float fma
        // on hosts without the instruction, and bit-identical to the
        // pre-SIMD kernel bodies.
        a * b + c
    }
    #[inline(always)]
    unsafe fn reduce_sum(self, a: f64) -> f64 {
        a
    }
}

/// AVX2+FMA lane: `__m256d`, 4 × f64.
///
/// Constructed only via [`Avx2Lane::new_unchecked`] inside
/// `#[target_feature(enable = "avx2,fma")]` wrappers, so its methods always
/// execute with the features they require.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy)]
pub struct Avx2Lane(());

#[cfg(target_arch = "x86_64")]
impl Avx2Lane {
    /// Construct the AVX2 lane token.
    ///
    /// # Safety
    /// The caller must guarantee the CPU supports AVX2 and FMA (e.g. by
    /// being inside a `#[target_feature(enable = "avx2,fma")]` function
    /// reached through an [`avx2_available`] check).
    #[inline(always)]
    pub unsafe fn new_unchecked() -> Self {
        Avx2Lane(())
    }
}

#[cfg(target_arch = "x86_64")]
impl SimdLane for Avx2Lane {
    const LANES: usize = 4;
    type V = core::arch::x86_64::__m256d;

    #[inline(always)]
    unsafe fn splat(self, x: f64) -> Self::V {
        // SAFETY: constructing an Avx2Lane asserts AVX2 support.
        unsafe { core::arch::x86_64::_mm256_set1_pd(x) }
    }
    #[inline(always)]
    unsafe fn zero(self) -> Self::V {
        // SAFETY: constructing an Avx2Lane asserts AVX2 support.
        unsafe { core::arch::x86_64::_mm256_setzero_pd() }
    }
    #[inline(always)]
    unsafe fn load(self, p: &[f64], i: usize) -> Self::V {
        debug_assert!(i + 4 <= p.len());
        // SAFETY: caller guarantees i + LANES (= 4) <= p.len(); loadu has no
        // alignment requirement; AVX2 support is asserted by the lane token.
        unsafe { core::arch::x86_64::_mm256_loadu_pd(p.as_ptr().add(i)) }
    }
    #[inline(always)]
    unsafe fn store(self, p: &mut [f64], i: usize, v: Self::V) {
        debug_assert!(i + 4 <= p.len());
        // SAFETY: caller guarantees i + LANES (= 4) <= p.len(); storeu has no
        // alignment requirement; AVX2 support is asserted by the lane token.
        unsafe { core::arch::x86_64::_mm256_storeu_pd(p.as_mut_ptr().add(i), v) }
    }
    #[inline(always)]
    unsafe fn add(self, a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: constructing an Avx2Lane asserts AVX2 support.
        unsafe { core::arch::x86_64::_mm256_add_pd(a, b) }
    }
    #[inline(always)]
    unsafe fn mul(self, a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: constructing an Avx2Lane asserts AVX2 support.
        unsafe { core::arch::x86_64::_mm256_mul_pd(a, b) }
    }
    #[inline(always)]
    unsafe fn mul_add(self, a: Self::V, b: Self::V, c: Self::V) -> Self::V {
        // SAFETY: constructing an Avx2Lane asserts AVX2+FMA support.
        unsafe { core::arch::x86_64::_mm256_fmadd_pd(a, b, c) }
    }
    #[inline(always)]
    unsafe fn reduce_sum(self, a: Self::V) -> f64 {
        use core::arch::x86_64::*;
        // SAFETY: constructing an Avx2Lane asserts AVX2 support (the SSE2
        // ops below are a strict subset).
        unsafe {
            let lo = _mm256_castpd256_pd128(a);
            let hi = _mm256_extractf128_pd::<1>(a);
            let s2 = _mm_add_pd(lo, hi);
            let s1 = _mm_add_sd(s2, _mm_unpackhi_pd(s2, s2));
            _mm_cvtsd_f64(s1)
        }
    }
}

/// Panic unless the AVX2 backend may legally run on this host. Called by
/// every dispatcher (including downstream crates' own dispatch points,
/// e.g. the dqds pass in `bidiag-svd`) before entering a
/// `#[target_feature]` wrapper, which makes the safe dispatch API sound
/// even against a hand-constructed [`SimdBackend::Avx2`].
#[inline(always)]
pub fn check_avx2() {
    assert!(
        avx2_available(),
        "SimdBackend::Avx2 dispatched on a host without AVX2+FMA"
    );
}

// ---------------------------------------------------------------------------
// Generic kernel bodies (one body per kernel, instantiated per lane)
// ---------------------------------------------------------------------------

/// `y[i] += a * x[i]`. Contract: `x.len() >= y.len()`.
#[inline(always)]
unsafe fn axpy_body<S: SimdLane>(s: S, y: &mut [f64], a: f64, x: &[f64]) {
    let n = y.len();
    debug_assert!(x.len() >= n);
    // SAFETY (whole body): caller upholds the lane's ISA contract and
    // x.len() >= y.len() = n; every index below is < n.
    unsafe {
        let av = s.splat(a);
        let mut i = 0;
        while i + S::LANES <= n {
            let yv = s.mul_add(s.load(x, i), av, s.load(y, i));
            s.store(y, i, yv);
            i += S::LANES;
        }
        while i < n {
            y[i] += a * x[i];
            i += 1;
        }
    }
}

/// `y[i] += s0*x0[i] + s1*x1[i] + s2*x2[i] + s3*x3[i]`.
/// Contract: all `xk.len() >= y.len()`.
#[inline(always)]
unsafe fn axpy4_body<S: SimdLane>(
    s: S,
    y: &mut [f64],
    c: [f64; 4],
    x0: &[f64],
    x1: &[f64],
    x2: &[f64],
    x3: &[f64],
) {
    let n = y.len();
    debug_assert!(x0.len() >= n && x1.len() >= n && x2.len() >= n && x3.len() >= n);
    // SAFETY (whole body): caller upholds the lane's ISA contract and
    // xk.len() >= y.len() = n; every index below is < n.
    unsafe {
        let c0 = s.splat(c[0]);
        let c1 = s.splat(c[1]);
        let c2 = s.splat(c[2]);
        let c3 = s.splat(c[3]);
        let mut i = 0;
        while i + S::LANES <= n {
            let mut yv = s.load(y, i);
            yv = s.mul_add(s.load(x0, i), c0, yv);
            yv = s.mul_add(s.load(x1, i), c1, yv);
            yv = s.mul_add(s.load(x2, i), c2, yv);
            yv = s.mul_add(s.load(x3, i), c3, yv);
            s.store(y, i, yv);
            i += S::LANES;
        }
        while i < n {
            y[i] += c[0] * x0[i] + c[1] * x1[i] + c[2] * x2[i] + c[3] * x3[i];
            i += 1;
        }
    }
}

/// Dot product with 4 independent accumulators (ILP), reduced as
/// `(a0 + a1) + (a2 + a3)` plus a sequential tail.
/// Contract: `b.len() >= a.len()`.
#[inline(always)]
unsafe fn dot_body<S: SimdLane>(s: S, a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    debug_assert!(b.len() >= n);
    // SAFETY (whole body): caller upholds the lane's ISA contract and
    // b.len() >= a.len() = n; every index below is < n.
    unsafe {
        let mut acc0 = s.zero();
        let mut acc1 = s.zero();
        let mut acc2 = s.zero();
        let mut acc3 = s.zero();
        let step = 4 * S::LANES;
        let mut i = 0;
        while i + step <= n {
            acc0 = s.mul_add(s.load(a, i), s.load(b, i), acc0);
            acc1 = s.mul_add(s.load(a, i + S::LANES), s.load(b, i + S::LANES), acc1);
            acc2 = s.mul_add(
                s.load(a, i + 2 * S::LANES),
                s.load(b, i + 2 * S::LANES),
                acc2,
            );
            acc3 = s.mul_add(
                s.load(a, i + 3 * S::LANES),
                s.load(b, i + 3 * S::LANES),
                acc3,
            );
            i += step;
        }
        let mut sum = s.reduce_sum(s.add(s.add(acc0, acc1), s.add(acc2, acc3)));
        while i < n {
            sum += a[i] * b[i];
            i += 1;
        }
        sum
    }
}

/// Four simultaneous dot products of `v` against `c0..c3` (one pass over
/// `v`). Contract: all `ck.len() >= v.len()`.
#[inline(always)]
unsafe fn dot4_body<S: SimdLane>(
    s: S,
    v: &[f64],
    c0: &[f64],
    c1: &[f64],
    c2: &[f64],
    c3: &[f64],
) -> [f64; 4] {
    let n = v.len();
    debug_assert!(c0.len() >= n && c1.len() >= n && c2.len() >= n && c3.len() >= n);
    // SAFETY (whole body): caller upholds the lane's ISA contract and
    // ck.len() >= v.len() = n; every index below is < n.
    unsafe {
        let mut a0 = s.zero();
        let mut a1 = s.zero();
        let mut a2 = s.zero();
        let mut a3 = s.zero();
        let mut i = 0;
        while i + S::LANES <= n {
            let vv = s.load(v, i);
            a0 = s.mul_add(s.load(c0, i), vv, a0);
            a1 = s.mul_add(s.load(c1, i), vv, a1);
            a2 = s.mul_add(s.load(c2, i), vv, a2);
            a3 = s.mul_add(s.load(c3, i), vv, a3);
            i += S::LANES;
        }
        let mut out = [
            s.reduce_sum(a0),
            s.reduce_sum(a1),
            s.reduce_sum(a2),
            s.reduce_sum(a3),
        ];
        while i < n {
            let vi = v[i];
            out[0] += c0[i] * vi;
            out[1] += c1[i] * vi;
            out[2] += c2[i] * vi;
            out[3] += c3[i] * vi;
            i += 1;
        }
        out
    }
}

/// Fused Givens rotation over two equal-length strips:
/// `xs[i], ys[i] <- c*xs[i] + sn*ys[i], c*ys[i] - sn*xs[i]`.
/// Contract: `xs.len() == ys.len()`.
#[inline(always)]
unsafe fn rot_strips_body<S: SimdLane>(s: S, xs: &mut [f64], ys: &mut [f64], c: f64, sn: f64) {
    let n = xs.len();
    debug_assert_eq!(ys.len(), n);
    // SAFETY (whole body): caller upholds the lane's ISA contract and
    // xs.len() == ys.len() = n; every index below is < n.
    unsafe {
        let cv = s.splat(c);
        let sv = s.splat(sn);
        let nsv = s.splat(-sn);
        let mut i = 0;
        while i + S::LANES <= n {
            let xv = s.load(xs, i);
            let yv = s.load(ys, i);
            s.store(xs, i, s.mul_add(xv, cv, s.mul(sv, yv)));
            s.store(ys, i, s.mul_add(yv, cv, s.mul(nsv, xv)));
            i += S::LANES;
        }
        while i < n {
            let x = xs[i];
            let y = ys[i];
            xs[i] = c * x + sn * y;
            ys[i] = c * y - sn * x;
            i += 1;
        }
    }
}

/// The packed-GEMM register microkernel: `RV` registers of `S::LANES` rows
/// cover the `MR`-row tile; `NR` broadcast-FMA columns. `RV * LANES == MR`.
/// Contract: `ap.len() >= kc * MR`, `bp.len() >= kc * NR`.
#[inline(always)]
unsafe fn microkernel_body<S: SimdLane, const RV: usize>(
    s: S,
    kc: usize,
    ap: &[f64],
    bp: &[f64],
) -> [[f64; MR]; NR] {
    debug_assert_eq!(RV * S::LANES, MR);
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    // SAFETY (whole body): caller upholds the lane's ISA contract,
    // ap.len() >= kc*MR and bp.len() >= kc*NR; loads read a-panel index
    // l*MR + r*LANES + LANES <= kc*MR and b-panel index l*NR + j < kc*NR;
    // stores write out[j][r*LANES..r*LANES+LANES] within MR.
    unsafe {
        let mut acc = [[s.zero(); RV]; NR];
        for l in 0..kc {
            let mut av = [s.zero(); RV];
            for (r, avr) in av.iter_mut().enumerate() {
                *avr = s.load(ap, l * MR + r * S::LANES);
            }
            for (j, accj) in acc.iter_mut().enumerate() {
                let bj = s.splat(*bp.get_unchecked(l * NR + j));
                for (r, accjr) in accj.iter_mut().enumerate() {
                    *accjr = s.mul_add(av[r], bj, *accjr);
                }
            }
        }
        let mut out = [[0.0f64; MR]; NR];
        for (outj, accj) in out.iter_mut().zip(&acc) {
            for (r, accjr) in accj.iter().enumerate() {
                s.store(outj, r * S::LANES, *accjr);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// AVX2 target_feature shells
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2_shells {
    use super::*;

    /// # Safety
    /// Caller must guarantee AVX2+FMA and `x.len() >= y.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
        // SAFETY: inside this target_feature fn AVX2+FMA are enabled, so
        // constructing the lane token is sound; slice contract forwarded.
        unsafe { axpy_body(Avx2Lane::new_unchecked(), y, a, x) }
    }

    /// # Safety
    /// Caller must guarantee AVX2+FMA and `xk.len() >= y.len()` for all k.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy4(
        y: &mut [f64],
        c: [f64; 4],
        x0: &[f64],
        x1: &[f64],
        x2: &[f64],
        x3: &[f64],
    ) {
        // SAFETY: as in `axpy`.
        unsafe { axpy4_body(Avx2Lane::new_unchecked(), y, c, x0, x1, x2, x3) }
    }

    /// # Safety
    /// Caller must guarantee AVX2+FMA and `b.len() >= a.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        // SAFETY: as in `axpy`.
        unsafe { dot_body(Avx2Lane::new_unchecked(), a, b) }
    }

    /// # Safety
    /// Caller must guarantee AVX2+FMA and `ck.len() >= v.len()` for all k.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot4(v: &[f64], c0: &[f64], c1: &[f64], c2: &[f64], c3: &[f64]) -> [f64; 4] {
        // SAFETY: as in `axpy`.
        unsafe { dot4_body(Avx2Lane::new_unchecked(), v, c0, c1, c2, c3) }
    }

    /// # Safety
    /// Caller must guarantee AVX2+FMA and `xs.len() == ys.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn rot_strips(xs: &mut [f64], ys: &mut [f64], c: f64, sn: f64) {
        // SAFETY: as in `axpy`.
        unsafe { rot_strips_body(Avx2Lane::new_unchecked(), xs, ys, c, sn) }
    }

    /// # Safety
    /// Caller must guarantee AVX2+FMA, `ap.len() >= kc*MR`, `bp.len() >= kc*NR`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn microkernel(kc: usize, ap: &[f64], bp: &[f64]) -> [[f64; MR]; NR] {
        // SAFETY: as in `axpy`; MR = 8 = 2 registers * 4 lanes.
        unsafe { microkernel_body::<Avx2Lane, 2>(Avx2Lane::new_unchecked(), kc, ap, bp) }
    }
}

// ---------------------------------------------------------------------------
// Safe dispatchers
// ---------------------------------------------------------------------------

/// `y += a * x` over the dispatched backend. Panics unless
/// `x.len() >= y.len()`.
#[inline]
pub fn axpy(be: SimdBackend, y: &mut [f64], a: f64, x: &[f64]) {
    assert!(x.len() >= y.len());
    match be {
        // SAFETY: scalar lane has no ISA requirements; lengths checked above.
        SimdBackend::Scalar => unsafe { axpy_body(ScalarLane, y, a, x) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_avx2 verifies AVX2+FMA; lengths checked above.
        SimdBackend::Avx2 => {
            check_avx2();
            unsafe { avx2_shells::axpy(y, a, x) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        SimdBackend::Avx2 => {
            check_avx2();
            unreachable!()
        }
    }
}

/// `y += c[0]*x0 + c[1]*x1 + c[2]*x2 + c[3]*x3` over the dispatched backend.
/// Panics unless every `xk.len() >= y.len()`.
#[inline]
pub fn axpy4(
    be: SimdBackend,
    y: &mut [f64],
    c: [f64; 4],
    x0: &[f64],
    x1: &[f64],
    x2: &[f64],
    x3: &[f64],
) {
    let n = y.len();
    assert!(x0.len() >= n && x1.len() >= n && x2.len() >= n && x3.len() >= n);
    match be {
        // SAFETY: scalar lane has no ISA requirements; lengths checked above.
        SimdBackend::Scalar => unsafe { axpy4_body(ScalarLane, y, c, x0, x1, x2, x3) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_avx2 verifies AVX2+FMA; lengths checked above.
        SimdBackend::Avx2 => {
            check_avx2();
            unsafe { avx2_shells::axpy4(y, c, x0, x1, x2, x3) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        SimdBackend::Avx2 => {
            check_avx2();
            unreachable!()
        }
    }
}

/// Dot product over the dispatched backend. Panics unless
/// `b.len() >= a.len()`.
#[inline]
pub fn dot(be: SimdBackend, a: &[f64], b: &[f64]) -> f64 {
    assert!(b.len() >= a.len());
    match be {
        // SAFETY: scalar lane has no ISA requirements; lengths checked above.
        SimdBackend::Scalar => unsafe { dot_body(ScalarLane, a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_avx2 verifies AVX2+FMA; lengths checked above.
        SimdBackend::Avx2 => {
            check_avx2();
            unsafe { avx2_shells::dot(a, b) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        SimdBackend::Avx2 => {
            check_avx2();
            unreachable!()
        }
    }
}

/// Four dot products of `v` against `c0..c3` in one pass over `v`.
/// Panics unless every `ck.len() >= v.len()`.
#[inline]
pub fn dot4(
    be: SimdBackend,
    v: &[f64],
    c0: &[f64],
    c1: &[f64],
    c2: &[f64],
    c3: &[f64],
) -> [f64; 4] {
    let n = v.len();
    assert!(c0.len() >= n && c1.len() >= n && c2.len() >= n && c3.len() >= n);
    match be {
        // SAFETY: scalar lane has no ISA requirements; lengths checked above.
        SimdBackend::Scalar => unsafe { dot4_body(ScalarLane, v, c0, c1, c2, c3) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_avx2 verifies AVX2+FMA; lengths checked above.
        SimdBackend::Avx2 => {
            check_avx2();
            unsafe { avx2_shells::dot4(v, c0, c1, c2, c3) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        SimdBackend::Avx2 => {
            check_avx2();
            unreachable!()
        }
    }
}

/// Apply a Givens rotation `(c, sn)` across two equal-length contiguous
/// strips. Panics unless `xs.len() == ys.len()`.
#[inline]
pub fn rot_strips(be: SimdBackend, xs: &mut [f64], ys: &mut [f64], c: f64, sn: f64) {
    assert_eq!(xs.len(), ys.len());
    // Short strips (narrow bands) cannot fill a vector step; skip the
    // dispatch + target_feature call overhead entirely.
    if xs.len() < 4 || be == SimdBackend::Scalar {
        // SAFETY: scalar lane has no ISA requirements; lengths checked above.
        unsafe { rot_strips_body(ScalarLane, xs, ys, c, sn) };
        return;
    }
    match be {
        SimdBackend::Scalar => unreachable!(),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_avx2 verifies AVX2+FMA; lengths checked above.
        SimdBackend::Avx2 => {
            check_avx2();
            unsafe { avx2_shells::rot_strips(xs, ys, c, sn) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        SimdBackend::Avx2 => {
            check_avx2();
            unreachable!()
        }
    }
}

/// The `MR x NR` packed-GEMM register microkernel:
/// `out[j][i] = sum_l ap[l*MR + i] * bp[l*NR + j]` (a rank-1 update per
/// depth step, broadcast-FMA on AVX2). Panics unless `ap.len() >= kc*MR`
/// and `bp.len() >= kc*NR`.
#[inline]
pub fn microkernel_8x4(be: SimdBackend, kc: usize, ap: &[f64], bp: &[f64]) -> [[f64; MR]; NR] {
    assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    match be {
        // SAFETY: scalar lane has no ISA requirements; lengths checked
        // above; MR = 8 = 8 registers * 1 lane.
        SimdBackend::Scalar => unsafe { microkernel_body::<ScalarLane, 8>(ScalarLane, kc, ap, bp) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_avx2 verifies AVX2+FMA; lengths checked above.
        SimdBackend::Avx2 => {
            check_avx2();
            unsafe { avx2_shells::microkernel(kc, ap, bp) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        SimdBackend::Avx2 => {
            check_avx2();
            unreachable!()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(a: f64, b: f64) -> f64 {
        (a - b).abs() / b.abs().max(1.0)
    }

    /// Backend-equivalence tolerance for length-`n` accumulations: the two
    /// backends differ by ~1 ulp per fused-vs-unfused multiply-add, so the
    /// normwise gap grows like sqrt(n) * 1e-15 (element-wise kernels with no
    /// accumulation are pinned at a flat 1e-15).
    fn acc_tol(n: usize) -> f64 {
        1e-15 * (n as f64).sqrt().max(1.0)
    }

    #[test]
    fn choose_backend_policy() {
        use SimdBackend::*;
        // auto / unset follow CPU capability
        assert_eq!(choose_backend(None, true), Ok(Avx2));
        assert_eq!(choose_backend(None, false), Ok(Scalar));
        assert_eq!(choose_backend(Some("auto"), true), Ok(Avx2));
        assert_eq!(choose_backend(Some("auto"), false), Ok(Scalar));
        assert_eq!(choose_backend(Some(""), true), Ok(Avx2));
        // explicit scalar always honored
        assert_eq!(choose_backend(Some("scalar"), true), Ok(Scalar));
        assert_eq!(choose_backend(Some("scalar"), false), Ok(Scalar));
        // case/whitespace insensitive
        assert_eq!(choose_backend(Some(" AVX2 "), true), Ok(Avx2));
        assert_eq!(choose_backend(Some("Scalar"), true), Ok(Scalar));
        // avx2 forced on an incapable host is an error, not a silent fallback
        assert!(choose_backend(Some("avx2"), false).is_err());
        // garbage is an error
        assert!(choose_backend(Some("sse9"), true).is_err());
    }

    #[test]
    fn backend_decided_exactly_once() {
        // Hammer backend() from several threads; selection must run once
        // per process no matter who wins the race (other tests in this
        // binary may already have decided it — still exactly once).
        let first = backend();
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| (0..1000).map(|_| backend()).next_back().unwrap()))
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), first);
        }
        assert_eq!(
            selection_count(),
            1,
            "backend selection must run exactly once"
        );
        for _ in 0..1000 {
            let _ = backend();
        }
        assert_eq!(
            selection_count(),
            1,
            "backend() must not re-detect per call"
        );
    }

    #[test]
    fn forced_backend_is_scoped_and_restored() {
        let before = backend();
        let inside = with_forced_backend(SimdBackend::Scalar, backend);
        assert_eq!(inside, SimdBackend::Scalar);
        assert_eq!(backend(), before);
        if avx2_available() {
            let inside = with_forced_backend(SimdBackend::Avx2, backend);
            assert_eq!(inside, SimdBackend::Avx2);
            assert_eq!(backend(), before);
        }
    }

    fn test_vec(n: usize, seed: u64) -> Vec<f64> {
        // Small deterministic LCG; values in [-1, 1).
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    /// Remainder-straddling lengths around the 4-lane and 16-element steps.
    const SIZES: [usize; 13] = [1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 64, 97];

    #[test]
    fn primitives_scalar_matches_naive() {
        for &n in &SIZES {
            let x = test_vec(n, 1);
            let y0 = test_vec(n, 2);
            let mut y = y0.clone();
            axpy(SimdBackend::Scalar, &mut y, 0.37, &x);
            for i in 0..n {
                assert_eq!(y[i], y0[i] + 0.37 * x[i]);
            }
            let naive: f64 = x.iter().zip(&y0).map(|(a, b)| a * b).sum();
            assert!(rel(dot(SimdBackend::Scalar, &x, &y0), naive) < 1e-13);
        }
    }

    #[test]
    fn primitives_avx2_match_scalar() {
        if !avx2_available() {
            eprintln!("skipping: no AVX2+FMA on this host");
            return;
        }
        use SimdBackend::{Avx2, Scalar};
        for &n in &SIZES {
            let x = test_vec(n, 3);
            let x1 = test_vec(n, 4);
            let x2 = test_vec(n, 5);
            let x3 = test_vec(n, 6);
            let y0 = test_vec(n, 7);

            let mut ys = y0.clone();
            let mut yv = y0.clone();
            axpy(Scalar, &mut ys, 0.73, &x);
            axpy(Avx2, &mut yv, 0.73, &x);
            for i in 0..n {
                assert!(rel(yv[i], ys[i]) < 1e-15, "axpy n={n} i={i}");
            }

            let c = [0.11, -0.23, 0.51, -0.77];
            let mut ys = y0.clone();
            let mut yv = y0.clone();
            axpy4(Scalar, &mut ys, c, &x, &x1, &x2, &x3);
            axpy4(Avx2, &mut yv, c, &x, &x1, &x2, &x3);
            for i in 0..n {
                assert!(rel(yv[i], ys[i]) < 1e-15, "axpy4 n={n} i={i}");
            }

            assert!(
                rel(dot(Avx2, &x, &y0), dot(Scalar, &x, &y0)) < acc_tol(n),
                "dot n={n}"
            );

            let ds = dot4(Scalar, &y0, &x, &x1, &x2, &x3);
            let dv = dot4(Avx2, &y0, &x, &x1, &x2, &x3);
            for k in 0..4 {
                assert!(rel(dv[k], ds[k]) < acc_tol(n), "dot4 n={n} k={k}");
            }

            let (gc, gs) = (0.8, 0.6);
            let mut xs_s = x.clone();
            let mut ys_s = y0.clone();
            let mut xs_v = x.clone();
            let mut ys_v = y0.clone();
            rot_strips(Scalar, &mut xs_s, &mut ys_s, gc, gs);
            rot_strips(Avx2, &mut xs_v, &mut ys_v, gc, gs);
            for i in 0..n {
                assert!(rel(xs_v[i], xs_s[i]) < 1e-15, "rot xs n={n} i={i}");
                assert!(rel(ys_v[i], ys_s[i]) < 1e-15, "rot ys n={n} i={i}");
            }
        }
    }

    #[test]
    fn microkernel_avx2_matches_scalar() {
        if !avx2_available() {
            eprintln!("skipping: no AVX2+FMA on this host");
            return;
        }
        for &kc in &SIZES {
            let ap = test_vec(kc * MR, 8);
            let bp = test_vec(kc * NR, 9);
            let cs = microkernel_8x4(SimdBackend::Scalar, kc, &ap, &bp);
            let cv = microkernel_8x4(SimdBackend::Avx2, kc, &ap, &bp);
            for j in 0..NR {
                for i in 0..MR {
                    assert!(rel(cv[j][i], cs[j][i]) < acc_tol(kc), "kc={kc} i={i} j={j}");
                }
            }
        }
    }

    #[test]
    fn microkernel_scalar_matches_naive() {
        for &kc in &SIZES {
            let ap = test_vec(kc * MR, 10);
            let bp = test_vec(kc * NR, 11);
            let c = microkernel_8x4(SimdBackend::Scalar, kc, &ap, &bp);
            for j in 0..NR {
                for i in 0..MR {
                    let naive: f64 = (0..kc).map(|l| ap[l * MR + i] * bp[l * NR + j]).sum();
                    assert!(rel(c[j][i], naive) < 1e-13, "kc={kc} i={i} j={j}");
                }
            }
        }
    }
}
