//! # bidiag-matrix
//!
//! Matrix substrate for the tiled bidiagonalization reproduction
//! (Faverge, Langou, Robert, Dongarra, IPDPS 2017):
//!
//! * [`dense::Matrix`] — column-major dense matrices (the storage used inside
//!   every tile kernel),
//! * [`tiled::TiledMatrix`] — the `p x q` grid of `nb x nb` tiles on which the
//!   tiled algorithms operate,
//! * [`gen`] — LATMS-style generators of matrices with prescribed singular
//!   values (the paper's experimental input),
//! * [`dist::BlockCyclic`] — the 2D block-cyclic distribution used for the
//!   distributed-memory experiments,
//! * [`checks`] — residual / orthogonality / spectrum comparison helpers used
//!   throughout the test suites.

#![warn(missing_docs)]

pub mod checks;
pub mod dense;
pub mod dist;
pub mod gen;
pub mod tiled;

pub use dense::Matrix;
pub use dist::BlockCyclic;
pub use tiled::{TileCoord, TiledMatrix};
