//! # bidiag-matrix
//!
//! Matrix substrate for the tiled bidiagonalization reproduction
//! (Faverge, Langou, Robert, Dongarra, IPDPS 2017):
//!
//! * [`dense::Matrix`] — column-major dense matrices (the storage used inside
//!   every tile kernel),
//! * [`view::MatrixView`] / [`view::MatrixViewMut`] — borrowed column-major
//!   views (offset + leading dimension) that the blocked kernels address
//!   tiles and workspace panels through without copying,
//! * [`gemm`] — packed, cache-blocked `C += alpha * op(A) * op(B)` kernels
//!   (`NN`/`TN`/`NT`): a BLIS-style three-level blocked path over an
//!   `MR x NR` register microkernel above a size crossover, an in-place
//!   register-blocked path below it — the Level-3 substrate of the
//!   compact-WY apply kernels,
//! * [`tiled::TiledMatrix`] — the `p x q` grid of `nb x nb` tiles on which the
//!   tiled algorithms operate,
//! * [`gen`] — LATMS-style generators of matrices with prescribed singular
//!   values (the paper's experimental input),
//! * [`dist::BlockCyclic`] — the 2D block-cyclic distribution used for the
//!   distributed-memory experiments,
//! * [`checks`] — residual / orthogonality / spectrum comparison helpers used
//!   throughout the test suites.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod checks;
pub mod dense;
pub mod dist;
pub mod gemm;
pub mod gen;
pub mod simd;
pub mod tiled;
pub mod view;

pub use dense::Matrix;
pub use dist::BlockCyclic;
pub use gemm::{dot as fast_dot, dot4 as fast_dot4};
pub use gemm::{gemm_nn, gemm_nt, gemm_tn, GemmScratch};
pub use simd::{backend as simd_backend, SimdBackend};
pub use tiled::{TileCoord, TiledMatrix};
pub use view::{MatrixView, MatrixViewMut};
