//! Packed, cache-blocked GEMM on column-major views.
//!
//! These are the Level-3 building blocks of the compact-WY tile kernels in
//! `bidiag-kernels`: every blocked apply kernel (`UNMQR`, `TSMQR`, ... and
//! their LQ duals) is a handful of calls into this module.  All three
//! variants compute `C += alpha * op(A) * op(B)` in place:
//!
//! * [`gemm_nn`] — `C += alpha * A * B`,
//! * [`gemm_tn`] — `C += alpha * A^T * B` (no transpose is formed),
//! * [`gemm_nt`] — `C += alpha * A * B^T` (no transpose is formed).
//!
//! Two implementations live behind one dispatching API:
//!
//! * The **unpacked** path streams the operands in place: the innermost
//!   loop always runs down a *contiguous* column slice, and the middle loop
//!   is unrolled by four so each pass over an output column folds four
//!   rank-one (or dot-product) contributions.  No scratch, no copies — the
//!   right trade below the crossover, where the operands fit in cache and
//!   packing would cost more than it saves.
//! * The **packed** path is the classic BLIS/GotoBLAS three-level blocked
//!   algorithm: `KC x NC` panels of `op(B)` and `MC x KC` panels of `op(A)`
//!   are packed into contiguous, microkernel-ordered buffers (reused across
//!   calls via [`GemmScratch`]), and the `MR x NR` register microkernel from
//!   [`crate::simd`] (broadcast-FMA on AVX2, rank-1 scalar fallback; backend
//!   fetched once per call) runs over the packed panels.
//!   Packing makes every microkernel read stride-1 regardless of the
//!   transpose variant or the leading dimension, so the O(mnk) inner loop
//!   never touches strided memory; the O(mk + kn) packing cost is amortized
//!   `NC`-fold (A panels) and `MC`-fold (B panels).
//!
//! The dispatch crossover ([`PACK_CROSSOVER_MNK`]) was picked by the
//! packed-vs-unpacked sweep in the `kernels` bench (`--gemm-sweep`) plus a
//! thin-shape sweep: on the reference host the packed path wins from `8^3`
//! multiply-adds up — including the `IB`-thin panel products of the WY
//! apply kernels (1.2x–2.8x), which therefore run packed at the reference
//! `nb = 64` — so only tiny products (where the pack setup dominates) take
//! the unpacked path.

use crate::simd::{self, SimdBackend};
use crate::view::{MatrixView, MatrixViewMut};

pub use crate::simd::{MR, NR};
/// Cache-block depth: `KC` packed rows of `op(B)` / columns of `op(A)`.
const KC: usize = 256;
/// Cache-block height of the packed `op(A)` panel (sized so one
/// `MC x KC` A-panel stays resident in L2 while the macro-kernel sweeps it).
const MC: usize = 128;
/// Cache-block width of the packed `op(B)` panel.
const NC: usize = 512;

/// Dispatch crossover in multiply-adds (`m * n * k`): below this the
/// unpacked in-place path wins (no packing traffic), above it the packed
/// path wins (stride-1 microkernel reads).  Picked by the `--gemm-sweep`
/// mode of the `kernels` bench plus a thin-shape sweep on the reference
/// host: the packed path wins from `8^3` up — including the `IB`-thin
/// panel products of the WY applies (1.2x–2.8x) — and only loses on tiny
/// products (`5^3` ran at 0.7x) where the pack setup dominates (see
/// BENCHMARKING.md).
pub const PACK_CROSSOVER_MNK: usize = 8 * 8 * 8;

/// Reusable pack buffers of the packed GEMM path.  One long-lived scratch
/// per worker (the kernel `Workspace` of `bidiag-kernels` embeds one) makes
/// every call allocation-free in steady state; buffers grow to
/// `(MC + MR) * KC` and `(NC + NR) * KC` doubles and are then reused.
#[derive(Default, Debug)]
pub struct GemmScratch {
    apack: Vec<f64>,
    bpack: Vec<f64>,
}

impl GemmScratch {
    /// Empty scratch; the pack buffers grow on first packed call.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch pre-sized for products whose dimensions are all at most
    /// `nb` (one tile-kernel workload), so even the first packed call
    /// allocates nothing.
    pub fn for_tile(nb: usize) -> Self {
        let d = nb.max(1);
        let kc = KC.min(d);
        GemmScratch {
            apack: vec![0.0; MC.min(d).div_ceil(MR) * MR * kc],
            bpack: vec![0.0; NC.min(d).div_ceil(NR) * NR * kc],
        }
    }
}

/// Dot product with four independent partial sums, so the reduction has no
/// serial dependency chain and the compiler can keep each lane in one SIMD
/// register.  The summation order differs from a plain left-to-right dot —
/// callers on bit-exactness-critical paths (reflector generation) must use
/// an order-exact dot instead.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let a4 = a.chunks_exact(4);
    let b4 = b.chunks_exact(4);
    let (ra, rb) = (a4.remainder(), b4.remainder());
    for (xa, xb) in a4.zip(b4) {
        for t in 0..4 {
            acc[t] += xa[t] * xb[t];
        }
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in ra.iter().zip(rb) {
        s += x * y;
    }
    s
}

/// Four simultaneous dot products of `v` against `c0..c3`, each with
/// four-lane partial sums (see [`dot`]).  This is the inner kernel of the
/// transposed panel products `W = V^T C`: one pass over `v` feeds four
/// output columns.
#[inline]
pub fn dot4(v: &[f64], c0: &[f64], c1: &[f64], c2: &[f64], c3: &[f64]) -> (f64, f64, f64, f64) {
    let n = v.len();
    debug_assert!(c0.len() == n && c1.len() == n && c2.len() == n && c3.len() == n);
    let mut a0 = [0.0f64; 4];
    let mut a1 = [0.0f64; 4];
    let mut a2 = [0.0f64; 4];
    let mut a3 = [0.0f64; 4];
    let v4 = v.chunks_exact(4);
    let n4 = v.len() - v4.remainder().len();
    for (i4, xv) in v4.enumerate() {
        let x0 = &c0[i4 * 4..i4 * 4 + 4];
        let x1 = &c1[i4 * 4..i4 * 4 + 4];
        let x2 = &c2[i4 * 4..i4 * 4 + 4];
        let x3 = &c3[i4 * 4..i4 * 4 + 4];
        for t in 0..4 {
            let vi = xv[t];
            a0[t] += vi * x0[t];
            a1[t] += vi * x1[t];
            a2[t] += vi * x2[t];
            a3[t] += vi * x3[t];
        }
    }
    let mut s0 = (a0[0] + a0[1]) + (a0[2] + a0[3]);
    let mut s1 = (a1[0] + a1[1]) + (a1[2] + a1[3]);
    let mut s2 = (a2[0] + a2[1]) + (a2[2] + a2[3]);
    let mut s3 = (a3[0] + a3[1]) + (a3[2] + a3[3]);
    for i in n4..n {
        let vi = v[i];
        s0 += vi * c0[i];
        s1 += vi * c1[i];
        s2 += vi * c2[i];
        s3 += vi * c3[i];
    }
    (s0, s1, s2, s3)
}

/// `C += alpha * A * B` with `A: m x k`, `B: k x n`, `C: m x n`.
///
/// Dispatches between the unpacked and packed paths (see the module docs);
/// an internal scratch is used above the crossover.  Callers with a
/// long-lived [`GemmScratch`] should prefer [`gemm_nn_scratch`].
pub fn gemm_nn(c: &mut MatrixViewMut<'_>, alpha: f64, a: MatrixView<'_>, b: MatrixView<'_>) {
    gemm_nn_scratch(c, alpha, a, b, &mut GemmScratch::new());
}

/// `C += alpha * A^T * B` with `A: m x p`, `B: m x n`, `C: p x n`.
/// See [`gemm_nn`] for the dispatch behaviour.
pub fn gemm_tn(c: &mut MatrixViewMut<'_>, alpha: f64, a: MatrixView<'_>, b: MatrixView<'_>) {
    gemm_tn_scratch(c, alpha, a, b, &mut GemmScratch::new());
}

/// `C += alpha * A * B^T` with `A: m x k`, `B: n x k`, `C: m x n`.
/// See [`gemm_nn`] for the dispatch behaviour.
pub fn gemm_nt(c: &mut MatrixViewMut<'_>, alpha: f64, a: MatrixView<'_>, b: MatrixView<'_>) {
    gemm_nt_scratch(c, alpha, a, b, &mut GemmScratch::new());
}

/// [`gemm_nn`] with a caller-provided pack scratch (allocation-free in
/// steady state above the crossover).
pub fn gemm_nn_scratch(
    c: &mut MatrixViewMut<'_>,
    alpha: f64,
    a: MatrixView<'_>,
    b: MatrixView<'_>,
    scratch: &mut GemmScratch,
) {
    let (m, n, k) = (c.rows(), c.cols(), a.cols());
    assert_eq!(a.rows(), m, "gemm_nn: A rows mismatch");
    assert_eq!(b.rows(), k, "gemm_nn: B rows mismatch");
    assert_eq!(b.cols(), n, "gemm_nn: B cols mismatch");
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    if m * n * k < PACK_CROSSOVER_MNK {
        gemm_nn_unpacked(c, alpha, a, b);
    } else {
        gemm_nn_packed(c, alpha, a, b, scratch);
    }
}

/// [`gemm_tn`] with a caller-provided pack scratch.
pub fn gemm_tn_scratch(
    c: &mut MatrixViewMut<'_>,
    alpha: f64,
    a: MatrixView<'_>,
    b: MatrixView<'_>,
    scratch: &mut GemmScratch,
) {
    let (p, n, m) = (c.rows(), c.cols(), a.rows());
    assert_eq!(a.cols(), p, "gemm_tn: A cols mismatch");
    assert_eq!(b.rows(), m, "gemm_tn: B rows mismatch");
    assert_eq!(b.cols(), n, "gemm_tn: B cols mismatch");
    if p == 0 || n == 0 || alpha == 0.0 {
        return;
    }
    if p * n * m < PACK_CROSSOVER_MNK {
        gemm_tn_unpacked(c, alpha, a, b);
    } else {
        gemm_tn_packed(c, alpha, a, b, scratch);
    }
}

/// [`gemm_nt`] with a caller-provided pack scratch.
pub fn gemm_nt_scratch(
    c: &mut MatrixViewMut<'_>,
    alpha: f64,
    a: MatrixView<'_>,
    b: MatrixView<'_>,
    scratch: &mut GemmScratch,
) {
    let (m, n, k) = (c.rows(), c.cols(), a.cols());
    assert_eq!(a.rows(), m, "gemm_nt: A rows mismatch");
    assert_eq!(b.rows(), n, "gemm_nt: B rows mismatch");
    assert_eq!(b.cols(), k, "gemm_nt: B cols mismatch");
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    if m * n * k < PACK_CROSSOVER_MNK {
        gemm_nt_unpacked(c, alpha, a, b);
    } else {
        gemm_nt_packed(c, alpha, a, b, scratch);
    }
}

// ---------------------------------------------------------------------------
// Unpacked path (small-size fallback): in-place column streaming.
// ---------------------------------------------------------------------------

/// Unpacked `C += alpha * A * B` (exposed so the bench sweep and the
/// property tests can pin each path independently of the crossover).
pub fn gemm_nn_unpacked(
    c: &mut MatrixViewMut<'_>,
    alpha: f64,
    a: MatrixView<'_>,
    b: MatrixView<'_>,
) {
    let k = a.cols();
    for (j, ccol) in c.cols_mut().enumerate() {
        let bcol = b.col(j);
        axpy4(ccol, alpha, &a, |kk| bcol[kk], k);
    }
}

/// Unpacked `C += alpha * A^T * B` (see [`gemm_nn_unpacked`]).
pub fn gemm_tn_unpacked(
    c: &mut MatrixViewMut<'_>,
    alpha: f64,
    a: MatrixView<'_>,
    b: MatrixView<'_>,
) {
    let p = c.rows();
    for (j, ccol) in c.cols_mut().enumerate() {
        let bcol = b.col(j);
        let mut i = 0;
        while i + 4 <= p {
            let (s0, s1, s2, s3) = dot4(bcol, a.col(i), a.col(i + 1), a.col(i + 2), a.col(i + 3));
            ccol[i] += alpha * s0;
            ccol[i + 1] += alpha * s1;
            ccol[i + 2] += alpha * s2;
            ccol[i + 3] += alpha * s3;
            i += 4;
        }
        while i < p {
            ccol[i] += alpha * dot(a.col(i), bcol);
            i += 1;
        }
    }
}

/// Unpacked `C += alpha * A * B^T` (see [`gemm_nn_unpacked`]).
pub fn gemm_nt_unpacked(
    c: &mut MatrixViewMut<'_>,
    alpha: f64,
    a: MatrixView<'_>,
    b: MatrixView<'_>,
) {
    let k = a.cols();
    for (j, ccol) in c.cols_mut().enumerate() {
        axpy4(ccol, alpha, &a, |kk| b.get(j, kk), k);
    }
}

/// `ccol += alpha * sum_kk a[:, kk] * scale(kk)`, the shared rank-k update
/// of one output column, unrolled four columns of `A` at a time.
#[inline]
fn axpy4(ccol: &mut [f64], alpha: f64, a: &MatrixView<'_>, scale: impl Fn(usize) -> f64, k: usize) {
    let m = ccol.len();
    let mut kk = 0;
    while kk + 4 <= k {
        let s0 = alpha * scale(kk);
        let s1 = alpha * scale(kk + 1);
        let s2 = alpha * scale(kk + 2);
        let s3 = alpha * scale(kk + 3);
        let a0 = a.col(kk);
        let a1 = a.col(kk + 1);
        let a2 = a.col(kk + 2);
        let a3 = a.col(kk + 3);
        for i in 0..m {
            ccol[i] += a0[i] * s0 + a1[i] * s1 + a2[i] * s2 + a3[i] * s3;
        }
        kk += 4;
    }
    while kk < k {
        let s = alpha * scale(kk);
        let acol = a.col(kk);
        for i in 0..m {
            ccol[i] += acol[i] * s;
        }
        kk += 1;
    }
}

// ---------------------------------------------------------------------------
// Packed path: three-level cache blocking around an MR x NR microkernel.
// ---------------------------------------------------------------------------

/// Packed `C += alpha * A * B` (exposed for the bench sweep and tests; the
/// dispatching [`gemm_nn`] is the normal entry point).
pub fn gemm_nn_packed(
    c: &mut MatrixViewMut<'_>,
    alpha: f64,
    a: MatrixView<'_>,
    b: MatrixView<'_>,
    scratch: &mut GemmScratch,
) {
    let k = a.cols();
    packed_loop(
        c,
        alpha,
        k,
        scratch,
        |dst, ic, pc, mc, kc| {
            // op(A)[i, l] = A[ic + i, pc + l]: A columns are contiguous in i.
            pack_a_panels(dst, mc, kc, |i0, mr, l, out| {
                let col = &a.col(pc + l)[ic + i0..ic + i0 + mr];
                out[..mr].copy_from_slice(col);
            })
        },
        |dst, pc, jc, kc, nc| {
            // op(B)[l, j] = B[pc + l, jc + j]: B columns are contiguous in l.
            pack_b_panels(dst, kc, nc, |j, l_range, stride, out| {
                let col = &b.col(jc + j)[pc..pc + l_range];
                for (l, &x) in col.iter().enumerate() {
                    out[l * stride] = x;
                }
            })
        },
    );
}

/// Packed `C += alpha * A^T * B` (see [`gemm_nn_packed`]).
pub fn gemm_tn_packed(
    c: &mut MatrixViewMut<'_>,
    alpha: f64,
    a: MatrixView<'_>,
    b: MatrixView<'_>,
    scratch: &mut GemmScratch,
) {
    let k = a.rows();
    packed_loop(
        c,
        alpha,
        k,
        scratch,
        |dst, ic, pc, mc, kc| {
            // op(A)[i, l] = A[pc + l, ic + i]: A columns are contiguous in l,
            // so each packed row i is one strided scatter of a contiguous read.
            pack_a_cols(dst, mc, kc, |i, l_range, stride, out| {
                let col = &a.col(ic + i)[pc..pc + l_range];
                for (l, &x) in col.iter().enumerate() {
                    out[l * stride] = x;
                }
            })
        },
        |dst, pc, jc, kc, nc| {
            pack_b_panels(dst, kc, nc, |j, l_range, stride, out| {
                let col = &b.col(jc + j)[pc..pc + l_range];
                for (l, &x) in col.iter().enumerate() {
                    out[l * stride] = x;
                }
            })
        },
    );
}

/// Packed `C += alpha * A * B^T` (see [`gemm_nn_packed`]).
pub fn gemm_nt_packed(
    c: &mut MatrixViewMut<'_>,
    alpha: f64,
    a: MatrixView<'_>,
    b: MatrixView<'_>,
    scratch: &mut GemmScratch,
) {
    let k = a.cols();
    packed_loop(
        c,
        alpha,
        k,
        scratch,
        |dst, ic, pc, mc, kc| {
            pack_a_panels(dst, mc, kc, |i0, mr, l, out| {
                let col = &a.col(pc + l)[ic + i0..ic + i0 + mr];
                out[..mr].copy_from_slice(col);
            })
        },
        |dst, pc, jc, kc, nc| {
            // op(B)[l, j] = B[jc + j, pc + l]: B columns are contiguous in j.
            pack_b_rows(dst, kc, nc, |l, j0, nr, out| {
                let col = &b.col(pc + l)[jc + j0..jc + j0 + nr];
                out[..nr].copy_from_slice(col);
            })
        },
    );
}

/// Pack `op(A)` (an `mc x kc` block) into MR-row panels: panel `pi` stores,
/// for each depth `l`, the `MR` rows `pi*MR..` (zero-padded past `mc`).
/// `fill(i0, mr, l, out)` writes the `mr` valid rows of depth `l`.
fn pack_a_panels(
    dst: &mut [f64],
    mc: usize,
    kc: usize,
    mut fill: impl FnMut(usize, usize, usize, &mut [f64]),
) {
    let npanels = mc.div_ceil(MR);
    for pi in 0..npanels {
        let i0 = pi * MR;
        let mr = MR.min(mc - i0);
        let base = pi * MR * kc;
        for l in 0..kc {
            let out = &mut dst[base + l * MR..base + (l + 1) * MR];
            fill(i0, mr, l, out);
            out[mr..].fill(0.0);
        }
    }
}

/// Pack `op(A)` one *column of the packed panel* at a time: for each output
/// row `i` of the block, `fill(i, kc, MR, out)` scatters the `kc` depths of
/// row `i` into `out` with stride `MR` (used when `op(A)` is contiguous
/// along the depth axis, i.e. the transposed variant).
fn pack_a_cols(
    dst: &mut [f64],
    mc: usize,
    kc: usize,
    mut fill: impl FnMut(usize, usize, usize, &mut [f64]),
) {
    let npanels = mc.div_ceil(MR);
    for pi in 0..npanels {
        let i0 = pi * MR;
        let mr = MR.min(mc - i0);
        let base = pi * MR * kc;
        let panel = &mut dst[base..base + MR * kc];
        for ii in 0..MR {
            if ii < mr {
                fill(i0 + ii, kc, MR, &mut panel[ii..]);
            } else {
                for l in 0..kc {
                    panel[l * MR + ii] = 0.0;
                }
            }
        }
    }
}

/// Pack `op(B)` (a `kc x nc` block) into NR-column panels where `op(B)` is
/// contiguous along the depth axis: `fill(j, kc, NR, out)` scatters column
/// `j`'s `kc` depths with stride `NR`.
fn pack_b_panels(
    dst: &mut [f64],
    kc: usize,
    nc: usize,
    mut fill: impl FnMut(usize, usize, usize, &mut [f64]),
) {
    let npanels = nc.div_ceil(NR);
    for pj in 0..npanels {
        let j0 = pj * NR;
        let nr = NR.min(nc - j0);
        let base = pj * NR * kc;
        let panel = &mut dst[base..base + NR * kc];
        for jj in 0..NR {
            if jj < nr {
                fill(j0 + jj, kc, NR, &mut panel[jj..]);
            } else {
                for l in 0..kc {
                    panel[l * NR + jj] = 0.0;
                }
            }
        }
    }
}

/// Pack `op(B)` one depth at a time where `op(B)` is contiguous along the
/// column axis (the `B^T` variant): `fill(l, j0, nr, out)` writes the `nr`
/// valid columns of depth `l`.
fn pack_b_rows(
    dst: &mut [f64],
    kc: usize,
    nc: usize,
    mut fill: impl FnMut(usize, usize, usize, &mut [f64]),
) {
    let npanels = nc.div_ceil(NR);
    for pj in 0..npanels {
        let j0 = pj * NR;
        let nr = NR.min(nc - j0);
        let base = pj * NR * kc;
        for l in 0..kc {
            let out = &mut dst[base + l * NR..base + (l + 1) * NR];
            fill(l, j0, nr, out);
            out[nr..].fill(0.0);
        }
    }
}

/// The three-level loop nest shared by the packed variants: NC columns of
/// packed `op(B)`, KC depths, MC rows of packed `op(A)`, then the
/// `MR x NR` macro-kernel sweep.  The two closures pack one cache block of
/// `op(A)` / `op(B)` into the scratch buffers (`(dst, ic, pc, mc, kc)` and
/// `(dst, pc, jc, kc, nc)` respectively) — they are the only part that
/// differs between the transpose variants.
fn packed_loop(
    c: &mut MatrixViewMut<'_>,
    alpha: f64,
    k: usize,
    scratch: &mut GemmScratch,
    mut pack_a: impl FnMut(&mut [f64], usize, usize, usize, usize),
    mut pack_b: impl FnMut(&mut [f64], usize, usize, usize, usize),
) {
    let m = c.rows();
    let n = c.cols();
    // Size the pack buffers to the actual block extents, so a small product
    // dispatched here without a long-lived scratch allocates proportionally
    // to the problem, not to the MC/KC/NC maxima.
    let apack_len = MC.min(m).div_ceil(MR) * MR * KC.min(k);
    let bpack_len = NC.min(n).div_ceil(NR) * NR * KC.min(k);
    if scratch.apack.len() < apack_len {
        scratch.apack.resize(apack_len, 0.0);
    }
    if scratch.bpack.len() < bpack_len {
        scratch.bpack.resize(bpack_len, 0.0);
    }
    // One backend load per GEMM call; the microkernel sweep below never
    // re-detects CPU features.
    let be = simd::backend();
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(&mut scratch.bpack, pc, jc, kc, nc);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                pack_a(&mut scratch.apack, ic, pc, mc, kc);
                macro_kernel(
                    be,
                    c,
                    alpha,
                    ic,
                    jc,
                    mc,
                    nc,
                    kc,
                    &scratch.apack,
                    &scratch.bpack,
                );
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// Sweep the packed block with the microkernel and fold the accumulators
/// into `C` (`C += alpha * acc`), handling the ragged edge panels.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    be: SimdBackend,
    c: &mut MatrixViewMut<'_>,
    alpha: f64,
    ic: usize,
    jc: usize,
    mc: usize,
    nc: usize,
    kc: usize,
    apack: &[f64],
    bpack: &[f64],
) {
    let mpanels = mc.div_ceil(MR);
    let npanels = nc.div_ceil(NR);
    for pj in 0..npanels {
        let j0 = pj * NR;
        let nr = NR.min(nc - j0);
        let bp = &bpack[pj * NR * kc..];
        for pi in 0..mpanels {
            let i0 = pi * MR;
            let mr = MR.min(mc - i0);
            let ap = &apack[pi * MR * kc..];
            let acc = simd::microkernel_8x4(be, kc, ap, bp);
            for (jj, accj) in acc.iter().enumerate().take(nr) {
                let ccol = c.col_mut(jc + j0 + jj);
                let cc = &mut ccol[ic + i0..ic + i0 + mr];
                for i in 0..mr {
                    cc[i] += alpha * accj[i];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Matrix;
    use crate::gen::random_gaussian;

    fn close(a: &Matrix, b: &Matrix) -> bool {
        a.sub(b).norm_max() < 1e-12
    }

    #[test]
    fn gemm_nn_matches_matmul() {
        let a = random_gaussian(7, 5, 1);
        let b = random_gaussian(5, 6, 2);
        let mut c = random_gaussian(7, 6, 3);
        let expect = {
            let mut e = c.clone();
            e.axpy(1.5, &a.matmul(&b));
            e
        };
        gemm_nn(&mut c.as_view_mut(), 1.5, a.as_view(), b.as_view());
        assert!(close(&c, &expect));
    }

    #[test]
    fn gemm_tn_matches_matmul() {
        let a = random_gaussian(9, 4, 4);
        let b = random_gaussian(9, 3, 5);
        let mut c = random_gaussian(4, 3, 6);
        let expect = {
            let mut e = c.clone();
            e.axpy(-0.5, &a.matmul_tn(&b));
            e
        };
        gemm_tn(&mut c.as_view_mut(), -0.5, a.as_view(), b.as_view());
        assert!(close(&c, &expect));
    }

    #[test]
    fn gemm_nt_matches_matmul() {
        let a = random_gaussian(6, 8, 7);
        let b = random_gaussian(5, 8, 8);
        let mut c = random_gaussian(6, 5, 9);
        let expect = {
            let mut e = c.clone();
            e.axpy(2.0, &a.matmul_nt(&b));
            e
        };
        gemm_nt(&mut c.as_view_mut(), 2.0, a.as_view(), b.as_view());
        assert!(close(&c, &expect));
    }

    #[test]
    fn gemm_on_subviews_respects_ld() {
        // Multiply 3x3 windows of larger matrices; the views carry ld > rows.
        let a = random_gaussian(8, 8, 10);
        let b = random_gaussian(8, 8, 11);
        let mut c = Matrix::zeros(8, 8);
        let av = a.as_view().submatrix(1, 2, 3, 3);
        let bv = b.as_view().submatrix(4, 0, 3, 3);
        {
            let mut cv = c.as_view_mut();
            let mut cw = cv.submatrix_mut(2, 2, 3, 3);
            gemm_nn(&mut cw, 1.0, av, bv);
        }
        let expect = a.block(1, 2, 3, 3).matmul(&b.block(4, 0, 3, 3));
        assert!(close(&c.block(2, 2, 3, 3), &expect));
        // Entries outside the window stay zero.
        assert_eq!(c.get(0, 0), 0.0);
        assert_eq!(c.get(7, 7), 0.0);
    }

    #[test]
    fn unroll_remainders_are_exact() {
        // Sizes chosen to hit every remainder path (k % 4 in 1..=3).
        for k in 1..=9 {
            let a = random_gaussian(5, k, 20 + k as u64);
            let b = random_gaussian(k, 5, 30 + k as u64);
            let mut c = Matrix::zeros(5, 5);
            gemm_nn(&mut c.as_view_mut(), 1.0, a.as_view(), b.as_view());
            assert!(close(&c, &a.matmul(&b)), "k = {k}");
        }
    }

    #[test]
    fn packed_paths_match_unpacked_on_microkernel_edges() {
        // Shapes straddling the MR/NR panel edges and the KC boundary; the
        // broad shape sweep lives in tests/packed_gemm.rs.
        let mut scratch = GemmScratch::new();
        for &(m, n, k) in &[
            (MR, NR, 3usize),
            (MR - 1, NR + 1, KC + 5),
            (2 * MR + 3, 3 * NR + 2, 17),
            (1, 1, 1),
            (MC + MR + 1, NC.min(37), KC + 1),
        ] {
            let a = random_gaussian(m, k, (m * 31 + k) as u64);
            let b = random_gaussian(k, n, (n * 37 + k) as u64);
            let mut cp = random_gaussian(m, n, 40);
            let mut cu = cp.clone();
            gemm_nn_packed(
                &mut cp.as_view_mut(),
                1.25,
                a.as_view(),
                b.as_view(),
                &mut scratch,
            );
            gemm_nn_unpacked(&mut cu.as_view_mut(), 1.25, a.as_view(), b.as_view());
            assert!(close(&cp, &cu), "nn {m}x{n}x{k}");

            let at = a.transpose();
            let mut cp = random_gaussian(m, n, 41);
            let mut cu = cp.clone();
            gemm_tn_packed(
                &mut cp.as_view_mut(),
                -0.75,
                at.as_view(),
                b.as_view(),
                &mut scratch,
            );
            gemm_tn_unpacked(&mut cu.as_view_mut(), -0.75, at.as_view(), b.as_view());
            assert!(close(&cp, &cu), "tn {m}x{n}x{k}");

            let bt = b.transpose();
            let mut cp = random_gaussian(m, n, 42);
            let mut cu = cp.clone();
            gemm_nt_packed(
                &mut cp.as_view_mut(),
                2.0,
                a.as_view(),
                bt.as_view(),
                &mut scratch,
            );
            gemm_nt_unpacked(&mut cu.as_view_mut(), 2.0, a.as_view(), bt.as_view());
            assert!(close(&cp, &cu), "nt {m}x{n}x{k}");
        }
    }
}
