//! Register-blocked GEMM microkernels on column-major views.
//!
//! These are the Level-3 building blocks of the compact-WY tile kernels in
//! `bidiag-kernels`: every blocked apply kernel (`UNMQR`, `TSMQR`, ... and
//! their LQ duals) is three calls into this module.  All three variants
//! compute `C += alpha * op(A) * op(B)` in place:
//!
//! * [`gemm_nn`] — `C += alpha * A * B`,
//! * [`gemm_tn`] — `C += alpha * A^T * B` (no transpose is formed),
//! * [`gemm_nt`] — `C += alpha * A * B^T` (no transpose is formed).
//!
//! The blocking strategy is the classic column-major one: the innermost
//! loop always runs down a *contiguous* column slice, and the middle loop
//! is unrolled by four so each pass over an output column folds four
//! rank-one (or dot-product) contributions — four reads amortize one
//! write stream, and the four independent accumulators give the compiler
//! room to vectorize.  There is no heap allocation and no per-element
//! index arithmetic beyond the hoisted column slicing.

use crate::view::{MatrixView, MatrixViewMut};

/// Dot product with four independent partial sums, so the reduction has no
/// serial dependency chain and the compiler can keep each lane in one SIMD
/// register.  The summation order differs from a plain left-to-right dot —
/// callers on bit-exactness-critical paths (reflector generation) must use
/// an order-exact dot instead.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let a4 = a.chunks_exact(4);
    let b4 = b.chunks_exact(4);
    let (ra, rb) = (a4.remainder(), b4.remainder());
    for (xa, xb) in a4.zip(b4) {
        for t in 0..4 {
            acc[t] += xa[t] * xb[t];
        }
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in ra.iter().zip(rb) {
        s += x * y;
    }
    s
}

/// Four simultaneous dot products of `v` against `c0..c3`, each with
/// four-lane partial sums (see [`dot`]).  This is the inner kernel of the
/// transposed panel products `W = V^T C`: one pass over `v` feeds four
/// output columns.
#[inline]
pub fn dot4(v: &[f64], c0: &[f64], c1: &[f64], c2: &[f64], c3: &[f64]) -> (f64, f64, f64, f64) {
    let n = v.len();
    debug_assert!(c0.len() == n && c1.len() == n && c2.len() == n && c3.len() == n);
    let mut a0 = [0.0f64; 4];
    let mut a1 = [0.0f64; 4];
    let mut a2 = [0.0f64; 4];
    let mut a3 = [0.0f64; 4];
    let v4 = v.chunks_exact(4);
    let n4 = v.len() - v4.remainder().len();
    for (i4, xv) in v4.enumerate() {
        let x0 = &c0[i4 * 4..i4 * 4 + 4];
        let x1 = &c1[i4 * 4..i4 * 4 + 4];
        let x2 = &c2[i4 * 4..i4 * 4 + 4];
        let x3 = &c3[i4 * 4..i4 * 4 + 4];
        for t in 0..4 {
            let vi = xv[t];
            a0[t] += vi * x0[t];
            a1[t] += vi * x1[t];
            a2[t] += vi * x2[t];
            a3[t] += vi * x3[t];
        }
    }
    let mut s0 = (a0[0] + a0[1]) + (a0[2] + a0[3]);
    let mut s1 = (a1[0] + a1[1]) + (a1[2] + a1[3]);
    let mut s2 = (a2[0] + a2[1]) + (a2[2] + a2[3]);
    let mut s3 = (a3[0] + a3[1]) + (a3[2] + a3[3]);
    for i in n4..n {
        let vi = v[i];
        s0 += vi * c0[i];
        s1 += vi * c1[i];
        s2 += vi * c2[i];
        s3 += vi * c3[i];
    }
    (s0, s1, s2, s3)
}

/// `C += alpha * A * B` with `A: m x k`, `B: k x n`, `C: m x n`.
pub fn gemm_nn(c: &mut MatrixViewMut<'_>, alpha: f64, a: MatrixView<'_>, b: MatrixView<'_>) {
    let m = c.rows();
    let n = c.cols();
    let k = a.cols();
    assert_eq!(a.rows(), m, "gemm_nn: A rows mismatch");
    assert_eq!(b.rows(), k, "gemm_nn: B rows mismatch");
    assert_eq!(b.cols(), n, "gemm_nn: B cols mismatch");
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    for (j, ccol) in c.cols_mut().enumerate() {
        let bcol = b.col(j);
        axpy4(ccol, alpha, &a, |kk| bcol[kk], k);
    }
}

/// `C += alpha * A^T * B` with `A: m x p`, `B: m x n`, `C: p x n`.
pub fn gemm_tn(c: &mut MatrixViewMut<'_>, alpha: f64, a: MatrixView<'_>, b: MatrixView<'_>) {
    let p = c.rows();
    let n = c.cols();
    let m = a.rows();
    assert_eq!(a.cols(), p, "gemm_tn: A cols mismatch");
    assert_eq!(b.rows(), m, "gemm_tn: B rows mismatch");
    assert_eq!(b.cols(), n, "gemm_tn: B cols mismatch");
    if p == 0 || n == 0 || alpha == 0.0 {
        return;
    }
    for (j, ccol) in c.cols_mut().enumerate() {
        let bcol = b.col(j);
        let mut i = 0;
        while i + 4 <= p {
            let (s0, s1, s2, s3) = dot4(bcol, a.col(i), a.col(i + 1), a.col(i + 2), a.col(i + 3));
            ccol[i] += alpha * s0;
            ccol[i + 1] += alpha * s1;
            ccol[i + 2] += alpha * s2;
            ccol[i + 3] += alpha * s3;
            i += 4;
        }
        while i < p {
            ccol[i] += alpha * dot(a.col(i), bcol);
            i += 1;
        }
    }
}

/// `C += alpha * A * B^T` with `A: m x k`, `B: n x k`, `C: m x n`.
pub fn gemm_nt(c: &mut MatrixViewMut<'_>, alpha: f64, a: MatrixView<'_>, b: MatrixView<'_>) {
    let m = c.rows();
    let n = c.cols();
    let k = a.cols();
    assert_eq!(a.rows(), m, "gemm_nt: A rows mismatch");
    assert_eq!(b.rows(), n, "gemm_nt: B rows mismatch");
    assert_eq!(b.cols(), k, "gemm_nt: B cols mismatch");
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    for (j, ccol) in c.cols_mut().enumerate() {
        axpy4(ccol, alpha, &a, |kk| b.get(j, kk), k);
    }
}

/// `ccol += alpha * sum_kk a[:, kk] * scale(kk)`, the shared rank-k update
/// of one output column, unrolled four columns of `A` at a time.
#[inline]
fn axpy4(ccol: &mut [f64], alpha: f64, a: &MatrixView<'_>, scale: impl Fn(usize) -> f64, k: usize) {
    let m = ccol.len();
    let mut kk = 0;
    while kk + 4 <= k {
        let s0 = alpha * scale(kk);
        let s1 = alpha * scale(kk + 1);
        let s2 = alpha * scale(kk + 2);
        let s3 = alpha * scale(kk + 3);
        let a0 = a.col(kk);
        let a1 = a.col(kk + 1);
        let a2 = a.col(kk + 2);
        let a3 = a.col(kk + 3);
        for i in 0..m {
            ccol[i] += a0[i] * s0 + a1[i] * s1 + a2[i] * s2 + a3[i] * s3;
        }
        kk += 4;
    }
    while kk < k {
        let s = alpha * scale(kk);
        let acol = a.col(kk);
        for i in 0..m {
            ccol[i] += acol[i] * s;
        }
        kk += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Matrix;
    use crate::gen::random_gaussian;

    fn close(a: &Matrix, b: &Matrix) -> bool {
        a.sub(b).norm_max() < 1e-12
    }

    #[test]
    fn gemm_nn_matches_matmul() {
        let a = random_gaussian(7, 5, 1);
        let b = random_gaussian(5, 6, 2);
        let mut c = random_gaussian(7, 6, 3);
        let expect = {
            let mut e = c.clone();
            e.axpy(1.5, &a.matmul(&b));
            e
        };
        gemm_nn(&mut c.as_view_mut(), 1.5, a.as_view(), b.as_view());
        assert!(close(&c, &expect));
    }

    #[test]
    fn gemm_tn_matches_matmul() {
        let a = random_gaussian(9, 4, 4);
        let b = random_gaussian(9, 3, 5);
        let mut c = random_gaussian(4, 3, 6);
        let expect = {
            let mut e = c.clone();
            e.axpy(-0.5, &a.matmul_tn(&b));
            e
        };
        gemm_tn(&mut c.as_view_mut(), -0.5, a.as_view(), b.as_view());
        assert!(close(&c, &expect));
    }

    #[test]
    fn gemm_nt_matches_matmul() {
        let a = random_gaussian(6, 8, 7);
        let b = random_gaussian(5, 8, 8);
        let mut c = random_gaussian(6, 5, 9);
        let expect = {
            let mut e = c.clone();
            e.axpy(2.0, &a.matmul_nt(&b));
            e
        };
        gemm_nt(&mut c.as_view_mut(), 2.0, a.as_view(), b.as_view());
        assert!(close(&c, &expect));
    }

    #[test]
    fn gemm_on_subviews_respects_ld() {
        // Multiply 3x3 windows of larger matrices; the views carry ld > rows.
        let a = random_gaussian(8, 8, 10);
        let b = random_gaussian(8, 8, 11);
        let mut c = Matrix::zeros(8, 8);
        let av = a.as_view().submatrix(1, 2, 3, 3);
        let bv = b.as_view().submatrix(4, 0, 3, 3);
        {
            let mut cv = c.as_view_mut();
            let mut cw = cv.submatrix_mut(2, 2, 3, 3);
            gemm_nn(&mut cw, 1.0, av, bv);
        }
        let expect = a.block(1, 2, 3, 3).matmul(&b.block(4, 0, 3, 3));
        assert!(close(&c.block(2, 2, 3, 3), &expect));
        // Entries outside the window stay zero.
        assert_eq!(c.get(0, 0), 0.0);
        assert_eq!(c.get(7, 7), 0.0);
    }

    #[test]
    fn unroll_remainders_are_exact() {
        // Sizes chosen to hit every remainder path (k % 4 in 1..=3).
        for k in 1..=9 {
            let a = random_gaussian(5, k, 20 + k as u64);
            let b = random_gaussian(k, 5, 30 + k as u64);
            let mut c = Matrix::zeros(5, 5);
            gemm_nn(&mut c.as_view_mut(), 1.0, a.as_view(), b.as_view());
            assert!(close(&c, &a.matmul(&b)), "k = {k}");
        }
    }
}
