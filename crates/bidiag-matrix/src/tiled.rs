//! Tiled matrix storage.
//!
//! A [`TiledMatrix`] partitions an `m x n` matrix into a `p x q` grid of
//! tiles of size at most `nb x nb` (the last tile row/column may be
//! smaller).  Every tile is stored as an independent contiguous
//! column-major [`Matrix`] so that tile kernels operate on cache-friendly
//! blocks and so that a task-based runtime can treat each tile as a unit
//! of data-flow, exactly as PLASMA/DPLASMA do.

use crate::dense::Matrix;

/// Coordinates of a tile inside the tile grid.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TileCoord {
    /// Tile row index, `0..p`.
    pub row: usize,
    /// Tile column index, `0..q`.
    pub col: usize,
}

impl TileCoord {
    /// Convenience constructor.
    pub fn new(row: usize, col: usize) -> Self {
        Self { row, col }
    }
}

/// A dense matrix partitioned into `nb x nb` tiles.
#[derive(Clone, Debug)]
pub struct TiledMatrix {
    m: usize,
    n: usize,
    nb: usize,
    p: usize,
    q: usize,
    tiles: Vec<Matrix>,
}

impl TiledMatrix {
    /// Create a zero tiled matrix of element size `m x n` with tile size `nb`.
    pub fn zeros(m: usize, n: usize, nb: usize) -> Self {
        assert!(nb > 0, "tile size must be positive");
        assert!(m > 0 && n > 0, "matrix dimensions must be positive");
        let p = m.div_ceil(nb);
        let q = n.div_ceil(nb);
        let mut tiles = Vec::with_capacity(p * q);
        for j in 0..q {
            for i in 0..p {
                let tm = tile_dim(m, nb, i);
                let tn = tile_dim(n, nb, j);
                tiles.push(Matrix::zeros(tm, tn));
            }
        }
        Self {
            m,
            n,
            nb,
            p,
            q,
            tiles,
        }
    }

    /// Partition a dense matrix into tiles.
    pub fn from_dense(a: &Matrix, nb: usize) -> Self {
        let mut t = Self::zeros(a.rows(), a.cols(), nb);
        for i in 0..t.p {
            for j in 0..t.q {
                let block = a.block(
                    i * nb,
                    j * nb,
                    tile_dim(a.rows(), nb, i),
                    tile_dim(a.cols(), nb, j),
                );
                *t.tile_mut(i, j) = block;
            }
        }
        t
    }

    /// Reassemble the dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut a = Matrix::zeros(self.m, self.n);
        for i in 0..self.p {
            for j in 0..self.q {
                a.copy_block(i * self.nb, j * self.nb, self.tile(i, j));
            }
        }
        a
    }

    /// Element rows of the full matrix.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Element columns of the full matrix.
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Tile size parameter `nb`.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Number of tile rows `p`.
    pub fn tile_rows(&self) -> usize {
        self.p
    }

    /// Number of tile columns `q`.
    pub fn tile_cols(&self) -> usize {
        self.q
    }

    /// Borrow tile `(i, j)`.
    pub fn tile(&self, i: usize, j: usize) -> &Matrix {
        &self.tiles[j * self.p + i]
    }

    /// Mutably borrow tile `(i, j)`.
    pub fn tile_mut(&mut self, i: usize, j: usize) -> &mut Matrix {
        &mut self.tiles[j * self.p + i]
    }

    /// Mutably borrow two distinct tiles at once (needed by elimination
    /// kernels that update a pivot tile and a target tile together).
    pub fn two_tiles_mut(
        &mut self,
        a: (usize, usize),
        b: (usize, usize),
    ) -> (&mut Matrix, &mut Matrix) {
        let ia = a.1 * self.p + a.0;
        let ib = b.1 * self.p + b.0;
        assert_ne!(ia, ib, "two_tiles_mut requires distinct tiles");
        if ia < ib {
            let (lo, hi) = self.tiles.split_at_mut(ib);
            (&mut lo[ia], &mut hi[0])
        } else {
            let (lo, hi) = self.tiles.split_at_mut(ia);
            (&mut hi[0], &mut lo[ib])
        }
    }

    /// Borrow tile `r` immutably together with a distinct tile `w` mutably
    /// (the shape of an apply kernel: read the reflectors, update a tile).
    pub fn tile_and_tile_mut(
        &mut self,
        r: (usize, usize),
        w: (usize, usize),
    ) -> (&Matrix, &mut Matrix) {
        let ir = r.1 * self.p + r.0;
        let iw = w.1 * self.p + w.0;
        let [tr, tw] = self
            .tiles
            .get_disjoint_mut([ir, iw])
            .expect("tile_and_tile_mut requires distinct tiles");
        (&*tr, tw)
    }

    /// Borrow tile `r` immutably together with two distinct tiles `w1`,
    /// `w2` mutably (the shape of a pair-update kernel: read the
    /// reflectors, update the pivot and target tiles).
    pub fn tile_and_two_tiles_mut(
        &mut self,
        r: (usize, usize),
        w1: (usize, usize),
        w2: (usize, usize),
    ) -> (&Matrix, &mut Matrix, &mut Matrix) {
        let ir = r.1 * self.p + r.0;
        let i1 = w1.1 * self.p + w1.0;
        let i2 = w2.1 * self.p + w2.0;
        let [tr, t1, t2] = self
            .tiles
            .get_disjoint_mut([ir, i1, i2])
            .expect("tile_and_two_tiles_mut requires distinct tiles");
        (&*tr, t1, t2)
    }

    /// Flat tile index (used by runtimes to name data handles).
    pub fn tile_index(&self, i: usize, j: usize) -> usize {
        j * self.p + i
    }

    /// Element access through the tile structure (slow; for tests/checks).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.tile(i / self.nb, j / self.nb)
            .get(i % self.nb, j % self.nb)
    }

    /// Element update through the tile structure (slow; for tests/checks).
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let nb = self.nb;
        self.tile_mut(i / nb, j / nb).set(i % nb, j % nb, v);
    }

    /// Zero out, in place, all entries strictly below the main (element)
    /// diagonal of a tile.  Used to discard Householder vectors stored in the
    /// factored tiles when only the R / band part is wanted.
    pub fn zero_below_tile_diag(&mut self, i: usize, j: usize) {
        let t = self.tile_mut(i, j);
        for c in 0..t.cols() {
            for r in (c + 1)..t.rows() {
                t.set(r, c, 0.0);
            }
        }
    }

    /// Extract the `band` of the matrix as a dense `min(m,n) x min(m,n)`
    /// matrix keeping only entries with `0 <= j - i <= bw` (upper band).
    /// This is what GE2BND hands over to the BND2BD stage.
    pub fn extract_upper_band(&self, bw: usize) -> Matrix {
        let k = self.m.min(self.n);
        let mut b = Matrix::zeros(k, k);
        for i in 0..k {
            let jmax = (i + bw).min(k - 1);
            for j in i..=jmax {
                b[(i, j)] = self.get(i, j);
            }
        }
        b
    }
}

/// Dimension of tile index `t` along an axis of total length `len`.
fn tile_dim(len: usize, nb: usize, t: usize) -> usize {
    let start = t * nb;
    nb.min(len - start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exact_tiles() {
        let a = Matrix::from_fn(8, 6, |i, j| (i * 13 + j) as f64);
        let t = TiledMatrix::from_dense(&a, 2);
        assert_eq!(t.tile_rows(), 4);
        assert_eq!(t.tile_cols(), 3);
        assert_eq!(t.to_dense(), a);
    }

    #[test]
    fn round_trip_ragged_tiles() {
        let a = Matrix::from_fn(7, 5, |i, j| (i as f64) - 2.0 * (j as f64));
        let t = TiledMatrix::from_dense(&a, 3);
        assert_eq!(t.tile_rows(), 3);
        assert_eq!(t.tile_cols(), 2);
        assert_eq!(t.tile(2, 1).rows(), 1);
        assert_eq!(t.tile(2, 1).cols(), 2);
        assert_eq!(t.to_dense(), a);
    }

    #[test]
    fn element_access_matches_dense() {
        let a = Matrix::from_fn(9, 9, |i, j| (i * 9 + j) as f64);
        let t = TiledMatrix::from_dense(&a, 4);
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(t.get(i, j), a.get(i, j));
            }
        }
    }

    #[test]
    fn two_tiles_mut_returns_distinct() {
        let mut t = TiledMatrix::zeros(4, 4, 2);
        {
            let (a, b) = t.two_tiles_mut((0, 0), (1, 1));
            a.set(0, 0, 1.0);
            b.set(1, 1, 2.0);
        }
        assert_eq!(t.tile(0, 0).get(0, 0), 1.0);
        assert_eq!(t.tile(1, 1).get(1, 1), 2.0);
    }

    #[test]
    #[should_panic]
    fn two_tiles_mut_same_tile_panics() {
        let mut t = TiledMatrix::zeros(4, 4, 2);
        let _ = t.two_tiles_mut((0, 0), (0, 0));
    }

    #[test]
    fn extract_band_keeps_band_only() {
        let a = Matrix::from_fn(6, 6, |_, _| 1.0);
        let t = TiledMatrix::from_dense(&a, 2);
        let b = t.extract_upper_band(1);
        assert!(b.is_upper_bidiagonal(0.0));
        assert_eq!(b.get(0, 1), 1.0);
        assert_eq!(b.get(1, 0), 0.0);
    }
}
