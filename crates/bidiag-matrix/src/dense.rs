//! Dense column-major matrices of `f64`.
//!
//! This is the storage substrate used by every tile kernel in the
//! reproduction.  The layout follows LAPACK conventions (column major,
//! leading dimension equal to the number of rows) so that the kernels in
//! `bidiag-kernels` read like their LAPACK counterparts.

use crate::view::{MatrixView, MatrixViewMut};
use std::fmt;

/// A dense, column-major, heap-allocated matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    /// Column-major storage, `data[j * rows + i]` is the element `(i, j)`.
    data: Vec<f64>,
}

impl Matrix {
    /// Create an `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a function of the (row, column) index.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Build a matrix from row-major data (convenient in tests).
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Self::from_fn(rows, cols, |i, j| data[i * cols + j])
    }

    /// Build a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw column-major data slice.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw column-major data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access without bounds checking beyond the slice index.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i]
    }

    /// Set element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i] = v;
    }

    /// A borrowed column as a slice (columns are contiguous).
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// A mutable borrowed column as a slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Copy of row `i` (rows are strided, so this allocates).
    pub fn row(&self, i: usize) -> Vec<f64> {
        (0..self.cols).map(|j| self.get(i, j)).collect()
    }

    /// Copy `other` into `self`, adopting its shape and reusing the
    /// existing allocation when it is large enough.  This is how
    /// long-lived scratch buffers snapshot tiles without reallocating.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Copy the transpose of `other` into `self`, adopting the transposed
    /// shape and reusing the existing allocation when it is large enough.
    /// Produces exactly the values of [`Matrix::transpose`] without the
    /// fresh allocation — the batched-session direct path uses this to
    /// orient wide problems into a long-lived work buffer.
    pub fn copy_transposed_from(&mut self, other: &Matrix) {
        self.rows = other.cols;
        self.cols = other.rows;
        self.data.clear();
        self.data.resize(other.data.len(), 0.0);
        const BS: usize = 32;
        let (m, n) = (other.rows, other.cols);
        for jb in (0..n).step_by(BS) {
            let jend = (jb + BS).min(n);
            for ib in (0..m).step_by(BS) {
                let iend = (ib + BS).min(m);
                for j in jb..jend {
                    let src = &other.data[j * m + ib..j * m + iend];
                    for (di, &x) in src.iter().enumerate() {
                        self.data[(ib + di) * n + j] = x;
                    }
                }
            }
        }
    }

    /// Borrow the whole matrix as an immutable column-major view.
    #[inline]
    pub fn as_view(&self) -> MatrixView<'_> {
        MatrixView::new(&self.data, self.rows, self.cols, self.rows)
    }

    /// Borrow the whole matrix as a mutable column-major view.
    #[inline]
    pub fn as_view_mut(&mut self) -> MatrixViewMut<'_> {
        MatrixViewMut::new(&mut self.data, self.rows, self.cols, self.rows.max(1))
    }

    /// Borrow the `nrows x ncols` window at `(ro, co)` as a view (no copy).
    #[inline]
    pub fn view(&self, ro: usize, co: usize, nrows: usize, ncols: usize) -> MatrixView<'_> {
        self.as_view().submatrix(ro, co, nrows, ncols)
    }

    /// Return the transposed matrix.
    ///
    /// Runs over 32x32 blocks so both the contiguous reads (source columns)
    /// and the strided writes (destination rows) stay within a cache-sized
    /// footprint.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        const BS: usize = 32;
        let (m, n) = (self.rows, self.cols);
        for jb in (0..n).step_by(BS) {
            let jend = (jb + BS).min(n);
            for ib in (0..m).step_by(BS) {
                let iend = (ib + BS).min(m);
                for j in jb..jend {
                    let src = &self.data[j * m + ib..j * m + iend];
                    for (di, &x) in src.iter().enumerate() {
                        out.data[(ib + di) * n + j] = x;
                    }
                }
            }
        }
        out
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut c = Matrix::zeros(self.rows, other.cols);
        // (i,k)*(k,j): iterate j, k, i so the inner loop is over a contiguous column.
        for j in 0..other.cols {
            for k in 0..self.cols {
                let b = other.get(k, j);
                if b == 0.0 {
                    continue;
                }
                let a_col = self.col(k);
                let c_col = c.col_mut(j);
                for i in 0..self.rows {
                    c_col[i] += a_col[i] * b;
                }
            }
        }
        c
    }

    /// `self^T * other` without forming the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn dimension mismatch");
        let mut c = Matrix::zeros(self.cols, other.cols);
        for j in 0..other.cols {
            for i in 0..self.cols {
                let mut s = 0.0;
                let a_col = self.col(i);
                let b_col = other.col(j);
                for k in 0..self.rows {
                    s += a_col[k] * b_col[k];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    /// `self * other^T` without forming the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt dimension mismatch");
        let mut c = Matrix::zeros(self.rows, other.rows);
        for j in 0..other.rows {
            for k in 0..self.cols {
                let b = other.get(j, k);
                if b == 0.0 {
                    continue;
                }
                let a_col = self.col(k);
                let c_col = c.col_mut(j);
                for i in 0..self.rows {
                    c_col[i] += a_col[i] * b;
                }
            }
        }
        c
    }

    /// Scale every entry in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// `self - other` as a new matrix.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        let mut out = self.clone();
        out.axpy(-1.0, other);
        out
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// One-norm (maximum absolute column sum).
    pub fn norm_one(&self) -> f64 {
        (0..self.cols)
            .map(|j| self.col(j).iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0_f64, f64::max)
    }

    /// Copy a rectangular block of `other` into `self` at offset `(ro, co)`.
    /// Column slices are contiguous in both matrices, so each column is one
    /// `copy_from_slice`.
    pub fn copy_block(&mut self, ro: usize, co: usize, other: &Matrix) {
        assert!(ro + other.rows <= self.rows && co + other.cols <= self.cols);
        let m = self.rows;
        for j in 0..other.cols {
            let dst = (co + j) * m + ro;
            self.data[dst..dst + other.rows].copy_from_slice(other.col(j));
        }
    }

    /// Extract the block of size `rows x cols` starting at `(ro, co)`, one
    /// contiguous column copy at a time.
    pub fn block(&self, ro: usize, co: usize, rows: usize, cols: usize) -> Matrix {
        assert!(ro + rows <= self.rows && co + cols <= self.cols);
        let mut out = Matrix::zeros(rows, cols);
        for j in 0..cols {
            let src = (co + j) * self.rows + ro;
            out.col_mut(j).copy_from_slice(&self.data[src..src + rows]);
        }
        out
    }

    /// True when every entry below the main diagonal is (almost) zero.
    pub fn is_upper_triangular(&self, tol: f64) -> bool {
        for j in 0..self.cols {
            for i in (j + 1)..self.rows {
                if self.get(i, j).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// True when the matrix is (almost) upper bidiagonal: non-zeros only on
    /// the main diagonal and the first superdiagonal.
    pub fn is_upper_bidiagonal(&self, tol: f64) -> bool {
        for j in 0..self.cols {
            for i in 0..self.rows {
                if i != j && i + 1 != j && self.get(i, j).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Upper bandwidth: the largest `j - i` over entries larger than `tol`.
    pub fn upper_bandwidth(&self, tol: f64) -> usize {
        let mut bw = 0usize;
        for j in 0..self.cols {
            for i in 0..self.rows {
                if j > i && self.get(i, j).abs() > tol {
                    bw = bw.max(j - i);
                }
            }
        }
        bw
    }

    /// Extract the main diagonal.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Extract the first superdiagonal.
    pub fn superdiag(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n.saturating_sub(1))
            .map(|i| self.get(i, i + 1))
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[j * self.rows + i]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[j * self.rows + i]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(12);
        let show_cols = self.cols.min(12);
        for i in 0..show_rows {
            write!(f, "  ")?;
            for j in 0..show_cols {
                write!(f, "{:>10.4} ", self.get(i, j))?;
            }
            if show_cols < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if show_rows < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let i2 = Matrix::identity(2);
        let i3 = Matrix::identity(3);
        assert_eq!(i2.matmul(&a), a);
        assert_eq!(a.matmul(&i3), a);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_fn(4, 7, |i, j| (i * 7 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_matches_hand_computed() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), vec![19.0, 22.0]);
        assert_eq!(c.row(1), vec![43.0, 50.0]);
    }

    #[test]
    fn matmul_tn_and_nt_match_explicit_transpose() {
        let a = Matrix::from_fn(5, 3, |i, j| (i + 2 * j) as f64 * 0.5);
        let b = Matrix::from_fn(5, 4, |i, j| (i * j) as f64 - 1.0);
        let c1 = a.matmul_tn(&b);
        let c2 = a.transpose().matmul(&b);
        assert!(c1.sub(&c2).norm_max() < 1e-12);

        let d = Matrix::from_fn(4, 3, |i, j| (i + j) as f64);
        let e1 = a.matmul_nt(&d);
        let e2 = a.matmul(&d.transpose());
        assert!(e1.sub(&e2).norm_max() < 1e-12);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(2, 2, &[3.0, 0.0, 0.0, 4.0]);
        assert!((a.norm_fro() - 5.0).abs() < 1e-15);
        assert_eq!(a.norm_max(), 4.0);
        assert_eq!(a.norm_one(), 4.0);
    }

    #[test]
    fn block_and_copy_block() {
        let a = Matrix::from_fn(6, 6, |i, j| (10 * i + j) as f64);
        let b = a.block(1, 2, 3, 2);
        assert_eq!(b.get(0, 0), 12.0);
        assert_eq!(b.get(2, 1), 33.0);
        let mut c = Matrix::zeros(6, 6);
        c.copy_block(1, 2, &b);
        assert_eq!(c.get(1, 2), 12.0);
        assert_eq!(c.get(3, 3), 33.0);
        assert_eq!(c.get(0, 0), 0.0);
    }

    #[test]
    fn structure_predicates() {
        let mut a = Matrix::zeros(4, 4);
        for i in 0..4 {
            a[(i, i)] = 1.0;
            if i + 1 < 4 {
                a[(i, i + 1)] = 0.5;
            }
        }
        assert!(a.is_upper_triangular(0.0));
        assert!(a.is_upper_bidiagonal(0.0));
        assert_eq!(a.upper_bandwidth(0.0), 1);
        a[(0, 3)] = 2.0;
        assert!(!a.is_upper_bidiagonal(1e-14));
        assert_eq!(a.upper_bandwidth(0.0), 3);
    }

    #[test]
    fn diag_extraction() {
        let a = Matrix::from_fn(3, 4, |i, j| {
            if i == j {
                2.0
            } else if i + 1 == j {
                1.0
            } else {
                0.0
            }
        });
        assert_eq!(a.diag(), vec![2.0, 2.0, 2.0]);
        assert_eq!(a.superdiag(), vec![1.0, 1.0]);
    }
}
