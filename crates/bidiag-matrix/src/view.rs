//! Borrowed column-major matrix views (offset + leading dimension).
//!
//! A view is the triple `(data, rows x cols, ld)` over a column-major
//! slice: element `(i, j)` lives at `data[j * ld + i]`, exactly like a
//! LAPACK submatrix described by a pointer and `LDA` (or faer's
//! `MatRef`/`MatMut`).  Views are what the blocked tile kernels of
//! `bidiag-kernels` operate on: a kernel can address any rectangular
//! window of a tile — or a panel buffer inside a workspace — without
//! copying it into a fresh [`Matrix`](crate::dense::Matrix) first, and the
//! per-column slices it hands to the innermost loops are plain `&[f64]`
//! ranges whose bounds checks the compiler hoists.
//!
//! The invariant every constructor enforces: `ld >= rows` and
//! `data.len() >= (cols - 1) * ld + rows` (for non-empty views), so
//! `col(j)` is always a valid `rows`-long contiguous slice.

/// An immutable view of an `rows x cols` column-major matrix with leading
/// dimension `ld`.
#[derive(Clone, Copy)]
pub struct MatrixView<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
    ld: usize,
}

/// A mutable view of an `rows x cols` column-major matrix with leading
/// dimension `ld`.
pub struct MatrixViewMut<'a> {
    data: &'a mut [f64],
    rows: usize,
    cols: usize,
    ld: usize,
}

#[inline]
fn check_dims(len: usize, rows: usize, cols: usize, ld: usize) {
    assert!(ld >= rows, "leading dimension {ld} < rows {rows}");
    if rows > 0 && cols > 0 {
        assert!(
            len >= (cols - 1) * ld + rows,
            "slice of length {len} too short for a {rows}x{cols} view with ld {ld}"
        );
    }
}

impl<'a> MatrixView<'a> {
    /// View over a column-major slice.
    #[inline]
    pub fn new(data: &'a [f64], rows: usize, cols: usize, ld: usize) -> Self {
        check_dims(data.len(), rows, cols, ld);
        Self {
            data,
            rows,
            cols,
            ld,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (stride between columns).
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.ld + i]
    }

    /// Column `j` as a contiguous slice of length `rows`.
    #[inline]
    pub fn col(&self, j: usize) -> &'a [f64] {
        debug_assert!(j < self.cols);
        &self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// The `nrows x ncols` sub-view with top-left corner `(ro, co)`.
    #[inline]
    pub fn submatrix(&self, ro: usize, co: usize, nrows: usize, ncols: usize) -> MatrixView<'a> {
        assert!(ro + nrows <= self.rows && co + ncols <= self.cols);
        let start = co * self.ld + ro;
        let data = if nrows == 0 || ncols == 0 {
            &self.data[..0]
        } else {
            &self.data[start..start + (ncols - 1) * self.ld + nrows]
        };
        MatrixView {
            data,
            rows: nrows,
            cols: ncols,
            ld: self.ld,
        }
    }
}

impl<'a> MatrixViewMut<'a> {
    /// Mutable view over a column-major slice.
    #[inline]
    pub fn new(data: &'a mut [f64], rows: usize, cols: usize, ld: usize) -> Self {
        check_dims(data.len(), rows, cols, ld);
        Self {
            data,
            rows,
            cols,
            ld,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (stride between columns).
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.ld + i]
    }

    /// Set element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.ld + i] = v;
    }

    /// Column `j` as a contiguous immutable slice of length `rows`.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.cols);
        &self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Column `j` as a contiguous mutable slice of length `rows`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.cols);
        &mut self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Reborrow as an immutable view.
    #[inline]
    pub fn as_view(&self) -> MatrixView<'_> {
        MatrixView {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
        }
    }

    /// Reborrow the `nrows x ncols` sub-view at `(ro, co)` mutably.
    #[inline]
    pub fn submatrix_mut(
        &mut self,
        ro: usize,
        co: usize,
        nrows: usize,
        ncols: usize,
    ) -> MatrixViewMut<'_> {
        assert!(ro + nrows <= self.rows && co + ncols <= self.cols);
        let start = co * self.ld + ro;
        let data = if nrows == 0 || ncols == 0 {
            &mut self.data[..0]
        } else {
            &mut self.data[start..start + (ncols - 1) * self.ld + nrows]
        };
        MatrixViewMut {
            data,
            rows: nrows,
            cols: ncols,
            ld: self.ld,
        }
    }

    /// Split into the columns `0..j` and `j..cols` as two disjoint mutable
    /// views (the column-major dual of `split_at_mut`).
    #[inline]
    pub fn split_cols_at_mut(&mut self, j: usize) -> (MatrixViewMut<'_>, MatrixViewMut<'_>) {
        assert!(j <= self.cols);
        let mid = j * self.ld;
        let mid = mid.min(self.data.len());
        let (left, right) = self.data.split_at_mut(mid);
        (
            MatrixViewMut {
                data: left,
                rows: self.rows,
                cols: j,
                ld: self.ld,
            },
            MatrixViewMut {
                data: right,
                rows: self.rows,
                cols: self.cols - j,
                ld: self.ld,
            },
        )
    }

    /// Iterate over the columns as disjoint mutable slices of length `rows`.
    ///
    /// This is how the GEMM microkernels update several output columns per
    /// pass without aliasing: `ChunksMut` hands out non-overlapping slices
    /// with the lifetime of the underlying data.
    #[inline]
    pub fn cols_mut(&mut self) -> impl Iterator<Item = &mut [f64]> {
        let rows = self.rows;
        self.data
            .chunks_mut(self.ld.max(1))
            .take(self.cols)
            .map(move |c| &mut c[..rows])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_indexing_matches_layout() {
        // 3x2 window with ld 4 inside a 4x3 buffer.
        let data: Vec<f64> = (0..12).map(|x| x as f64).collect();
        let v = MatrixView::new(&data[..], 3, 2, 4);
        assert_eq!(v.get(0, 0), 0.0);
        assert_eq!(v.get(2, 1), 6.0);
        assert_eq!(v.col(1), &[4.0, 5.0, 6.0]);
        let s = v.submatrix(1, 1, 2, 1);
        assert_eq!(s.col(0), &[5.0, 6.0]);
    }

    #[test]
    fn mut_view_split_and_cols() {
        let mut data: Vec<f64> = vec![0.0; 12];
        let mut v = MatrixViewMut::new(&mut data[..], 4, 3, 4);
        {
            let (mut l, mut r) = v.split_cols_at_mut(1);
            assert_eq!(l.cols(), 1);
            assert_eq!(r.cols(), 2);
            l.col_mut(0)[0] = 1.0;
            r.col_mut(1)[3] = 2.0;
        }
        assert_eq!(v.get(0, 0), 1.0);
        assert_eq!(v.get(3, 2), 2.0);
        let mut count = 0;
        for (j, col) in v.cols_mut().enumerate() {
            col[0] = 10.0 + j as f64;
            count += 1;
        }
        assert_eq!(count, 3);
        assert_eq!(data[8], 12.0);
    }

    #[test]
    #[should_panic]
    fn short_slice_is_rejected() {
        let data = [0.0; 5];
        let _ = MatrixView::new(&data[..], 3, 2, 4);
    }

    #[test]
    fn last_column_may_be_shorter_than_ld() {
        // 3 rows, 2 cols, ld 4: minimum length is 4 + 3 = 7.
        let data = [0.0; 7];
        let v = MatrixView::new(&data[..], 3, 2, 4);
        assert_eq!(v.col(1).len(), 3);
    }
}
