//! Task-fan-out coverage of the BD2VAL runtime back-end, in the style of
//! `bidiag-runtime/tests/scheduler_stress.rs`: the sliced path must spawn
//! one task per spectrum *interval* — not the historical one task per
//! singular value (512 task activations on the reference case) — and its
//! results must be independent of the thread count, including heavy
//! oversubscription.

use bidiag_core::exec::{bd2val_on_runtime, bd2val_task_count};
use bidiag_core::{Bd2ValOptions, SvdSolver};
use bidiag_matrix::gen::random_gaussian;
use bidiag_svd::{slice_spectrum, GkBisection, GkSturm};

fn reference_bidiagonal(n: usize) -> (Vec<f64>, Vec<f64>) {
    let g = random_gaussian(n, 2, 42);
    let d: Vec<f64> = (0..n).map(|i| g.get(i, 0)).collect();
    let e: Vec<f64> = (0..n - 1).map(|i| g.get(i, 1)).collect();
    (d, e)
}

#[test]
fn sliced_bd2val_spawns_one_task_per_interval_at_n_512() {
    let n = 512;
    let (d, e) = reference_bidiagonal(n);
    let opts = Bd2ValOptions::default().with_solver(SvdSolver::SlicedBisection);

    // The task count is the slice count: ~k / values_per_task, never k.
    let tasks = bd2val_task_count(&d, &e, &opts);
    let max_tasks = n.div_ceil(opts.values_per_task) + 1;
    assert!(
        (1..=max_tasks).contains(&tasks),
        "expected at most {max_tasks} interval tasks for {n} values, got {tasks}"
    );
    assert!(
        tasks * 8 <= n,
        "interval fan-out must be far below one-task-per-value ({tasks} vs {n})"
    );

    // The legacy oracle keeps per-value fan-out; dqds is a single task.
    let oracle_opts = Bd2ValOptions::default().with_solver(SvdSolver::Bisection);
    assert_eq!(bd2val_task_count(&d, &e, &oracle_opts), n);
    assert_eq!(bd2val_task_count(&d, &e, &Bd2ValOptions::default()), 1);

    // And the slices really are the plan the runtime executes: they tile
    // all k values disjointly.
    let sturm = GkSturm::new(&d, &e);
    let slices = slice_spectrum(&sturm, opts.values_per_task);
    assert_eq!(slices.len(), tasks);
    let covered: usize = slices.iter().map(|s| s.num_values(n)).sum();
    assert_eq!(covered, n, "slices must cover every singular value once");
}

#[test]
fn sliced_bd2val_is_thread_count_invariant_under_oversubscription() {
    let n = 96;
    let (d, e) = reference_bidiagonal(n);
    let opts = Bd2ValOptions::default()
        .with_solver(SvdSolver::SlicedBisection)
        .with_values_per_task(8);

    let seq = bidiag_svd::singular_values_with(&d, &e, &opts);
    // 32 threads on (possibly) one core: most workers park, results must
    // not change by a single bit.
    for threads in [2usize, 4, 32] {
        let par = bd2val_on_runtime(&d, &e, threads, &opts);
        assert_eq!(seq, par, "{threads} threads diverged");
    }

    // Cross-check against the per-value oracle at sigma_max-relative 1e-13.
    let b = GkBisection::new(&d, &e);
    let smax = b.nth_largest(0);
    for (j, s) in seq.iter().enumerate() {
        let o = b.nth_largest(j);
        assert!((s - o).abs() <= 1e-13 * smax, "value {j}: {s} vs {o}");
    }
}
