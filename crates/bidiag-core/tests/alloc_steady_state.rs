//! Steady-state allocation accounting for the batched session: after
//! warm-up, inline direct-path calls through [`SvdSession::compute_into`]
//! must perform **zero** heap allocations — the gebd2 work/tail buffers,
//! the dqds qd-array pool and the output vector are all reused from the
//! session's caller arena.
//!
//! The counting allocator makes this binary single-purpose; keep it to one
//! test so no concurrent test thread pollutes the counter.
//!
//! [`SvdSession::compute_into`]: bidiag_core::batch::SvdSession::compute_into

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_direct_path_calls_allocate_nothing() {
    use bidiag_core::batch::SvdSession;
    use bidiag_matrix::gen::random_gaussian;

    let session = SvdSession::new(1);
    let problems: Vec<_> = (0..4).map(|i| random_gaussian(32, 32, 40 + i)).collect();
    let wide = random_gaussian(24, 48, 99); // exercises the transposed copy
    let mut out = Vec::new();

    // Warm-up: the first calls grow the caller arena (work matrix, gebd2
    // tail, dqds pair pool) and `out` to their steady-state capacities.
    // The inputs are deterministic and repeated below, so every buffer the
    // measured loop needs exists after this.
    for _ in 0..3 {
        for a in &problems {
            session.compute_into(a, &mut out).unwrap();
            assert_eq!(out.len(), 32);
        }
        session.compute_into(&wide, &mut out).unwrap();
        assert_eq!(out.len(), 24);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..50 {
        for a in &problems {
            session.compute_into(a, &mut out).unwrap();
        }
        session.compute_into(&wide, &mut out).unwrap();
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta, 0,
        "warm compute_into made {delta} heap allocations over 250 calls; \
         the direct path must run entirely from the pooled arenas"
    );
}
