//! Fault-injection coverage of the hardened service plane: every
//! [`SvdError`] variant is produced by at least one test here, driven by
//! the `failpoint` shim's named sites in the runtime (`pool::body`,
//! `pool::admission`) or by malformed inputs at the boundary.
//!
//! Gated behind the `failpoints` cargo feature so the process-global
//! failpoint registry is only armed in the dedicated CI leg; within this
//! binary every test serializes through `failpoint::scoped`.

#![cfg(feature = "failpoints")]

use bidiag_core::batch::{AdmissionPolicy, SessionConfig, SvdSession};
use bidiag_core::pipeline::{ge2val, try_ge2bnd, try_ge2val, Ge2Options, DIRECT_CROSSOVER};
use bidiag_core::SvdError;
use bidiag_matrix::gen::random_gaussian;
use failpoint::FailAction;
use std::time::Duration;

fn small_session(threads: usize) -> SvdSession {
    SvdSession::with_options(
        Ge2Options::new(16)
            .with_threads(threads)
            .with_direct_crossover(DIRECT_CROSSOVER),
    )
}

#[test]
fn non_finite_input_is_rejected_at_every_entry_point() {
    let mut a = random_gaussian(8, 8, 1);
    a.set(5, 1, f64::NEG_INFINITY);
    let opts = Ge2Options::new(8);
    assert!(matches!(
        try_ge2val(&a, &opts),
        Err(SvdError::NonFiniteInput { row: 5, col: 1, .. })
    ));
    let session = small_session(1);
    assert!(matches!(
        session.submit(&a),
        Err(SvdError::NonFiniteInput { row: 5, col: 1, .. })
    ));
}

#[test]
fn dimension_mismatch_names_the_violated_contract() {
    let wide = random_gaussian(3, 9, 2);
    match try_ge2bnd(&wide, &Ge2Options::new(4)) {
        Err(SvdError::DimensionMismatch {
            context,
            rows: 3,
            cols: 9,
        }) => {
            assert!(context.contains("m >= n"), "{context}");
        }
        other => panic!("expected DimensionMismatch, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn injected_body_panic_surfaces_as_solver_failure_and_the_pool_survives() {
    let session = small_session(2);
    let a = random_gaussian(12, 12, 3);

    {
        let _guard = failpoint::scoped(&[(
            "pool::body",
            FailAction::Panic("injected kernel panic".into()),
        )]);
        let job = session.submit(&a).expect("finite input admits");
        match job.wait() {
            Err(SvdError::SolverFailure(msg)) => {
                assert!(msg.contains("injected kernel panic"), "{msg}");
            }
            other => panic!("expected SolverFailure, got {:?}", other.map(|_| ())),
        }
        assert!(failpoint::hits("pool::body") > 0, "site never fired");
    }

    // The poisoned submission is contained: the same pool keeps serving,
    // and its results are bitwise what per-call ge2val computes.
    for seed in 4..8u64 {
        let b = random_gaussian(12, 12, seed);
        assert_eq!(
            ge2val(&b, session.options()).singular_values,
            session.submit(&b).unwrap().wait().unwrap(),
            "pool damaged after an injected panic (seed {seed})"
        );
    }
}

#[test]
fn full_bounded_session_sheds_with_queue_full() {
    let session = SvdSession::with_config(
        Ge2Options::new(16)
            .with_threads(1)
            .with_direct_crossover(DIRECT_CROSSOVER),
        SessionConfig {
            max_in_flight: 1,
            admission: AdmissionPolicy::Reject,
        },
    );
    let a = random_gaussian(8, 8, 10);
    let _guard =
        failpoint::scoped(&[("pool::body", FailAction::Delay(Duration::from_millis(400)))]);
    // The first job is admitted and holds the only slot while its body
    // sleeps at the injected delay.
    let first = session.submit(&a).expect("slot was free");
    match session.try_submit(&a) {
        Err(SvdError::QueueFull { max_in_flight: 1 }) => {}
        other => panic!("expected QueueFull, got {:?}", other.map(|_| ())),
    }
    // Blocking submit (the configured policy is Reject, so go through the
    // pool-level guarantee instead): once the delayed job drains, the slot
    // frees and submissions are accepted again.
    first.wait().expect("delayed job still completes");
    let second = session.try_submit(&a).expect("slot freed after drain");
    second.wait().expect("second job completes");
}

#[test]
fn admission_failpoint_forces_queue_full_without_load() {
    let session = small_session(1);
    let a = random_gaussian(8, 8, 11);
    let _guard = failpoint::scoped(&[("pool::admission", FailAction::Trigger)]);
    assert!(matches!(
        session.try_submit(&a),
        Err(SvdError::QueueFull { .. })
    ));
    assert!(failpoint::hits("pool::admission") > 0, "site never fired");
}

#[test]
fn cancelled_queued_job_reports_cancelled_and_frees_its_slot() {
    // One worker held busy by an injected delay; the job queued behind it
    // is cancelled before any of its bodies run.
    let session = small_session(1);
    let a = random_gaussian(8, 8, 12);
    let _guard =
        failpoint::scoped(&[("pool::body", FailAction::Delay(Duration::from_millis(400)))]);
    let blocker = session.submit(&a).unwrap();
    let victim = session.submit(&a).unwrap();
    victim.cancel();
    assert!(matches!(victim.wait(), Err(SvdError::Cancelled)));
    blocker.wait().expect("the blocker was never cancelled");
    // Slots drained: a fresh submission runs normally.
    session.submit(&a).unwrap().wait().expect("pool healthy");
}

#[test]
fn expired_deadline_reports_timed_out() {
    let session = small_session(1);
    let a = random_gaussian(8, 8, 13);
    let _guard =
        failpoint::scoped(&[("pool::body", FailAction::Delay(Duration::from_millis(400)))]);
    let job = session.submit(&a).unwrap();
    match job.wait_timeout(Duration::from_millis(20)) {
        Err(SvdError::TimedOut) => {}
        other => panic!("expected TimedOut, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn closed_session_reports_pool_shutdown() {
    let session = small_session(1);
    session.close();
    let a = random_gaussian(8, 8, 14);
    assert!(matches!(session.submit(&a), Err(SvdError::PoolShutdown)));
}

#[test]
fn poison_panic_and_cancel_never_change_subsequent_arithmetic() {
    // The acceptance scenario end to end: a NaN request, an injected
    // panic and a cancellation hit the same session back to back; the
    // spectra it serves afterwards are bitwise per-call ge2val.
    let session = small_session(2);
    let mut poison = random_gaussian(10, 10, 20);
    poison.set(0, 0, f64::NAN);
    assert!(matches!(
        session.submit(&poison),
        Err(SvdError::NonFiniteInput { .. })
    ));
    {
        let _guard = failpoint::scoped(&[("pool::body", FailAction::Panic("boom".into()))]);
        let job = session.submit(&random_gaussian(10, 10, 21)).unwrap();
        assert!(matches!(job.wait(), Err(SvdError::SolverFailure(_))));
    }
    {
        let _guard =
            failpoint::scoped(&[("pool::body", FailAction::Delay(Duration::from_millis(200)))]);
        let job = session.submit(&random_gaussian(10, 10, 22)).unwrap();
        job.cancel();
        let _ = job.wait(); // Cancelled or Ok depending on timing; both contained
    }
    for (seed, n) in [(23u64, 8usize), (24, 33), (25, 72)] {
        let a = random_gaussian(n, n, seed);
        assert_eq!(
            ge2val(&a, session.options()).singular_values,
            session.submit(&a).unwrap().wait().unwrap(),
            "n={n}"
        );
    }
}
