//! The typed error taxonomy of the hardened service plane.
//!
//! Every fallible entry point of the crate — [`crate::pipeline::try_ge2val`],
//! [`crate::batch::SvdSession`] submission and waiting, the `try_` op-list
//! generators of [`crate::drivers`] — funnels into one [`SvdError`] enum, so
//! service callers match on a closed set of failure modes instead of
//! catching panics:
//!
//! * **Input rejection** ([`SvdError::NonFiniteInput`],
//!   [`SvdError::DimensionMismatch`]): the request itself is malformed;
//!   detected *before* any work is admitted, so a poisoned request can
//!   never take down the shared pool.
//! * **Execution failure** ([`SvdError::SolverFailure`]): a kernel panicked
//!   (the payload message is carried as a value — nothing unwinds across
//!   the service boundary) or a solver emitted non-finite values.
//! * **Admission control** ([`SvdError::QueueFull`],
//!   [`SvdError::PoolShutdown`]): backpressure verdicts of the bounded
//!   session.
//! * **Liveness control** ([`SvdError::Cancelled`], [`SvdError::TimedOut`]):
//!   cooperative cancellation and deadlines.
//!
//! Internal invariants (tile indexing, scheduler counters, body/graph
//! arity) remain `assert!`s on purpose: they are unreachable from user
//! input, and converting them to `Err` would only launder bugs into
//! retry loops.

use bidiag_matrix::Matrix;

/// Why an SVD request failed — see the [module docs](self) for the
/// taxonomy.
#[derive(Clone, Debug, PartialEq)]
pub enum SvdError {
    /// The input matrix contains a NaN or infinity at `(row, col)`.
    /// Detected at submission, before the problem touches the pool.
    NonFiniteInput {
        /// Row index of the first offending entry (column-major scan).
        row: usize,
        /// Column index of the first offending entry.
        col: usize,
        /// The offending value (NaN or ±inf).
        value: f64,
    },
    /// The input's shape violates the entry point's contract (e.g.
    /// `ge2bnd` requires `m >= n`, the tile-op generators require
    /// `p >= q >= 1`).
    DimensionMismatch {
        /// Which contract was violated, e.g. `"ge2bnd requires m >= n"`.
        context: &'static str,
        /// The offending row (or tile-row) count.
        rows: usize,
        /// The offending column (or tile-column) count.
        cols: usize,
    },
    /// The solver failed: a kernel body panicked (the panic payload's
    /// message is carried here as a value — nothing is re-thrown across
    /// the service boundary) or a numerical path produced non-finite
    /// output that every fallback rung refused to repair.
    SolverFailure(String),
    /// The session's admission queue is full and the policy is
    /// load-shedding ([`crate::batch::AdmissionPolicy::Reject`]).
    QueueFull {
        /// The in-flight cap at the time of rejection.
        max_in_flight: usize,
    },
    /// The job was cancelled via [`crate::batch::SvdJob::cancel`] before
    /// it finished.
    Cancelled,
    /// [`crate::batch::SvdJob::wait_timeout`] reached its deadline; the
    /// job was cancelled on the way out.
    TimedOut,
    /// The session (or its pool) was closed; no further submissions are
    /// accepted.
    PoolShutdown,
}

impl std::fmt::Display for SvdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvdError::NonFiniteInput { row, col, value } => {
                write!(f, "non-finite input {value} at ({row}, {col})")
            }
            SvdError::DimensionMismatch {
                context,
                rows,
                cols,
            } => write!(f, "dimension mismatch: {context} (got {rows} x {cols})"),
            SvdError::SolverFailure(msg) => write!(f, "solver failure: {msg}"),
            SvdError::QueueFull { max_in_flight } => {
                write!(f, "admission queue is full ({max_in_flight} in flight)")
            }
            SvdError::Cancelled => write!(f, "job was cancelled"),
            SvdError::TimedOut => write!(f, "job deadline expired"),
            SvdError::PoolShutdown => write!(f, "session is shut down"),
        }
    }
}

impl std::error::Error for SvdError {}

/// Reject matrices containing NaN/inf with [`SvdError::NonFiniteInput`]
/// naming the first offending entry (column-major scan order).
pub fn validate_finite(a: &Matrix) -> Result<(), SvdError> {
    let rows = a.rows();
    for (idx, &value) in a.data().iter().enumerate() {
        if !value.is_finite() {
            return Err(SvdError::NonFiniteInput {
                row: idx % rows,
                col: idx / rows,
                value,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_finite_names_the_first_offender_in_column_major_order() {
        let mut a = Matrix::zeros(3, 2);
        a.set(2, 0, f64::NAN);
        a.set(0, 1, f64::INFINITY);
        match validate_finite(&a) {
            Err(SvdError::NonFiniteInput {
                row: 2,
                col: 0,
                value,
            }) => assert!(value.is_nan()),
            other => panic!("expected NonFiniteInput at (2,0), got {other:?}"),
        }
        assert_eq!(validate_finite(&Matrix::zeros(4, 4)), Ok(()));
        assert_eq!(validate_finite(&Matrix::zeros(0, 0)), Ok(()));
    }

    #[test]
    fn display_messages_are_informative() {
        let e = SvdError::QueueFull { max_in_flight: 32 };
        assert!(e.to_string().contains("32"));
        let e = SvdError::SolverFailure("kernel exploded".into());
        assert!(e.to_string().contains("kernel exploded"));
        let e = SvdError::DimensionMismatch {
            context: "ge2bnd requires m >= n",
            rows: 3,
            cols: 9,
        };
        assert!(e.to_string().contains("3 x 9"));
    }
}
