//! Lowering of the paper's algorithms to tile-operation lists.
//!
//! * [`bidiag_ops`] — the BIDIAG algorithm: `QR(1); LQ(1); QR(2); ...; QR(q)`
//!   (Section III.B, Figure 1),
//! * [`rbidiag_ops`] — the R-BIDIAG algorithm: full tiled QR factorization of
//!   the `p x q` matrix followed by the bidiagonalization of the square
//!   `q x q` R factor (Section III.C),
//! * [`qr_factorization_ops`] — the plain hierarchical tiled QR factorization
//!   (the preQR step of R-BIDIAG, also usable on its own).
//!
//! Every QR (resp. LQ) step is driven by a reduction-tree schedule from
//! `bidiag-trees`; in distributed mode the schedule is the two-level
//! hierarchical tree over the 2D block-cyclic process grid.

use crate::error::SvdError;
use crate::ops::TileOp;
use bidiag_matrix::BlockCyclic;
use bidiag_trees::{
    hierarchical_schedule, panel_schedule, ElimKind, HierConfig, HighLevelTree, NamedTree,
    PanelSchedule,
};
use serde::{Deserialize, Serialize};

/// Which of the two bidiagonalization algorithms to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Interleaved QR/LQ steps on the full matrix.
    Bidiag,
    /// QR factorization first, then bidiagonalization of the R factor.
    RBidiag,
}

impl Algorithm {
    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Bidiag => "BiDiag",
            Algorithm::RBidiag => "R-BiDiag",
        }
    }
}

/// Configuration of an op-list generation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GenConfig {
    /// Reduction tree used inside every QR/LQ step.
    pub tree: NamedTree,
    /// Process grid (use [`BlockCyclic::single_node`] for shared memory).
    pub dist: BlockCyclic,
    /// High-level (inter-node) tree; `None` selects the DPLASMA default
    /// (flat for tall panels, Fibonacci otherwise).
    pub high: Option<HighLevelTree>,
}

impl GenConfig {
    /// Shared-memory configuration with the given tree.
    pub fn shared(tree: NamedTree) -> Self {
        Self {
            tree,
            dist: BlockCyclic::single_node(),
            high: None,
        }
    }

    /// Distributed configuration with the given tree and process grid.
    pub fn distributed(tree: NamedTree, dist: BlockCyclic) -> Self {
        Self {
            tree,
            dist,
            high: None,
        }
    }

    fn schedule_for(
        &self,
        indices: &[usize],
        trailing: usize,
        p: usize,
        q: usize,
    ) -> PanelSchedule {
        let local = self.tree.config_for(indices.len(), trailing);
        if self.dist.proc_rows <= 1 {
            panel_schedule(indices, &local)
        } else {
            let high = self
                .high
                .unwrap_or_else(|| HighLevelTree::dplasma_default(p, q));
            hierarchical_schedule(indices, &self.dist, &HierConfig { local, high })
        }
    }

    /// Column-panel schedule (LQ steps): the distribution across process
    /// *columns* governs the hierarchical grouping.
    fn col_schedule_for(
        &self,
        indices: &[usize],
        trailing: usize,
        p: usize,
        q: usize,
    ) -> PanelSchedule {
        let local = self.tree.config_for(indices.len(), trailing);
        if self.dist.proc_cols <= 1 {
            panel_schedule(indices, &local)
        } else {
            let col_dist = BlockCyclic::new(self.dist.proc_cols, self.dist.proc_rows);
            let high = self
                .high
                .unwrap_or_else(|| HighLevelTree::dplasma_default(q, p));
            hierarchical_schedule(indices, &col_dist, &HierConfig { local, high })
        }
    }
}

/// Emit the operations of QR step `k` applied to tile rows `k..row_end` and
/// trailing tile columns `k+1..col_end`.
fn qr_step_ops(k: usize, row_end: usize, col_end: usize, cfg: &GenConfig, out: &mut Vec<TileOp>) {
    let rows: Vec<usize> = (k..row_end).collect();
    if rows.is_empty() {
        return;
    }
    let trailing = col_end.saturating_sub(k + 1);
    let sched = cfg.schedule_for(&rows, trailing, row_end - k, col_end - k);
    emit_qr_step_from_schedule(k, col_end, &sched, out);
}

/// Emit the operations of LQ step `k` applied to tile columns `k+1..col_end`
/// and trailing tile rows `k+1..row_end`.
fn lq_step_ops(k: usize, row_end: usize, col_end: usize, cfg: &GenConfig, out: &mut Vec<TileOp>) {
    let cols: Vec<usize> = (k + 1..col_end).collect();
    if cols.is_empty() {
        return;
    }
    let trailing = row_end.saturating_sub(k + 1);
    let sched = cfg.col_schedule_for(&cols, trailing, col_end - k - 1, row_end - k);
    for &j in &sched.geqrt_rows {
        out.push(TileOp::Gelqt { k, j });
        for i in (k + 1)..row_end {
            out.push(TileOp::Unmlq { k, j, i });
        }
    }
    for e in &sched.elims {
        match e.kind {
            ElimKind::Ts => {
                out.push(TileOp::Tslqt {
                    k,
                    piv: e.piv,
                    j: e.row,
                });
                for i in (k + 1)..row_end {
                    out.push(TileOp::Tsmlq {
                        k,
                        piv: e.piv,
                        j: e.row,
                        i,
                    });
                }
            }
            ElimKind::Tt => {
                out.push(TileOp::Ttlqt {
                    k,
                    piv: e.piv,
                    j: e.row,
                });
                for i in (k + 1)..row_end {
                    out.push(TileOp::Ttmlq {
                        k,
                        piv: e.piv,
                        j: e.row,
                        i,
                    });
                }
            }
        }
    }
}

/// Fallible twin of [`bidiag_ops`]: a grid violating `p >= q >= 1` is a
/// caller-reachable input error (any wide or empty matrix lands here), so
/// it returns [`SvdError::DimensionMismatch`] instead of asserting.
pub fn try_bidiag_ops(p: usize, q: usize, cfg: &GenConfig) -> Result<Vec<TileOp>, SvdError> {
    if !(p >= q && q >= 1) {
        return Err(SvdError::DimensionMismatch {
            context: "BIDIAG requires a p >= q >= 1 tile grid",
            rows: p,
            cols: q,
        });
    }
    Ok(bidiag_ops(p, q, cfg))
}

/// Operation list of the BIDIAG algorithm on a `p x q` tile grid
/// (`p >= q >= 1`): `QR(0); LQ(0); QR(1); LQ(1); ...; QR(q-1)`.
///
/// Panics on an invalid grid; boundary code that forwards user-provided
/// shapes should call [`try_bidiag_ops`].
pub fn bidiag_ops(p: usize, q: usize, cfg: &GenConfig) -> Vec<TileOp> {
    assert!(
        p >= q && q >= 1,
        "BIDIAG requires p >= q >= 1 (got {p} x {q})"
    );
    let mut ops = Vec::new();
    for k in 0..q {
        qr_step_ops(k, p, q, cfg, &mut ops);
        if k + 1 < q {
            lq_step_ops(k, p, q, cfg, &mut ops);
        }
    }
    ops
}

/// Operation list of the plain hierarchical tiled QR factorization of a
/// `p x q` tile grid.
///
/// With the GREEDY tree on a single node, the panels use the *pipelined*
/// greedy elimination scheme (Bouwmeester et al.): successive panels of a QR
/// factorization overlap, and pairing rows by availability keeps the
/// critical path in `O(log p + q)` instead of `O(q log p)`.  All other
/// configurations use the same per-panel trees as the bidiagonalization.
pub fn qr_factorization_ops(p: usize, q: usize, cfg: &GenConfig) -> Vec<TileOp> {
    assert!(p >= 1 && q >= 1);
    let mut ops = Vec::new();
    let shared_memory = cfg.dist.proc_rows <= 1 && cfg.dist.proc_cols <= 1;
    if shared_memory && matches!(cfg.tree, NamedTree::Greedy) {
        let schedules = bidiag_trees::greedy_qr_schedules(p, q);
        for (k, sched) in schedules.iter().enumerate() {
            emit_qr_step_from_schedule(k, q, sched, &mut ops);
        }
        return ops;
    }
    for k in 0..q.min(p) {
        qr_step_ops(k, p, q, cfg, &mut ops);
    }
    ops
}

/// Emit the operations of QR step `k` (trailing columns `k+1..col_end`) from
/// an explicit panel schedule.
fn emit_qr_step_from_schedule(
    k: usize,
    col_end: usize,
    sched: &PanelSchedule,
    out: &mut Vec<TileOp>,
) {
    for &i in &sched.geqrt_rows {
        out.push(TileOp::Geqrt { k, i });
        for j in (k + 1)..col_end {
            out.push(TileOp::Unmqr { k, i, j });
        }
    }
    for e in &sched.elims {
        match e.kind {
            ElimKind::Ts => {
                out.push(TileOp::Tsqrt {
                    k,
                    piv: e.piv,
                    i: e.row,
                });
                for j in (k + 1)..col_end {
                    out.push(TileOp::Tsmqr {
                        k,
                        piv: e.piv,
                        i: e.row,
                        j,
                    });
                }
            }
            ElimKind::Tt => {
                out.push(TileOp::Ttqrt {
                    k,
                    piv: e.piv,
                    i: e.row,
                });
                for j in (k + 1)..col_end {
                    out.push(TileOp::Ttmqr {
                        k,
                        piv: e.piv,
                        i: e.row,
                        j,
                    });
                }
            }
        }
    }
}

/// Fallible twin of [`rbidiag_ops`] — see [`try_bidiag_ops`].
pub fn try_rbidiag_ops(p: usize, q: usize, cfg: &GenConfig) -> Result<Vec<TileOp>, SvdError> {
    if !(p >= q && q >= 1) {
        return Err(SvdError::DimensionMismatch {
            context: "R-BIDIAG requires a p >= q >= 1 tile grid",
            rows: p,
            cols: q,
        });
    }
    Ok(rbidiag_ops(p, q, cfg))
}

/// Operation list of the R-BIDIAG algorithm on a `p x q` tile grid:
/// full QR factorization, then bidiagonalization of the top `q x q` R factor
/// (whose first QR step is already done).
///
/// Panics on an invalid grid; boundary code that forwards user-provided
/// shapes should call [`try_rbidiag_ops`].
pub fn rbidiag_ops(p: usize, q: usize, cfg: &GenConfig) -> Vec<TileOp> {
    assert!(
        p >= q && q >= 1,
        "R-BIDIAG requires p >= q >= 1 (got {p} x {q})"
    );
    let mut ops = qr_factorization_ops(p, q, cfg);
    // Discard the Householder vectors stored below the diagonal of the R
    // factor (the true R is upper triangular): zero the strictly-lower tiles
    // of the top q x q block and the strictly-lower part of its diagonal
    // tiles, except those of tile column 0, which the square
    // bidiagonalization never reads again.  This mirrors the xLASET calls of
    // reference R-bidiagonalization codes and carries no Table I cost.
    for jcol in 1..q {
        ops.push(TileOp::ZeroLower {
            i: jcol,
            j: jcol,
            whole: false,
        });
        for irow in (jcol + 1)..q {
            ops.push(TileOp::ZeroLower {
                i: irow,
                j: jcol,
                whole: true,
            });
        }
    }
    // Bidiagonalization of the square R factor: LQ(0); QR(1); LQ(1); ... QR(q-1),
    // restricted to the top q x q tiles.
    for k in 0..q {
        if k > 0 {
            qr_step_ops(k, q, q, cfg, &mut ops);
        }
        if k + 1 < q {
            lq_step_ops(k, q, q, cfg, &mut ops);
        }
    }
    ops
}

/// Operation list for either algorithm.
pub fn ge2bnd_ops(p: usize, q: usize, algorithm: Algorithm, cfg: &GenConfig) -> Vec<TileOp> {
    match algorithm {
        Algorithm::Bidiag => bidiag_ops(p, q, cfg),
        Algorithm::RBidiag => rbidiag_ops(p, q, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn shared(tree: NamedTree) -> GenConfig {
        GenConfig::shared(tree)
    }

    #[test]
    fn bidiag_op_counts_match_structure() {
        // For a p x q grid with any tree, each QR step k has (p-k) - 1
        // eliminations + #geqrt factorizations, each followed by (q-k-1)
        // updates; LQ step k has (q-k-1) - 1 eliminations + #gelqt, each
        // followed by (p-k-1) updates.  Count the factorization kernels.
        let (p, q) = (6usize, 4usize);
        for tree in [NamedTree::FlatTs, NamedTree::FlatTt, NamedTree::Greedy] {
            let ops = bidiag_ops(p, q, &shared(tree));
            let n_elim_qr: usize = ops
                .iter()
                .filter(|o| matches!(o, TileOp::Tsqrt { .. } | TileOp::Ttqrt { .. }))
                .count();
            let n_elim_lq: usize = ops
                .iter()
                .filter(|o| matches!(o, TileOp::Tslqt { .. } | TileOp::Ttlqt { .. }))
                .count();
            // QR step k eliminates (p - k - 1) tiles, k = 0..q-1.
            let expect_qr: usize = (0..q).map(|k| p - k - 1).sum();
            // LQ step k eliminates (q - k - 2) tiles, k = 0..q-2.
            let expect_lq: usize = (0..q.saturating_sub(1)).map(|k| q - k - 2).sum();
            assert_eq!(n_elim_qr, expect_qr, "{tree:?}");
            assert_eq!(n_elim_lq, expect_lq, "{tree:?}");
        }
    }

    #[test]
    fn flat_ts_uses_only_ts_kernels_and_one_geqrt_per_step() {
        let ops = bidiag_ops(5, 3, &shared(NamedTree::FlatTs));
        assert!(!ops.iter().any(|o| matches!(
            o,
            TileOp::Ttqrt { .. }
                | TileOp::Ttmqr { .. }
                | TileOp::Ttlqt { .. }
                | TileOp::Ttmlq { .. }
        )));
        let geqrts: Vec<_> = ops
            .iter()
            .filter(|o| matches!(o, TileOp::Geqrt { .. }))
            .collect();
        assert_eq!(geqrts.len(), 3);
    }

    #[test]
    fn greedy_uses_only_tt_eliminations() {
        let ops = bidiag_ops(5, 3, &shared(NamedTree::Greedy));
        assert!(!ops.iter().any(|o| matches!(
            o,
            TileOp::Tsqrt { .. }
                | TileOp::Tsmqr { .. }
                | TileOp::Tslqt { .. }
                | TileOp::Tsmlq { .. }
        )));
    }

    #[test]
    fn every_subdiagonal_tile_is_eliminated_exactly_once_per_qr_step() {
        let (p, q) = (7usize, 5usize);
        let ops = bidiag_ops(p, q, &shared(NamedTree::Greedy));
        for k in 0..q {
            let elim_rows: Vec<usize> = ops
                .iter()
                .filter_map(|o| match *o {
                    TileOp::Tsqrt { k: kk, i, .. } | TileOp::Ttqrt { k: kk, i, .. } if kk == k => {
                        Some(i)
                    }
                    _ => None,
                })
                .collect();
            let uniq: HashSet<usize> = elim_rows.iter().copied().collect();
            assert_eq!(
                elim_rows.len(),
                uniq.len(),
                "duplicate elimination in step {k}"
            );
            assert_eq!(uniq, ((k + 1)..p).collect::<HashSet<_>>(), "step {k}");
        }
    }

    #[test]
    fn rbidiag_contains_full_qr_then_square_bidiag() {
        let (p, q) = (8usize, 3usize);
        let ops = rbidiag_ops(p, q, &shared(NamedTree::Greedy));
        // The R-BIDIAG op list must never touch tile rows >= q after the QR
        // factorization part, i.e. LQ kernels only update rows < q.
        for o in &ops {
            if let TileOp::Unmlq { i, .. } | TileOp::Tsmlq { i, .. } | TileOp::Ttmlq { i, .. } = *o
            {
                assert!(i < q, "LQ update touches row {i} outside the R factor");
            }
        }
        // And it must contain (q-1) + ... eliminations for the square part.
        let n_lq_factor = ops
            .iter()
            .filter(|o| matches!(o, TileOp::Gelqt { .. }))
            .count();
        assert!(n_lq_factor >= q - 1);
    }

    #[test]
    fn single_tile_matrix_is_one_geqrt() {
        let ops = bidiag_ops(1, 1, &shared(NamedTree::Greedy));
        assert_eq!(ops, vec![TileOp::Geqrt { k: 0, i: 0 }]);
        let ops_r = rbidiag_ops(1, 1, &shared(NamedTree::FlatTs));
        assert_eq!(ops_r, vec![TileOp::Geqrt { k: 0, i: 0 }]);
    }

    #[test]
    fn distributed_and_shared_have_same_kernel_counts() {
        let (p, q) = (9usize, 4usize);
        let shared_ops = bidiag_ops(p, q, &shared(NamedTree::Greedy));
        let dist_cfg = GenConfig::distributed(NamedTree::Greedy, BlockCyclic::new(3, 1));
        let dist_ops = bidiag_ops(p, q, &dist_cfg);
        // Same number of eliminations and factorizations (the tree shape
        // differs, the amount of elimination work does not).
        let count = |ops: &[TileOp], f: fn(&TileOp) -> bool| ops.iter().filter(|o| f(o)).count();
        let elim = |o: &TileOp| matches!(o, TileOp::Tsqrt { .. } | TileOp::Ttqrt { .. });
        assert_eq!(count(&shared_ops, elim), count(&dist_ops, elim));
    }

    #[test]
    fn auto_tree_generates_valid_oplists() {
        let ops = bidiag_ops(
            10,
            4,
            &shared(NamedTree::Auto {
                gamma: 2.0,
                ncores: 4,
            }),
        );
        assert!(!ops.is_empty());
        // Mixture of TS and TT eliminations is allowed; just check every
        // QR step still eliminates each subdiagonal tile once.
        let elim_rows_step0: HashSet<usize> = ops
            .iter()
            .filter_map(|o| match *o {
                TileOp::Tsqrt { k: 0, i, .. } | TileOp::Ttqrt { k: 0, i, .. } => Some(i),
                _ => None,
            })
            .collect();
        assert_eq!(elim_rows_step0, (1..10).collect::<HashSet<_>>());
    }
}
