//! The batched SVD runtime service: one persistent pool, many problems.
//!
//! [`crate::pipeline::ge2val`] is shaped for one large factorization — it
//! spins up a thread team, allocates fresh kernel scratch, runs one DAG,
//! and tears everything down.  The ROADMAP's serving scenario (millions of
//! small/medium spectra: per-user embedding blocks, per-request
//! covariances) inverts the cost profile: the matrices are tiny and the
//! per-call setup dominates.  [`SvdSession`] amortizes all of it:
//!
//! * **One pool for the session's lifetime.**  A
//!   [`TaskPool`] of workers spawned once;
//!   between submissions they park on the runtime's condition-variable
//!   idle gate (zero CPU), and independent problem DAGs interleave on the
//!   same work-stealing deques — workers never idle while *any* submitted
//!   problem has ready tasks.
//! * **Per-worker, per-lifetime scratch arenas.**  Each worker owns one
//!   [`SessionScratch`] (blocked-kernel workspace + direct-path arena)
//!   created at spawn and lent to every task body it ever runs; buffer
//!   capacities grow to the high-water mark across problems and stay
//!   there, so steady-state submissions do no hot-path allocation.
//! * **Small-size crossover.**  Problems whose larger dimension is at most
//!   [`Ge2Options::direct_crossover`] skip the tiled machinery entirely —
//!   no tiling, no T-factors, no band stage — and run the scalar `gebd2`
//!   direct path straight into the dqds solver, reusing the worker's
//!   arena.  [`SvdSession::new`] arms the bench-picked
//!   [`DIRECT_CROSSOVER`]; [`SvdSession::with_options`] honours whatever
//!   the caller set (including disabled), so a session reproduces
//!   per-call [`ge2val`](crate::pipeline::ge2val) under the same options **bitwise**.
//!
//! ```
//! use bidiag_core::batch::SvdSession;
//! use bidiag_matrix::gen::{latms, SpectrumKind};
//!
//! let session = SvdSession::new(4);
//! let (a, _) = latms(32, 32, &SpectrumKind::Geometric { cond: 100.0 }, 7);
//! let (b, _) = latms(64, 40, &SpectrumKind::Geometric { cond: 10.0 }, 8);
//! let jobs = session.submit_batch(&[a, b]);
//! for job in jobs {
//!     let sv = job.wait();
//!     assert!(!sv.is_empty());
//! }
//! ```

use crate::drivers::GenConfig;
use crate::exec::build_graph;
use crate::ops::{KernelScratch, TauTable};
use crate::pipeline::{Ge2Options, DIRECT_CROSSOVER};
use bidiag_kernels::band::BandMatrix;
use bidiag_kernels::gebd2::{gebd2_with, Bidiagonal};
use bidiag_matrix::{BlockCyclic, Matrix, TiledMatrix};
use bidiag_runtime::{AccessMode, JobHandle, TaskBodyWith, TaskGraph, TaskPool};
use bidiag_svd::{
    dqds_singular_values_into, singular_values_with, Bd2ValOptions, DqdsScratch, SvdSolver,
};
use parking_lot::Mutex;
use std::sync::{Arc, OnceLock};

/// Default tile size of [`SvdSession::new`] (the workspace-wide `nb = 64`
/// sweet spot of the blocked path; small problems never see it because the
/// crossover routes them to the direct path).
const DEFAULT_NB: usize = 64;

/// Arena of the scalar direct path: every buffer the
/// `gebd2 -> dqds` chain needs, owned per worker (and pooled for inline
/// [`SvdSession::compute_into`] callers), reused across problems.
#[derive(Debug)]
struct DirectScratch {
    /// Working copy of the input (transposed when the problem is wide).
    work: Matrix,
    /// Householder reflector tail shared by every column/row of `gebd2`.
    tail: Vec<f64>,
    /// The bidiagonal factor, cleared and refilled per problem.
    bidiag: Bidiagonal,
    /// Buffer pool of the dqds solver.
    dqds: DqdsScratch,
}

impl DirectScratch {
    fn new() -> Self {
        DirectScratch {
            work: Matrix::zeros(0, 0),
            tail: Vec::new(),
            bidiag: Bidiagonal {
                diag: Vec::new(),
                superdiag: Vec::new(),
            },
            dqds: DqdsScratch::new(),
        }
    }

    /// Arena pre-sized for problems up to `dim x dim`, so even a worker's
    /// first direct problem allocates nothing (beyond the result vector).
    fn for_dim(dim: usize) -> Self {
        DirectScratch {
            work: Matrix::zeros(dim, dim),
            tail: Vec::with_capacity(dim.saturating_sub(1)),
            bidiag: Bidiagonal {
                diag: Vec::with_capacity(dim),
                superdiag: Vec::with_capacity(dim.saturating_sub(1)),
            },
            dqds: DqdsScratch::for_len(dim),
        }
    }
}

/// Per-worker scratch of the session pool: the blocked-kernel workspace
/// (compact-WY panels, GEMM pack buffers, operand snapshots) plus the
/// direct-path arena, both living as long as the worker does.
#[derive(Debug)]
pub struct SessionScratch {
    kernel: KernelScratch,
    direct: DirectScratch,
}

/// Singular values of `a` through the scalar direct path, written into
/// `out` using only `scratch`'s buffers.
///
/// The chain is `copy -> gebd2_with -> dqds_singular_values_into`, each
/// link bitwise-identical to its allocating twin, so the result equals the
/// [`ge2val`](crate::pipeline::ge2val) direct path bit for bit.  With the default
/// [`SvdSolver::Dqds`] the steady-state call performs **zero heap
/// allocations**; the other solvers go through their allocating entry
/// points (they exist for cross-checking, not for throughput).
fn direct_spectrum(
    a: &Matrix,
    bd2val: &Bd2ValOptions,
    scratch: &mut DirectScratch,
    out: &mut Vec<f64>,
) {
    if a.rows() >= a.cols() {
        scratch.work.copy_from(a);
    } else {
        scratch.work.copy_transposed_from(a);
    }
    gebd2_with(&mut scratch.work, &mut scratch.tail, &mut scratch.bidiag);
    let b = &scratch.bidiag;
    match bd2val.solver {
        SvdSolver::Dqds => {
            // Already sorted non-increasing by the solver — ge2val's extra
            // stable sort is an identity on this output.
            dqds_singular_values_into(&b.diag, &b.superdiag, &mut scratch.dqds, out);
        }
        _ => {
            out.clear();
            out.extend(singular_values_with(&b.diag, &b.superdiag, bd2val));
            out.sort_by(|x, y| y.partial_cmp(x).unwrap());
        }
    }
}

/// Completion handle of one submitted problem: [`wait`](SvdJob::wait)
/// yields the singular values in non-increasing order.
#[must_use = "wait() on the job to obtain the singular values"]
pub struct SvdJob {
    /// `None` for problems resolved at submit time (empty inputs).
    handle: Option<JobHandle<SessionScratch>>,
    result: Arc<OnceLock<Vec<f64>>>,
}

impl SvdJob {
    /// Block until the problem is solved and return its singular values in
    /// non-increasing order.  Re-throws the panic of any failed kernel.
    pub fn wait(self) -> Vec<f64> {
        if let Some(handle) = self.handle {
            handle.wait();
        }
        match Arc::try_unwrap(self.result) {
            Ok(cell) => cell.into_inner().expect("job finished without a result"),
            Err(shared) => shared.get().expect("job finished without a result").clone(),
        }
    }

    fn finished(sv: Vec<f64>) -> Self {
        let result = Arc::new(OnceLock::new());
        result.set(sv).expect("fresh OnceLock");
        SvdJob {
            handle: None,
            result,
        }
    }
}

/// A persistent batched-SVD service — see the [module docs](self).
///
/// Cheap problems run as a single direct-path task; larger ones submit
/// their full tile DAG (plus a band/solve sink task).  Either way, tasks of
/// all in-flight problems share the same work-stealing deques and the same
/// per-worker scratch arenas.  Dropping the session parks nothing halfway:
/// the pool drains every submitted problem before its threads exit.
pub struct SvdSession {
    pool: TaskPool<SessionScratch>,
    opts: Ge2Options,
    /// Arena pool for inline [`compute_into`](SvdSession::compute_into)
    /// callers (which run on *caller* threads, not pool workers).
    caller_scratch: Mutex<Vec<DirectScratch>>,
}

impl SvdSession {
    /// Session with `threads` workers and the recommended batched
    /// defaults: `nb = 64`, the bench-picked [`DIRECT_CROSSOVER`], dqds.
    pub fn new(threads: usize) -> Self {
        Self::with_options(
            Ge2Options::new(DEFAULT_NB)
                .with_threads(threads)
                .with_direct_crossover(DIRECT_CROSSOVER),
        )
    }

    /// Session honouring `opts` verbatim (`opts.threads` workers): every
    /// submitted problem yields **bitwise** the spectrum per-call
    /// [`ge2val`](crate::pipeline::ge2val) produces under the same options — including
    /// `opts.direct_crossover = 0`, which forces the blocked pipeline at
    /// every size.
    pub fn with_options(opts: Ge2Options) -> Self {
        let nb = opts.nb;
        let direct_dim = opts.direct_crossover;
        let pool = TaskPool::new(opts.threads, move || SessionScratch {
            kernel: KernelScratch::for_tile(nb),
            direct: DirectScratch::for_dim(direct_dim),
        });
        SvdSession {
            pool,
            opts,
            caller_scratch: Mutex::new(Vec::new()),
        }
    }

    /// Number of pool worker threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The options every submission runs under.
    pub fn options(&self) -> &Ge2Options {
        &self.opts
    }

    /// Submit one problem; returns immediately with a [`SvdJob`] handle.
    ///
    /// The input is snapshot (one clone) so the caller may reuse `a` right
    /// away; everything downstream draws from the worker arenas.
    pub fn submit(&self, a: &Matrix) -> SvdJob {
        if a.rows().min(a.cols()) == 0 {
            return SvdJob::finished(Vec::new());
        }
        if self.opts.takes_direct_path(a.rows(), a.cols()) {
            self.submit_direct(a.clone())
        } else {
            self.submit_blocked(a)
        }
    }

    /// Submit a whole batch; the problems' DAGs interleave on the pool.
    pub fn submit_batch(&self, problems: &[Matrix]) -> Vec<SvdJob> {
        problems.iter().map(|a| self.submit(a)).collect()
    }

    /// Solve `a` *inline on the calling thread* when it is below the
    /// crossover, writing the spectrum into `out` (cleared first); larger
    /// problems are submitted to the pool and waited on.
    ///
    /// This is the steady-state zero-allocation entry point: direct-path
    /// calls draw a pooled arena, so with the default dqds solver a warm
    /// session performs no heap allocation here at all (the allocation
    /// counter test pins this).
    pub fn compute_into(&self, a: &Matrix, out: &mut Vec<f64>) {
        if a.rows().min(a.cols()) == 0 {
            out.clear();
            return;
        }
        if self.opts.takes_direct_path(a.rows(), a.cols()) {
            let mut scratch = self
                .caller_scratch
                .lock()
                .pop()
                .unwrap_or_else(DirectScratch::new);
            direct_spectrum(a, &self.opts.bd2val, &mut scratch, out);
            self.caller_scratch.lock().push(scratch);
        } else {
            let sv = self.submit(a).wait();
            out.clear();
            out.extend_from_slice(&sv);
        }
    }

    /// Direct path as a single pool task using the worker's arena.
    fn submit_direct(&self, a: Matrix) -> SvdJob {
        let bd2val = self.opts.bd2val;
        let mut g = TaskGraph::new();
        g.add_task(1.0, 0, 0, &[(0, AccessMode::Write)]);
        let result: Arc<OnceLock<Vec<f64>>> = Arc::new(OnceLock::new());
        let slot = Arc::clone(&result);
        let k = a.rows().min(a.cols());
        let bodies: Vec<TaskBodyWith<SessionScratch>> =
            vec![Box::new(move |s: &mut SessionScratch| {
                let mut sv = Vec::with_capacity(k);
                direct_spectrum(&a, &bd2val, &mut s.direct, &mut sv);
                slot.set(sv).expect("direct task ran twice");
            })];
        SvdJob {
            handle: Some(self.pool.submit(g, bodies)),
            result,
        }
    }

    /// Blocked path: the GE2BND tile DAG plus one *sink* task running the
    /// band extraction, BND2BD and BD2VAL stages (sequentially — with many
    /// problems in flight, inter-problem parallelism keeps the workers
    /// busier than intra-problem stage fan-out would).
    fn submit_blocked(&self, a: &Matrix) -> SvdJob {
        let a_owned = if a.rows() >= a.cols() {
            a.clone()
        } else {
            a.transpose()
        };
        let (m, n) = (a_owned.rows(), a_owned.cols());
        let nb = self.opts.nb;
        let algorithm = self.opts.resolve_algorithm(m, n);
        let mut tiled = TiledMatrix::from_dense(&a_owned, nb);
        drop(a_owned);
        let (p, q) = (tiled.tile_rows(), tiled.tile_cols());
        let cfg = GenConfig::shared(self.opts.tree);
        let ops = crate::drivers::ge2bnd_ops(p, q, algorithm, &cfg);

        // Move the tiles into shared per-tile locks (row-major i * q + j),
        // leaving the TiledMatrix shell to be refilled by the sink.
        let mut shared: Vec<parking_lot::RwLock<Matrix>> = Vec::with_capacity(p * q);
        for i in 0..p {
            for j in 0..q {
                shared.push(parking_lot::RwLock::new(std::mem::replace(
                    tiled.tile_mut(i, j),
                    Matrix::zeros(0, 0),
                )));
            }
        }
        let shared = Arc::new(shared);
        let taus = Arc::new(TauTable::for_ops(&ops));

        let mut graph = build_graph(&ops, q, &BlockCyclic::single_node());
        // The sink declares a write on every data key any op touches, so
        // it depends (transitively) on the completion of the whole DAG.
        let mut keys: Vec<u64> = ops
            .iter()
            .flat_map(|op| op.accesses(q).into_iter().map(|(k, _)| k))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let sink_accesses: Vec<(u64, AccessMode)> =
            keys.into_iter().map(|k| (k, AccessMode::Write)).collect();
        graph.add_task(1.0, 0, 0, &sink_accesses);

        let result: Arc<OnceLock<Vec<f64>>> = Arc::new(OnceLock::new());
        let mut bodies: Vec<TaskBodyWith<SessionScratch>> = ops
            .iter()
            .enumerate()
            .map(|(op_id, &op)| {
                let shared = Arc::clone(&shared);
                let taus = Arc::clone(&taus);
                Box::new(move |s: &mut SessionScratch| {
                    op.execute_shared(op_id, &shared, q, &taus, &mut s.kernel);
                }) as TaskBodyWith<SessionScratch>
            })
            .collect();
        {
            let shared = Arc::clone(&shared);
            let slot = Arc::clone(&result);
            let bd2val = self.opts.bd2val;
            let mut tiled = tiled;
            bodies.push(Box::new(move |_s: &mut SessionScratch| {
                for i in 0..p {
                    for j in 0..q {
                        *tiled.tile_mut(i, j) =
                            std::mem::replace(&mut *shared[i * q + j].write(), Matrix::zeros(0, 0));
                    }
                }
                // Identical to ge2bnd + the sequential BND2BD / BD2VAL
                // stages of ge2val — same arithmetic, same sort.
                let bw = nb.min(n.saturating_sub(1)).max(1);
                let mut band = BandMatrix::from_dense(&tiled.extract_upper_band(bw), bw);
                let bidiag = band.reduce_to_bidiagonal();
                let mut sv = singular_values_with(&bidiag.diag, &bidiag.superdiag, &bd2val);
                sv.sort_by(|x, y| y.partial_cmp(x).unwrap());
                slot.set(sv).expect("sink ran twice");
            }) as TaskBodyWith<SessionScratch>);
        }
        SvdJob {
            handle: Some(self.pool.submit(graph, bodies)),
            result,
        }
    }
}

/// Solve a batch of independent problems on one temporary session and
/// return their spectra in input order — per-call [`ge2val`](crate::pipeline::ge2val) semantics
/// (each spectrum is **bitwise** what `ge2val(&problems[i], opts)` returns
/// under the same options) with batched-runtime performance.
///
/// Long-running services should hold a [`SvdSession`] instead, so the pool
/// and the scratch arenas persist across batches.
pub fn ge2val_batch(problems: &[Matrix], opts: &Ge2Options) -> Vec<Vec<f64>> {
    let session = SvdSession::with_options(*opts);
    let jobs = session.submit_batch(problems);
    jobs.into_iter().map(SvdJob::wait).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ge2val;
    use bidiag_matrix::gen::{latms, random_gaussian, SpectrumKind};

    /// Sizes straddling the crossover, as the issue prescribes.
    const SIZES: [usize; 6] = [8, 31, 32, 33, 64, 97];

    #[test]
    fn batched_spectra_are_bitwise_equal_to_per_call_ge2val() {
        // One session, default batched options (crossover armed): every
        // result must equal per-call ge2val under the same options, bit
        // for bit — across the direct/blocked boundary.
        let opts = Ge2Options::new(16)
            .with_threads(4)
            .with_direct_crossover(DIRECT_CROSSOVER);
        let session = SvdSession::with_options(opts);
        let problems: Vec<Matrix> = SIZES
            .iter()
            .enumerate()
            .map(|(i, &n)| random_gaussian(n + 3, n, 100 + i as u64))
            .collect();
        let jobs = session.submit_batch(&problems);
        for ((a, job), &n) in problems.iter().zip(jobs).zip(&SIZES) {
            let reference = ge2val(a, &opts);
            assert_eq!(
                reference.singular_values,
                job.wait(),
                "n={n}: session diverged from per-call ge2val"
            );
        }
    }

    #[test]
    fn blocked_only_session_matches_blocked_ge2val() {
        // Crossover disabled: every size runs the full tile DAG on the
        // pool and must still be bitwise per-call ge2val.
        let opts = Ge2Options::new(16).with_threads(3);
        let session = SvdSession::with_options(opts);
        for (i, &n) in SIZES.iter().enumerate() {
            let (a, _) = latms(
                n + 5,
                n,
                &SpectrumKind::Geometric { cond: 1e4 },
                200 + i as u64,
            );
            let reference = ge2val(&a, &opts);
            assert_eq!(
                reference.singular_values,
                session.submit(&a).wait(),
                "n={n}"
            );
        }
    }

    #[test]
    fn compute_into_matches_submit() {
        let session = SvdSession::new(2);
        let mut out = Vec::new();
        for (i, &n) in SIZES.iter().enumerate() {
            let a = random_gaussian(n, n, 300 + i as u64);
            let via_submit = session.submit(&a).wait();
            session.compute_into(&a, &mut out);
            assert_eq!(via_submit, out, "n={n}");
        }
    }

    #[test]
    fn wide_problems_match_their_transpose() {
        let session = SvdSession::new(2);
        for n in [16usize, 80] {
            let a = random_gaussian(n, 2 * n, 42);
            let wide = session.submit(&a).wait();
            let tall = session.submit(&a.transpose()).wait();
            assert_eq!(wide, tall, "n={n}");
        }
    }

    #[test]
    fn empty_problems_resolve_immediately() {
        let session = SvdSession::new(2);
        assert!(session.submit(&Matrix::zeros(0, 0)).wait().is_empty());
        assert!(session.submit(&Matrix::zeros(5, 0)).wait().is_empty());
        let mut out = vec![1.0];
        session.compute_into(&Matrix::zeros(0, 3), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn oversubscribed_submissions_from_many_threads() {
        // More submitting threads than workers, mixed sizes, every result
        // checked against per-call ge2val — the stress test of the issue.
        let session = Arc::new(SvdSession::new(2));
        std::thread::scope(|scope| {
            for t in 0..6u64 {
                let session = Arc::clone(&session);
                scope.spawn(move || {
                    for r in 0..4u64 {
                        let n = [8usize, 33, 72][(t + r) as usize % 3];
                        let a = random_gaussian(n, n, 1000 + t * 10 + r);
                        let expect = ge2val(&a, session.options());
                        assert_eq!(expect.singular_values, session.submit(&a).wait());
                    }
                });
            }
        });
    }

    #[test]
    fn ge2val_batch_returns_spectra_in_input_order() {
        let problems: Vec<Matrix> = (0..8u64)
            .map(|i| random_gaussian(24 + i as usize, 20, i))
            .collect();
        let opts = Ge2Options::new(8)
            .with_threads(4)
            .with_direct_crossover(DIRECT_CROSSOVER);
        let batched = ge2val_batch(&problems, &opts);
        for (a, sv) in problems.iter().zip(&batched) {
            assert_eq!(&ge2val(a, &opts).singular_values, sv);
        }
    }

    #[test]
    fn session_drop_and_recreate_does_not_leak_threads() {
        fn thread_count() -> usize {
            let status = std::fs::read_to_string("/proc/self/status").expect("procfs");
            status
                .lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
                .expect("Threads: line")
        }
        let before = thread_count();
        for round in 0..5u64 {
            let session = SvdSession::new(3);
            let a = random_gaussian(40, 30, round);
            let _ = session.submit(&a).wait();
            drop(session);
        }
        // Every pool joined its workers on drop: back to the baseline.
        assert_eq!(
            thread_count(),
            before,
            "worker threads leaked across session lifetimes"
        );
    }
}
