//! The batched SVD runtime service: one persistent pool, many problems.
//!
//! [`crate::pipeline::ge2val`] is shaped for one large factorization — it
//! spins up a thread team, allocates fresh kernel scratch, runs one DAG,
//! and tears everything down.  The ROADMAP's serving scenario (millions of
//! small/medium spectra: per-user embedding blocks, per-request
//! covariances) inverts the cost profile: the matrices are tiny and the
//! per-call setup dominates.  [`SvdSession`] amortizes all of it:
//!
//! * **One pool for the session's lifetime.**  A
//!   [`TaskPool`] of workers spawned once;
//!   between submissions they park on the runtime's condition-variable
//!   idle gate (zero CPU), and independent problem DAGs interleave on the
//!   same work-stealing deques — workers never idle while *any* submitted
//!   problem has ready tasks.
//! * **Per-worker, per-lifetime scratch arenas.**  Each worker owns one
//!   [`SessionScratch`] (blocked-kernel workspace + direct-path arena)
//!   created at spawn and lent to every task body it ever runs; buffer
//!   capacities grow to the high-water mark across problems and stay
//!   there, so steady-state submissions do no hot-path allocation.
//! * **Small-size crossover.**  Problems whose larger dimension is at most
//!   [`Ge2Options::direct_crossover`] skip the tiled machinery entirely —
//!   no tiling, no T-factors, no band stage — and run the scalar `gebd2`
//!   direct path straight into the dqds solver, reusing the worker's
//!   arena.  [`SvdSession::new`] arms the bench-picked
//!   [`DIRECT_CROSSOVER`]; [`SvdSession::with_options`] honours whatever
//!   the caller set (including disabled), so a session reproduces
//!   per-call [`ge2val`](crate::pipeline::ge2val) under the same options **bitwise**.
//!
//! ## The hardened service plane
//!
//! A session is built to be held by a long-running service, so every
//! failure mode is a *value*, never a panic, a hang, or a dead pool:
//!
//! * **Typed errors.**  Submission validates the input (finiteness) before
//!   it touches the pool; [`SvdJob::wait`] returns
//!   `Result<Vec<f64>, `[`SvdError`]`>` — a kernel panic arrives as
//!   [`SvdError::SolverFailure`] carrying the payload message, and the
//!   pool keeps serving (subsequent submissions are bitwise what a fresh
//!   session computes).
//! * **Bounded admission.**  [`SessionConfig`] caps the submissions in
//!   flight; [`AdmissionPolicy::Block`] parks the submitting thread until
//!   a slot frees (backpressure), [`AdmissionPolicy::Reject`] — or
//!   [`SvdSession::try_submit`] under either policy — sheds load with
//!   [`SvdError::QueueFull`].  A million-problem burst therefore never
//!   holds more than `max_in_flight` live job graphs.
//! * **Cancellation and deadlines.**  [`SvdJob::cancel`] drains a job's
//!   remaining work as no-ops; [`SvdJob::wait_timeout`] bounds the wait
//!   and cancels on expiry ([`SvdError::TimedOut`]).
//!
//! ```
//! use bidiag_core::batch::SvdSession;
//! use bidiag_matrix::gen::{latms, SpectrumKind};
//!
//! let session = SvdSession::new(4);
//! let (a, _) = latms(32, 32, &SpectrumKind::Geometric { cond: 100.0 }, 7);
//! let (b, _) = latms(64, 40, &SpectrumKind::Geometric { cond: 10.0 }, 8);
//! let jobs = session.submit_batch(&[a, b]).expect("inputs are finite");
//! for job in jobs {
//!     let sv = job.wait().expect("no kernel failed");
//!     assert!(!sv.is_empty());
//! }
//! ```

use crate::drivers::GenConfig;
use crate::error::{validate_finite, SvdError};
use crate::exec::build_graph;
use crate::ops::{KernelScratch, TauTable};
use crate::pipeline::{Ge2Options, DIRECT_CROSSOVER};
use bidiag_kernels::band::BandMatrix;
use bidiag_kernels::gebd2::{gebd2_with, Bidiagonal};
use bidiag_matrix::{BlockCyclic, Matrix, TiledMatrix};
use bidiag_obs as obs;
use bidiag_runtime::{
    AccessMode, JobError, JobHandle, PoolConfig, SubmitError, TaskBodyWith, TaskGraph, TaskPool,
};
use bidiag_svd::{
    dqds_singular_values_into, singular_values_with, Bd2ValOptions, DqdsScratch, SvdSolver,
};
use parking_lot::Mutex;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Default tile size of [`SvdSession::new`] (the workspace-wide `nb = 64`
/// sweet spot of the blocked path; small problems never see it because the
/// crossover routes them to the direct path).
const DEFAULT_NB: usize = 64;

/// Default in-flight cap of [`SessionConfig::default`]: generous enough to
/// keep every worker saturated with inter-problem parallelism, small
/// enough that a runaway burst of submissions holds a bounded number of
/// live job graphs (each pinning its input snapshot).
const DEFAULT_MAX_IN_FLIGHT: usize = 256;

/// What a full session does with the next submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Backpressure: [`SvdSession::submit`] parks the calling thread until
    /// an in-flight slot frees.
    Block,
    /// Load shedding: [`SvdSession::submit`] returns
    /// [`SvdError::QueueFull`] immediately.
    Reject,
}

/// Admission configuration of a [`SvdSession`].
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Maximum number of submissions in flight (submitted, not yet
    /// finished).  `0` disables the bound (the pre-backpressure
    /// behaviour).
    pub max_in_flight: usize,
    /// What [`SvdSession::submit`] does when the cap is reached.
    /// [`SvdSession::try_submit`] always sheds, regardless of this policy.
    pub admission: AdmissionPolicy,
}

impl Default for SessionConfig {
    /// Bounded (256 in flight), blocking admission —
    /// the hardened defaults every session runs under unless configured
    /// otherwise.
    fn default() -> Self {
        SessionConfig {
            max_in_flight: DEFAULT_MAX_IN_FLIGHT,
            admission: AdmissionPolicy::Block,
        }
    }
}

/// Map a runtime admission verdict into the service taxonomy.
fn submit_error(e: SubmitError) -> SvdError {
    match e {
        SubmitError::QueueFull { max_in_flight } => SvdError::QueueFull { max_in_flight },
        SubmitError::Shutdown => SvdError::PoolShutdown,
    }
}

/// Map a runtime job outcome into the service taxonomy.
fn job_error(e: JobError) -> SvdError {
    match e {
        JobError::Panicked(msg) => SvdError::SolverFailure(msg),
        JobError::Cancelled => SvdError::Cancelled,
    }
}

/// Arena of the scalar direct path: every buffer the
/// `gebd2 -> dqds` chain needs, owned per worker (and pooled for inline
/// [`SvdSession::compute_into`] callers), reused across problems.
#[derive(Debug)]
struct DirectScratch {
    /// Working copy of the input (transposed when the problem is wide).
    work: Matrix,
    /// Householder reflector tail shared by every column/row of `gebd2`.
    tail: Vec<f64>,
    /// The bidiagonal factor, cleared and refilled per problem.
    bidiag: Bidiagonal,
    /// Buffer pool of the dqds solver.
    dqds: DqdsScratch,
}

impl DirectScratch {
    fn new() -> Self {
        DirectScratch {
            work: Matrix::zeros(0, 0),
            tail: Vec::new(),
            bidiag: Bidiagonal {
                diag: Vec::new(),
                superdiag: Vec::new(),
            },
            dqds: DqdsScratch::new(),
        }
    }

    /// Arena pre-sized for problems up to `dim x dim`, so even a worker's
    /// first direct problem allocates nothing (beyond the result vector).
    fn for_dim(dim: usize) -> Self {
        DirectScratch {
            work: Matrix::zeros(dim, dim),
            tail: Vec::with_capacity(dim.saturating_sub(1)),
            bidiag: Bidiagonal {
                diag: Vec::with_capacity(dim),
                superdiag: Vec::with_capacity(dim.saturating_sub(1)),
            },
            dqds: DqdsScratch::for_len(dim),
        }
    }
}

/// Per-worker scratch of the session pool: the blocked-kernel workspace
/// (compact-WY panels, GEMM pack buffers, operand snapshots) plus the
/// direct-path arena, both living as long as the worker does.
#[derive(Debug)]
pub struct SessionScratch {
    kernel: KernelScratch,
    direct: DirectScratch,
}

/// Singular values of `a` through the scalar direct path, written into
/// `out` using only `scratch`'s buffers.
///
/// The chain is `copy -> gebd2_with -> dqds_singular_values_into`, each
/// link bitwise-identical to its allocating twin, so the result equals the
/// [`ge2val`](crate::pipeline::ge2val) direct path bit for bit.  With the default
/// [`SvdSolver::Dqds`] the steady-state call performs **zero heap
/// allocations**; the other solvers go through their allocating entry
/// points (they exist for cross-checking, not for throughput).
fn direct_spectrum(
    a: &Matrix,
    bd2val: &Bd2ValOptions,
    scratch: &mut DirectScratch,
    out: &mut Vec<f64>,
) {
    if a.rows() >= a.cols() {
        scratch.work.copy_from(a);
    } else {
        scratch.work.copy_transposed_from(a);
    }
    gebd2_with(&mut scratch.work, &mut scratch.tail, &mut scratch.bidiag);
    let b = &scratch.bidiag;
    match bd2val.solver {
        SvdSolver::Dqds => {
            // Already sorted non-increasing by the solver — ge2val's extra
            // stable sort is an identity on this output.
            dqds_singular_values_into(&b.diag, &b.superdiag, &mut scratch.dqds, out);
        }
        _ => {
            out.clear();
            out.extend(singular_values_with(&b.diag, &b.superdiag, bd2val));
            // total_cmp: bitwise-identical to partial_cmp on the
            // non-negative finite values the solvers emit, but a poisoned
            // (injected-NaN) spectrum sorts instead of panicking.
            out.sort_by(|x, y| y.total_cmp(x));
        }
    }
}

/// Completion handle of one submitted problem: [`wait`](SvdJob::wait)
/// yields the singular values in non-increasing order or the job's typed
/// failure.
#[must_use = "wait() on the job to obtain the singular values"]
pub struct SvdJob {
    /// `None` for problems resolved at submit time (empty inputs).
    handle: Option<JobHandle<SessionScratch>>,
    result: Arc<OnceLock<Vec<f64>>>,
}

impl SvdJob {
    /// Block until the problem is solved and return its singular values in
    /// non-increasing order.
    ///
    /// A panicked kernel body arrives as [`SvdError::SolverFailure`]
    /// carrying the panic message (nothing is re-thrown — the pool and
    /// every other in-flight job are unaffected); a cancelled job reports
    /// [`SvdError::Cancelled`]; non-finite solver output (unreachable from
    /// validated input, but injectable) is [`SvdError::SolverFailure`].
    pub fn wait(self) -> Result<Vec<f64>, SvdError> {
        if let Some(handle) = self.handle {
            handle.wait().map_err(job_error)?;
        }
        Self::extract(self.result)
    }

    /// Like [`wait`](SvdJob::wait), but give up at the deadline: a job
    /// still running after `timeout` is cancelled and reported as
    /// [`SvdError::TimedOut`] — the per-request deadline of a service
    /// loop.  (The cancelled job still drains as no-ops in the background;
    /// its admission slot frees when it does.)
    pub fn wait_timeout(self, timeout: Duration) -> Result<Vec<f64>, SvdError> {
        if let Some(handle) = &self.handle {
            match handle.wait_timeout(timeout) {
                None => {
                    handle.cancel();
                    return Err(SvdError::TimedOut);
                }
                Some(outcome) => outcome.map_err(job_error)?,
            }
        }
        Self::extract(self.result)
    }

    /// Request cooperative cancellation: kernel bodies that have not
    /// started are skipped (the job's graph still drains, so counters and
    /// the admission slot are released normally) and
    /// [`wait`](SvdJob::wait) reports [`SvdError::Cancelled`].
    /// Best-effort and idempotent; a job that already finished is
    /// unaffected.
    pub fn cancel(&self) {
        if let Some(handle) = &self.handle {
            handle.cancel();
        }
    }

    /// True once the job has completed (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.handle.as_ref().is_none_or(JobHandle::is_finished)
    }

    fn extract(result: Arc<OnceLock<Vec<f64>>>) -> Result<Vec<f64>, SvdError> {
        let sv = match Arc::try_unwrap(result) {
            Ok(cell) => cell.into_inner().expect("job finished without a result"),
            Err(shared) => shared.get().expect("job finished without a result").clone(),
        };
        if let Some(&bad) = sv.iter().find(|v| !v.is_finite()) {
            return Err(SvdError::SolverFailure(format!(
                "solver produced non-finite singular value {bad}"
            )));
        }
        Ok(sv)
    }

    fn finished(sv: Vec<f64>) -> Self {
        let result = Arc::new(OnceLock::new());
        result.set(sv).expect("fresh OnceLock");
        SvdJob {
            handle: None,
            result,
        }
    }
}

/// A persistent batched-SVD service — see the [module docs](self).
///
/// Cheap problems run as a single direct-path task; larger ones submit
/// their full tile DAG (plus a band/solve sink task).  Either way, tasks of
/// all in-flight problems share the same work-stealing deques and the same
/// per-worker scratch arenas.  Dropping the session parks nothing halfway:
/// the pool drains every submitted problem before its threads exit.
pub struct SvdSession {
    pool: TaskPool<SessionScratch>,
    opts: Ge2Options,
    admission: AdmissionPolicy,
    /// Arena pool for inline [`compute_into`](SvdSession::compute_into)
    /// callers (which run on *caller* threads, not pool workers).
    caller_scratch: Mutex<Vec<DirectScratch>>,
}

impl SvdSession {
    /// Session with `threads` workers and the recommended batched
    /// defaults: `nb = 64`, the bench-picked [`DIRECT_CROSSOVER`], dqds,
    /// bounded blocking admission ([`SessionConfig::default`]).
    pub fn new(threads: usize) -> Self {
        Self::with_options(
            Ge2Options::new(DEFAULT_NB)
                .with_threads(threads)
                .with_direct_crossover(DIRECT_CROSSOVER),
        )
    }

    /// Session honouring `opts` verbatim (`opts.threads` workers) under the
    /// default [`SessionConfig`]: every submitted problem yields **bitwise**
    /// the spectrum per-call [`ge2val`](crate::pipeline::ge2val) produces
    /// under the same options — including `opts.direct_crossover = 0`,
    /// which forces the blocked pipeline at every size.
    pub fn with_options(opts: Ge2Options) -> Self {
        Self::with_config(opts, SessionConfig::default())
    }

    /// Session with explicit admission configuration — see
    /// [`SessionConfig`].  Admission never changes the arithmetic: it only
    /// decides *when* (Block) or *whether* (Reject) a problem enters the
    /// pool.
    pub fn with_config(opts: Ge2Options, config: SessionConfig) -> Self {
        let nb = opts.nb;
        let direct_dim = opts.direct_crossover;
        let pool = TaskPool::with_config(
            opts.threads,
            PoolConfig {
                max_in_flight: config.max_in_flight,
            },
            move || SessionScratch {
                kernel: KernelScratch::for_tile(nb),
                direct: DirectScratch::for_dim(direct_dim),
            },
        );
        SvdSession {
            pool,
            opts,
            admission: config.admission,
            caller_scratch: Mutex::new(Vec::new()),
        }
    }

    /// Number of pool worker threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The options every submission runs under.
    pub fn options(&self) -> &Ge2Options {
        &self.opts
    }

    /// The in-flight submission cap (`0` = unbounded).
    pub fn max_in_flight(&self) -> usize {
        self.pool.max_in_flight()
    }

    /// High-water mark of concurrently in-flight submissions over the
    /// session's lifetime; never exceeds
    /// [`max_in_flight`](SvdSession::max_in_flight) on a bounded session.
    pub fn in_flight_peak(&self) -> usize {
        self.pool.in_flight_peak()
    }

    /// Close admission: every subsequent submission (and every caller
    /// parked in a blocking [`submit`](SvdSession::submit)) gets
    /// [`SvdError::PoolShutdown`]; jobs already admitted still complete.
    /// Idempotent; dropping the session closes it too.
    pub fn close(&self) {
        self.pool.close();
    }

    /// Submit one problem; returns a [`SvdJob`] handle.
    ///
    /// The input is validated (finiteness) *before* admission, so a
    /// poisoned request is rejected with [`SvdError::NonFiniteInput`]
    /// without consuming a slot or touching the pool.  When the session is
    /// full, the configured [`AdmissionPolicy`] decides between parking
    /// this thread and [`SvdError::QueueFull`].
    ///
    /// The input is snapshot (one clone) so the caller may reuse `a` right
    /// away; everything downstream draws from the worker arenas.
    pub fn submit(&self, a: &Matrix) -> Result<SvdJob, SvdError> {
        self.submit_with(a, self.admission == AdmissionPolicy::Block)
    }

    /// Non-blocking twin of [`submit`](SvdSession::submit): always sheds
    /// with [`SvdError::QueueFull`] when the session is full, regardless
    /// of the configured policy — the entry point of load-shedding
    /// service loops.
    pub fn try_submit(&self, a: &Matrix) -> Result<SvdJob, SvdError> {
        self.submit_with(a, false)
    }

    fn submit_with(&self, a: &Matrix, block: bool) -> Result<SvdJob, SvdError> {
        validate_finite(a)?;
        if a.rows().min(a.cols()) == 0 {
            return Ok(SvdJob::finished(Vec::new()));
        }
        if self.opts.takes_direct_path(a.rows(), a.cols()) {
            self.submit_direct(a.clone(), block)
        } else {
            self.submit_blocked(a, block)
        }
    }

    /// Submit a whole batch; the problems' DAGs interleave on the pool.
    /// Fails fast on the first rejected input (problems already submitted
    /// keep running to completion detached).
    pub fn submit_batch(&self, problems: &[Matrix]) -> Result<Vec<SvdJob>, SvdError> {
        problems.iter().map(|a| self.submit(a)).collect()
    }

    /// Solve `a` *inline on the calling thread* when it is below the
    /// crossover, writing the spectrum into `out` (cleared first); larger
    /// problems are submitted to the pool and waited on.
    ///
    /// This is the steady-state zero-allocation entry point: direct-path
    /// calls draw a pooled arena, so with the default dqds solver a warm
    /// session performs no heap allocation here at all (the allocation
    /// counter test pins this).  Inline solves bypass admission — they
    /// consume the *caller's* CPU, not a pool slot.
    pub fn compute_into(&self, a: &Matrix, out: &mut Vec<f64>) -> Result<(), SvdError> {
        validate_finite(a)?;
        if a.rows().min(a.cols()) == 0 {
            out.clear();
            return Ok(());
        }
        if self.opts.takes_direct_path(a.rows(), a.cols()) {
            let mut scratch = self
                .caller_scratch
                .lock()
                .pop()
                .unwrap_or_else(DirectScratch::new);
            direct_spectrum(a, &self.opts.bd2val, &mut scratch, out);
            self.caller_scratch.lock().push(scratch);
            if let Some(&bad) = out.iter().find(|v| !v.is_finite()) {
                return Err(SvdError::SolverFailure(format!(
                    "solver produced non-finite singular value {bad}"
                )));
            }
            Ok(())
        } else {
            let sv = self.submit(a)?.wait()?;
            out.clear();
            out.extend_from_slice(&sv);
            Ok(())
        }
    }

    /// Direct path as a single pool task using the worker's arena.
    fn submit_direct(&self, a: Matrix, block: bool) -> Result<SvdJob, SvdError> {
        let bd2val = self.opts.bd2val;
        let mut g = TaskGraph::new();
        g.add_task(1.0, 0, obs::KIND_DIRECT, &[(0, AccessMode::Write)]);
        let result: Arc<OnceLock<Vec<f64>>> = Arc::new(OnceLock::new());
        let slot = Arc::clone(&result);
        let k = a.rows().min(a.cols());
        let bodies: Vec<TaskBodyWith<SessionScratch>> =
            vec![Box::new(move |s: &mut SessionScratch| {
                let mut sv = Vec::with_capacity(k);
                direct_spectrum(&a, &bd2val, &mut s.direct, &mut sv);
                slot.set(sv).expect("direct task ran twice");
            })];
        let handle = if block {
            self.pool.submit(g, bodies)
        } else {
            self.pool.try_submit(g, bodies)
        }
        .map_err(submit_error)?;
        Ok(SvdJob {
            handle: Some(handle),
            result,
        })
    }

    /// Blocked path: the GE2BND tile DAG plus one *sink* task running the
    /// band extraction, BND2BD and BD2VAL stages (sequentially — with many
    /// problems in flight, inter-problem parallelism keeps the workers
    /// busier than intra-problem stage fan-out would).
    fn submit_blocked(&self, a: &Matrix, block: bool) -> Result<SvdJob, SvdError> {
        let a_owned = if a.rows() >= a.cols() {
            a.clone()
        } else {
            a.transpose()
        };
        let (m, n) = (a_owned.rows(), a_owned.cols());
        let nb = self.opts.nb;
        let algorithm = self.opts.resolve_algorithm(m, n);
        let mut tiled = TiledMatrix::from_dense(&a_owned, nb);
        drop(a_owned);
        let (p, q) = (tiled.tile_rows(), tiled.tile_cols());
        let cfg = GenConfig::shared(self.opts.tree);
        let ops = crate::drivers::ge2bnd_ops(p, q, algorithm, &cfg);

        // Move the tiles into shared per-tile locks (row-major i * q + j),
        // leaving the TiledMatrix shell to be refilled by the sink.
        let mut shared: Vec<parking_lot::RwLock<Matrix>> = Vec::with_capacity(p * q);
        for i in 0..p {
            for j in 0..q {
                shared.push(parking_lot::RwLock::new(std::mem::replace(
                    tiled.tile_mut(i, j),
                    Matrix::zeros(0, 0),
                )));
            }
        }
        let shared = Arc::new(shared);
        let taus = Arc::new(TauTable::for_ops(&ops));

        let mut graph = build_graph(&ops, q, &BlockCyclic::single_node());
        // The sink declares a write on every data key any op touches, so
        // it depends (transitively) on the completion of the whole DAG.
        let mut keys: Vec<u64> = ops
            .iter()
            .flat_map(|op| op.accesses(q).into_iter().map(|(k, _)| k))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let sink_accesses: Vec<(u64, AccessMode)> =
            keys.into_iter().map(|k| (k, AccessMode::Write)).collect();
        graph.add_task(1.0, 0, obs::KIND_SINK, &sink_accesses);

        let result: Arc<OnceLock<Vec<f64>>> = Arc::new(OnceLock::new());
        let mut bodies: Vec<TaskBodyWith<SessionScratch>> = ops
            .iter()
            .enumerate()
            .map(|(op_id, &op)| {
                let shared = Arc::clone(&shared);
                let taus = Arc::clone(&taus);
                Box::new(move |s: &mut SessionScratch| {
                    op.execute_shared(op_id, &shared, q, &taus, &mut s.kernel);
                }) as TaskBodyWith<SessionScratch>
            })
            .collect();
        {
            let shared = Arc::clone(&shared);
            let slot = Arc::clone(&result);
            let bd2val = self.opts.bd2val;
            let mut tiled = tiled;
            bodies.push(Box::new(move |_s: &mut SessionScratch| {
                for i in 0..p {
                    for j in 0..q {
                        *tiled.tile_mut(i, j) =
                            std::mem::replace(&mut *shared[i * q + j].write(), Matrix::zeros(0, 0));
                    }
                }
                // Identical to ge2bnd + the sequential BND2BD / BD2VAL
                // stages of ge2val — same arithmetic, same sort.
                let bw = nb.min(n.saturating_sub(1)).max(1);
                let mut band = BandMatrix::from_dense(&tiled.extract_upper_band(bw), bw);
                let bidiag = band.reduce_to_bidiagonal();
                let mut sv = singular_values_with(&bidiag.diag, &bidiag.superdiag, &bd2val);
                // total_cmp: identical order on finite spectra, no panic on
                // an injected-NaN one (which wait() then reports as a
                // SolverFailure instead of a dead job).
                sv.sort_by(|x, y| y.total_cmp(x));
                slot.set(sv).expect("sink ran twice");
            }) as TaskBodyWith<SessionScratch>);
        }
        let handle = if block {
            self.pool.submit(graph, bodies)
        } else {
            self.pool.try_submit(graph, bodies)
        }
        .map_err(submit_error)?;
        Ok(SvdJob {
            handle: Some(handle),
            result,
        })
    }
}

/// Solve a batch of independent problems on one temporary session and
/// return their spectra in input order — per-call [`ge2val`](crate::pipeline::ge2val) semantics
/// (each spectrum is **bitwise** what `ge2val(&problems[i], opts)` returns
/// under the same options) with batched-runtime performance.
///
/// Fails on the first invalid input or failed job (remaining admitted jobs
/// drain on session drop).  Long-running services should hold a
/// [`SvdSession`] instead, so the pool and the scratch arenas persist
/// across batches.
pub fn ge2val_batch(problems: &[Matrix], opts: &Ge2Options) -> Result<Vec<Vec<f64>>, SvdError> {
    let session = SvdSession::with_options(*opts);
    let jobs = session.submit_batch(problems)?;
    jobs.into_iter().map(SvdJob::wait).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ge2val;
    use bidiag_matrix::gen::{latms, random_gaussian, SpectrumKind};

    /// Sizes straddling the crossover, as the issue prescribes.
    const SIZES: [usize; 6] = [8, 31, 32, 33, 64, 97];

    #[test]
    fn batched_spectra_are_bitwise_equal_to_per_call_ge2val() {
        // One session, default batched options (crossover armed): every
        // result must equal per-call ge2val under the same options, bit
        // for bit — across the direct/blocked boundary.
        let opts = Ge2Options::new(16)
            .with_threads(4)
            .with_direct_crossover(DIRECT_CROSSOVER);
        let session = SvdSession::with_options(opts);
        let problems: Vec<Matrix> = SIZES
            .iter()
            .enumerate()
            .map(|(i, &n)| random_gaussian(n + 3, n, 100 + i as u64))
            .collect();
        let jobs = session.submit_batch(&problems).unwrap();
        for ((a, job), &n) in problems.iter().zip(jobs).zip(&SIZES) {
            let reference = ge2val(a, &opts);
            assert_eq!(
                reference.singular_values,
                job.wait().unwrap(),
                "n={n}: session diverged from per-call ge2val"
            );
        }
    }

    #[test]
    fn blocked_only_session_matches_blocked_ge2val() {
        // Crossover disabled: every size runs the full tile DAG on the
        // pool and must still be bitwise per-call ge2val.
        let opts = Ge2Options::new(16).with_threads(3);
        let session = SvdSession::with_options(opts);
        for (i, &n) in SIZES.iter().enumerate() {
            let (a, _) = latms(
                n + 5,
                n,
                &SpectrumKind::Geometric { cond: 1e4 },
                200 + i as u64,
            );
            let reference = ge2val(&a, &opts);
            assert_eq!(
                reference.singular_values,
                session.submit(&a).unwrap().wait().unwrap(),
                "n={n}"
            );
        }
    }

    #[test]
    fn compute_into_matches_submit() {
        let session = SvdSession::new(2);
        let mut out = Vec::new();
        for (i, &n) in SIZES.iter().enumerate() {
            let a = random_gaussian(n, n, 300 + i as u64);
            let via_submit = session.submit(&a).unwrap().wait().unwrap();
            session.compute_into(&a, &mut out).unwrap();
            assert_eq!(via_submit, out, "n={n}");
        }
    }

    #[test]
    fn wide_problems_match_their_transpose() {
        let session = SvdSession::new(2);
        for n in [16usize, 80] {
            let a = random_gaussian(n, 2 * n, 42);
            let wide = session.submit(&a).unwrap().wait().unwrap();
            let tall = session.submit(&a.transpose()).unwrap().wait().unwrap();
            assert_eq!(wide, tall, "n={n}");
        }
    }

    #[test]
    fn empty_problems_resolve_immediately() {
        let session = SvdSession::new(2);
        let sv = session
            .submit(&Matrix::zeros(0, 0))
            .unwrap()
            .wait()
            .unwrap();
        assert!(sv.is_empty());
        let sv = session
            .submit(&Matrix::zeros(5, 0))
            .unwrap()
            .wait()
            .unwrap();
        assert!(sv.is_empty());
        let mut out = vec![1.0];
        session
            .compute_into(&Matrix::zeros(0, 3), &mut out)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn oversubscribed_submissions_from_many_threads() {
        // More submitting threads than workers, mixed sizes, every result
        // checked against per-call ge2val — the stress test of the issue.
        let session = Arc::new(SvdSession::new(2));
        std::thread::scope(|scope| {
            for t in 0..6u64 {
                let session = Arc::clone(&session);
                scope.spawn(move || {
                    for r in 0..4u64 {
                        let n = [8usize, 33, 72][(t + r) as usize % 3];
                        let a = random_gaussian(n, n, 1000 + t * 10 + r);
                        let expect = ge2val(&a, session.options());
                        assert_eq!(
                            expect.singular_values,
                            session.submit(&a).unwrap().wait().unwrap()
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn ge2val_batch_returns_spectra_in_input_order() {
        let problems: Vec<Matrix> = (0..8u64)
            .map(|i| random_gaussian(24 + i as usize, 20, i))
            .collect();
        let opts = Ge2Options::new(8)
            .with_threads(4)
            .with_direct_crossover(DIRECT_CROSSOVER);
        let batched = ge2val_batch(&problems, &opts).unwrap();
        for (a, sv) in problems.iter().zip(&batched) {
            assert_eq!(&ge2val(a, &opts).singular_values, sv);
        }
    }

    #[test]
    fn session_drop_and_recreate_does_not_leak_threads() {
        fn thread_count() -> usize {
            let status = std::fs::read_to_string("/proc/self/status").expect("procfs");
            status
                .lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
                .expect("Threads: line")
        }
        let before = thread_count();
        for round in 0..5u64 {
            let session = SvdSession::new(3);
            let a = random_gaussian(40, 30, round);
            let _ = session.submit(&a).unwrap().wait().unwrap();
            drop(session);
        }
        // Every pool joined its workers on drop: back to the baseline.
        assert_eq!(
            thread_count(),
            before,
            "worker threads leaked across session lifetimes"
        );
    }

    #[test]
    fn non_finite_inputs_are_rejected_without_touching_the_pool() {
        let session = SvdSession::new(2);
        let mut a = random_gaussian(8, 8, 1);
        a.set(3, 2, f64::NAN);
        match session.submit(&a) {
            Err(SvdError::NonFiniteInput {
                row: 3,
                col: 2,
                value,
            }) => assert!(value.is_nan()),
            other => panic!(
                "expected NonFiniteInput at (3,2), got {:?}",
                other.map(|_| ())
            ),
        }
        assert!(matches!(
            session.try_submit(&a),
            Err(SvdError::NonFiniteInput { .. })
        ));
        let mut out = Vec::new();
        assert!(matches!(
            session.compute_into(&a, &mut out),
            Err(SvdError::NonFiniteInput { .. })
        ));
        // The rejections never consumed an admission slot...
        assert_eq!(session.in_flight_peak(), 0);
        // ...and the session keeps serving clean requests bitwise.
        let b = random_gaussian(8, 8, 2);
        assert_eq!(
            ge2val(&b, session.options()).singular_values,
            session.submit(&b).unwrap().wait().unwrap()
        );
    }

    #[test]
    fn closed_session_rejects_submissions_with_pool_shutdown() {
        let session = SvdSession::new(2);
        let a = random_gaussian(8, 8, 3);
        let admitted = session.submit(&a).unwrap();
        session.close();
        assert!(matches!(session.submit(&a), Err(SvdError::PoolShutdown)));
        assert!(matches!(
            session.try_submit(&a),
            Err(SvdError::PoolShutdown)
        ));
        // Work admitted before the close still completes normally.
        assert_eq!(
            ge2val(&a, session.options()).singular_values,
            admitted.wait().unwrap()
        );
        session.close(); // idempotent
    }

    #[test]
    fn bounded_session_never_exceeds_its_cap() {
        let opts = Ge2Options::new(16)
            .with_threads(2)
            .with_direct_crossover(DIRECT_CROSSOVER);
        let session = SvdSession::with_config(
            opts,
            SessionConfig {
                max_in_flight: 4,
                admission: AdmissionPolicy::Block,
            },
        );
        assert_eq!(session.max_in_flight(), 4);
        let mut jobs = Vec::new();
        for i in 0..64u64 {
            let a = random_gaussian(12, 12, 4000 + i);
            // Blocking admission: this parks instead of failing when full.
            jobs.push((a.clone(), session.submit(&a).unwrap()));
        }
        assert!(
            session.in_flight_peak() <= 4,
            "peak {} exceeded the cap",
            session.in_flight_peak()
        );
        for (a, job) in jobs {
            assert_eq!(
                ge2val(&a, session.options()).singular_values,
                job.wait().unwrap()
            );
        }
    }

    #[test]
    fn generous_deadlines_return_the_spectrum() {
        let session = SvdSession::new(2);
        let a = random_gaussian(24, 24, 5);
        let job = session.submit(&a).unwrap();
        let sv = job.wait_timeout(Duration::from_secs(60)).unwrap();
        assert_eq!(ge2val(&a, session.options()).singular_values, sv);
    }

    #[test]
    fn cancelling_a_finished_job_keeps_its_result() {
        let session = SvdSession::new(2);
        let a = random_gaussian(16, 16, 6);
        let job = session.submit(&a).unwrap();
        while !job.is_finished() {
            std::thread::yield_now();
        }
        job.cancel(); // no-op: completion already published
        assert_eq!(
            ge2val(&a, session.options()).singular_values,
            job.wait().unwrap()
        );
    }
}
