//! The tile-operation intermediate representation.
//!
//! Every algorithm of the paper (BIDIAG, R-BIDIAG, plain tiled QR) is first
//! lowered to a flat list of [`TileOp`]s in a valid sequential order.  The
//! same list then feeds three back-ends:
//!
//! * sequential execution (reference numerics),
//! * the shared-memory parallel executor of `bidiag-runtime`,
//! * the task-graph analyses (critical paths) and machine simulations.
//!
//! Each operation knows which tiles and reflector-scalar vectors it reads and
//! writes, so the data-flow DAG is derived mechanically.

use bidiag_kernels::cost::KernelKind;
use bidiag_kernels::{lq, qr, TFactor, Trans, Workspace};
use bidiag_matrix::{Matrix, TiledMatrix};
use bidiag_runtime::{AccessMode, DataKey};
use std::collections::HashMap;

/// One tile operation of a tiled algorithm.  All indices are tile indices;
/// `k` is the step (panel index).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TileOp {
    /// Factor tile `(i, k)` into a triangle.
    Geqrt {
        /// Panel (step) index.
        k: usize,
        /// Tile row being factored.
        i: usize,
    },
    /// Apply the reflectors of `Geqrt { k, i }` to tile `(i, j)`.
    Unmqr {
        /// Panel index.
        k: usize,
        /// Tile row holding the reflectors.
        i: usize,
        /// Trailing tile column being updated.
        j: usize,
    },
    /// Eliminate the square tile `(i, k)` against the triangle `(piv, k)`.
    Tsqrt {
        /// Panel index.
        k: usize,
        /// Pivot tile row.
        piv: usize,
        /// Eliminated tile row.
        i: usize,
    },
    /// Apply the reflectors of `Tsqrt { k, piv, i }` to tiles `(piv, j)` and `(i, j)`.
    Tsmqr {
        /// Panel index.
        k: usize,
        /// Pivot tile row.
        piv: usize,
        /// Eliminated tile row.
        i: usize,
        /// Trailing tile column being updated.
        j: usize,
    },
    /// Eliminate the triangle `(i, k)` against the triangle `(piv, k)`.
    Ttqrt {
        /// Panel index.
        k: usize,
        /// Pivot tile row.
        piv: usize,
        /// Eliminated tile row.
        i: usize,
    },
    /// Apply the reflectors of `Ttqrt { k, piv, i }` to tiles `(piv, j)` and `(i, j)`.
    Ttmqr {
        /// Panel index.
        k: usize,
        /// Pivot tile row.
        piv: usize,
        /// Eliminated tile row.
        i: usize,
        /// Trailing tile column being updated.
        j: usize,
    },
    /// Factor tile `(k, j)` into a lower triangle (LQ panel kernel).
    Gelqt {
        /// Panel index.
        k: usize,
        /// Tile column being factored.
        j: usize,
    },
    /// Apply the reflectors of `Gelqt { k, j }` to tile `(i, j)` from the right.
    Unmlq {
        /// Panel index.
        k: usize,
        /// Tile column holding the reflectors.
        j: usize,
        /// Trailing tile row being updated.
        i: usize,
    },
    /// Eliminate the square tile `(k, j)` against the lower triangle `(k, piv)`.
    Tslqt {
        /// Panel index.
        k: usize,
        /// Pivot tile column.
        piv: usize,
        /// Eliminated tile column.
        j: usize,
    },
    /// Apply the reflectors of `Tslqt { k, piv, j }` to tiles `(i, piv)` and `(i, j)`.
    Tsmlq {
        /// Panel index.
        k: usize,
        /// Pivot tile column.
        piv: usize,
        /// Eliminated tile column.
        j: usize,
        /// Trailing tile row being updated.
        i: usize,
    },
    /// Eliminate the lower triangle `(k, j)` against the lower triangle `(k, piv)`.
    Ttlqt {
        /// Panel index.
        k: usize,
        /// Pivot tile column.
        piv: usize,
        /// Eliminated tile column.
        j: usize,
    },
    /// Apply the reflectors of `Ttlqt { k, piv, j }` to tiles `(i, piv)` and `(i, j)`.
    Ttmlq {
        /// Panel index.
        k: usize,
        /// Pivot tile column.
        piv: usize,
        /// Eliminated tile column.
        j: usize,
        /// Trailing tile row being updated.
        i: usize,
    },
    /// Zero (part of) tile `(i, j)`: the whole tile when `whole` is true,
    /// otherwise only its strictly-lower part.  Used by R-BIDIAG to discard
    /// the Householder vectors of the QR factorization stored below the
    /// diagonal of the R factor before bidiagonalizing it (LAPACK `xLASET`).
    ZeroLower {
        /// Tile row.
        i: usize,
        /// Tile column.
        j: usize,
        /// Zero the whole tile instead of only the strictly-lower part.
        whole: bool,
    },
}

/// Class of reflector-scalar (tau) storage produced by factorization kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum TauClass {
    QrFactor,
    QrElim,
    LqFactor,
    LqElim,
}

/// Key of a tau factor in the data-flow graph (and the binding key of
/// [`TauTable`] slots).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TauKey(u64);

fn tau_key(class: TauClass, k: usize, idx: usize) -> TauKey {
    let c = match class {
        TauClass::QrFactor => 0u64,
        TauClass::QrElim => 1,
        TauClass::LqFactor => 2,
        TauClass::LqElim => 3,
    };
    TauKey((1u64 << 62) | (c << 40) | ((k as u64) << 20) | idx as u64)
}

/// Per-worker scratch of the execution back-ends: the compact-WY kernel
/// [`Workspace`] plus a reusable buffer for snapshotting the read-only `V`
/// operand of an apply kernel out of its tile lock.
///
/// The sequential driver owns one; the parallel runtime creates one per
/// worker thread (see `exec::execute_parallel`), so in steady state no
/// kernel execution allocates.
#[derive(Debug)]
pub struct KernelScratch {
    /// Compact-WY workspace handed to every blocked kernel.
    pub ws: Workspace,
    /// Snapshot buffer for read-only reflector tiles (parallel back-end).
    vbuf: Matrix,
}

impl KernelScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        KernelScratch {
            ws: Workspace::new(),
            vbuf: Matrix::zeros(0, 0),
        }
    }

    /// Scratch pre-sized for `nb x nb` tiles: the kernel workspace panels
    /// and the snapshot buffer are allocated up front, so even the first
    /// kernel a worker runs is allocation-free.
    pub fn for_tile(nb: usize) -> Self {
        KernelScratch {
            ws: Workspace::for_tile(nb),
            vbuf: Matrix::zeros(nb, nb),
        }
    }
}

impl Default for KernelScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Lock-free storage of the [`TFactor`]s (reflector scalars + compact-WY
/// `T` matrices) produced by factorization kernels — the *single* tau store
/// shared by the sequential driver and the parallel runtime: one pre-sized
/// [`OnceLock`] slot per *producing* operation, resolved at build time from
/// the sequential op order.
///
/// A [`TauKey`] can be produced more than once in one op list (R-BIDIAG
/// reuses panel indices between its QR-factorization phase and the square
/// bidiagonalization), so slots are keyed by the *op index* of the
/// producer rather than by the key: during the sequential scan in
/// [`TauTable::for_ops`], each consumer is bound to the most recent
/// producer of its key — exactly the producer its RAW dependency points to
/// in the task graph.  The DAG's WAR edges guarantee a later producer of
/// the same key never runs before earlier consumers, so every slot is
/// written once and read only after being written.  No locking, no
/// rehashing, no contention on a global map.
///
/// [`OnceLock`]: std::sync::OnceLock
#[derive(Debug)]
pub struct TauTable {
    /// Per-op slot written by the op (producers only).
    write_slot: Vec<Option<u32>>,
    /// Per-op slot read by the op (consumers only).
    read_slot: Vec<Option<u32>>,
    slots: Vec<std::sync::OnceLock<TFactor>>,
}

/// Whether an operation produces or consumes a tau vector.
enum TauRole {
    Produce,
    Consume,
}

impl TauTable {
    /// Pre-size the table for an operation list (one slot per factorization
    /// kernel) and bind every consumer to its producer's slot.
    pub fn for_ops(ops: &[TileOp]) -> Self {
        let mut write_slot = vec![None; ops.len()];
        let mut read_slot = vec![None; ops.len()];
        let mut nslots = 0u32;
        // One-shot sizing: count the producers up front so the binding map
        // never rehashes mid-scan (ge2val_batch calls this per problem).
        let producers = ops
            .iter()
            .filter(|op| matches!(op.tau_role(), Some(TauRole::Produce)))
            .count();
        let mut last_producer: HashMap<u64, u32> = HashMap::with_capacity(producers);
        for (t, op) in ops.iter().enumerate() {
            match op.tau_role() {
                Some(TauRole::Produce) => {
                    last_producer.insert(op.tau().0, nslots);
                    write_slot[t] = Some(nslots);
                    nslots += 1;
                }
                Some(TauRole::Consume) => {
                    let slot = *last_producer
                        .get(&op.tau().0)
                        .expect("tau consumed before any producer in the op list");
                    read_slot[t] = Some(slot);
                }
                None => {}
            }
        }
        TauTable {
            write_slot,
            read_slot,
            slots: (0..nslots).map(|_| std::sync::OnceLock::new()).collect(),
        }
    }

    /// Number of tau slots (factorization kernels) in the table.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the op list contains no factorization kernel.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Store the factor produced by op `op_id`.
    fn put(&self, op_id: usize, tf: TFactor) {
        let slot = self.write_slot[op_id].expect("op produces no tau factor");
        self.slots[slot as usize]
            .set(tf)
            .expect("tau slot produced twice");
    }

    /// Fetch the factor consumed by op `op_id` (panics if the producer has
    /// not run — the DAG guarantees it has).
    fn get(&self, op_id: usize) -> &TFactor {
        let slot = self.read_slot[op_id].expect("op consumes no tau factor");
        self.slots[slot as usize]
            .get()
            .expect("tau factor read before being produced")
    }
}

impl TileOp {
    /// The kernel kind (for costs and reporting).
    pub fn kernel(&self) -> KernelKind {
        match self {
            TileOp::Geqrt { .. } => KernelKind::Geqrt,
            TileOp::Unmqr { .. } => KernelKind::Unmqr,
            TileOp::Tsqrt { .. } => KernelKind::Tsqrt,
            TileOp::Tsmqr { .. } => KernelKind::Tsmqr,
            TileOp::Ttqrt { .. } => KernelKind::Ttqrt,
            TileOp::Ttmqr { .. } => KernelKind::Ttmqr,
            TileOp::Gelqt { .. } => KernelKind::Gelqt,
            TileOp::Unmlq { .. } => KernelKind::Unmlq,
            TileOp::Tslqt { .. } => KernelKind::Tslqt,
            TileOp::Tsmlq { .. } => KernelKind::Tsmlq,
            TileOp::Ttlqt { .. } => KernelKind::Ttlqt,
            TileOp::Ttmlq { .. } => KernelKind::Ttmlq,
            TileOp::ZeroLower { .. } => KernelKind::Laset,
        }
    }

    /// Cost weight of the operation (Table I, units of `nb^3/3`).
    pub fn weight(&self) -> f64 {
        self.kernel().weight()
    }

    /// The tile that is considered "owned" output of the operation; the
    /// owner-computes rule places the task on the node owning this tile.
    pub fn output_tile(&self) -> (usize, usize) {
        match *self {
            TileOp::Geqrt { k, i } => (i, k),
            TileOp::Unmqr { i, j, .. } => (i, j),
            TileOp::Tsqrt { k, i, .. } | TileOp::Ttqrt { k, i, .. } => (i, k),
            TileOp::Tsmqr { i, j, .. } | TileOp::Ttmqr { i, j, .. } => (i, j),
            TileOp::Gelqt { k, j } => (k, j),
            TileOp::Unmlq { i, j, .. } => (i, j),
            TileOp::Tslqt { k, j, .. } | TileOp::Ttlqt { k, j, .. } => (k, j),
            TileOp::Tsmlq { i, j, .. } | TileOp::Ttmlq { i, j, .. } => (i, j),
            TileOp::ZeroLower { i, j, .. } => (i, j),
        }
    }

    /// Tau key produced (factorization kernels) or consumed (update kernels).
    fn tau(&self) -> TauKey {
        match *self {
            TileOp::Geqrt { k, i } => tau_key(TauClass::QrFactor, k, i),
            TileOp::Unmqr { k, i, .. } => tau_key(TauClass::QrFactor, k, i),
            TileOp::Tsqrt { k, i, .. } | TileOp::Ttqrt { k, i, .. } => {
                tau_key(TauClass::QrElim, k, i)
            }
            TileOp::Tsmqr { k, i, .. } | TileOp::Ttmqr { k, i, .. } => {
                tau_key(TauClass::QrElim, k, i)
            }
            TileOp::Gelqt { k, j } => tau_key(TauClass::LqFactor, k, j),
            TileOp::Unmlq { k, j, .. } => tau_key(TauClass::LqFactor, k, j),
            TileOp::Tslqt { k, j, .. } | TileOp::Ttlqt { k, j, .. } => {
                tau_key(TauClass::LqElim, k, j)
            }
            TileOp::Tsmlq { k, j, .. } | TileOp::Ttmlq { k, j, .. } => {
                tau_key(TauClass::LqElim, k, j)
            }
            TileOp::ZeroLower { .. } => unreachable!("ZeroLower has no reflector scalars"),
        }
    }

    /// Whether the op produces or consumes a tau vector (factorization
    /// kernels produce, update kernels consume, `ZeroLower` does neither).
    fn tau_role(&self) -> Option<TauRole> {
        match self {
            TileOp::Geqrt { .. }
            | TileOp::Tsqrt { .. }
            | TileOp::Ttqrt { .. }
            | TileOp::Gelqt { .. }
            | TileOp::Tslqt { .. }
            | TileOp::Ttlqt { .. } => Some(TauRole::Produce),
            TileOp::Unmqr { .. }
            | TileOp::Tsmqr { .. }
            | TileOp::Ttmqr { .. }
            | TileOp::Unmlq { .. }
            | TileOp::Tsmlq { .. }
            | TileOp::Ttmlq { .. } => Some(TauRole::Consume),
            TileOp::ZeroLower { .. } => None,
        }
    }

    /// Data accesses of the operation for a `p x q` tile grid.
    ///
    /// Every tile is represented by *three* data keys — its diagonal, its
    /// strictly-upper part and its strictly-lower part.  This region-level
    /// granularity reproduces the data-flow of the DPLASMA implementation: a
    /// panel factorization kernel that only rewrites the `R` part
    /// (diagonal + strictly-upper) of the pivot tile does not conflict with
    /// update kernels that only read the Householder vectors stored in the
    /// strictly-lower part, so panel and update kernels overlap exactly as
    /// assumed by the critical-path formulas of Section IV (and dually for
    /// the LQ kernels).  Tau vectors use a separate high-bit key space.
    pub fn accesses(&self, q: usize) -> Vec<(DataKey, AccessMode)> {
        use AccessMode::{Read, Write};
        // Diagonal, strictly-upper and strictly-lower regions of tile (r, c).
        let dg = |r: usize, c: usize| -> DataKey { ((r * q + c) as DataKey) * 4 };
        let up = |r: usize, c: usize| -> DataKey { ((r * q + c) as DataKey) * 4 + 1 };
        let lo = |r: usize, c: usize| -> DataKey { ((r * q + c) as DataKey) * 4 + 2 };
        // All three regions of a tile with the same access mode.
        let all =
            |r: usize, c: usize, m: AccessMode| vec![(dg(r, c), m), (up(r, c), m), (lo(r, c), m)];
        match *self {
            TileOp::ZeroLower { i, j, whole } => {
                if whole {
                    all(i, j, Write)
                } else {
                    vec![(lo(i, j), Write)]
                }
            }
            TileOp::Geqrt { k, i } => {
                let mut a = all(i, k, Write);
                a.push((self.tau().0, Write));
                a
            }
            TileOp::Unmqr { k, i, j } => {
                let mut a = vec![(lo(i, k), Read), (self.tau().0, Read)];
                a.extend(all(i, j, Write));
                a
            }
            TileOp::Tsqrt { k, piv, i } => {
                let mut a = vec![(dg(piv, k), Write), (up(piv, k), Write)];
                a.extend(all(i, k, Write));
                a.push((self.tau().0, Write));
                a
            }
            TileOp::Tsmqr { k, piv, i, j } => {
                let mut a = all(i, k, Read);
                a.push((self.tau().0, Read));
                a.extend(all(piv, j, Write));
                a.extend(all(i, j, Write));
                a
            }
            TileOp::Ttqrt { k, piv, i } => vec![
                (dg(piv, k), Write),
                (up(piv, k), Write),
                (dg(i, k), Write),
                (up(i, k), Write),
                (self.tau().0, Write),
            ],
            TileOp::Ttmqr { k, piv, i, j } => {
                let mut a = vec![(dg(i, k), Read), (up(i, k), Read), (self.tau().0, Read)];
                a.extend(all(piv, j, Write));
                a.extend(all(i, j, Write));
                a
            }
            TileOp::Gelqt { k, j } => {
                let mut a = all(k, j, Write);
                a.push((self.tau().0, Write));
                a
            }
            TileOp::Unmlq { k, j, i } => {
                let mut a = vec![(up(k, j), Read), (self.tau().0, Read)];
                a.extend(all(i, j, Write));
                a
            }
            TileOp::Tslqt { k, piv, j } => {
                let mut a = vec![(dg(k, piv), Write), (lo(k, piv), Write)];
                a.extend(all(k, j, Write));
                a.push((self.tau().0, Write));
                a
            }
            TileOp::Tsmlq { k, piv, j, i } => {
                let mut a = all(k, j, Read);
                a.push((self.tau().0, Read));
                a.extend(all(i, piv, Write));
                a.extend(all(i, j, Write));
                a
            }
            TileOp::Ttlqt { k, piv, j } => vec![
                (dg(k, piv), Write),
                (lo(k, piv), Write),
                (dg(k, j), Write),
                (lo(k, j), Write),
                (self.tau().0, Write),
            ],
            TileOp::Ttmlq { k, piv, j, i } => {
                let mut a = vec![(dg(k, j), Read), (lo(k, j), Read), (self.tau().0, Read)];
                a.extend(all(i, piv, Write));
                a.extend(all(i, j, Write));
                a
            }
        }
    }

    /// Execute the operation on the tiled matrix with the blocked
    /// compact-WY kernels.  `op_id` is this operation's index in the op
    /// list `taus` was built for; `scratch` provides the kernel workspace.
    /// Apply kernels borrow the reflector tile in place (no clone) — the
    /// sequential driver has exclusive access to all tiles.
    pub fn execute(
        &self,
        op_id: usize,
        a: &mut TiledMatrix,
        taus: &TauTable,
        scratch: &mut KernelScratch,
    ) {
        let ws = &mut scratch.ws;
        match *self {
            TileOp::ZeroLower { i, j, whole } => zero_lower(a.tile_mut(i, j), whole),
            TileOp::Geqrt { k, i } => {
                let tf = qr::geqrt(a.tile_mut(i, k), ws);
                taus.put(op_id, tf);
            }
            TileOp::Unmqr { k, i, j } => {
                let (v, c) = a.tile_and_tile_mut((i, k), (i, j));
                qr::unmqr(v, taus.get(op_id), c, Trans::Transpose, ws);
            }
            TileOp::Tsqrt { k, piv, i } => {
                let (r1, a2) = a.two_tiles_mut((piv, k), (i, k));
                let tf = qr::tsqrt(r1, a2, ws);
                taus.put(op_id, tf);
            }
            TileOp::Tsmqr { k, piv, i, j } => {
                let (v2, a1, a2) = a.tile_and_two_tiles_mut((i, k), (piv, j), (i, j));
                qr::tsmqr(a1, a2, v2, taus.get(op_id), Trans::Transpose, ws);
            }
            TileOp::Ttqrt { k, piv, i } => {
                let (r1, r2) = a.two_tiles_mut((piv, k), (i, k));
                let tf = qr::ttqrt(r1, r2, ws);
                taus.put(op_id, tf);
            }
            TileOp::Ttmqr { k, piv, i, j } => {
                let (v2, a1, a2) = a.tile_and_two_tiles_mut((i, k), (piv, j), (i, j));
                qr::ttmqr(a1, a2, v2, taus.get(op_id), Trans::Transpose, ws);
            }
            TileOp::Gelqt { k, j } => {
                let tf = lq::gelqt(a.tile_mut(k, j), ws);
                taus.put(op_id, tf);
            }
            TileOp::Unmlq { k, j, i } => {
                let (v, c) = a.tile_and_tile_mut((k, j), (i, j));
                lq::unmlq(v, taus.get(op_id), c, Trans::Transpose, ws);
            }
            TileOp::Tslqt { k, piv, j } => {
                let (l1, a2) = a.two_tiles_mut((k, piv), (k, j));
                let tf = lq::tslqt(l1, a2, ws);
                taus.put(op_id, tf);
            }
            TileOp::Tsmlq { k, piv, j, i } => {
                let (v2, c1, c2) = a.tile_and_two_tiles_mut((k, j), (i, piv), (i, j));
                lq::tsmlq(c1, c2, v2, taus.get(op_id), Trans::Transpose, ws);
            }
            TileOp::Ttlqt { k, piv, j } => {
                let (l1, l2) = a.two_tiles_mut((k, piv), (k, j));
                let tf = lq::ttlqt(l1, l2, ws);
                taus.put(op_id, tf);
            }
            TileOp::Ttmlq { k, piv, j, i } => {
                let (v2, c1, c2) = a.tile_and_two_tiles_mut((k, j), (i, piv), (i, j));
                lq::ttmlq(c1, c2, v2, taus.get(op_id), Trans::Transpose, ws);
            }
        }
    }

    /// Execute the operation against tiles shared behind per-tile locks
    /// (parallel back-end).  `tiles[r * q + c]` guards tile `(r, c)`;
    /// `taus` is the pre-sized per-op tau table, `op_id` this operation's
    /// index in the op list the table was built for, and `scratch` the
    /// executing worker's private scratch.
    ///
    /// The per-tile `RwLock`s are *not* redundant with the DAG: the
    /// region-level dependency keys deliberately let two kernels touch
    /// disjoint regions of the same tile concurrently (a panel kernel
    /// rewriting the `R` part while an update kernel reads the Householder
    /// vectors below the diagonal), so the lock arbitrates access to the
    /// shared `Matrix` allocation in exactly those overlaps.
    ///
    /// Locking discipline (deadlock freedom): read-only operands are
    /// snapshot into the worker's scratch buffer under a read lock that is
    /// released immediately (no allocation in steady state — the buffer is
    /// reused), and the (at most two) write locks are then acquired in
    /// increasing tile-index order — which is guaranteed because the pivot
    /// row/column of an elimination always precedes the eliminated one.
    pub fn execute_shared(
        &self,
        op_id: usize,
        tiles: &[parking_lot::RwLock<Matrix>],
        q: usize,
        taus: &TauTable,
        scratch: &mut KernelScratch,
    ) {
        let idx = |r: usize, c: usize| r * q + c;
        let KernelScratch { ws, vbuf } = scratch;
        match *self {
            TileOp::ZeroLower { i, j, whole } => {
                zero_lower(&mut tiles[idx(i, j)].write(), whole);
            }
            TileOp::Geqrt { k, i } => {
                let tf = qr::geqrt(&mut tiles[idx(i, k)].write(), ws);
                taus.put(op_id, tf);
            }
            TileOp::Unmqr { k, i, j } => {
                vbuf.copy_from(&tiles[idx(i, k)].read());
                let tf = taus.get(op_id);
                qr::unmqr(
                    vbuf,
                    tf,
                    &mut tiles[idx(i, j)].write(),
                    Trans::Transpose,
                    ws,
                );
            }
            TileOp::Tsqrt { k, piv, i } => {
                debug_assert!(idx(piv, k) < idx(i, k));
                let mut r1 = tiles[idx(piv, k)].write();
                let mut a2 = tiles[idx(i, k)].write();
                let tf = qr::tsqrt(&mut r1, &mut a2, ws);
                taus.put(op_id, tf);
            }
            TileOp::Tsmqr { k, piv, i, j } => {
                vbuf.copy_from(&tiles[idx(i, k)].read());
                let tf = taus.get(op_id);
                debug_assert!(idx(piv, j) < idx(i, j));
                let mut a1 = tiles[idx(piv, j)].write();
                let mut a2 = tiles[idx(i, j)].write();
                qr::tsmqr(&mut a1, &mut a2, vbuf, tf, Trans::Transpose, ws);
            }
            TileOp::Ttqrt { k, piv, i } => {
                debug_assert!(idx(piv, k) < idx(i, k));
                let mut r1 = tiles[idx(piv, k)].write();
                let mut r2 = tiles[idx(i, k)].write();
                let tf = qr::ttqrt(&mut r1, &mut r2, ws);
                taus.put(op_id, tf);
            }
            TileOp::Ttmqr { k, piv, i, j } => {
                vbuf.copy_from(&tiles[idx(i, k)].read());
                let tf = taus.get(op_id);
                debug_assert!(idx(piv, j) < idx(i, j));
                let mut a1 = tiles[idx(piv, j)].write();
                let mut a2 = tiles[idx(i, j)].write();
                qr::ttmqr(&mut a1, &mut a2, vbuf, tf, Trans::Transpose, ws);
            }
            TileOp::Gelqt { k, j } => {
                let tf = lq::gelqt(&mut tiles[idx(k, j)].write(), ws);
                taus.put(op_id, tf);
            }
            TileOp::Unmlq { k, j, i } => {
                vbuf.copy_from(&tiles[idx(k, j)].read());
                let tf = taus.get(op_id);
                lq::unmlq(
                    vbuf,
                    tf,
                    &mut tiles[idx(i, j)].write(),
                    Trans::Transpose,
                    ws,
                );
            }
            TileOp::Tslqt { k, piv, j } => {
                debug_assert!(idx(k, piv) < idx(k, j));
                let mut l1 = tiles[idx(k, piv)].write();
                let mut a2 = tiles[idx(k, j)].write();
                let tf = lq::tslqt(&mut l1, &mut a2, ws);
                taus.put(op_id, tf);
            }
            TileOp::Tsmlq { k, piv, j, i } => {
                vbuf.copy_from(&tiles[idx(k, j)].read());
                let tf = taus.get(op_id);
                debug_assert!(idx(i, piv) < idx(i, j));
                let mut c1 = tiles[idx(i, piv)].write();
                let mut c2 = tiles[idx(i, j)].write();
                lq::tsmlq(&mut c1, &mut c2, vbuf, tf, Trans::Transpose, ws);
            }
            TileOp::Ttlqt { k, piv, j } => {
                debug_assert!(idx(k, piv) < idx(k, j));
                let mut l1 = tiles[idx(k, piv)].write();
                let mut l2 = tiles[idx(k, j)].write();
                let tf = lq::ttlqt(&mut l1, &mut l2, ws);
                taus.put(op_id, tf);
            }
            TileOp::Ttmlq { k, piv, j, i } => {
                vbuf.copy_from(&tiles[idx(k, j)].read());
                let tf = taus.get(op_id);
                debug_assert!(idx(i, piv) < idx(i, j));
                let mut c1 = tiles[idx(i, piv)].write();
                let mut c2 = tiles[idx(i, j)].write();
                lq::ttmlq(&mut c1, &mut c2, vbuf, tf, Trans::Transpose, ws);
            }
        }
    }
}

/// Zero a whole tile or its strictly-lower part in place (LAPACK `xLASET`),
/// one contiguous column slice at a time — no reallocation.
fn zero_lower(t: &mut Matrix, whole: bool) {
    if whole {
        t.data_mut().fill(0.0);
    } else {
        let rows = t.rows();
        for c in 0..t.cols() {
            if c + 1 < rows {
                t.col_mut(c)[c + 1..].fill(0.0);
            }
        }
    }
}

/// Total flop count of an operation list for tile size `nb`.
pub fn ops_flops(ops: &[TileOp], nb: usize) -> f64 {
    ops.iter().map(|o| o.kernel().flops(nb)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bidiag_runtime::AccessMode;

    #[test]
    fn weights_follow_table_one() {
        assert_eq!(TileOp::Geqrt { k: 0, i: 0 }.weight(), 4.0);
        assert_eq!(
            TileOp::Tsmqr {
                k: 0,
                piv: 0,
                i: 1,
                j: 1
            }
            .weight(),
            12.0
        );
        assert_eq!(TileOp::Ttlqt { k: 0, piv: 1, j: 2 }.weight(), 2.0);
    }

    #[test]
    fn accesses_distinguish_reads_and_writes() {
        let op = TileOp::Tsmqr {
            k: 0,
            piv: 0,
            i: 2,
            j: 3,
        };
        let acc = op.accesses(5);
        // Reads the three regions of tile (2,0) and the tau; writes the three
        // regions of tiles (0,3) and (2,3).
        let reads: Vec<_> = acc.iter().filter(|(_, m)| *m == AccessMode::Read).collect();
        let writes: Vec<_> = acc
            .iter()
            .filter(|(_, m)| *m == AccessMode::Write)
            .collect();
        assert_eq!(reads.len(), 4);
        assert_eq!(writes.len(), 6);
    }

    #[test]
    fn panel_and_update_kernels_do_not_conflict_on_region_keys() {
        // UNMQR reads only the strictly-lower region of the pivot tile while
        // TSQRT writes only its diagonal + strictly-upper regions: the two
        // tasks must be independent so they can overlap (Section IV formulas).
        let unmqr = TileOp::Unmqr { k: 0, i: 0, j: 2 };
        let tsqrt = TileOp::Tsqrt { k: 0, piv: 0, i: 1 };
        let q = 4;
        let unmqr_reads: Vec<u64> = unmqr
            .accesses(q)
            .iter()
            .filter(|(k, m)| *m == AccessMode::Read && *k < (1 << 62))
            .map(|(k, _)| *k)
            .collect();
        let tsqrt_writes: Vec<u64> = tsqrt
            .accesses(q)
            .iter()
            .filter(|(k, m)| *m == AccessMode::Write && *k < (1 << 62))
            .map(|(k, _)| *k)
            .collect();
        for r in &unmqr_reads {
            assert!(!tsqrt_writes.contains(r), "false conflict on key {r}");
        }
        // Dual check for the LQ kernels.
        let unmlq = TileOp::Unmlq { k: 0, j: 1, i: 2 };
        let tslqt = TileOp::Tslqt { k: 0, piv: 1, j: 2 };
        let unmlq_reads: Vec<u64> = unmlq
            .accesses(q)
            .iter()
            .filter(|(k, m)| *m == AccessMode::Read && *k < (1 << 62))
            .map(|(k, _)| *k)
            .collect();
        let tslqt_writes: Vec<u64> = tslqt
            .accesses(q)
            .iter()
            .filter(|(k, m)| *m == AccessMode::Write && *k < (1 << 62))
            .map(|(k, _)| *k)
            .collect();
        for r in &unmlq_reads {
            assert!(!tslqt_writes.contains(r), "false LQ conflict on key {r}");
        }
    }

    #[test]
    fn tau_keys_are_unique_per_factorization() {
        let a = TileOp::Geqrt { k: 1, i: 3 }.tau();
        let b = TileOp::Ttqrt { k: 1, piv: 0, i: 3 }.tau();
        let c = TileOp::Gelqt { k: 1, j: 3 }.tau();
        let d = TileOp::Geqrt { k: 2, i: 3 }.tau();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        // Updates share the key of their producer.
        assert_eq!(TileOp::Unmqr { k: 1, i: 3, j: 4 }.tau(), a);
        assert_eq!(
            TileOp::Ttmqr {
                k: 1,
                piv: 0,
                i: 3,
                j: 4
            }
            .tau(),
            b
        );
    }

    #[test]
    fn owner_tile_is_the_second_operand() {
        assert_eq!(
            TileOp::Tsmqr {
                k: 0,
                piv: 0,
                i: 2,
                j: 3
            }
            .output_tile(),
            (2, 3)
        );
        assert_eq!(
            TileOp::Tsmlq {
                k: 0,
                piv: 1,
                j: 2,
                i: 3
            }
            .output_tile(),
            (3, 2)
        );
    }
}
