//! # bidiag-core
//!
//! The primary contribution of the reproduced paper: parallel tiled
//! bidiagonalization (BIDIAG) and R-bidiagonalization (R-BIDIAG) with
//! configurable reduction trees, their critical-path analysis, and the full
//! singular-value pipeline.
//!
//! * [`ops`] — the tile-operation IR shared by all back-ends,
//! * [`drivers`] — lowering of BIDIAG / R-BIDIAG / tiled QR to operation
//!   lists driven by the reduction trees of `bidiag-trees`,
//! * [`exec`] — sequential and multi-threaded execution plus task-graph
//!   construction,
//! * [`cp`] — critical-path formulas (Section IV) and DAG measurements,
//! * [`flops`] — operation counts and the Chan/Elemental crossover rules,
//! * [`pipeline`] — user-facing `GE2BND` and `GE2VAL` entry points,
//! * [`batch`] — the persistent batched runtime service ([`SvdSession`]):
//!   one long-lived work-stealing pool serving a stream of independent
//!   problems with per-worker scratch arenas, a small-size crossover,
//!   bounded admission and cooperative cancellation,
//! * [`error`] — the [`SvdError`] taxonomy every fallible entry point
//!   ([`try_ge2val`], session submission/waiting, the `try_` op
//!   generators) reports through.
//!
//! ## Quick start
//!
//! ```
//! use bidiag_core::pipeline::{ge2val, Ge2Options};
//! use bidiag_matrix::gen::{latms, SpectrumKind};
//!
//! let (a, sigma) = latms(60, 40, &SpectrumKind::Geometric { cond: 1.0e3 }, 42);
//! let result = ge2val(&a, &Ge2Options::new(8));
//! assert!((result.singular_values[0] - sigma[0]).abs() < 1.0e-8);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cp;
pub mod drivers;
pub mod error;
pub mod exec;
pub mod flops;
pub mod ops;
pub mod pipeline;

pub use batch::{ge2val_batch, AdmissionPolicy, SessionConfig, SessionScratch, SvdJob, SvdSession};
pub use drivers::{
    bidiag_ops, ge2bnd_ops, qr_factorization_ops, rbidiag_ops, try_bidiag_ops, try_rbidiag_ops,
    Algorithm, GenConfig,
};
pub use error::{validate_finite, SvdError};
pub use exec::{
    bd2val_on_runtime, bd2val_task_count, bnd2bd_on_runtime, build_graph, execute_parallel,
    execute_sequential,
};
pub use ops::{ops_flops, KernelScratch, TauTable, TileOp};
pub use pipeline::{
    ge2bnd, ge2val, try_ge2bnd, try_ge2val, AlgorithmChoice, Ge2BndResult, Ge2Options,
    Ge2ValResult, DIRECT_CROSSOVER,
};
// The BD2VAL solver options the pipeline threads through, re-exported so
// downstream callers need not depend on `bidiag-svd` directly.
pub use bidiag_svd::{Bd2ValOptions, SvdSolver};
