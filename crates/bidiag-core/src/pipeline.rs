//! High-level user-facing pipelines.
//!
//! * [`ge2bnd`] — full matrix to band bidiagonal form (the paper's core
//!   kernel), returning the factored tiled matrix and the extracted band,
//! * [`ge2val`] — full matrix to singular values, i.e. the three-stage
//!   pipeline `GE2BND -> BND2BD -> BD2VAL` used in every GE2VAL experiment,
//! * [`Ge2Options`] — tile size, reduction tree, algorithm selection and
//!   threading knobs.
//!
//! With `threads > 1` every stage runs on the work-stealing task runtime of
//! `bidiag-runtime`: GE2BND as the tile-kernel DAG, BND2BD as one task per
//! pipelined bulge-chasing *wavefront* (row-block dependencies let
//! memory-disjoint wavefronts overlap — the paper delegates this stage to
//! PLASMA's multi-threaded bulge-chasing kernel),
//! and BD2VAL through the `bidiag-svd` solver subsystem — the dqds fast
//! path as a single task, or Sturm spectrum slicing as one task per
//! multi-value interval ([`Bd2ValOptions`] selects).  The thread count
//! never changes the numerical result — the task graphs encode every data
//! conflict of the sequential order and the spectrum slicing is
//! thread-count independent, so any schedule executes the same arithmetic
//! (see the `bidiag-runtime` crate docs).

use crate::drivers::{ge2bnd_ops, Algorithm, GenConfig};
use crate::error::{validate_finite, SvdError};
use crate::exec::{bd2val_on_runtime, bnd2bd_on_runtime, execute_parallel, execute_sequential};
use crate::flops;
use crate::ops::ops_flops;
use bidiag_kernels::band::BandMatrix;
use bidiag_kernels::gebd2::gebd2;
use bidiag_matrix::{Matrix, TiledMatrix};
use bidiag_obs as obs;
use bidiag_svd::{singular_values_with, Bd2ValOptions, SvdSolver};
use bidiag_trees::NamedTree;

/// Default small-size crossover of the *batched* drivers (`SvdSession`,
/// `ge2val_batch`): problems whose larger dimension is at most this run the
/// scalar `gebd2` direct path instead of the tiled three-stage pipeline.
///
/// Below this size the blocked machinery (tiling, T-factors, band
/// extraction, bulge chasing) costs more than it saves.  The sweep that
/// picked the value (`crossover_sweep_direct_vs_blocked`, run with
/// `--ignored --nocapture`) measures, single-threaded on the reference
/// container: direct wins 2.5x at n = 32, 2.1x at n = 64, 1.8x at n = 96,
/// and breaks even near n = 128.  64 is the conservative choice because the
/// direct path is strictly sequential while the blocked DAG can occupy
/// several workers from n ~ 2nb up.  Plain [`ge2val`] keeps the crossover
/// *disabled* by default (`direct_crossover = 0`) so existing callers
/// exercise the blocked pipeline at every size; opt in with
/// [`Ge2Options::with_direct_crossover`].
pub const DIRECT_CROSSOVER: usize = 64;

/// How the GE2BND algorithm is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgorithmChoice {
    /// Always BIDIAG.
    Bidiag,
    /// Always R-BIDIAG.
    RBidiag,
    /// Choose by Chan's flop rule (`m >= 5n/3` selects R-BIDIAG).
    Auto,
}

/// Options of the GE2BND / GE2VAL pipelines.
#[derive(Clone, Copy, Debug)]
pub struct Ge2Options {
    /// Tile size `nb`.
    pub nb: usize,
    /// Reduction tree.
    pub tree: NamedTree,
    /// BIDIAG vs R-BIDIAG selection.
    pub algorithm: AlgorithmChoice,
    /// Number of worker threads (1 runs the reference sequential path).
    pub threads: usize,
    /// BD2VAL stage options: singular-value solver choice and tolerances
    /// (defaults to the dqds fast path).
    pub bd2val: Bd2ValOptions,
    /// Small-size crossover: when `max(m, n) <= direct_crossover`,
    /// [`ge2val`] skips the tiled pipeline entirely and runs the scalar
    /// `gebd2` + BD2VAL direct path (`0` disables, the default here; the
    /// batched session enables [`DIRECT_CROSSOVER`]).
    pub direct_crossover: usize,
}

impl Ge2Options {
    /// Reasonable defaults for small/medium problems: greedy tree, automatic
    /// algorithm selection, sequential execution, `nb = 32`.
    pub fn new(nb: usize) -> Self {
        Self {
            nb,
            tree: NamedTree::Greedy,
            algorithm: AlgorithmChoice::Auto,
            threads: 1,
            bd2val: Bd2ValOptions::default(),
            direct_crossover: 0,
        }
    }

    /// Builder-style: set the reduction tree.
    pub fn with_tree(mut self, tree: NamedTree) -> Self {
        self.tree = tree;
        self
    }

    /// Builder-style: force the algorithm.
    pub fn with_algorithm(mut self, algorithm: AlgorithmChoice) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Builder-style: set the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style: set the full BD2VAL option block.
    pub fn with_bd2val(mut self, bd2val: Bd2ValOptions) -> Self {
        self.bd2val = bd2val;
        self
    }

    /// Builder-style: select the BD2VAL singular-value solver.
    pub fn with_svd_solver(mut self, solver: SvdSolver) -> Self {
        self.bd2val.solver = solver;
        self
    }

    /// Builder-style: set the small-size direct-path crossover (`0`
    /// disables; [`DIRECT_CROSSOVER`] is the bench-picked default of the
    /// batched session).
    pub fn with_direct_crossover(mut self, direct_crossover: usize) -> Self {
        self.direct_crossover = direct_crossover;
        self
    }

    /// True when a problem of the given dimensions takes the scalar direct
    /// path under these options.
    pub fn takes_direct_path(&self, m: usize, n: usize) -> bool {
        self.direct_crossover > 0 && m.max(n) <= self.direct_crossover
    }

    pub(crate) fn resolve_algorithm(&self, m: usize, n: usize) -> Algorithm {
        match self.algorithm {
            AlgorithmChoice::Bidiag => Algorithm::Bidiag,
            AlgorithmChoice::RBidiag => Algorithm::RBidiag,
            AlgorithmChoice::Auto => flops::select_by_flops(m, n),
        }
    }
}

/// Output of [`ge2bnd`].
#[derive(Clone, Debug)]
pub struct Ge2BndResult {
    /// The factored tiled matrix (Householder vectors outside the band).
    pub factored: TiledMatrix,
    /// The band bidiagonal factor (upper bandwidth `nb`).
    pub band: BandMatrix,
    /// The algorithm that was actually run.
    pub algorithm: Algorithm,
    /// Number of tile kernels executed.
    pub num_tasks: usize,
    /// Flops executed by the tile kernels (cost-model count).
    pub kernel_flops: f64,
}

/// Reduce a dense `m x n` matrix (`m >= n`) to band bidiagonal form using
/// the tiled BIDIAG or R-BIDIAG algorithm.
pub fn ge2bnd(a: &Matrix, opts: &Ge2Options) -> Ge2BndResult {
    assert!(
        a.rows() >= a.cols(),
        "ge2bnd expects m >= n; transpose the input otherwise"
    );
    let algorithm = opts.resolve_algorithm(a.rows(), a.cols());
    if obs::enabled() {
        // Stamp the trace/snapshot header with the kernel backend actually
        // dispatched for this run (satellite of the SIMD layer: the choice
        // was previously invisible outside benches).
        obs::registry().set_meta("simd_backend", bidiag_matrix::simd::backend().name());
    }
    let mut tiled = TiledMatrix::from_dense(a, opts.nb);
    let cfg = GenConfig::shared(opts.tree);
    let ops = ge2bnd_ops(tiled.tile_rows(), tiled.tile_cols(), algorithm, &cfg);
    if opts.threads > 1 {
        execute_parallel(&ops, &mut tiled, opts.threads);
    } else {
        execute_sequential(&ops, &mut tiled);
    }
    let bw = opts.nb.min(a.cols().saturating_sub(1)).max(1);
    let band = BandMatrix::from_dense(&tiled.extract_upper_band(bw), bw);
    Ge2BndResult {
        band,
        algorithm,
        num_tasks: ops.len(),
        kernel_flops: ops_flops(&ops, opts.nb),
        factored: tiled,
    }
}

/// Output of [`ge2val`].
#[derive(Clone, Debug)]
pub struct Ge2ValResult {
    /// Singular values in non-increasing order.
    pub singular_values: Vec<f64>,
    /// The GE2BND stage output — `None` when the small-size crossover
    /// took the scalar direct path (no tiling, no band stage ran).
    pub ge2bnd: Option<Ge2BndResult>,
}

/// Compute all singular values of a dense matrix through the three-stage
/// pipeline `GE2BND -> BND2BD -> BD2VAL`.
///
/// Wide matrices (`m < n`) are handled by transposing the input (the
/// singular values are unchanged).  With `threads > 1` all three stages
/// are scheduled on the work-stealing task runtime; the result is
/// identical to the sequential path for every thread count.
///
/// # Examples
///
/// ```
/// use bidiag_core::pipeline::{ge2val, Ge2Options};
/// use bidiag_matrix::gen::{latms, SpectrumKind};
///
/// // A 24 x 16 matrix with prescribed singular values 16, 15, ..., 1.
/// let sigma: Vec<f64> = (1..=16).map(f64::from).rev().collect();
/// let (a, _) = latms(24, 16, &SpectrumKind::Explicit(sigma.clone()), 7);
///
/// // Multi-threaded run: GE2BND, BND2BD and BD2VAL all execute on the
/// // work-stealing runtime, and the spectrum comes back bit-identical to
/// // the sequential result.
/// let par = ge2val(&a, &Ge2Options::new(4).with_threads(4));
/// let seq = ge2val(&a, &Ge2Options::new(4).with_threads(1));
/// assert_eq!(par.singular_values, seq.singular_values);
/// for (s, expect) in par.singular_values.iter().zip(&sigma) {
///     assert!((s - expect).abs() < 1e-10);
/// }
/// ```
pub fn ge2val(a: &Matrix, opts: &Ge2Options) -> Ge2ValResult {
    let work;
    let a_ref = if a.rows() >= a.cols() {
        a
    } else {
        work = a.transpose();
        &work
    };
    if opts.takes_direct_path(a.rows(), a.cols()) {
        // Small-size crossover: scalar Golub–Kahan bidiagonalization
        // straight to BD2VAL — no tiling, no T-factors, no band stage.
        let mut w = a_ref.clone();
        let bidiag = gebd2(&mut w);
        let mut sv = singular_values_with(&bidiag.diag, &bidiag.superdiag, &opts.bd2val);
        // `total_cmp` orders exactly like `partial_cmp` on the solver's
        // non-negative output and cannot panic if poisoned NaNs slip
        // through (they sort last and stay visible).
        sv.sort_by(|a, b| b.total_cmp(a));
        return Ge2ValResult {
            singular_values: sv,
            ge2bnd: None,
        };
    }
    // Stage-boundary spans: one run id for the whole pipeline, recorded on
    // the calling thread so the trace shows the coarse GE2BND/BND2BD/BD2VAL
    // phases above the per-task lanes.
    let run_id = if obs::enabled() {
        obs::next_submission_id()
    } else {
        0
    };
    let stage_span = |task: u32, kind: u32, start_ns: u64| {
        if run_id != 0 {
            obs::record_span(obs::Span {
                submission: run_id,
                task,
                kind,
                worker: obs::WORKER_CALLER,
                start_ns,
                end_ns: obs::now_ns(),
            });
        }
    };
    let t0 = if run_id != 0 { obs::now_ns() } else { 0 };
    let stage1 = ge2bnd(a_ref, opts);
    stage_span(0, obs::KIND_STAGE_GE2BND, t0);
    // BND2BD: pipelined bulge chasing on the band (one runtime task per
    // wavefront when threaded; same wavefront schedule either way).
    let mut band = stage1.band.clone();
    let t1 = if run_id != 0 { obs::now_ns() } else { 0 };
    let bidiag = if opts.threads > 1 {
        bnd2bd_on_runtime(&mut band, opts.threads)
    } else {
        band.reduce_to_bidiagonal()
    };
    stage_span(1, obs::KIND_STAGE_BND2BD, t1);
    // BD2VAL: the solver picked in the options — dqds fast path by
    // default, or Sturm spectrum slicing (one task per interval when
    // threaded), or the per-value bisection oracle.
    let t2 = if run_id != 0 { obs::now_ns() } else { 0 };
    let mut sv = if opts.threads > 1 {
        bd2val_on_runtime(&bidiag.diag, &bidiag.superdiag, opts.threads, &opts.bd2val)
    } else {
        singular_values_with(&bidiag.diag, &bidiag.superdiag, &opts.bd2val)
    };
    stage_span(2, obs::KIND_STAGE_BD2VAL, t2);
    // See the direct path above: total order, no NaN panic path.
    sv.sort_by(|a, b| b.total_cmp(a));
    Ge2ValResult {
        singular_values: sv,
        ge2bnd: Some(stage1),
    }
}

/// Fallible twin of [`ge2bnd`]: rejects wide inputs with
/// [`SvdError::DimensionMismatch`] and non-finite entries with
/// [`SvdError::NonFiniteInput`] instead of asserting or producing NaN
/// garbage.  On `Ok`, the result is exactly what [`ge2bnd`] returns.
pub fn try_ge2bnd(a: &Matrix, opts: &Ge2Options) -> Result<Ge2BndResult, SvdError> {
    if a.rows() < a.cols() {
        return Err(SvdError::DimensionMismatch {
            context: "ge2bnd requires m >= n; transpose the input",
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    validate_finite(a)?;
    Ok(ge2bnd(a, opts))
}

/// Fallible twin of [`ge2val`]: rejects non-finite entries with
/// [`SvdError::NonFiniteInput`] *before* any factorization work runs, and
/// reports a solver that still produced non-finite values (a bug or
/// injected fault, never reachable from validated input) as
/// [`SvdError::SolverFailure`].  On `Ok`, the result is **bitwise** what
/// [`ge2val`] returns — validation reads the input but never changes the
/// arithmetic.
pub fn try_ge2val(a: &Matrix, opts: &Ge2Options) -> Result<Ge2ValResult, SvdError> {
    validate_finite(a)?;
    let result = ge2val(a, opts);
    if let Some(&bad) = result.singular_values.iter().find(|v| !v.is_finite()) {
        return Err(SvdError::SolverFailure(format!(
            "solver produced non-finite singular value {bad} from finite input"
        )));
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bidiag_matrix::checks::singular_values_match;
    use bidiag_matrix::gen::{latms, SpectrumKind};

    fn spectrum(n: usize) -> SpectrumKind {
        SpectrumKind::Explicit((1..=n).map(|i| i as f64).rev().collect())
    }

    #[test]
    fn ge2bnd_produces_a_band_with_the_right_bandwidth() {
        let (a, _) = latms(24, 16, &spectrum(16), 3);
        let r = ge2bnd(
            &a,
            &Ge2Options::new(4).with_algorithm(AlgorithmChoice::Bidiag),
        );
        assert_eq!(r.algorithm, Algorithm::Bidiag);
        let dense_band = r.band.to_dense();
        assert_eq!(dense_band.rows(), 16);
        assert!(dense_band.upper_bandwidth(1e-10) <= 4);
        // Orthogonal transformations preserve the Frobenius norm of the band.
        assert!((r.band.norm_fro() - a.norm_fro()).abs() < 1e-9 * a.norm_fro());
    }

    #[test]
    fn ge2val_recovers_prescribed_singular_values_bidiag() {
        let (a, sigma) = latms(20, 12, &SpectrumKind::Geometric { cond: 1e4 }, 11);
        let r = ge2val(
            &a,
            &Ge2Options::new(4).with_algorithm(AlgorithmChoice::Bidiag),
        );
        assert!(singular_values_match(&r.singular_values, &sigma, 1e-10));
    }

    #[test]
    fn ge2val_recovers_prescribed_singular_values_rbidiag() {
        let (a, sigma) = latms(40, 8, &spectrum(8), 13);
        let r = ge2val(
            &a,
            &Ge2Options::new(4).with_algorithm(AlgorithmChoice::RBidiag),
        );
        let stage1 = r.ge2bnd.as_ref().expect("blocked path ran");
        assert_eq!(stage1.algorithm, Algorithm::RBidiag);
        assert!(singular_values_match(&r.singular_values, &sigma, 1e-10));
    }

    #[test]
    fn auto_choice_follows_chan_rule() {
        let (tall, _) = latms(40, 8, &spectrum(8), 1);
        let (square, _) = latms(12, 12, &spectrum(12), 2);
        let r_tall = ge2bnd(&tall, &Ge2Options::new(4));
        let r_square = ge2bnd(&square, &Ge2Options::new(4));
        assert_eq!(r_tall.algorithm, Algorithm::RBidiag);
        assert_eq!(r_square.algorithm, Algorithm::Bidiag);
    }

    #[test]
    fn wide_matrices_are_transposed() {
        let (a, sigma) = latms(6, 18, &spectrum(6), 21);
        let r = ge2val(&a, &Ge2Options::new(4));
        assert!(singular_values_match(&r.singular_values, &sigma, 1e-10));
    }

    #[test]
    fn parallel_pipeline_matches_sequential() {
        let (a, sigma) = latms(30, 18, &SpectrumKind::Geometric { cond: 100.0 }, 5);
        let seq = ge2val(
            &a,
            &Ge2Options::new(5)
                .with_threads(1)
                .with_tree(NamedTree::Greedy),
        );
        let par = ge2val(
            &a,
            &Ge2Options::new(5)
                .with_threads(4)
                .with_tree(NamedTree::Greedy),
        );
        assert!(singular_values_match(
            &seq.singular_values,
            &par.singular_values,
            1e-13
        ));
        assert!(singular_values_match(&seq.singular_values, &sigma, 1e-10));
    }

    #[test]
    fn all_trees_give_the_same_singular_values() {
        let (a, sigma) = latms(21, 14, &SpectrumKind::Arithmetic { cond: 50.0 }, 8);
        for tree in [
            NamedTree::FlatTs,
            NamedTree::FlatTt,
            NamedTree::Greedy,
            NamedTree::Auto {
                gamma: 2.0,
                ncores: 4,
            },
        ] {
            let r = ge2val(
                &a,
                &Ge2Options::new(4)
                    .with_tree(tree)
                    .with_algorithm(AlgorithmChoice::Bidiag),
            );
            assert!(
                singular_values_match(&r.singular_values, &sigma, 1e-10),
                "tree {tree:?} changed the singular values"
            );
        }
    }

    #[test]
    fn every_svd_solver_recovers_the_spectrum_at_every_thread_count() {
        let (a, sigma) = latms(26, 17, &SpectrumKind::Geometric { cond: 1e6 }, 19);
        for solver in [
            SvdSolver::Dqds,
            SvdSolver::SlicedBisection,
            SvdSolver::Bisection,
        ] {
            let opts = |t: usize| Ge2Options::new(4).with_svd_solver(solver).with_threads(t);
            let seq = ge2val(&a, &opts(1));
            let par = ge2val(&a, &opts(4));
            // Same solver => bitwise identical values at every thread count.
            assert_eq!(
                seq.singular_values, par.singular_values,
                "{solver:?} diverged across thread counts"
            );
            assert!(
                singular_values_match(&seq.singular_values, &sigma, 1e-10),
                "{solver:?} missed the spectrum"
            );
        }
    }

    #[test]
    fn direct_crossover_path_matches_the_blocked_pipeline() {
        // Sizes straddling the default crossover; the direct path must
        // reproduce the blocked spectra to full pipeline accuracy.
        for (m, n, seed) in [
            (8usize, 8usize, 1u64),
            (31, 20, 2),
            (32, 32, 3),
            (33, 33, 4),
            (64, 40, 5),
            (20, 64, 6), // wide: the direct path transposes too
        ] {
            let (a, _) = latms(m, n, &SpectrumKind::Geometric { cond: 1e4 }, seed);
            let blocked = ge2val(&a, &Ge2Options::new(16));
            let direct = ge2val(
                &a,
                &Ge2Options::new(16).with_direct_crossover(DIRECT_CROSSOVER),
            );
            assert!(blocked.ge2bnd.is_some(), "{m}x{n}: blocked path skipped");
            assert!(direct.ge2bnd.is_none(), "{m}x{n}: direct path skipped");
            assert!(
                singular_values_match(&blocked.singular_values, &direct.singular_values, 1e-13),
                "{m}x{n}: direct path diverged from the blocked pipeline"
            );
        }
    }

    #[test]
    fn crossover_disabled_and_above_threshold_stay_blocked() {
        let (a, _) = latms(97, 60, &spectrum(60), 9);
        // 97 > 64: even with the crossover armed, the blocked path runs.
        let r = ge2val(
            &a,
            &Ge2Options::new(16).with_direct_crossover(DIRECT_CROSSOVER),
        );
        assert!(r.ge2bnd.is_some());
        // Default options never take the direct path, at any size.
        let opts = Ge2Options::new(4);
        assert!(!opts.takes_direct_path(8, 8));
        assert!(Ge2Options::new(4)
            .with_direct_crossover(64)
            .takes_direct_path(64, 64));
    }

    /// The sweep that picked [`DIRECT_CROSSOVER`].  Ignored by default
    /// (it is a timing run, not a correctness test); re-run it with
    /// `cargo test -p bidiag-core --release crossover_sweep -- --ignored
    /// --nocapture` when the kernels change and update the constant's doc
    /// numbers if the break-even moves.
    #[test]
    #[ignore = "timing sweep; run manually with --release --nocapture"]
    fn crossover_sweep_direct_vs_blocked() {
        for n in [16usize, 32, 48, 64, 96, 128] {
            let a = bidiag_matrix::gen::random_gaussian(n, n, 900);
            let blocked_opts = Ge2Options::new(64).with_threads(1);
            let direct_opts = blocked_opts.with_direct_crossover(n);
            let time = |opts: &Ge2Options| {
                let _ = ge2val(&a, opts); // warm
                let mut best = f64::INFINITY;
                for _ in 0..5 {
                    let t0 = std::time::Instant::now();
                    let r = ge2val(&a, opts);
                    best = best.min(t0.elapsed().as_secs_f64());
                    assert_eq!(r.singular_values.len(), n);
                }
                best
            };
            let blocked = time(&blocked_opts);
            let direct = time(&direct_opts);
            println!(
                "n={n}\tblocked {:.1} us\tdirect {:.1} us\tdirect speedup {:.2}x",
                blocked * 1.0e6,
                direct * 1.0e6,
                blocked / direct
            );
        }
    }

    #[test]
    fn non_multiple_tile_sizes_are_supported() {
        // 17 x 11 with nb = 4 exercises ragged tiles everywhere.
        let (a, sigma) = latms(17, 11, &spectrum(11), 31);
        for alg in [AlgorithmChoice::Bidiag, AlgorithmChoice::RBidiag] {
            let r = ge2val(&a, &Ge2Options::new(4).with_algorithm(alg));
            assert!(
                singular_values_match(&r.singular_values, &sigma, 1e-10),
                "{alg:?}"
            );
        }
    }
}
