//! Execution back-ends for tile-operation lists.
//!
//! * [`execute_sequential`] — run the list in order (reference numerics),
//! * [`execute_parallel`] — run it on the shared-memory task runtime of
//!   `bidiag-runtime` (dependencies inferred from data accesses),
//! * [`build_graph`] — lower the list to a [`TaskGraph`] for critical-path
//!   measurements and machine simulation.

use crate::ops::{TauStore, TileOp};
use bidiag_matrix::{BlockCyclic, Matrix, TiledMatrix};
use bidiag_runtime::{execute_parallel as runtime_execute, TaskBody, TaskGraph};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Execute the operations in order on the tiled matrix.
pub fn execute_sequential(ops: &[TileOp], a: &mut TiledMatrix) {
    let mut taus = TauStore::new();
    for op in ops {
        op.execute(a, &mut taus);
    }
}

/// Execute the operations in parallel on `threads` worker threads.
///
/// The numerical result is bitwise identical to [`execute_sequential`]
/// because every kernel is executed with exactly the same operands; only the
/// interleaving of independent kernels differs.
pub fn execute_parallel(ops: &[TileOp], a: &mut TiledMatrix, threads: usize) {
    if ops.is_empty() {
        return;
    }
    let p = a.tile_rows();
    let q = a.tile_cols();

    // Move the tiles into shared per-tile locks.
    let mut shared: Vec<RwLock<Matrix>> = Vec::with_capacity(p * q);
    for i in 0..p {
        for j in 0..q {
            shared.push(RwLock::new(a.tile(i, j).clone()));
        }
    }
    let shared = Arc::new(shared);
    let taus: Arc<RwLock<HashMap<u64, Vec<f64>>>> = Arc::new(RwLock::new(HashMap::new()));

    let graph = build_graph(ops, q, &BlockCyclic::single_node());
    let bodies: Vec<TaskBody> = ops
        .iter()
        .map(|&op| {
            let shared = Arc::clone(&shared);
            let taus = Arc::clone(&taus);
            Box::new(move || {
                // The shared vector is indexed row-major: (i, j) -> i * q + j.
                op.execute_shared(&shared, q, &taus);
            }) as TaskBody
        })
        .collect();
    runtime_execute(&graph, bodies, threads);

    // Copy the tiles back.
    let shared = Arc::try_unwrap(shared).expect("all workers joined");
    let mut it = shared.into_iter();
    for i in 0..p {
        for j in 0..q {
            *a.tile_mut(i, j) = it.next().unwrap().into_inner();
        }
    }
}

/// Build the data-flow task graph of an operation list for a `p x q` tile
/// grid distributed according to `dist` (owner-computes placement on the
/// operation's output tile).
pub fn build_graph(ops: &[TileOp], q: usize, dist: &BlockCyclic) -> TaskGraph {
    let mut g = TaskGraph::new();
    for op in ops {
        let (oi, oj) = op.output_tile();
        let owner = dist.owner(oi, oj);
        let accesses = op.accesses(q);
        g.add_task(op.weight(), owner, op.kernel() as u32, &accesses);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::{bidiag_ops, GenConfig};
    use bidiag_matrix::gen::random_gaussian;
    use bidiag_trees::NamedTree;

    #[test]
    fn parallel_execution_matches_sequential_exactly() {
        let a0 = random_gaussian(18, 12, 77);
        let nb = 3;
        let cfg = GenConfig::shared(NamedTree::Greedy);
        let ops = bidiag_ops(6, 4, &cfg);

        let mut seq = TiledMatrix::from_dense(&a0, nb);
        execute_sequential(&ops, &mut seq);

        let mut par = TiledMatrix::from_dense(&a0, nb);
        execute_parallel(&ops, &mut par, 4);

        // Same kernels on the same operands: results are bitwise identical.
        assert_eq!(seq.to_dense(), par.to_dense());
    }

    #[test]
    fn graph_size_matches_op_count() {
        let cfg = GenConfig::shared(NamedTree::FlatTs);
        let ops = bidiag_ops(5, 3, &cfg);
        let g = build_graph(&ops, 3, &BlockCyclic::single_node());
        assert_eq!(g.len(), ops.len());
        assert!(g.critical_path() > 0.0);
        assert!(g.total_weight() >= g.critical_path());
    }

    #[test]
    fn distributed_owners_follow_block_cyclic() {
        let cfg = GenConfig::distributed(NamedTree::Greedy, BlockCyclic::new(2, 2));
        let ops = bidiag_ops(4, 4, &cfg);
        let dist = BlockCyclic::new(2, 2);
        let g = build_graph(&ops, 4, &dist);
        for (t, op) in ops.iter().enumerate() {
            let (i, j) = op.output_tile();
            assert_eq!(g.task(t).owner, dist.owner(i, j));
        }
    }
}
