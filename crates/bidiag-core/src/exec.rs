//! Execution back-ends for tile-operation lists and pipeline stages.
//!
//! * [`execute_sequential`] — run the list in order (reference numerics),
//! * [`execute_parallel`] — run it on the work-stealing shared-memory task
//!   runtime of `bidiag-runtime` (dependencies inferred from data accesses),
//! * [`build_graph`] — lower the list to a [`TaskGraph`] for critical-path
//!   measurements and machine simulation,
//! * [`bnd2bd_on_runtime`] / [`bd2val_on_runtime`] — run the second and
//!   third pipeline stages through the same runtime, so every stage of
//!   GE2VAL is scheduled by one executor.  BND2BD fans out one task per
//!   bulge-chasing *wavefront* (row-block dependencies let wavefronts of
//!   different groups and passes overlap); BD2VAL fans out one task per
//!   *spectrum interval* (Sturm-count slicing from `bidiag-svd`), or runs
//!   the serial dqds fast path as a single task — see [`bd2val_task_count`].
//!
//! # Parallel data plane
//!
//! The parallel back-end layers its shared state on the DAG's ordering
//! guarantees instead of global locks:
//!
//! * tiles live behind *per-tile* `RwLock`s, needed only because the
//!   region-level dependency keys deliberately let kernels touching
//!   disjoint regions of one tile overlap (see
//!   [`TileOp::execute_shared`](crate::ops::TileOp::execute_shared));
//! * compact-WY tau factors live in a pre-sized [`TauTable`] of once-cells
//!   keyed by op id — producers fill their own slot, consumers read the
//!   slot the DAG ordered before them, and no global map or lock is ever
//!   contended; the same table backs the sequential driver;
//! * every worker thread owns a [`KernelScratch`] (kernel workspace +
//!   GEMM pack buffers + operand snapshot buffer) pre-sized for the tile
//!   size at spawn and lent to each task body it runs, so the apply
//!   kernels' scratch is never reallocated — not even on a worker's first
//!   task; the only per-task heap traffic left is the `TFactor` each
//!   factorization kernel produces into its table slot.

use crate::ops::{KernelScratch, TauTable, TileOp};
use bidiag_kernels::band::{bulge_wavefronts, BandMatrix};
use bidiag_kernels::gebd2::Bidiagonal;
use bidiag_matrix::{BlockCyclic, Matrix, TiledMatrix};
use bidiag_obs as obs;
use bidiag_runtime::{
    execute_parallel as runtime_execute, execute_parallel_with as runtime_execute_with, AccessMode,
    TaskBody, TaskBodyWith, TaskGraph,
};
use bidiag_svd::{slice_spectrum, solve_slice, Bd2ValOptions, GkBisection, GkSturm, SvdSolver};
use parking_lot::RwLock;
use std::sync::Arc;

/// Execute the operations in order on the tiled matrix, sharing the
/// [`TauTable`] store and the blocked-kernel scratch with the parallel
/// back-end.
pub fn execute_sequential(ops: &[TileOp], a: &mut TiledMatrix) {
    let taus = TauTable::for_ops(ops);
    let mut scratch = KernelScratch::for_tile(a.nb());
    for (op_id, op) in ops.iter().enumerate() {
        op.execute(op_id, a, &taus, &mut scratch);
    }
}

/// Execute the operations in parallel on `threads` worker threads.
///
/// The numerical result is bitwise identical to [`execute_sequential`]
/// because every kernel is executed with exactly the same operands; only the
/// interleaving of independent kernels differs.
pub fn execute_parallel(ops: &[TileOp], a: &mut TiledMatrix, threads: usize) {
    if ops.is_empty() {
        return;
    }
    let p = a.tile_rows();
    let q = a.tile_cols();

    // Move the tiles into shared per-tile locks.
    let mut shared: Vec<RwLock<Matrix>> = Vec::with_capacity(p * q);
    for i in 0..p {
        for j in 0..q {
            shared.push(RwLock::new(a.tile(i, j).clone()));
        }
    }
    let shared = Arc::new(shared);
    let taus = Arc::new(TauTable::for_ops(ops));

    let graph = build_graph(ops, q, &BlockCyclic::single_node());
    let bodies: Vec<TaskBodyWith<KernelScratch>> = ops
        .iter()
        .enumerate()
        .map(|(op_id, &op)| {
            let shared = Arc::clone(&shared);
            let taus = Arc::clone(&taus);
            Box::new(move |scratch: &mut KernelScratch| {
                // The shared vector is indexed row-major: (i, j) -> i * q + j.
                op.execute_shared(op_id, &shared, q, &taus, scratch);
            }) as TaskBodyWith<KernelScratch>
        })
        .collect();
    let nb = a.nb();
    runtime_execute_with(&graph, bodies, threads, move || KernelScratch::for_tile(nb));

    // Copy the tiles back.
    let shared = Arc::try_unwrap(shared).expect("all workers joined");
    let mut it = shared.into_iter();
    for i in 0..p {
        for j in 0..q {
            *a.tile_mut(i, j) = it.next().unwrap().into_inner();
        }
    }
}

/// Build the data-flow task graph of an operation list for a `p x q` tile
/// grid distributed according to `dist` (owner-computes placement on the
/// operation's output tile).
pub fn build_graph(ops: &[TileOp], q: usize, dist: &BlockCyclic) -> TaskGraph {
    let mut g = TaskGraph::new();
    for op in ops {
        let (oi, oj) = op.output_tile();
        let owner = dist.owner(oi, oj);
        let accesses = op.accesses(q);
        g.add_task(op.weight(), owner, op.kernel() as u32, &accesses);
    }
    g
}

/// The band matrix shared across BND2BD wavefront tasks.
///
/// # Safety
///
/// The wavefront task graph declares `Write` accesses on every band row
/// block a task may touch ([`bidiag_kernels::band::Wavefront::row_blocks`]),
/// so the runtime
/// orders every pair of tasks whose blocks intersect; tasks it lets run
/// concurrently have disjoint row sets, and in the packed band layout every
/// element belongs to exactly one row — concurrent tasks therefore touch
/// disjoint memory and the unsynchronised access is race-free.
struct SharedBand(std::cell::UnsafeCell<BandMatrix>);

unsafe impl Sync for SharedBand {}

/// Run the BND2BD stage (band to bidiagonal) through the task runtime: one
/// task per pipelined bulge-chasing *wavefront* (see
/// [`bulge_wavefronts`]), with dependencies inferred from the band row
/// blocks each wavefront touches.
///
/// Wavefronts of one group conflict on their shared window of the band and
/// execute in pipeline order, but wavefronts of *different* groups — and of
/// different superdiagonal passes — overlap whenever their row blocks are
/// disjoint, so the stage scales with threads like GE2BND (the paper
/// delegates this stage to PLASMA's multi-threaded bulge-chasing kernel).
///
/// The deflation threshold is computed once up front, exactly as
/// [`BandMatrix::reduce_to_bidiagonal`] does, and conflicting wavefronts
/// execute in program order, so the result is bitwise identical to the
/// sequential reduction at every thread count.
pub fn bnd2bd_on_runtime(band: &mut BandMatrix, threads: usize) -> Bidiagonal {
    let bw = band.bandwidth();
    let n = band.order();
    if bw < 2 || n < 3 {
        return band.bidiagonal_factor();
    }
    let wavefronts = bulge_wavefronts(n, bw);
    let tol = band.deflation_tolerance();
    let block_rows = bw.max(2);
    let mut g = TaskGraph::new();
    let mut accesses: Vec<(u64, AccessMode)> = Vec::new();
    for wf in &wavefronts {
        accesses.clear();
        accesses.extend(
            wf.row_blocks(n, block_rows)
                .into_iter()
                .map(|blk| (blk, AccessMode::Write)),
        );
        g.add_task(
            wf.steps(n).count().max(1) as f64,
            0,
            obs::KIND_BND2BD,
            &accesses,
        );
    }
    let shared = Arc::new(SharedBand(std::cell::UnsafeCell::new(std::mem::replace(
        band,
        BandMatrix::zeros(1, 1),
    ))));
    let bodies: Vec<TaskBody> = wavefronts
        .iter()
        .map(|&wf| {
            let shared = Arc::clone(&shared);
            Box::new(move || {
                // SAFETY: see [`SharedBand`] — the graph orders every pair
                // of wavefronts with intersecting row blocks, and a
                // wavefront only writes rows inside its declared blocks.
                unsafe { (*shared.0.get()).run_wavefront(&wf, tol) };
            }) as TaskBody
        })
        .collect();
    runtime_execute(&g, bodies, threads);
    let Ok(cell) = Arc::try_unwrap(shared) else {
        unreachable!("all workers joined");
    };
    *band = cell.0.into_inner();
    band.bidiagonal_factor()
}

/// Number of runtime tasks [`bd2val_on_runtime`] fans out for this
/// bidiagonal under these options — the *interval* count, not the value
/// count.
///
/// The sliced path spawns one task per [`SpectrumSlice`]
/// (`~ceil(k / values_per_task)`, fewer when slices merge inside
/// clusters); dqds runs as a single task; only the explicit
/// [`SvdSolver::Bisection`] oracle keeps the historical one-task-per-value
/// fan-out.  Exposed so tests can pin the task-count contract (the old
/// per-value fan-out cost 512 task activations on the reference case).
///
/// [`SpectrumSlice`]: bidiag_svd::SpectrumSlice
pub fn bd2val_task_count(diag: &[f64], superdiag: &[f64], opts: &Bd2ValOptions) -> usize {
    let k = diag.len();
    if k == 0 {
        return 0;
    }
    match opts.solver {
        SvdSolver::Dqds => 1,
        SvdSolver::SlicedBisection => {
            slice_spectrum(&GkSturm::new(diag, superdiag), opts.values_per_task).len()
        }
        SvdSolver::Bisection => k,
    }
}

/// Run the BD2VAL stage (singular values of the bidiagonal) through the
/// task runtime, with the solver selected by `opts`:
///
/// * [`SvdSolver::SlicedBisection`] — the parallel path: the spectrum is
///   partitioned by Sturm counts into disjoint multi-value intervals and
///   the runtime schedules **one task per interval** (not per value — see
///   [`bd2val_task_count`]), each resolving its whole bracket with a
///   batched Newton/bisection front;
/// * [`SvdSolver::Dqds`] — the serial fast path, scheduled as a single
///   task (at `O(n^2)` with a small constant it is cheaper than any
///   fan-out for the sizes this pipeline runs);
/// * [`SvdSolver::Bisection`] — the oracle: one task per singular value,
///   kept for reference runs and determinism tests.
///
/// Returns the singular values in non-increasing order.  For every solver
/// the slicing/partitioning is independent of `threads`, so the result is
/// bitwise identical to the sequential path of the same solver
/// ([`bidiag_svd::singular_values_with`]) at every thread count.
pub fn bd2val_on_runtime(
    diag: &[f64],
    superdiag: &[f64],
    threads: usize,
    opts: &Bd2ValOptions,
) -> Vec<f64> {
    let k = diag.len();
    if k == 0 {
        return Vec::new();
    }
    match opts.solver {
        SvdSolver::Dqds => {
            let mut g = TaskGraph::new();
            g.add_task(1.0, 0, obs::KIND_BD2VAL, &[(0, AccessMode::Write)]);
            let result: Arc<std::sync::OnceLock<Vec<f64>>> = Arc::new(std::sync::OnceLock::new());
            let d = diag.to_vec();
            let e = superdiag.to_vec();
            let slot = Arc::clone(&result);
            let bodies: Vec<TaskBody> = vec![Box::new(move || {
                slot.set(bidiag_svd::dqds_singular_values(&d, &e))
                    .expect("dqds task ran twice");
            }) as TaskBody];
            runtime_execute(&g, bodies, threads);
            Arc::try_unwrap(result)
                .expect("all workers joined")
                .into_inner()
                .expect("dqds task never ran")
        }
        SvdSolver::SlicedBisection => {
            let sturm = Arc::new(GkSturm::new(diag, superdiag));
            let slices = slice_spectrum(&sturm, opts.values_per_task);
            let rel_tol = opts.rel_tol;
            let mut g = TaskGraph::new();
            for (i, _) in slices.iter().enumerate() {
                // Independent intervals: each writes its own result slot.
                g.add_task(1.0, 0, obs::KIND_BD2VAL, &[(i as u64, AccessMode::Write)]);
            }
            type SliceOut = std::sync::OnceLock<Vec<(usize, f64)>>;
            let results: Arc<Vec<SliceOut>> =
                Arc::new((0..slices.len()).map(|_| SliceOut::new()).collect());
            let bodies: Vec<TaskBody> = slices
                .iter()
                .enumerate()
                .map(|(i, &slice)| {
                    let sturm = Arc::clone(&sturm);
                    let results = Arc::clone(&results);
                    Box::new(move || {
                        results[i]
                            .set(solve_slice(&sturm, &slice, rel_tol))
                            .expect("interval solved twice");
                    }) as TaskBody
                })
                .collect();
            runtime_execute(&g, bodies, threads);
            let mut sv = vec![0.0f64; k];
            for cell in results.iter() {
                for &(j, v) in cell.get().expect("interval never solved") {
                    sv[j] = v;
                }
            }
            sv.sort_by(|a, b| b.partial_cmp(a).unwrap());
            sv
        }
        SvdSolver::Bisection => {
            let bisect = Arc::new(GkBisection::new(diag, superdiag));
            let mut g = TaskGraph::new();
            for j in 0..k {
                g.add_task(1.0, 0, obs::KIND_BD2VAL, &[(j as u64, AccessMode::Write)]);
            }
            let results: Arc<Vec<std::sync::OnceLock<f64>>> =
                Arc::new((0..k).map(|_| std::sync::OnceLock::new()).collect());
            let bodies: Vec<TaskBody> = (0..k)
                .map(|j| {
                    let bisect = Arc::clone(&bisect);
                    let results = Arc::clone(&results);
                    Box::new(move || {
                        results[j]
                            .set(bisect.nth_largest(j))
                            .expect("singular value computed twice");
                    }) as TaskBody
                })
                .collect();
            runtime_execute(&g, bodies, threads);
            results
                .iter()
                .map(|c| *c.get().expect("singular value never computed"))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::{bidiag_ops, rbidiag_ops, GenConfig};
    use bidiag_kernels::svd::bidiagonal_singular_values;
    use bidiag_matrix::gen::random_gaussian;
    use bidiag_trees::NamedTree;

    #[test]
    fn parallel_execution_matches_sequential_exactly() {
        let a0 = random_gaussian(18, 12, 77);
        let nb = 3;
        let cfg = GenConfig::shared(NamedTree::Greedy);
        let ops = bidiag_ops(6, 4, &cfg);

        let mut seq = TiledMatrix::from_dense(&a0, nb);
        execute_sequential(&ops, &mut seq);

        let mut par = TiledMatrix::from_dense(&a0, nb);
        execute_parallel(&ops, &mut par, 4);

        // Same kernels on the same operands: results are bitwise identical.
        assert_eq!(seq.to_dense(), par.to_dense());
    }

    #[test]
    fn parallel_rbidiag_handles_reused_tau_keys() {
        // R-BIDIAG produces the same TauKey twice (preQR phase + square
        // bidiagonalization); the per-op-id TauTable must keep both.
        let a0 = random_gaussian(20, 10, 3);
        let nb = 2;
        let cfg = GenConfig::shared(NamedTree::Greedy);
        let ops = rbidiag_ops(10, 5, &cfg);

        let mut seq = TiledMatrix::from_dense(&a0, nb);
        execute_sequential(&ops, &mut seq);

        let mut par = TiledMatrix::from_dense(&a0, nb);
        execute_parallel(&ops, &mut par, 4);
        assert_eq!(seq.to_dense(), par.to_dense());
    }

    #[test]
    fn tau_table_sizes_one_slot_per_factorization() {
        let cfg = GenConfig::shared(NamedTree::Greedy);
        let ops = bidiag_ops(5, 3, &cfg);
        let table = TauTable::for_ops(&ops);
        let producers = ops
            .iter()
            .filter(|o| {
                !matches!(
                    o,
                    TileOp::Unmqr { .. }
                        | TileOp::Tsmqr { .. }
                        | TileOp::Ttmqr { .. }
                        | TileOp::Unmlq { .. }
                        | TileOp::Tsmlq { .. }
                        | TileOp::Ttmlq { .. }
                        | TileOp::ZeroLower { .. }
                )
            })
            .count();
        assert_eq!(table.len(), producers);
        assert!(!table.is_empty());
    }

    #[test]
    fn graph_size_matches_op_count() {
        let cfg = GenConfig::shared(NamedTree::FlatTs);
        let ops = bidiag_ops(5, 3, &cfg);
        let g = build_graph(&ops, 3, &BlockCyclic::single_node());
        assert_eq!(g.len(), ops.len());
        assert!(g.critical_path() > 0.0);
        assert!(g.total_weight() >= g.critical_path());
    }

    #[test]
    fn distributed_owners_follow_block_cyclic() {
        let cfg = GenConfig::distributed(NamedTree::Greedy, BlockCyclic::new(2, 2));
        let ops = bidiag_ops(4, 4, &cfg);
        let dist = BlockCyclic::new(2, 2);
        let g = build_graph(&ops, 4, &dist);
        for (t, op) in ops.iter().enumerate() {
            let (i, j) = op.output_tile();
            assert_eq!(g.task(t).owner, dist.owner(i, j));
        }
    }

    /// A random band matrix built directly in band storage (no dense
    /// detour, so nothing is discarded).
    fn random_band(n: usize, bw: usize, seed: u64) -> BandMatrix {
        let g = random_gaussian(n, n, seed);
        let mut b = BandMatrix::zeros(n, bw);
        for i in 0..n {
            for j in i..=(i + bw).min(n - 1) {
                b.set(i, j, g.get(i, j));
            }
        }
        b
    }

    #[test]
    fn bnd2bd_on_runtime_matches_direct_reduction() {
        let mut b1 = random_band(30, 5, 11);
        let mut b2 = b1.clone();
        let direct = b1.reduce_to_bidiagonal();
        let threaded = bnd2bd_on_runtime(&mut b2, 4);
        assert_eq!(direct.diag, threaded.diag);
        assert_eq!(direct.superdiag, threaded.superdiag);
    }

    #[test]
    fn bnd2bd_wavefront_tasks_are_deterministic_across_thread_counts() {
        // Conflicting wavefronts are graph-ordered and concurrent ones
        // touch disjoint rows, so every thread count must reproduce the
        // sequential reduction bit for bit.
        for (n, bw, seed) in [(100usize, 8usize, 13u64), (61, 3, 14), (40, 17, 15)] {
            let mut reference = random_band(n, bw, seed);
            let band0 = reference.clone();
            let seq = reference.reduce_to_bidiagonal();
            for threads in [1usize, 2, 4] {
                let mut b = band0.clone();
                let par = bnd2bd_on_runtime(&mut b, threads);
                assert_eq!(seq.diag, par.diag, "n={n} bw={bw} @ {threads} threads");
                assert_eq!(
                    seq.superdiag, par.superdiag,
                    "n={n} bw={bw} @ {threads} threads"
                );
                // The band storages themselves must agree too.
                assert_eq!(reference.to_dense(), b.to_dense());
            }
        }
    }

    #[test]
    fn bd2val_on_runtime_matches_sequential_bisection() {
        let d = vec![4.0, -3.0, 2.5, 1.0, 0.5];
        let e = vec![0.7, -0.3, 0.2, 0.1];
        let seq = bidiagonal_singular_values(&d, &e);
        let opts = Bd2ValOptions::default().with_solver(SvdSolver::Bisection);
        let par = bd2val_on_runtime(&d, &e, 4, &opts);
        assert_eq!(seq, par);
    }

    #[test]
    fn bd2val_on_runtime_every_solver_matches_its_sequential_path() {
        let d = vec![4.0, -3.0, 2.5, 1.0, 0.5, 0.25, 2.0, 1.5];
        let e = vec![0.7, -0.3, 0.2, 0.1, 0.4, -0.6, 0.05];
        for solver in [
            SvdSolver::Dqds,
            SvdSolver::SlicedBisection,
            SvdSolver::Bisection,
        ] {
            let opts = Bd2ValOptions::default()
                .with_solver(solver)
                .with_values_per_task(3);
            let seq = bidiag_svd::singular_values_with(&d, &e, &opts);
            for threads in [1usize, 2, 4] {
                let par = bd2val_on_runtime(&d, &e, threads, &opts);
                assert_eq!(seq, par, "{solver:?} @ {threads} threads");
            }
        }
    }

    #[test]
    fn bd2val_fans_out_intervals_not_values() {
        let n = 64;
        let g = random_gaussian(n, 2, 5);
        let d: Vec<f64> = (0..n).map(|i| g.get(i, 0)).collect();
        let e: Vec<f64> = (0..n - 1).map(|i| g.get(i, 1)).collect();
        let opts = Bd2ValOptions::default().with_solver(SvdSolver::SlicedBisection);
        let tasks = bd2val_task_count(&d, &e, &opts);
        assert!(tasks >= 1);
        assert!(
            tasks <= n.div_ceil(opts.values_per_task) + 1,
            "sliced path must fan out per interval, got {tasks} tasks for {n} values"
        );
        assert_eq!(
            bd2val_task_count(&d, &e, &Bd2ValOptions::default()),
            1,
            "dqds runs as a single task"
        );
    }
}
