//! Operation counts and algorithm-selection rules.
//!
//! The paper (Section III.C) recalls the classical flop counts of the two
//! bidiagonalization strategies for an `m x n` matrix (`m >= n`):
//!
//! * BIDIAG (one-stage Golub–Kahan):    `4 n^2 (m - n/3)`
//! * R-BIDIAG (QR first, Chan's trick): `2 n^2 (m + n)`
//!
//! R-BIDIAG performs fewer flops when `m >= 5n/3`.  Elemental switches at
//! `m >= 1.2 n`; these thresholds drive the baselines and the GFlop/s
//! normalisation used in every performance figure (the paper reports all
//! rates against the BIDIAG operation count, and so do we).

use crate::drivers::Algorithm;

/// Flop count of the one-stage bidiagonalization of an `m x n` matrix.
pub fn bidiag_flops(m: usize, n: usize) -> f64 {
    let (m, n) = (m as f64, n as f64);
    4.0 * n * n * (m - n / 3.0)
}

/// Flop count of R-bidiagonalization (QR factorization + bidiagonalization of
/// the square factor).
pub fn rbidiag_flops(m: usize, n: usize) -> f64 {
    let (m, n) = (m as f64, n as f64);
    2.0 * n * n * (m + n)
}

/// The flop count used to normalise GFlop/s in every figure of the paper:
/// the BIDIAG count, regardless of the algorithm actually run.
pub fn reporting_flops(m: usize, n: usize) -> f64 {
    bidiag_flops(m, n)
}

/// Chan's crossover: R-BIDIAG performs fewer flops when `m >= 5n/3`.
pub fn chan_crossover(m: usize, n: usize) -> bool {
    3 * m >= 5 * n
}

/// Elemental's practical switch point: `m >= 1.2 n`.
pub fn elemental_crossover(m: usize, n: usize) -> bool {
    5 * m >= 6 * n
}

/// Select the algorithm minimising the flop count (Chan's rule).
pub fn select_by_flops(m: usize, n: usize) -> Algorithm {
    if chan_crossover(m, n) {
        Algorithm::RBidiag
    } else {
        Algorithm::Bidiag
    }
}

/// GFlop/s rate for a normalised flop count executed in `seconds`.
pub fn gflops(flops: f64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return f64::NAN;
    }
    flops / seconds / 1.0e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_textbook_values() {
        // Square: BIDIAG = 8/3 n^3, R-BIDIAG = 4 n^3 (R-BIDIAG worse).
        let n = 300usize;
        assert!((bidiag_flops(n, n) - 8.0 / 3.0 * (n as f64).powi(3)).abs() < 1.0);
        assert!((rbidiag_flops(n, n) - 4.0 * (n as f64).powi(3)).abs() < 1.0);
    }

    #[test]
    fn crossover_at_five_thirds() {
        let n = 3000usize;
        assert!(!chan_crossover(n, n));
        assert!(chan_crossover(5 * n / 3, n));
        assert!(!chan_crossover(5 * n / 3 - 1, n));
        // At the crossover the two counts coincide.
        let m = 5 * n / 3;
        assert!((bidiag_flops(m, n) - rbidiag_flops(m, n)).abs() < 1e-6 * bidiag_flops(m, n));
    }

    #[test]
    fn selection_rules() {
        assert_eq!(select_by_flops(1000, 1000), Algorithm::Bidiag);
        assert_eq!(select_by_flops(10_000, 1000), Algorithm::RBidiag);
        assert!(elemental_crossover(1200, 1000));
        assert!(!elemental_crossover(1100, 1000));
    }

    #[test]
    fn gflops_helper() {
        assert!((gflops(2.0e9, 1.0) - 2.0).abs() < 1e-12);
        assert!(gflops(1.0, 0.0).is_nan());
    }
}
