//! Compact-WY machinery shared by every blocked tile kernel.
//!
//! A sequence of `k` Householder reflectors `H_0 H_1 ... H_{k-1}` equals
//! `I - V T V^T`, where `V` holds the reflector vectors column-wise and `T`
//! is the `k x k` upper-triangular *compact-WY factor* (LAPACK `xLARFT`).
//! The factorization kernels of [`crate::qr`] build `T` incrementally — one
//! column per reflector, via the `larft_append` column recurrence — so the
//! apply kernels can run as three GEMM-shaped sweeps
//!
//! ```text
//! W = V^T C;   W = op(T) W;   C -= V W
//! ```
//!
//! instead of `k` rank-one updates.  This module provides:
//!
//! * [`TFactor`] — the `tau` scalars plus the `T` matrix of one
//!   factorization kernel (what tau stores now carry per tile),
//! * [`Workspace`] — reusable scratch (the `W` panel and an auxiliary
//!   buffer) so the apply kernels allocate nothing in steady state (the
//!   factorization kernels still allocate the [`TFactor`] they return),
//! * the `T` application routines and the structured-`V` panel products
//!   (trapezoid for GEQRT-style `V`, triangular for TTQRT-style `V`, and
//!   their row-wise LQ duals) used internally by [`crate::qr`] and
//!   [`crate::lq`].
//!
//! Every inner loop runs down a contiguous column slice, and the middle
//! loops are unrolled four-wide so one pass over the shared operand feeds
//! four independent accumulators (the same discipline as
//! [`bidiag_matrix::gemm`]).

use crate::qr::Trans;
use bidiag_matrix::gemm::dot as fdot;
use bidiag_matrix::{Matrix, MatrixView, MatrixViewMut};

/// Inner blocking factor of the apply kernels (PLASMA's `ib`): reflectors
/// are applied in chunks of `IB`, each through the corresponding diagonal
/// block of the full `T` factor.  The diagonal blocks of a forward larft
/// `T` are exactly the larft factors of the chunk's reflectors alone, so
/// chunking is an exact regrouping — it cuts the `T`-application overhead
/// from `k^2 n` to `k * IB * n` flops and turns the bulk of the structured
/// panel products into dense GEMM calls.  Both the `T`-application flops and
/// the zero-padding waste of the densified panels scale linearly with `IB`,
/// so smaller is cheaper until per-chunk overheads dominate; 8 measured
/// fastest on the `kernels` bench sweep (vs 6/10/12) and divides the
/// reference `nb = 64` evenly.
pub(crate) const IB: usize = 8;

/// Iterate the reflector chunks of a `k`-reflector apply in the order the
/// given direction requires (forward for `Q^T`, backward for `Q`),
/// yielding `(chunk start, chunk width)` without allocating.
pub(crate) fn chunk_order(k: usize, trans: Trans) -> impl Iterator<Item = (usize, usize)> {
    let nchunks = k.div_ceil(IB);
    (0..nchunks).map(move |ci| {
        let c = match trans {
            Trans::Transpose => ci,
            Trans::NoTranspose => nchunks - 1 - ci,
        };
        let p = c * IB;
        (p, IB.min(k - p))
    })
}

/// Densify one chunk of a GEQRT-style unit-lower-trapezoid `V` into a
/// zero-padded `(m - p) x ib` column-major panel: column `kk` gets zeros
/// above the diagonal, an explicit `1` on it, and the stored vector tail
/// below.  The `O(ib^2)` padding lets the apply kernels run the whole
/// chunk as fixed-length dense GEMMs instead of ragged triangular sweeps.
pub(crate) fn densify_trapezoid<'a>(
    v: MatrixView<'_>,
    p: usize,
    ibp: usize,
    buf: &'a mut Vec<f64>,
) -> MatrixView<'a> {
    let m = v.rows();
    let rows = m - p;
    let out = grow(buf, rows * ibp);
    for kk in 0..ibp {
        let src = v.col(p + kk);
        let dst = &mut out[kk * rows..(kk + 1) * rows];
        dst[..kk].fill(0.0);
        dst[kk] = 1.0;
        dst[kk + 1..].copy_from_slice(&src[p + kk + 1..]);
    }
    MatrixView::new(out, rows, ibp, rows)
}

/// Densify one chunk of a TTQRT-style upper-triangular `V` into a
/// zero-padded `min(p + ib, m2) x ib` panel: column `kk` keeps its stored
/// prefix of length `min(p + kk + 1, m2)` and zeros below — whatever the
/// tile holds outside the triangle (typically an earlier GEQRT's vectors)
/// is never read.
pub(crate) fn densify_triangle<'a>(
    v: MatrixView<'_>,
    p: usize,
    ibp: usize,
    buf: &'a mut Vec<f64>,
) -> MatrixView<'a> {
    let m2 = v.rows();
    let rows = (p + ibp).min(m2);
    let out = grow(buf, rows * ibp);
    for kk in 0..ibp {
        let rl = (p + kk + 1).min(m2);
        let src = v.col(p + kk);
        let dst = &mut out[kk * rows..(kk + 1) * rows];
        dst[..rl].copy_from_slice(&src[..rl]);
        dst[rl..].fill(0.0);
    }
    MatrixView::new(out, rows, ibp, rows)
}

/// The compact-WY representation of one factorization kernel's reflectors:
/// the `tau` scalars and the upper-triangular `T` such that
/// `H_0 ... H_{k-1} = I - V T V^T`.
///
/// `tau[i] == T[(i, i)]`; the scalars are kept alongside `T` so the
/// unblocked reference kernels (and diagnostics like
/// [`build_q`](crate::qr::build_q)) can consume the same object.
#[derive(Clone, Debug, PartialEq)]
pub struct TFactor {
    taus: Vec<f64>,
    t: Matrix,
}

impl TFactor {
    /// An empty factor for up to `kmax` reflectors.
    pub(crate) fn with_kmax(kmax: usize) -> Self {
        TFactor {
            taus: Vec::with_capacity(kmax),
            t: Matrix::zeros(kmax, kmax),
        }
    }

    /// Build a factor from parts (used by tests and by the LQ transpose
    /// wrappers).  `t` must be `taus.len()` square.
    pub fn from_parts(taus: Vec<f64>, t: Matrix) -> Self {
        assert_eq!(t.rows(), taus.len());
        assert_eq!(t.cols(), taus.len());
        TFactor { taus, t }
    }

    /// Number of reflectors.
    pub fn len(&self) -> usize {
        self.taus.len()
    }

    /// True when there are no reflectors.
    pub fn is_empty(&self) -> bool {
        self.taus.is_empty()
    }

    /// The `tau` scalars (diagonal of `T`).
    pub fn taus(&self) -> &[f64] {
        &self.taus
    }

    /// The upper-triangular `T` matrix.
    pub fn t(&self) -> &Matrix {
        &self.t
    }

    /// Append reflector `k` (its `tau` and the dot products
    /// `vdots[l] = v_l^T v_k`, `l < k`) to the factor; see [`larft_append`].
    pub(crate) fn append(&mut self, tau: f64, vdots: &[f64]) {
        let k = self.taus.len();
        larft_append(&mut self.t, k, tau, vdots);
        self.taus.push(tau);
    }
}

/// Reusable scratch of the blocked kernels: the `W` panel of the three-GEMM
/// apply and an auxiliary buffer (reflector dot products during
/// factorization, `T` transposes during `NoTranspose` applies).  Buffers
/// grow on first use and are reused afterwards, so a long-lived workspace —
/// one per runtime worker — makes the kernels allocation-free in steady
/// state.
#[derive(Default, Debug)]
pub struct Workspace {
    panel: Vec<f64>,
    aux: Vec<f64>,
    vpanel: Vec<f64>,
}

impl Workspace {
    /// Empty workspace (buffers grow on first kernel call).
    pub fn new() -> Self {
        Self::default()
    }

    /// The three scratch buffers (`W` panel, auxiliary, densified-`V`
    /// panel), split so they can be borrowed independently.
    pub(crate) fn bufs(&mut self) -> (&mut Vec<f64>, &mut Vec<f64>, &mut Vec<f64>) {
        (&mut self.panel, &mut self.aux, &mut self.vpanel)
    }
}

/// Grow `v` to at least `len` and return the first `len` elements.
pub(crate) fn grow(v: &mut Vec<f64>, len: usize) -> &mut [f64] {
    if v.len() < len {
        v.resize(len, 0.0);
    }
    &mut v[..len]
}

/// Append column `k` to the forward compact-WY factor `t` (LAPACK `xLARFT`
/// column recurrence): `T[0..k, k] = -tau * T[0..k, 0..k] * vdots` and
/// `T[k, k] = tau`, where `vdots[l] = v_l^T v_k`.
pub(crate) fn larft_append(t: &mut Matrix, k: usize, tau: f64, vdots: &[f64]) {
    debug_assert!(vdots.len() >= k);
    let mut tv = t.as_view_mut();
    let (head, mut tail) = tv.split_cols_at_mut(k);
    let tcol = tail.col_mut(0);
    for x in tcol[..k].iter_mut() {
        *x = 0.0;
    }
    for (c, &vd) in vdots[..k].iter().enumerate() {
        let s = -tau * vd;
        if s != 0.0 {
            let hcol = head.col(c);
            for l in 0..=c {
                tcol[l] += s * hcol[l];
            }
        }
    }
    tcol[k] = tau;
}

/// In-place `W <- T^T W` (`Trans::Transpose`, the factorization direction)
/// or `W <- T W` (`Trans::NoTranspose`), with `T` the upper-triangular
/// compact-WY factor and `W` a `k x n` panel.
///
/// Both directions process one contiguous `W` column at a time.  The
/// transposed direction reads contiguous columns of `T` directly; the
/// non-transposed one first transposes `T` into `aux` so its inner loops
/// are contiguous too.
pub(crate) fn apply_t_left(
    w: &mut MatrixViewMut<'_>,
    t: MatrixView<'_>,
    trans: Trans,
    aux: &mut Vec<f64>,
) {
    let k = t.rows();
    debug_assert_eq!(w.rows(), k);
    match trans {
        Trans::Transpose => {
            // (T^T W)[i] = sum_{l <= i} T[l, i] * w[l]: descending i keeps
            // the not-yet-overwritten entries it reads.
            for wcol in w.cols_mut() {
                for i in (0..k).rev() {
                    wcol[i] = fdot(&t.col(i)[..=i], &wcol[..=i]);
                }
            }
        }
        Trans::NoTranspose => {
            // (T W)[i] = sum_{l >= i} T[i, l] * w[l]: ascending i is
            // in-place safe; read rows of T as columns of T^T.
            let tt = grow(aux, k * k);
            for l in 0..k {
                let tcol = t.col(l);
                for i in 0..k {
                    tt[i * k + l] = tcol[i];
                }
            }
            for wcol in w.cols_mut() {
                for i in 0..k {
                    let trow = &tt[i * k..(i + 1) * k];
                    wcol[i] = fdot(&trow[i..], &wcol[i..]);
                }
            }
        }
    }
}

/// In-place right multiply of the `r x k` panel `W` by `T`
/// (`transpose_t == false`) or `T^T` (`transpose_t == true`), columns of
/// `W` combined by axpys over contiguous slices.
pub(crate) fn apply_t_right(w: &mut MatrixViewMut<'_>, t: MatrixView<'_>, transpose_t: bool) {
    let k = t.rows();
    debug_assert_eq!(w.cols(), k);
    if !transpose_t {
        // (W T)[:, j] = sum_{l <= j} T[l, j] * W[:, l]: descending j.
        for j in (0..k).rev() {
            let tcol = t.col(j);
            let (left, mut right) = w.split_cols_at_mut(j);
            let wj = right.col_mut(0);
            let d = tcol[j];
            for x in wj.iter_mut() {
                *x *= d;
            }
            for (l, &s) in tcol[..j].iter().enumerate() {
                if s != 0.0 {
                    let wl = left.col(l);
                    for (x, &y) in wj.iter_mut().zip(wl) {
                        *x += s * y;
                    }
                }
            }
        }
    } else {
        // (W T^T)[:, j] = sum_{l >= j} T[j, l] * W[:, l]: ascending j.
        for j in 0..k {
            let (mut left, right) = w.split_cols_at_mut(j + 1);
            let wj = left.col_mut(j);
            let d = t.get(j, j);
            for x in wj.iter_mut() {
                *x *= d;
            }
            for l in (j + 1)..k {
                let s = t.get(j, l);
                if s != 0.0 {
                    let wl = right.col(l - j - 1);
                    for i in 0..wj.len() {
                        wj[i] += s * wl[i];
                    }
                }
            }
        }
    }
}

/// `W = C V` for the row-wise unit trapezoid `V` of a GELQT'd tile:
/// `V[j, kk]` is `1` at `j == kk`, `v[kk, j]` for `j > kk`, `0` above.
/// `c` is `r x n`, `w` is `r x k`.
pub(crate) fn lq_cv(v: MatrixView<'_>, c: MatrixView<'_>, w: &mut MatrixViewMut<'_>) {
    let n = c.cols();
    let r = c.rows();
    let k = w.cols();
    debug_assert_eq!(v.cols(), n);
    debug_assert!(v.rows() >= k && w.rows() == r);
    for (kk, wcol) in w.cols_mut().enumerate() {
        wcol.copy_from_slice(c.col(kk));
        let mut j = kk + 1;
        while j + 4 <= n {
            let s0 = v.get(kk, j);
            let s1 = v.get(kk, j + 1);
            let s2 = v.get(kk, j + 2);
            let s3 = v.get(kk, j + 3);
            let c0 = c.col(j);
            let c1 = c.col(j + 1);
            let c2 = c.col(j + 2);
            let c3 = c.col(j + 3);
            for i in 0..r {
                wcol[i] += c0[i] * s0 + c1[i] * s1 + c2[i] * s2 + c3[i] * s3;
            }
            j += 4;
        }
        while j < n {
            let s = v.get(kk, j);
            if s != 0.0 {
                let ccol = c.col(j);
                for i in 0..r {
                    wcol[i] += ccol[i] * s;
                }
            }
            j += 1;
        }
    }
}

/// `C -= W V^T` for the same row-wise unit trapezoid `V` as [`lq_cv`]:
/// `c` is `r x n`, `w` is `r x k`.
pub(crate) fn lq_cwv(v: MatrixView<'_>, w: MatrixView<'_>, c: &mut MatrixViewMut<'_>) {
    let n = c.cols();
    let r = c.rows();
    let k = w.cols();
    debug_assert_eq!(v.cols(), n);
    debug_assert!(v.rows() >= k && w.rows() == r);
    for (j, ccol) in c.cols_mut().enumerate() {
        if j < k {
            let wcol = w.col(j);
            for i in 0..r {
                ccol[i] -= wcol[i];
            }
        }
        let vcol = v.col(j);
        let kend = j.min(k);
        let mut kk = 0;
        while kk + 4 <= kend {
            let (s0, s1, s2, s3) = (vcol[kk], vcol[kk + 1], vcol[kk + 2], vcol[kk + 3]);
            let w0 = w.col(kk);
            let w1 = w.col(kk + 1);
            let w2 = w.col(kk + 2);
            let w3 = w.col(kk + 3);
            for i in 0..r {
                ccol[i] -= w0[i] * s0 + w1[i] * s1 + w2[i] * s2 + w3[i] * s3;
            }
            kk += 4;
        }
        while kk < kend {
            let s = vcol[kk];
            if s != 0.0 {
                let wcol = w.col(kk);
                for i in 0..r {
                    ccol[i] -= wcol[i] * s;
                }
            }
            kk += 1;
        }
    }
}

/// `W += C2 V2` for the row-wise lower-triangular `V2` of a TTLQT'd tile:
/// row `kk` of the stored tile (a chunk starting at global reflector index
/// `off`) is non-zero only in columns `0..min(off + kk + 1, n2)`.  `W`
/// must already hold the `C1` contribution.
pub(crate) fn lq_tri_cv(
    v2: MatrixView<'_>,
    c2: MatrixView<'_>,
    w: &mut MatrixViewMut<'_>,
    off: usize,
) {
    let n2 = c2.cols();
    let r = c2.rows();
    let k = w.cols();
    debug_assert!(v2.rows() >= k && w.rows() == r);
    for (kk, wcol) in w.cols_mut().enumerate() {
        let rl = (off + kk + 1).min(n2);
        let mut j = 0;
        while j + 4 <= rl {
            let s0 = v2.get(kk, j);
            let s1 = v2.get(kk, j + 1);
            let s2 = v2.get(kk, j + 2);
            let s3 = v2.get(kk, j + 3);
            let c0 = c2.col(j);
            let c1 = c2.col(j + 1);
            let c2c = c2.col(j + 2);
            let c3 = c2.col(j + 3);
            for i in 0..r {
                wcol[i] += c0[i] * s0 + c1[i] * s1 + c2c[i] * s2 + c3[i] * s3;
            }
            j += 4;
        }
        while j < rl {
            let s = v2.get(kk, j);
            if s != 0.0 {
                let ccol = c2.col(j);
                for i in 0..r {
                    wcol[i] += ccol[i] * s;
                }
            }
            j += 1;
        }
    }
}

/// `C2 -= W V2^T` for the same row-wise lower-triangular `V2` as
/// [`lq_tri_cv`].
pub(crate) fn lq_tri_cwv(
    v2: MatrixView<'_>,
    w: MatrixView<'_>,
    c2: &mut MatrixViewMut<'_>,
    off: usize,
) {
    let r = w.rows();
    let k = w.cols();
    debug_assert!(v2.rows() >= k && c2.rows() == r);
    for (j, ccol) in c2.cols_mut().enumerate() {
        let vcol = v2.col(j);
        // Row kk of the stored tile (global index off + kk) reaches column
        // j iff j < min(off + kk + 1, n2), i.e. off + kk >= j.
        let kk0 = j.saturating_sub(off);
        for (kk, &s) in vcol.iter().enumerate().take(k).skip(kk0) {
            if s != 0.0 {
                let wcol = w.col(kk);
                for i in 0..r {
                    ccol[i] -= wcol[i] * s;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bidiag_matrix::gen::random_gaussian;

    #[test]
    fn larft_append_matches_explicit_product() {
        // Two reflectors with hand-picked vectors: check
        // H0 H1 = I - V T V^T entry-wise.
        let m = 5;
        let v = random_gaussian(m, 2, 3);
        // Normalize to unit-diagonal column vectors v0, v1 (v1 zero above row 1).
        let mut vm = Matrix::zeros(m, 2);
        for i in 0..m {
            vm.set(i, 0, if i == 0 { 1.0 } else { v.get(i, 0) });
            vm.set(
                i,
                1,
                if i == 1 {
                    1.0
                } else if i > 1 {
                    v.get(i, 1)
                } else {
                    0.0
                },
            );
        }
        let (tau0, tau1) = (0.7, 1.2);
        let mut t = Matrix::zeros(2, 2);
        larft_append(&mut t, 0, tau0, &[]);
        let vdot = (0..m).map(|i| vm.get(i, 0) * vm.get(i, 1)).sum::<f64>();
        larft_append(&mut t, 1, tau1, &[vdot]);

        let h = |tau: f64, col: usize| -> Matrix {
            Matrix::from_fn(m, m, |i, j| {
                (if i == j { 1.0 } else { 0.0 }) - tau * vm.get(i, col) * vm.get(j, col)
            })
        };
        let prod = h(tau0, 0).matmul(&h(tau1, 1));
        let vtv = vm.matmul(&t).matmul(&vm.transpose());
        let wy = Matrix::from_fn(m, m, |i, j| {
            (if i == j { 1.0 } else { 0.0 }) - vtv.get(i, j)
        });
        assert!(prod.sub(&wy).norm_max() < 1e-13);
    }

    #[test]
    fn apply_t_left_matches_dense_products() {
        let k = 6;
        let n = 5;
        let t = {
            let g = random_gaussian(k, k, 9);
            Matrix::from_fn(k, k, |i, j| if j >= i { g.get(i, j) } else { 0.0 })
        };
        let w0 = random_gaussian(k, n, 10);
        let mut aux = Vec::new();

        let mut w = w0.clone();
        apply_t_left(
            &mut w.as_view_mut(),
            t.as_view(),
            Trans::Transpose,
            &mut aux,
        );
        assert!(w.sub(&t.transpose().matmul(&w0)).norm_max() < 1e-13);

        let mut w = w0.clone();
        apply_t_left(
            &mut w.as_view_mut(),
            t.as_view(),
            Trans::NoTranspose,
            &mut aux,
        );
        assert!(w.sub(&t.matmul(&w0)).norm_max() < 1e-13);
    }

    #[test]
    fn apply_t_right_matches_dense_products() {
        let k = 5;
        let r = 4;
        let t = {
            let g = random_gaussian(k, k, 11);
            Matrix::from_fn(k, k, |i, j| if j >= i { g.get(i, j) } else { 0.0 })
        };
        let w0 = random_gaussian(r, k, 12);

        let mut w = w0.clone();
        apply_t_right(&mut w.as_view_mut(), t.as_view(), false);
        assert!(w.sub(&w0.matmul(&t)).norm_max() < 1e-13);

        let mut w = w0.clone();
        apply_t_right(&mut w.as_view_mut(), t.as_view(), true);
        assert!(w.sub(&w0.matmul_nt(&t)).norm_max() < 1e-13);
    }
}
