//! Compact-WY machinery shared by every blocked tile kernel.
//!
//! A sequence of `k` Householder reflectors `H_0 H_1 ... H_{k-1}` equals
//! `I - V T V^T`, where `V` holds the reflector vectors column-wise and `T`
//! is the `k x k` upper-triangular *compact-WY factor* (LAPACK `xLARFT`).
//! The factorization kernels of [`crate::qr`] build `T` incrementally — one
//! column per reflector, via the `larft_append` column recurrence — so the
//! apply kernels can run as three GEMM-shaped sweeps
//!
//! ```text
//! W = V^T C;   W = op(T) W;   C -= V W
//! ```
//!
//! instead of `k` rank-one updates.  This module provides:
//!
//! * [`TFactor`] — the `tau` scalars plus the *`IB`-block-diagonal* of the
//!   `T` matrix of one factorization kernel (what tau stores carry per
//!   tile).  The apply kernels consume `T` exclusively through its `IB x IB`
//!   diagonal blocks — chunking through the diagonal blocks of a forward
//!   `larft` factor is an exact regrouping of the reflector product — so
//!   the off-diagonal blocks are never materialised and the `larft`
//!   recurrence runs chunk-locally (`O(k * IB)` dots instead of `O(k^2)`).
//! * [`Workspace`] — reusable scratch (the `W` panel, an auxiliary buffer
//!   and the GEMM pack buffers) so the apply kernels allocate nothing in
//!   steady state (the factorization kernels still allocate the
//!   [`TFactor`] they return),
//! * the `T` application routines (trmm-style triangular sweeps, never a
//!   dense product) and the structure-aware `V` panel products: fused
//!   trapezoid sweeps for GEQRT-style `V` (`trap_ctv` / `trap_cvwt`,
//!   LAPACK `xLARFB`'s transposed-`W` scheme), fused triangle sweeps for
//!   TTQRT-style `V` (`tri_ctv` / `tri_cvwt`) and their row-wise LQ
//!   duals — each splits the structured top of the panel into an exact
//!   trmm-style sweep of contiguous axpys and hands the dense remainder to
//!   [`bidiag_matrix::gemm`], instead of densifying `V` into scratch.
//!
//! Every inner loop runs down a contiguous column slice as a
//! [`bidiag_matrix::simd`] `axpy`/`axpy4` (backend fetched once per kernel
//! call, AVX2-FMA or the scalar fallback), so one pass over the shared
//! operand feeds four independent accumulators — the same discipline as
//! [`bidiag_matrix::gemm`].  The only dots kept on the order-exact scalar
//! [`fdot`] are the `T`-application ones in `apply_t_left`: they are
//! length `<= IB = 8`, below every vector step, where dispatch overhead
//! costs more than it saves.

use crate::qr::Trans;
use bidiag_matrix::gemm::{dot as fdot, gemm_nt_scratch, gemm_tn_scratch, GemmScratch};
use bidiag_matrix::{simd, Matrix, MatrixView, MatrixViewMut};

/// Inner blocking factor of the apply kernels (PLASMA's `ib`): reflectors
/// are applied in chunks of `IB`, each through the corresponding diagonal
/// block of the full `T` factor.  The diagonal blocks of a forward larft
/// `T` are exactly the larft factors of the chunk's reflectors alone, so
/// chunking is an exact regrouping — it cuts the `T`-application overhead
/// from `k^2 n` to `k * IB * n` flops and turns the bulk of the structured
/// panel products into dense GEMM calls.  The `T`-application flops, the
/// chunk-local `larft` dots and the trmm sweeps of the structured panels
/// all scale linearly with `IB`, so smaller is cheaper until per-chunk
/// overheads dominate; 8 measured fastest on the `kernels` bench sweep
/// (vs 6/10/12 in the densified-panel era, re-validated against 16 after
/// the structure-aware rewrite) and divides the reference `nb = 64`
/// evenly.
pub(crate) const IB: usize = 8;

/// Iterate the reflector chunks of a `k`-reflector apply in the order the
/// given direction requires (forward for `Q^T`, backward for `Q`),
/// yielding `(chunk start, chunk width)` without allocating.
pub(crate) fn chunk_order(k: usize, trans: Trans) -> impl Iterator<Item = (usize, usize)> {
    let nchunks = k.div_ceil(IB);
    (0..nchunks).map(move |ci| {
        let c = match trans {
            Trans::Transpose => ci,
            Trans::NoTranspose => nchunks - 1 - ci,
        };
        let p = c * IB;
        (p, IB.min(k - p))
    })
}

/// `W = C[p.., :]^T V_p` for one `IB`-chunk of a GEQRT-style
/// unit-lower-trapezoid `V`, into the *transposed* `n x ib` panel `w`
/// (LAPACK `xLARFB`'s `WORK` layout).  The transposed layout is what makes
/// the structure-aware path fast: the chunk's unit-lower-triangular top
/// becomes a trmm-style sweep of *contiguous length-`n` axpys*
/// (`W[:, kk] += v[p+i, p+kk] * W[:, i]`), and the dense rows below it one
/// GEMM — `V` is read in place, never densified, and no zero-padded flop
/// is spent.  Overwrites `w`.
pub(crate) fn trap_ctv(
    v: MatrixView<'_>,
    p: usize,
    ibp: usize,
    c: MatrixView<'_>,
    w: &mut MatrixViewMut<'_>,
    gemm: &mut GemmScratch,
) {
    let m = v.rows();
    debug_assert_eq!(c.rows(), m);
    debug_assert!(w.cols() == ibp && p + ibp <= m);
    let n = c.cols();
    // W = C1^T: column kk of W is row p + kk of C.
    for j in 0..n {
        let ccol = c.col(j);
        for kk in 0..ibp {
            w.set(j, kk, ccol[p + kk]);
        }
    }
    // W := W * V1 (V1 the ib x ib unit-lower-triangular top): ascending kk
    // reads only not-yet-updated columns i > kk.
    let be = simd::backend();
    for kk in 0..ibp {
        let vcol = v.col(p + kk);
        let (mut head, tail) = w.split_cols_at_mut(kk + 1);
        let wk = head.col_mut(kk);
        for i in kk + 1..ibp {
            let s = vcol[p + i];
            if s != 0.0 {
                simd::axpy(be, wk, s, tail.col(i - kk - 1));
            }
        }
    }
    // W += C2^T V2 (dense rows below the trapezoid's triangle).
    let r = m - p - ibp;
    if r > 0 {
        gemm_tn_scratch(
            w,
            1.0,
            c.submatrix(p + ibp, 0, r, n),
            v.submatrix(p + ibp, p, r, ibp),
            gemm,
        );
    }
}

/// `C[p.., :] -= V_p W^T` for the same unit-lower-trapezoid chunk and
/// transposed `n x ib` panel as [`trap_ctv`]: dense bottom as one GEMM
/// (using `W` as-is), then the triangular top as the trmm sweep
/// `W := W V1^T` followed by a row subtraction.  Consumes `w`.
pub(crate) fn trap_cvwt(
    v: MatrixView<'_>,
    p: usize,
    ibp: usize,
    w: &mut MatrixViewMut<'_>,
    c: &mut MatrixViewMut<'_>,
    gemm: &mut GemmScratch,
) {
    let m = v.rows();
    debug_assert_eq!(c.rows(), m);
    debug_assert!(w.cols() == ibp && p + ibp <= m);
    let n = c.cols();
    // C2 -= V2 W^T first: the GEMM must see W before the trmm rewrites it.
    let r = m - p - ibp;
    if r > 0 {
        let mut cb = c.submatrix_mut(p + ibp, 0, r, n);
        gemm_nt_scratch(
            &mut cb,
            -1.0,
            v.submatrix(p + ibp, p, r, ibp),
            w.as_view(),
            gemm,
        );
    }
    // W := W * V1^T: descending kk reads only original columns i < kk.
    let be = simd::backend();
    for kk in (0..ibp).rev() {
        let (head, mut tail) = w.split_cols_at_mut(kk);
        let wk = tail.col_mut(0);
        for i in 0..kk {
            let s = v.get(p + kk, p + i);
            if s != 0.0 {
                simd::axpy(be, wk, s, head.col(i));
            }
        }
    }
    // C1 -= W^T: row p + kk of C gets column kk of W.
    for j in 0..n {
        let ccol = c.col_mut(j);
        for kk in 0..ibp {
            ccol[p + kk] -= w.get(j, kk);
        }
    }
}

/// `W += C2^T V2_p` for one `IB`-chunk of a TTQRT-style upper-triangular
/// `V2` into the transposed `n x ib` panel `w` (column `kk` of the chunk
/// has its stored prefix of length `min(p + kk + 1, m2)`; whatever the
/// tile holds below the triangle — typically an earlier GEQRT's vectors —
/// is never read).  The common prefix rows `0..min(p, m2)` run as one
/// dense GEMM; the ragged triangular remainder first transposes the
/// `<= ib` touched `C2` rows into `aux` (an L1-resident strip) so the
/// per-reflector updates are contiguous length-`n` axpys, not strided
/// gathers.  `w` must already hold the `C1` contribution.
pub(crate) fn tri_ctv(
    v2: MatrixView<'_>,
    p: usize,
    ibp: usize,
    c: MatrixView<'_>,
    w: &mut MatrixViewMut<'_>,
    gemm: &mut GemmScratch,
    aux: &mut Vec<f64>,
) {
    let m2 = v2.rows();
    debug_assert_eq!(c.rows(), m2);
    debug_assert!(w.cols() == ibp);
    let n = c.cols();
    let rl0 = p.min(m2);
    if rl0 > 0 {
        gemm_tn_scratch(
            w,
            1.0,
            c.submatrix(0, 0, rl0, n),
            v2.submatrix(0, p, rl0, ibp),
            gemm,
        );
    }
    let rmax = (p + ibp).min(m2);
    if rmax > rl0 {
        let nrows = rmax - rl0;
        // strip row i (contiguous, length n) = C2 row rl0 + i.
        let strip = grow(aux, nrows * n);
        for j in 0..n {
            let ccol = c.col(j);
            for i in 0..nrows {
                strip[i * n + j] = ccol[rl0 + i];
            }
        }
        let be = simd::backend();
        for kk in 0..ibp {
            let rl = (p + kk + 1).min(m2);
            let vcol = v2.col(p + kk);
            let wk = w.col_mut(kk);
            for i in rl0..rl {
                let s = vcol[i];
                if s != 0.0 {
                    simd::axpy(be, wk, s, &strip[(i - rl0) * n..(i - rl0) * n + n]);
                }
            }
        }
    }
}

/// `C2 -= V2_p W^T` for the same upper-triangular chunk and transposed
/// panel as [`tri_ctv`]: dense prefix as one GEMM, ragged remainder
/// accumulated into the transposed `aux` strip with contiguous axpys and
/// folded back into the `C2` rows afterwards.
pub(crate) fn tri_cvwt(
    v2: MatrixView<'_>,
    p: usize,
    ibp: usize,
    w: MatrixView<'_>,
    c: &mut MatrixViewMut<'_>,
    gemm: &mut GemmScratch,
    aux: &mut Vec<f64>,
) {
    let m2 = v2.rows();
    debug_assert_eq!(c.rows(), m2);
    debug_assert!(w.cols() == ibp);
    let n = c.cols();
    let rl0 = p.min(m2);
    if rl0 > 0 {
        let mut cb = c.submatrix_mut(0, 0, rl0, n);
        gemm_nt_scratch(&mut cb, -1.0, v2.submatrix(0, p, rl0, ibp), w, gemm);
    }
    let rmax = (p + ibp).min(m2);
    if rmax > rl0 {
        let nrows = rmax - rl0;
        // strip row i accumulates the update of C2 row rl0 + i.
        let strip = grow(aux, nrows * n);
        strip[..nrows * n].fill(0.0);
        let be = simd::backend();
        for kk in 0..ibp {
            let rl = (p + kk + 1).min(m2);
            let vcol = v2.col(p + kk);
            let wk = w.col(kk);
            for i in rl0..rl {
                let s = vcol[i];
                if s != 0.0 {
                    simd::axpy(be, &mut strip[(i - rl0) * n..(i - rl0) * n + n], s, wk);
                }
            }
        }
        for (j, ccol) in c.cols_mut().enumerate() {
            for i in 0..nrows {
                ccol[rl0 + i] -= strip[i * n + j];
            }
        }
    }
}

/// The compact-WY representation of one factorization kernel's reflectors:
/// the `tau` scalars and the `IB`-block-diagonal of the upper-triangular
/// `T` such that `H_0 ... H_{k-1} = I - V T V^T`.
///
/// Only the `IB x IB` diagonal blocks of `T` are stored (the off-diagonal
/// entries of [`t`](TFactor::t) are zero): because `T` is upper
/// triangular, rows `k0..k` of its `larft` column recurrence only involve
/// columns `k0..k`, so each diagonal block equals the `larft` factor of
/// its chunk's reflectors alone — exactly what the `IB`-chunked apply
/// kernels consume.  Skipping the off-diagonal blocks turns the `O(k^2)`
/// reflector-dot sweep per column into an `O(IB)` one and is what makes
/// the triangle-on-triangle factorizations (TTQRT/TTLQT) cheaper than
/// their unblocked references.
///
/// `tau[i] == T[(i, i)]`; the scalars are kept alongside `T` so the
/// unblocked reference kernels (and diagnostics like
/// [`build_q`](crate::qr::build_q)) can consume the same object.
#[derive(Clone, Debug, PartialEq)]
pub struct TFactor {
    taus: Vec<f64>,
    t: Matrix,
}

impl TFactor {
    /// An empty factor for up to `kmax` reflectors.
    pub(crate) fn with_kmax(kmax: usize) -> Self {
        TFactor {
            taus: Vec::with_capacity(kmax),
            t: Matrix::zeros(kmax, kmax),
        }
    }

    /// Build a factor from parts (used by tests and by the LQ transpose
    /// wrappers).  `t` must be `taus.len()` square.
    pub fn from_parts(taus: Vec<f64>, t: Matrix) -> Self {
        assert_eq!(t.rows(), taus.len());
        assert_eq!(t.cols(), taus.len());
        TFactor { taus, t }
    }

    /// Number of reflectors.
    pub fn len(&self) -> usize {
        self.taus.len()
    }

    /// True when there are no reflectors.
    pub fn is_empty(&self) -> bool {
        self.taus.is_empty()
    }

    /// The `tau` scalars (diagonal of `T`).
    pub fn taus(&self) -> &[f64] {
        &self.taus
    }

    /// The `IB`-block-diagonal of the upper-triangular `T` matrix (see the
    /// type-level docs: off-diagonal blocks are identically zero and never
    /// consumed).
    pub fn t(&self) -> &Matrix {
        &self.t
    }

    /// Chunk start of reflector `k`: the first reflector of its `IB`-chunk.
    #[inline]
    pub(crate) fn chunk_start(k: usize) -> usize {
        k - (k % IB)
    }

    /// Append reflector `k` (its `tau` and the chunk-local dot products
    /// `vdots[l - k0] = v_l^T v_k` for `l in k0..k`, where
    /// `k0 = chunk_start(k)`) to the factor; see [`larft_append`].
    pub(crate) fn append(&mut self, tau: f64, vdots: &[f64]) {
        let k = self.taus.len();
        larft_append(&mut self.t, Self::chunk_start(k), k, tau, vdots);
        self.taus.push(tau);
    }
}

/// Reusable scratch of the blocked kernels: the `W` panel of the three-GEMM
/// apply, an auxiliary buffer (reflector dot products during factorization,
/// `T` transposes during `NoTranspose` applies) and the pack buffers of the
/// packed GEMM path.  Buffers grow on first use and are reused afterwards,
/// so a long-lived workspace — one per runtime worker — makes the kernels
/// allocation-free in steady state.
#[derive(Default, Debug)]
pub struct Workspace {
    panel: Vec<f64>,
    aux: Vec<f64>,
    gemm: GemmScratch,
}

impl Workspace {
    /// Empty workspace (buffers grow on first kernel call).
    pub fn new() -> Self {
        Self::default()
    }

    /// Workspace pre-sized for tiles up to `nb x nb`: the `W` panel, the
    /// auxiliary buffer (large enough for the `T` transpose, the chunk
    /// vdots and the `IB x nb` triangle strip of `tri_ctv`/`tri_cvwt`) and
    /// the GEMM pack buffers are allocated up front, so the first kernel
    /// call is as allocation-free as the steady state.
    pub fn for_tile(nb: usize) -> Self {
        Workspace {
            panel: vec![0.0; IB * nb.max(1)],
            aux: vec![0.0; (IB * IB).max(IB * nb)],
            gemm: GemmScratch::for_tile(nb),
        }
    }

    /// The scratch buffers (`W` panel, auxiliary, GEMM pack scratch), split
    /// so they can be borrowed independently.
    pub(crate) fn bufs(&mut self) -> (&mut Vec<f64>, &mut Vec<f64>, &mut GemmScratch) {
        (&mut self.panel, &mut self.aux, &mut self.gemm)
    }
}

/// Grow `v` to at least `len` and return the first `len` elements.
pub(crate) fn grow(v: &mut Vec<f64>, len: usize) -> &mut [f64] {
    if v.len() < len {
        v.resize(len, 0.0);
    }
    &mut v[..len]
}

/// Append column `k` to the forward compact-WY factor `t`, restricted to
/// the `IB`-diagonal block starting at `k0` (LAPACK `xLARFT` column
/// recurrence): `T[k0..k, k] = -tau * T[k0..k, k0..k] * vdots` and
/// `T[k, k] = tau`, where `vdots[l - k0] = v_l^T v_k` for `l in k0..k`.
///
/// The restriction is exact for the block-diagonal of the full factor:
/// `T` is upper triangular, so rows `k0..k` of the full recurrence
/// `T[0..k, k] = -tau * T[0..k, 0..k] * vdots_full` read zeros from every
/// column below `k0` — the chunk-local recurrence reproduces the diagonal
/// block of the full `larft` bit for bit.
pub(crate) fn larft_append(t: &mut Matrix, k0: usize, k: usize, tau: f64, vdots: &[f64]) {
    debug_assert!(k0 <= k && vdots.len() >= k - k0);
    let mut tv = t.as_view_mut();
    let (head, mut tail) = tv.split_cols_at_mut(k);
    let tcol = tail.col_mut(0);
    for x in tcol[k0..k].iter_mut() {
        *x = 0.0;
    }
    for (c, &vd) in vdots[..k - k0].iter().enumerate() {
        let s = -tau * vd;
        if s != 0.0 {
            let hcol = head.col(k0 + c);
            for l in k0..=(k0 + c) {
                tcol[l] += s * hcol[l];
            }
        }
    }
    tcol[k] = tau;
}

/// In-place `W <- T^T W` (`Trans::Transpose`, the factorization direction)
/// or `W <- T W` (`Trans::NoTranspose`), with `T` the upper-triangular
/// compact-WY factor and `W` a `k x n` panel.
///
/// Both directions process one contiguous `W` column at a time.  The
/// transposed direction reads contiguous columns of `T` directly; the
/// non-transposed one first transposes `T` into `aux` so its inner loops
/// are contiguous too.
pub(crate) fn apply_t_left(
    w: &mut MatrixViewMut<'_>,
    t: MatrixView<'_>,
    trans: Trans,
    aux: &mut Vec<f64>,
) {
    let k = t.rows();
    debug_assert_eq!(w.rows(), k);
    match trans {
        Trans::Transpose => {
            // (T^T W)[i] = sum_{l <= i} T[l, i] * w[l]: descending i keeps
            // the not-yet-overwritten entries it reads.
            for wcol in w.cols_mut() {
                for i in (0..k).rev() {
                    wcol[i] = fdot(&t.col(i)[..=i], &wcol[..=i]);
                }
            }
        }
        Trans::NoTranspose => {
            // (T W)[i] = sum_{l >= i} T[i, l] * w[l]: ascending i is
            // in-place safe; read rows of T as columns of T^T.
            let tt = grow(aux, k * k);
            for l in 0..k {
                let tcol = t.col(l);
                for i in 0..k {
                    tt[i * k + l] = tcol[i];
                }
            }
            for wcol in w.cols_mut() {
                for i in 0..k {
                    let trow = &tt[i * k..(i + 1) * k];
                    wcol[i] = fdot(&trow[i..], &wcol[i..]);
                }
            }
        }
    }
}

/// In-place right multiply of the `r x k` panel `W` by `T`
/// (`transpose_t == false`) or `T^T` (`transpose_t == true`), columns of
/// `W` combined by axpys over contiguous slices.
pub(crate) fn apply_t_right(w: &mut MatrixViewMut<'_>, t: MatrixView<'_>, transpose_t: bool) {
    let k = t.rows();
    debug_assert_eq!(w.cols(), k);
    let be = simd::backend();
    if !transpose_t {
        // (W T)[:, j] = sum_{l <= j} T[l, j] * W[:, l]: descending j.
        for j in (0..k).rev() {
            let tcol = t.col(j);
            let (left, mut right) = w.split_cols_at_mut(j);
            let wj = right.col_mut(0);
            let d = tcol[j];
            for x in wj.iter_mut() {
                *x *= d;
            }
            for (l, &s) in tcol[..j].iter().enumerate() {
                if s != 0.0 {
                    simd::axpy(be, wj, s, left.col(l));
                }
            }
        }
    } else {
        // (W T^T)[:, j] = sum_{l >= j} T[j, l] * W[:, l]: ascending j.
        for j in 0..k {
            let (mut left, right) = w.split_cols_at_mut(j + 1);
            let wj = left.col_mut(j);
            let d = t.get(j, j);
            for x in wj.iter_mut() {
                *x *= d;
            }
            for l in (j + 1)..k {
                let s = t.get(j, l);
                if s != 0.0 {
                    simd::axpy(be, wj, s, right.col(l - j - 1));
                }
            }
        }
    }
}

/// `W = C V` for the row-wise unit trapezoid `V` of a GELQT'd tile:
/// `V[j, kk]` is `1` at `j == kk`, `v[kk, j]` for `j > kk`, `0` above.
/// `c` is `r x n`, `w` is `r x k`.
pub(crate) fn lq_cv(v: MatrixView<'_>, c: MatrixView<'_>, w: &mut MatrixViewMut<'_>) {
    let n = c.cols();
    let r = c.rows();
    let k = w.cols();
    debug_assert_eq!(v.cols(), n);
    debug_assert!(v.rows() >= k && w.rows() == r);
    let be = simd::backend();
    for (kk, wcol) in w.cols_mut().enumerate() {
        wcol.copy_from_slice(c.col(kk));
        let mut j = kk + 1;
        while j + 4 <= n {
            let s = [
                v.get(kk, j),
                v.get(kk, j + 1),
                v.get(kk, j + 2),
                v.get(kk, j + 3),
            ];
            simd::axpy4(
                be,
                wcol,
                s,
                c.col(j),
                c.col(j + 1),
                c.col(j + 2),
                c.col(j + 3),
            );
            j += 4;
        }
        while j < n {
            let s = v.get(kk, j);
            if s != 0.0 {
                simd::axpy(be, wcol, s, c.col(j));
            }
            j += 1;
        }
    }
}

/// `C -= W V^T` for the same row-wise unit trapezoid `V` as [`lq_cv`]:
/// `c` is `r x n`, `w` is `r x k`.
pub(crate) fn lq_cwv(v: MatrixView<'_>, w: MatrixView<'_>, c: &mut MatrixViewMut<'_>) {
    let n = c.cols();
    let r = c.rows();
    let k = w.cols();
    debug_assert_eq!(v.cols(), n);
    debug_assert!(v.rows() >= k && w.rows() == r);
    let be = simd::backend();
    for (j, ccol) in c.cols_mut().enumerate() {
        if j < k {
            simd::axpy(be, ccol, -1.0, w.col(j));
        }
        let vcol = v.col(j);
        let kend = j.min(k);
        let mut kk = 0;
        while kk + 4 <= kend {
            let s = [-vcol[kk], -vcol[kk + 1], -vcol[kk + 2], -vcol[kk + 3]];
            simd::axpy4(
                be,
                ccol,
                s,
                w.col(kk),
                w.col(kk + 1),
                w.col(kk + 2),
                w.col(kk + 3),
            );
            kk += 4;
        }
        while kk < kend {
            let s = vcol[kk];
            if s != 0.0 {
                simd::axpy(be, ccol, -s, w.col(kk));
            }
            kk += 1;
        }
    }
}

/// `W += C2 V2` for the row-wise lower-triangular `V2` of a TTLQT'd tile:
/// row `kk` of the stored tile (a chunk starting at global reflector index
/// `off`) is non-zero only in columns `0..min(off + kk + 1, n2)`.  `W`
/// must already hold the `C1` contribution.
pub(crate) fn lq_tri_cv(
    v2: MatrixView<'_>,
    c2: MatrixView<'_>,
    w: &mut MatrixViewMut<'_>,
    off: usize,
) {
    let n2 = c2.cols();
    let r = c2.rows();
    let k = w.cols();
    debug_assert!(v2.rows() >= k && w.rows() == r);
    let be = simd::backend();
    for (kk, wcol) in w.cols_mut().enumerate() {
        let rl = (off + kk + 1).min(n2);
        let mut j = 0;
        while j + 4 <= rl {
            let s = [
                v2.get(kk, j),
                v2.get(kk, j + 1),
                v2.get(kk, j + 2),
                v2.get(kk, j + 3),
            ];
            simd::axpy4(
                be,
                wcol,
                s,
                c2.col(j),
                c2.col(j + 1),
                c2.col(j + 2),
                c2.col(j + 3),
            );
            j += 4;
        }
        while j < rl {
            let s = v2.get(kk, j);
            if s != 0.0 {
                simd::axpy(be, wcol, s, c2.col(j));
            }
            j += 1;
        }
    }
}

/// `C2 -= W V2^T` for the same row-wise lower-triangular `V2` as
/// [`lq_tri_cv`].
pub(crate) fn lq_tri_cwv(
    v2: MatrixView<'_>,
    w: MatrixView<'_>,
    c2: &mut MatrixViewMut<'_>,
    off: usize,
) {
    let r = w.rows();
    let k = w.cols();
    debug_assert!(v2.rows() >= k && c2.rows() == r);
    let be = simd::backend();
    for (j, ccol) in c2.cols_mut().enumerate() {
        let vcol = v2.col(j);
        // Row kk of the stored tile (global index off + kk) reaches column
        // j iff j < min(off + kk + 1, n2), i.e. off + kk >= j.
        let kk0 = j.saturating_sub(off);
        for (kk, &s) in vcol.iter().enumerate().take(k).skip(kk0) {
            if s != 0.0 {
                simd::axpy(be, ccol, -s, w.col(kk));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bidiag_matrix::gen::random_gaussian;

    #[test]
    fn larft_append_matches_explicit_product() {
        // Two reflectors with hand-picked vectors: check
        // H0 H1 = I - V T V^T entry-wise.
        let m = 5;
        let v = random_gaussian(m, 2, 3);
        // Normalize to unit-diagonal column vectors v0, v1 (v1 zero above row 1).
        let mut vm = Matrix::zeros(m, 2);
        for i in 0..m {
            vm.set(i, 0, if i == 0 { 1.0 } else { v.get(i, 0) });
            vm.set(
                i,
                1,
                if i == 1 {
                    1.0
                } else if i > 1 {
                    v.get(i, 1)
                } else {
                    0.0
                },
            );
        }
        let (tau0, tau1) = (0.7, 1.2);
        let mut t = Matrix::zeros(2, 2);
        larft_append(&mut t, 0, 0, tau0, &[]);
        let vdot = (0..m).map(|i| vm.get(i, 0) * vm.get(i, 1)).sum::<f64>();
        larft_append(&mut t, 0, 1, tau1, &[vdot]);

        let h = |tau: f64, col: usize| -> Matrix {
            Matrix::from_fn(m, m, |i, j| {
                (if i == j { 1.0 } else { 0.0 }) - tau * vm.get(i, col) * vm.get(j, col)
            })
        };
        let prod = h(tau0, 0).matmul(&h(tau1, 1));
        let vtv = vm.matmul(&t).matmul(&vm.transpose());
        let wy = Matrix::from_fn(m, m, |i, j| {
            (if i == j { 1.0 } else { 0.0 }) - vtv.get(i, j)
        });
        assert!(prod.sub(&wy).norm_max() < 1e-13);
    }

    #[test]
    fn chunk_local_larft_matches_the_diagonal_blocks_of_the_full_factor() {
        // Build a full forward larft T with a local reference recurrence
        // from synthetic V columns spanning two IB-chunks, then check the
        // chunk-local recurrence reproduces its diagonal blocks exactly.
        let k = IB + 3;
        let m = k + 5;
        let v = {
            let g = random_gaussian(m, k, 17);
            // Unit-lower-trapezoid V like a factored tile stores.
            Matrix::from_fn(m, k, |i, j| {
                if i == j {
                    1.0
                } else if i > j {
                    g.get(i, j)
                } else {
                    0.0
                }
            })
        };
        let taus: Vec<f64> = (0..k).map(|i| 0.3 + 0.1 * i as f64).collect();
        let vdot = |a: usize, b: usize| fdot(v.col(a), v.col(b));

        // Full (dense upper-triangular) reference recurrence.
        let mut tfull = Matrix::zeros(k, k);
        for (kk, &tau) in taus.iter().enumerate() {
            for l in 0..kk {
                let mut s = 0.0;
                for c in l..kk {
                    s += tfull.get(l, c) * vdot(c, kk);
                }
                tfull.set(l, kk, -tau * s);
            }
            tfull.set(kk, kk, tau);
        }

        // Chunk-local recurrence (what TFactor::append runs).
        let mut tblk = Matrix::zeros(k, k);
        for (kk, &tau) in taus.iter().enumerate() {
            let k0 = TFactor::chunk_start(kk);
            let vd: Vec<f64> = (k0..kk).map(|l| vdot(l, kk)).collect();
            larft_append(&mut tblk, k0, kk, tau, &vd);
        }

        for kk in 0..k {
            let k0 = TFactor::chunk_start(kk);
            for l in 0..k {
                if l >= k0 && l <= kk {
                    let d = (tblk.get(l, kk) - tfull.get(l, kk)).abs();
                    let tol = 1e-12 * (1.0 + tfull.get(l, kk).abs());
                    assert!(d < tol, "diag-block entry ({l}, {kk}) differs by {d}");
                } else {
                    assert_eq!(tblk.get(l, kk), 0.0, "off-block entry ({l}, {kk}) set");
                }
            }
        }
    }

    #[test]
    fn apply_t_left_matches_dense_products() {
        let k = 6;
        let n = 5;
        let t = {
            let g = random_gaussian(k, k, 9);
            Matrix::from_fn(k, k, |i, j| if j >= i { g.get(i, j) } else { 0.0 })
        };
        let w0 = random_gaussian(k, n, 10);
        let mut aux = Vec::new();

        let mut w = w0.clone();
        apply_t_left(
            &mut w.as_view_mut(),
            t.as_view(),
            Trans::Transpose,
            &mut aux,
        );
        assert!(w.sub(&t.transpose().matmul(&w0)).norm_max() < 1e-13);

        let mut w = w0.clone();
        apply_t_left(
            &mut w.as_view_mut(),
            t.as_view(),
            Trans::NoTranspose,
            &mut aux,
        );
        assert!(w.sub(&t.matmul(&w0)).norm_max() < 1e-13);
    }

    #[test]
    fn apply_t_right_matches_dense_products() {
        let k = 5;
        let r = 4;
        let t = {
            let g = random_gaussian(k, k, 11);
            Matrix::from_fn(k, k, |i, j| if j >= i { g.get(i, j) } else { 0.0 })
        };
        let w0 = random_gaussian(r, k, 12);

        let mut w = w0.clone();
        apply_t_right(&mut w.as_view_mut(), t.as_view(), false);
        assert!(w.sub(&w0.matmul(&t)).norm_max() < 1e-13);

        let mut w = w0.clone();
        apply_t_right(&mut w.as_view_mut(), t.as_view(), true);
        assert!(w.sub(&w0.matmul_nt(&t)).norm_max() < 1e-13);
    }
}
