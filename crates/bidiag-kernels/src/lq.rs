//! Tile kernels for the tiled LQ factorization.
//!
//! The LQ kernels are the exact duals of the QR kernels: they annihilate
//! tiles to the *right* of a pivot tile column by applying orthogonal
//! transformations from the right.  They are implemented as thin transpose
//! wrappers over the QR kernels of [`crate::qr`]: the LQ factorization of a
//! tile `A` is obtained from the QR factorization of `A^T`
//! (`A = L Q  <=>  A^T = Q^T_qr' ...`), and applying the resulting
//! orthogonal factor from the right is the transpose of applying it from the
//! left.  This keeps one single, heavily-tested code path for the numerics
//! while preserving the LAPACK storage convention for LQ (Householder
//! vectors stored row-wise in the strictly upper part of the tile).
//!
//! Costs are symmetric to the QR kernels (Table I of the paper): GELQT 4,
//! UNMLQ 6, TSLQT 6, TSMLQ 12, TTLQT 2, TTMLQ 6 (in units of `nb^3/3`).

use crate::qr::{geqrt, tsmqr, tsqrt, ttmqr, ttqrt, unmqr, Trans};
use bidiag_matrix::Matrix;

/// GELQT: in-place LQ factorization of a tile.
///
/// On exit the lower triangle of `a` (including the diagonal) holds `L` and
/// the strictly upper part holds the Householder vectors stored row-wise.
/// Returns the `tau` scalars.
pub fn gelqt(a: &mut Matrix) -> Vec<f64> {
    let mut at = a.transpose();
    let taus = geqrt(&mut at);
    *a = at.transpose();
    taus
}

/// UNMLQ: apply the orthogonal factor of a GELQT'd tile to `c` from the
/// right.  With [`Trans::Transpose`] this computes `C <- C * Q_lq^T`, which is
/// the update used by the LQ steps of the bidiagonalization; with
/// [`Trans::NoTranspose`] it computes `C <- C * Q_lq`.
pub fn unmlq(v: &Matrix, taus: &[f64], c: &mut Matrix, trans: Trans) {
    // A = L Q_lq  with  A^T = Q_qr R  and  Q_lq = Q_qr^T.
    // C * Q_lq^T = C * Q_qr       = (Q_qr^T C^T)^T  -> forward order (Transpose)
    // C * Q_lq   = C * Q_qr^T     = (Q_qr   C^T)^T  -> reverse order (NoTranspose)
    let vq = v.transpose();
    let mut ct = c.transpose();
    unmqr(&vq, taus, &mut ct, trans);
    *c = ct.transpose();
}

/// TSLQT: LQ reduction of a lower triangle with a full tile to its right.
///
/// `l1` is the lower-triangular pivot tile (tile `(k, piv)`), `a2` the tile
/// being annihilated (tile `(k, j)`).  On exit `l1` holds the updated `L` and
/// `a2` holds the Householder vectors (row-wise).  Returns `tau` scalars.
pub fn tslqt(l1: &mut Matrix, a2: &mut Matrix) -> Vec<f64> {
    let mut l1t = l1.transpose();
    let mut a2t = a2.transpose();
    let taus = tsqrt(&mut l1t, &mut a2t);
    *l1 = l1t.transpose();
    *a2 = a2t.transpose();
    taus
}

/// TSMLQ: apply the reflectors produced by [`tslqt`] to the tile pair
/// `(c1, c2)` from the right.  `c1` lives in the pivot tile column and `c2`
/// in the annihilated tile column; `v2` is the tile holding the Householder
/// vectors (the `a2` output of [`tslqt`]).
pub fn tsmlq(c1: &mut Matrix, c2: &mut Matrix, v2: &Matrix, taus: &[f64], trans: Trans) {
    let v2t = v2.transpose();
    let mut c1t = c1.transpose();
    let mut c2t = c2.transpose();
    tsmqr(&mut c1t, &mut c2t, &v2t, taus, trans);
    *c1 = c1t.transpose();
    *c2 = c2t.transpose();
}

/// TTLQT: LQ reduction of two lower triangles side by side.
///
/// `l1` is the pivot lower triangle and `l2` the lower triangle being
/// annihilated.  On exit `l1` holds the combined `L` and `l2` the Householder
/// vectors (row `k` has non-zeros only in columns `0..=k`).
pub fn ttlqt(l1: &mut Matrix, l2: &mut Matrix) -> Vec<f64> {
    let mut l1t = l1.transpose();
    let mut l2t = l2.transpose();
    let taus = ttqrt(&mut l1t, &mut l2t);
    *l1 = l1t.transpose();
    *l2 = l2t.transpose();
    taus
}

/// TTMLQ: apply the reflectors produced by [`ttlqt`] to the tile pair
/// `(c1, c2)` from the right.
pub fn ttmlq(c1: &mut Matrix, c2: &mut Matrix, v2: &Matrix, taus: &[f64], trans: Trans) {
    let v2t = v2.transpose();
    let mut c1t = c1.transpose();
    let mut c2t = c2.transpose();
    ttmqr(&mut c1t, &mut c2t, &v2t, taus, trans);
    *c1 = c1t.transpose();
    *c2 = c2t.transpose();
}

/// Explicitly build the orthogonal factor `Q_lq` (size `n x n`) of a GELQT'd
/// tile, such that `A = L * Q_lq`.  Test/diagnostic helper.
pub fn build_q_lq(v: &Matrix, taus: &[f64]) -> Matrix {
    let n = v.cols();
    let mut q = Matrix::identity(n);
    // Q_lq = Q_qr^T, and C <- C * Q_lq with C = I gives Q_lq.
    unmlq(v, taus, &mut q, Trans::NoTranspose);
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use bidiag_matrix::checks::{orthogonality_error, relative_error};
    use bidiag_matrix::gen::random_gaussian;

    fn lower_triangle_of(a: &Matrix) -> Matrix {
        Matrix::from_fn(
            a.rows(),
            a.cols(),
            |i, j| if j <= i { a.get(i, j) } else { 0.0 },
        )
    }

    #[test]
    fn gelqt_factors_tile() {
        for (m, n) in [(6, 6), (4, 9), (9, 4)] {
            let a0 = random_gaussian(m, n, (m * 10 + n) as u64);
            let mut a = a0.clone();
            let taus = gelqt(&mut a);
            let l = lower_triangle_of(&a);
            let q = build_q_lq(&a, &taus);
            assert!(orthogonality_error(&q) < 1e-13, "{m}x{n}");
            assert!(relative_error(&a0, &l.matmul(&q)) < 1e-13, "{m}x{n}");
        }
    }

    #[test]
    fn unmlq_round_trip() {
        let mut v = random_gaussian(5, 5, 60);
        let taus = gelqt(&mut v);
        let c0 = random_gaussian(3, 5, 61);
        let mut c = c0.clone();
        unmlq(&v, &taus, &mut c, Trans::Transpose);
        unmlq(&v, &taus, &mut c, Trans::NoTranspose);
        assert!(relative_error(&c0, &c) < 1e-12);
    }

    #[test]
    fn gelqt_then_apply_annihilates_right_blocks() {
        // [A1 A2] * Q^T where Q comes from LQ of A1 alone leaves A1 lower
        // triangular; this is what UNMLQ does to the trailing tile rows.
        let nb = 5;
        let a1_0 = random_gaussian(nb, nb, 62);
        let mut a1 = a1_0.clone();
        let taus = gelqt(&mut a1);
        let q = build_q_lq(&a1, &taus);
        // A1 = L * Q  =>  A1 * Q^T = L.
        let l = a1_0.matmul(&q.transpose());
        for i in 0..nb {
            for j in (i + 1)..nb {
                assert!(l.get(i, j).abs() < 1e-12, "L not lower triangular");
            }
        }
    }

    #[test]
    fn tslqt_factorization_is_consistent() {
        let nb = 5;
        let mut pivot = random_gaussian(nb, nb, 70);
        let _ = gelqt(&mut pivot);
        let l1_0 = lower_triangle_of(&pivot);
        let a2_0 = random_gaussian(nb, nb, 71);

        let mut l1 = l1_0.clone();
        let mut a2 = a2_0.clone();
        let taus = tslqt(&mut l1, &mut a2);

        // [L1_0 A2_0] = [L1_new 0] * Q for some orthogonal Q (2nb x 2nb).
        // Rebuild Q by applying the reflectors to the identity from the right.
        let mut q = Matrix::identity(2 * nb);
        let mut q_left = q.block(0, 0, 2 * nb, nb);
        let mut q_right = q.block(0, nb, 2 * nb, nb);
        tsmlq(&mut q_left, &mut q_right, &a2, &taus, Trans::NoTranspose);
        q.copy_block(0, 0, &q_left);
        q.copy_block(0, nb, &q_right);
        assert!(orthogonality_error(&q) < 1e-12);

        let mut lhs = Matrix::zeros(nb, 2 * nb);
        lhs.copy_block(0, 0, &l1_0);
        lhs.copy_block(0, nb, &a2_0);
        let mut lnew = Matrix::zeros(nb, 2 * nb);
        lnew.copy_block(0, 0, &lower_triangle_of(&l1));
        assert!(relative_error(&lhs, &lnew.matmul(&q)) < 1e-12);
    }

    #[test]
    fn tsmlq_round_trip() {
        let nb = 4;
        let mut l1 = lower_triangle_of(&random_gaussian(nb, nb, 80));
        let mut v2 = random_gaussian(nb, nb, 81);
        let taus = tslqt(&mut l1, &mut v2);
        let c1_0 = random_gaussian(3, nb, 82);
        let c2_0 = random_gaussian(3, nb, 83);
        let mut c1 = c1_0.clone();
        let mut c2 = c2_0.clone();
        tsmlq(&mut c1, &mut c2, &v2, &taus, Trans::Transpose);
        tsmlq(&mut c1, &mut c2, &v2, &taus, Trans::NoTranspose);
        assert!(relative_error(&c1_0, &c1) < 1e-12);
        assert!(relative_error(&c2_0, &c2) < 1e-12);
    }

    #[test]
    fn ttlqt_and_ttmlq_round_trip() {
        let nb = 4;
        let mut l1 = lower_triangle_of(&random_gaussian(nb, nb, 90));
        let mut l2 = lower_triangle_of(&random_gaussian(nb, nb, 91));
        let l1_0 = l1.clone();
        let l2_0 = l2.clone();
        let taus = ttlqt(&mut l1, &mut l2);

        let mut q = Matrix::identity(2 * nb);
        let mut q_left = q.block(0, 0, 2 * nb, nb);
        let mut q_right = q.block(0, nb, 2 * nb, nb);
        ttmlq(&mut q_left, &mut q_right, &l2, &taus, Trans::NoTranspose);
        q.copy_block(0, 0, &q_left);
        q.copy_block(0, nb, &q_right);
        assert!(orthogonality_error(&q) < 1e-12);

        let mut lhs = Matrix::zeros(nb, 2 * nb);
        lhs.copy_block(0, 0, &l1_0);
        lhs.copy_block(0, nb, &l2_0);
        let mut lnew = Matrix::zeros(nb, 2 * nb);
        lnew.copy_block(
            0,
            0,
            &Matrix::from_fn(nb, nb, |i, j| if j <= i { l1.get(i, j) } else { 0.0 }),
        );
        assert!(relative_error(&lhs, &lnew.matmul(&q)) < 1e-12);

        let c1_0 = random_gaussian(3, nb, 92);
        let c2_0 = random_gaussian(3, nb, 93);
        let mut c1 = c1_0.clone();
        let mut c2 = c2_0.clone();
        ttmlq(&mut c1, &mut c2, &l2, &taus, Trans::Transpose);
        ttmlq(&mut c1, &mut c2, &l2, &taus, Trans::NoTranspose);
        assert!(relative_error(&c1_0, &c1) < 1e-12);
        assert!(relative_error(&c2_0, &c2) < 1e-12);
    }
}
