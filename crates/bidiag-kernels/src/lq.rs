//! Tile kernels for the tiled LQ factorization.
//!
//! The LQ kernels are the exact duals of the QR kernels: they annihilate
//! tiles to the *right* of a pivot tile column by applying orthogonal
//! transformations from the right.  Costs are symmetric to the QR kernels
//! (Table I of the paper): GELQT 4, UNMLQ 6, TSLQT 6, TSMLQ 12, TTLQT 2,
//! TTMLQ 6 (in units of `nb^3/3`).
//!
//! The *factorization* kernels (`gelqt`/`tslqt`/`ttlqt`) are thin transpose
//! wrappers over the blocked QR factorizations of [`crate::qr`]: the LQ
//! factorization of `A` is the QR factorization of `A^T`, and the compact-WY
//! [`TFactor`] carries over unchanged.  The transposes cost `O(nb^2)` per
//! `O(nb^3)` kernel and keep one heavily-tested numerical code path.
//!
//! The *apply* kernels (`unmlq`/`tsmlq`/`ttmlq`) — which run once per
//! trailing tile and dominate the LQ steps — do **not** transpose.  They
//! apply the compact-WY product directly from the right,
//! `C -= (C V) op(T) V^T`, reading the row-wise stored Householder vectors
//! through column-contiguous sweeps; `TSMLQ` (Table I weight 12) is two
//! dense GEMMs around the small triangular `T` product, exactly like its
//! QR twin.
//!
//! The unblocked `*_unblocked` references mirror LAPACK via transposition of
//! the unblocked QR kernels and remain the oracle for the property tests.

use crate::qr::{
    geqrt, geqrt_unblocked, tsmqr_unblocked, tsqrt, tsqrt_unblocked, ttmqr_unblocked, ttqrt,
    ttqrt_unblocked, unmqr_unblocked, Trans,
};
use crate::wy::{
    apply_t_right, chunk_order, grow, lq_cv, lq_cwv, lq_tri_cv, lq_tri_cwv, TFactor, Workspace,
};
use bidiag_matrix::gemm::{gemm_nn_scratch, gemm_nt_scratch};
use bidiag_matrix::{Matrix, MatrixViewMut};

/// GELQT: in-place LQ factorization of a tile.
///
/// On exit the lower triangle of `a` (including the diagonal) holds `L` and
/// the strictly upper part holds the Householder vectors stored row-wise.
/// Returns the compact-WY [`TFactor`] consumed by [`unmlq`].
pub fn gelqt(a: &mut Matrix, ws: &mut Workspace) -> TFactor {
    let mut at = a.transpose();
    let tf = geqrt(&mut at, ws);
    *a = at.transpose();
    tf
}

/// GELQT, unblocked reference returning the raw `tau` scalars.
pub fn gelqt_unblocked(a: &mut Matrix) -> Vec<f64> {
    let mut at = a.transpose();
    let taus = geqrt_unblocked(&mut at);
    *a = at.transpose();
    taus
}

/// UNMLQ: apply the orthogonal factor of a GELQT'd tile to `c` from the
/// right.  With [`Trans::Transpose`] this computes `C <- C * Q_lq^T`, which
/// is the update used by the LQ steps of the bidiagonalization; with
/// [`Trans::NoTranspose`] it computes `C <- C * Q_lq`.
///
/// Runs the right-sided compact-WY sweep `C -= (C V) op(T) V^T` without
/// forming any transpose.
pub fn unmlq(v: &Matrix, tf: &TFactor, c: &mut Matrix, trans: Trans, ws: &mut Workspace) {
    let n = c.cols();
    assert_eq!(v.cols(), n, "UNMLQ: V and C column mismatch");
    let r = c.rows();
    let k = tf.len();
    if k == 0 || r == 0 {
        return;
    }
    let (panel, _, _) = ws.bufs();
    // With A = L Q_lq, A^T = Q_qr R and Q_lq = Q_qr^T:
    //   C Q_lq^T = C Q_qr   = C - (C V) T   V^T   (Transpose),
    //   C Q_lq   = C Q_qr^T = C - (C V) T^T V^T   (NoTranspose).
    for (p, ibp) in chunk_order(k, trans) {
        let mut w = MatrixViewMut::new(grow(panel, r * ibp), r, ibp, r);
        let vp = v.view(p, p, ibp, n - p);
        lq_cv(vp, c.view(0, p, r, n - p), &mut w);
        apply_t_right(
            &mut w,
            tf.t().view(p, p, ibp, ibp),
            matches!(trans, Trans::NoTranspose),
        );
        let mut cv = c.as_view_mut();
        let mut cp = cv.submatrix_mut(0, p, r, n - p);
        lq_cwv(vp, w.as_view(), &mut cp);
    }
}

/// UNMLQ, unblocked reference (transpose wrapper over the unblocked UNMQR).
pub fn unmlq_unblocked(v: &Matrix, taus: &[f64], c: &mut Matrix, trans: Trans) {
    let vq = v.transpose();
    let mut ct = c.transpose();
    unmqr_unblocked(&vq, taus, &mut ct, trans);
    *c = ct.transpose();
}

/// TSLQT: LQ reduction of a lower triangle with a full tile to its right.
///
/// `l1` is the lower-triangular pivot tile (tile `(k, piv)`), `a2` the tile
/// being annihilated (tile `(k, j)`).  On exit `l1` holds the updated `L`
/// and `a2` holds the Householder vectors (row-wise).  Returns the
/// [`TFactor`].
pub fn tslqt(l1: &mut Matrix, a2: &mut Matrix, ws: &mut Workspace) -> TFactor {
    let mut l1t = l1.transpose();
    let mut a2t = a2.transpose();
    let tf = tsqrt(&mut l1t, &mut a2t, ws);
    *l1 = l1t.transpose();
    *a2 = a2t.transpose();
    tf
}

/// TSLQT, unblocked reference.
pub fn tslqt_unblocked(l1: &mut Matrix, a2: &mut Matrix) -> Vec<f64> {
    let mut l1t = l1.transpose();
    let mut a2t = a2.transpose();
    let taus = tsqrt_unblocked(&mut l1t, &mut a2t);
    *l1 = l1t.transpose();
    *a2 = a2t.transpose();
    taus
}

/// TSMLQ: apply the reflectors produced by [`tslqt`] to the tile pair
/// `(c1, c2)` from the right.  `c1` lives in the pivot tile column and `c2`
/// in the annihilated tile column; `v2` is the tile holding the Householder
/// vectors (the `a2` output of [`tslqt`]).
///
/// Like its QR twin this is a Table I weight-12 kernel and runs as two dense
/// GEMMs around the small triangular `T` product.
pub fn tsmlq(
    c1: &mut Matrix,
    c2: &mut Matrix,
    v2: &Matrix,
    tf: &TFactor,
    trans: Trans,
    ws: &mut Workspace,
) {
    let r = c1.rows();
    assert_eq!(c2.rows(), r, "TSMLQ: row mismatch");
    let n2 = c2.cols();
    assert_eq!(v2.cols(), n2, "TSMLQ: V2 column mismatch");
    let k = tf.len();
    if k == 0 || r == 0 {
        return;
    }
    assert!(
        c1.cols() >= k,
        "TSMLQ: C1 has fewer columns than reflectors"
    );
    let (panel, _, gemm) = ws.bufs();
    for (p, ibp) in chunk_order(k, trans) {
        let mut w = MatrixViewMut::new(grow(panel, r * ibp), r, ibp, r);
        let v2p = v2.view(p, 0, ibp, n2);
        // W = C1[:, p..p+ib] + C2 V2_p  (V2[j, kk] = v2[kk, j], dense).
        for (kk, wcol) in w.cols_mut().enumerate() {
            wcol.copy_from_slice(c1.col(p + kk));
        }
        gemm_nt_scratch(&mut w, 1.0, c2.as_view(), v2p, gemm);
        // W = W op(T_pp).
        apply_t_right(
            &mut w,
            tf.t().view(p, p, ibp, ibp),
            matches!(trans, Trans::NoTranspose),
        );
        // C1[:, p..p+ib] -= W;  C2 -= W V2_p^T.
        for kk in 0..ibp {
            let wcol = w.col(kk);
            let ccol = c1.col_mut(p + kk);
            for i in 0..r {
                ccol[i] -= wcol[i];
            }
        }
        gemm_nn_scratch(&mut c2.as_view_mut(), -1.0, w.as_view(), v2p, gemm);
    }
}

/// TSMLQ, unblocked reference.
pub fn tsmlq_unblocked(c1: &mut Matrix, c2: &mut Matrix, v2: &Matrix, taus: &[f64], trans: Trans) {
    let v2t = v2.transpose();
    let mut c1t = c1.transpose();
    let mut c2t = c2.transpose();
    tsmqr_unblocked(&mut c1t, &mut c2t, &v2t, taus, trans);
    *c1 = c1t.transpose();
    *c2 = c2t.transpose();
}

/// TTLQT: LQ reduction of two lower triangles side by side.
///
/// `l1` is the pivot lower triangle and `l2` the lower triangle being
/// annihilated.  On exit `l1` holds the combined `L` and `l2` the
/// Householder vectors (row `k` has non-zeros only in columns `0..=k`; the
/// strictly upper part of `l2` is never touched).  Returns the [`TFactor`].
pub fn ttlqt(l1: &mut Matrix, l2: &mut Matrix, ws: &mut Workspace) -> TFactor {
    let mut l1t = l1.transpose();
    let mut l2t = l2.transpose();
    let tf = ttqrt(&mut l1t, &mut l2t, ws);
    *l1 = l1t.transpose();
    *l2 = l2t.transpose();
    tf
}

/// TTLQT, unblocked reference.
pub fn ttlqt_unblocked(l1: &mut Matrix, l2: &mut Matrix) -> Vec<f64> {
    let mut l1t = l1.transpose();
    let mut l2t = l2.transpose();
    let taus = ttqrt_unblocked(&mut l1t, &mut l2t);
    *l1 = l1t.transpose();
    *l2 = l2t.transpose();
    taus
}

/// TTMLQ: apply the reflectors produced by [`ttlqt`] to the tile pair
/// `(c1, c2)` from the right.  The k-th reflector touches column `k` of
/// `c1` and columns `0..=k` of `c2`; the triangular structure of `v2` is
/// respected, so whatever its strictly upper part holds (typically the
/// row-wise vectors of an earlier GELQT) is never read.
pub fn ttmlq(
    c1: &mut Matrix,
    c2: &mut Matrix,
    v2: &Matrix,
    tf: &TFactor,
    trans: Trans,
    ws: &mut Workspace,
) {
    let r = c1.rows();
    assert_eq!(c2.rows(), r, "TTMLQ: row mismatch");
    let n2 = c2.cols();
    assert_eq!(v2.cols(), n2, "TTMLQ: V2 column mismatch");
    let k = tf.len();
    if k == 0 || r == 0 {
        return;
    }
    assert!(
        c1.cols() >= k,
        "TTMLQ: C1 has fewer columns than reflectors"
    );
    let (panel, _, _) = ws.bufs();
    for (p, ibp) in chunk_order(k, trans) {
        let mut w = MatrixViewMut::new(grow(panel, r * ibp), r, ibp, r);
        let v2p = v2.view(p, 0, ibp, n2);
        // W = C1[:, p..p+ib] + C2 V2_p  (triangular V2).
        for (kk, wcol) in w.cols_mut().enumerate() {
            wcol.copy_from_slice(c1.col(p + kk));
        }
        lq_tri_cv(v2p, c2.as_view(), &mut w, p);
        apply_t_right(
            &mut w,
            tf.t().view(p, p, ibp, ibp),
            matches!(trans, Trans::NoTranspose),
        );
        for kk in 0..ibp {
            let wcol = w.col(kk);
            let ccol = c1.col_mut(p + kk);
            for i in 0..r {
                ccol[i] -= wcol[i];
            }
        }
        lq_tri_cwv(v2p, w.as_view(), &mut c2.as_view_mut(), p);
    }
}

/// TTMLQ, unblocked reference.
pub fn ttmlq_unblocked(c1: &mut Matrix, c2: &mut Matrix, v2: &Matrix, taus: &[f64], trans: Trans) {
    let v2t = v2.transpose();
    let mut c1t = c1.transpose();
    let mut c2t = c2.transpose();
    ttmqr_unblocked(&mut c1t, &mut c2t, &v2t, taus, trans);
    *c1 = c1t.transpose();
    *c2 = c2t.transpose();
}

/// Explicitly build the orthogonal factor `Q_lq` (size `n x n`) of a GELQT'd
/// tile, such that `A = L * Q_lq`.  Test/diagnostic helper.
pub fn build_q_lq(v: &Matrix, taus: &[f64]) -> Matrix {
    let n = v.cols();
    let mut q = Matrix::identity(n);
    // Q_lq = Q_qr^T, and C <- C * Q_lq with C = I gives Q_lq.
    unmlq_unblocked(v, taus, &mut q, Trans::NoTranspose);
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use bidiag_matrix::checks::lower_triangle_of;
    use bidiag_matrix::checks::{orthogonality_error, relative_error};
    use bidiag_matrix::gen::random_gaussian;

    #[test]
    fn gelqt_factors_tile() {
        let mut ws = Workspace::new();
        for (m, n) in [(6, 6), (4, 9), (9, 4)] {
            let a0 = random_gaussian(m, n, (m * 10 + n) as u64);
            let mut a = a0.clone();
            let tf = gelqt(&mut a, &mut ws);
            let l = lower_triangle_of(&a);
            let q = build_q_lq(&a, tf.taus());
            assert!(orthogonality_error(&q) < 1e-13, "{m}x{n}");
            assert!(relative_error(&a0, &l.matmul(&q)) < 1e-13, "{m}x{n}");
        }
    }

    #[test]
    fn unmlq_matches_unblocked_reference() {
        let mut ws = Workspace::new();
        for (r, n) in [(3, 5), (5, 5), (1, 6), (7, 4)] {
            let mut v = random_gaussian(n.min(4), n, 60);
            let tf = gelqt(&mut v, &mut ws);
            let c0 = random_gaussian(r, n, 61);
            for trans in [Trans::Transpose, Trans::NoTranspose] {
                let mut cb = c0.clone();
                unmlq(&v, &tf, &mut cb, trans, &mut ws);
                let mut cu = c0.clone();
                unmlq_unblocked(&v, tf.taus(), &mut cu, trans);
                assert!(
                    relative_error(&cu, &cb) < 1e-13,
                    "blocked UNMLQ differs, {r}x{n} {trans:?}"
                );
            }
        }
    }

    #[test]
    fn unmlq_round_trip() {
        let mut ws = Workspace::new();
        let mut v = random_gaussian(5, 5, 60);
        let tf = gelqt(&mut v, &mut ws);
        let c0 = random_gaussian(3, 5, 61);
        let mut c = c0.clone();
        unmlq(&v, &tf, &mut c, Trans::Transpose, &mut ws);
        unmlq(&v, &tf, &mut c, Trans::NoTranspose, &mut ws);
        assert!(relative_error(&c0, &c) < 1e-12);
    }

    #[test]
    fn gelqt_then_apply_annihilates_right_blocks() {
        // [A1 A2] * Q^T where Q comes from LQ of A1 alone leaves A1 lower
        // triangular; this is what UNMLQ does to the trailing tile rows.
        let nb = 5;
        let mut ws = Workspace::new();
        let a1_0 = random_gaussian(nb, nb, 62);
        let mut a1 = a1_0.clone();
        let tf = gelqt(&mut a1, &mut ws);
        let q = build_q_lq(&a1, tf.taus());
        // A1 = L * Q  =>  A1 * Q^T = L.
        let l = a1_0.matmul(&q.transpose());
        for i in 0..nb {
            for j in (i + 1)..nb {
                assert!(l.get(i, j).abs() < 1e-12, "L not lower triangular");
            }
        }
    }

    #[test]
    fn tslqt_factorization_is_consistent() {
        let nb = 5;
        let mut ws = Workspace::new();
        let mut pivot = random_gaussian(nb, nb, 70);
        let _ = gelqt(&mut pivot, &mut ws);
        let l1_0 = lower_triangle_of(&pivot);
        let a2_0 = random_gaussian(nb, nb, 71);

        let mut l1 = l1_0.clone();
        let mut a2 = a2_0.clone();
        let tf = tslqt(&mut l1, &mut a2, &mut ws);

        // [L1_0 A2_0] = [L1_new 0] * Q for some orthogonal Q (2nb x 2nb).
        // Rebuild Q by applying the reflectors to the identity from the right.
        let mut q = Matrix::identity(2 * nb);
        let mut q_left = q.block(0, 0, 2 * nb, nb);
        let mut q_right = q.block(0, nb, 2 * nb, nb);
        tsmlq(
            &mut q_left,
            &mut q_right,
            &a2,
            &tf,
            Trans::NoTranspose,
            &mut ws,
        );
        q.copy_block(0, 0, &q_left);
        q.copy_block(0, nb, &q_right);
        assert!(orthogonality_error(&q) < 1e-12);

        let mut lhs = Matrix::zeros(nb, 2 * nb);
        lhs.copy_block(0, 0, &l1_0);
        lhs.copy_block(0, nb, &a2_0);
        let mut lnew = Matrix::zeros(nb, 2 * nb);
        lnew.copy_block(0, 0, &lower_triangle_of(&l1));
        assert!(relative_error(&lhs, &lnew.matmul(&q)) < 1e-12);
    }

    #[test]
    fn tsmlq_matches_unblocked_reference() {
        let nb = 4;
        let mut ws = Workspace::new();
        let mut l1 = lower_triangle_of(&random_gaussian(nb, nb, 80));
        let mut v2 = random_gaussian(nb, nb, 81);
        let tf = tslqt(&mut l1, &mut v2, &mut ws);
        let c1_0 = random_gaussian(3, nb, 82);
        let c2_0 = random_gaussian(3, nb, 83);
        for trans in [Trans::Transpose, Trans::NoTranspose] {
            let mut b1 = c1_0.clone();
            let mut b2 = c2_0.clone();
            tsmlq(&mut b1, &mut b2, &v2, &tf, trans, &mut ws);
            let mut u1 = c1_0.clone();
            let mut u2 = c2_0.clone();
            tsmlq_unblocked(&mut u1, &mut u2, &v2, tf.taus(), trans);
            assert!(relative_error(&u1, &b1) < 1e-13, "{trans:?}");
            assert!(relative_error(&u2, &b2) < 1e-13, "{trans:?}");
        }
    }

    #[test]
    fn tsmlq_round_trip() {
        let nb = 4;
        let mut ws = Workspace::new();
        let mut l1 = lower_triangle_of(&random_gaussian(nb, nb, 80));
        let mut v2 = random_gaussian(nb, nb, 81);
        let tf = tslqt(&mut l1, &mut v2, &mut ws);
        let c1_0 = random_gaussian(3, nb, 82);
        let c2_0 = random_gaussian(3, nb, 83);
        let mut c1 = c1_0.clone();
        let mut c2 = c2_0.clone();
        tsmlq(&mut c1, &mut c2, &v2, &tf, Trans::Transpose, &mut ws);
        tsmlq(&mut c1, &mut c2, &v2, &tf, Trans::NoTranspose, &mut ws);
        assert!(relative_error(&c1_0, &c1) < 1e-12);
        assert!(relative_error(&c2_0, &c2) < 1e-12);
    }

    #[test]
    fn ttlqt_and_ttmlq_round_trip() {
        let nb = 4;
        let mut ws = Workspace::new();
        let mut l1 = lower_triangle_of(&random_gaussian(nb, nb, 90));
        let mut l2 = lower_triangle_of(&random_gaussian(nb, nb, 91));
        let l1_0 = l1.clone();
        let l2_0 = l2.clone();
        let tf = ttlqt(&mut l1, &mut l2, &mut ws);

        let mut q = Matrix::identity(2 * nb);
        let mut q_left = q.block(0, 0, 2 * nb, nb);
        let mut q_right = q.block(0, nb, 2 * nb, nb);
        ttmlq(
            &mut q_left,
            &mut q_right,
            &l2,
            &tf,
            Trans::NoTranspose,
            &mut ws,
        );
        q.copy_block(0, 0, &q_left);
        q.copy_block(0, nb, &q_right);
        assert!(orthogonality_error(&q) < 1e-12);

        let mut lhs = Matrix::zeros(nb, 2 * nb);
        lhs.copy_block(0, 0, &l1_0);
        lhs.copy_block(0, nb, &l2_0);
        let mut lnew = Matrix::zeros(nb, 2 * nb);
        lnew.copy_block(
            0,
            0,
            &Matrix::from_fn(nb, nb, |i, j| if j <= i { l1.get(i, j) } else { 0.0 }),
        );
        assert!(relative_error(&lhs, &lnew.matmul(&q)) < 1e-12);

        let c1_0 = random_gaussian(3, nb, 92);
        let c2_0 = random_gaussian(3, nb, 93);
        let mut c1 = c1_0.clone();
        let mut c2 = c2_0.clone();
        ttmlq(&mut c1, &mut c2, &l2, &tf, Trans::Transpose, &mut ws);
        ttmlq(&mut c1, &mut c2, &l2, &tf, Trans::NoTranspose, &mut ws);
        assert!(relative_error(&c1_0, &c1) < 1e-12);
        assert!(relative_error(&c2_0, &c2) < 1e-12);
    }

    #[test]
    fn ttmlq_ignores_the_strictly_upper_part_of_v2() {
        let nb = 4;
        let mut ws = Workspace::new();
        let mut l1 = lower_triangle_of(&random_gaussian(nb, nb, 90));
        let mut l2 = lower_triangle_of(&random_gaussian(nb, nb, 91));
        let tf = ttlqt(&mut l1, &mut l2, &mut ws);
        let mut poisoned = l2.clone();
        for j in 0..nb {
            for i in 0..j {
                poisoned.set(i, j, 1e30);
            }
        }
        let c1_0 = random_gaussian(3, nb, 92);
        let c2_0 = random_gaussian(3, nb, 93);
        let mut b1 = c1_0.clone();
        let mut b2 = c2_0.clone();
        ttmlq(&mut b1, &mut b2, &poisoned, &tf, Trans::Transpose, &mut ws);
        let mut u1 = c1_0.clone();
        let mut u2 = c2_0.clone();
        ttmlq_unblocked(&mut u1, &mut u2, &l2, tf.taus(), Trans::Transpose);
        assert!(relative_error(&u1, &b1) < 1e-13);
        assert!(relative_error(&u2, &b2) < 1e-13);
    }
}
