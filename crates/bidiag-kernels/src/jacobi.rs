//! One-sided Jacobi SVD.
//!
//! This is *not* part of the paper's algorithms: it is an independent,
//! slow-but-extremely-reliable singular value solver used as a test oracle
//! throughout the reproduction.  Keeping an oracle that shares no code with
//! the bidiagonalization pipeline lets the integration tests certify the
//! whole GE2BND → BND2BD → BD2VAL chain end to end.

use bidiag_matrix::Matrix;

/// Compute all singular values of a dense matrix with the one-sided Jacobi
/// method, returned in non-increasing order.
///
/// Complexity is `O(min(m,n)^2 * max(m,n))` per sweep with a handful of
/// sweeps; use it only for modest sizes (tests, oracles).
pub fn jacobi_singular_values(a: &Matrix) -> Vec<f64> {
    // Work on the version with at least as many rows as columns.
    let mut w = if a.rows() >= a.cols() {
        a.clone()
    } else {
        a.transpose()
    };
    let n = w.cols();
    if n == 0 {
        return Vec::new();
    }
    let m = w.rows();
    let eps = f64::EPSILON;
    let tol = eps * (n as f64).sqrt();
    let max_sweeps = 60;

    for _ in 0..max_sweeps {
        let mut converged = true;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries of the (p, q) column pair.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for i in 0..m {
                    let x = w.get(i, p);
                    let y = w.get(i, q);
                    app += x * x;
                    aqq += y * y;
                    apq += x * y;
                }
                if apq.abs() <= tol * (app * aqq).sqrt() || apq == 0.0 {
                    continue;
                }
                converged = false;
                // Jacobi rotation that annihilates the (p, q) Gram entry.
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let x = w.get(i, p);
                    let y = w.get(i, q);
                    w.set(i, p, c * x - s * y);
                    w.set(i, q, s * x + c * y);
                }
            }
        }
        if converged {
            break;
        }
    }

    let mut sigmas: Vec<f64> = (0..n)
        .map(|j| {
            let mut s = 0.0;
            for i in 0..m {
                s += w.get(i, j) * w.get(i, j);
            }
            s.sqrt()
        })
        .collect();
    sigmas.sort_by(|a, b| b.partial_cmp(a).unwrap());
    sigmas
}

#[cfg(test)]
mod tests {
    use super::*;
    use bidiag_matrix::checks::singular_values_match;
    use bidiag_matrix::gen::{latms, SpectrumKind};

    #[test]
    fn recovers_prescribed_spectrum() {
        let spectrum = vec![10.0, 5.0, 2.0, 1.0, 0.1];
        let (a, sigma) = latms(12, 5, &SpectrumKind::Explicit(spectrum), 9);
        let s = jacobi_singular_values(&a);
        assert!(singular_values_match(&s, &sigma, 1e-12));
    }

    #[test]
    fn wide_matrix_handled_by_transposition() {
        let spectrum = vec![4.0, 3.0, 2.0];
        let (a, sigma) = latms(3, 9, &SpectrumKind::Explicit(spectrum.clone()), 10);
        let s = jacobi_singular_values(&a);
        assert!(singular_values_match(&s, &sigma, 1e-12));
    }

    #[test]
    fn identity_and_zero() {
        let s = jacobi_singular_values(&Matrix::identity(4));
        assert!(singular_values_match(&s, &[1.0; 4], 1e-14));
        let z = jacobi_singular_values(&Matrix::zeros(3, 3));
        assert_eq!(z, vec![0.0; 3]);
    }
}
