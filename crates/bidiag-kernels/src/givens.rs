//! Givens (plane) rotations.
//!
//! Used by the band-to-bidiagonal bulge-chasing stage (`BND2BD`) and by the
//! implicit-shift bidiagonal QR singular value iteration.

/// A Givens rotation `G = [[c, s], [-s, c]]` chosen so that
/// `G^T * [f, g]^T = [r, 0]^T`.
#[derive(Clone, Copy, Debug)]
pub struct Givens {
    /// Cosine component.
    pub c: f64,
    /// Sine component.
    pub s: f64,
    /// The resulting non-zero value `r`.
    pub r: f64,
}

/// Compute the Givens rotation zeroing `g` against `f` (LAPACK `dlartg`).
pub fn givens(f: f64, g: f64) -> Givens {
    if g == 0.0 {
        Givens {
            c: 1.0,
            s: 0.0,
            r: f,
        }
    } else if f == 0.0 {
        Givens {
            c: 0.0,
            s: 1.0,
            r: g,
        }
    } else {
        let r = f.hypot(g);
        let r = if f >= 0.0 { r } else { -r };
        Givens {
            c: f / r,
            s: g / r,
            r,
        }
    }
}

impl Givens {
    /// Apply the rotation to the pair `(x, y)`, returning the rotated pair
    /// `(c*x + s*y, -s*x + c*y)`.
    #[inline]
    pub fn apply(&self, x: f64, y: f64) -> (f64, f64) {
        (self.c * x + self.s * y, -self.s * x + self.c * y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn givens_zeroes_second_component() {
        for (f, g) in [
            (3.0, 4.0),
            (-1.0, 2.0),
            (0.0, 5.0),
            (2.0, 0.0),
            (-3.0, -4.0),
        ] {
            let rot = givens(f, g);
            let (r, z) = rot.apply(f, g);
            assert!(z.abs() < 1e-14, "z = {z} for ({f}, {g})");
            assert!((r.abs() - f.hypot(g)).abs() < 1e-12);
            // Rotation is orthogonal: c^2 + s^2 = 1 (unless both inputs are 0).
            if f != 0.0 || g != 0.0 {
                assert!((rot.c * rot.c + rot.s * rot.s - 1.0).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn apply_preserves_norm() {
        let rot = givens(1.5, -2.5);
        let (a, b) = rot.apply(0.3, 0.7);
        assert!((a.hypot(b) - 0.3_f64.hypot(0.7)).abs() < 1e-14);
    }
}
