//! Givens (plane) rotations.
//!
//! Used by the band-to-bidiagonal bulge-chasing stage (`BND2BD`) and by the
//! implicit-shift bidiagonal QR singular value iteration.

/// A Givens rotation `G = [[c, s], [-s, c]]` chosen so that
/// `G^T * [f, g]^T = [r, 0]^T`.
#[derive(Clone, Copy, Debug)]
pub struct Givens {
    /// Cosine component.
    pub c: f64,
    /// Sine component.
    pub s: f64,
    /// The resulting non-zero value `r`.
    pub r: f64,
}

/// Compute the Givens rotation zeroing `g` against `f`, following the LAPACK
/// `dlartg` sign convention: the sign of `r` follows the larger-magnitude
/// input (so `c >= 0` whenever `|f| > |g|`).  Taking the sign from `f`
/// unconditionally — as a naive implementation does — flips the sign of a
/// whole row/column whenever a small leading entry happens to be negative,
/// and over the `O(n^2)` rotation chains of the bulge chase those avoidable
/// flips accumulate as drift in the trailing band.
pub fn givens(f: f64, g: f64) -> Givens {
    if g == 0.0 {
        Givens {
            c: 1.0,
            s: 0.0,
            r: f,
        }
    } else if f == 0.0 {
        Givens {
            c: 0.0,
            s: 1.0,
            r: g,
        }
    } else {
        let d = f.hypot(g);
        let mut c = f / d;
        let mut s = g / d;
        let mut r = d;
        if f.abs() > g.abs() && c < 0.0 {
            c = -c;
            s = -s;
            r = -r;
        }
        Givens { c, s, r }
    }
}

impl Givens {
    /// Apply the rotation to the pair `(x, y)`, returning the rotated pair
    /// `(c*x + s*y, -s*x + c*y)`.
    #[inline]
    pub fn apply(&self, x: f64, y: f64) -> (f64, f64) {
        (self.c * x + self.s * y, -self.s * x + self.c * y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn givens_zeroes_second_component() {
        for (f, g) in [
            (3.0, 4.0),
            (-1.0, 2.0),
            (0.0, 5.0),
            (2.0, 0.0),
            (-3.0, -4.0),
        ] {
            let rot = givens(f, g);
            let (r, z) = rot.apply(f, g);
            assert!(z.abs() < 1e-14, "z = {z} for ({f}, {g})");
            assert!((r.abs() - f.hypot(g)).abs() < 1e-12);
            // Rotation is orthogonal: c^2 + s^2 = 1 (unless both inputs are 0).
            if f != 0.0 || g != 0.0 {
                assert!((rot.c * rot.c + rot.s * rot.s - 1.0).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn dlartg_sign_convention() {
        // |f| > |g|: c > 0 and the sign of r follows f.
        let rot = givens(-3.0, 2.0);
        assert!(rot.c > 0.0 && rot.r < 0.0);
        let rot = givens(3.0, -2.0);
        assert!(rot.c > 0.0 && rot.r > 0.0);
        // |g| > |f|: plain normalisation, r keeps the sign of the
        // untouched f-based quotient (c keeps sign of f).
        let rot = givens(-2.0, 3.0);
        assert!(rot.r > 0.0 && rot.c < 0.0);
        // Degenerate cases pass through.
        assert_eq!(givens(-5.0, 0.0).r, -5.0);
        assert_eq!(givens(0.0, -5.0).r, -5.0);
    }

    #[test]
    fn apply_preserves_norm() {
        let rot = givens(1.5, -2.5);
        let (a, b) = rot.apply(0.3, 0.7);
        assert!((a.hypot(b) - 0.3_f64.hypot(0.7)).abs() < 1e-14);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The rotation is orthogonal, annihilates `g`, reproduces `r`, and
        /// obeys the dlartg sign rule, over many magnitude scales.
        #[test]
        fn givens_properties(
            f in -1.0e8_f64..1.0e8,
            g in -1.0e8_f64..1.0e8,
            scale in 0_u32..16,
        ) {
            let s = 10.0_f64.powi(2 * scale as i32 - 16);
            let (f, g) = (f * s, g * s);
            let rot = givens(f, g);
            if f != 0.0 || g != 0.0 {
                prop_assert!((rot.c * rot.c + rot.s * rot.s - 1.0).abs() < 1e-14);
            }
            let (r, z) = rot.apply(f, g);
            let norm = f.hypot(g);
            prop_assert!(z.abs() <= 1e-14 * norm.max(1.0e-300));
            prop_assert!((r - rot.r).abs() <= 1e-12 * norm.max(1.0e-300));
            if f.abs() > g.abs() {
                // Larger-magnitude component dictates the sign: c >= 0.
                prop_assert!(rot.c >= 0.0, "c = {} for ({f}, {g})", rot.c);
            }
        }
    }
}
