//! Singular values of a bidiagonal matrix (`BD2VAL`).
//!
//! The solvers themselves live in the dedicated [`bidiag_svd`] subsystem
//! crate — a dqds fast path, a spectrum-slicing parallel path and the
//! per-value bisection oracle behind one [`bidiag_svd::Bd2ValOptions`]
//! switch; this module re-exports them and keeps the historical
//! kernel-level entry points:
//!
//! * [`bidiagonal_singular_values`] — the *bisection oracle* (unchanged
//!   numerics contract: maximally robust, one independent bracket per
//!   value), used by the baselines and as the reference of every property
//!   test,
//! * [`singular_values`] — the same oracle over a [`Bidiagonal`] factor.
//!
//! Production callers pick their algorithm through
//! [`bidiag_svd::singular_values_with`] (the GE2VAL pipeline defaults to
//! dqds); see the `bidiag-svd` crate docs for the algorithm menu.

use crate::gebd2::Bidiagonal;

pub use bidiag_svd::{
    bisection_singular_values, dqds_singular_values, singular_values_with, Bd2ValOptions,
    GkBisection, GkSturm, SvdSolver,
};

/// Singular values of the bidiagonal matrix with main diagonal `d` and
/// superdiagonal `e`, returned in non-increasing order.
///
/// Runs the per-value bisection oracle to relative accuracy (see
/// [`GkBisection`]); this is the reference-numerics path — the pipeline's
/// production solver is selected via [`Bd2ValOptions`] instead.
pub fn bidiagonal_singular_values(d: &[f64], e: &[f64]) -> Vec<f64> {
    bisection_singular_values(d, e)
}

/// Convenience wrapper over [`bidiagonal_singular_values`] for a
/// [`Bidiagonal`] factor.
pub fn singular_values(b: &Bidiagonal) -> Vec<f64> {
    bidiagonal_singular_values(&b.diag, &b.superdiag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gebd2::gebd2;
    use crate::jacobi::jacobi_singular_values;
    use bidiag_matrix::checks::singular_values_match;
    use bidiag_matrix::gen::{latms, random_gaussian, SpectrumKind};
    use bidiag_matrix::Matrix;

    #[test]
    fn diagonal_matrix_singular_values() {
        let d = vec![3.0, -1.0, 2.0];
        let e = vec![0.0, 0.0];
        let s = bidiagonal_singular_values(&d, &e);
        assert!(singular_values_match(&s, &[3.0, 2.0, 1.0], 1e-14));
    }

    #[test]
    fn two_by_two_known_values() {
        // B = [[1, 1], [0, 1]]: singular values are golden-ratio related:
        // sigma = sqrt((3 +- sqrt(5)) / 2).
        let s = bidiagonal_singular_values(&[1.0, 1.0], &[1.0]);
        let expected = [
            ((3.0 + 5.0_f64.sqrt()) / 2.0).sqrt(),
            ((3.0 - 5.0_f64.sqrt()) / 2.0).sqrt(),
        ];
        assert!(singular_values_match(&s, &expected, 1e-13));
    }

    #[test]
    fn matches_jacobi_on_random_bidiagonal() {
        for n in [5usize, 16, 33] {
            let g = random_gaussian(n, 2, n as u64);
            let d: Vec<f64> = (0..n).map(|i| g.get(i, 0)).collect();
            let e: Vec<f64> = (0..n - 1).map(|i| g.get(i, 1)).collect();
            let mut b = Matrix::zeros(n, n);
            for i in 0..n {
                b[(i, i)] = d[i];
                if i + 1 < n {
                    b[(i, i + 1)] = e[i];
                }
            }
            let s_bis = bidiagonal_singular_values(&d, &e);
            let s_jac = jacobi_singular_values(&b);
            assert!(singular_values_match(&s_bis, &s_jac, 1e-11), "n = {n}");
        }
    }

    #[test]
    fn recovers_prescribed_spectrum_through_gebd2() {
        let spectrum = vec![5.0, 4.0, 3.0, 2.0, 1.0, 0.5, 0.25, 0.01];
        let (a, sigma) = latms(20, 8, &SpectrumKind::Explicit(spectrum), 123);
        let mut w = a.clone();
        let bd = gebd2(&mut w);
        let s = singular_values(&bd);
        assert!(singular_values_match(&s, &sigma, 1e-12));
    }

    #[test]
    fn zero_matrix_and_empty_edge_cases() {
        assert!(bidiagonal_singular_values(&[], &[]).is_empty());
        let s = bidiagonal_singular_values(&[0.0, 0.0], &[0.0]);
        assert!(singular_values_match(&s, &[0.0, 0.0], 1e-14));
    }

    #[test]
    fn tiny_singular_values_resolved() {
        let d = vec![1.0, 1e-8, 1.0];
        let e = vec![0.0, 0.0];
        let s = bidiagonal_singular_values(&d, &e);
        assert!((s[2] - 1e-8).abs() < 1e-15, "tiny value lost: {}", s[2]);
    }

    #[test]
    fn production_solvers_agree_with_oracle_through_gebd2() {
        let (a, sigma) = latms(24, 12, &SpectrumKind::Geometric { cond: 1.0e6 }, 9);
        let mut w = a.clone();
        let bd = gebd2(&mut w);
        let oracle = singular_values(&bd);
        for solver in [SvdSolver::Dqds, SvdSolver::SlicedBisection] {
            let opts = Bd2ValOptions::default().with_solver(solver);
            let s = singular_values_with(&bd.diag, &bd.superdiag, &opts);
            assert!(singular_values_match(&s, &oracle, 1e-13), "{solver:?}");
            assert!(singular_values_match(&s, &sigma, 1e-12), "{solver:?}");
        }
    }
}
