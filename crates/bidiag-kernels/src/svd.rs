//! Singular values of a bidiagonal matrix (`BD2VAL`).
//!
//! The paper delegates this stage to LAPACK `xBDSQR`; we implement an
//! equally robust alternative: bisection with Sturm-sequence counts on the
//! Golub–Kahan tridiagonal form
//!
//! ```text
//!        [ 0   d1              ]
//!        [ d1  0   e1          ]
//! T_GK = [     e1  0   d2      ]   (order 2k, zero diagonal)
//!        [         d2  0  ...  ]
//! ```
//!
//! whose eigenvalues are exactly `{ +sigma_i, -sigma_i }`.  Working on
//! `T_GK` avoids squaring the matrix and therefore computes even tiny
//! singular values to high relative accuracy.

use crate::gebd2::Bidiagonal;

/// Number of eigenvalues of the symmetric tridiagonal matrix (zero diagonal,
/// off-diagonals `off`) that are strictly smaller than `x`, computed with a
/// Sturm sequence (non-pivoting LDL^T count).
fn sturm_count(off: &[f64], x: f64, pivmin: f64) -> usize {
    let m = off.len() + 1;
    let mut count = 0usize;
    let mut d = -x;
    if d < 0.0 {
        count += 1;
    }
    for i in 1..m {
        let b = off[i - 1];
        let mut dd = d;
        if dd.abs() < pivmin {
            dd = -pivmin;
        }
        d = -x - b * b / dd;
        if d < 0.0 {
            count += 1;
        }
    }
    count
}

/// Prepared bisection state for the singular values of one bidiagonal
/// matrix: the Golub–Kahan off-diagonals plus the Gershgorin bound and the
/// derived pivot/termination thresholds.
///
/// Each singular value is an independent bisection over this shared
/// read-only state ([`GkBisection::nth_largest`]), which is what lets the
/// BD2VAL stage fan out one task per singular value on the task runtime:
/// the parallel and sequential back-ends perform bit-for-bit the same
/// arithmetic per value.
#[derive(Clone, Debug)]
pub struct GkBisection {
    /// Off-diagonals of the Golub-Kahan tridiagonal: d1, e1, d2, ..., dk.
    off: Vec<f64>,
    bound: f64,
    pivmin: f64,
    tol: f64,
    k: usize,
}

impl GkBisection {
    /// Prepare the bisection state for the bidiagonal matrix with main
    /// diagonal `d` and superdiagonal `e` (`e.len() == d.len() - 1`).
    pub fn new(d: &[f64], e: &[f64]) -> Self {
        let k = d.len();
        if k == 0 {
            return GkBisection {
                off: Vec::new(),
                bound: 0.0,
                pivmin: f64::MIN_POSITIVE,
                tol: 0.0,
                k: 0,
            };
        }
        assert_eq!(e.len(), k - 1, "superdiagonal must have length n-1");

        // Off-diagonals of the Golub-Kahan tridiagonal: d1, e1, d2, ..., dk.
        let mut off = Vec::with_capacity(2 * k - 1);
        for i in 0..k {
            off.push(d[i]);
            if i + 1 < k {
                off.push(e[i]);
            }
        }

        // Gershgorin bound: diagonal is zero, so |lambda| <= max row sum.
        let mut bound: f64 = 0.0;
        let m = 2 * k;
        for i in 0..m {
            let left = if i > 0 { off[i - 1].abs() } else { 0.0 };
            let right = if i < m - 1 { off[i].abs() } else { 0.0 };
            bound = bound.max(left + right);
        }
        let pivmin = f64::MIN_POSITIVE.max(f64::EPSILON * bound * bound * 1e-3);
        let tol = 2.0 * f64::EPSILON * bound;
        GkBisection {
            off,
            bound,
            pivmin,
            tol,
            k,
        }
    }

    /// Number of singular values (the order of the bidiagonal matrix).
    pub fn num_values(&self) -> usize {
        self.k
    }

    /// The `j`-th largest singular value, `j` in `0..num_values()`.
    ///
    /// The (0-based) `j`-th largest singular value is the `(2k - j)`-th
    /// smallest eigenvalue of the Golub-Kahan tridiagonal (1-based):
    /// bisection maintains `count(lo) <= target < count(hi)` for
    /// `target = 2k - j - 1`.
    pub fn nth_largest(&self, j: usize) -> f64 {
        assert!(j < self.k, "value index out of range");
        if self.bound == 0.0 {
            return 0.0;
        }
        let target = 2 * self.k - j - 1;
        let mut lo = 0.0_f64;
        let mut hi = self.bound * (1.0 + 4.0 * f64::EPSILON);
        while hi - lo > self.tol.max(f64::EPSILON * hi) {
            let mid = 0.5 * (lo + hi);
            if sturm_count(&self.off, mid, self.pivmin) > target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Singular values of the bidiagonal matrix with main diagonal `d` and
/// superdiagonal `e`, returned in non-increasing order.
///
/// Runs bisection to roughly machine precision relative to the largest
/// singular value.
pub fn bidiagonal_singular_values(d: &[f64], e: &[f64]) -> Vec<f64> {
    let b = GkBisection::new(d, e);
    (0..b.num_values()).map(|j| b.nth_largest(j)).collect()
}

/// Convenience wrapper over [`bidiagonal_singular_values`] for a
/// [`Bidiagonal`] factor.
pub fn singular_values(b: &Bidiagonal) -> Vec<f64> {
    bidiagonal_singular_values(&b.diag, &b.superdiag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gebd2::gebd2;
    use crate::jacobi::jacobi_singular_values;
    use bidiag_matrix::checks::singular_values_match;
    use bidiag_matrix::gen::{latms, random_gaussian, SpectrumKind};
    use bidiag_matrix::Matrix;

    #[test]
    fn diagonal_matrix_singular_values() {
        let d = vec![3.0, -1.0, 2.0];
        let e = vec![0.0, 0.0];
        let s = bidiagonal_singular_values(&d, &e);
        assert!(singular_values_match(&s, &[3.0, 2.0, 1.0], 1e-14));
    }

    #[test]
    fn two_by_two_known_values() {
        // B = [[1, 1], [0, 1]]: singular values are golden-ratio related:
        // sigma = sqrt((3 +- sqrt(5)) / 2).
        let s = bidiagonal_singular_values(&[1.0, 1.0], &[1.0]);
        let expected = [
            ((3.0 + 5.0_f64.sqrt()) / 2.0).sqrt(),
            ((3.0 - 5.0_f64.sqrt()) / 2.0).sqrt(),
        ];
        assert!(singular_values_match(&s, &expected, 1e-13));
    }

    #[test]
    fn matches_jacobi_on_random_bidiagonal() {
        for n in [5usize, 16, 33] {
            let g = random_gaussian(n, 2, n as u64);
            let d: Vec<f64> = (0..n).map(|i| g.get(i, 0)).collect();
            let e: Vec<f64> = (0..n - 1).map(|i| g.get(i, 1)).collect();
            let mut b = Matrix::zeros(n, n);
            for i in 0..n {
                b[(i, i)] = d[i];
                if i + 1 < n {
                    b[(i, i + 1)] = e[i];
                }
            }
            let s_bis = bidiagonal_singular_values(&d, &e);
            let s_jac = jacobi_singular_values(&b);
            assert!(singular_values_match(&s_bis, &s_jac, 1e-11), "n = {n}");
        }
    }

    #[test]
    fn recovers_prescribed_spectrum_through_gebd2() {
        let spectrum = vec![5.0, 4.0, 3.0, 2.0, 1.0, 0.5, 0.25, 0.01];
        let (a, sigma) = latms(20, 8, &SpectrumKind::Explicit(spectrum), 123);
        let mut w = a.clone();
        let bd = gebd2(&mut w);
        let s = singular_values(&bd);
        assert!(singular_values_match(&s, &sigma, 1e-12));
    }

    #[test]
    fn zero_matrix_and_empty_edge_cases() {
        assert!(bidiagonal_singular_values(&[], &[]).is_empty());
        let s = bidiagonal_singular_values(&[0.0, 0.0], &[0.0]);
        assert_eq!(s, vec![0.0, 0.0]);
    }

    #[test]
    fn tiny_singular_values_resolved() {
        let d = vec![1.0, 1e-8, 1.0];
        let e = vec![0.0, 0.0];
        let s = bidiagonal_singular_values(&d, &e);
        assert!((s[2] - 1e-8).abs() < 1e-15, "tiny value lost: {}", s[2]);
    }
}
