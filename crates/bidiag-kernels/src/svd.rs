//! Singular values of a bidiagonal matrix (`BD2VAL`).
//!
//! The paper delegates this stage to LAPACK `xBDSQR`; we implement an
//! equally robust alternative: bisection with Sturm-sequence counts on the
//! Golub–Kahan tridiagonal form
//!
//! ```text
//!        [ 0   d1              ]
//!        [ d1  0   e1          ]
//! T_GK = [     e1  0   d2      ]   (order 2k, zero diagonal)
//!        [         d2  0  ...  ]
//! ```
//!
//! whose eigenvalues are exactly `{ +sigma_i, -sigma_i }`.  Working on
//! `T_GK` avoids squaring the matrix and therefore computes even tiny
//! singular values to high relative accuracy.

use crate::gebd2::Bidiagonal;

/// Number of eigenvalues of the symmetric tridiagonal matrix (zero diagonal,
/// off-diagonals `off`) that are strictly smaller than `x`, computed with a
/// Sturm sequence (non-pivoting LDL^T count).
fn sturm_count(off: &[f64], x: f64, pivmin: f64) -> usize {
    let m = off.len() + 1;
    let mut count = 0usize;
    let mut d = -x;
    if d < 0.0 {
        count += 1;
    }
    for i in 1..m {
        let b = off[i - 1];
        let mut dd = d;
        if dd.abs() < pivmin {
            dd = -pivmin;
        }
        d = -x - b * b / dd;
        if d < 0.0 {
            count += 1;
        }
    }
    count
}

/// Singular values of the bidiagonal matrix with main diagonal `d` and
/// superdiagonal `e`, returned in non-increasing order.
///
/// Runs bisection to roughly machine precision relative to the largest
/// singular value.
pub fn bidiagonal_singular_values(d: &[f64], e: &[f64]) -> Vec<f64> {
    let k = d.len();
    if k == 0 {
        return Vec::new();
    }
    assert_eq!(e.len(), k - 1, "superdiagonal must have length n-1");

    // Off-diagonals of the Golub-Kahan tridiagonal: d1, e1, d2, e2, ..., dk.
    let mut off = Vec::with_capacity(2 * k - 1);
    for i in 0..k {
        off.push(d[i]);
        if i + 1 < k {
            off.push(e[i]);
        }
    }

    // Gershgorin bound: diagonal is zero, so |lambda| <= max row sum.
    let mut bound: f64 = 0.0;
    let m = 2 * k;
    for i in 0..m {
        let left = if i > 0 { off[i - 1].abs() } else { 0.0 };
        let right = if i < m - 1 { off[i].abs() } else { 0.0 };
        bound = bound.max(left + right);
    }
    if bound == 0.0 {
        return vec![0.0; k];
    }
    let pivmin = f64::MIN_POSITIVE.max(f64::EPSILON * bound * bound * 1e-3);
    let tol = 2.0 * f64::EPSILON * bound;

    // The j-th largest singular value is the (2k - j + 1)-th smallest
    // eigenvalue of T_GK (1-based).  Equivalently, sigma_j is the unique
    // value x >= 0 with count(x) crossing 2k - j.
    let mut sigmas = Vec::with_capacity(k);
    for j in 1..=k {
        let target = 2 * k - j; // count(x) >= target + 1  <=>  lambda_{target+1} < x
        let mut lo = 0.0_f64;
        let mut hi = bound * (1.0 + 4.0 * f64::EPSILON);
        // Bisection: maintain count(lo) <= target < count(hi).
        while hi - lo > tol.max(f64::EPSILON * hi) {
            let mid = 0.5 * (lo + hi);
            if sturm_count(&off, mid, pivmin) > target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        sigmas.push(0.5 * (lo + hi));
    }
    sigmas
}

/// Convenience wrapper over [`bidiagonal_singular_values`] for a
/// [`Bidiagonal`] factor.
pub fn singular_values(b: &Bidiagonal) -> Vec<f64> {
    bidiagonal_singular_values(&b.diag, &b.superdiag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gebd2::gebd2;
    use crate::jacobi::jacobi_singular_values;
    use bidiag_matrix::checks::singular_values_match;
    use bidiag_matrix::gen::{latms, random_gaussian, SpectrumKind};
    use bidiag_matrix::Matrix;

    #[test]
    fn diagonal_matrix_singular_values() {
        let d = vec![3.0, -1.0, 2.0];
        let e = vec![0.0, 0.0];
        let s = bidiagonal_singular_values(&d, &e);
        assert!(singular_values_match(&s, &[3.0, 2.0, 1.0], 1e-14));
    }

    #[test]
    fn two_by_two_known_values() {
        // B = [[1, 1], [0, 1]]: singular values are golden-ratio related:
        // sigma = sqrt((3 +- sqrt(5)) / 2).
        let s = bidiagonal_singular_values(&[1.0, 1.0], &[1.0]);
        let expected = [
            ((3.0 + 5.0_f64.sqrt()) / 2.0).sqrt(),
            ((3.0 - 5.0_f64.sqrt()) / 2.0).sqrt(),
        ];
        assert!(singular_values_match(&s, &expected, 1e-13));
    }

    #[test]
    fn matches_jacobi_on_random_bidiagonal() {
        for n in [5usize, 16, 33] {
            let g = random_gaussian(n, 2, n as u64);
            let d: Vec<f64> = (0..n).map(|i| g.get(i, 0)).collect();
            let e: Vec<f64> = (0..n - 1).map(|i| g.get(i, 1)).collect();
            let mut b = Matrix::zeros(n, n);
            for i in 0..n {
                b[(i, i)] = d[i];
                if i + 1 < n {
                    b[(i, i + 1)] = e[i];
                }
            }
            let s_bis = bidiagonal_singular_values(&d, &e);
            let s_jac = jacobi_singular_values(&b);
            assert!(singular_values_match(&s_bis, &s_jac, 1e-11), "n = {n}");
        }
    }

    #[test]
    fn recovers_prescribed_spectrum_through_gebd2() {
        let spectrum = vec![5.0, 4.0, 3.0, 2.0, 1.0, 0.5, 0.25, 0.01];
        let (a, sigma) = latms(20, 8, &SpectrumKind::Explicit(spectrum), 123);
        let mut w = a.clone();
        let bd = gebd2(&mut w);
        let s = singular_values(&bd);
        assert!(singular_values_match(&s, &sigma, 1e-12));
    }

    #[test]
    fn zero_matrix_and_empty_edge_cases() {
        assert!(bidiagonal_singular_values(&[], &[]).is_empty());
        let s = bidiagonal_singular_values(&[0.0, 0.0], &[0.0]);
        assert_eq!(s, vec![0.0, 0.0]);
    }

    #[test]
    fn tiny_singular_values_resolved() {
        let d = vec![1.0, 1e-8, 1.0];
        let e = vec![0.0, 0.0];
        let s = bidiagonal_singular_values(&d, &e);
        assert!((s[2] - 1e-8).abs() < 1e-15, "tiny value lost: {}", s[2]);
    }
}
