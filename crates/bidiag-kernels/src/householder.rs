//! Elementary Householder reflectors (LAPACK `xLARFG` / `xLARF` analogues).
//!
//! A reflector is `H = I - tau * v * v^T` with `v[0] = 1`.  Applied to the
//! vector it was generated from, it produces `(beta, 0, ..., 0)`.

/// Result of generating a Householder reflector.
#[derive(Clone, Debug)]
pub struct Reflector {
    /// Scalar factor `tau` (0 means the reflector is the identity).
    pub tau: f64,
    /// The value the first entry becomes after applying the reflector.
    pub beta: f64,
}

/// Generate a Householder reflector for the vector `(alpha, x)`:
/// overwrite `x` with the tail of `v` (the head `v[0] = 1` is implicit) and
/// return `(tau, beta)` such that `H * (alpha, x_old) = (beta, 0, ..., 0)`.
///
/// This mirrors LAPACK `dlarfg`.
pub fn larfg(alpha: f64, x: &mut [f64]) -> Reflector {
    let xnorm = norm2(x);
    if xnorm == 0.0 {
        // Already in the desired form, H = I.
        return Reflector {
            tau: 0.0,
            beta: alpha,
        };
    }
    let beta = -alpha.signum() * (alpha * alpha + xnorm * xnorm).sqrt();
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for v in x.iter_mut() {
        *v *= scale;
    }
    Reflector { tau, beta }
}

/// Euclidean norm with scaling to avoid overflow.
pub fn norm2(x: &[f64]) -> f64 {
    let amax = x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
    if amax == 0.0 {
        return 0.0;
    }
    let mut s = 0.0;
    for &v in x {
        let t = v / amax;
        s += t * t;
    }
    amax * s.sqrt()
}

/// Dot product of two slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0;
    for i in 0..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for i in 0..x.len() {
        y[i] += alpha * x[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply_reflector(tau: f64, v: &[f64], x: &mut [f64]) {
        // x <- (I - tau v v^T) x  with v[0] = 1 implicit in v (v given in full here)
        let w = dot(v, x);
        axpy(-tau * w, v, x);
    }

    #[test]
    fn larfg_zeroes_tail() {
        let alpha = 3.0;
        let mut tail = vec![1.0, -2.0, 0.5];
        let orig = {
            let mut t = vec![alpha];
            t.extend_from_slice(&tail);
            t
        };
        let r = larfg(alpha, &mut tail);
        // Build the full v = (1, tail) and apply H to the original vector.
        let mut v = vec![1.0];
        v.extend_from_slice(&tail);
        let mut x = orig.clone();
        apply_reflector(r.tau, &v, &mut x);
        assert!((x[0] - r.beta).abs() < 1e-12);
        for &t in &x[1..] {
            assert!(t.abs() < 1e-12);
        }
        // Norm is preserved.
        assert!((norm2(&orig) - r.beta.abs()).abs() < 1e-12);
    }

    #[test]
    fn larfg_identity_when_tail_zero() {
        let mut tail = vec![0.0, 0.0];
        let r = larfg(5.0, &mut tail);
        assert_eq!(r.tau, 0.0);
        assert_eq!(r.beta, 5.0);
    }

    #[test]
    fn larfg_is_orthogonal() {
        // H^T H = I <=> tau * (v.v) = 2 when tau != 0.
        let mut tail = vec![0.3, -0.7, 2.0, 1.1];
        let r = larfg(-1.4, &mut tail);
        let mut v = vec![1.0];
        v.extend_from_slice(&tail);
        let vv = dot(&v, &v);
        assert!((r.tau * vv - 2.0).abs() < 1e-12);
    }

    #[test]
    fn norm2_handles_large_values() {
        let x = vec![3.0e200, 4.0e200];
        assert!((norm2(&x) - 5.0e200).abs() / 5.0e200 < 1e-14);
        assert_eq!(norm2(&[]), 0.0);
    }
}
