//! Unblocked (Level-2 BLAS style) bidiagonalization, LAPACK `xGEBD2`.
//!
//! This is the classical Golub–Kahan algorithm: alternate column reflectors
//! (from the left) and row reflectors (from the right), one scalar column and
//! row at a time.  It serves two roles in the reproduction:
//!
//! * as the reference/baseline algorithm class (MKL/ScaLAPACK's `GEBRD` is a
//!   blocked version of this; see `bidiag-baselines`),
//! * as the final stage applied to small dense matrices in tests.

use crate::householder::larfg;
use bidiag_matrix::Matrix;

/// Result of a bidiagonalization: the main diagonal and super-diagonal of the
/// upper-bidiagonal factor `B` such that `A = U B V^T`.
#[derive(Clone, Debug, PartialEq)]
pub struct Bidiagonal {
    /// Main diagonal, length `min(m, n)`.
    pub diag: Vec<f64>,
    /// Super-diagonal, length `min(m, n) - 1` (empty when `min(m, n) < 2`).
    pub superdiag: Vec<f64>,
}

impl Bidiagonal {
    /// Number of rows/columns of the bidiagonal factor.
    pub fn len(&self) -> usize {
        self.diag.len()
    }

    /// True when the bidiagonal factor is empty.
    pub fn is_empty(&self) -> bool {
        self.diag.is_empty()
    }

    /// Materialise the bidiagonal matrix as a dense square matrix.
    pub fn to_dense(&self) -> Matrix {
        let n = self.diag.len();
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            b[(i, i)] = self.diag[i];
            if i + 1 < n {
                b[(i, i + 1)] = self.superdiag[i];
            }
        }
        b
    }

    /// Frobenius norm of the bidiagonal factor.
    pub fn norm_fro(&self) -> f64 {
        let s: f64 = self.diag.iter().map(|x| x * x).sum::<f64>()
            + self.superdiag.iter().map(|x| x * x).sum::<f64>();
        s.sqrt()
    }
}

/// Reduce a dense `m x n` matrix (`m >= n`) to upper bidiagonal form in
/// place using Householder reflections, and return the bidiagonal factor.
///
/// On exit `a` holds the Householder vectors (below the diagonal for the
/// column reflectors, right of the superdiagonal for the row reflectors) and
/// the bidiagonal entries on its diagonal / superdiagonal, following the
/// LAPACK `xGEBD2` storage convention.
pub fn gebd2(a: &mut Matrix) -> Bidiagonal {
    let mut b = Bidiagonal {
        diag: Vec::with_capacity(a.cols()),
        superdiag: Vec::with_capacity(a.cols().saturating_sub(1)),
    };
    let mut tail = Vec::with_capacity(a.rows().saturating_sub(1));
    gebd2_with(a, &mut tail, &mut b);
    b
}

/// [`gebd2`] writing into caller-owned buffers: `tail` is the reflector
/// scratch (grown once, reused every column/row) and `out` receives the
/// bidiagonal factor (its vectors are cleared and refilled, keeping their
/// capacity).  Arithmetic is identical to [`gebd2`] — same reflectors in
/// the same order — so the results are bitwise equal; the only difference
/// is that steady-state calls with same-or-smaller problems allocate
/// nothing.  This is the small-size direct path of the batched SVD
/// session.
pub fn gebd2_with(a: &mut Matrix, tail: &mut Vec<f64>, out: &mut Bidiagonal) {
    let m = a.rows();
    let n = a.cols();
    assert!(m >= n, "gebd2 expects m >= n (use the transpose otherwise)");
    let diag = &mut out.diag;
    let superdiag = &mut out.superdiag;
    diag.clear();
    superdiag.clear();

    for k in 0..n {
        // --- Column reflector: zero A[k+1..m, k].
        let alpha = a.get(k, k);
        tail.clear();
        tail.extend((k + 1..m).map(|i| a.get(i, k)));
        let refl = larfg(alpha, tail);
        a.set(k, k, refl.beta);
        for (idx, i) in (k + 1..m).enumerate() {
            a.set(i, k, tail[idx]);
        }
        if refl.tau != 0.0 {
            for j in (k + 1)..n {
                let mut w = a.get(k, j);
                for (idx, i) in (k + 1..m).enumerate() {
                    w += tail[idx] * a.get(i, j);
                }
                w *= refl.tau;
                a.set(k, j, a.get(k, j) - w);
                for (idx, i) in (k + 1..m).enumerate() {
                    a.set(i, j, a.get(i, j) - tail[idx] * w);
                }
            }
        }
        diag.push(a.get(k, k));

        // --- Row reflector: zero A[k, k+2..n].
        if k + 1 < n {
            let alpha = a.get(k, k + 1);
            tail.clear();
            tail.extend((k + 2..n).map(|j| a.get(k, j)));
            let refl = larfg(alpha, tail);
            a.set(k, k + 1, refl.beta);
            for (idx, j) in (k + 2..n).enumerate() {
                a.set(k, j, tail[idx]);
            }
            if refl.tau != 0.0 {
                for i in (k + 1)..m {
                    let mut w = a.get(i, k + 1);
                    for (idx, j) in (k + 2..n).enumerate() {
                        w += tail[idx] * a.get(i, j);
                    }
                    w *= refl.tau;
                    a.set(i, k + 1, a.get(i, k + 1) - w);
                    for (idx, j) in (k + 2..n).enumerate() {
                        a.set(i, j, a.get(i, j) - tail[idx] * w);
                    }
                }
            }
            superdiag.push(a.get(k, k + 1));
        }
    }
}

/// Flop count of the scalar bidiagonalization of an `m x n` matrix
/// (`4 m n^2 - 4/3 n^3`, see the paper's related-work section).
pub fn gebd2_flops(m: usize, n: usize) -> f64 {
    let (m, n) = (m as f64, n as f64);
    4.0 * m * n * n - 4.0 / 3.0 * n * n * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use bidiag_matrix::checks::off_bidiagonal_mass;
    use bidiag_matrix::gen::{latms, random_gaussian, SpectrumKind};

    #[test]
    fn gebd2_produces_bidiagonal_with_same_frobenius_norm() {
        let a0 = random_gaussian(12, 8, 5);
        let mut a = a0.clone();
        let b = gebd2(&mut a);
        assert_eq!(b.diag.len(), 8);
        assert_eq!(b.superdiag.len(), 7);
        // Orthogonal transformations preserve the Frobenius norm.
        assert!((b.norm_fro() - a0.norm_fro()).abs() < 1e-10 * a0.norm_fro());
        assert!(off_bidiagonal_mass(&b.to_dense()) < 1e-13);
    }

    #[test]
    fn gebd2_on_square_matrix() {
        let a0 = random_gaussian(6, 6, 9);
        let mut a = a0.clone();
        let b = gebd2(&mut a);
        assert_eq!(b.len(), 6);
        assert!((b.norm_fro() - a0.norm_fro()).abs() < 1e-12 * a0.norm_fro());
    }

    #[test]
    fn gebd2_diagonal_matrix_is_fixed_point() {
        let spec = vec![4.0, 3.0, 2.0, 1.0];
        let mut a = Matrix::from_diag(&spec);
        let b = gebd2(&mut a);
        // Diagonal input: the bidiagonal factor has the same singular values
        // (up to sign) and zero superdiagonal.
        let mut d: Vec<f64> = b.diag.iter().map(|x| x.abs()).collect();
        d.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (x, y) in d.iter().zip(spec.iter()) {
            assert!((x - y).abs() < 1e-14);
        }
        for e in &b.superdiag {
            assert!(e.abs() < 1e-14);
        }
    }

    #[test]
    fn gebd2_flop_formula() {
        assert!((gebd2_flops(1000, 1000) - (4.0e9 - 4.0 / 3.0 * 1.0e9)).abs() < 1.0);
        // Chan's crossover: preQR+GE2BD(n,n) = 2n^2(m+n) flops is cheaper than
        // GE2BD(m,n) = 4n^2(m - n/3) when m >= 5n/3.
        let n = 300.0_f64;
        let m = 5.0 * n / 3.0;
        let bidiag = 4.0 * n * n * (m - n / 3.0);
        let rbidiag = 2.0 * n * n * (m + n);
        assert!((bidiag - rbidiag).abs() < 1e-6 * bidiag);
    }

    #[test]
    fn gebd2_with_reused_buffers_is_bitwise_identical() {
        // One long-lived scratch set across problems of different shapes:
        // every result must equal the allocating entry point bit for bit.
        let mut tail = Vec::new();
        let mut out = Bidiagonal {
            diag: Vec::new(),
            superdiag: Vec::new(),
        };
        for (m, n, seed) in [(12usize, 8usize, 5u64), (6, 6, 9), (20, 3, 1), (9, 7, 3)] {
            let a0 = random_gaussian(m, n, seed);
            let mut a1 = a0.clone();
            let mut a2 = a0.clone();
            let reference = gebd2(&mut a1);
            gebd2_with(&mut a2, &mut tail, &mut out);
            assert_eq!(reference.diag, out.diag, "{m}x{n}");
            assert_eq!(reference.superdiag, out.superdiag, "{m}x{n}");
            assert_eq!(a1, a2, "{m}x{n}: reflector storage diverged");
        }
    }

    #[test]
    fn gebd2_preserves_frobenius_of_prescribed_spectrum() {
        let (a, sigma) = latms(20, 10, &SpectrumKind::Geometric { cond: 100.0 }, 17);
        let mut w = a.clone();
        let b = gebd2(&mut w);
        let fro2: f64 = sigma.iter().map(|s| s * s).sum();
        assert!((b.norm_fro().powi(2) - fro2).abs() < 1e-9 * fro2);
    }
}
