//! Kernel cost model (Table I of the paper).
//!
//! Costs are expressed in the paper's unit of time: `nb^3 / 3` floating
//! point operations, where `nb` is the tile size.  These weights drive both
//! the critical-path analysis (Section IV) and the bounded-resource /
//! distributed simulations.

/// The kernels of the tiled QR/LQ factorizations and their algorithmic role.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Factor a square tile into a triangle (panel kernel).
    Geqrt,
    /// Apply GEQRT reflectors to a trailing tile (update kernel).
    Unmqr,
    /// Zero a square tile below a triangle (panel kernel, TS).
    Tsqrt,
    /// Apply TSQRT reflectors to a pair of trailing tiles (update, TS).
    Tsmqr,
    /// Zero a triangle below a triangle (panel kernel, TT).
    Ttqrt,
    /// Apply TTQRT reflectors to a pair of trailing tiles (update, TT).
    Ttmqr,
    /// LQ duals of the above.
    Gelqt,
    /// Apply GELQT reflectors (update kernel, LQ dual of UNMQR).
    Unmlq,
    /// Zero a square tile right of a triangle (LQ dual of TSQRT).
    Tslqt,
    /// Apply TSLQT reflectors (LQ dual of TSMQR).
    Tsmlq,
    /// Zero a triangle right of a triangle (LQ dual of TTQRT).
    Ttlqt,
    /// Apply TTLQT reflectors (LQ dual of TTMQR).
    Ttmlq,
    /// Auxiliary zeroing kernel (LAPACK `xLASET`): discard Householder
    /// vectors stored below the diagonal of the R factor before
    /// R-bidiagonalization.  Negligible cost (memory bound, `O(nb^2)`), so it
    /// carries weight 0 in the Table I cost model.
    Laset,
}

impl KernelKind {
    /// Cost in units of `nb^3 / 3` flops (Table I of the paper).  The LQ
    /// kernels have the same costs as their QR duals.
    pub fn weight(self) -> f64 {
        match self {
            KernelKind::Geqrt | KernelKind::Gelqt => 4.0,
            KernelKind::Unmqr | KernelKind::Unmlq => 6.0,
            KernelKind::Tsqrt | KernelKind::Tslqt => 6.0,
            KernelKind::Tsmqr | KernelKind::Tsmlq => 12.0,
            KernelKind::Ttqrt | KernelKind::Ttlqt => 2.0,
            KernelKind::Ttmqr | KernelKind::Ttmlq => 6.0,
            KernelKind::Laset => 0.0,
        }
    }

    /// Approximate flop count of the kernel for tile size `nb`
    /// (`weight * nb^3 / 3`).
    pub fn flops(self, nb: usize) -> f64 {
        self.weight() * (nb as f64).powi(3) / 3.0
    }

    /// Short LAPACK-style display name.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Geqrt => "GEQRT",
            KernelKind::Unmqr => "UNMQR",
            KernelKind::Tsqrt => "TSQRT",
            KernelKind::Tsmqr => "TSMQR",
            KernelKind::Ttqrt => "TTQRT",
            KernelKind::Ttmqr => "TTMQR",
            KernelKind::Gelqt => "GELQT",
            KernelKind::Unmlq => "UNMLQ",
            KernelKind::Tslqt => "TSLQT",
            KernelKind::Tsmlq => "TSMLQ",
            KernelKind::Ttlqt => "TTLQT",
            KernelKind::Ttmlq => "TTMLQ",
            KernelKind::Laset => "LASET",
        }
    }

    /// True for the TS/TT panel kernels and GEQRT/GELQT (i.e. kernels that
    /// create new Householder reflectors).
    pub fn is_factorization(self) -> bool {
        matches!(
            self,
            KernelKind::Geqrt
                | KernelKind::Tsqrt
                | KernelKind::Ttqrt
                | KernelKind::Gelqt
                | KernelKind::Tslqt
                | KernelKind::Ttlqt
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_weights() {
        assert_eq!(KernelKind::Geqrt.weight(), 4.0);
        assert_eq!(KernelKind::Unmqr.weight(), 6.0);
        assert_eq!(KernelKind::Tsqrt.weight(), 6.0);
        assert_eq!(KernelKind::Tsmqr.weight(), 12.0);
        assert_eq!(KernelKind::Ttqrt.weight(), 2.0);
        assert_eq!(KernelKind::Ttmqr.weight(), 6.0);
    }

    #[test]
    fn lq_duals_have_same_weights() {
        assert_eq!(KernelKind::Gelqt.weight(), KernelKind::Geqrt.weight());
        assert_eq!(KernelKind::Tsmlq.weight(), KernelKind::Tsmqr.weight());
        assert_eq!(KernelKind::Ttlqt.weight(), KernelKind::Ttqrt.weight());
    }

    #[test]
    fn flops_scale_with_tile_cube() {
        let f1 = KernelKind::Tsmqr.flops(100);
        let f2 = KernelKind::Tsmqr.flops(200);
        assert!((f2 / f1 - 8.0).abs() < 1e-12);
    }

    #[test]
    fn factorization_classification() {
        assert!(KernelKind::Geqrt.is_factorization());
        assert!(KernelKind::Ttlqt.is_factorization());
        assert!(!KernelKind::Tsmqr.is_factorization());
        assert!(!KernelKind::Unmlq.is_factorization());
    }
}
