//! Band matrices and the band-to-bidiagonal reduction (`BND2BD`).
//!
//! The tiled GE2BND algorithms of the paper stop at a *band* bidiagonal
//! matrix of upper bandwidth `nb`.  To obtain singular values this band must
//! be further reduced to a proper bidiagonal (bandwidth 1).  The paper uses
//! the PLASMA multi-threaded bulge-chasing kernel for this stage; we
//! implement an equivalent pipelined Givens bulge-chasing reduction
//! ([`BandMatrix::reduce_to_bidiagonal`]) on packed band storage.
//!
//! # Algorithm
//!
//! The reduction removes one superdiagonal at a time (Schwarz/Rutishauser
//! style): each entry of the outermost superdiagonal is annihilated by a
//! column rotation, and the bulges this creates below the diagonal and past
//! the band are chased off the bottom-right corner with alternating row and
//! column rotations.  Total cost is `O(n^2 * bw)` flops on `O(n * bw)`
//! storage (the exact count is [`bnd2bd_flops`]).
//!
//! # Pipelined execution
//!
//! Unlike the classical formulation — chase each bulge all the way down
//! before starting the next — the production path executes the chase steps
//! of a *group* of consecutive sweeps as a pipelined wavefront
//! ([`bulge_wavefronts`]): sweep `i+1` trails sweep `i` by
//! [`PIPELINE_SHIFT`] chase steps, which is exactly enough for the working
//! windows of concurrent steps to be disjoint (see [`Wavefront`]).  Each
//! region of the band is then touched once per *group* of sweeps instead of
//! once per sweep (cache blocking), and the disjointness turns every
//! wavefront into an independently schedulable task for the runtime
//! (`bidiag_core::exec::bnd2bd_on_runtime`).
//!
//! # Storage
//!
//! [`BandMatrix`] stores the band column-major LAPACK-style: the diagonals
//! `-1 ..= bw + 1` of column `j` (one subdiagonal below and one diagonal
//! above the band, room for the transient bulges) live in the contiguous
//! slice `data[j * ldab ..][..ldab]` with `ldab = bw + 3`.  The hot rotation
//! kernels run directly on these slices: a column rotation is a fused sweep
//! over two contiguous strips, a row rotation touches *adjacent* elements
//! within each column slice — no per-element bound/branch logic in either.
//!
//! The historical one-bulge-at-a-time implementation is kept as
//! [`BandMatrix::reduce_to_bidiagonal_single_bulge`], the perf oracle of the
//! kernels-bench `--bnd2bd` acceptance gate.

use crate::gebd2::Bidiagonal;
use crate::givens::givens;
use bidiag_matrix::{simd, Matrix};

/// Chase-step lag between adjacent pipelined sweeps.
///
/// Sweep `i + 1` executes its chase step `k` on the wavefront three steps
/// after sweep `i` executed its own step `k`.  The working window of step
/// `k` of sweep `i` spans rows/columns `[P - 1, P + b]` with `P = i + k*b`,
/// so two same-wavefront steps of adjacent sweeps sit `3b - 1` rows apart —
/// strictly more than the `b + 2` window span for every `b >= 2`, hence all
/// concurrent windows are disjoint.  A shift of 2 would already order every
/// dependent pair, but leaves adjacent windows overlapping for `b = 2`.
pub const PIPELINE_SHIFT: usize = 3;

/// Relative Frobenius-mass bound on what [`BandMatrix::from_dense`] may
/// silently discard (debug builds assert it).
#[cfg(debug_assertions)]
const FROM_DENSE_DROP_TOL: f64 = 1e-8;

/// [`givens`] with the `hypot` libm call replaced by a plain
/// `sqrt(f^2 + g^2)` whenever the squares are safely inside the normal
/// range (same dlartg sign convention).  The chase executes one of these
/// per ~`(b + 2)`-pair rotation — about a million calls on the reference
/// case, dominated by the small-`b` passes — so the libm call is hot
/// enough to matter; extreme scales fall back to the robust path.
#[inline]
fn fast_givens(f: f64, g: f64) -> crate::givens::Givens {
    let ss = f * f + g * g;
    if (1.0e-280..=1.0e280).contains(&ss) {
        let d = ss.sqrt();
        // One division instead of two: c and s pick up a second rounding
        // (~2 ulp on c^2 + s^2), far below the eps * ||B|| deflation noise.
        let inv = 1.0 / d;
        let mut c = f * inv;
        let mut s = g * inv;
        let mut r = d;
        if f.abs() > g.abs() && c < 0.0 {
            c = -c;
            s = -s;
            r = -r;
        }
        crate::givens::Givens { c, s, r }
    } else {
        givens(f, g)
    }
}

/// Strided pair-rotation walk of [`BandMatrix::rot_rows`], portable
/// fallback: unfused arithmetic, because `f64::mul_add` without the FMA
/// target feature lowers to a libm call (the exact trap that cost BND2BD
/// 3x when the `-C target-cpu=native` pin was dropped).
///
/// # Safety
///
/// The caller must guarantee `start + (m - 1) * step + 2 <= data.len()`.
#[inline(always)]
unsafe fn rot_rows_walk(data: &mut [f64], start: usize, m: usize, step: usize, gc: f64, gs: f64) {
    // SAFETY: the caller's bound guarantees `start` is in-buffer.
    let mut p = unsafe { data.as_mut_ptr().add(start) };
    for _ in 0..m {
        // SAFETY: `p` and `p + 1` stay below `start + (m-1)*step + 2`,
        // which the caller proved is within the buffer.
        unsafe {
            let x = *p;
            let y = *p.add(1);
            *p = gc * x + gs * y;
            *p.add(1) = gc * y - gs * x;
            p = p.add(step);
        }
    }
}

/// [`rot_rows_walk`] recompiled with the FMA target feature: identical
/// strided walk, but the multiply-adds fuse into single `vfmadd`
/// instructions (the strided 2-element pairs leave nothing for the vector
/// lanes themselves to do).
///
/// # Safety
///
/// AVX2+FMA must be available, and the caller must guarantee
/// `start + (m - 1) * step + 2 <= data.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn rot_rows_walk_avx2(
    data: &mut [f64],
    start: usize,
    m: usize,
    step: usize,
    gc: f64,
    gs: f64,
) {
    // SAFETY: the caller's bound guarantees `start` is in-buffer.
    let mut p = unsafe { data.as_mut_ptr().add(start) };
    for _ in 0..m {
        // SAFETY: `p` and `p + 1` stay below `start + (m-1)*step + 2`,
        // which the caller proved is within the buffer.
        unsafe {
            let x = *p;
            let y = *p.add(1);
            *p = gc.mul_add(x, gs * y);
            *p.add(1) = gc.mul_add(y, -gs * x);
            p = p.add(step);
        }
    }
}

/// One wavefront of the pipelined bulge-chasing reduction: the chase steps
/// `{ (sweep g + l, step omega - PIPELINE_SHIFT * l) : l < lanes }` of the
/// pass removing superdiagonal `b`, where `g` is the first sweep of the
/// group.
///
/// All steps of one wavefront touch pairwise disjoint row/column windows
/// (see [`PIPELINE_SHIFT`]), so a wavefront is executed as one unit — a
/// plain loop sequentially, one task on the runtime — and the result is
/// bitwise independent of the order the steps run in.  Conflicting steps
/// always land on distinct wavefronts, ordered like the classical
/// sweep-after-sweep execution.
#[derive(Clone, Copy, Debug)]
pub struct Wavefront {
    /// Superdiagonal being removed by this pass (`2..=bw`).
    pub b: usize,
    /// First sweep (row index of the annihilated entry) of the group.
    pub group_start: usize,
    /// Number of sweeps pipelined in this group.
    pub lanes: usize,
    /// Wavefront index within the group: lane `l` executes its chase step
    /// `omega - PIPELINE_SHIFT * l` (when in `0..=K(lane)`).
    pub omega: usize,
}

impl Wavefront {
    /// The active `(sweep, chase step)` pairs of this wavefront for a band
    /// of order `n`, in lane order (the order both back-ends execute them).
    pub fn steps(&self, n: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let (b, omega) = (self.b, self.omega);
        (0..self.lanes).filter_map(move |l| {
            let i = self.group_start + l;
            let lag = PIPELINE_SHIFT * l;
            if i + b >= n || omega < lag {
                return None;
            }
            let k = omega - lag;
            (k <= (n - 1 - i) / b).then_some((i, k))
        })
    }

    /// Row-block dependency keys of this wavefront: the ids (granularity
    /// `block_rows`) of every band row block a step of this wavefront may
    /// touch.  Two wavefronts with disjoint key sets touch disjoint memory,
    /// which is what lets the runtime overlap them.
    pub fn row_blocks(&self, n: usize, block_rows: usize) -> Vec<u64> {
        let bs = block_rows.max(1);
        let mut blocks = Vec::new();
        for (i, k) in self.steps(n) {
            let p = i + k * self.b;
            let lo = p.saturating_sub(1) / bs;
            let hi = (p + self.b).min(n - 1) / bs;
            for blk in lo..=hi {
                let blk = blk as u64;
                if !blocks.contains(&blk) {
                    blocks.push(blk);
                }
            }
        }
        blocks
    }
}

/// Number of sweeps pipelined per group in the pass removing superdiagonal
/// `b`: as many as keep the group's concurrent windows (spread
/// `PIPELINE_SHIFT * b` rows apart, each `~(b + 2)^2` elements) inside a
/// mid-size cache footprint, so a band region stays resident while every
/// lane of the group streams through it.
fn group_lanes(n: usize, b: usize) -> usize {
    const WORKSET_BYTES: usize = 384 * 1024;
    let per_lane = PIPELINE_SHIFT * b * (b + 3) * 8;
    (WORKSET_BYTES / per_lane.max(1)).clamp(2, 24).min(n.max(1))
}

/// The wavefronts of one pass removing superdiagonal `b` of an order-`n`
/// band, in execution order (groups of [`group_lanes`] sweeps, wavefronts
/// ascending within each group).
fn pass_wavefronts(n: usize, b: usize, out: &mut Vec<Wavefront>) {
    let sweeps = n.saturating_sub(b);
    let lanes_max = group_lanes(n, b);
    let mut i0 = 0;
    while i0 < sweeps {
        let lanes = lanes_max.min(sweeps - i0);
        let omega_max = (0..lanes)
            .map(|l| PIPELINE_SHIFT * l + (n - 1 - (i0 + l)) / b)
            .max()
            .expect("lanes >= 1");
        for omega in 0..=omega_max {
            out.push(Wavefront {
                b,
                group_start: i0,
                lanes,
                omega,
            });
        }
        i0 += lanes;
    }
}

/// The full wavefront schedule of the pipelined reduction of an order-`n`
/// band of upper bandwidth `bw`: passes `b = bw, bw - 1, ..., 2` in order,
/// each pass laid out as groups of pipelined sweeps (see the module docs
/// and [`PIPELINE_SHIFT`]).  Executing the wavefronts in
/// this order (each via [`BandMatrix::run_wavefront`]) is exactly
/// [`BandMatrix::reduce_to_bidiagonal`]; the runtime back-end submits the
/// same list as tasks and lets memory-disjoint wavefronts overlap.
pub fn bulge_wavefronts(n: usize, bw: usize) -> Vec<Wavefront> {
    let mut wfs = Vec::new();
    let mut b = bw;
    while b >= 2 {
        pass_wavefronts(n, b, &mut wfs);
        b -= 1;
    }
    wfs
}

/// Compact column-major storage for an upper-banded square matrix with room
/// for the transient bulges of the reduction (one subdiagonal below, one
/// diagonal above the band).
#[derive(Clone, Debug)]
pub struct BandMatrix {
    n: usize,
    bw: usize,
    /// Column stride: `bw + 3` stored diagonals (`-1 ..= bw + 1`).
    ldab: usize,
    /// `data[j * ldab + (i - j + bw + 1)]` holds `B[i, j]`.
    data: Vec<f64>,
}

impl BandMatrix {
    /// Create a zero band matrix of order `n` and upper bandwidth `bw`.
    pub fn zeros(n: usize, bw: usize) -> Self {
        assert!(n > 0);
        let bw = bw.max(1).min(n.saturating_sub(1).max(1));
        let ldab = bw + 3;
        Self {
            n,
            bw,
            ldab,
            data: vec![0.0; ldab * n],
        }
    }

    /// Build from a dense matrix, keeping only the upper band `0..=bw`.
    ///
    /// Entries outside the band are discarded; they must be negligible
    /// relative to the Frobenius norm of the input (`GE2BND` guarantees it —
    /// its band extraction is exact).  Debug builds assert this, so a
    /// bandwidth mismatch between the stages fails loudly instead of
    /// silently corrupting the spectrum.
    pub fn from_dense(a: &Matrix, bw: usize) -> Self {
        let n = a.rows().min(a.cols());
        let mut b = Self::zeros(n, bw);
        for i in 0..n {
            let jmax = (i + b.bw).min(n - 1);
            for j in i..=jmax {
                b.set(i, j, a.get(i, j));
            }
        }
        #[cfg(debug_assertions)]
        {
            // Sum the discarded entries directly (not by subtracting the
            // kept norm from the total — that cancellation would flag
            // rounding noise as dropped mass).
            let mut total = 0.0f64;
            let mut dropped = 0.0f64;
            for i in 0..a.rows() {
                for j in 0..a.cols() {
                    let v = a.get(i, j);
                    total += v * v;
                    let kept = i < n && j < n && j >= i && j - i <= b.bw;
                    if !kept {
                        dropped += v * v;
                    }
                }
            }
            let (total, dropped) = (total.sqrt(), dropped.sqrt());
            debug_assert!(
                dropped <= FROM_DENSE_DROP_TOL * total + f64::MIN_POSITIVE,
                "BandMatrix::from_dense({} x {}, bw = {}) would discard {dropped:.3e} \
                 of Frobenius mass {:.3e}: out-of-band entries are not negligible \
                 (bandwidth mismatch with the producing stage?)",
                a.rows(),
                a.cols(),
                bw,
                total,
            );
        }
        b
    }

    /// Order of the matrix.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Upper bandwidth the storage was created for.
    pub fn bandwidth(&self) -> usize {
        self.bw
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> Option<usize> {
        let d = j as isize - i as isize;
        if i >= self.n || j >= self.n || d < -1 || d > self.bw as isize + 1 {
            None
        } else {
            Some(j * self.ldab + (i + self.bw + 1 - j))
        }
    }

    /// Offset of the stored entry `(i, j)` — callers must guarantee the
    /// entry lies on the stored diagonals `-1 ..= bw + 1` (the chase only
    /// ever addresses such entries); the public [`BandMatrix::get`] /
    /// [`BandMatrix::set`] accessors validate instead.
    #[inline]
    fn off(&self, i: usize, j: usize) -> usize {
        debug_assert!(self.idx(i, j).is_some(), "({i}, {j}) outside band storage");
        j * self.ldab + (i + self.bw + 1 - j)
    }

    /// Read the in-band entry `(i, j)` without the out-of-band check.
    ///
    /// SAFETY of the unchecked access: [`BandMatrix::off`] debug-asserts
    /// that `(i, j)` lies on a stored diagonal, and every stored diagonal
    /// offset is `< ldab * n == data.len()` by construction.
    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        let k = self.off(i, j);
        debug_assert!(k < self.data.len());
        unsafe { *self.data.get_unchecked(k) }
    }

    /// Write the in-band entry `(i, j)` without the out-of-band check
    /// (same safety argument as [`BandMatrix::at`]).
    #[inline]
    fn set_at(&mut self, i: usize, j: usize, v: f64) {
        let k = self.off(i, j);
        debug_assert!(k < self.data.len());
        unsafe { *self.data.get_unchecked_mut(k) = v };
    }

    /// Read entry `(i, j)`; entries outside the stored band read as zero.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match self.idx(i, j) {
            Some(k) => self.data[k],
            None => 0.0,
        }
    }

    /// Write entry `(i, j)`; panics if outside the stored band.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let k = self.idx(i, j).expect("write outside band storage");
        self.data[k] = v;
    }

    /// Densify (for tests and small problems).
    pub fn to_dense(&self) -> Matrix {
        Matrix::from_fn(self.n, self.n, |i, j| self.get(i, j))
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        // Slots of the packed storage that fall outside the matrix are
        // never written, so the norm is the norm of the raw buffer.
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// The negligibility threshold of the bulge-chasing deflation tests:
    /// LAPACK-style `eps * ||B||_F`.  A bulge (or annihilation target) at or
    /// below this threshold perturbs the singular values by no more than a
    /// rounding error of the reduction itself, so it is zeroed instead of
    /// chased — unlike an exact-zero test, this also deflates
    /// denormal-scale bulges instead of dragging them down the whole band.
    pub fn deflation_tolerance(&self) -> f64 {
        f64::EPSILON * self.norm_fro()
    }

    /// Apply a column rotation to columns `(c, c + 1)` over rows
    /// `r0 ..= r1`: two fused sweeps over contiguous column strips.
    #[inline]
    fn rot_cols(&mut self, c: usize, r0: usize, r1: usize, gc: f64, gs: f64) {
        debug_assert!(c + 1 < self.n && r0 <= r1 && r1 <= c + 1);
        let ldab = self.ldab;
        let off = self.bw + 1;
        let (left, rest) = self.data[c * ldab..].split_at_mut(ldab);
        let o1 = r0 + off - c;
        let len = r1 - r0 + 1;
        let xs = &mut left[o1..o1 + len];
        let ys = &mut rest[o1 - 1..o1 - 1 + len];
        // Two contiguous strips -> the dispatched fused-rotation kernel
        // (AVX2 broadcast-FMA above 4 elements, scalar below/fallback).
        // The backend read is one relaxed atomic load, never a cpuid.
        simd::rot_strips(simd::backend(), xs, ys, gc, gs);
    }

    /// Apply a row rotation to rows `(r, r + 1)` over columns `c0 ..= c1`:
    /// the two elements of each column are *adjacent* in its packed slice,
    /// so the walk is one strided sweep with no per-element index logic.
    /// The data is strided 2-element pairs, so there is no contiguous strip
    /// for a vector kernel to load; the backend dispatch below exists to
    /// recompile the same scalar walk with hardware FMA under AVX2
    /// (`f64::mul_add` on the portable baseline would lower to a libm
    /// call), with the unfused walk as the portable fallback.
    #[inline]
    fn rot_rows(&mut self, r: usize, c0: usize, c1: usize, gc: f64, gs: f64) {
        debug_assert!(c0 <= c1 && c1 < self.n && c0 >= r.saturating_sub(self.bw + 1));
        let ldab = self.ldab;
        let m = c1 - c0 + 1;
        let start = c0 * ldab + (r + self.bw + 1 - c0);
        // One bounds proof up front, then a raw strided walk: the short
        // per-column pairs (2 elements, stride `ldab - 1`) defeat both
        // vectorization and the bounds-check eliminator, and on the
        // step-count-dominating small-`b` passes the per-pair check cost
        // rivals the arithmetic.
        assert!(start + (m - 1) * (ldab - 1) + 2 <= self.data.len());
        match simd::backend() {
            #[cfg(target_arch = "x86_64")]
            simd::SimdBackend::Avx2 => {
                simd::check_avx2();
                // SAFETY: `check_avx2` above proved AVX2+FMA are available,
                // and the bounds assertion covers every pointer the walk
                // dereferences.
                unsafe { rot_rows_walk_avx2(&mut self.data, start, m, ldab - 1, gc, gs) }
            }
            _ => {
                // SAFETY: the bounds assertion covers every pointer the
                // walk dereferences.
                unsafe { rot_rows_walk(&mut self.data, start, m, ldab - 1, gc, gs) }
            }
        }
    }

    /// Execute one chase step of sweep `i` of the pass removing
    /// superdiagonal `b`.
    ///
    /// Step `0` annihilates the band entry `(i, i + b)` with a column
    /// rotation (leaving a subdiagonal bulge at `(i + b, i + b - 1)`); step
    /// `k >= 1` works at `j = i + k*b`: a row rotation restores the
    /// subdiagonal bulge `(j, j - 1)` (pushing an above-band bulge to
    /// `(j - 1, j + b)`), and a column rotation restores that one (leaving
    /// the next subdiagonal bulge for step `k + 1`).  Bulges at or below
    /// `tol` ([`BandMatrix::deflation_tolerance`]) are zeroed instead of
    /// chased, which also terminates the remaining steps of the sweep —
    /// they find an exactly-zero bulge.
    /// The pivot pair of every rotation is written directly (`r` and an
    /// exact `0`) and excluded from the fused application loops — on the
    /// step-count-dominating `b = 2` pass that is a quarter of the pair
    /// work, and it spares the zeroed entry a round trip through the
    /// rotation arithmetic.
    fn chase_step(&mut self, b: usize, i: usize, k: usize, tol: f64) {
        let n = self.n;
        if k == 0 {
            let c = i + b;
            let g = self.at(i, c);
            if g.abs() <= tol {
                if g != 0.0 {
                    self.set_at(i, c, 0.0);
                }
                return;
            }
            let rot = fast_givens(self.at(i, c - 1), g);
            self.set_at(i, c - 1, rot.r);
            self.set_at(i, c, 0.0);
            self.rot_cols(c - 1, i + 1, c, rot.c, rot.s);
            return;
        }
        let j = i + k * b;
        // Sub-diagonal bulge at (j, j-1): row rotation on rows (j-1, j).
        let g = self.at(j, j - 1);
        if g.abs() <= tol {
            if g != 0.0 {
                self.set_at(j, j - 1, 0.0);
            }
            return;
        }
        let rot = fast_givens(self.at(j - 1, j - 1), g);
        self.set_at(j - 1, j - 1, rot.r);
        self.set_at(j, j - 1, 0.0);
        self.rot_rows(j - 1, j, (j + b).min(n - 1), rot.c, rot.s);

        // Above-band bulge at (j-1, j+b): column rotation on (j+b-1, j+b).
        if j + b > n - 1 {
            return;
        }
        let g = self.at(j - 1, j + b);
        if g.abs() <= tol {
            if g != 0.0 {
                self.set_at(j - 1, j + b, 0.0);
            }
            return;
        }
        let rot = fast_givens(self.at(j - 1, j + b - 1), g);
        self.set_at(j - 1, j + b - 1, rot.r);
        self.set_at(j - 1, j + b, 0.0);
        self.rot_cols(j + b - 1, j, j + b, rot.c, rot.s);
    }

    /// Execute every chase step of one [`Wavefront`] (in lane order; the
    /// steps touch disjoint windows, so any order gives the same bits).
    pub fn run_wavefront(&mut self, wf: &Wavefront, tol: f64) {
        let n = self.n;
        let mut l = 0;
        while l < wf.lanes {
            let i = wf.group_start + l;
            let lag = PIPELINE_SHIFT * l;
            if i + wf.b >= n || wf.omega < lag {
                break; // later lanes start later still
            }
            let k = wf.omega - lag;
            if k <= (n - 1 - i) / wf.b {
                self.chase_step(wf.b, i, k, tol);
            }
            l += 1;
        }
    }

    /// Reduce the band matrix to upper bidiagonal form in place with
    /// pipelined Givens bulge chasing and return the bidiagonal factor.
    /// Only singular values are preserved (the rotations are not
    /// accumulated), exactly like the singular-value-only path of the paper.
    ///
    /// Executes the [`bulge_wavefronts`] schedule with one deflation
    /// threshold for the whole reduction, which is also exactly what the
    /// task-runtime back-end (`bidiag_core::exec::bnd2bd_on_runtime`) runs —
    /// the two produce bitwise identical factors.
    pub fn reduce_to_bidiagonal(&mut self) -> Bidiagonal {
        let tol = self.deflation_tolerance();
        for wf in bulge_wavefronts(self.n, self.bw) {
            self.run_wavefront(&wf, tol);
        }
        self.bidiagonal_factor()
    }

    /// One pipelined pass: annihilate every entry of superdiagonal `b`
    /// (which must be the outermost non-zero one, i.e. superdiagonals
    /// `b+1..` were already removed) and chase the resulting bulges off the
    /// bottom-right corner.
    ///
    /// Computes its own deflation threshold from the current band;
    /// [`BandMatrix::reduce_to_bidiagonal`] shares one threshold across all
    /// passes instead.
    pub fn remove_superdiagonal(&mut self, b: usize) {
        assert!(
            (2..=self.bw).contains(&b),
            "sweep index {b} outside 2..=bw ({})",
            self.bw
        );
        let tol = self.deflation_tolerance();
        let mut wfs = Vec::new();
        pass_wavefronts(self.n, b, &mut wfs);
        for wf in wfs {
            self.run_wavefront(&wf, tol);
        }
    }

    /// The historical one-bulge-at-a-time reduction (each annihilated entry
    /// is chased all the way down before the next starts, with the original
    /// exact-zero deflation tests), kept as the perf/numerics oracle of the
    /// kernels-bench `--bnd2bd` acceptance gate.
    pub fn reduce_to_bidiagonal_single_bulge(&mut self) -> Bidiagonal {
        let mut b = self.bw;
        while b >= 2 {
            self.remove_superdiagonal_single_bulge(b);
            b -= 1;
        }
        self.bidiagonal_factor()
    }

    /// One sweep of the historical single-bulge reduction (see
    /// [`BandMatrix::reduce_to_bidiagonal_single_bulge`]).
    pub fn remove_superdiagonal_single_bulge(&mut self, b: usize) {
        let n = self.n;
        assert!(
            (2..=self.bw).contains(&b),
            "sweep index {b} outside 2..=bw ({})",
            self.bw
        );
        for i in 0..n.saturating_sub(b) {
            let c = i + b;
            if self.get(i, c) == 0.0 {
                continue;
            }
            // Column rotation on (c-1, c) zeroing (i, c).
            let rot = givens(self.get(i, c - 1), self.get(i, c));
            let rmax = c.min(n - 1);
            for r in i..=rmax {
                let (x, y) = rot.apply(self.get(r, c - 1), self.get(r, c));
                self.set(r, c - 1, x);
                self.set(r, c, y);
            }
            self.set(i, c, 0.0);

            // Chase the bulges down the band.
            let mut j = c;
            loop {
                // Sub-diagonal bulge at (j, j-1): row rotation on (j-1, j).
                if self.get(j, j - 1) == 0.0 {
                    break;
                }
                let rot = givens(self.get(j - 1, j - 1), self.get(j, j - 1));
                let cmax = (j + b).min(n - 1);
                for col in (j - 1)..=cmax {
                    let (x, y) = rot.apply(self.get(j - 1, col), self.get(j, col));
                    self.set(j - 1, col, x);
                    self.set(j, col, y);
                }
                self.set(j, j - 1, 0.0);

                // Above-band bulge at (j-1, j+b): column rotation on (j+b-1, j+b).
                if j + b > n - 1 || self.get(j - 1, j + b) == 0.0 {
                    break;
                }
                let rot = givens(self.get(j - 1, j + b - 1), self.get(j - 1, j + b));
                let rmax = (j + b).min(n - 1);
                for r in (j - 1)..=rmax {
                    let (x, y) = rot.apply(self.get(r, j + b - 1), self.get(r, j + b));
                    self.set(r, j + b - 1, x);
                    self.set(r, j + b, y);
                }
                self.set(j - 1, j + b, 0.0);
                j += b;
            }
        }
    }

    /// Extract the main diagonal and first superdiagonal as a
    /// [`Bidiagonal`] factor (meaningful once every superdiagonal beyond
    /// the first has been removed).
    pub fn bidiagonal_factor(&self) -> Bidiagonal {
        let n = self.n;
        let diag: Vec<f64> = (0..n).map(|i| self.get(i, i)).collect();
        let superdiag: Vec<f64> = (0..n.saturating_sub(1))
            .map(|i| self.get(i, i + 1))
            .collect();
        Bidiagonal { diag, superdiag }
    }
}

/// Flop count of the band-to-bidiagonal reduction of an order-`n` band of
/// bandwidth `bw` (used by the performance model; the paper treats this
/// stage as memory-bound).
///
/// Derivation (see BENCHMARKING.md): the pass removing superdiagonal `d`
/// chases each of its `~n` annihilated entries through `~(n - i)/d` chase
/// steps of two rotations fused over `d + 2` element pairs (6 flops per
/// pair), i.e. `~6 n^2 (d + 2)/d` flops; summing `d = 2..=bw` gives
/// `6 n^2 [(bw - 1) + 2 (H_bw - 1)]` with `H_bw` the harmonic number.  The
/// previously used `6 n^2 bw` dropped the harmonic term contributed by the
/// narrow late passes.
pub fn bnd2bd_flops(n: usize, bw: usize) -> f64 {
    if bw < 2 {
        return 0.0;
    }
    let n = n as f64;
    let harmonic_tail: f64 = (2..=bw).map(|d| 1.0 / d as f64).sum();
    6.0 * n * n * ((bw as f64 - 1.0) + 2.0 * harmonic_tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::jacobi_singular_values;
    use bidiag_matrix::checks::singular_values_match;
    use bidiag_matrix::gen::random_gaussian;

    fn random_band(n: usize, bw: usize, seed: u64) -> BandMatrix {
        let g = random_gaussian(n, n, seed);
        let mut b = BandMatrix::zeros(n, bw);
        for i in 0..n {
            for j in i..=(i + bw).min(n - 1) {
                b.set(i, j, g.get(i, j));
            }
        }
        b
    }

    #[test]
    fn band_storage_round_trip() {
        let b = random_band(10, 3, 1);
        let d = b.to_dense();
        let b2 = BandMatrix::from_dense(&d, 3);
        assert!((b.norm_fro() - b2.norm_fro()).abs() < 1e-14);
        assert_eq!(b.get(0, 5), 0.0); // outside band reads zero
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not negligible")]
    fn from_dense_rejects_out_of_band_mass() {
        // A fully dense matrix has O(1) mass outside any bw=2 band: the
        // debug assert must fire instead of silently truncating it.
        let g = random_gaussian(12, 12, 9);
        let _ = BandMatrix::from_dense(&g, 2);
    }

    #[test]
    fn reduction_produces_bidiagonal_and_preserves_norm() {
        let mut b = random_band(30, 5, 2);
        let norm0 = b.norm_fro();
        let bd = b.reduce_to_bidiagonal();
        assert_eq!(bd.diag.len(), 30);
        assert!((bd.norm_fro() - norm0).abs() < 1e-10 * norm0);
        // The band storage itself must now be bidiagonal.
        let dense = b.to_dense();
        assert!(dense.is_upper_bidiagonal(1e-10 * norm0));
    }

    #[test]
    fn reduction_preserves_singular_values_small() {
        for (n, bw, seed) in [(8usize, 2usize, 3u64), (12, 4, 4), (17, 5, 5), (9, 8, 6)] {
            let b = random_band(n, bw, seed);
            let dense = b.to_dense();
            let reference = jacobi_singular_values(&dense);
            let mut work = b.clone();
            let bd = work.reduce_to_bidiagonal();
            let reduced = jacobi_singular_values(&bd.to_dense());
            assert!(
                singular_values_match(&reference, &reduced, 1e-10),
                "singular values changed for n={n} bw={bw}"
            );
        }
    }

    #[test]
    fn pipelined_matches_single_bulge_oracle_spectrum() {
        for (n, bw, seed) in [(23usize, 3usize, 21u64), (41, 7, 22), (64, 16, 23)] {
            let b = random_band(n, bw, seed);
            let mut pipelined = b.clone();
            let mut oracle = b.clone();
            let bd_p = pipelined.reduce_to_bidiagonal();
            let bd_o = oracle.reduce_to_bidiagonal_single_bulge();
            let sv_p = jacobi_singular_values(&bd_p.to_dense());
            let sv_o = jacobi_singular_values(&bd_o.to_dense());
            assert!(
                singular_values_match(&sv_p, &sv_o, 1e-10),
                "pipelined vs single-bulge mismatch for n={n} bw={bw}"
            );
        }
    }

    #[test]
    fn wavefront_windows_are_pairwise_disjoint() {
        // The invariant the whole pipeline rests on: concurrent chase
        // steps of one wavefront touch disjoint row/column windows.
        for (n, bw) in [(37usize, 2usize), (64, 5), (100, 9), (53, 52)] {
            for wf in bulge_wavefronts(n, bw) {
                let windows: Vec<(usize, usize)> = wf
                    .steps(n)
                    .map(|(i, k)| {
                        let p = i + k * wf.b;
                        (p.saturating_sub(1), (p + wf.b).min(n - 1))
                    })
                    .collect();
                for (a, wa) in windows.iter().enumerate() {
                    for wb in windows.iter().skip(a + 1) {
                        assert!(
                            wa.1 < wb.0 || wb.1 < wa.0,
                            "overlapping wavefront windows {wa:?} / {wb:?} \
                             (n={n} bw={bw} wf={wf:?})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn wavefront_schedule_covers_every_chase_step_once() {
        // Every (pass, sweep, step) triple appears exactly once across the
        // schedule, and conflicting steps are ordered like the sequential
        // sweep-major execution.
        let (n, bw) = (29usize, 6usize);
        let mut seen = std::collections::HashSet::new();
        let mut count = 0usize;
        for wf in bulge_wavefronts(n, bw) {
            for (i, k) in wf.steps(n) {
                assert!(
                    seen.insert((wf.b, i, k)),
                    "duplicate step {:?}",
                    (wf.b, i, k)
                );
                count += 1;
            }
        }
        let mut expect = 0usize;
        for b in 2..=bw {
            for i in 0..n - b {
                expect += (n - 1 - i) / b + 1;
            }
        }
        assert_eq!(count, expect);
    }

    #[test]
    fn already_bidiagonal_is_untouched() {
        let mut b = BandMatrix::zeros(6, 1);
        for i in 0..6 {
            b.set(i, i, (i + 1) as f64);
            if i + 1 < 6 {
                b.set(i, i + 1, 0.5);
            }
        }
        let before = b.to_dense();
        let bd = b.reduce_to_bidiagonal();
        assert_eq!(bd.to_dense(), before);
    }

    #[test]
    fn bandwidth_one_edge_cases() {
        // n = 1.
        let mut b = BandMatrix::zeros(1, 1);
        b.set(0, 0, 3.0);
        let bd = b.reduce_to_bidiagonal();
        assert_eq!(bd.diag, vec![3.0]);
        assert!(bd.superdiag.is_empty());
    }

    #[test]
    fn full_bandwidth_and_tiny_orders() {
        // bw >= n - 1 (requested bandwidth clamps to n - 1): the band is a
        // full upper triangle.
        for (n, bw, seed) in [(6usize, 8usize, 31u64), (5, 4, 32), (3, 2, 33)] {
            let b = random_band(n, bw.min(n - 1), seed);
            let reference = jacobi_singular_values(&b.to_dense());
            let mut work = b.clone();
            let bd = work.reduce_to_bidiagonal();
            let reduced = jacobi_singular_values(&bd.to_dense());
            assert!(
                singular_values_match(&reference, &reduced, 1e-10),
                "full-bandwidth reduction failed for n={n}"
            );
        }
        // n = 2 is already bidiagonal whatever the requested bandwidth.
        let mut b = BandMatrix::zeros(2, 5);
        b.set(0, 0, 2.0);
        b.set(0, 1, -1.0);
        b.set(1, 1, 0.5);
        let bd = b.reduce_to_bidiagonal();
        assert_eq!(bd.diag, vec![2.0, 0.5]);
        assert_eq!(bd.superdiag, vec![-1.0]);
    }

    #[test]
    fn zero_band_and_single_superdiagonal() {
        // All-zero band: reduction is a no-op on zeros.
        let mut z = BandMatrix::zeros(9, 4);
        let bd = z.reduce_to_bidiagonal();
        assert!(bd.diag.iter().all(|&v| v == 0.0));
        assert!(bd.superdiag.iter().all(|&v| v == 0.0));

        // A single non-zero entry on the outermost superdiagonal has
        // singular value |v| (plus zeros) — the chase must preserve that.
        let mut b = BandMatrix::zeros(10, 3);
        b.set(2, 5, 7.5);
        let norm0 = b.norm_fro();
        let bd = b.reduce_to_bidiagonal();
        assert!((bd.norm_fro() - norm0).abs() < 1e-12 * norm0);
        let sv = jacobi_singular_values(&bd.to_dense());
        assert!((sv[0] - 7.5).abs() < 1e-10);
        assert!(sv[1..].iter().all(|&v| v.abs() < 1e-10));
    }

    #[test]
    fn underflow_scaled_band_keeps_its_spectrum() {
        // A band scaled to denormal range: the norm-relative deflation
        // threshold must neither chase forever nor deflate real mass, and
        // the spectrum must scale exactly (sigma(alpha * B) = alpha *
        // sigma(B)).
        let (n, bw, scale) = (24usize, 4usize, 1.0e-300f64);
        let b = random_band(n, bw, 41);
        let reference = jacobi_singular_values(&b.to_dense());

        let mut tiny = BandMatrix::zeros(n, bw);
        for i in 0..n {
            for j in i..=(i + bw).min(n - 1) {
                tiny.set(i, j, b.get(i, j) * scale);
            }
        }
        let bd = tiny.reduce_to_bidiagonal();
        // Rescale the bidiagonal back up before calling the oracle (Jacobi
        // itself is not reliable on denormals).
        let mut up = Matrix::zeros(n, n);
        for i in 0..n {
            up[(i, i)] = bd.diag[i] / scale;
            if i + 1 < n {
                up[(i, i + 1)] = bd.superdiag[i] / scale;
            }
        }
        let reduced = jacobi_singular_values(&up);
        assert!(
            singular_values_match(&reference, &reduced, 1e-10),
            "underflow-scaled reduction corrupted the spectrum"
        );
    }

    #[test]
    fn negligible_superdiagonal_entries_are_deflated_not_chased() {
        // Entries far below eps * ||B|| must be zeroed by the threshold
        // test (the exact-zero test would chase them full length), without
        // touching the spectrum.
        let n = 20usize;
        let mut b = random_band(n, 3, 51);
        let tol = b.deflation_tolerance();
        for i in 0..n - 3 {
            b.set(i, i + 3, tol * 1.0e-4);
        }
        let reference = jacobi_singular_values(&b.to_dense());
        let bd = b.reduce_to_bidiagonal();
        let reduced = jacobi_singular_values(&bd.to_dense());
        assert!(singular_values_match(&reference, &reduced, 1e-10));
    }

    #[test]
    fn randomized_large_band_matches_jacobi_oracle() {
        // The n=200 pin: the pipelined reduction against the dense Jacobi
        // oracle on a realistically sized band.
        let (n, bw) = (200usize, 12usize);
        let b = random_band(n, bw, 61);
        let reference = jacobi_singular_values(&b.to_dense());
        let mut work = b.clone();
        let bd = work.reduce_to_bidiagonal();
        let reduced = jacobi_singular_values(&bd.to_dense());
        assert!(
            singular_values_match(&reference, &reduced, 1e-10),
            "n=200 reduction diverged from the Jacobi oracle"
        );
    }

    #[test]
    fn corrected_flop_count_dominates_old_model() {
        // The harmonic correction only adds flops (narrow passes chase
        // further per row), and vanishes for bw < 2.
        assert_eq!(bnd2bd_flops(100, 1), 0.0);
        let old = 6.0 * 512.0f64 * 512.0 * 64.0;
        let new = bnd2bd_flops(512, 64);
        assert!(new > 0.98 * old && new < 1.25 * old, "new = {new}");
    }
}
