//! Band matrices and the band-to-bidiagonal reduction (`BND2BD`).
//!
//! The tiled GE2BND algorithms of the paper stop at a *band* bidiagonal
//! matrix of upper bandwidth `nb`.  To obtain singular values this band must
//! be further reduced to a proper bidiagonal (bandwidth 1).  The paper uses
//! the PLASMA multi-threaded bulge-chasing kernel for this stage; we
//! implement an equivalent Givens-rotation bulge-chasing reduction
//! ([`BandMatrix::reduce_to_bidiagonal`]) working on compact band storage.
//!
//! The algorithm removes one superdiagonal at a time (Schwarz/Rutishauser
//! style): each entry of the outermost superdiagonal is annihilated by a
//! column rotation, and the bulges this creates below the diagonal and past
//! the band are chased off the bottom-right corner with alternating row and
//! column rotations.  Total cost is `O(n^2 * bw)` flops on `O(n * bw)`
//! storage.

use crate::gebd2::Bidiagonal;
use crate::givens::givens;
use bidiag_matrix::Matrix;

/// Compact storage for an upper-banded square matrix with room for the
/// transient bulges of the reduction (one subdiagonal below, one diagonal
/// above the band).
#[derive(Clone, Debug)]
pub struct BandMatrix {
    n: usize,
    bw: usize,
    /// Stored diagonals range from `-1` to `bw + 1`.
    /// `data[(d + 1) * n + i]` holds `B[i, i + d]`.
    data: Vec<f64>,
}

impl BandMatrix {
    /// Create a zero band matrix of order `n` and upper bandwidth `bw`.
    pub fn zeros(n: usize, bw: usize) -> Self {
        assert!(n > 0);
        let bw = bw.max(1).min(n.saturating_sub(1).max(1));
        let ndiag = bw + 3; // -1 ..= bw+1
        Self {
            n,
            bw,
            data: vec![0.0; ndiag * n],
        }
    }

    /// Build from a dense matrix, keeping only the upper band `0..=bw`.
    /// Entries outside the band are ignored (callers should check they are
    /// negligible; `GE2BND` guarantees it).
    pub fn from_dense(a: &Matrix, bw: usize) -> Self {
        let n = a.rows().min(a.cols());
        let mut b = Self::zeros(n, bw);
        for i in 0..n {
            let jmax = (i + b.bw).min(n - 1);
            for j in i..=jmax {
                b.set(i, j, a.get(i, j));
            }
        }
        b
    }

    /// Order of the matrix.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Upper bandwidth the storage was created for.
    pub fn bandwidth(&self) -> usize {
        self.bw
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> Option<usize> {
        let d = j as isize - i as isize;
        if i >= self.n || j >= self.n || d < -1 || d > self.bw as isize + 1 {
            None
        } else {
            Some(((d + 1) as usize) * self.n + i)
        }
    }

    /// Read entry `(i, j)`; entries outside the stored band read as zero.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match self.idx(i, j) {
            Some(k) => self.data[k],
            None => 0.0,
        }
    }

    /// Write entry `(i, j)`; panics if outside the stored band.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let k = self.idx(i, j).expect("write outside band storage");
        self.data[k] = v;
    }

    /// Densify (for tests and small problems).
    pub fn to_dense(&self) -> Matrix {
        Matrix::from_fn(self.n, self.n, |i, j| self.get(i, j))
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        // Only in-band entries are ever non-zero.
        let mut s = 0.0;
        for i in 0..self.n {
            let lo = i.saturating_sub(1);
            let hi = (i + self.bw + 1).min(self.n - 1);
            for j in lo..=hi {
                let v = self.get(i, j);
                s += v * v;
            }
        }
        s.sqrt()
    }

    /// Reduce the band matrix to upper bidiagonal form in place with Givens
    /// bulge chasing and return the bidiagonal factor.  Only singular values
    /// are preserved (the rotations are not accumulated), exactly like the
    /// singular-value-only path of the paper.
    ///
    /// Equivalent to calling [`BandMatrix::remove_superdiagonal`] for
    /// `b = bw, bw-1, ..., 2` followed by
    /// [`BandMatrix::bidiagonal_factor`]; the split entry points let the
    /// task runtime schedule the sweeps as a chain of tasks.
    pub fn reduce_to_bidiagonal(&mut self) -> Bidiagonal {
        let mut b = self.bw;
        while b >= 2 {
            self.remove_superdiagonal(b);
            b -= 1;
        }
        self.bidiagonal_factor()
    }

    /// One sweep of the Schwarz/Rutishauser reduction: annihilate every
    /// entry of superdiagonal `b` (which must be the outermost non-zero
    /// one, i.e. superdiagonals `b+1..` were already removed) and chase the
    /// resulting bulges off the bottom-right corner.
    pub fn remove_superdiagonal(&mut self, b: usize) {
        let n = self.n;
        assert!(
            (2..=self.bw).contains(&b),
            "sweep index {b} outside 2..=bw ({})",
            self.bw
        );
        for i in 0..n.saturating_sub(b) {
            let c = i + b;
            if self.get(i, c) == 0.0 {
                continue;
            }
            // Column rotation on (c-1, c) zeroing (i, c).
            let rot = givens(self.get(i, c - 1), self.get(i, c));
            let rmax = c.min(n - 1);
            for r in i..=rmax {
                let (x, y) = rot.apply(self.get(r, c - 1), self.get(r, c));
                self.set(r, c - 1, x);
                self.set(r, c, y);
            }
            self.set(i, c, 0.0);

            // Chase the bulges down the band.
            let mut j = c;
            loop {
                // Sub-diagonal bulge at (j, j-1): row rotation on (j-1, j).
                if self.get(j, j - 1) == 0.0 {
                    break;
                }
                let rot = givens(self.get(j - 1, j - 1), self.get(j, j - 1));
                let cmax = (j + b).min(n - 1);
                for col in (j - 1)..=cmax {
                    let (x, y) = rot.apply(self.get(j - 1, col), self.get(j, col));
                    self.set(j - 1, col, x);
                    self.set(j, col, y);
                }
                self.set(j, j - 1, 0.0);

                // Above-band bulge at (j-1, j+b): column rotation on (j+b-1, j+b).
                if j + b > n - 1 || self.get(j - 1, j + b) == 0.0 {
                    break;
                }
                let rot = givens(self.get(j - 1, j + b - 1), self.get(j - 1, j + b));
                let rmax = (j + b).min(n - 1);
                for r in (j - 1)..=rmax {
                    let (x, y) = rot.apply(self.get(r, j + b - 1), self.get(r, j + b));
                    self.set(r, j + b - 1, x);
                    self.set(r, j + b, y);
                }
                self.set(j - 1, j + b, 0.0);
                j += b;
            }
        }
    }

    /// Extract the main diagonal and first superdiagonal as a
    /// [`Bidiagonal`] factor (meaningful once every superdiagonal beyond
    /// the first has been removed).
    pub fn bidiagonal_factor(&self) -> Bidiagonal {
        let n = self.n;
        let diag: Vec<f64> = (0..n).map(|i| self.get(i, i)).collect();
        let superdiag: Vec<f64> = (0..n.saturating_sub(1))
            .map(|i| self.get(i, i + 1))
            .collect();
        Bidiagonal { diag, superdiag }
    }
}

/// Approximate flop count of the band-to-bidiagonal reduction of an order-`n`
/// band of bandwidth `bw` (used by the performance model; the paper treats
/// this stage as memory-bound and serial).
pub fn bnd2bd_flops(n: usize, bw: usize) -> f64 {
    6.0 * (n as f64) * (n as f64) * (bw as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::jacobi_singular_values;
    use bidiag_matrix::checks::singular_values_match;
    use bidiag_matrix::gen::random_gaussian;

    fn random_band(n: usize, bw: usize, seed: u64) -> BandMatrix {
        let g = random_gaussian(n, n, seed);
        let mut b = BandMatrix::zeros(n, bw);
        for i in 0..n {
            for j in i..=(i + bw).min(n - 1) {
                b.set(i, j, g.get(i, j));
            }
        }
        b
    }

    #[test]
    fn band_storage_round_trip() {
        let b = random_band(10, 3, 1);
        let d = b.to_dense();
        let b2 = BandMatrix::from_dense(&d, 3);
        assert!((b.norm_fro() - b2.norm_fro()).abs() < 1e-14);
        assert_eq!(b.get(0, 5), 0.0); // outside band reads zero
    }

    #[test]
    fn reduction_produces_bidiagonal_and_preserves_norm() {
        let mut b = random_band(30, 5, 2);
        let norm0 = b.norm_fro();
        let bd = b.reduce_to_bidiagonal();
        assert_eq!(bd.diag.len(), 30);
        assert!((bd.norm_fro() - norm0).abs() < 1e-10 * norm0);
        // The band storage itself must now be bidiagonal.
        let dense = b.to_dense();
        assert!(dense.is_upper_bidiagonal(1e-10 * norm0));
    }

    #[test]
    fn reduction_preserves_singular_values_small() {
        for (n, bw, seed) in [(8usize, 2usize, 3u64), (12, 4, 4), (17, 5, 5), (9, 8, 6)] {
            let b = random_band(n, bw, seed);
            let dense = b.to_dense();
            let reference = jacobi_singular_values(&dense);
            let mut work = b.clone();
            let bd = work.reduce_to_bidiagonal();
            let reduced = jacobi_singular_values(&bd.to_dense());
            assert!(
                singular_values_match(&reference, &reduced, 1e-10),
                "singular values changed for n={n} bw={bw}"
            );
        }
    }

    #[test]
    fn already_bidiagonal_is_untouched() {
        let mut b = BandMatrix::zeros(6, 1);
        for i in 0..6 {
            b.set(i, i, (i + 1) as f64);
            if i + 1 < 6 {
                b.set(i, i + 1, 0.5);
            }
        }
        let before = b.to_dense();
        let bd = b.reduce_to_bidiagonal();
        assert_eq!(bd.to_dense(), before);
    }

    #[test]
    fn bandwidth_one_edge_cases() {
        // n = 1.
        let mut b = BandMatrix::zeros(1, 1);
        b.set(0, 0, 3.0);
        let bd = b.reduce_to_bidiagonal();
        assert_eq!(bd.diag, vec![3.0]);
        assert!(bd.superdiag.is_empty());
    }
}
