//! Tile kernels for the tiled QR factorization (Table I of the paper).
//!
//! The six kernels and their costs in units of `nb^3 / 3` floating point
//! operations are:
//!
//! | kernel  | role                                   | cost |
//! |---------|----------------------------------------|------|
//! | GEQRT   | factor a square tile into a triangle   | 4    |
//! | UNMQR   | apply the GEQRT reflectors to a tile   | 6    |
//! | TSQRT   | zero a square tile below a triangle    | 6    |
//! | TSMQR   | apply the TSQRT reflectors to a pair   | 12   |
//! | TTQRT   | zero a triangle below a triangle       | 2    |
//! | TTMQR   | apply the TTQRT reflectors to a pair   | 6    |
//!
//! The kernels here are unblocked (they apply the Householder reflectors one
//! by one).  This matches the mathematics and data flow of the LAPACK
//! `xGEQRT`/`xTPQRT` family exactly, while keeping the code easy to audit.
//! Reflector scalars (`tau`) are returned to the caller, which stores them
//! next to the tile holding the Householder vectors (as PLASMA stores its
//! `T` factors).

use crate::householder::{axpy, dot, larfg};
use bidiag_matrix::Matrix;

/// Whether an apply kernel applies `Q^T` (used by factorizations) or `Q`
/// (used when reconstructing / applying backward transformations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Apply `Q^T` (reflectors in forward order).
    Transpose,
    /// Apply `Q` (reflectors in reverse order).
    NoTranspose,
}

/// GEQRT: in-place Householder QR of a tile.
///
/// On exit the upper triangle of `a` holds `R` and the strictly lower part
/// holds the Householder vectors (unit diagonal implicit).  Returns the
/// `tau` scalars, one per reflector.
pub fn geqrt(a: &mut Matrix) -> Vec<f64> {
    let m = a.rows();
    let n = a.cols();
    let kmax = m.min(n);
    let mut taus = Vec::with_capacity(kmax);
    for k in 0..kmax {
        // Generate the reflector for column k, rows k..m.
        let alpha = a.get(k, k);
        let mut tail: Vec<f64> = (k + 1..m).map(|i| a.get(i, k)).collect();
        let r = larfg(alpha, &mut tail);
        a.set(k, k, r.beta);
        for (idx, i) in (k + 1..m).enumerate() {
            a.set(i, k, tail[idx]);
        }
        // Apply H_k = I - tau v v^T to the trailing columns k+1..n.
        if r.tau != 0.0 {
            for j in (k + 1)..n {
                let mut w = a.get(k, j);
                for (idx, i) in (k + 1..m).enumerate() {
                    w += tail[idx] * a.get(i, j);
                }
                w *= r.tau;
                a.set(k, j, a.get(k, j) - w);
                for (idx, i) in (k + 1..m).enumerate() {
                    a.set(i, j, a.get(i, j) - tail[idx] * w);
                }
            }
        }
        taus.push(r.tau);
    }
    taus
}

/// UNMQR: apply the orthogonal factor of a GEQRT'd tile to `c` from the left.
///
/// `v` is the factored tile (Householder vectors in its strictly lower part),
/// `taus` the scalars returned by [`geqrt`].
pub fn unmqr(v: &Matrix, taus: &[f64], c: &mut Matrix, trans: Trans) {
    let m = c.rows();
    assert_eq!(v.rows(), m, "UNMQR: V and C row mismatch");
    let kmax = taus.len();
    let order: Vec<usize> = match trans {
        Trans::Transpose => (0..kmax).collect(),
        Trans::NoTranspose => (0..kmax).rev().collect(),
    };
    let n = c.cols();
    for &k in &order {
        let tau = taus[k];
        if tau == 0.0 {
            continue;
        }
        for j in 0..n {
            // w = v_k^T * c[:, j]  with v_k = (0..0, 1, v[k+1..m, k]).
            let mut w = c.get(k, j);
            for i in (k + 1)..m {
                w += v.get(i, k) * c.get(i, j);
            }
            w *= tau;
            c.set(k, j, c.get(k, j) - w);
            for i in (k + 1)..m {
                c.set(i, j, c.get(i, j) - v.get(i, k) * w);
            }
        }
    }
}

/// TSQRT: QR of a triangle stacked on top of a square tile.
///
/// `r1` is an upper-triangular tile (the current `R` of the pivot row) and
/// `a2` a full tile below it.  On exit `r1` holds the updated `R` and `a2`
/// holds the (dense) Householder vectors.  Returns `tau` scalars.
pub fn tsqrt(r1: &mut Matrix, a2: &mut Matrix) -> Vec<f64> {
    let n = r1.cols();
    assert_eq!(a2.cols(), n, "TSQRT: column mismatch");
    let m2 = a2.rows();
    let kmax = n.min(r1.rows());
    let mut taus = Vec::with_capacity(kmax);
    for k in 0..kmax {
        let alpha = r1.get(k, k);
        let mut tail: Vec<f64> = (0..m2).map(|i| a2.get(i, k)).collect();
        let r = larfg(alpha, &mut tail);
        r1.set(k, k, r.beta);
        for (i, &t) in tail.iter().enumerate() {
            a2.set(i, k, t);
        }
        if r.tau != 0.0 {
            for j in (k + 1)..n {
                let mut w = r1.get(k, j);
                for (i, &t) in tail.iter().enumerate() {
                    w += t * a2.get(i, j);
                }
                w *= r.tau;
                r1.set(k, j, r1.get(k, j) - w);
                for (i, &t) in tail.iter().enumerate() {
                    a2.set(i, j, a2.get(i, j) - t * w);
                }
            }
        }
        taus.push(r.tau);
    }
    taus
}

/// TSMQR: apply the reflectors produced by [`tsqrt`] to the tile pair
/// `(a1, a2)` from the left.  `a1` lives in the pivot tile row and `a2` in the
/// eliminated tile row; `v2` is the tile holding the dense Householder
/// vectors (the `a2` output of [`tsqrt`]).
pub fn tsmqr(a1: &mut Matrix, a2: &mut Matrix, v2: &Matrix, taus: &[f64], trans: Trans) {
    let n = a1.cols();
    assert_eq!(a2.cols(), n, "TSMQR: column mismatch");
    let m2 = a2.rows();
    assert_eq!(v2.rows(), m2, "TSMQR: V2 row mismatch");
    let kmax = taus.len();
    let order: Vec<usize> = match trans {
        Trans::Transpose => (0..kmax).collect(),
        Trans::NoTranspose => (0..kmax).rev().collect(),
    };
    for &k in &order {
        let tau = taus[k];
        if tau == 0.0 {
            continue;
        }
        for j in 0..n {
            let mut w = a1.get(k, j);
            for i in 0..m2 {
                w += v2.get(i, k) * a2.get(i, j);
            }
            w *= tau;
            a1.set(k, j, a1.get(k, j) - w);
            for i in 0..m2 {
                a2.set(i, j, a2.get(i, j) - v2.get(i, k) * w);
            }
        }
    }
}

/// TTQRT: QR of a triangle stacked on top of another triangle.
///
/// Both `r1` and `r2` are upper-triangular tiles.  On exit `r1` holds the
/// combined `R` and `r2` holds the Householder vectors (column `k` has
/// non-zeros only in rows `0..=k`, preserving the triangular storage).
pub fn ttqrt(r1: &mut Matrix, r2: &mut Matrix) -> Vec<f64> {
    let n = r1.cols();
    assert_eq!(r2.cols(), n, "TTQRT: column mismatch");
    let kmax = n.min(r1.rows());
    let mut taus = Vec::with_capacity(kmax);
    for k in 0..kmax {
        // Rows of r2 involved in the k-th reflector: 0..=min(k, rows-1).
        let rlen = r2.rows().min(k + 1);
        let alpha = r1.get(k, k);
        let mut tail: Vec<f64> = (0..rlen).map(|i| r2.get(i, k)).collect();
        let r = larfg(alpha, &mut tail);
        r1.set(k, k, r.beta);
        for (i, &t) in tail.iter().enumerate() {
            r2.set(i, k, t);
        }
        if r.tau != 0.0 {
            for j in (k + 1)..n {
                let mut w = r1.get(k, j);
                for (i, &t) in tail.iter().enumerate() {
                    w += t * r2.get(i, j);
                }
                w *= r.tau;
                r1.set(k, j, r1.get(k, j) - w);
                for (i, &t) in tail.iter().enumerate() {
                    r2.set(i, j, r2.get(i, j) - t * w);
                }
            }
        }
        taus.push(r.tau);
    }
    taus
}

/// TTMQR: apply the reflectors produced by [`ttqrt`] to the tile pair
/// `(a1, a2)` from the left.  The k-th reflector touches row `k` of `a1` and
/// rows `0..=k` of `a2`.
pub fn ttmqr(a1: &mut Matrix, a2: &mut Matrix, v2: &Matrix, taus: &[f64], trans: Trans) {
    let n = a1.cols();
    assert_eq!(a2.cols(), n, "TTMQR: column mismatch");
    let kmax = taus.len();
    let order: Vec<usize> = match trans {
        Trans::Transpose => (0..kmax).collect(),
        Trans::NoTranspose => (0..kmax).rev().collect(),
    };
    for &k in &order {
        let tau = taus[k];
        if tau == 0.0 {
            continue;
        }
        let rlen = v2.rows().min(k + 1).min(a2.rows());
        for j in 0..n {
            let mut w = a1.get(k, j);
            for i in 0..rlen {
                w += v2.get(i, k) * a2.get(i, j);
            }
            w *= tau;
            a1.set(k, j, a1.get(k, j) - w);
            for i in 0..rlen {
                a2.set(i, j, a2.get(i, j) - v2.get(i, k) * w);
            }
        }
    }
}

/// Explicitly build the `m x m` orthogonal factor of a GEQRT'd tile.
/// Only used by tests and small examples (cost `O(m^3)`).
pub fn build_q(v: &Matrix, taus: &[f64]) -> Matrix {
    let m = v.rows();
    let mut q = Matrix::identity(m);
    // Q = H_1 ... H_k  =>  apply Q (NoTranspose) to the identity.
    unmqr(v, taus, &mut q, Trans::NoTranspose);
    q
}

/// Helper used by tests: apply a reflector stored as a full vector.
#[allow(dead_code)]
fn apply_full_reflector(tau: f64, v: &[f64], x: &mut [f64]) {
    let w = dot(v, x);
    axpy(-tau * w, v, x);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bidiag_matrix::checks::{orthogonality_error, relative_error};
    use bidiag_matrix::gen::random_gaussian;

    fn upper_triangle_of(a: &Matrix) -> Matrix {
        Matrix::from_fn(
            a.rows(),
            a.cols(),
            |i, j| if j >= i { a.get(i, j) } else { 0.0 },
        )
    }

    #[test]
    fn geqrt_factors_square_tile() {
        let a0 = random_gaussian(8, 8, 1);
        let mut a = a0.clone();
        let taus = geqrt(&mut a);
        let r = upper_triangle_of(&a);
        let q = build_q(&a, &taus);
        assert!(orthogonality_error(&q) < 1e-13);
        assert!(relative_error(&a0, &q.matmul(&r)) < 1e-13);
    }

    #[test]
    fn geqrt_factors_tall_and_wide_tiles() {
        for (m, n) in [(10, 4), (4, 10), (7, 7), (1, 5), (5, 1)] {
            let a0 = random_gaussian(m, n, (m * 100 + n) as u64);
            let mut a = a0.clone();
            let taus = geqrt(&mut a);
            let q = build_q(&a, &taus);
            let r = upper_triangle_of(&a);
            assert!(
                orthogonality_error(&q) < 1e-13,
                "Q not orthogonal for {m}x{n}"
            );
            assert!(
                relative_error(&a0, &q.matmul(&r)) < 1e-13,
                "A != QR for {m}x{n}"
            );
        }
    }

    #[test]
    fn unmqr_transpose_then_notranspose_is_identity() {
        let mut v = random_gaussian(6, 6, 3);
        let taus = geqrt(&mut v);
        let c0 = random_gaussian(6, 4, 4);
        let mut c = c0.clone();
        unmqr(&v, &taus, &mut c, Trans::Transpose);
        unmqr(&v, &taus, &mut c, Trans::NoTranspose);
        assert!(relative_error(&c0, &c) < 1e-13);
    }

    #[test]
    fn tsqrt_zeroes_bottom_tile_and_preserves_factorization() {
        let nb = 6;
        let a_top0 = random_gaussian(nb, nb, 10);
        let a_bot0 = random_gaussian(nb, nb, 11);
        // Start from a GEQRT'd top tile so that r1 is upper triangular.
        let mut top = a_top0.clone();
        let t_top = geqrt(&mut top);
        let mut r1 = upper_triangle_of(&top);
        let mut a2 = a_bot0.clone();
        let taus = tsqrt(&mut r1, &mut a2);

        // The stacked matrix [R1_old; A2_old] must equal Q * [R1_new; 0].
        let mut stacked = Matrix::zeros(2 * nb, nb);
        stacked.copy_block(0, 0, &upper_triangle_of(&top));
        stacked.copy_block(nb, 0, &a_bot0);

        // Rebuild Q by applying the TS reflectors to the identity.
        let mut q = Matrix::identity(2 * nb);
        // Use tsmqr on the blocks of the identity (columns of I).
        let mut q_top = q.block(0, 0, nb, 2 * nb);
        let mut q_bot = q.block(nb, 0, nb, 2 * nb);
        tsmqr(&mut q_top, &mut q_bot, &a2, &taus, Trans::NoTranspose);
        q.copy_block(0, 0, &q_top);
        q.copy_block(nb, 0, &q_bot);

        let mut rnew = Matrix::zeros(2 * nb, nb);
        rnew.copy_block(0, 0, &upper_triangle_of(&r1));
        assert!(orthogonality_error(&q) < 1e-12);
        assert!(relative_error(&stacked, &q.matmul(&rnew)) < 1e-12);
        let _ = t_top;
    }

    #[test]
    fn tsmqr_round_trip() {
        let nb = 5;
        let mut r1 = upper_triangle_of(&random_gaussian(nb, nb, 20));
        let mut v2 = random_gaussian(nb, nb, 21);
        let taus = tsqrt(&mut r1, &mut v2);
        let c1_0 = random_gaussian(nb, 3, 22);
        let c2_0 = random_gaussian(nb, 3, 23);
        let mut c1 = c1_0.clone();
        let mut c2 = c2_0.clone();
        tsmqr(&mut c1, &mut c2, &v2, &taus, Trans::Transpose);
        tsmqr(&mut c1, &mut c2, &v2, &taus, Trans::NoTranspose);
        assert!(relative_error(&c1_0, &c1) < 1e-12);
        assert!(relative_error(&c2_0, &c2) < 1e-12);
    }

    #[test]
    fn ttqrt_zeroes_second_triangle() {
        let nb = 6;
        let mut top = random_gaussian(nb, nb, 30);
        let mut bot = random_gaussian(nb, nb, 31);
        let _ = geqrt(&mut top);
        let _ = geqrt(&mut bot);
        let r1_0 = upper_triangle_of(&top);
        let r2_0 = upper_triangle_of(&bot);
        let mut r1 = r1_0.clone();
        let mut r2 = r2_0.clone();
        let taus = ttqrt(&mut r1, &mut r2);

        // Norm of each column of the stacked [R1;R2] must be preserved by the
        // orthogonal reduction, and R2 above holds V (not zeros), so check
        // the factorization instead: [R1_0; R2_0] = Q [R1_new; 0].
        let mut q = Matrix::identity(2 * nb);
        let mut q_top = q.block(0, 0, nb, 2 * nb);
        let mut q_bot = q.block(nb, 0, nb, 2 * nb);
        ttmqr(&mut q_top, &mut q_bot, &r2, &taus, Trans::NoTranspose);
        q.copy_block(0, 0, &q_top);
        q.copy_block(nb, 0, &q_bot);

        let mut stacked = Matrix::zeros(2 * nb, nb);
        stacked.copy_block(0, 0, &r1_0);
        stacked.copy_block(nb, 0, &r2_0);
        let mut rnew = Matrix::zeros(2 * nb, nb);
        rnew.copy_block(0, 0, &upper_triangle_of(&r1));
        assert!(orthogonality_error(&q) < 1e-12);
        assert!(relative_error(&stacked, &q.matmul(&rnew)) < 1e-12);
    }

    #[test]
    fn ttmqr_round_trip() {
        let nb = 4;
        let mut r1 = upper_triangle_of(&random_gaussian(nb, nb, 40));
        let mut r2 = upper_triangle_of(&random_gaussian(nb, nb, 41));
        let taus = ttqrt(&mut r1, &mut r2);
        let c1_0 = random_gaussian(nb, nb, 42);
        let c2_0 = random_gaussian(nb, nb, 43);
        let mut c1 = c1_0.clone();
        let mut c2 = c2_0.clone();
        ttmqr(&mut c1, &mut c2, &r2, &taus, Trans::Transpose);
        ttmqr(&mut c1, &mut c2, &r2, &taus, Trans::NoTranspose);
        assert!(relative_error(&c1_0, &c1) < 1e-12);
        assert!(relative_error(&c2_0, &c2) < 1e-12);
    }

    #[test]
    fn ragged_tiles_are_supported() {
        // Bottom tile with fewer rows than the tile size (last tile row).
        let nb = 5;
        let mut r1 = upper_triangle_of(&random_gaussian(nb, nb, 50));
        let mut a2 = random_gaussian(3, nb, 51);
        let taus = tsqrt(&mut r1, &mut a2);
        assert_eq!(taus.len(), nb);
        assert!(r1.is_upper_triangular(1e-12));

        let mut rr1 = upper_triangle_of(&random_gaussian(nb, nb, 52));
        let mut bot = random_gaussian(3, nb, 53);
        let _ = geqrt(&mut bot);
        let mut rr2 = upper_triangle_of(&bot);
        let taus2 = ttqrt(&mut rr1, &mut rr2);
        assert_eq!(taus2.len(), nb);
    }
}
