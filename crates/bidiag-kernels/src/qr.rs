//! Tile kernels for the tiled QR factorization (Table I of the paper).
//!
//! The six kernels and their costs in units of `nb^3 / 3` floating point
//! operations are:
//!
//! | kernel  | role                                   | cost |
//! |---------|----------------------------------------|------|
//! | GEQRT   | factor a square tile into a triangle   | 4    |
//! | UNMQR   | apply the GEQRT reflectors to a tile   | 6    |
//! | TSQRT   | zero a square tile below a triangle    | 6    |
//! | TSMQR   | apply the TSQRT reflectors to a pair   | 12   |
//! | TTQRT   | zero a triangle below a triangle       | 2    |
//! | TTMQR   | apply the TTQRT reflectors to a pair   | 6    |
//!
//! Two implementations live side by side:
//!
//! * The **blocked** kernels (`geqrt`, `unmqr`, ...) are the production data
//!   plane.  Factorization kernels generate their reflectors in place on
//!   contiguous column slices (no per-reflector heap `Vec`s) and build the
//!   `IB`-block-diagonal of the compact-WY `T` factor incrementally with the
//!   chunk-local `xLARFT` recurrence (the only part of `T` the chunked
//!   applies consume — see [`TFactor`]), returned as a [`TFactor`].  Apply
//!   kernels run the compact-WY sweep `W = C^T V; W = W op(T)^T; C -= V W^T`
//!   on a transposed `n x IB` panel (LAPACK `xLARFB`'s layout): `TSMQR`, the
//!   hottest kernel, is two dense calls into [`bidiag_matrix::gemm`] around
//!   a trmm-style `T` product, while `UNMQR`/`TTMQR` read their structured
//!   `V` (unit-lower trapezoid / triangle) in place through the fused sweeps
//!   of [`crate::wy`] instead of densifying it into scratch.  All scratch
//!   comes from a caller-provided [`Workspace`].
//! * The **unblocked** references (`geqrt_unblocked`, `unmqr_unblocked`, ...)
//!   apply the Householder reflectors one by one, exactly mirroring LAPACK
//!   `xGEQRT2`/`xTPQRT2`.  They are the numerical oracle the property tests
//!   compare the blocked kernels against, and they define the storage
//!   convention both share: `R` in the upper triangle, Householder vectors
//!   below (GEQRT), dense vectors in the second tile (TSQRT), triangular
//!   vectors in the second tile (TTQRT).

use crate::householder::{axpy, dot, larfg};
use crate::wy::{
    apply_t_left, apply_t_right, chunk_order, grow, trap_ctv, trap_cvwt, tri_ctv, tri_cvwt,
    TFactor, Workspace,
};
use bidiag_matrix::gemm::{dot as fdot, gemm_nn_scratch, gemm_tn_scratch};
use bidiag_matrix::{simd, Matrix, MatrixViewMut};

/// Whether an apply kernel applies `Q^T` (used by factorizations) or `Q`
/// (used when reconstructing / applying backward transformations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Apply `Q^T` (reflectors in forward order).
    Transpose,
    /// Apply `Q` (reflectors in reverse order).
    NoTranspose,
}

/// Apply one reflector `H = I - tau v v^T`, `v = (1, vtail)`, to every
/// column of `c` (`c.rows() == vtail.len() + 1`), four columns per pass.
fn larf_left(tau: f64, vtail: &[f64], c: &mut MatrixViewMut<'_>) {
    let mlen = vtail.len();
    debug_assert_eq!(c.rows(), mlen + 1);
    let n = c.cols();
    let be = simd::backend();
    let mut cols = c.cols_mut();
    let mut j = 0;
    while j < n {
        if j + 4 <= n {
            let c0 = cols.next().unwrap();
            let c1 = cols.next().unwrap();
            let c2 = cols.next().unwrap();
            let c3 = cols.next().unwrap();
            let d = simd::dot4(be, vtail, &c0[1..], &c1[1..], &c2[1..], &c3[1..]);
            let w0 = tau * (c0[0] + d[0]);
            let w1 = tau * (c1[0] + d[1]);
            let w2 = tau * (c2[0] + d[2]);
            let w3 = tau * (c3[0] + d[3]);
            c0[0] -= w0;
            c1[0] -= w1;
            c2[0] -= w2;
            c3[0] -= w3;
            simd::axpy(be, &mut c0[1..], -w0, vtail);
            simd::axpy(be, &mut c1[1..], -w1, vtail);
            simd::axpy(be, &mut c2[1..], -w2, vtail);
            simd::axpy(be, &mut c3[1..], -w3, vtail);
            j += 4;
        } else {
            let c0 = cols.next().unwrap();
            let mut w = c0[0];
            for i in 0..mlen {
                w += vtail[i] * c0[i + 1];
            }
            w *= tau;
            c0[0] -= w;
            for i in 0..mlen {
                c0[i + 1] -= vtail[i] * w;
            }
            j += 1;
        }
    }
}

/// Apply one TS/TT reflector — head `e_k` in the `r1` row, tail `v` in the
/// prefix of the second tile's columns — to `r1` row `k` (columns `k+1..`)
/// and the matching prefix of every `trail` column, four columns per pass.
fn ts_update(tau: f64, v: &[f64], r1: &mut Matrix, k: usize, trail: &mut MatrixViewMut<'_>) {
    let rl = v.len();
    let n = trail.cols();
    let be = simd::backend();
    let mut cols = trail.cols_mut();
    let mut jj = 0;
    while jj < n {
        let j = k + 1 + jj;
        if jj + 4 <= n {
            let c0 = cols.next().unwrap();
            let c1 = cols.next().unwrap();
            let c2 = cols.next().unwrap();
            let c3 = cols.next().unwrap();
            let d = simd::dot4(be, v, &c0[..rl], &c1[..rl], &c2[..rl], &c3[..rl]);
            let w0 = tau * (r1.get(k, j) + d[0]);
            let w1 = tau * (r1.get(k, j + 1) + d[1]);
            let w2 = tau * (r1.get(k, j + 2) + d[2]);
            let w3 = tau * (r1.get(k, j + 3) + d[3]);
            r1.set(k, j, r1.get(k, j) - w0);
            r1.set(k, j + 1, r1.get(k, j + 1) - w1);
            r1.set(k, j + 2, r1.get(k, j + 2) - w2);
            r1.set(k, j + 3, r1.get(k, j + 3) - w3);
            simd::axpy(be, &mut c0[..rl], -w0, v);
            simd::axpy(be, &mut c1[..rl], -w1, v);
            simd::axpy(be, &mut c2[..rl], -w2, v);
            simd::axpy(be, &mut c3[..rl], -w3, v);
            jj += 4;
        } else {
            let c0 = cols.next().unwrap();
            let mut w = r1.get(k, j);
            for i in 0..rl {
                w += v[i] * c0[i];
            }
            w *= tau;
            r1.set(k, j, r1.get(k, j) - w);
            for i in 0..rl {
                c0[i] -= v[i] * w;
            }
            jj += 1;
        }
    }
}

/// GEQRT: in-place Householder QR of a tile, with the compact-WY `T` factor
/// built alongside.
///
/// On exit the upper triangle of `a` holds `R` and the strictly lower part
/// holds the Householder vectors (unit diagonal implicit).  Returns the
/// [`TFactor`] (`tau` scalars + upper-triangular `T`) consumed by [`unmqr`].
pub fn geqrt(a: &mut Matrix, ws: &mut Workspace) -> TFactor {
    let m = a.rows();
    let n = a.cols();
    let kmax = m.min(n);
    let mut tf = TFactor::with_kmax(kmax);
    let (_, aux, _) = ws.bufs();
    for k in 0..kmax {
        let tau;
        {
            let mut av = a.as_view_mut();
            let (mut head, mut trail_cols) = av.split_cols_at_mut(k + 1);
            let colk = head.col_mut(k);
            let r = larfg(colk[k], &mut colk[k + 1..]);
            colk[k] = r.beta;
            tau = r.tau;
            if tau != 0.0 && k + 1 < n {
                let vtail = &head.col(k)[k + 1..];
                let mut trail = trail_cols.submatrix_mut(k, 0, m - k, n - k - 1);
                larf_left(tau, vtail, &mut trail);
            }
        }
        // T column k, chunk-local (only the IB-diagonal block of T is ever
        // consumed): vdots[l - k0] = v_l^T v_k = a[k, l] + a[k+1.., l] . a[k+1.., k].
        let k0 = TFactor::chunk_start(k);
        let vd = grow(aux, k - k0);
        let ck = a.col(k);
        for (l, slot) in vd.iter_mut().enumerate() {
            let cl = a.col(k0 + l);
            *slot = cl[k] + fdot(&cl[k + 1..m], &ck[k + 1..m]);
        }
        tf.append(tau, vd);
    }
    tf
}

/// UNMQR: apply the orthogonal factor of a GEQRT'd tile to `c` from the left
/// as the three-sweep compact-WY product `C -= V op(T) (V^T C)`.
///
/// `v` is the factored tile (Householder vectors in its strictly lower
/// part), `tf` the factor returned by [`geqrt`].
pub fn unmqr(v: &Matrix, tf: &TFactor, c: &mut Matrix, trans: Trans, ws: &mut Workspace) {
    let m = c.rows();
    assert_eq!(v.rows(), m, "UNMQR: V and C row mismatch");
    let n = c.cols();
    let k = tf.len();
    if k == 0 || n == 0 {
        return;
    }
    let (panel, _, gemm) = ws.bufs();
    for (p, ibp) in chunk_order(k, trans) {
        // Structure-aware xLARFB sweep on the transposed panel
        // W = C^T V_p (n x ib): the chunk's unit-lower-triangular top runs
        // as trmm-style contiguous axpys, the dense rows below as a GEMM —
        // V is read in place, never densified into scratch.  In the
        // transposed layout the T product applies from the right:
        //   Q^T C = C - V T^T V^T C  <=>  W := W T,
        //   Q   C = C - V T   V^T C  <=>  W := W T^T.
        let mut w = MatrixViewMut::new(grow(panel, ibp * n), n, ibp, n);
        trap_ctv(v.as_view(), p, ibp, c.as_view(), &mut w, gemm);
        apply_t_right(
            &mut w,
            tf.t().view(p, p, ibp, ibp),
            matches!(trans, Trans::NoTranspose),
        );
        trap_cvwt(v.as_view(), p, ibp, &mut w, &mut c.as_view_mut(), gemm);
    }
}

/// TSQRT: QR of a triangle stacked on top of a square tile, with the
/// compact-WY `T` factor built alongside.
///
/// `r1` is an upper-triangular tile (the current `R` of the pivot row) and
/// `a2` a full tile below it.  On exit `r1` holds the updated `R` and `a2`
/// holds the (dense) Householder vectors.  Returns the [`TFactor`].
pub fn tsqrt(r1: &mut Matrix, a2: &mut Matrix, ws: &mut Workspace) -> TFactor {
    let n = r1.cols();
    assert_eq!(a2.cols(), n, "TSQRT: column mismatch");
    let m2 = a2.rows();
    let kmax = n.min(r1.rows());
    let mut tf = TFactor::with_kmax(kmax);
    let (_, aux, _) = ws.bufs();
    for k in 0..kmax {
        let tau;
        {
            let mut a2v = a2.as_view_mut();
            let (mut head, mut trail) = a2v.split_cols_at_mut(k + 1);
            let colk = head.col_mut(k);
            let r = larfg(r1.get(k, k), colk);
            r1.set(k, k, r.beta);
            tau = r.tau;
            if tau != 0.0 && k + 1 < n {
                ts_update(tau, head.col(k), r1, k, &mut trail);
            }
        }
        // T column k, chunk-local: the e_k heads are orthogonal, so only
        // the dense tails contribute: vdots[l - k0] = a2[:, l] . a2[:, k].
        let k0 = TFactor::chunk_start(k);
        let vd = grow(aux, k - k0);
        let ck = a2.col(k);
        for (l, slot) in vd.iter_mut().enumerate() {
            *slot = fdot(a2.col(k0 + l), &ck[..m2]);
        }
        tf.append(tau, vd);
    }
    tf
}

/// TSMQR: apply the reflectors produced by [`tsqrt`] to the tile pair
/// `(a1, a2)` from the left.  `a1` lives in the pivot tile row and `a2` in
/// the eliminated tile row; `v2` is the tile holding the dense Householder
/// vectors (the `a2` output of [`tsqrt`]).
///
/// This is the hottest kernel of the factorization (Table I weight 12) and
/// runs as two dense GEMMs around the small triangular `T` product.
pub fn tsmqr(
    a1: &mut Matrix,
    a2: &mut Matrix,
    v2: &Matrix,
    tf: &TFactor,
    trans: Trans,
    ws: &mut Workspace,
) {
    let n = a1.cols();
    assert_eq!(a2.cols(), n, "TSMQR: column mismatch");
    let m2 = a2.rows();
    assert_eq!(v2.rows(), m2, "TSMQR: V2 row mismatch");
    let k = tf.len();
    if k == 0 || n == 0 {
        return;
    }
    assert!(a1.rows() >= k, "TSMQR: A1 has fewer rows than reflectors");
    let (panel, aux, gemm) = ws.bufs();
    for (p, ibp) in chunk_order(k, trans) {
        let mut w = MatrixViewMut::new(grow(panel, ibp * n), ibp, n, ibp);
        let v2p = v2.view(0, p, m2, ibp);
        // W = A1[p..p+ib, :] + V2_p^T A2.
        for (j, wcol) in w.cols_mut().enumerate() {
            wcol.copy_from_slice(&a1.col(j)[p..p + ibp]);
        }
        gemm_tn_scratch(&mut w, 1.0, v2p, a2.as_view(), gemm);
        // W = op(T_pp) W.
        apply_t_left(&mut w, tf.t().view(p, p, ibp, ibp), trans, aux);
        // A1[p..p+ib, :] -= W;  A2 -= V2_p W.
        for j in 0..n {
            let wcol = w.col(j);
            let acol = &mut a1.col_mut(j)[p..p + ibp];
            for i in 0..ibp {
                acol[i] -= wcol[i];
            }
        }
        gemm_nn_scratch(&mut a2.as_view_mut(), -1.0, v2p, w.as_view(), gemm);
    }
}

/// TTQRT: QR of a triangle stacked on top of another triangle, with the
/// compact-WY `T` factor built alongside.
///
/// Both `r1` and `r2` are upper-triangular tiles.  On exit `r1` holds the
/// combined `R` and `r2` holds the Householder vectors (column `k` has
/// non-zeros only in rows `0..=k`, preserving the triangular storage — the
/// strictly lower part of `r2` is never touched).
pub fn ttqrt(r1: &mut Matrix, r2: &mut Matrix, ws: &mut Workspace) -> TFactor {
    let n = r1.cols();
    assert_eq!(r2.cols(), n, "TTQRT: column mismatch");
    let m2 = r2.rows();
    let kmax = n.min(r1.rows());
    let mut tf = TFactor::with_kmax(kmax);
    let (_, aux, _) = ws.bufs();
    for k in 0..kmax {
        let rl = (k + 1).min(m2);
        let tau;
        {
            let mut r2v = r2.as_view_mut();
            let (mut head, mut trail) = r2v.split_cols_at_mut(k + 1);
            let colk = head.col_mut(k);
            let r = larfg(r1.get(k, k), &mut colk[..rl]);
            r1.set(k, k, r.beta);
            tau = r.tau;
            if tau != 0.0 && k + 1 < n {
                ts_update(tau, &head.col(k)[..rl], r1, k, &mut trail);
            }
        }
        // T column k, chunk-local: vdots over the overlap of the two
        // triangular tails.  Restricting to the chunk is what makes the
        // "fused" TTQRT cheaper than its unblocked reference: the T build
        // costs O(IB) short dots per reflector instead of O(k).
        let k0 = TFactor::chunk_start(k);
        let vd = grow(aux, k - k0);
        let ck = r2.col(k);
        for (l, slot) in vd.iter_mut().enumerate() {
            let rll = (k0 + l + 1).min(m2);
            *slot = fdot(&r2.col(k0 + l)[..rll], &ck[..rll]);
        }
        tf.append(tau, vd);
    }
    tf
}

/// TTMQR: apply the reflectors produced by [`ttqrt`] to the tile pair
/// `(a1, a2)` from the left.  The k-th reflector touches row `k` of `a1`
/// and rows `0..=k` of `a2`; the triangular structure of `v2` is respected,
/// so whatever the strictly lower part of the `v2` tile holds (typically the
/// Householder vectors of an earlier GEQRT) is never read.
pub fn ttmqr(
    a1: &mut Matrix,
    a2: &mut Matrix,
    v2: &Matrix,
    tf: &TFactor,
    trans: Trans,
    ws: &mut Workspace,
) {
    let n = a1.cols();
    assert_eq!(a2.cols(), n, "TTMQR: column mismatch");
    let m2 = a2.rows();
    assert_eq!(v2.rows(), m2, "TTMQR: V2 row mismatch");
    let k = tf.len();
    if k == 0 || n == 0 {
        return;
    }
    assert!(a1.rows() >= k, "TTMQR: A1 has fewer rows than reflectors");
    let (panel, aux, gemm) = ws.bufs();
    for (p, ibp) in chunk_order(k, trans) {
        // Structure-aware sweep on the transposed panel W = A1^T + A2^T V2_p
        // (n x ib): the triangular V2 chunk is read in place — common
        // prefix rows as a GEMM, ragged remainder as contiguous row-axpys
        // through a transposed strip (see `tri_ctv`) — no densified copy.
        // T applies from the right exactly as in `unmqr`.
        let mut w = MatrixViewMut::new(grow(panel, ibp * n), n, ibp, n);
        for j in 0..n {
            let acol = a1.col(j);
            for kk in 0..ibp {
                w.set(j, kk, acol[p + kk]);
            }
        }
        tri_ctv(v2.as_view(), p, ibp, a2.as_view(), &mut w, gemm, aux);
        apply_t_right(
            &mut w,
            tf.t().view(p, p, ibp, ibp),
            matches!(trans, Trans::NoTranspose),
        );
        for j in 0..n {
            let acol = a1.col_mut(j);
            for kk in 0..ibp {
                acol[p + kk] -= w.get(j, kk);
            }
        }
        tri_cvwt(
            v2.as_view(),
            p,
            ibp,
            w.as_view(),
            &mut a2.as_view_mut(),
            gemm,
            aux,
        );
    }
}

/// GEQRT, unblocked reference: apply the Householder reflectors one by one.
/// Returns the `tau` scalars, one per reflector.
pub fn geqrt_unblocked(a: &mut Matrix) -> Vec<f64> {
    let m = a.rows();
    let n = a.cols();
    let kmax = m.min(n);
    let mut taus = Vec::with_capacity(kmax);
    for k in 0..kmax {
        // Generate the reflector for column k, rows k..m.
        let alpha = a.get(k, k);
        let mut tail: Vec<f64> = (k + 1..m).map(|i| a.get(i, k)).collect();
        let r = larfg(alpha, &mut tail);
        a.set(k, k, r.beta);
        for (idx, i) in (k + 1..m).enumerate() {
            a.set(i, k, tail[idx]);
        }
        // Apply H_k = I - tau v v^T to the trailing columns k+1..n.
        if r.tau != 0.0 {
            for j in (k + 1)..n {
                let mut w = a.get(k, j);
                for (idx, i) in (k + 1..m).enumerate() {
                    w += tail[idx] * a.get(i, j);
                }
                w *= r.tau;
                a.set(k, j, a.get(k, j) - w);
                for (idx, i) in (k + 1..m).enumerate() {
                    a.set(i, j, a.get(i, j) - tail[idx] * w);
                }
            }
        }
        taus.push(r.tau);
    }
    taus
}

/// UNMQR, unblocked reference: apply the reflectors of a GEQRT'd tile one by
/// one from the left.
pub fn unmqr_unblocked(v: &Matrix, taus: &[f64], c: &mut Matrix, trans: Trans) {
    let m = c.rows();
    assert_eq!(v.rows(), m, "UNMQR: V and C row mismatch");
    let kmax = taus.len();
    let order: Vec<usize> = match trans {
        Trans::Transpose => (0..kmax).collect(),
        Trans::NoTranspose => (0..kmax).rev().collect(),
    };
    let n = c.cols();
    for &k in &order {
        let tau = taus[k];
        if tau == 0.0 {
            continue;
        }
        for j in 0..n {
            // w = v_k^T * c[:, j]  with v_k = (0..0, 1, v[k+1..m, k]).
            let mut w = c.get(k, j);
            for i in (k + 1)..m {
                w += v.get(i, k) * c.get(i, j);
            }
            w *= tau;
            c.set(k, j, c.get(k, j) - w);
            for i in (k + 1)..m {
                c.set(i, j, c.get(i, j) - v.get(i, k) * w);
            }
        }
    }
}

/// TSQRT, unblocked reference.
pub fn tsqrt_unblocked(r1: &mut Matrix, a2: &mut Matrix) -> Vec<f64> {
    let n = r1.cols();
    assert_eq!(a2.cols(), n, "TSQRT: column mismatch");
    let m2 = a2.rows();
    let kmax = n.min(r1.rows());
    let mut taus = Vec::with_capacity(kmax);
    for k in 0..kmax {
        let alpha = r1.get(k, k);
        let mut tail: Vec<f64> = (0..m2).map(|i| a2.get(i, k)).collect();
        let r = larfg(alpha, &mut tail);
        r1.set(k, k, r.beta);
        for (i, &t) in tail.iter().enumerate() {
            a2.set(i, k, t);
        }
        if r.tau != 0.0 {
            for j in (k + 1)..n {
                let mut w = r1.get(k, j);
                for (i, &t) in tail.iter().enumerate() {
                    w += t * a2.get(i, j);
                }
                w *= r.tau;
                r1.set(k, j, r1.get(k, j) - w);
                for (i, &t) in tail.iter().enumerate() {
                    a2.set(i, j, a2.get(i, j) - t * w);
                }
            }
        }
        taus.push(r.tau);
    }
    taus
}

/// TSMQR, unblocked reference.
pub fn tsmqr_unblocked(a1: &mut Matrix, a2: &mut Matrix, v2: &Matrix, taus: &[f64], trans: Trans) {
    let n = a1.cols();
    assert_eq!(a2.cols(), n, "TSMQR: column mismatch");
    let m2 = a2.rows();
    assert_eq!(v2.rows(), m2, "TSMQR: V2 row mismatch");
    let kmax = taus.len();
    let order: Vec<usize> = match trans {
        Trans::Transpose => (0..kmax).collect(),
        Trans::NoTranspose => (0..kmax).rev().collect(),
    };
    for &k in &order {
        let tau = taus[k];
        if tau == 0.0 {
            continue;
        }
        for j in 0..n {
            let mut w = a1.get(k, j);
            for i in 0..m2 {
                w += v2.get(i, k) * a2.get(i, j);
            }
            w *= tau;
            a1.set(k, j, a1.get(k, j) - w);
            for i in 0..m2 {
                a2.set(i, j, a2.get(i, j) - v2.get(i, k) * w);
            }
        }
    }
}

/// TTQRT, unblocked reference.
pub fn ttqrt_unblocked(r1: &mut Matrix, r2: &mut Matrix) -> Vec<f64> {
    let n = r1.cols();
    assert_eq!(r2.cols(), n, "TTQRT: column mismatch");
    let kmax = n.min(r1.rows());
    let mut taus = Vec::with_capacity(kmax);
    for k in 0..kmax {
        // Rows of r2 involved in the k-th reflector: 0..=min(k, rows-1).
        let rlen = r2.rows().min(k + 1);
        let alpha = r1.get(k, k);
        let mut tail: Vec<f64> = (0..rlen).map(|i| r2.get(i, k)).collect();
        let r = larfg(alpha, &mut tail);
        r1.set(k, k, r.beta);
        for (i, &t) in tail.iter().enumerate() {
            r2.set(i, k, t);
        }
        if r.tau != 0.0 {
            for j in (k + 1)..n {
                let mut w = r1.get(k, j);
                for (i, &t) in tail.iter().enumerate() {
                    w += t * r2.get(i, j);
                }
                w *= r.tau;
                r1.set(k, j, r1.get(k, j) - w);
                for (i, &t) in tail.iter().enumerate() {
                    r2.set(i, j, r2.get(i, j) - t * w);
                }
            }
        }
        taus.push(r.tau);
    }
    taus
}

/// TTMQR, unblocked reference.
pub fn ttmqr_unblocked(a1: &mut Matrix, a2: &mut Matrix, v2: &Matrix, taus: &[f64], trans: Trans) {
    let n = a1.cols();
    assert_eq!(a2.cols(), n, "TTMQR: column mismatch");
    let kmax = taus.len();
    let order: Vec<usize> = match trans {
        Trans::Transpose => (0..kmax).collect(),
        Trans::NoTranspose => (0..kmax).rev().collect(),
    };
    for &k in &order {
        let tau = taus[k];
        if tau == 0.0 {
            continue;
        }
        let rlen = v2.rows().min(k + 1).min(a2.rows());
        for j in 0..n {
            let mut w = a1.get(k, j);
            for i in 0..rlen {
                w += v2.get(i, k) * a2.get(i, j);
            }
            w *= tau;
            a1.set(k, j, a1.get(k, j) - w);
            for i in 0..rlen {
                a2.set(i, j, a2.get(i, j) - v2.get(i, k) * w);
            }
        }
    }
}

/// Explicitly build the `m x m` orthogonal factor of a GEQRT'd tile.
/// Only used by tests and small examples (cost `O(m^3)`).
pub fn build_q(v: &Matrix, taus: &[f64]) -> Matrix {
    let m = v.rows();
    let mut q = Matrix::identity(m);
    // Q = H_1 ... H_k  =>  apply Q (NoTranspose) to the identity.
    unmqr_unblocked(v, taus, &mut q, Trans::NoTranspose);
    q
}

/// Helper used by tests: apply a reflector stored as a full vector.
#[allow(dead_code)]
fn apply_full_reflector(tau: f64, v: &[f64], x: &mut [f64]) {
    let w = dot(v, x);
    axpy(-tau * w, v, x);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bidiag_matrix::checks::upper_triangle_of;
    use bidiag_matrix::checks::{orthogonality_error, relative_error};
    use bidiag_matrix::gen::random_gaussian;

    /// Blocked and unblocked factorizations generate reflectors in the same
    /// order, but the blocked panel sweep runs through the SIMD layer (fused
    /// multiply-adds under AVX2), so taus agree to a tight relative
    /// tolerance rather than bitwise.
    fn taus_close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| (x - y).abs() <= 1e-13 * x.abs().max(y.abs()).max(1.0))
    }

    #[test]
    fn geqrt_factors_square_tile() {
        let a0 = random_gaussian(8, 8, 1);
        let mut ws = Workspace::new();
        let mut a = a0.clone();
        let tf = geqrt(&mut a, &mut ws);
        let r = upper_triangle_of(&a);
        let q = build_q(&a, tf.taus());
        assert!(orthogonality_error(&q) < 1e-13);
        assert!(relative_error(&a0, &q.matmul(&r)) < 1e-13);
    }

    #[test]
    fn blocked_geqrt_matches_unblocked() {
        // Same reflector generation in the same order, so the factored tile
        // and tau scalars agree to the last few ulps (the blocked panel sweep
        // runs through the SIMD layer, whose AVX2 lanes fuse multiply-adds);
        // the T factor is extra information.
        for (m, n) in [(10, 4), (4, 10), (7, 7), (1, 5), (5, 1)] {
            let a0 = random_gaussian(m, n, (m * 100 + n) as u64);
            let mut ws = Workspace::new();
            let mut ab = a0.clone();
            let tf = geqrt(&mut ab, &mut ws);
            let mut au = a0.clone();
            let taus = geqrt_unblocked(&mut au);
            assert!(
                relative_error(&au, &ab) < 1e-13,
                "factored tile differs for {m}x{n}"
            );
            assert!(
                taus_close(tf.taus(), &taus),
                "taus differ for {m}x{n}: {:?} vs {:?}",
                tf.taus(),
                taus
            );
        }
    }

    #[test]
    fn unmqr_matches_unblocked_reference() {
        let mut ws = Workspace::new();
        for (m, n) in [(6, 4), (9, 3), (5, 5), (7, 1)] {
            let mut v = random_gaussian(m, m.min(5), 3);
            let tf = geqrt(&mut v, &mut ws);
            let c0 = random_gaussian(m, n, 4);
            for trans in [Trans::Transpose, Trans::NoTranspose] {
                let mut cb = c0.clone();
                unmqr(&v, &tf, &mut cb, trans, &mut ws);
                let mut cu = c0.clone();
                unmqr_unblocked(&v, tf.taus(), &mut cu, trans);
                assert!(
                    relative_error(&cu, &cb) < 1e-13,
                    "blocked UNMQR differs, {m}x{n} {trans:?}"
                );
            }
        }
    }

    #[test]
    fn unmqr_transpose_then_notranspose_is_identity() {
        let mut ws = Workspace::new();
        let mut v = random_gaussian(6, 6, 3);
        let tf = geqrt(&mut v, &mut ws);
        let c0 = random_gaussian(6, 4, 4);
        let mut c = c0.clone();
        unmqr(&v, &tf, &mut c, Trans::Transpose, &mut ws);
        unmqr(&v, &tf, &mut c, Trans::NoTranspose, &mut ws);
        assert!(relative_error(&c0, &c) < 1e-13);
    }

    #[test]
    fn tsqrt_zeroes_bottom_tile_and_preserves_factorization() {
        let nb = 6;
        let mut ws = Workspace::new();
        let a_top0 = random_gaussian(nb, nb, 10);
        let a_bot0 = random_gaussian(nb, nb, 11);
        // Start from a GEQRT'd top tile so that r1 is upper triangular.
        let mut top = a_top0.clone();
        let _ = geqrt(&mut top, &mut ws);
        let mut r1 = upper_triangle_of(&top);
        let mut a2 = a_bot0.clone();
        let tf = tsqrt(&mut r1, &mut a2, &mut ws);

        // The stacked matrix [R1_old; A2_old] must equal Q * [R1_new; 0].
        let mut stacked = Matrix::zeros(2 * nb, nb);
        stacked.copy_block(0, 0, &upper_triangle_of(&top));
        stacked.copy_block(nb, 0, &a_bot0);

        // Rebuild Q by applying the TS reflectors to the identity.
        let mut q = Matrix::identity(2 * nb);
        let mut q_top = q.block(0, 0, nb, 2 * nb);
        let mut q_bot = q.block(nb, 0, nb, 2 * nb);
        tsmqr(
            &mut q_top,
            &mut q_bot,
            &a2,
            &tf,
            Trans::NoTranspose,
            &mut ws,
        );
        q.copy_block(0, 0, &q_top);
        q.copy_block(nb, 0, &q_bot);

        let mut rnew = Matrix::zeros(2 * nb, nb);
        rnew.copy_block(0, 0, &upper_triangle_of(&r1));
        assert!(orthogonality_error(&q) < 1e-12);
        assert!(relative_error(&stacked, &q.matmul(&rnew)) < 1e-12);
    }

    #[test]
    fn tsmqr_matches_unblocked_reference() {
        let nb = 5;
        let mut ws = Workspace::new();
        let mut r1 = upper_triangle_of(&random_gaussian(nb, nb, 20));
        let mut v2 = random_gaussian(nb, nb, 21);
        let tf = tsqrt(&mut r1, &mut v2, &mut ws);
        let c1_0 = random_gaussian(nb, 3, 22);
        let c2_0 = random_gaussian(nb, 3, 23);
        for trans in [Trans::Transpose, Trans::NoTranspose] {
            let mut b1 = c1_0.clone();
            let mut b2 = c2_0.clone();
            tsmqr(&mut b1, &mut b2, &v2, &tf, trans, &mut ws);
            let mut u1 = c1_0.clone();
            let mut u2 = c2_0.clone();
            tsmqr_unblocked(&mut u1, &mut u2, &v2, tf.taus(), trans);
            assert!(relative_error(&u1, &b1) < 1e-13, "{trans:?}");
            assert!(relative_error(&u2, &b2) < 1e-13, "{trans:?}");
        }
    }

    #[test]
    fn tsmqr_round_trip() {
        let nb = 5;
        let mut ws = Workspace::new();
        let mut r1 = upper_triangle_of(&random_gaussian(nb, nb, 20));
        let mut v2 = random_gaussian(nb, nb, 21);
        let tf = tsqrt(&mut r1, &mut v2, &mut ws);
        let c1_0 = random_gaussian(nb, 3, 22);
        let c2_0 = random_gaussian(nb, 3, 23);
        let mut c1 = c1_0.clone();
        let mut c2 = c2_0.clone();
        tsmqr(&mut c1, &mut c2, &v2, &tf, Trans::Transpose, &mut ws);
        tsmqr(&mut c1, &mut c2, &v2, &tf, Trans::NoTranspose, &mut ws);
        assert!(relative_error(&c1_0, &c1) < 1e-12);
        assert!(relative_error(&c2_0, &c2) < 1e-12);
    }

    #[test]
    fn ttqrt_zeroes_second_triangle() {
        let nb = 6;
        let mut ws = Workspace::new();
        let mut top = random_gaussian(nb, nb, 30);
        let mut bot = random_gaussian(nb, nb, 31);
        let _ = geqrt(&mut top, &mut ws);
        let _ = geqrt(&mut bot, &mut ws);
        let r1_0 = upper_triangle_of(&top);
        let r2_0 = upper_triangle_of(&bot);
        let mut r1 = r1_0.clone();
        let mut r2 = r2_0.clone();
        let tf = ttqrt(&mut r1, &mut r2, &mut ws);

        let mut q = Matrix::identity(2 * nb);
        let mut q_top = q.block(0, 0, nb, 2 * nb);
        let mut q_bot = q.block(nb, 0, nb, 2 * nb);
        ttmqr(
            &mut q_top,
            &mut q_bot,
            &r2,
            &tf,
            Trans::NoTranspose,
            &mut ws,
        );
        q.copy_block(0, 0, &q_top);
        q.copy_block(nb, 0, &q_bot);

        let mut stacked = Matrix::zeros(2 * nb, nb);
        stacked.copy_block(0, 0, &r1_0);
        stacked.copy_block(nb, 0, &r2_0);
        let mut rnew = Matrix::zeros(2 * nb, nb);
        rnew.copy_block(0, 0, &upper_triangle_of(&r1));
        assert!(orthogonality_error(&q) < 1e-12);
        assert!(relative_error(&stacked, &q.matmul(&rnew)) < 1e-12);
    }

    #[test]
    fn ttmqr_ignores_the_strictly_lower_part_of_v2() {
        // In the real algorithm the strictly lower part of the V2 tile holds
        // the Householder vectors of an earlier GEQRT; the triangular TTMQR
        // must never read them.
        let nb = 5;
        let mut ws = Workspace::new();
        let mut r1 = upper_triangle_of(&random_gaussian(nb, nb, 40));
        let mut r2 = upper_triangle_of(&random_gaussian(nb, nb, 41));
        let tf = ttqrt(&mut r1, &mut r2, &mut ws);
        // Poison the strictly lower part of the V tile.
        let mut poisoned = r2.clone();
        for j in 0..nb {
            for i in (j + 1)..nb {
                poisoned.set(i, j, 1e30);
            }
        }
        let c1_0 = random_gaussian(nb, nb, 42);
        let c2_0 = random_gaussian(nb, nb, 43);
        let mut a1 = c1_0.clone();
        let mut a2 = c2_0.clone();
        ttmqr(&mut a1, &mut a2, &poisoned, &tf, Trans::Transpose, &mut ws);
        let mut u1 = c1_0.clone();
        let mut u2 = c2_0.clone();
        ttmqr_unblocked(&mut u1, &mut u2, &r2, tf.taus(), Trans::Transpose);
        assert!(relative_error(&u1, &a1) < 1e-13);
        assert!(relative_error(&u2, &a2) < 1e-13);
    }

    #[test]
    fn ttmqr_round_trip() {
        let nb = 4;
        let mut ws = Workspace::new();
        let mut r1 = upper_triangle_of(&random_gaussian(nb, nb, 40));
        let mut r2 = upper_triangle_of(&random_gaussian(nb, nb, 41));
        let tf = ttqrt(&mut r1, &mut r2, &mut ws);
        let c1_0 = random_gaussian(nb, nb, 42);
        let c2_0 = random_gaussian(nb, nb, 43);
        let mut c1 = c1_0.clone();
        let mut c2 = c2_0.clone();
        ttmqr(&mut c1, &mut c2, &r2, &tf, Trans::Transpose, &mut ws);
        ttmqr(&mut c1, &mut c2, &r2, &tf, Trans::NoTranspose, &mut ws);
        assert!(relative_error(&c1_0, &c1) < 1e-12);
        assert!(relative_error(&c2_0, &c2) < 1e-12);
    }

    #[test]
    fn ragged_tiles_are_supported() {
        // Bottom tile with fewer rows than the tile size (last tile row).
        let nb = 5;
        let mut ws = Workspace::new();
        let mut r1 = upper_triangle_of(&random_gaussian(nb, nb, 50));
        let mut a2 = random_gaussian(3, nb, 51);
        let tf = tsqrt(&mut r1, &mut a2, &mut ws);
        assert_eq!(tf.len(), nb);
        assert!(r1.is_upper_triangular(1e-12));

        let mut rr1 = upper_triangle_of(&random_gaussian(nb, nb, 52));
        let mut bot = random_gaussian(3, nb, 53);
        let _ = geqrt(&mut bot, &mut ws);
        let mut rr2 = upper_triangle_of(&bot);
        let tf2 = ttqrt(&mut rr1, &mut rr2, &mut ws);
        assert_eq!(tf2.len(), nb);
    }
}
