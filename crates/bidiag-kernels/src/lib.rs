//! # bidiag-kernels
//!
//! Pure-Rust numerical kernels for the tiled bidiagonalization reproduction:
//!
//! * [`householder`] / [`givens`] — elementary orthogonal transformations,
//! * [`qr`] — the six tile kernels of the tiled QR factorization
//!   (GEQRT/UNMQR/TSQRT/TSMQR/TTQRT/TTMQR, Table I of the paper), each in a
//!   blocked compact-WY production variant and an unblocked reference
//!   variant,
//! * [`lq`] — their LQ duals (GELQT/UNMLQ/TSLQT/TSMLQ/TTLQT/TTMLQ),
//! * [`wy`] — the compact-WY machinery the blocked kernels share:
//!   [`wy::TFactor`] (`tau` scalars + triangular `T`) and [`wy::Workspace`]
//!   (reusable scratch making the kernels allocation-free in steady state),
//! * [`gebd2`] — the scalar (Level-2) Golub–Kahan bidiagonalization used by
//!   the one-stage baselines,
//! * [`band`] — band storage and the Givens bulge-chasing band-to-bidiagonal
//!   reduction (the BND2BD stage),
//! * [`svd`] — the BD2VAL stage: the `bidiag-svd` solver subsystem (dqds
//!   fast path, Sturm spectrum slicing, bisection oracle) re-exported at
//!   the kernel level,
//! * [`jacobi`] — a one-sided Jacobi SVD used as an independent test oracle,
//! * [`cost`] — the Table I kernel cost model driving critical paths and the
//!   machine simulations.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod band;
pub mod cost;
pub mod gebd2;
pub mod givens;
pub mod householder;
pub mod jacobi;
pub mod lq;
pub mod qr;
pub mod svd;
pub mod wy;

pub use band::BandMatrix;
pub use cost::KernelKind;
pub use gebd2::Bidiagonal;
pub use qr::Trans;
pub use wy::{TFactor, Workspace};
