//! Property tests (proptest) of the elementary orthogonal transformations:
//! Householder reflector orthogonality and Givens rotation determinant /
//! norm preservation on random inputs.

use bidiag_kernels::givens::givens;
use bidiag_kernels::householder::larfg;
use bidiag_kernels::qr::{build_q, geqrt};
use bidiag_matrix::checks::orthogonality_error;
use bidiag_matrix::gen::random_gaussian;
use bidiag_matrix::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The explicit reflector `H = I - tau * v * v^T` built from `larfg` is
    /// orthogonal (`||H^T H - I|| <= tol`) and annihilates the tail of the
    /// vector it was generated from.
    #[test]
    fn householder_reflector_is_orthogonal(n in 2usize..24, seed in 0u64..1000) {
        let g = random_gaussian(n, 1, seed);
        let alpha = g.get(0, 0);
        let mut tail: Vec<f64> = (1..n).map(|i| g.get(i, 0)).collect();
        let r = larfg(alpha, &mut tail);

        // v = (1, tail), H = I - tau * v * v^T.
        let mut v = vec![1.0];
        v.extend_from_slice(&tail);
        let h = Matrix::from_fn(n, n, |i, j| {
            (if i == j { 1.0 } else { 0.0 }) - r.tau * v[i] * v[j]
        });
        prop_assert!(orthogonality_error(&h) < 1e-13, "||H^T H - I|| too large");

        // H * (alpha, x_old) = (beta, 0, ..., 0).
        let hx = h.matmul(&g);
        prop_assert!((hx.get(0, 0) - r.beta).abs() < 1e-12 * (1.0 + r.beta.abs()));
        for i in 1..n {
            prop_assert!(hx.get(i, 0).abs() < 1e-12, "tail entry {} not annihilated", i);
        }
    }

    /// The accumulated Q of a full tile QR factorization is orthogonal.
    #[test]
    fn accumulated_q_is_orthogonal(m in 1usize..24, n in 1usize..24, seed in 0u64..1000) {
        let mut a = random_gaussian(m, n, seed);
        let taus = geqrt(&mut a);
        let q = build_q(&a, &taus);
        prop_assert!(orthogonality_error(&q) < 1e-12, "||Q^T Q - I|| too large");
    }

    /// A Givens rotation `G = [[c, s], [-s, c]]` has determinant 1, preserves
    /// the Euclidean norm of every pair it is applied to, and zeroes the
    /// second component of the pair it was generated from.
    #[test]
    fn givens_rotation_preserves_norm_and_determinant(
        f in -10.0f64..10.0,
        g in -10.0f64..10.0,
        x in -10.0f64..10.0,
        y in -10.0f64..10.0,
    ) {
        let rot = givens(f, g);
        let det = rot.c * rot.c + rot.s * rot.s;
        prop_assert!((det - 1.0).abs() < 1e-14, "det(G) = {det}");

        let (xr, yr) = rot.apply(x, y);
        let before = x.hypot(y);
        let after = xr.hypot(yr);
        prop_assert!((before - after).abs() < 1e-12 * (1.0 + before), "norm not preserved");

        let (r, zero) = rot.apply(f, g);
        prop_assert!(zero.abs() < 1e-12 * (1.0 + f.hypot(g)), "g not annihilated");
        prop_assert!((r.abs() - f.hypot(g)).abs() < 1e-12 * (1.0 + f.hypot(g)));
    }
}
