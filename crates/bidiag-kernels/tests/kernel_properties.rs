//! Property tests of the kernel layer.
//!
//! Two families:
//!
//! * proptest checks of the elementary orthogonal transformations
//!   (Householder reflector orthogonality, Givens determinant / norm
//!   preservation) on random inputs;
//! * exhaustive blocked-vs-unblocked equivalence: every blocked compact-WY
//!   tile kernel must match its unblocked reference to `1e-13` (relative)
//!   on square, tall, wide and ragged last-tile shapes for
//!   `nb in {1, 3, 5, 8, 9, 17, 64}` — the sizes straddling the `IB = 8`
//!   chunk boundaries (8, 9, 17) pin the fused chunk-local `T` build and
//!   the structure-aware trapezoid/triangle sweeps of the TT kernels
//!   against the reflector-by-reflector oracles exactly where an
//!   off-by-one in the chunking would surface.

use bidiag_kernels::givens::givens;
use bidiag_kernels::householder::larfg;
use bidiag_kernels::lq::{
    gelqt, gelqt_unblocked, tslqt, tslqt_unblocked, tsmlq, tsmlq_unblocked, ttlqt, ttlqt_unblocked,
    ttmlq, ttmlq_unblocked, unmlq, unmlq_unblocked,
};
use bidiag_kernels::qr::{
    build_q, geqrt, geqrt_unblocked, tsmqr, tsmqr_unblocked, tsqrt, tsqrt_unblocked, ttmqr,
    ttmqr_unblocked, ttqrt, ttqrt_unblocked, unmqr, unmqr_unblocked,
};
use bidiag_kernels::{Trans, Workspace};
use bidiag_matrix::checks::{
    lower_triangle_of, orthogonality_error, relative_error, upper_triangle_of,
};
use bidiag_matrix::gen::random_gaussian;
use bidiag_matrix::Matrix;
use proptest::prelude::*;

/// Tile sizes exercised by the blocked-vs-unblocked sweeps; 8/9/17
/// straddle the `IB = 8` chunk boundaries of the fused kernels.
const NBS: [usize; 7] = [1, 3, 5, 8, 9, 17, 64];
/// Matching tolerance (relative) between blocked and unblocked results.
const TOL: f64 = 1e-13;

/// Blocked and unblocked factorizations generate reflectors in the same
/// serial order, but the blocked panel sweeps run through the SIMD layer
/// (fused multiply-adds under AVX2), so the tau scalars agree to a tight
/// relative tolerance rather than bitwise.
fn taus_close(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= TOL * x.abs().max(y.abs()).max(1.0))
}

/// Square, tall, wide and ragged (last-tile-like, one dimension much
/// smaller) shapes for a given tile size.
fn shapes(nb: usize) -> Vec<(usize, usize)> {
    let mut s = vec![(nb, nb)];
    s.push((nb + nb.div_ceil(2) + 1, nb)); // tall
    s.push((nb, nb + nb.div_ceil(2) + 1)); // wide
    if nb > 1 {
        s.push((nb.div_ceil(2), nb)); // ragged last tile row
        s.push((nb, nb.div_ceil(2))); // ragged last tile column
    }
    s
}

#[test]
fn blocked_geqrt_and_unmqr_match_unblocked() {
    let mut ws = Workspace::new();
    for &nb in &NBS {
        for &(m, n) in &shapes(nb) {
            let a0 = random_gaussian(m, n, (m * 1000 + n) as u64);
            let mut ab = a0.clone();
            let tf = geqrt(&mut ab, &mut ws);
            let mut au = a0.clone();
            let taus = geqrt_unblocked(&mut au);
            assert!(
                relative_error(&au, &ab) < TOL,
                "GEQRT tile differs for {m}x{n}"
            );
            assert!(
                taus_close(tf.taus(), &taus),
                "GEQRT taus differ for {m}x{n}"
            );

            // Apply to square-ish and skinny C operands in both directions.
            for nc in [1usize, nb, nb + 3] {
                let c0 = random_gaussian(m, nc, (m * 7 + nc) as u64);
                for trans in [Trans::Transpose, Trans::NoTranspose] {
                    let mut cb = c0.clone();
                    unmqr(&ab, &tf, &mut cb, trans, &mut ws);
                    let mut cu = c0.clone();
                    unmqr_unblocked(&au, &taus, &mut cu, trans);
                    assert!(
                        relative_error(&cu, &cb) < TOL,
                        "UNMQR differs for {m}x{n}, C cols {nc}, {trans:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn blocked_tsqrt_and_tsmqr_match_unblocked() {
    let mut ws = Workspace::new();
    for &nb in &NBS {
        // Second-tile row counts: full tile and ragged last tile.
        for m2 in [nb, nb.div_ceil(2)] {
            let r1_0 = upper_triangle_of(&random_gaussian(nb, nb, (nb * 31 + m2) as u64));
            let a2_0 = random_gaussian(m2, nb, (nb * 37 + m2) as u64);

            let mut r1b = r1_0.clone();
            let mut a2b = a2_0.clone();
            let tf = tsqrt(&mut r1b, &mut a2b, &mut ws);
            let mut r1u = r1_0.clone();
            let mut a2u = a2_0.clone();
            let taus = tsqrt_unblocked(&mut r1u, &mut a2u);
            assert!(
                relative_error(&r1u, &r1b) < TOL,
                "TSQRT R1, nb={nb} m2={m2}"
            );
            assert!(
                relative_error(&a2u, &a2b) < TOL,
                "TSQRT V2, nb={nb} m2={m2}"
            );
            assert!(taus_close(tf.taus(), &taus));

            for nc in [1usize, nb] {
                let c1_0 = random_gaussian(nb, nc, 3);
                let c2_0 = random_gaussian(m2, nc, 4);
                for trans in [Trans::Transpose, Trans::NoTranspose] {
                    let mut b1 = c1_0.clone();
                    let mut b2 = c2_0.clone();
                    tsmqr(&mut b1, &mut b2, &a2b, &tf, trans, &mut ws);
                    let mut u1 = c1_0.clone();
                    let mut u2 = c2_0.clone();
                    tsmqr_unblocked(&mut u1, &mut u2, &a2u, &taus, trans);
                    assert!(
                        relative_error(&u1, &b1) < TOL && relative_error(&u2, &b2) < TOL,
                        "TSMQR differs, nb={nb} m2={m2} nc={nc} {trans:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn blocked_ttqrt_and_ttmqr_match_unblocked() {
    let mut ws = Workspace::new();
    for &nb in &NBS {
        for m2 in [nb, nb.div_ceil(2)] {
            let r1_0 = upper_triangle_of(&random_gaussian(nb, nb, (nb * 41 + m2) as u64));
            let r2_0 = upper_triangle_of(&random_gaussian(m2, nb, (nb * 43 + m2) as u64));

            let mut r1b = r1_0.clone();
            let mut r2b = r2_0.clone();
            let tf = ttqrt(&mut r1b, &mut r2b, &mut ws);
            let mut r1u = r1_0.clone();
            let mut r2u = r2_0.clone();
            let taus = ttqrt_unblocked(&mut r1u, &mut r2u);
            assert!(
                relative_error(&r1u, &r1b) < TOL,
                "TTQRT R1, nb={nb} m2={m2}"
            );
            assert!(
                relative_error(&r2u, &r2b) < TOL,
                "TTQRT V2, nb={nb} m2={m2}"
            );
            assert!(taus_close(tf.taus(), &taus));

            for nc in [1usize, nb] {
                let c1_0 = random_gaussian(nb, nc, 5);
                let c2_0 = random_gaussian(m2, nc, 6);
                for trans in [Trans::Transpose, Trans::NoTranspose] {
                    let mut b1 = c1_0.clone();
                    let mut b2 = c2_0.clone();
                    ttmqr(&mut b1, &mut b2, &r2b, &tf, trans, &mut ws);
                    let mut u1 = c1_0.clone();
                    let mut u2 = c2_0.clone();
                    ttmqr_unblocked(&mut u1, &mut u2, &r2u, &taus, trans);
                    assert!(
                        relative_error(&u1, &b1) < TOL && relative_error(&u2, &b2) < TOL,
                        "TTMQR differs, nb={nb} m2={m2} nc={nc} {trans:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn blocked_lq_kernels_match_unblocked() {
    let mut ws = Workspace::new();
    for &nb in &NBS {
        // GELQT / UNMLQ over the shape sweep.
        for &(m, n) in &shapes(nb) {
            let a0 = random_gaussian(m, n, (m * 53 + n) as u64);
            let mut ab = a0.clone();
            let tf = gelqt(&mut ab, &mut ws);
            let mut au = a0.clone();
            let taus = gelqt_unblocked(&mut au);
            assert!(relative_error(&au, &ab) < TOL, "GELQT tile, {m}x{n}");
            assert!(taus_close(tf.taus(), &taus));

            for rc in [1usize, nb] {
                let c0 = random_gaussian(rc, n, (rc * 3 + n) as u64);
                for trans in [Trans::Transpose, Trans::NoTranspose] {
                    let mut cb = c0.clone();
                    unmlq(&ab, &tf, &mut cb, trans, &mut ws);
                    let mut cu = c0.clone();
                    unmlq_unblocked(&au, &taus, &mut cu, trans);
                    assert!(
                        relative_error(&cu, &cb) < TOL,
                        "UNMLQ differs, {m}x{n} rows {rc} {trans:?}"
                    );
                }
            }
        }

        // TSLQT / TSMLQ and TTLQT / TTMLQ with ragged second-tile columns.
        for n2 in [nb, nb.div_ceil(2)] {
            let l1_0 = lower_triangle_of(&random_gaussian(nb, nb, (nb * 59 + n2) as u64));
            let a2_0 = random_gaussian(nb, n2, (nb * 61 + n2) as u64);
            let mut l1b = l1_0.clone();
            let mut a2b = a2_0.clone();
            let tf = tslqt(&mut l1b, &mut a2b, &mut ws);
            let mut l1u = l1_0.clone();
            let mut a2u = a2_0.clone();
            let taus = tslqt_unblocked(&mut l1u, &mut a2u);
            assert!(
                relative_error(&l1u, &l1b) < TOL,
                "TSLQT L1, nb={nb} n2={n2}"
            );
            assert!(
                relative_error(&a2u, &a2b) < TOL,
                "TSLQT V2, nb={nb} n2={n2}"
            );
            assert!(taus_close(tf.taus(), &taus));

            for rc in [1usize, nb] {
                let c1_0 = random_gaussian(rc, nb, 7);
                let c2_0 = random_gaussian(rc, n2, 8);
                for trans in [Trans::Transpose, Trans::NoTranspose] {
                    let mut b1 = c1_0.clone();
                    let mut b2 = c2_0.clone();
                    tsmlq(&mut b1, &mut b2, &a2b, &tf, trans, &mut ws);
                    let mut u1 = c1_0.clone();
                    let mut u2 = c2_0.clone();
                    tsmlq_unblocked(&mut u1, &mut u2, &a2u, &taus, trans);
                    assert!(
                        relative_error(&u1, &b1) < TOL && relative_error(&u2, &b2) < TOL,
                        "TSMLQ differs, nb={nb} n2={n2} rc={rc} {trans:?}"
                    );
                }
            }

            let t2_0 = lower_triangle_of(&random_gaussian(nb, n2, (nb * 67 + n2) as u64));
            let mut t1b = l1_0.clone();
            let mut t2b = t2_0.clone();
            let tf = ttlqt(&mut t1b, &mut t2b, &mut ws);
            let mut t1u = l1_0.clone();
            let mut t2u = t2_0.clone();
            let taus = ttlqt_unblocked(&mut t1u, &mut t2u);
            assert!(
                relative_error(&t1u, &t1b) < TOL,
                "TTLQT L1, nb={nb} n2={n2}"
            );
            assert!(
                relative_error(&t2u, &t2b) < TOL,
                "TTLQT V2, nb={nb} n2={n2}"
            );
            assert!(taus_close(tf.taus(), &taus));

            for rc in [1usize, nb] {
                let c1_0 = random_gaussian(rc, nb, 9);
                let c2_0 = random_gaussian(rc, n2, 10);
                for trans in [Trans::Transpose, Trans::NoTranspose] {
                    let mut b1 = c1_0.clone();
                    let mut b2 = c2_0.clone();
                    ttmlq(&mut b1, &mut b2, &t2b, &tf, trans, &mut ws);
                    let mut u1 = c1_0.clone();
                    let mut u2 = c2_0.clone();
                    ttmlq_unblocked(&mut u1, &mut u2, &t2u, &taus, trans);
                    assert!(
                        relative_error(&u1, &b1) < TOL && relative_error(&u2, &b2) < TOL,
                        "TTMLQ differs, nb={nb} n2={n2} rc={rc} {trans:?}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The explicit reflector `H = I - tau * v * v^T` built from `larfg` is
    /// orthogonal (`||H^T H - I|| <= tol`) and annihilates the tail of the
    /// vector it was generated from.
    #[test]
    fn householder_reflector_is_orthogonal(n in 2usize..24, seed in 0u64..1000) {
        let g = random_gaussian(n, 1, seed);
        let alpha = g.get(0, 0);
        let mut tail: Vec<f64> = (1..n).map(|i| g.get(i, 0)).collect();
        let r = larfg(alpha, &mut tail);

        // v = (1, tail), H = I - tau * v * v^T.
        let mut v = vec![1.0];
        v.extend_from_slice(&tail);
        let h = Matrix::from_fn(n, n, |i, j| {
            (if i == j { 1.0 } else { 0.0 }) - r.tau * v[i] * v[j]
        });
        prop_assert!(orthogonality_error(&h) < 1e-13, "||H^T H - I|| too large");

        // H * (alpha, x_old) = (beta, 0, ..., 0).
        let hx = h.matmul(&g);
        prop_assert!((hx.get(0, 0) - r.beta).abs() < 1e-12 * (1.0 + r.beta.abs()));
        for i in 1..n {
            prop_assert!(hx.get(i, 0).abs() < 1e-12, "tail entry {} not annihilated", i);
        }
    }

    /// The accumulated Q of a full blocked tile QR factorization is
    /// orthogonal and reproduces the input.
    #[test]
    fn accumulated_q_is_orthogonal(m in 1usize..24, n in 1usize..24, seed in 0u64..1000) {
        let mut ws = Workspace::new();
        let a0 = random_gaussian(m, n, seed);
        let mut a = a0.clone();
        let tf = geqrt(&mut a, &mut ws);
        let q = build_q(&a, tf.taus());
        prop_assert!(orthogonality_error(&q) < 1e-12, "||Q^T Q - I|| too large");
        let r = upper_triangle_of(&a);
        prop_assert!(relative_error(&a0, &q.matmul(&r)) < 1e-12, "A != QR");
    }

    /// Blocked and unblocked GEQRT agree on random shapes, and the blocked
    /// UNMQR undoes itself.
    #[test]
    fn blocked_kernels_match_on_random_shapes(m in 1usize..20, n in 1usize..20, seed in 0u64..500) {
        let mut ws = Workspace::new();
        let a0 = random_gaussian(m, n, seed);
        let mut ab = a0.clone();
        let tf = geqrt(&mut ab, &mut ws);
        let mut au = a0.clone();
        let taus = geqrt_unblocked(&mut au);
        prop_assert!(relative_error(&au, &ab) < 1e-13);
        prop_assert!(taus_close(tf.taus(), &taus));

        let c0 = random_gaussian(m, n, seed + 1);
        let mut c = c0.clone();
        unmqr(&ab, &tf, &mut c, Trans::Transpose, &mut ws);
        unmqr(&ab, &tf, &mut c, Trans::NoTranspose, &mut ws);
        prop_assert!(relative_error(&c0, &c) < 1e-12);
    }

    /// A Givens rotation `G = [[c, s], [-s, c]]` has determinant 1, preserves
    /// the Euclidean norm of every pair it is applied to, and zeroes the
    /// second component of the pair it was generated from.
    #[test]
    fn givens_rotation_preserves_norm_and_determinant(
        f in -10.0f64..10.0,
        g in -10.0f64..10.0,
        x in -10.0f64..10.0,
        y in -10.0f64..10.0,
    ) {
        let rot = givens(f, g);
        let det = rot.c * rot.c + rot.s * rot.s;
        prop_assert!((det - 1.0).abs() < 1e-14, "det(G) = {det}");

        let (xr, yr) = rot.apply(x, y);
        let before = x.hypot(y);
        let after = xr.hypot(yr);
        prop_assert!((before - after).abs() < 1e-12 * (1.0 + before), "norm not preserved");

        let (r, zero) = rot.apply(f, g);
        prop_assert!(zero.abs() < 1e-12 * (1.0 + f.hypot(g)), "g not annihilated");
        prop_assert!((r.abs() - f.hypot(g)).abs() < 1e-12 * (1.0 + f.hypot(g)));
    }
}
