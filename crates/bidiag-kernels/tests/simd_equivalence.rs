//! Forced-backend equivalence of the SIMD-ported kernel layer.
//!
//! The compact-WY tile kernels route their trapezoid/triangle axpy sweeps
//! through `bidiag_matrix::simd`, and the band bulge chaser routes its
//! fused column-rotation strips the same way. This suite pins the scalar
//! and AVX2 backends to each other through the *real* dispatch path
//! ([`simd::with_forced_backend`] + [`simd::backend`]), at two levels:
//!
//! * **Tile kernels** — outputs compared normwise at `1e-13`: a composite
//!   kernel runs thousands of fused-vs-unfused multiply-adds through
//!   reflector normalizations, so the ~1 ulp/op backend gap amplifies past
//!   the flat `1e-15` the primitive kernels are held to (the same reason
//!   the blocked-vs-unblocked suite uses `1e-13`).
//! * **BND2BD** — compared via the singular values of the resulting
//!   bidiagonal at `1e-12`: a bulge chase is a long *chain* of rotations
//!   where each Givens pair is computed from entries already perturbed by
//!   the previous sweep, so the factors themselves may diverge entry-wise
//!   while the spectrum (the quantity BND2BD exists to preserve) stays
//!   pinned. The spectra are extracted with the bisection oracle, which
//!   has no SIMD dispatch of its own.
//!
//! On a host without AVX2+FMA every test short-circuits to a skip.

use bidiag_kernels::band::BandMatrix;
use bidiag_kernels::lq::{gelqt, tslqt, tsmlq, ttlqt, ttmlq, unmlq};
use bidiag_kernels::qr::{geqrt, tsmqr, tsqrt, ttmqr, ttqrt, unmqr};
use bidiag_kernels::svd::bidiagonal_singular_values;
use bidiag_kernels::{Trans, Workspace};
use bidiag_matrix::checks::{lower_triangle_of, relative_error, upper_triangle_of};
use bidiag_matrix::gen::random_gaussian;
use bidiag_matrix::simd::{self, SimdBackend};

/// Cross-backend tolerance for composite tile kernels (see module docs).
const TOL: f64 = 1e-13;
/// Tile sizes straddling the `IB = 8` chunk boundary and the 4-lane steps.
const NBS: [usize; 5] = [5, 8, 9, 17, 33];

fn under_both<R>(f: impl Fn() -> R) -> Option<(R, R)> {
    if !simd::avx2_available() {
        eprintln!("skipping cross-backend test: AVX2+FMA not available");
        return None;
    }
    let s = simd::with_forced_backend(SimdBackend::Scalar, &f);
    let v = simd::with_forced_backend(SimdBackend::Avx2, &f);
    Some((s, v))
}

fn assert_taus_close(s: &[f64], v: &[f64], what: &str) {
    assert_eq!(s.len(), v.len());
    for (i, (a, b)) in s.iter().zip(v).enumerate() {
        assert!(
            (a - b).abs() <= TOL * a.abs().max(1.0),
            "{what} tau[{i}]: {a} vs {b}"
        );
    }
}

#[test]
fn qr_tile_kernels_agree_across_backends() {
    for &nb in &NBS {
        let m = nb + nb.div_ceil(2) + 1;
        let a0 = random_gaussian(m, nb, (m * 311 + nb) as u64);
        let c0 = random_gaussian(m, nb + 3, (m * 313) as u64);

        let Some((s, v)) = under_both(|| {
            let mut ws = Workspace::new();
            let mut a = a0.clone();
            let tf = geqrt(&mut a, &mut ws);
            let mut ct = c0.clone();
            unmqr(&a, &tf, &mut ct, Trans::Transpose, &mut ws);
            let mut cn = c0.clone();
            unmqr(&a, &tf, &mut cn, Trans::NoTranspose, &mut ws);
            (a, tf.taus().to_vec(), ct, cn)
        }) else {
            return;
        };
        assert!(relative_error(&s.0, &v.0) < TOL, "GEQRT factor nb={nb}");
        assert_taus_close(&s.1, &v.1, "GEQRT");
        assert!(relative_error(&s.2, &v.2) < TOL, "UNMQR^T nb={nb}");
        assert!(relative_error(&s.3, &v.3) < TOL, "UNMQR nb={nb}");
    }
}

#[test]
fn ts_and_tt_qr_kernels_agree_across_backends() {
    for &nb in &NBS {
        for m2 in [nb, nb.div_ceil(2)] {
            let r1_0 = upper_triangle_of(&random_gaussian(nb, nb, (nb * 331 + m2) as u64));
            let a2_0 = random_gaussian(m2, nb, (nb * 337 + m2) as u64);
            let c1_0 = random_gaussian(nb, nb, 41);
            let c2_0 = random_gaussian(m2, nb, 43);

            let Some((s, v)) = under_both(|| {
                let mut ws = Workspace::new();
                let mut r1 = r1_0.clone();
                let mut a2 = a2_0.clone();
                let tf = tsqrt(&mut r1, &mut a2, &mut ws);
                let mut b1 = c1_0.clone();
                let mut b2 = c2_0.clone();
                tsmqr(&mut b1, &mut b2, &a2, &tf, Trans::Transpose, &mut ws);
                (r1, a2, b1, b2)
            }) else {
                return;
            };
            assert!(relative_error(&s.0, &v.0) < TOL, "TSQRT R1 nb={nb} m2={m2}");
            assert!(relative_error(&s.1, &v.1) < TOL, "TSQRT V2 nb={nb} m2={m2}");
            assert!(relative_error(&s.2, &v.2) < TOL, "TSMQR C1 nb={nb} m2={m2}");
            assert!(relative_error(&s.3, &v.3) < TOL, "TSMQR C2 nb={nb} m2={m2}");

            // TT variants: the triangle-on-triangle kernels exercise the
            // structure-aware tri_ctv / tri_cvwt sweeps.
            let r2_0 = upper_triangle_of(&random_gaussian(m2.min(nb), nb, (nb * 347) as u64));
            let Some((s, v)) = under_both(|| {
                let mut ws = Workspace::new();
                let mut r1 = r1_0.clone();
                let mut r2 = r2_0.clone();
                let tf = ttqrt(&mut r1, &mut r2, &mut ws);
                let mut b1 = c1_0.clone();
                let mut b2 = random_gaussian(r2_0.rows(), nb, 47);
                ttmqr(&mut b1, &mut b2, &r2, &tf, Trans::Transpose, &mut ws);
                (r1, r2, b1, b2)
            }) else {
                return;
            };
            assert!(relative_error(&s.0, &v.0) < TOL, "TTQRT R1 nb={nb} m2={m2}");
            assert!(relative_error(&s.1, &v.1) < TOL, "TTQRT V2 nb={nb} m2={m2}");
            assert!(relative_error(&s.2, &v.2) < TOL, "TTMQR C1 nb={nb} m2={m2}");
            assert!(relative_error(&s.3, &v.3) < TOL, "TTMQR C2 nb={nb} m2={m2}");
        }
    }
}

#[test]
fn lq_tile_kernels_agree_across_backends() {
    for &nb in &NBS {
        let n = nb + nb.div_ceil(2) + 1;
        let a0 = random_gaussian(nb, n, (n * 353 + nb) as u64);
        let c0 = random_gaussian(nb + 3, n, (n * 359) as u64);

        let Some((s, v)) = under_both(|| {
            let mut ws = Workspace::new();
            let mut a = a0.clone();
            let tf = gelqt(&mut a, &mut ws);
            let mut ct = c0.clone();
            unmlq(&a, &tf, &mut ct, Trans::Transpose, &mut ws);
            (a, tf.taus().to_vec(), ct)
        }) else {
            return;
        };
        assert!(relative_error(&s.0, &v.0) < TOL, "GELQT factor nb={nb}");
        assert_taus_close(&s.1, &v.1, "GELQT");
        assert!(relative_error(&s.2, &v.2) < TOL, "UNMLQ nb={nb}");

        for n2 in [nb, nb.div_ceil(2)] {
            let l1_0 = lower_triangle_of(&random_gaussian(nb, nb, (nb * 367 + n2) as u64));
            let a2_0 = random_gaussian(nb, n2, (nb * 373 + n2) as u64);
            let t2_0 = lower_triangle_of(&random_gaussian(nb, n2, (nb * 379 + n2) as u64));
            let c1_0 = random_gaussian(nb, nb, 53);
            let c2_0 = random_gaussian(nb, n2, 59);

            let Some((s, v)) = under_both(|| {
                let mut ws = Workspace::new();
                let mut l1 = l1_0.clone();
                let mut a2 = a2_0.clone();
                let tf = tslqt(&mut l1, &mut a2, &mut ws);
                let mut b1 = c1_0.clone();
                let mut b2 = c2_0.clone();
                tsmlq(&mut b1, &mut b2, &a2, &tf, Trans::NoTranspose, &mut ws);

                let mut t1 = l1_0.clone();
                let mut t2 = t2_0.clone();
                let tg = ttlqt(&mut t1, &mut t2, &mut ws);
                let mut d1 = c1_0.clone();
                let mut d2 = c2_0.clone();
                ttmlq(&mut d1, &mut d2, &t2, &tg, Trans::NoTranspose, &mut ws);
                (l1, a2, b1, b2, t1, t2, d1, d2)
            }) else {
                return;
            };
            assert!(relative_error(&s.0, &v.0) < TOL, "TSLQT L1 nb={nb} n2={n2}");
            assert!(relative_error(&s.1, &v.1) < TOL, "TSLQT V2 nb={nb} n2={n2}");
            assert!(relative_error(&s.2, &v.2) < TOL, "TSMLQ C1 nb={nb} n2={n2}");
            assert!(relative_error(&s.3, &v.3) < TOL, "TSMLQ C2 nb={nb} n2={n2}");
            assert!(relative_error(&s.4, &v.4) < TOL, "TTLQT L1 nb={nb} n2={n2}");
            assert!(relative_error(&s.5, &v.5) < TOL, "TTLQT V2 nb={nb} n2={n2}");
            assert!(relative_error(&s.6, &v.6) < TOL, "TTMLQ C1 nb={nb} n2={n2}");
            assert!(relative_error(&s.7, &v.7) < TOL, "TTMLQ C2 nb={nb} n2={n2}");
        }
    }
}

/// Random banded upper-triangular matrix of order `n`, bandwidth `bw`.
fn random_band(n: usize, bw: usize, seed: u64) -> BandMatrix {
    let dense = random_gaussian(n, n, seed);
    let mut band = BandMatrix::zeros(n, bw);
    for i in 0..n {
        for j in i..(i + bw + 1).min(n) {
            band.set(i, j, dense.get(i, j));
        }
    }
    band
}

fn spectra_close(s: &[f64], v: &[f64], tol: f64, what: &str) {
    assert_eq!(s.len(), v.len());
    let scale = s.first().copied().unwrap_or(1.0).max(f64::MIN_POSITIVE);
    for (a, b) in s.iter().zip(v) {
        assert!((a - b).abs() <= tol * scale, "{what}: {a} vs {b}");
    }
}

#[test]
fn bnd2bd_spectra_agree_across_backends() {
    for &(n, bw) in &[(24usize, 3usize), (40, 5), (64, 8), (33, 2)] {
        let band0 = random_band(n, bw, (n * 389 + bw) as u64);

        // Wavefront-pipelined chase (the production path; drives rot_cols).
        let Some((s, v)) = under_both(|| {
            let mut band = band0.clone();
            let bd = band.reduce_to_bidiagonal();
            bidiagonal_singular_values(&bd.diag, &bd.superdiag)
        }) else {
            return;
        };
        spectra_close(&s, &v, 1e-12, &format!("BND2BD n={n} bw={bw}"));

        // Single-bulge reference chase: same rotation kernels, different
        // schedule — keeps the slow path pinned too.
        let Some((s, v)) = under_both(|| {
            let mut band = band0.clone();
            let bd = band.reduce_to_bidiagonal_single_bulge();
            bidiagonal_singular_values(&bd.diag, &bd.superdiag)
        }) else {
            return;
        };
        spectra_close(&s, &v, 1e-12, &format!("single-bulge n={n} bw={bw}"));
    }
}
