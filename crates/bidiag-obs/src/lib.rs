//! Zero-dependency observability plane for the bidiagonalization workspace.
//!
//! Three pieces, all designed so the *disabled* cost of any instrumentation
//! site is a single relaxed atomic load (same contract as `shims/failpoint`):
//!
//! 1. **Span rings** — one fixed-capacity, overwrite-oldest ring buffer per
//!    recording thread. Each slot is a per-slot seqlock built from plain
//!    `AtomicU64` words, so writers never block and readers detect (and skip)
//!    in-flight overwrites instead of observing torn spans. Rings are leaked
//!    into a global registry and recycled through a free list when their
//!    owning thread exits, which bounds memory across repeated
//!    `execute_parallel` calls *and* keeps spans readable after worker
//!    threads have joined.
//! 2. **Metrics registry** — relaxed-atomic counters, a max-gauge, and
//!    log2-bucketed histograms (queue wait / compute / end-to-end latency),
//!    snapshotted into a plain struct with text and JSON renderings.
//! 3. **Exporters** — Chrome trace-event JSON (loadable in Perfetto, one
//!    track per ring) and the metrics snapshot. `write_trace_if_requested`
//!    honours the `BIDIAG_TRACE=path` environment variable.
//!
//! Tracing is off by default. It turns on when `BIDIAG_TRACE` is set, when
//! `BIDIAG_OBS=1`, or programmatically via [`set_enabled`] / [`ScopedObs`].

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{fence, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Enable gate
// ---------------------------------------------------------------------------

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Is the observability plane recording? One relaxed load on the hot path.
///
/// The first call per process resolves the environment: `BIDIAG_OBS=1` (or
/// `true`/`on`) forces recording on, `BIDIAG_OBS=0` forces it off, and
/// otherwise a non-empty `BIDIAG_TRACE` turns it on so trace capture needs
/// no extra switch.
#[inline]
pub fn enabled() -> bool {
    let s = STATE.load(Ordering::Relaxed);
    if s == STATE_UNINIT {
        return init_state() == STATE_ON;
    }
    s == STATE_ON
}

#[cold]
fn init_state() -> u8 {
    let on = match std::env::var("BIDIAG_OBS") {
        Ok(v) => matches!(v.as_str(), "1" | "true" | "on"),
        Err(_) => std::env::var("BIDIAG_TRACE").is_ok_and(|v| !v.is_empty()),
    };
    let s = if on { STATE_ON } else { STATE_OFF };
    // Racing first calls agree: the environment is stable per process.
    STATE.store(s, Ordering::Relaxed);
    s
}

/// Force the recording state, overriding the environment.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

static SCOPE_LOCK: Mutex<()> = Mutex::new(());

/// Serialized, scoped enablement for tests.
///
/// Holding a `ScopedObs` (a) serializes all scoped users across threads via a
/// global mutex, (b) forces recording on, and (c) remembers the activation
/// timestamp so [`ScopedObs::spans`] returns only spans recorded inside the
/// scope. Dropping restores the previous state.
pub struct ScopedObs {
    _guard: MutexGuard<'static, ()>,
    prev: u8,
    since: u64,
}

impl ScopedObs {
    /// Enter a scope with recording forced on.
    pub fn new() -> Self {
        let guard = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = STATE.load(Ordering::Relaxed);
        let since = now_ns();
        set_enabled(true);
        ScopedObs {
            _guard: guard,
            prev,
            since,
        }
    }

    /// Timestamp (ns since process epoch) at which this scope started.
    pub fn since_ns(&self) -> u64 {
        self.since
    }

    /// All spans recorded since the scope started, sorted by start time.
    pub fn spans(&self) -> Vec<Span> {
        let mut spans: Vec<Span> = snapshot_spans()
            .into_iter()
            .filter(|s| s.start_ns >= self.since)
            .collect();
        spans.sort_by_key(|s| (s.start_ns, s.end_ns));
        spans
    }
}

impl Default for ScopedObs {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ScopedObs {
    fn drop(&mut self) {
        STATE.store(self.prev, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Timestamps and ids
// ---------------------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the first observability call in this process.
/// Comparable across threads.
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

static NEXT_SUBMISSION: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique submission/run id. 0 means "untraced".
pub fn next_submission_id() -> u64 {
    NEXT_SUBMISSION.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Span kinds
// ---------------------------------------------------------------------------

/// Names for the GE2BND kernel kinds, indexed by `bidiag_core::ops::KernelKind`
/// discriminants (which are also the task tags the DAG builder assigns).
pub const KERNEL_KIND_NAMES: [&str; 13] = [
    "GEQRT", "UNMQR", "TSQRT", "TSMQR", "TTQRT", "TTMQR", "GELQT", "UNMLQ", "TSLQT", "TSMLQ",
    "TTLQT", "TTMLQ", "LASET",
];

/// One BND2BD bulge-chasing wavefront task.
pub const KIND_BND2BD: u32 = 16;
/// One BD2VAL solver task (dqds / sliced dqds / bisection).
pub const KIND_BD2VAL: u32 = 17;
/// A direct-path (small-size crossover) SVD solve inside `SvdSession`.
pub const KIND_DIRECT: u32 = 18;
/// The band-extraction sink task of a blocked `SvdSession` submission.
pub const KIND_SINK: u32 = 19;
/// Whole GE2BND stage, recorded on the submitting thread.
pub const KIND_STAGE_GE2BND: u32 = 24;
/// Whole BND2BD stage, recorded on the submitting thread.
pub const KIND_STAGE_BND2BD: u32 = 25;
/// Whole BD2VAL stage, recorded on the submitting thread.
pub const KIND_STAGE_BD2VAL: u32 = 26;

/// Human-readable name for a span kind (kernel tags and stage markers).
pub fn kind_name(kind: u32) -> &'static str {
    match kind {
        0..=12 => KERNEL_KIND_NAMES[kind as usize],
        KIND_BND2BD => "BND2BD",
        KIND_BD2VAL => "BD2VAL",
        KIND_DIRECT => "DIRECT_SVD",
        KIND_SINK => "BAND_SINK",
        KIND_STAGE_GE2BND => "stage:GE2BND",
        KIND_STAGE_BND2BD => "stage:BND2BD",
        KIND_STAGE_BD2VAL => "stage:BD2VAL",
        _ => "TASK",
    }
}

/// Sentinel worker id for spans recorded on a caller (non-pool) thread.
pub const WORKER_CALLER: u32 = 0xFFFF;

/// A completed task span. `submission` groups spans belonging to one
/// submission/run; `task` is the task id inside that submission's DAG
/// (used by the critical-path analyzer to reattach spans to graph nodes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Submission/run id from [`next_submission_id`]; 0 if untraced.
    pub submission: u64,
    /// Task id within the submission's DAG.
    pub task: u32,
    /// Op kind tag; see [`kind_name`]. Must be < 2^16.
    pub kind: u32,
    /// Executing worker index, or [`WORKER_CALLER`]. Must be < 2^16.
    pub worker: u32,
    /// Start timestamp, ns since process epoch.
    pub start_ns: u64,
    /// End timestamp, ns since process epoch.
    pub end_ns: u64,
}

// ---------------------------------------------------------------------------
// Span rings
// ---------------------------------------------------------------------------

/// Slots per ring. At ~40 bytes/slot this is ~320 KiB per recording thread,
/// and rings are recycled across thread lifetimes.
pub const RING_CAPACITY: usize = 8192;

/// One ring slot: a per-slot seqlock over four data words. Every word is an
/// atomic, so a concurrent overwrite can never produce a torn *word*; the
/// sequence check rejects mixed-generation *spans*.
struct Slot {
    /// Even = stable, odd = write in progress, 0 = never written.
    seq: AtomicU64,
    submission: AtomicU64,
    /// `task << 32 | kind << 16 | worker` (kind and worker are < 2^16).
    ids: AtomicU64,
    start_ns: AtomicU64,
    end_ns: AtomicU64,
}

impl Slot {
    const fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            submission: AtomicU64::new(0),
            ids: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            end_ns: AtomicU64::new(0),
        }
    }
}

/// A fixed-capacity, overwrite-oldest span ring with a single writer at a
/// time (ownership is enforced by the registry's free list) and any number
/// of concurrent snapshot readers.
pub struct SpanRing {
    slots: Box<[Slot]>,
    /// Total spans ever pushed; `head % capacity` is the next write slot.
    head: AtomicUsize,
}

impl SpanRing {
    fn new() -> Self {
        SpanRing {
            slots: (0..RING_CAPACITY).map(|_| Slot::new()).collect(),
            head: AtomicUsize::new(0),
        }
    }

    /// Total number of spans ever recorded into this ring.
    pub fn recorded(&self) -> usize {
        self.head.load(Ordering::Relaxed)
    }

    fn push(&self, span: Span) {
        let idx = self.head.fetch_add(1, Ordering::Relaxed) % RING_CAPACITY;
        let slot = &self.slots[idx];
        let s = slot.seq.load(Ordering::Relaxed);
        // Mark the slot as in-progress *before* the data stores become
        // visible: relaxed store + release fence orders the odd sequence
        // ahead of the data words for any reader that observes them.
        slot.seq.store(s + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.submission.store(span.submission, Ordering::Relaxed);
        slot.ids.store(
            (span.task as u64) << 32
                | ((span.kind & 0xFFFF) as u64) << 16
                | (span.worker & 0xFFFF) as u64,
            Ordering::Relaxed,
        );
        slot.start_ns.store(span.start_ns, Ordering::Relaxed);
        slot.end_ns.store(span.end_ns, Ordering::Relaxed);
        // Publish: data words happen-before the even sequence.
        slot.seq.store(s + 2, Ordering::Release);
    }

    /// Read all stable spans currently in the ring (unordered). Slots being
    /// overwritten concurrently are retried a few times, then skipped —
    /// never returned torn.
    pub fn read(&self, out: &mut Vec<Span>) {
        for slot in self.slots.iter() {
            for _attempt in 0..3 {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 == 0 || s1 & 1 == 1 {
                    if s1 == 0 {
                        break; // never written; later slots may still be (wrapped ring)
                    }
                    continue; // write in progress, retry
                }
                let submission = slot.submission.load(Ordering::Relaxed);
                let ids = slot.ids.load(Ordering::Relaxed);
                let start_ns = slot.start_ns.load(Ordering::Relaxed);
                let end_ns = slot.end_ns.load(Ordering::Relaxed);
                fence(Ordering::Acquire);
                if slot.seq.load(Ordering::Relaxed) != s1 {
                    continue; // overwritten mid-read, retry
                }
                out.push(Span {
                    submission,
                    task: (ids >> 32) as u32,
                    kind: (ids >> 16) as u32 & 0xFFFF,
                    worker: ids as u32 & 0xFFFF,
                    start_ns,
                    end_ns,
                });
                break;
            }
        }
    }
}

struct RingRegistry {
    /// All rings ever created, leaked; index = stable track id.
    rings: Mutex<Vec<&'static SpanRing>>,
    /// Indices of rings whose owning thread has exited, ready for reuse.
    free: Mutex<Vec<usize>>,
}

fn ring_registry() -> &'static RingRegistry {
    static REG: OnceLock<RingRegistry> = OnceLock::new();
    REG.get_or_init(|| RingRegistry {
        rings: Mutex::new(Vec::new()),
        free: Mutex::new(Vec::new()),
    })
}

/// Number of rings currently allocated (tracks in the trace). Bounded by the
/// peak number of *concurrently* recording threads, not by the total number
/// of threads ever spawned.
pub fn ring_count() -> usize {
    ring_registry()
        .rings
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .len()
}

/// Number of rings on the free list, i.e. not currently owned by any live
/// thread. Note that a ring is returned by its owner's thread-local
/// destructor, which may run slightly *after* the thread becomes joinable —
/// callers checking recycling behaviour should poll rather than assume the
/// return is visible the instant a thread is joined.
pub fn idle_rings() -> usize {
    ring_registry()
        .free
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .len()
}

struct RingHandle {
    idx: usize,
    ring: &'static SpanRing,
}

impl RingHandle {
    fn acquire() -> Self {
        let reg = ring_registry();
        let reused = reg.free.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match reused {
            Some(idx) => {
                let ring = reg.rings.lock().unwrap_or_else(|e| e.into_inner())[idx];
                RingHandle { idx, ring }
            }
            None => {
                let ring: &'static SpanRing = Box::leak(Box::new(SpanRing::new()));
                let mut rings = reg.rings.lock().unwrap_or_else(|e| e.into_inner());
                rings.push(ring);
                RingHandle {
                    idx: rings.len() - 1,
                    ring,
                }
            }
        }
    }
}

impl Drop for RingHandle {
    fn drop(&mut self) {
        // Return the ring for reuse; its recorded spans stay readable.
        ring_registry()
            .free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(self.idx);
    }
}

thread_local! {
    static RING: RingHandle = RingHandle::acquire();
}

/// Record a completed span into this thread's ring. Callers should gate on
/// [`enabled`] first; this function assumes recording is on.
pub fn record_span(span: Span) {
    // If the thread-local is being torn down (thread exit), drop the span
    // rather than panicking.
    let _ = RING.try_with(|h| h.ring.push(span));
}

/// Snapshot all spans from all rings, in (track, span) form. Track ids are
/// stable per ring and become Chrome-trace `tid`s.
pub fn snapshot_tracks() -> Vec<(usize, Vec<Span>)> {
    let rings: Vec<&'static SpanRing> = ring_registry()
        .rings
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    rings
        .into_iter()
        .enumerate()
        .map(|(idx, ring)| {
            let mut v = Vec::new();
            ring.read(&mut v);
            (idx, v)
        })
        .collect()
}

/// Snapshot all spans from all rings, flattened and unordered.
pub fn snapshot_spans() -> Vec<Span> {
    snapshot_tracks().into_iter().flat_map(|(_, v)| v).collect()
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// A monotonically increasing relaxed-atomic counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A gauge that remembers the maximum value ever recorded.
#[derive(Default)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    /// Record `v`; keeps the running maximum.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current maximum.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

const HIST_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (bucket `b` holds values in
/// `[2^(b-1), 2^b)`, bucket 0 holds zero). Records are one relaxed
/// `fetch_add` per bucket plus count/sum/max updates.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    const fn new() -> Self {
        // A const template, deliberately: each array slot gets its own
        // fresh atomic (array-init idiom; this is not shared state).
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let b = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copy out a consistent-enough snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Plain-data snapshot of a [`Histogram`].
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    buckets: [u64; HIST_BUCKETS],
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest recorded sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean of the recorded samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`) by linear interpolation within the
    /// containing log2 bucket. Exact to within a factor of 2 by construction.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                let lo = if b == 0 {
                    0.0
                } else {
                    (1u64 << (b - 1)) as f64
                };
                let hi = if b == 0 { 1.0 } else { (1u128 << b) as f64 };
                let frac = (target - seen) as f64 / n as f64;
                return (lo + (hi - lo) * frac).min(self.max as f64);
            }
            seen += n;
        }
        self.max as f64
    }
}

/// The process-wide metrics registry. All fields are updated with relaxed
/// atomics by instrumentation sites; durations are in nanoseconds.
pub struct MetricsRegistry {
    /// DAG tasks executed (executor + pool bodies).
    pub tasks_executed: Counter,
    /// Successful steals from another worker's deque.
    pub steals: Counter,
    /// Times a worker parked on the idle gate.
    pub parks: Counter,
    /// Total nanoseconds workers spent parked.
    pub idle_ns: Counter,
    /// Submissions accepted by `TaskPool::submit` / `SvdSession`.
    pub submissions: Counter,
    /// Blocking admissions that had to wait for a slot.
    pub admission_waits: Counter,
    /// Total nanoseconds spent waiting for admission.
    pub admission_wait_ns: Counter,
    /// Submissions shed (rejected or failpoint-triggered) at admission.
    pub shed_submissions: Counter,
    /// Peak concurrent in-flight submissions observed.
    pub in_flight_peak: MaxGauge,
    /// dqds ladder passes across all solves.
    pub dqds_passes: Counter,
    /// dqds deflation segments processed.
    pub dqds_segments: Counter,
    /// Singular values that fell back to bisection.
    pub dqds_fallback_values: Counter,
    /// Singular values solved on the sliced-dqds rung.
    pub dqds_sliced_values: Counter,
    /// Non-finite values detected and repaired by the dqds driver.
    pub dqds_poisoned_values: Counter,
    /// qd-array flips performed by the dqds driver.
    pub dqds_flips: Counter,
    /// Per-submission wait between submit and first task start (ns).
    pub queue_wait: Histogram,
    /// Per-submission first-task-start to last-task-end (ns).
    pub compute: Histogram,
    /// Per-submission end-to-end latency (ns).
    pub latency: Histogram,
    meta: Mutex<BTreeMap<String, String>>,
}

impl MetricsRegistry {
    const fn new() -> Self {
        MetricsRegistry {
            tasks_executed: Counter(AtomicU64::new(0)),
            steals: Counter(AtomicU64::new(0)),
            parks: Counter(AtomicU64::new(0)),
            idle_ns: Counter(AtomicU64::new(0)),
            submissions: Counter(AtomicU64::new(0)),
            admission_waits: Counter(AtomicU64::new(0)),
            admission_wait_ns: Counter(AtomicU64::new(0)),
            shed_submissions: Counter(AtomicU64::new(0)),
            in_flight_peak: MaxGauge(AtomicU64::new(0)),
            dqds_passes: Counter(AtomicU64::new(0)),
            dqds_segments: Counter(AtomicU64::new(0)),
            dqds_fallback_values: Counter(AtomicU64::new(0)),
            dqds_sliced_values: Counter(AtomicU64::new(0)),
            dqds_poisoned_values: Counter(AtomicU64::new(0)),
            dqds_flips: Counter(AtomicU64::new(0)),
            queue_wait: Histogram::new(),
            compute: Histogram::new(),
            latency: Histogram::new(),
            meta: Mutex::new(BTreeMap::new()),
        }
    }

    /// Attach a key/value pair to the snapshot header (e.g. the chosen SIMD
    /// backend). Last writer per key wins.
    pub fn set_meta(&self, key: &str, value: &str) {
        self.meta
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key.to_string(), value.to_string());
    }

    /// Copy out all counters, gauges, histograms and meta entries.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_executed: self.tasks_executed.get(),
            steals: self.steals.get(),
            parks: self.parks.get(),
            idle_ns: self.idle_ns.get(),
            submissions: self.submissions.get(),
            admission_waits: self.admission_waits.get(),
            admission_wait_ns: self.admission_wait_ns.get(),
            shed_submissions: self.shed_submissions.get(),
            in_flight_peak: self.in_flight_peak.get(),
            dqds_passes: self.dqds_passes.get(),
            dqds_segments: self.dqds_segments.get(),
            dqds_fallback_values: self.dqds_fallback_values.get(),
            dqds_sliced_values: self.dqds_sliced_values.get(),
            dqds_poisoned_values: self.dqds_poisoned_values.get(),
            dqds_flips: self.dqds_flips.get(),
            queue_wait: self.queue_wait.snapshot(),
            compute: self.compute.snapshot(),
            latency: self.latency.snapshot(),
            meta: self.meta.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        }
    }

    /// Zero every counter/gauge/histogram and clear meta. Test-only helper;
    /// concurrent recorders may interleave.
    pub fn reset(&self) {
        self.tasks_executed.reset();
        self.steals.reset();
        self.parks.reset();
        self.idle_ns.reset();
        self.submissions.reset();
        self.admission_waits.reset();
        self.admission_wait_ns.reset();
        self.shed_submissions.reset();
        self.in_flight_peak.reset();
        self.dqds_passes.reset();
        self.dqds_segments.reset();
        self.dqds_fallback_values.reset();
        self.dqds_sliced_values.reset();
        self.dqds_poisoned_values.reset();
        self.dqds_flips.reset();
        self.queue_wait.reset();
        self.compute.reset();
        self.latency.reset();
        self.meta.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

static REGISTRY: MetricsRegistry = MetricsRegistry::new();

/// The process-wide [`MetricsRegistry`].
pub fn registry() -> &'static MetricsRegistry {
    &REGISTRY
}

/// Plain-data snapshot of the whole registry.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// See [`MetricsRegistry::tasks_executed`].
    pub tasks_executed: u64,
    /// See [`MetricsRegistry::steals`].
    pub steals: u64,
    /// See [`MetricsRegistry::parks`].
    pub parks: u64,
    /// See [`MetricsRegistry::idle_ns`].
    pub idle_ns: u64,
    /// See [`MetricsRegistry::submissions`].
    pub submissions: u64,
    /// See [`MetricsRegistry::admission_waits`].
    pub admission_waits: u64,
    /// See [`MetricsRegistry::admission_wait_ns`].
    pub admission_wait_ns: u64,
    /// See [`MetricsRegistry::shed_submissions`].
    pub shed_submissions: u64,
    /// See [`MetricsRegistry::in_flight_peak`].
    pub in_flight_peak: u64,
    /// See [`MetricsRegistry::dqds_passes`].
    pub dqds_passes: u64,
    /// See [`MetricsRegistry::dqds_segments`].
    pub dqds_segments: u64,
    /// See [`MetricsRegistry::dqds_fallback_values`].
    pub dqds_fallback_values: u64,
    /// See [`MetricsRegistry::dqds_sliced_values`].
    pub dqds_sliced_values: u64,
    /// See [`MetricsRegistry::dqds_poisoned_values`].
    pub dqds_poisoned_values: u64,
    /// See [`MetricsRegistry::dqds_flips`].
    pub dqds_flips: u64,
    /// See [`MetricsRegistry::queue_wait`].
    pub queue_wait: HistogramSnapshot,
    /// See [`MetricsRegistry::compute`].
    pub compute: HistogramSnapshot,
    /// See [`MetricsRegistry::latency`].
    pub latency: HistogramSnapshot,
    /// Free-form header entries (e.g. `simd_backend`).
    pub meta: BTreeMap<String, String>,
}

fn fmt_hist(
    f: &mut std::fmt::Formatter<'_>,
    name: &str,
    h: &HistogramSnapshot,
) -> std::fmt::Result {
    writeln!(
        f,
        "  {:<18} count={:<8} p50={:<12.0} p99={:<12.0} max={:<12} mean={:.0}  (ns)",
        name,
        h.count,
        h.quantile(0.50),
        h.quantile(0.99),
        h.max,
        h.mean()
    )
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "metrics snapshot")?;
        for (k, v) in &self.meta {
            writeln!(f, "  {k:<18} {v}")?;
        }
        writeln!(f, "  {:<18} {}", "tasks_executed", self.tasks_executed)?;
        writeln!(f, "  {:<18} {}", "steals", self.steals)?;
        writeln!(f, "  {:<18} {}", "parks", self.parks)?;
        writeln!(f, "  {:<18} {} ns", "idle", self.idle_ns)?;
        writeln!(f, "  {:<18} {}", "submissions", self.submissions)?;
        writeln!(f, "  {:<18} {}", "admission_waits", self.admission_waits)?;
        writeln!(
            f,
            "  {:<18} {} ns",
            "admission_wait", self.admission_wait_ns
        )?;
        writeln!(f, "  {:<18} {}", "shed_submissions", self.shed_submissions)?;
        writeln!(f, "  {:<18} {}", "in_flight_peak", self.in_flight_peak)?;
        writeln!(
            f,
            "  {:<18} passes={} segments={} sliced={} fallback={} poisoned={} flips={}",
            "dqds",
            self.dqds_passes,
            self.dqds_segments,
            self.dqds_sliced_values,
            self.dqds_fallback_values,
            self.dqds_poisoned_values,
            self.dqds_flips
        )?;
        fmt_hist(f, "queue_wait", &self.queue_wait)?;
        fmt_hist(f, "compute", &self.compute)?;
        fmt_hist(f, "latency", &self.latency)?;
        Ok(())
    }
}

impl MetricsSnapshot {
    /// Render the snapshot as a JSON object (hand-formatted; no serde).
    pub fn to_json(&self) -> String {
        let hist = |h: &HistogramSnapshot| {
            format!(
                "{{\"count\":{},\"p50_ns\":{:.0},\"p99_ns\":{:.0},\"max_ns\":{},\"mean_ns\":{:.0}}}",
                h.count,
                h.quantile(0.50),
                h.quantile(0.99),
                h.max,
                h.mean()
            )
        };
        let mut meta = String::from("{");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                meta.push(',');
            }
            meta.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
        }
        meta.push('}');
        format!(
            concat!(
                "{{\"meta\":{meta},\"tasks_executed\":{te},\"steals\":{st},\"parks\":{pk},",
                "\"idle_ns\":{idle},\"submissions\":{sub},\"admission_waits\":{aw},",
                "\"admission_wait_ns\":{awn},\"shed_submissions\":{shed},\"in_flight_peak\":{peak},",
                "\"dqds\":{{\"passes\":{dp},\"segments\":{dseg},\"sliced_values\":{dsl},",
                "\"fallback_values\":{dfb},\"poisoned_values\":{dpo},\"flips\":{dfl}}},",
                "\"queue_wait\":{qw},\"compute\":{cp},\"latency\":{lat}}}"
            ),
            meta = meta,
            te = self.tasks_executed,
            st = self.steals,
            pk = self.parks,
            idle = self.idle_ns,
            sub = self.submissions,
            aw = self.admission_waits,
            awn = self.admission_wait_ns,
            shed = self.shed_submissions,
            peak = self.in_flight_peak,
            dp = self.dqds_passes,
            dseg = self.dqds_segments,
            dsl = self.dqds_sliced_values,
            dfb = self.dqds_fallback_values,
            dpo = self.dqds_poisoned_values,
            dfl = self.dqds_flips,
            qw = hist(&self.queue_wait),
            cp = hist(&self.compute),
            lat = hist(&self.latency),
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

/// Render every recorded span as Chrome trace-event JSON, loadable in
/// Perfetto (`ui.perfetto.dev`) or `chrome://tracing`. One track (`tid`) per
/// span ring; metrics meta entries land in the top-level `metadata` object.
pub fn chrome_trace_json() -> String {
    let tracks = snapshot_tracks();
    let snap = registry().snapshot();
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"metadata\":{");
    for (i, (k, v)) in snap.meta.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
    }
    out.push_str("},\"traceEvents\":[");
    let mut first = true;
    for (track, spans) in &tracks {
        if spans.is_empty() {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{track},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"ring {track}\"}}}}"
        ));
        for s in spans {
            let dur_us = (s.end_ns.saturating_sub(s.start_ns)) as f64 / 1000.0;
            out.push_str(&format!(
                ",{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\
                 \"name\":\"{}\",\"cat\":\"task\",\
                 \"args\":{{\"submission\":{},\"task\":{},\"worker\":{}}}}}",
                track,
                s.start_ns as f64 / 1000.0,
                dur_us,
                kind_name(s.kind),
                s.submission,
                s.task,
                s.worker,
            ));
        }
    }
    out.push_str("]}");
    out
}

/// Write [`chrome_trace_json`] to `path`.
pub fn write_chrome_trace(path: &str) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace_json().as_bytes())
}

/// If `BIDIAG_TRACE=path` is set, write the Chrome trace there and return
/// the path. Intended as the last line of `main` in bins/examples.
pub fn write_trace_if_requested() -> std::io::Result<Option<String>> {
    match std::env::var("BIDIAG_TRACE") {
        Ok(path) if !path.is_empty() => {
            write_chrome_trace(&path)?;
            Ok(Some(path))
        }
        _ => Ok(None),
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        let p50 = s.quantile(0.5);
        // log2 buckets: exact to within a factor of 2.
        assert!((250.0..=1000.0).contains(&p50), "p50 = {p50}");
        assert!(s.quantile(1.0) <= 1000.0);
        assert_eq!(s.quantile(0.0) as u64, s.quantile(0.001) as u64);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_zero_and_huge() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert!(s.quantile(0.01) < 1.5);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_all() {
        let ring = SpanRing::new();
        let n = RING_CAPACITY + 100;
        for i in 0..n {
            ring.push(Span {
                submission: 1,
                task: i as u32,
                kind: 0,
                worker: 0,
                start_ns: i as u64,
                end_ns: i as u64 + 1,
            });
        }
        assert_eq!(ring.recorded(), n);
        let mut v = Vec::new();
        ring.read(&mut v);
        assert_eq!(v.len(), RING_CAPACITY);
        // Oldest 100 were overwritten.
        assert!(v.iter().all(|s| (s.task as usize) >= 100));
    }

    #[test]
    fn span_pack_roundtrip() {
        let ring = SpanRing::new();
        let span = Span {
            submission: u64::MAX,
            task: u32::MAX,
            kind: 0xFFFF,
            worker: WORKER_CALLER,
            start_ns: 123,
            end_ns: 456,
        };
        ring.push(span);
        let mut v = Vec::new();
        ring.read(&mut v);
        assert_eq!(v, vec![span]);
    }

    #[test]
    fn kind_names_cover_tags() {
        assert_eq!(kind_name(0), "GEQRT");
        assert_eq!(kind_name(12), "LASET");
        assert_eq!(kind_name(KIND_BND2BD), "BND2BD");
        assert_eq!(kind_name(KIND_STAGE_BD2VAL), "stage:BD2VAL");
        assert_eq!(kind_name(999), "TASK");
    }

    #[test]
    fn snapshot_json_is_wellformed_enough() {
        let reg = registry();
        reg.set_meta("simd_backend", "scalar");
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"simd_backend\":\"scalar\""));
        assert!(json.contains("\"queue_wait\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn chrome_trace_has_expected_shape() {
        let _obs = ScopedObs::new();
        record_span(Span {
            submission: 42,
            task: 7,
            kind: 3,
            worker: 1,
            start_ns: now_ns(),
            end_ns: now_ns() + 10,
        });
        let json = chrome_trace_json();
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"TSMQR\""));
        assert!(json.contains("\"submission\":42"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
