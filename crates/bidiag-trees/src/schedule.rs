//! Panel elimination schedules for a single QR (or LQ) step.

use serde::{Deserialize, Serialize};

/// Which tile kernel family an elimination uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElimKind {
    /// Triangle-on-square elimination (`TSQRT` + `TSMQR` updates): more
    /// efficient kernels but serialises the eliminations sharing a pivot.
    Ts,
    /// Triangle-on-triangle elimination (`TTQRT` + `TTMQR` updates): cheaper
    /// panel kernel and more parallelism, at lower kernel efficiency.
    Tt,
}

/// One elimination `elim(row, piv)`: the tile in row `row` of the panel is
/// zeroed against the tile in row `piv` (both indices are *global* tile-row
/// indices; for LQ steps they are global tile-column indices).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Elimination {
    /// Pivot row (stays non-zero; accumulates the reduction).
    pub piv: usize,
    /// Eliminated row (zeroed; holds the Householder vectors afterwards).
    pub row: usize,
    /// Kernel family.
    pub kind: ElimKind,
}

/// Shape of the TT tree combining domain heads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopTree {
    /// Sequential chain onto the first head (FLATTT-style).
    Flat,
    /// Binomial tree: reduces `d` heads in `ceil(log2 d)` rounds; this is the
    /// paper's `GREEDY` tree for the bidiagonalization panels.
    Greedy,
    /// Fibonacci-flavoured tree: a round-based scheme in which the number of
    /// eliminations per round grows like the Fibonacci sequence.  Used as the
    /// default high-level distributed tree for square matrices, following
    /// DPLASMA's HQR defaults.
    Fibonacci,
}

/// Domain size for the bottom-level FLATTS chains.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainSize {
    /// One single domain spanning the whole panel (pure FLATTS).
    Whole,
    /// Singleton domains: every row is its own triangle (pure TT trees).
    One,
    /// Fixed-size domains of `a` consecutive rows (AUTO / DPLASMA default).
    Fixed(usize),
}

/// Configuration of the generic two-level panel reduction.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Bottom-level FLATTS domain size.
    pub domain: DomainSize,
    /// Top-level TT tree combining the domain heads.
    pub top: TopTree,
}

impl TreeConfig {
    /// FLATTS preset.
    pub fn flat_ts() -> Self {
        Self {
            domain: DomainSize::Whole,
            top: TopTree::Flat,
        }
    }
    /// FLATTT preset.
    pub fn flat_tt() -> Self {
        Self {
            domain: DomainSize::One,
            top: TopTree::Flat,
        }
    }
    /// GREEDY preset.
    pub fn greedy() -> Self {
        Self {
            domain: DomainSize::One,
            top: TopTree::Greedy,
        }
    }
}

/// The schedule of one panel reduction.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PanelSchedule {
    /// Rows that receive a `GEQRT` (are factored into triangles) at the
    /// beginning of the step, in emission order.
    pub geqrt_rows: Vec<usize>,
    /// Ordered eliminations.  The order is a valid sequential execution
    /// order; the true parallelism is recovered from data dependencies.
    pub elims: Vec<Elimination>,
}

impl PanelSchedule {
    /// Number of eliminations.
    pub fn num_elims(&self) -> usize {
        self.elims.len()
    }

    /// Number of TT eliminations (the rest are TS).
    pub fn num_tt(&self) -> usize {
        self.elims.iter().filter(|e| e.kind == ElimKind::Tt).count()
    }

    /// The depth of the elimination tree in *rounds*, where eliminations that
    /// touch disjoint rows may share a round.  This is the idealised number
    /// of parallel panel stages (it ignores update kernels).
    pub fn depth(&self) -> usize {
        use std::collections::HashMap;
        // earliest round each row is free again
        let mut avail: HashMap<usize, usize> = HashMap::new();
        let mut depth = 0;
        for e in &self.elims {
            let start = avail
                .get(&e.piv)
                .copied()
                .unwrap_or(0)
                .max(avail.get(&e.row).copied().unwrap_or(0));
            let end = start + 1;
            avail.insert(e.piv, end);
            avail.insert(e.row, end);
            depth = depth.max(end);
        }
        depth
    }
}

/// Build the panel schedule for the given global row indices (ascending) and
/// tree configuration.  The first row of `rows` is the pivot that survives
/// the reduction.
pub fn panel_schedule(rows: &[usize], cfg: &TreeConfig) -> PanelSchedule {
    assert!(!rows.is_empty(), "panel must contain at least one row");
    debug_assert!(
        rows.windows(2).all(|w| w[0] < w[1]),
        "rows must be strictly increasing"
    );

    let mut sched = PanelSchedule::default();

    // 1. Split rows into consecutive domains.
    let domain_size = match cfg.domain {
        DomainSize::Whole => rows.len(),
        DomainSize::One => 1,
        DomainSize::Fixed(a) => a.max(1),
    };
    let domains: Vec<&[usize]> = rows.chunks(domain_size).collect();

    // 2. Every domain head is factored into a triangle; the other rows of the
    //    domain are TS-eliminated onto the head, sequentially (flat TS chain).
    let mut heads = Vec::with_capacity(domains.len());
    for d in &domains {
        let head = d[0];
        heads.push(head);
        sched.geqrt_rows.push(head);
        for &r in &d[1..] {
            sched.elims.push(Elimination {
                piv: head,
                row: r,
                kind: ElimKind::Ts,
            });
        }
    }

    // 3. Combine the domain heads with the TT top tree.
    emit_top_tree(&heads, cfg.top, &mut sched.elims);

    sched
}

/// Emit the TT eliminations combining `heads` (ascending) onto `heads[0]`.
pub(crate) fn emit_top_tree(heads: &[usize], top: TopTree, out: &mut Vec<Elimination>) {
    let d = heads.len();
    if d <= 1 {
        return;
    }
    match top {
        TopTree::Flat => {
            for &h in &heads[1..] {
                out.push(Elimination {
                    piv: heads[0],
                    row: h,
                    kind: ElimKind::Tt,
                });
            }
        }
        TopTree::Greedy => {
            // Binomial combining: in round r, heads at distance 2^r merge.
            let mut stride = 1usize;
            while stride < d {
                let mut i = 0;
                while i + stride < d {
                    out.push(Elimination {
                        piv: heads[i],
                        row: heads[i + stride],
                        kind: ElimKind::Tt,
                    });
                    i += 2 * stride;
                }
                stride *= 2;
            }
        }
        TopTree::Fibonacci => {
            // Round-based scheme: alive heads are reduced from the bottom,
            // the number of eliminations in round r follows the Fibonacci
            // sequence (1, 1, 2, 3, 5, ...), each eliminated head paired with
            // the nearest alive head above it.
            let mut alive: Vec<usize> = heads.to_vec();
            let (mut f1, mut f2) = (1usize, 1usize);
            while alive.len() > 1 {
                let kills = f1.min(alive.len() - 1);
                // Eliminate the last `kills` alive heads, pairing each with a
                // distinct pivot chosen just above the killed block.
                let n = alive.len();
                let first_killed = n - kills;
                for t in 0..kills {
                    let row = alive[first_killed + t];
                    // Pivot: distribute over the surviving heads to keep the
                    // pairs disjoint within the round.
                    let piv = alive[(first_killed + t) % first_killed.max(1)];
                    out.push(Elimination {
                        piv,
                        row,
                        kind: ElimKind::Tt,
                    });
                }
                alive.truncate(first_killed);
                let next = f1 + f2;
                f1 = f2;
                f2 = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn flat_ts_is_a_single_chain() {
        let s = panel_schedule(&rows(6), &TreeConfig::flat_ts());
        assert_eq!(s.geqrt_rows, vec![0]);
        assert_eq!(s.num_elims(), 5);
        assert!(s.elims.iter().all(|e| e.kind == ElimKind::Ts && e.piv == 0));
        assert_eq!(s.depth(), 5);
    }

    #[test]
    fn flat_tt_factors_every_row() {
        let s = panel_schedule(&rows(6), &TreeConfig::flat_tt());
        assert_eq!(s.geqrt_rows.len(), 6);
        assert_eq!(s.num_elims(), 5);
        assert!(s.elims.iter().all(|e| e.kind == ElimKind::Tt && e.piv == 0));
    }

    #[test]
    fn greedy_has_logarithmic_depth() {
        for n in [2usize, 3, 4, 7, 8, 16, 33] {
            let s = panel_schedule(&rows(n), &TreeConfig::greedy());
            assert_eq!(s.num_elims(), n - 1, "n = {n}");
            let depth = s.depth();
            let expected = (n as f64).log2().ceil() as usize;
            assert_eq!(depth, expected, "binomial depth mismatch for n = {n}");
        }
    }

    #[test]
    fn greedy_first_round_pairs_disjoint_rows() {
        let s = panel_schedule(&rows(8), &TreeConfig::greedy());
        // First 4 eliminations are the stride-1 round and must touch 8
        // distinct rows.
        let mut touched = std::collections::HashSet::new();
        for e in &s.elims[..4] {
            assert!(touched.insert(e.piv));
            assert!(touched.insert(e.row));
        }
    }

    #[test]
    fn bounded_domains_mix_ts_and_tt() {
        let cfg = TreeConfig {
            domain: DomainSize::Fixed(4),
            top: TopTree::Greedy,
        };
        let s = panel_schedule(&rows(16), &cfg);
        assert_eq!(s.geqrt_rows, vec![0, 4, 8, 12]);
        let ts = s.elims.iter().filter(|e| e.kind == ElimKind::Ts).count();
        let tt = s.num_tt();
        assert_eq!(ts, 12);
        assert_eq!(tt, 3);
        assert_eq!(s.num_elims(), 15);
    }

    #[test]
    fn fibonacci_reduces_everything() {
        for n in [2usize, 5, 9, 14] {
            let mut elims = Vec::new();
            let heads: Vec<usize> = (0..n).collect();
            emit_top_tree(&heads, TopTree::Fibonacci, &mut elims);
            assert_eq!(elims.len(), n - 1, "n = {n}");
            // every row except 0 eliminated exactly once
            let mut seen = std::collections::HashSet::new();
            for e in &elims {
                assert!(seen.insert(e.row), "row {} eliminated twice", e.row);
                assert!(!seen.contains(&e.piv), "pivot {} already eliminated", e.piv);
            }
            assert!(!seen.contains(&0));
        }
    }

    #[test]
    fn single_row_panel_is_trivial() {
        let s = panel_schedule(&[3], &TreeConfig::greedy());
        assert_eq!(s.geqrt_rows, vec![3]);
        assert!(s.elims.is_empty());
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn schedules_work_on_non_contiguous_rows() {
        // LQ steps and hierarchical trees pass arbitrary ascending row sets.
        let r = vec![2, 5, 7, 11, 12];
        let s = panel_schedule(&r, &TreeConfig::greedy());
        assert_eq!(s.num_elims(), 4);
        for e in &s.elims {
            assert!(r.contains(&e.piv) && r.contains(&e.row));
        }
    }
}
