//! Hierarchical (distributed-memory) reduction trees.
//!
//! Following the HQR design used by the paper's DPLASMA implementation, a
//! distributed panel reduction is built in two levels:
//!
//! 1. **local level** — the tile rows owned by each process row (under the 2D
//!    block-cyclic distribution) are reduced onto the first local row using a
//!    shared-memory [`TreeConfig`] (FLATTS domains + TT tree),
//! 2. **high level** — the per-process surviving rows are combined across the
//!    process grid with a distributed TT tree; the DPLASMA default is a flat
//!    tree for tall matrices (`p >= 2q`) and a Fibonacci tree otherwise, and a
//!    greedy tree is also available.
//!
//! The domino level of HQR (which pipelines the local and distributed trees)
//! is not modelled; this is documented in `DESIGN.md`.

use crate::schedule::{emit_top_tree, panel_schedule, PanelSchedule, TopTree, TreeConfig};
use bidiag_matrix::BlockCyclic;
use serde::{Deserialize, Serialize};

/// Shape of the inter-process (high level) reduction tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HighLevelTree {
    /// Sequential chain across process rows (lowest communication volume).
    Flat,
    /// Binomial tree across process rows (lowest depth).
    Greedy,
    /// Fibonacci tree across process rows (DPLASMA default for squarish
    /// matrices).
    Fibonacci,
}

impl HighLevelTree {
    fn as_top(self) -> TopTree {
        match self {
            HighLevelTree::Flat => TopTree::Flat,
            HighLevelTree::Greedy => TopTree::Greedy,
            HighLevelTree::Fibonacci => TopTree::Fibonacci,
        }
    }

    /// DPLASMA's default choice: flat when the (remaining) matrix is tall
    /// (`p >= 2q`), Fibonacci otherwise.
    pub fn dplasma_default(p: usize, q: usize) -> Self {
        if p >= 2 * q {
            HighLevelTree::Flat
        } else {
            HighLevelTree::Fibonacci
        }
    }
}

/// Configuration of a hierarchical panel reduction.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HierConfig {
    /// Local (intra-node) tree.
    pub local: TreeConfig,
    /// High-level (inter-node) tree.
    pub high: HighLevelTree,
}

/// Build the hierarchical schedule for the panel made of the global tile
/// rows `rows` (ascending), distributed over `dist.proc_rows` process rows.
///
/// The returned schedule first contains the local reductions of every process
/// row, then the high-level eliminations combining the local survivors.
pub fn hierarchical_schedule(
    rows: &[usize],
    dist: &BlockCyclic,
    cfg: &HierConfig,
) -> PanelSchedule {
    assert!(!rows.is_empty());
    if dist.proc_rows <= 1 {
        return panel_schedule(rows, &cfg.local);
    }

    let mut sched = PanelSchedule::default();
    // Group rows by owning process row, preserving ascending order inside
    // each group.  Groups are ordered by the global index of their first row
    // so that the overall survivor is the globally first row.
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); dist.proc_rows];
    for &r in rows {
        groups[dist.owner_row(r)].push(r);
    }
    let mut heads: Vec<usize> = Vec::new();
    let mut nonempty: Vec<Vec<usize>> = groups.into_iter().filter(|g| !g.is_empty()).collect();
    nonempty.sort_by_key(|g| g[0]);
    for g in &nonempty {
        let local = panel_schedule(g, &cfg.local);
        sched.geqrt_rows.extend(local.geqrt_rows);
        sched.elims.extend(local.elims);
        heads.push(g[0]);
    }
    // High-level combination of the local survivors.
    emit_top_tree(&heads, cfg.high.as_top(), &mut sched.elims);
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ElimKind;

    #[test]
    fn single_node_falls_back_to_local_tree() {
        let dist = BlockCyclic::single_node();
        let cfg = HierConfig {
            local: TreeConfig::greedy(),
            high: HighLevelTree::Flat,
        };
        let rows: Vec<usize> = (0..10).collect();
        let h = hierarchical_schedule(&rows, &dist, &cfg);
        let l = panel_schedule(&rows, &TreeConfig::greedy());
        assert_eq!(h, l);
    }

    #[test]
    fn every_non_survivor_is_eliminated_once() {
        let dist = BlockCyclic::new(4, 1);
        let cfg = HierConfig {
            local: TreeConfig::flat_ts(),
            high: HighLevelTree::Greedy,
        };
        let rows: Vec<usize> = (3..20).collect();
        let s = hierarchical_schedule(&rows, &dist, &cfg);
        let mut eliminated = std::collections::HashSet::new();
        for e in &s.elims {
            assert!(eliminated.insert(e.row), "row {} eliminated twice", e.row);
            assert!(
                !eliminated.contains(&e.piv),
                "pivot {} was already eliminated",
                e.piv
            );
        }
        assert_eq!(eliminated.len(), rows.len() - 1);
        assert!(
            !eliminated.contains(&rows[0]),
            "survivor must be the first row"
        );
    }

    #[test]
    fn high_level_eliminations_are_tt_between_process_heads() {
        let dist = BlockCyclic::new(3, 1);
        let cfg = HierConfig {
            local: TreeConfig::flat_ts(),
            high: HighLevelTree::Flat,
        };
        let rows: Vec<usize> = (0..9).collect();
        let s = hierarchical_schedule(&rows, &dist, &cfg);
        // Process-row heads are 0, 1, 2; the last two eliminations must be
        // TT eliminations of 1 and 2 onto 0.
        let tail: Vec<_> = s.elims.iter().rev().take(2).collect();
        for e in tail {
            assert_eq!(e.kind, ElimKind::Tt);
            assert_eq!(e.piv, 0);
            assert!(e.row == 1 || e.row == 2);
        }
    }

    #[test]
    fn dplasma_default_switches_on_shape() {
        assert_eq!(HighLevelTree::dplasma_default(20, 4), HighLevelTree::Flat);
        assert_eq!(
            HighLevelTree::dplasma_default(6, 4),
            HighLevelTree::Fibonacci
        );
    }

    #[test]
    fn partial_panels_only_touch_their_rows() {
        // Later steps of the factorization pass a suffix of the rows; the
        // schedule must never reference rows outside that suffix.
        let dist = BlockCyclic::new(5, 1);
        let cfg = HierConfig {
            local: TreeConfig::greedy(),
            high: HighLevelTree::Fibonacci,
        };
        let rows: Vec<usize> = (7..23).collect();
        let s = hierarchical_schedule(&rows, &dist, &cfg);
        for e in &s.elims {
            assert!(rows.contains(&e.piv));
            assert!(rows.contains(&e.row));
        }
        for &g in &s.geqrt_rows {
            assert!(rows.contains(&g));
        }
    }
}
