//! Pipelined (cross-step) GREEDY schedules for the tiled QR factorization.
//!
//! Inside one panel of the BIDIAG algorithm the greedy tree is simply a
//! binomial tree, because the paper proves that consecutive QR/LQ steps of
//! the bidiagonalization cannot overlap.  The QR *factorization* used as the
//! first phase of R-BIDIAG is different: its successive panels overlap
//! heavily, and the true GREEDY algorithm of Bouwmeester et al. eliminates
//! tiles in each column as soon as they become available, yielding a
//! critical path of `22q + o(q)` (for `p = o(q^2)`) instead of
//! `Theta(q log p)` for per-panel binomial trees.  This module implements
//! that coupled construction with the classical round-based model:
//!
//! * a tile `(i, 0)` is available at round 0,
//! * a tile `(i, k)` (`k >= 1`) becomes available one round after row `i`
//!   has been eliminated in column `k-1`,
//! * at every round, each column eliminates the bottom half of its available
//!   rows against its top half (pivots keep the smaller index, so row `k`
//!   survives column `k`).

use crate::schedule::{ElimKind, Elimination, PanelSchedule};

/// Build one [`PanelSchedule`] per column `k in 0..q` for the pipelined
/// GREEDY QR factorization of a `p x q` tile matrix.  All eliminations use
/// TT kernels and every row of each panel is factored (`GEQRT`) first.
pub fn greedy_qr_schedules(p: usize, q: usize) -> Vec<PanelSchedule> {
    assert!(p >= 1 && q >= 1);
    let q = q.min(p);
    let mut schedules: Vec<PanelSchedule> = (0..q)
        .map(|k| PanelSchedule {
            geqrt_rows: (k..p).collect(),
            elims: Vec::new(),
        })
        .collect();

    // ready[k][i - k] = first round at which row i can participate in column k.
    let mut ready: Vec<Vec<Option<usize>>> = (0..q).map(|k| vec![None; p - k]).collect();
    // alive[k] = rows not yet eliminated in column k.
    let mut alive: Vec<Vec<usize>> = (0..q).map(|k| (k..p).collect()).collect();
    for r in ready[0].iter_mut() {
        *r = Some(0);
    }

    let mut round = 0usize;
    loop {
        let mut done = true;
        let mut progressed = false;
        for k in 0..q {
            if alive[k].len() > 1 {
                done = false;
            } else {
                continue;
            }
            // Rows of column k that are available this round and still alive.
            let avail: Vec<usize> = alive[k]
                .iter()
                .copied()
                .filter(|&i| matches!(ready[k][i - k], Some(r) if r <= round))
                .collect();
            if avail.len() < 2 {
                continue;
            }
            let z = avail.len() / 2;
            // Eliminate the bottom `z` available rows against the top `z`.
            let mut eliminated = Vec::with_capacity(z);
            for t in 0..z {
                let row = avail[avail.len() - 1 - t];
                let piv = avail[t];
                schedules[k].elims.push(Elimination {
                    piv,
                    row,
                    kind: ElimKind::Tt,
                });
                eliminated.push(row);
                // The row becomes available for column k+1 one round later.
                if k + 1 < q && row > k {
                    ready[k + 1][row - (k + 1)] = Some(round + 1);
                }
                progressed = true;
            }
            alive[k].retain(|i| !eliminated.contains(i));
        }
        if done {
            break;
        }
        let _ = progressed;
        round += 1;
        assert!(
            round <= 4 * (p + q) + 64,
            "pipelined greedy failed to converge"
        );
    }
    schedules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_schedule;

    #[test]
    fn schedules_are_valid_reductions() {
        for &(p, q) in &[(1usize, 1usize), (4, 4), (10, 3), (16, 16), (37, 5), (8, 1)] {
            let s = greedy_qr_schedules(p, q);
            assert_eq!(s.len(), q.min(p));
            for (k, sched) in s.iter().enumerate() {
                let rows: Vec<usize> = (k..p).collect();
                assert_eq!(validate_schedule(&rows, sched), Ok(()), "p={p} q={q} k={k}");
            }
        }
    }

    #[test]
    fn first_column_is_a_binomial_tree() {
        // With every row available at round 0, greedy reduces column 0 in
        // ceil(log2 p) rounds, like a binomial tree.
        for p in [2usize, 5, 8, 13, 32] {
            let s = greedy_qr_schedules(p, 1);
            assert_eq!(s[0].elims.len(), p - 1);
            let depth = s[0].depth();
            assert_eq!(depth, (p as f64).log2().ceil() as usize, "p = {p}");
        }
    }

    #[test]
    fn later_columns_start_before_earlier_ones_finish() {
        // Pipelining: the elimination schedule of column 1 must contain
        // eliminations whose operands were freed early by column 0, i.e. the
        // total number of rounds is far below q * ceil(log2 p).
        let (p, q) = (64usize, 8usize);
        let s = greedy_qr_schedules(p, q);
        let total_elims: usize = s.iter().map(|x| x.elims.len()).sum();
        let expected: usize = (0..q).map(|k| p - k - 1).sum();
        assert_eq!(total_elims, expected);
    }

    #[test]
    fn survivor_is_the_diagonal_row() {
        let s = greedy_qr_schedules(12, 4);
        for (k, sched) in s.iter().enumerate() {
            for e in &sched.elims {
                assert_ne!(e.row, k, "diagonal row was eliminated in column {k}");
            }
        }
    }
}
