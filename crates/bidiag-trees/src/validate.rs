//! Validation of panel schedules.
//!
//! A schedule is *valid* when executing its eliminations in order performs a
//! complete and well-formed reduction of the panel:
//!
//! * every row except the first (the survivor) is eliminated exactly once,
//! * a pivot is never a row that has already been eliminated,
//! * TT eliminations only involve rows that have been factored into
//!   triangles (`GEQRT`) or that are domain heads,
//! * TS eliminations only eliminate rows that have *not* been factored into
//!   triangles (they expect a full square tile).
//!
//! Property-based tests in this crate and in `bidiag-core` run every tree
//! configuration through this validator.

use crate::schedule::{ElimKind, PanelSchedule};
use std::collections::HashSet;

/// Errors a schedule can exhibit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// A row outside the panel is referenced.
    UnknownRow(usize),
    /// A row is eliminated more than once.
    DoubleElimination(usize),
    /// An elimination uses a pivot that has already been eliminated.
    DeadPivot {
        /// The offending pivot row.
        piv: usize,
        /// The row being eliminated.
        row: usize,
    },
    /// A TT elimination references a row that was never factored (GEQRT).
    TtOnSquare(usize),
    /// A TS elimination eliminates a row that was factored into a triangle.
    TsOnTriangle(usize),
    /// Some rows were never eliminated.
    IncompleteReduction(Vec<usize>),
    /// The survivor (first row) was eliminated.
    SurvivorEliminated,
}

/// Validate `schedule` against the panel `rows` (ascending global indices).
pub fn validate_schedule(rows: &[usize], schedule: &PanelSchedule) -> Result<(), ScheduleError> {
    let row_set: HashSet<usize> = rows.iter().copied().collect();
    let triangles: HashSet<usize> = schedule.geqrt_rows.iter().copied().collect();
    for &g in &schedule.geqrt_rows {
        if !row_set.contains(&g) {
            return Err(ScheduleError::UnknownRow(g));
        }
    }

    let survivor = rows[0];
    let mut eliminated: HashSet<usize> = HashSet::new();
    for e in &schedule.elims {
        if !row_set.contains(&e.piv) {
            return Err(ScheduleError::UnknownRow(e.piv));
        }
        if !row_set.contains(&e.row) {
            return Err(ScheduleError::UnknownRow(e.row));
        }
        if eliminated.contains(&e.row) {
            return Err(ScheduleError::DoubleElimination(e.row));
        }
        if eliminated.contains(&e.piv) {
            return Err(ScheduleError::DeadPivot {
                piv: e.piv,
                row: e.row,
            });
        }
        match e.kind {
            ElimKind::Tt => {
                // Both participants must be triangles.
                if !triangles.contains(&e.row) {
                    return Err(ScheduleError::TtOnSquare(e.row));
                }
                if !triangles.contains(&e.piv) {
                    return Err(ScheduleError::TtOnSquare(e.piv));
                }
            }
            ElimKind::Ts => {
                // The pivot must be a triangle, the eliminated row must not.
                if triangles.contains(&e.row) {
                    return Err(ScheduleError::TsOnTriangle(e.row));
                }
                if !triangles.contains(&e.piv) {
                    return Err(ScheduleError::TtOnSquare(e.piv));
                }
            }
        }
        eliminated.insert(e.row);
    }

    if eliminated.contains(&survivor) {
        return Err(ScheduleError::SurvivorEliminated);
    }
    let missing: Vec<usize> = rows
        .iter()
        .copied()
        .filter(|r| *r != survivor && !eliminated.contains(r))
        .collect();
    if !missing.is_empty() {
        return Err(ScheduleError::IncompleteReduction(missing));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{panel_schedule, DomainSize, Elimination, TopTree, TreeConfig};

    fn all_configs() -> Vec<TreeConfig> {
        let mut v = vec![
            TreeConfig::flat_ts(),
            TreeConfig::flat_tt(),
            TreeConfig::greedy(),
        ];
        for a in [2usize, 3, 5, 8] {
            for top in [TopTree::Flat, TopTree::Greedy, TopTree::Fibonacci] {
                v.push(TreeConfig {
                    domain: DomainSize::Fixed(a),
                    top,
                });
            }
        }
        v.push(TreeConfig {
            domain: DomainSize::One,
            top: TopTree::Fibonacci,
        });
        v
    }

    #[test]
    fn every_builtin_config_is_valid_on_many_sizes() {
        for cfg in all_configs() {
            for n in 1..=40usize {
                let rows: Vec<usize> = (0..n).collect();
                let s = panel_schedule(&rows, &cfg);
                assert_eq!(validate_schedule(&rows, &s), Ok(()), "cfg {cfg:?} n {n}");
            }
        }
    }

    #[test]
    fn detects_double_elimination() {
        let rows: Vec<usize> = (0..4).collect();
        let mut s = panel_schedule(&rows, &TreeConfig::flat_ts());
        let dup = s.elims[1];
        s.elims.push(dup);
        assert!(matches!(
            validate_schedule(&rows, &s),
            Err(ScheduleError::DoubleElimination(_))
        ));
    }

    #[test]
    fn detects_dead_pivot() {
        let rows: Vec<usize> = (0..4).collect();
        let mut s = panel_schedule(&rows, &TreeConfig::flat_tt());
        // Eliminate 1 onto 0, then use 1 as a pivot.
        s.elims.push(Elimination {
            piv: 1,
            row: 2,
            kind: ElimKind::Tt,
        });
        // Remove the legitimate elimination of 2 to keep it single.
        s.elims.retain(|e| !(e.row == 2 && e.piv == 0));
        let err = validate_schedule(&rows, &s);
        assert!(
            matches!(
                err,
                Err(ScheduleError::DeadPivot { .. }) | Err(ScheduleError::DoubleElimination(_))
            ),
            "unexpected result {err:?}"
        );
    }

    #[test]
    fn detects_incomplete_reduction() {
        let rows: Vec<usize> = (0..5).collect();
        let mut s = panel_schedule(&rows, &TreeConfig::greedy());
        s.elims.pop();
        assert!(matches!(
            validate_schedule(&rows, &s),
            Err(ScheduleError::IncompleteReduction(_))
        ));
    }

    #[test]
    fn detects_kernel_type_misuse() {
        let rows: Vec<usize> = (0..3).collect();
        // TT elimination on a row that never got GEQRT.
        let s = PanelSchedule {
            geqrt_rows: vec![0],
            elims: vec![
                Elimination {
                    piv: 0,
                    row: 1,
                    kind: ElimKind::Tt,
                },
                Elimination {
                    piv: 0,
                    row: 2,
                    kind: ElimKind::Ts,
                },
            ],
        };
        assert_eq!(
            validate_schedule(&rows, &s),
            Err(ScheduleError::TtOnSquare(1))
        );
    }
}
