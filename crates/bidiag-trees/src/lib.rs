//! # bidiag-trees
//!
//! Reduction trees for tiled QR/LQ panel eliminations.
//!
//! A *panel schedule* describes how one QR step (or, symmetrically, one LQ
//! step) reduces a set of tile rows onto the topmost row:
//!
//! * which rows receive a `GEQRT` (i.e. are turned into triangles),
//! * an ordered list of eliminations `elim(row, piv)` with either TS
//!   (triangle-on-square) or TT (triangle-on-triangle) kernels.
//!
//! The trees studied in the paper are expressed as configurations of a
//! single generic construction ([`TreeConfig`]): rows are grouped into
//! consecutive *domains* reduced by a flat TS chain onto their head, and the
//! domain heads are then combined by a *top tree* of TT eliminations:
//!
//! | paper name | domains            | top tree  |
//! |------------|--------------------|-----------|
//! | `FLATTS`   | one domain (all)   | (none)    |
//! | `FLATTT`   | singleton domains  | flat      |
//! | `GREEDY`   | singleton domains  | binomial  |
//! | `AUTO`     | domains of size `a(step)` | binomial (greedy) |
//!
//! The distributed-memory trees of Section V are built by
//! [`hierarchical_schedule`]: rows are first grouped by the process row that
//! owns them (2D block-cyclic distribution), reduced locally with a
//! shared-memory configuration, and the per-process heads are combined by a
//! high-level tree (flat, greedy or Fibonacci).

#![warn(missing_docs)]

pub mod auto;
pub mod hier;
pub mod pipelined;
pub mod schedule;
pub mod validate;

pub use auto::auto_domain_size;
pub use hier::{hierarchical_schedule, HierConfig, HighLevelTree};
pub use pipelined::greedy_qr_schedules;
pub use schedule::{
    panel_schedule, DomainSize, ElimKind, Elimination, PanelSchedule, TopTree, TreeConfig,
};
pub use validate::validate_schedule;

use serde::{Deserialize, Serialize};

/// The named tree variants evaluated in the paper's experiments.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum NamedTree {
    /// Flat tree with TS kernels (PLASMA's historical choice).
    FlatTs,
    /// Flat tree with TT kernels.
    FlatTt,
    /// Binomial (greedy) tree with TT kernels.
    Greedy,
    /// Auto-adaptive tree: FLATTS domains of adaptive size combined by a
    /// greedy tree, sized so that parallelism >= `gamma * ncores`.
    Auto {
        /// Parallelism over-provisioning factor (the paper uses `gamma = 2`).
        gamma: f64,
        /// Number of cores the tree adapts to.
        ncores: usize,
    },
}

impl NamedTree {
    /// Resolve the named tree into a concrete [`TreeConfig`] for a panel of
    /// `rows_in_panel` rows with `trailing` trailing tile columns.
    ///
    /// For the static trees the result does not depend on the panel geometry;
    /// for [`NamedTree::Auto`] the domain size follows the adaptive rule of
    /// Section V of the paper.
    pub fn config_for(&self, rows_in_panel: usize, trailing: usize) -> TreeConfig {
        match *self {
            NamedTree::FlatTs => TreeConfig {
                domain: DomainSize::Whole,
                top: TopTree::Flat,
            },
            NamedTree::FlatTt => TreeConfig {
                domain: DomainSize::One,
                top: TopTree::Flat,
            },
            NamedTree::Greedy => TreeConfig {
                domain: DomainSize::One,
                top: TopTree::Greedy,
            },
            NamedTree::Auto { gamma, ncores } => {
                let a = auto_domain_size(rows_in_panel, trailing, gamma, ncores);
                TreeConfig {
                    domain: DomainSize::Fixed(a),
                    top: TopTree::Greedy,
                }
            }
        }
    }

    /// Display name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            NamedTree::FlatTs => "FlatTS",
            NamedTree::FlatTt => "FlatTT",
            NamedTree::Greedy => "Greedy",
            NamedTree::Auto { .. } => "Auto",
        }
    }

    /// The four variants benchmarked in the shared-memory experiments of the
    /// paper, for a machine with `ncores` cores.
    pub fn paper_variants(ncores: usize) -> Vec<NamedTree> {
        vec![
            NamedTree::FlatTs,
            NamedTree::FlatTt,
            NamedTree::Greedy,
            NamedTree::Auto { gamma: 2.0, ncores },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_tree_resolution() {
        let rows = 16;
        let flat_ts = NamedTree::FlatTs.config_for(rows, 4);
        assert_eq!(flat_ts.domain, DomainSize::Whole);
        let greedy = NamedTree::Greedy.config_for(rows, 4);
        assert_eq!(greedy.domain, DomainSize::One);
        assert_eq!(greedy.top, TopTree::Greedy);
        let auto = NamedTree::Auto {
            gamma: 2.0,
            ncores: 4,
        }
        .config_for(rows, 4);
        match auto.domain {
            DomainSize::Fixed(a) => assert!(a >= 1 && a <= rows),
            _ => panic!("auto must resolve to a fixed domain size"),
        }
    }

    #[test]
    fn names_and_variants() {
        assert_eq!(NamedTree::FlatTs.name(), "FlatTS");
        assert_eq!(
            NamedTree::Auto {
                gamma: 2.0,
                ncores: 24
            }
            .name(),
            "Auto"
        );
        assert_eq!(NamedTree::paper_variants(24).len(), 4);
    }
}
