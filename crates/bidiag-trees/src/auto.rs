//! The auto-adaptive domain size rule of the AUTO tree (Section V).
//!
//! The AUTO tree combines FLATTS sub-trees of size `a` with a greedy TT tree
//! on top.  At each step of the factorization the domain size `a` is chosen
//! as large as possible (to benefit from the more efficient TS kernels)
//! while keeping enough ready tasks to feed the machine:
//!
//! ```text
//!   ceil(rows_in_panel / a) * trailing_cols  >=  gamma * ncores
//! ```
//!
//! The paper uses `gamma = 2`.

/// Compute the FLATTS domain size `a` for a panel with `rows_in_panel` tile
/// rows and `trailing_cols` trailing tile columns, on `ncores` cores with
/// over-provisioning factor `gamma`.
///
/// Returns a value in `1..=rows_in_panel` (at least 1 even for tiny panels).
pub fn auto_domain_size(
    rows_in_panel: usize,
    trailing_cols: usize,
    gamma: f64,
    ncores: usize,
) -> usize {
    if rows_in_panel <= 1 {
        return 1;
    }
    let target = (gamma * ncores as f64).max(1.0);
    let trailing = trailing_cols.max(1) as f64;
    // Largest a such that ceil(rows / a) * trailing >= target, i.e.
    // a <= rows / ceil(target / trailing)  (approximately).
    let needed_chunks = (target / trailing).ceil().max(1.0);
    let a = (rows_in_panel as f64 / needed_chunks).floor() as usize;
    a.clamp(1, rows_in_panel)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parallelism(rows: usize, trailing: usize, a: usize) -> f64 {
        (rows as f64 / a as f64).ceil() * trailing.max(1) as f64
    }

    #[test]
    fn small_panels_get_domain_one() {
        assert_eq!(auto_domain_size(1, 10, 2.0, 24), 1);
        assert_eq!(auto_domain_size(4, 1, 2.0, 24), 1);
    }

    #[test]
    fn large_panels_get_large_domains() {
        // Plenty of trailing columns: the panel alone does not need to supply
        // much parallelism, so domains can be big.
        let a = auto_domain_size(200, 100, 2.0, 24);
        assert!(a > 50, "expected large domains, got {a}");
        assert!(parallelism(200, 100, a) >= 48.0);
    }

    #[test]
    fn parallelism_constraint_is_respected_when_feasible() {
        for rows in [8usize, 32, 100, 500] {
            for trailing in [1usize, 4, 16, 64] {
                let ncores = 24;
                let gamma = 2.0;
                let a = auto_domain_size(rows, trailing, gamma, ncores);
                let par = parallelism(rows, trailing, a);
                let target = gamma * ncores as f64;
                // Either the constraint is met, or it is infeasible even with
                // a = 1 (not enough tasks at all), in which case a must be 1.
                if parallelism(rows, trailing, 1) >= target {
                    assert!(
                        par >= target,
                        "rows={rows} trailing={trailing} a={a} par={par}"
                    );
                } else {
                    assert_eq!(
                        a, 1,
                        "infeasible case must fall back to maximum parallelism"
                    );
                }
            }
        }
    }

    #[test]
    fn more_cores_means_smaller_domains() {
        let a_small = auto_domain_size(128, 8, 2.0, 4);
        let a_large = auto_domain_size(128, 8, 2.0, 64);
        assert!(a_large <= a_small);
    }
}
