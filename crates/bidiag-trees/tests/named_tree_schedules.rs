//! Integration tests: every named tree of the paper (FLATTS / FLATTT /
//! GREEDY / AUTO) resolves to a `TreeConfig` whose panel schedules are valid
//! eliminations — every non-survivor row eliminated exactly once, pivots
//! alive (never previously eliminated) at the time they are used — checked
//! both through the `validate` hooks and independently here.

use bidiag_trees::{panel_schedule, validate_schedule, NamedTree, PanelSchedule};
use std::collections::HashSet;

fn named_trees() -> Vec<NamedTree> {
    let mut v = vec![NamedTree::FlatTs, NamedTree::FlatTt, NamedTree::Greedy];
    for ncores in [1usize, 4, 16, 48] {
        for gamma in [1.0, 2.0, 4.0] {
            v.push(NamedTree::Auto { gamma, ncores });
        }
    }
    v
}

/// Independent re-implementation of the two core invariants, so the test
/// does not rely solely on `validate_schedule` agreeing with itself.
fn check_elimination_order(rows: &[usize], s: &PanelSchedule) {
    let survivor = rows[0];
    let mut eliminated: HashSet<usize> = HashSet::new();
    for e in &s.elims {
        assert!(
            !eliminated.contains(&e.row),
            "row {} eliminated twice",
            e.row
        );
        assert!(
            !eliminated.contains(&e.piv),
            "pivot {} used after being eliminated (pivots must precede dependents)",
            e.piv
        );
        eliminated.insert(e.row);
    }
    assert!(!eliminated.contains(&survivor), "survivor was eliminated");
    assert_eq!(
        eliminated.len(),
        rows.len() - 1,
        "every non-survivor row must be eliminated exactly once"
    );
}

#[test]
fn named_trees_produce_valid_schedules_on_contiguous_panels() {
    for tree in named_trees() {
        for n in 1..=48usize {
            for trailing in [1usize, 4, 12] {
                let cfg = tree.config_for(n, trailing);
                let rows: Vec<usize> = (0..n).collect();
                let s = panel_schedule(&rows, &cfg);
                assert_eq!(
                    validate_schedule(&rows, &s),
                    Ok(()),
                    "{} n={} trailing={}",
                    tree.name(),
                    n,
                    trailing
                );
                check_elimination_order(&rows, &s);
            }
        }
    }
}

#[test]
fn named_trees_produce_valid_schedules_on_sparse_panels() {
    // Later factorization steps operate on non-contiguous global row indices
    // (e.g. the surviving heads of a previous step).
    let sparse_panels: [&[usize]; 4] = [
        &[3],
        &[2, 7],
        &[1, 4, 9, 16, 25, 36],
        &[0, 5, 6, 11, 12, 17, 18, 23, 24, 29, 30, 35],
    ];
    for tree in named_trees() {
        for rows in sparse_panels {
            let cfg = tree.config_for(rows.len(), 3);
            let s = panel_schedule(rows, &cfg);
            assert_eq!(
                validate_schedule(rows, &s),
                Ok(()),
                "{} rows={rows:?}",
                tree.name()
            );
            check_elimination_order(rows, &s);
        }
    }
}

#[test]
fn paper_variants_cover_all_four_trees() {
    let variants = NamedTree::paper_variants(24);
    let names: Vec<&str> = variants.iter().map(|t| t.name()).collect();
    assert_eq!(names, ["FlatTS", "FlatTT", "Greedy", "Auto"]);
    for tree in variants {
        let rows: Vec<usize> = (0..24).collect();
        let s = panel_schedule(&rows, &tree.config_for(24, 8));
        assert_eq!(validate_schedule(&rows, &s), Ok(()), "{}", tree.name());
    }
}
