//! Tile-kernel microbenchmarks: blocked compact-WY vs unblocked reference.
//!
//! For every Table I kernel (QR family and LQ duals) and
//! `nb in {32, 64, 128}`, times both implementations (best of 3 rounds,
//! each round amortized over enough iterations), prints a comparison table
//! with the blocked/unblocked speedup and GFlop/s (Table I flop model),
//! sweeps the packed vs unpacked GEMM paths over square sizes (the data
//! behind the `PACK_CROSSOVER_MNK` dispatch constant), and finishes with a
//! best-of-3 end-to-end GE2BND run plus a GE2VAL stage split on the
//! ROADMAP reference case (768x512, nb = 64, GREEDY, BIDIAG, 1 thread).
//!
//! The SIMD section compares the runtime-dispatched backends of
//! [`bidiag_matrix::simd`]: the packed GEMM microkernel and the blocked
//! UNMQR apply are timed under the forced scalar and AVX2+FMA backends and
//! reported as GFlop/s against the *machine FMA peak*
//! (`cores x rated_GHz x lanes x 2` flops/cycle; lanes = 1 scalar, 4 AVX2 —
//! a one-FMA-port model, so measured percentages can exceed 100% on wider
//! cores), followed by the reference GE2BND case run under both backends.
//!
//! **Acceptance gates:** every blocked kernel must be at least as fast as
//! its unblocked reference at the measured tile size — the check that
//! would have caught the PR 3 TTQRT/TTLQT regression — the BD2VAL
//! dqds solver must beat per-value bisection by at least 3x on the
//! reference bidiagonal (n = 512), the pipelined BND2BD wavefront
//! reduction must beat the retained single-bulge chase by at least 2x on
//! the reference band (n = 512, bw = 64), and (when the host has AVX2+FMA)
//! the AVX2 backend must run the reference GE2BND at least 1.3x faster
//! than the forced-scalar backend.  All gates *assert* (non-zero exit) in
//! `--test` mode so CI enforces them.
//!
//! Results are emitted machine-readably to `BENCH_kernels.json` (fields:
//! `name`, `nb`, `variant`, `ns_per_iter`, `gflops`), and the end-to-end
//! numbers to the repo-top-level `BENCH.json` (machine info + per-stage
//! GE2VAL split + BD2VAL solver times + the `simd` GFlop/s-vs-peak block +
//! the cross-PR history) — see BENCHMARKING.md.
//!
//! Modes: no flag = full sweep; `--test` = CI gate (nb = 64 only, shorter
//! rounds, JSON to a temp path, no end-to-end run, but all acceptance
//! gates); `--gemm-sweep` = only the packed-vs-unpacked GEMM crossover
//! table; `--bd2val` = only the BD2VAL solver comparison; `--bnd2bd` =
//! only the BND2BD pipelined-vs-single-bulge comparison; `--simd` = only
//! the SIMD backend comparison plus the GE2BND backend gate.

use bidiag_bench::{
    measure_bd2val_solvers, measure_bnd2bd, measure_ge2bnd_backends, measure_ge2bnd_scaling,
    measure_ge2val_stages,
};
use bidiag_core::flops::bidiag_flops;
use bidiag_core::pipeline::{AlgorithmChoice, Ge2Options};
use bidiag_kernels::cost::KernelKind;
use bidiag_kernels::{lq, qr, Trans, Workspace};
use bidiag_matrix::checks::{lower_triangle_of, upper_triangle_of};
use bidiag_matrix::gemm::{gemm_nn_packed, gemm_nn_unpacked, GemmScratch};
use bidiag_matrix::gen::{latms, random_gaussian, SpectrumKind};
use bidiag_matrix::simd::{self, SimdBackend};
use bidiag_trees::NamedTree;
use std::time::Instant;

/// One measured data point.
struct Record {
    name: &'static str,
    nb: usize,
    variant: &'static str,
    ns_per_iter: f64,
    gflops: f64,
}

/// Best-of-`rounds` timing of `f`, each round running `iters` iterations.
/// Returns seconds per iteration.
fn best_of(rounds: usize, iters: usize, f: &mut dyn FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

struct Harness {
    rounds: usize,
    min_round_secs: f64,
    records: Vec<Record>,
}

impl Harness {
    /// Time one (kernel, nb, variant) cell: calibrate the iteration count to
    /// `min_round_secs`, run best-of-`rounds`, record ns/iter and GFlop/s.
    fn bench(
        &mut self,
        name: &'static str,
        flops: f64,
        nb: usize,
        variant: &'static str,
        mut f: impl FnMut(),
    ) {
        let once = best_of(1, 1, &mut f);
        let iters = ((self.min_round_secs / once.max(1e-9)).ceil() as usize).clamp(1, 10_000);
        let secs = best_of(self.rounds, iters, &mut f);
        self.records.push(Record {
            name,
            nb,
            variant,
            ns_per_iter: secs * 1.0e9,
            gflops: flops / secs / 1.0e9,
        });
    }

    fn pair(&self, name: &str, nb: usize) -> Option<(f64, f64, f64)> {
        let find = |variant: &str| {
            self.records
                .iter()
                .find(|r| r.name == name && r.nb == nb && r.variant == variant)
        };
        let b = find("blocked")?;
        let u = find("unblocked")?;
        Some((u.ns_per_iter, b.ns_per_iter, u.ns_per_iter / b.ns_per_iter))
    }
}

const KERNEL_NAMES: [&str; 12] = [
    "geqrt", "unmqr", "tsqrt", "tsmqr", "ttqrt", "ttmqr", "gelqt", "unmlq", "tslqt", "tsmlq",
    "ttlqt", "ttmlq",
];

/// Run every kernel pair at one tile size.
fn bench_tile_size(h: &mut Harness, nb: usize) {
    let mut ws = Workspace::new();
    let a = random_gaussian(nb, nb, 1);
    let b = random_gaussian(nb, nb, 2);
    let c = random_gaussian(nb, nb, 3);

    // Shared factored operands.
    let mut v = a.clone();
    let tf = qr::geqrt(&mut v, &mut Workspace::new());
    let taus = tf.taus().to_vec();
    let r1 = upper_triangle_of(&v);
    let mut rts = r1.clone();
    let mut vts = b.clone();
    let tf_ts = qr::tsqrt(&mut rts, &mut vts, &mut Workspace::new());
    let r2 = upper_triangle_of(&random_gaussian(nb, nb, 4));
    let mut rtt = r1.clone();
    let mut vtt = r2.clone();
    let tf_tt = qr::ttqrt(&mut rtt, &mut vtt, &mut Workspace::new());
    let mut vl = a.clone();
    let tf_l = lq::gelqt(&mut vl, &mut Workspace::new());
    let l1 = lower_triangle_of(&vl);
    let mut lts = l1.clone();
    let mut vlts = b.clone();
    let tf_lts = lq::tslqt(&mut lts, &mut vlts, &mut Workspace::new());
    let l2 = lower_triangle_of(&random_gaussian(nb, nb, 5));
    let mut ltt = l1.clone();
    let mut vltt = l2.clone();
    let tf_ltt = lq::ttlqt(&mut ltt, &mut vltt, &mut Workspace::new());

    // Reused output buffers: operand refresh is a contiguous copy, so the
    // timed loops allocate nothing.
    let mut w1 = a.clone();
    let mut w2 = b.clone();

    h.bench("geqrt", KernelKind::Geqrt.flops(nb), nb, "blocked", || {
        w1.copy_from(&a);
        let _ = qr::geqrt(&mut w1, &mut ws);
    });
    h.bench(
        "geqrt",
        KernelKind::Geqrt.flops(nb),
        nb,
        "unblocked",
        || {
            w1.copy_from(&a);
            let _ = qr::geqrt_unblocked(&mut w1);
        },
    );
    h.bench("unmqr", KernelKind::Unmqr.flops(nb), nb, "blocked", || {
        w1.copy_from(&b);
        qr::unmqr(&v, &tf, &mut w1, Trans::Transpose, &mut ws);
    });
    h.bench(
        "unmqr",
        KernelKind::Unmqr.flops(nb),
        nb,
        "unblocked",
        || {
            w1.copy_from(&b);
            qr::unmqr_unblocked(&v, &taus, &mut w1, Trans::Transpose);
        },
    );
    h.bench("tsqrt", KernelKind::Tsqrt.flops(nb), nb, "blocked", || {
        w1.copy_from(&r1);
        w2.copy_from(&b);
        let _ = qr::tsqrt(&mut w1, &mut w2, &mut ws);
    });
    h.bench(
        "tsqrt",
        KernelKind::Tsqrt.flops(nb),
        nb,
        "unblocked",
        || {
            w1.copy_from(&r1);
            w2.copy_from(&b);
            let _ = qr::tsqrt_unblocked(&mut w1, &mut w2);
        },
    );
    h.bench("tsmqr", KernelKind::Tsmqr.flops(nb), nb, "blocked", || {
        w1.copy_from(&b);
        w2.copy_from(&c);
        qr::tsmqr(&mut w1, &mut w2, &vts, &tf_ts, Trans::Transpose, &mut ws);
    });
    h.bench(
        "tsmqr",
        KernelKind::Tsmqr.flops(nb),
        nb,
        "unblocked",
        || {
            w1.copy_from(&b);
            w2.copy_from(&c);
            qr::tsmqr_unblocked(&mut w1, &mut w2, &vts, tf_ts.taus(), Trans::Transpose);
        },
    );
    h.bench("ttqrt", KernelKind::Ttqrt.flops(nb), nb, "blocked", || {
        w1.copy_from(&r1);
        w2.copy_from(&r2);
        let _ = qr::ttqrt(&mut w1, &mut w2, &mut ws);
    });
    h.bench(
        "ttqrt",
        KernelKind::Ttqrt.flops(nb),
        nb,
        "unblocked",
        || {
            w1.copy_from(&r1);
            w2.copy_from(&r2);
            let _ = qr::ttqrt_unblocked(&mut w1, &mut w2);
        },
    );
    h.bench("ttmqr", KernelKind::Ttmqr.flops(nb), nb, "blocked", || {
        w1.copy_from(&b);
        w2.copy_from(&c);
        qr::ttmqr(&mut w1, &mut w2, &vtt, &tf_tt, Trans::Transpose, &mut ws);
    });
    h.bench(
        "ttmqr",
        KernelKind::Ttmqr.flops(nb),
        nb,
        "unblocked",
        || {
            w1.copy_from(&b);
            w2.copy_from(&c);
            qr::ttmqr_unblocked(&mut w1, &mut w2, &vtt, tf_tt.taus(), Trans::Transpose);
        },
    );

    // LQ duals.
    h.bench("gelqt", KernelKind::Gelqt.flops(nb), nb, "blocked", || {
        w1.copy_from(&a);
        let _ = lq::gelqt(&mut w1, &mut ws);
    });
    h.bench(
        "gelqt",
        KernelKind::Gelqt.flops(nb),
        nb,
        "unblocked",
        || {
            w1.copy_from(&a);
            let _ = lq::gelqt_unblocked(&mut w1);
        },
    );
    h.bench("unmlq", KernelKind::Unmlq.flops(nb), nb, "blocked", || {
        w1.copy_from(&b);
        lq::unmlq(&vl, &tf_l, &mut w1, Trans::Transpose, &mut ws);
    });
    h.bench(
        "unmlq",
        KernelKind::Unmlq.flops(nb),
        nb,
        "unblocked",
        || {
            w1.copy_from(&b);
            lq::unmlq_unblocked(&vl, tf_l.taus(), &mut w1, Trans::Transpose);
        },
    );
    h.bench("tslqt", KernelKind::Tslqt.flops(nb), nb, "blocked", || {
        w1.copy_from(&l1);
        w2.copy_from(&b);
        let _ = lq::tslqt(&mut w1, &mut w2, &mut ws);
    });
    h.bench(
        "tslqt",
        KernelKind::Tslqt.flops(nb),
        nb,
        "unblocked",
        || {
            w1.copy_from(&l1);
            w2.copy_from(&b);
            let _ = lq::tslqt_unblocked(&mut w1, &mut w2);
        },
    );
    h.bench("tsmlq", KernelKind::Tsmlq.flops(nb), nb, "blocked", || {
        w1.copy_from(&b);
        w2.copy_from(&c);
        lq::tsmlq(&mut w1, &mut w2, &vlts, &tf_lts, Trans::Transpose, &mut ws);
    });
    h.bench(
        "tsmlq",
        KernelKind::Tsmlq.flops(nb),
        nb,
        "unblocked",
        || {
            w1.copy_from(&b);
            w2.copy_from(&c);
            lq::tsmlq_unblocked(&mut w1, &mut w2, &vlts, tf_lts.taus(), Trans::Transpose);
        },
    );
    h.bench("ttlqt", KernelKind::Ttlqt.flops(nb), nb, "blocked", || {
        w1.copy_from(&l1);
        w2.copy_from(&l2);
        let _ = lq::ttlqt(&mut w1, &mut w2, &mut ws);
    });
    h.bench(
        "ttlqt",
        KernelKind::Ttlqt.flops(nb),
        nb,
        "unblocked",
        || {
            w1.copy_from(&l1);
            w2.copy_from(&l2);
            let _ = lq::ttlqt_unblocked(&mut w1, &mut w2);
        },
    );
    h.bench("ttmlq", KernelKind::Ttmlq.flops(nb), nb, "blocked", || {
        w1.copy_from(&b);
        w2.copy_from(&c);
        lq::ttmlq(&mut w1, &mut w2, &vltt, &tf_ltt, Trans::Transpose, &mut ws);
    });
    h.bench(
        "ttmlq",
        KernelKind::Ttmlq.flops(nb),
        nb,
        "unblocked",
        || {
            w1.copy_from(&b);
            w2.copy_from(&c);
            lq::ttmlq_unblocked(&mut w1, &mut w2, &vltt, tf_ltt.taus(), Trans::Transpose);
        },
    );
}

/// Square sizes of the packed-vs-unpacked GEMM sweep (shared by the
/// measurement and printing loops of [`gemm_sweep`]).
const GEMM_SWEEP_SIZES: [usize; 8] = [32, 48, 64, 80, 96, 128, 192, 256];

/// Time the packed vs unpacked GEMM paths on square `s x s x s` products:
/// the measurement behind the `PACK_CROSSOVER_MNK` dispatch constant in
/// `bidiag_matrix::gemm`.
fn gemm_sweep(h: &mut Harness) {
    let mut scratch = GemmScratch::new();
    for &s in &GEMM_SWEEP_SIZES {
        let a = random_gaussian(s, s, 11);
        let b = random_gaussian(s, s, 12);
        let mut cw = random_gaussian(s, s, 13);
        let flops = 2.0 * (s as f64).powi(3);
        h.bench("gemm_nn", flops, s, "unpacked", || {
            gemm_nn_unpacked(&mut cw.as_view_mut(), 1.0, a.as_view(), b.as_view());
        });
        let mut cw = random_gaussian(s, s, 13);
        h.bench("gemm_nn", flops, s, "packed", || {
            gemm_nn_packed(
                &mut cw.as_view_mut(),
                1.0,
                a.as_view(),
                b.as_view(),
                &mut scratch,
            );
        });
    }
    println!("# packed vs unpacked GEMM (square sizes; crossover evidence for PACK_CROSSOVER_MNK)");
    println!("size\tunpacked_ns\tpacked_ns\tpacked/unpacked\tunpacked_GF\tpacked_GF");
    for &s in &GEMM_SWEEP_SIZES {
        let find = |variant: &str| {
            h.records
                .iter()
                .find(|r| r.name == "gemm_nn" && r.nb == s && r.variant == variant)
        };
        if let (Some(u), Some(p)) = (find("unpacked"), find("packed")) {
            println!(
                "{s}\t{:.0}\t{:.0}\t{:.2}x\t{:.2}\t{:.2}",
                u.ns_per_iter,
                p.ns_per_iter,
                u.ns_per_iter / p.ns_per_iter,
                u.gflops,
                p.gflops
            );
        }
    }
    println!();
}

/// The per-kernel acceptance gate: blocked must be >= 1.0x unblocked for
/// *every* kernel at the given tile size.  Prints one line per kernel and
/// returns the failing kernels (empty = all passed).
fn check_kernel_acceptance(h: &Harness, nb: usize) -> Vec<String> {
    let mut failures = Vec::new();
    println!("# acceptance: blocked >= 1.0x unblocked for every kernel @ nb={nb}");
    for name in KERNEL_NAMES {
        if let Some((_, _, speedup)) = h.pair(name, nb) {
            let verdict = if speedup >= 1.0 { "PASS" } else { "FAIL" };
            println!("# check: blocked {name} @ nb={nb}: {speedup:.2}x [{verdict}]");
            if speedup < 1.0 {
                failures.push(format!("{name} {speedup:.2}x"));
            }
        }
    }
    failures
}

/// BD2VAL solver comparison on the reference bidiagonal (the acceptance
/// data of the `bidiag-svd` subsystem): prints the per-solver table and
/// the dqds-vs-bisection speedup check, records the timings, and returns
/// them for the gate/JSON writers.  The nominal GFlop/s rate uses the
/// machine model's `30 n^2` BD2VAL operation count.
fn bd2val_comparison(h: &mut Harness, samples: usize) -> bidiag_bench::Bd2ValTimings {
    let t = measure_bd2val_solvers(768, 512, 64, samples);
    let nominal = 30.0 * (t.n as f64) * (t.n as f64);
    println!(
        "# BD2VAL solvers on the reference bidiagonal, n={} (768x512 nb=64 pipeline; best of {samples})",
        t.n
    );
    println!("solver\ttime_ms\tspeedup_vs_bisection");
    for (name, secs) in [
        ("bisection", t.bisection),
        ("sliced", t.sliced),
        ("dqds", t.dqds),
    ] {
        println!("{name}\t{:.2}\t{:.2}x", secs * 1.0e3, t.bisection / secs);
        h.records.push(Record {
            name: "bd2val_n512",
            nb: 64,
            variant: name,
            ns_per_iter: secs * 1.0e9,
            gflops: nominal / secs / 1.0e9,
        });
    }
    println!(
        "# dqds iteration profile: {} passes, {} flips, {} fallback values",
        t.dqds_stats.passes, t.dqds_stats.flips, t.dqds_stats.fallback_values
    );
    t
}

/// BND2BD back-end comparison on the reference band (512 x 512, bw = 64,
/// from the 768x512 nb=64 GE2BND): the pipelined cache-blocked wavefront
/// reduction against the retained single-bulge oracle.  Prints the table,
/// records the timings, and returns them for the gate/JSON writers.  The
/// GFlop/s rate uses the [`bidiag_kernels::band::bnd2bd_flops`] count.
fn bnd2bd_comparison(h: &mut Harness, samples: usize) -> bidiag_bench::Bnd2BdTimings {
    let t = measure_bnd2bd(768, 512, 64, samples);
    let flops = bidiag_kernels::band::bnd2bd_flops(t.n, t.bw);
    println!(
        "# BND2BD back-ends on the reference band, n={} bw={} (768x512 nb=64 pipeline; best of {samples})",
        t.n, t.bw
    );
    println!("backend\ttime_ms\tspeedup_vs_single_bulge\tGFlop/s");
    for (name, secs) in [("single_bulge", t.single_bulge), ("pipelined", t.pipelined)] {
        println!(
            "{name}\t{:.2}\t{:.2}x\t{:.2}",
            secs * 1.0e3,
            t.single_bulge / secs,
            flops / secs / 1.0e9
        );
        h.records.push(Record {
            name: "bnd2bd_n512",
            nb: 64,
            variant: name,
            ns_per_iter: secs * 1.0e9,
            gflops: flops / secs / 1.0e9,
        });
    }
    t
}

/// Nominal machine FMA peak, modelled as `cores x freq x lanes x 2`
/// (one 4-lane f64 FMA issued per cycle = 8 flops; hosts with two FMA
/// ports can double this, so measured rates are reported against the
/// conservative 1-port figure and can legitimately exceed 100% of the
/// scalar peak).
struct FmaPeak {
    /// Nominal clock in GHz (0.0 when undetectable — peaks become 0 and
    /// the vs-peak columns print as n/a).
    freq_ghz: f64,
    cores: usize,
}

impl FmaPeak {
    /// Parse the nominal frequency from `/proc/cpuinfo`: the `model name`
    /// `@ x.xxGHz` suffix when present (the *rated* clock), else the
    /// current `cpu MHz` reading.
    fn detect() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        let info = std::fs::read_to_string("/proc/cpuinfo").unwrap_or_default();
        let from_model = info
            .lines()
            .find(|l| l.starts_with("model name"))
            .and_then(|l| l.rsplit_once('@'))
            .and_then(|(_, f)| f.trim().strip_suffix("GHz"))
            .and_then(|f| f.trim().parse::<f64>().ok());
        let from_mhz = info
            .lines()
            .find(|l| l.starts_with("cpu MHz"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().parse::<f64>().ok())
            .map(|mhz| mhz / 1000.0);
        FmaPeak {
            freq_ghz: from_model.or(from_mhz).unwrap_or(0.0),
            cores,
        }
    }

    /// One-core f64 FMA peak in GFlop/s at `lanes` lanes per register.
    fn core_peak(&self, lanes: usize) -> f64 {
        self.freq_ghz * lanes as f64 * 2.0
    }

    /// Whole-machine peak: `cores x freq x lanes x 2`.
    fn machine_peak(&self, lanes: usize) -> f64 {
        self.cores as f64 * self.core_peak(lanes)
    }
}

/// Percent-of-peak formatter tolerant of an undetectable clock.
fn pct_of(gflops: f64, peak: f64) -> String {
    if peak > 0.0 {
        format!("{:.0}%", 100.0 * gflops / peak)
    } else {
        "n/a".to_string()
    }
}

/// Measured GFlop/s of the two SIMD-dispatch flagship kernels (packed GEMM
/// and the blocked WY apply) under each forced backend, for the vs-peak
/// table and the BENCH.json `simd` block.
struct SimdGflops {
    /// (backend name, GFlop/s) for `gemm_nn_packed` at 256^3.
    gemm: Vec<(&'static str, f64)>,
    /// (backend name, GFlop/s) for blocked UNMQR at nb = 64.
    wy_unmqr: Vec<(&'static str, f64)>,
}

/// Time packed GEMM (256^3) and the blocked WY apply (UNMQR @ nb = 64)
/// under each available backend through the production dispatch path
/// ([`simd::with_forced_backend`] pins the process-global backend; the
/// kernels consult [`simd::backend`] as usual), and print GFlop/s against
/// the nominal FMA peaks.
fn simd_backend_comparison(h: &mut Harness, peak: &FmaPeak) -> SimdGflops {
    let mut backends = vec![SimdBackend::Scalar];
    if simd::avx2_available() {
        backends.push(SimdBackend::Avx2);
    } else {
        println!("# AVX2+FMA not available: SIMD comparison covers the scalar backend only");
    }

    let s = 256;
    let a = random_gaussian(s, s, 21);
    let b = random_gaussian(s, s, 22);
    let gemm_flops = 2.0 * (s as f64).powi(3);
    let nb = 64;
    let cq = random_gaussian(nb, nb, 23);
    let mut v = random_gaussian(nb, nb, 24);
    let tf = qr::geqrt(&mut v, &mut Workspace::new());
    let unmqr_flops = KernelKind::Unmqr.flops(nb);

    let mut out = SimdGflops {
        gemm: Vec::new(),
        wy_unmqr: Vec::new(),
    };
    for be in backends {
        simd::with_forced_backend(be, || {
            let mut scratch = GemmScratch::new();
            let mut cw = random_gaussian(s, s, 25);
            h.bench("gemm_nn_simd", gemm_flops, s, be.name(), || {
                gemm_nn_packed(
                    &mut cw.as_view_mut(),
                    1.0,
                    a.as_view(),
                    b.as_view(),
                    &mut scratch,
                );
            });
            let mut ws = Workspace::new();
            let mut w = cq.clone();
            h.bench("unmqr_simd", unmqr_flops, nb, be.name(), || {
                w.copy_from(&cq);
                qr::unmqr(&v, &tf, &mut w, Trans::Transpose, &mut ws);
            });
        });
        let gf = |name: &str| {
            h.records
                .iter()
                .find(|r| r.name == name && r.variant == be.name())
                .map_or(0.0, |r| r.gflops)
        };
        out.gemm.push((be.name(), gf("gemm_nn_simd")));
        out.wy_unmqr.push((be.name(), gf("unmqr_simd")));
    }

    println!(
        "# SIMD backends vs machine FMA peak ({} cores x {:.2} GHz x lanes x 2; 1-thread kernels, 1 FMA port)",
        peak.cores, peak.freq_ghz
    );
    println!("kernel\tbackend\tGFlop/s\tpeak_GF\tpct_of_peak");
    for (kernel, rows) in [("gemm_nn_256", &out.gemm), ("unmqr_nb64", &out.wy_unmqr)] {
        for &(name, gflops) in rows {
            let lanes = if name == "avx2" { 4 } else { 1 };
            let p = peak.machine_peak(lanes);
            println!(
                "{kernel}\t{name}\t{gflops:.2}\t{p:.1}\t{}",
                pct_of(gflops, p)
            );
        }
    }
    if let (Some((_, gs)), Some((_, gv))) = (out.gemm.first(), out.gemm.get(1)) {
        println!("# gemm avx2/scalar: {:.2}x", gv / gs);
    }
    if let (Some((_, ws_)), Some((_, wv))) = (out.wy_unmqr.first(), out.wy_unmqr.get(1)) {
        println!("# unmqr avx2/scalar: {:.2}x", wv / ws_);
    }
    println!();
    out
}

/// GE2BND on the reference case under each forced backend, with the PR 7
/// acceptance gate: AVX2 must be at least `1.3x` faster than the scalar
/// backend end-to-end.  Asserted in `--test` mode (when AVX2 exists) after
/// a slower re-measurement pass, mirroring the other gates' noise policy.
fn ge2bnd_backend_gate(samples: usize, test_mode: bool) -> Vec<bidiag_bench::BackendPoint> {
    let points = measure_ge2bnd_backends(768, 512, 64, samples);
    println!("# ge2bnd 768x512 nb=64 @1 thread, forced SIMD backends (best of {samples})");
    println!("backend\ttime_ms\tspeedup_vs_scalar");
    let scalar = points[0].seconds;
    for p in &points {
        println!(
            "{}\t{:.1}\t{:.2}x",
            p.backend,
            p.seconds * 1.0e3,
            scalar / p.seconds
        );
    }
    if let Some(avx2) = points.iter().find(|p| p.backend == "avx2") {
        let speedup = scalar / avx2.seconds;
        let verdict = if speedup >= 1.3 { "PASS" } else { "FAIL" };
        println!("# check: ge2bnd avx2 >= 1.3x scalar backend: {speedup:.2}x [{verdict}]");
        if test_mode && speedup < 1.3 {
            println!("# gate miss on first pass; re-measuring");
            let retry = measure_ge2bnd_backends(768, 512, 64, samples.max(3));
            let speedup2 = retry[0].seconds / retry.last().unwrap().seconds;
            assert!(
                speedup2 >= 1.3,
                "simd acceptance: avx2 ge2bnd only {speedup2:.2}x over scalar in both passes"
            );
        }
    }
    println!();
    points
}

/// Batched-SVD throughput: a stream of small problems through one
/// persistent `SvdSession` against per-call `ge2val`, with the PR 8
/// acceptance gate: the session must be at least `1.5x` faster than the
/// per-call path at `n = 32`.  Asserted in `--test` mode after a slower
/// re-measurement pass, mirroring the other gates' noise policy.
///
/// Full runs sweep n in {32, 64, 128, 256}.  The issue's nominal batch is
/// 10k problems per size; that is kept at n = 32 and scaled down with n
/// (printed per point, never silently) so a full run stays minutes-scale —
/// throughput is per-problem-rate times batch, so the rate is batch-size
/// independent once the batch amortises session startup.
fn batch_throughput_gate(test_mode: bool) -> Vec<bidiag_bench::BatchThroughputPoint> {
    let threads = std::thread::available_parallelism().map_or(1, |c| c.get());
    let sizes: &[(usize, usize)] = if test_mode {
        &[(32, 2_000)]
    } else {
        &[(32, 10_000), (64, 4_000), (128, 1_000), (256, 250)]
    };
    // Best-of-3 in full runs: the n=32 point feeds the BENCH.json history
    // and the admission-overhead comparison, so it gets the same noise
    // policy as the stage timings.  --test mode keeps 2 to stay quick.
    let samples = if test_mode { 2 } else { 3 };
    let points: Vec<_> = sizes
        .iter()
        .map(|&(n, batch)| {
            if !test_mode && batch < 10_000 {
                println!("# note: batch at n={n} scaled down to {batch} (nominal 10k) to keep full runs short");
            }
            bidiag_bench::measure_batch_throughput(n, batch, threads, samples)
        })
        .collect();
    println!("# batched SVD: persistent SvdSession vs per-call ge2val @{threads} thread(s), nb=64 (best of {samples})");
    println!("n\tbatch\tsession_probs_per_s\tper_call_probs_per_s\tspeedup");
    for p in &points {
        println!(
            "{}\t{}\t{:.0}\t{:.0}\t{:.2}x",
            p.n,
            p.batch,
            p.session_problems_per_sec(),
            p.per_call_problems_per_sec(),
            p.speedup()
        );
    }
    let p32 = points.iter().find(|p| p.n == 32).expect("n=32 point");
    let speedup = p32.speedup();
    let verdict = if speedup >= 1.5 { "PASS" } else { "FAIL" };
    println!("# check: SvdSession >= 1.5x per-call ge2val @ n=32: {speedup:.2}x [{verdict}]");
    if test_mode && speedup < 1.5 {
        println!("# gate miss on first pass; re-measuring");
        let retry = bidiag_bench::measure_batch_throughput(32, 4_000, threads, 3);
        assert!(
            retry.speedup() >= 1.5,
            "batch acceptance: session only {:.2}x over per-call ge2val at n=32 in both passes",
            retry.speedup()
        );
    }
    println!();
    points
}

/// Observability-plane cost on the reference GE2BND, measured as
/// force-enabled vs disabled at `threads >= 2` (the threaded executor is
/// where every span-recording site lives; at 1 thread the sequential path
/// has no sites on it).  The enabled-vs-disabled delta upper-bounds the
/// contract the plane makes — a *disabled* site costs one relaxed load or
/// one integer compare — so the PR 10 acceptance gate asserts the whole
/// delta stays <= 2% in `--test` mode, with the usual slower re-measure
/// before the gate turns red.  Returns the measured overhead in percent.
fn tracing_overhead_gate(samples: usize, test_mode: bool) -> f64 {
    let threads = std::thread::available_parallelism().map_or(2, |c| c.get().max(2));
    let a = latms(768, 512, &SpectrumKind::Geometric { cond: 1.0e4 }, 7).0;
    let opts = Ge2Options::new(64)
        .with_tree(NamedTree::Greedy)
        .with_algorithm(AlgorithmChoice::Bidiag)
        .with_threads(threads);
    let measure = |samples: usize| {
        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let t0 = Instant::now();
            let r = bidiag_core::pipeline::ge2bnd(&a, &opts);
            best = best.min(t0.elapsed().as_secs_f64());
            assert!(r.num_tasks > 0);
        }
        best
    };
    // Interleave disabled/enabled rounds (best-of each), alternating which
    // side goes first in each round: slow drift and position effects
    // (frequency ramp, cache state, cgroup CPU-quota throttling of the
    // later run in a busy burst) then hit both sides equally instead of
    // biasing whichever side consistently ran second.
    let run_pair = |samples: usize| {
        bidiag_obs::set_enabled(false);
        let _ = measure(1); // untimed warm-up: first-touch + frequency ramp
        let mut off = f64::INFINITY;
        let mut on = f64::INFINITY;
        for round in 0..samples {
            for leg in 0..2 {
                let enabled = (round + leg) % 2 == 1;
                bidiag_obs::set_enabled(enabled);
                let t = measure(1);
                if enabled {
                    on = on.min(t);
                } else {
                    off = off.min(t);
                }
            }
        }
        bidiag_obs::set_enabled(false);
        (off, on, (on / off - 1.0) * 100.0)
    };
    let (off, on, mut pct) = run_pair(samples);
    let verdict = if pct <= 2.0 { "PASS" } else { "FAIL" };
    println!(
        "# ge2bnd 768x512 nb=64 @{threads} threads: tracing off {:.1} ms, force-enabled {:.1} ms, overhead {pct:+.2}% [{verdict}]",
        off * 1.0e3,
        on * 1.0e3
    );
    if pct > 2.0 {
        // A first reading past the gate is usually positional noise on a
        // throttled host; take the longer re-measurement as the result in
        // both modes (test mode additionally asserts it).
        println!("# gate miss on first pass; re-measuring");
        let (_, _, pct2) = run_pair(samples.max(8));
        if test_mode {
            assert!(
                pct2 <= 2.0,
                "tracing acceptance: observability overhead {pct2:+.2}% > 2% on ge2bnd in both passes"
            );
        }
        let verdict2 = if pct2 <= 2.0 { "PASS" } else { "FAIL" };
        println!("# re-measured tracing overhead: {pct2:+.2}% [{verdict2}]");
        pct = pct2;
    }
    println!();
    pct
}

/// Best-effort CPU model name (Linux /proc/cpuinfo).
fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

fn write_json(path: &std::path::Path, records: &[Record]) {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"nb\": {}, \"variant\": \"{}\", \"ns_per_iter\": {:.1}, \"gflops\": {:.3}}}{}\n",
            r.name,
            r.nb,
            r.variant,
            r.ns_per_iter,
            r.gflops,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    std::fs::write(path, out).expect("writing bench JSON");
    println!("# wrote {}", path.display());
}

/// Write the top-level BENCH.json: end-to-end numbers on the reference
/// case, the BD2VAL solver and BND2BD back-end comparisons, the machine
/// they were measured on, and the cross-PR trajectory (GE2BND plus, from
/// PR 4 on, the BD2VAL stage time the singular-value subsystem was built
/// to attack, and from PR 5 on the BND2BD stage time the pipelined bulge
/// chase was built to attack).
#[allow(clippy::too_many_arguments)] // one call site; mirrors the BENCH.json block list
fn write_top_level_bench(
    ge2bnd_ms: f64,
    stages: &bidiag_bench::StageTimes,
    bd2val: &bidiag_bench::Bd2ValTimings,
    bnd2bd: &bidiag_bench::Bnd2BdTimings,
    peak: &FmaPeak,
    sg: &SimdGflops,
    backend_points: &[bidiag_bench::BackendPoint],
    batch: &[bidiag_bench::BatchThroughputPoint],
    tracing_overhead_pct: f64,
) {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let history: &[(&str, f64, Option<f64>, Option<f64>)] = &[
        (
            "PR 2: work-stealing runtime (pre-blocked kernels)",
            173.7,
            None,
            None,
        ),
        ("PR 3: compact-WY blocked tile kernels", 94.2, None, None),
        (
            "PR 4: packed GEMM + structure-aware WY + fused TT",
            72.8,
            Some(227.2),
            None,
        ),
        (
            "PR 5: bidiag-svd subsystem (dqds + spectrum slicing)",
            69.6,
            Some(6.1),
            Some(101.3),
        ),
        (
            "PR 6: pipelined cache-blocked BND2BD bulge chasing",
            76.5,
            Some(8.3),
            Some(25.5),
        ),
        (
            "PR 7: SIMD kernel layer (AVX2+FMA runtime dispatch)",
            59.9,
            Some(6.3),
            Some(29.6),
        ),
        (
            "PR 8: persistent batched SVD runtime (SvdSession + crossover)",
            67.6,
            Some(6.6),
            Some(31.5),
        ),
        (
            "PR 9: hardened service plane (typed errors + bounded admission)",
            63.5,
            Some(6.8),
            Some(42.8),
        ),
        (
            "PR 10: observability plane (span rings + Perfetto export)",
            ge2bnd_ms,
            Some(stages.bd2val * 1.0e3),
            Some(stages.bnd2bd * 1.0e3),
        ),
    ];
    let mut hist = String::new();
    for (i, (label, ms, bd, b2b)) in history.iter().enumerate() {
        let bd_field = bd.map_or(String::new(), |v| format!(", \"bd2val_ms\": {v:.1}"));
        let b2b_field = b2b.map_or(String::new(), |v| format!(", \"bnd2bd_ms\": {v:.1}"));
        // The live (last) entry also records the flagship-kernel GFlop/s
        // per backend, so the vectorization trajectory accumulates in the
        // history alongside the stage times.
        let gf_field = if i + 1 == history.len() {
            let field = |pts: &[(&'static str, f64)]| {
                pts.iter()
                    .map(|(be, gf)| format!("\"{be}\": {gf:.1}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            format!(
                ", \"gemm_gflops\": {{{}}}, \"unmqr_gflops\": {{{}}}",
                field(&sg.gemm),
                field(&sg.wy_unmqr)
            )
        } else {
            String::new()
        };
        // The live entry also records the batched-session throughput at
        // n = 32 next to its per-call baseline, so the batch trajectory
        // accumulates in the history like the stage times do.
        let batch_field = if i + 1 == history.len() {
            batch.iter().find(|p| p.n == 32).map_or(String::new(), |p| {
                format!(
                    ", \"batch32_session_ps\": {:.0}, \"batch32_per_call_ps\": {:.0}",
                    p.session_problems_per_sec(),
                    p.per_call_problems_per_sec()
                )
            })
        } else {
            String::new()
        };
        // The live entry records the observability plane's measured cost on
        // the threaded reference run (the PR 10 <= 2% acceptance quantity).
        let trace_field = if i + 1 == history.len() {
            format!(", \"tracing_overhead_pct\": {tracing_overhead_pct:.2}")
        } else {
            String::new()
        };
        hist.push_str(&format!(
            "    {{\"label\": \"{label}\", \"ge2bnd_ms\": {ms:.1}{b2b_field}{bd_field}{gf_field}{batch_field}{trace_field}}}{}\n",
            if i + 1 < history.len() { "," } else { "" }
        ));
    }

    // GFlop/s-vs-peak block: flagship kernels under each forced backend
    // plus the end-to-end backend split (see BENCHMARKING.md for the peak
    // model and why the 1-port figure can be exceeded).
    let kernel_rows = |rows: &[(&'static str, f64)]| -> String {
        rows.iter()
            .map(|(name, gflops)| {
                let lanes = if *name == "avx2" { 4 } else { 1 };
                format!(
                    "      {{\"backend\": \"{name}\", \"gflops\": {gflops:.2}, \"peak_gflops\": {:.1}}}",
                    peak.machine_peak(lanes)
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let backend_rows = backend_points
        .iter()
        .map(|p| {
            format!(
                "      {{\"backend\": \"{}\", \"ge2bnd_ms\": {:.1}, \"speedup_vs_scalar\": {:.2}}}",
                p.backend,
                p.seconds * 1.0e3,
                backend_points[0].seconds / p.seconds
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let simd_block = format!(
        r#"  "simd": {{
    "default_backend": "{default}",
    "freq_ghz": {freq:.2},
    "machine_fma_peak_gflops": {{"scalar": {ps:.1}, "avx2": {pv:.1}}},
    "gemm_nn_256": [
{gemm}
    ],
    "unmqr_nb64": [
{wy}
    ],
    "ge2bnd_backends": [
{be}
    ]
  }},"#,
        default = simd::backend().name(),
        freq = peak.freq_ghz,
        ps = peak.machine_peak(1),
        pv = peak.machine_peak(4),
        gemm = kernel_rows(&sg.gemm),
        wy = kernel_rows(&sg.wy_unmqr),
        be = backend_rows,
    );
    let batch_rows = batch
        .iter()
        .map(|p| {
            format!(
                "      {{\"n\": {}, \"batch\": {}, \"session_problems_per_sec\": {:.0}, \"per_call_problems_per_sec\": {:.0}, \"speedup\": {:.2}}}",
                p.n,
                p.batch,
                p.session_problems_per_sec(),
                p.per_call_problems_per_sec(),
                p.speedup()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let batch_block = format!(
        r#"  "batch_throughput": {{
    "threads": {threads},
    "session": "persistent SvdSession, nb=64, direct crossover at n<=64, bounded blocking admission (max_in_flight=256, input validation on)",
    "per_call": "ge2val per problem, nb=64, crossover disabled (fresh executor+scratch per call)",
    "points": [
{batch_rows}
    ]
  }},"#,
        threads = batch.first().map_or(cores, |p| p.threads),
    );
    let out = format!(
        r#"{{
  "generated_by": "cargo bench -p bidiag-bench --bench kernels",
  "machine": {{
    "os": "{os}",
    "arch": "{arch}",
    "cores": {cores},
    "cpu": "{cpu}"
  }},
  "reference_case": {{
    "m": 768, "n": 512, "nb": 64, "threads": 1,
    "tree": "GREEDY", "algorithm": "BIDIAG", "timing": "best of 3"
  }},
  "ge2bnd_ms": {ge2bnd_ms:.1},
  "ge2val": {{
    "total_ms": {total:.1},
    "ge2bnd_ms": {s1:.1},
    "bnd2bd_ms": {s2:.1},
    "bd2val_ms": {s3:.1},
    "bd2val_solver": "dqds"
  }},
  "bd2val_solvers": {{
    "n": {bn},
    "bisection_ms": {bb:.2},
    "sliced_ms": {bs:.2},
    "dqds_ms": {bq:.2},
    "dqds_speedup_vs_bisection": {bx:.2}
  }},
  "bnd2bd_backends": {{
    "n": {cn},
    "bw": {cbw},
    "single_bulge_ms": {cs:.2},
    "pipelined_ms": {cp:.2},
    "pipelined_speedup_vs_single_bulge": {cx:.2}
  }},
{batch_block}
{simd_block}
  "history": [
{hist}  ]
}}
"#,
        os = std::env::consts::OS,
        arch = std::env::consts::ARCH,
        cpu = cpu_model(),
        total = stages.total() * 1.0e3,
        s1 = stages.ge2bnd * 1.0e3,
        s2 = stages.bnd2bd * 1.0e3,
        s3 = stages.bd2val * 1.0e3,
        bn = bd2val.n,
        bb = bd2val.bisection * 1.0e3,
        bs = bd2val.sliced * 1.0e3,
        bq = bd2val.dqds * 1.0e3,
        bx = bd2val.bisection / bd2val.dqds,
        cn = bnd2bd.n,
        cbw = bnd2bd.bw,
        cs = bnd2bd.single_bulge * 1.0e3,
        cp = bnd2bd.pipelined * 1.0e3,
        cx = bnd2bd.speedup(),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH.json");
    std::fs::write(&path, out).expect("writing BENCH.json");
    println!("# wrote {}", path.display());
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let sweep_only = std::env::args().any(|a| a == "--gemm-sweep");
    let bd2val_only = std::env::args().any(|a| a == "--bd2val");
    let bnd2bd_only = std::env::args().any(|a| a == "--bnd2bd");
    let simd_only = std::env::args().any(|a| a == "--simd");
    let batch_only = std::env::args().any(|a| a == "--batch");
    let (nbs, rounds, min_round_secs): (&[usize], usize, f64) = if test_mode {
        // CI gate: one realistic tile size, short but real rounds — enough
        // to expose a kernel running slower than its reference.
        (&[64], 2, 0.02)
    } else {
        (&[32, 64, 128], 3, 0.05)
    };
    let mut h = Harness {
        rounds,
        min_round_secs,
        records: Vec::new(),
    };

    if sweep_only {
        gemm_sweep(&mut h);
        return;
    }
    if bd2val_only {
        bd2val_comparison(&mut h, 3);
        return;
    }
    if bnd2bd_only {
        bnd2bd_comparison(&mut h, 3);
        return;
    }
    if simd_only {
        let peak = FmaPeak::detect();
        simd_backend_comparison(&mut h, &peak);
        ge2bnd_backend_gate(3, false);
        return;
    }
    if batch_only {
        batch_throughput_gate(false);
        return;
    }

    for &nb in nbs {
        bench_tile_size(&mut h, nb);
    }

    // Per-kernel comparison table.
    println!("# tile kernels: blocked compact-WY vs unblocked reference (best of {rounds})");
    println!("kernel\tnb\tunblocked_ns\tblocked_ns\tspeedup\tblocked_GFlop/s");
    for &nb in nbs {
        for name in KERNEL_NAMES {
            if let Some((u_ns, b_ns, speedup)) = h.pair(name, nb) {
                let gf = h
                    .records
                    .iter()
                    .find(|r| r.name == name && r.nb == nb && r.variant == "blocked")
                    .map(|r| r.gflops)
                    .unwrap_or(0.0);
                println!("{name}\t{nb}\t{u_ns:.0}\t{b_ns:.0}\t{speedup:.2}x\t{gf:.2}");
            }
        }
    }

    // The acceptance gate (asserted in --test mode so CI fails on any
    // kernel regressing below its unblocked reference).  A first-pass miss
    // on a noisy runner gets one slower, more careful re-measurement before
    // the gate turns red — a real regression (like PR 3's 0.8x TTQRT)
    // fails both passes, a scheduler hiccup does not.
    let failures = check_kernel_acceptance(&h, 64);
    if !failures.is_empty() && test_mode {
        println!(
            "# gate miss on first pass ({}); re-measuring",
            failures.join(", ")
        );
        let mut h2 = Harness {
            rounds: 3,
            min_round_secs: 0.05,
            records: Vec::new(),
        };
        bench_tile_size(&mut h2, 64);
        let failures2 = check_kernel_acceptance(&h2, 64);
        assert!(
            failures2.is_empty(),
            "blocked kernels slower than their unblocked references @ nb=64 in both passes: {}",
            failures2.join(", ")
        );
    } else if !failures.is_empty() {
        println!(
            "# WARNING: blocked kernels slower than their unblocked references @ nb=64: {}",
            failures.join(", ")
        );
    }

    // BD2VAL acceptance: the dqds fast path must beat the per-value
    // bisection oracle by >= 3x on the reference bidiagonal (n = 512).
    // Asserted in --test mode so CI catches a fast-path regression; the
    // margin is wide (>= 10x on the reference host) so scheduler noise
    // cannot flip the gate.
    let bd2val = bd2val_comparison(&mut h, if test_mode { 2 } else { 3 });
    let dqds_speedup = bd2val.bisection / bd2val.dqds;
    let verdict = if dqds_speedup >= 3.0 { "PASS" } else { "FAIL" };
    println!(
        "# check: bd2val dqds >= 3x per-value bisection @ n={}: {dqds_speedup:.2}x [{verdict}]",
        bd2val.n
    );
    if test_mode {
        assert!(
            dqds_speedup >= 3.0,
            "bd2val acceptance: dqds only {dqds_speedup:.2}x over per-value bisection at n={}",
            bd2val.n
        );
    }

    // BND2BD acceptance: the pipelined cache-blocked wavefront reduction
    // must beat the retained single-bulge chase by >= 2x on the reference
    // band (n = 512, bw = 64).  Asserted in --test mode so CI catches a
    // pipeline regression; the margin is wide on the reference host so
    // scheduler noise cannot flip the gate.
    let bnd2bd = bnd2bd_comparison(&mut h, if test_mode { 2 } else { 3 });
    let b2b_speedup = bnd2bd.speedup();
    let verdict = if b2b_speedup >= 2.0 { "PASS" } else { "FAIL" };
    println!(
        "# check: bnd2bd pipelined >= 2x single-bulge @ n={} bw={}: {b2b_speedup:.2}x [{verdict}]",
        bnd2bd.n, bnd2bd.bw
    );
    if test_mode {
        assert!(
            b2b_speedup >= 2.0,
            "bnd2bd acceptance: pipelined only {b2b_speedup:.2}x over single-bulge at n={} bw={}",
            bnd2bd.n,
            bnd2bd.bw
        );
    }

    // SIMD layer: flagship-kernel GFlop/s vs peak under both forced
    // backends, plus the end-to-end GE2BND backend split with the PR 7
    // acceptance gate (avx2 >= 1.3x scalar, asserted in --test mode when
    // the host has AVX2).
    let peak = FmaPeak::detect();
    let sg = simd_backend_comparison(&mut h, &peak);
    let backend_points = ge2bnd_backend_gate(if test_mode { 2 } else { 3 }, test_mode);

    // Batched-runtime acceptance: one persistent SvdSession must push a
    // stream of n = 32 problems at least 1.5x faster than calling ge2val
    // per problem (asserted in --test mode inside the gate).
    let batch_points = batch_throughput_gate(test_mode);

    // Observability acceptance: the span/metrics plane must cost <= 2% on
    // the threaded reference GE2BND even when force-enabled (asserted in
    // --test mode inside the gate; the disabled cost is strictly smaller).
    let tracing_overhead_pct = tracing_overhead_gate(5, test_mode);

    if !test_mode {
        gemm_sweep(&mut h);

        // Legacy PR 3 acceptance: UNMQR and TSMQR at least 2x unblocked at
        // nb = 64 (reported, not asserted — hosts vary).
        for name in ["unmqr", "tsmqr"] {
            if let Some((_, _, speedup)) = h.pair(name, 64) {
                let verdict = if speedup >= 2.0 { "PASS" } else { "FAIL" };
                println!(
                    "# check: blocked {name} @ nb=64 >= 2x unblocked: {speedup:.2}x [{verdict}]"
                );
            }
        }

        // End-to-end GE2BND on the ROADMAP reference case (768x512, nb=64,
        // GREEDY, BIDIAG, 1 thread; best of 3) against the pre-blocked
        // baseline of 173.7 ms recorded in ROADMAP.md.
        let points = measure_ge2bnd_scaling(768, 512, 64, &[1], 3);
        let secs = points[0].seconds;
        let baseline_ms = 173.7;
        let ratio = baseline_ms / (secs * 1.0e3);
        let verdict = if ratio >= 1.3 { "PASS" } else { "FAIL" };
        println!(
            "# ge2bnd 768x512 nb=64 @1 thread: {:.1} ms (baseline {baseline_ms} ms, {ratio:.2}x) [{verdict}]",
            secs * 1.0e3
        );
        h.records.push(Record {
            name: "ge2bnd_768x512",
            nb: 64,
            variant: "blocked",
            ns_per_iter: secs * 1.0e9,
            gflops: bidiag_flops(768, 512) / secs / 1.0e9,
        });

        // GE2VAL stage split (the data BENCH.json tracks across PRs).
        let stages = measure_ge2val_stages(768, 512, 64, 3);
        println!(
            "# ge2val 768x512 nb=64 @1 thread: total {:.1} ms = ge2bnd {:.1} + bnd2bd {:.1} + bd2val {:.1}",
            stages.total() * 1.0e3,
            stages.ge2bnd * 1.0e3,
            stages.bnd2bd * 1.0e3,
            stages.bd2val * 1.0e3
        );
        write_top_level_bench(
            secs * 1.0e3,
            &stages,
            &bd2val,
            &bnd2bd,
            &peak,
            &sg,
            &backend_points,
            &batch_points,
            tracing_overhead_pct,
        );
    }

    let path = if test_mode {
        std::env::temp_dir().join("BENCH_kernels.json")
    } else {
        std::path::PathBuf::from("BENCH_kernels.json")
    };
    write_json(&path, &h.records);
}
