//! Criterion microbenchmarks of the tile kernels (Table I).

use bidiag_kernels::qr;
use bidiag_matrix::gen::random_gaussian;
use bidiag_matrix::Matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn upper(a: &Matrix) -> Matrix {
    Matrix::from_fn(
        a.rows(),
        a.cols(),
        |i, j| if j >= i { a.get(i, j) } else { 0.0 },
    )
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_kernels");
    for &nb in &[64usize, 128] {
        let a = random_gaussian(nb, nb, 1);
        let b = random_gaussian(nb, nb, 2);
        group.bench_with_input(BenchmarkId::new("geqrt", nb), &nb, |bench, _| {
            bench.iter(|| {
                let mut w = a.clone();
                let _ = qr::geqrt(&mut w);
            })
        });
        let mut v = a.clone();
        let taus = qr::geqrt(&mut v);
        group.bench_with_input(BenchmarkId::new("unmqr", nb), &nb, |bench, _| {
            bench.iter(|| {
                let mut w = b.clone();
                qr::unmqr(&v, &taus, &mut w, qr::Trans::Transpose);
            })
        });
        let r1 = upper(&v);
        group.bench_with_input(BenchmarkId::new("tsqrt", nb), &nb, |bench, _| {
            bench.iter(|| {
                let mut r = r1.clone();
                let mut w = b.clone();
                let _ = qr::tsqrt(&mut r, &mut w);
            })
        });
        let mut rts = r1.clone();
        let mut vts = b.clone();
        let t_ts = qr::tsqrt(&mut rts, &mut vts);
        group.bench_with_input(BenchmarkId::new("tsmqr", nb), &nb, |bench, _| {
            bench.iter(|| {
                let mut w1 = b.clone();
                let mut w2 = a.clone();
                qr::tsmqr(&mut w1, &mut w2, &vts, &t_ts, qr::Trans::Transpose);
            })
        });
        let r2 = upper(&random_gaussian(nb, nb, 3));
        group.bench_with_input(BenchmarkId::new("ttqrt", nb), &nb, |bench, _| {
            bench.iter(|| {
                let mut x = r1.clone();
                let mut y = r2.clone();
                let _ = qr::ttqrt(&mut x, &mut y);
            })
        });
        let mut rtt = r1.clone();
        let mut vtt = r2.clone();
        let t_tt = qr::ttqrt(&mut rtt, &mut vtt);
        group.bench_with_input(BenchmarkId::new("ttmqr", nb), &nb, |bench, _| {
            bench.iter(|| {
                let mut w1 = b.clone();
                let mut w2 = a.clone();
                qr::ttmqr(&mut w1, &mut w2, &vtt, &t_tt, qr::Trans::Transpose);
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_kernels
}
criterion_main!(benches);
