//! Tile-kernel microbenchmarks: blocked compact-WY vs unblocked reference.
//!
//! For every Table I kernel (QR family and LQ duals) and
//! `nb in {32, 64, 128}`, times both implementations (best of 3 rounds,
//! each round amortized over enough iterations), prints a comparison table
//! with the blocked/unblocked speedup and GFlop/s (Table I flop model),
//! and finishes with a best-of-3 end-to-end GE2BND run on the ROADMAP
//! reference case (768x512, nb = 64, GREEDY, BIDIAG, 1 thread).
//!
//! Results are also emitted machine-readably to `BENCH_kernels.json`
//! (fields: `name`, `nb`, `variant`, `ns_per_iter`, `gflops`) — the bench
//! trajectory file referenced by BENCHMARKING.md.
//!
//! `--test` runs a smoke pass (tiny tile, one iteration, JSON to a temp
//! path) so CI can verify the harness and the JSON emission without paying
//! for a measurement.

use bidiag_bench::measure_ge2bnd_scaling;
use bidiag_core::flops::bidiag_flops;
use bidiag_kernels::cost::KernelKind;
use bidiag_kernels::{lq, qr, Trans, Workspace};
use bidiag_matrix::checks::{lower_triangle_of, upper_triangle_of};
use bidiag_matrix::gen::random_gaussian;
use std::time::Instant;

/// One measured data point.
struct Record {
    name: &'static str,
    nb: usize,
    variant: &'static str,
    ns_per_iter: f64,
    gflops: f64,
}

/// Best-of-`rounds` timing of `f`, each round running `iters` iterations.
/// Returns seconds per iteration.
fn best_of(rounds: usize, iters: usize, f: &mut dyn FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

struct Harness {
    rounds: usize,
    min_round_secs: f64,
    records: Vec<Record>,
}

impl Harness {
    /// Time one (kernel, nb, variant) cell: calibrate the iteration count to
    /// `min_round_secs`, run best-of-`rounds`, record ns/iter and GFlop/s.
    fn bench(
        &mut self,
        name: &'static str,
        kind: KernelKind,
        nb: usize,
        variant: &'static str,
        mut f: impl FnMut(),
    ) {
        let once = best_of(1, 1, &mut f);
        let iters = ((self.min_round_secs / once.max(1e-9)).ceil() as usize).clamp(1, 10_000);
        let secs = best_of(self.rounds, iters, &mut f);
        self.records.push(Record {
            name,
            nb,
            variant,
            ns_per_iter: secs * 1.0e9,
            gflops: kind.flops(nb) / secs / 1.0e9,
        });
    }

    fn pair(&self, name: &str, nb: usize) -> Option<(f64, f64, f64)> {
        let find = |variant: &str| {
            self.records
                .iter()
                .find(|r| r.name == name && r.nb == nb && r.variant == variant)
        };
        let b = find("blocked")?;
        let u = find("unblocked")?;
        Some((u.ns_per_iter, b.ns_per_iter, u.ns_per_iter / b.ns_per_iter))
    }
}

/// Run every kernel pair at one tile size.
fn bench_tile_size(h: &mut Harness, nb: usize) {
    let mut ws = Workspace::new();
    let a = random_gaussian(nb, nb, 1);
    let b = random_gaussian(nb, nb, 2);
    let c = random_gaussian(nb, nb, 3);

    // Shared factored operands.
    let mut v = a.clone();
    let tf = qr::geqrt(&mut v, &mut Workspace::new());
    let taus = tf.taus().to_vec();
    let r1 = upper_triangle_of(&v);
    let mut rts = r1.clone();
    let mut vts = b.clone();
    let tf_ts = qr::tsqrt(&mut rts, &mut vts, &mut Workspace::new());
    let r2 = upper_triangle_of(&random_gaussian(nb, nb, 4));
    let mut rtt = r1.clone();
    let mut vtt = r2.clone();
    let tf_tt = qr::ttqrt(&mut rtt, &mut vtt, &mut Workspace::new());
    let mut vl = a.clone();
    let tf_l = lq::gelqt(&mut vl, &mut Workspace::new());
    let l1 = lower_triangle_of(&vl);
    let mut lts = l1.clone();
    let mut vlts = b.clone();
    let tf_lts = lq::tslqt(&mut lts, &mut vlts, &mut Workspace::new());
    let l2 = lower_triangle_of(&random_gaussian(nb, nb, 5));
    let mut ltt = l1.clone();
    let mut vltt = l2.clone();
    let tf_ltt = lq::ttlqt(&mut ltt, &mut vltt, &mut Workspace::new());

    // Reused output buffers: operand refresh is a contiguous copy, so the
    // timed loops allocate nothing.
    let mut w1 = a.clone();
    let mut w2 = b.clone();

    h.bench("geqrt", KernelKind::Geqrt, nb, "blocked", || {
        w1.copy_from(&a);
        let _ = qr::geqrt(&mut w1, &mut ws);
    });
    h.bench("geqrt", KernelKind::Geqrt, nb, "unblocked", || {
        w1.copy_from(&a);
        let _ = qr::geqrt_unblocked(&mut w1);
    });
    h.bench("unmqr", KernelKind::Unmqr, nb, "blocked", || {
        w1.copy_from(&b);
        qr::unmqr(&v, &tf, &mut w1, Trans::Transpose, &mut ws);
    });
    h.bench("unmqr", KernelKind::Unmqr, nb, "unblocked", || {
        w1.copy_from(&b);
        qr::unmqr_unblocked(&v, &taus, &mut w1, Trans::Transpose);
    });
    h.bench("tsqrt", KernelKind::Tsqrt, nb, "blocked", || {
        w1.copy_from(&r1);
        w2.copy_from(&b);
        let _ = qr::tsqrt(&mut w1, &mut w2, &mut ws);
    });
    h.bench("tsqrt", KernelKind::Tsqrt, nb, "unblocked", || {
        w1.copy_from(&r1);
        w2.copy_from(&b);
        let _ = qr::tsqrt_unblocked(&mut w1, &mut w2);
    });
    h.bench("tsmqr", KernelKind::Tsmqr, nb, "blocked", || {
        w1.copy_from(&b);
        w2.copy_from(&c);
        qr::tsmqr(&mut w1, &mut w2, &vts, &tf_ts, Trans::Transpose, &mut ws);
    });
    h.bench("tsmqr", KernelKind::Tsmqr, nb, "unblocked", || {
        w1.copy_from(&b);
        w2.copy_from(&c);
        qr::tsmqr_unblocked(&mut w1, &mut w2, &vts, tf_ts.taus(), Trans::Transpose);
    });
    h.bench("ttqrt", KernelKind::Ttqrt, nb, "blocked", || {
        w1.copy_from(&r1);
        w2.copy_from(&r2);
        let _ = qr::ttqrt(&mut w1, &mut w2, &mut ws);
    });
    h.bench("ttqrt", KernelKind::Ttqrt, nb, "unblocked", || {
        w1.copy_from(&r1);
        w2.copy_from(&r2);
        let _ = qr::ttqrt_unblocked(&mut w1, &mut w2);
    });
    h.bench("ttmqr", KernelKind::Ttmqr, nb, "blocked", || {
        w1.copy_from(&b);
        w2.copy_from(&c);
        qr::ttmqr(&mut w1, &mut w2, &vtt, &tf_tt, Trans::Transpose, &mut ws);
    });
    h.bench("ttmqr", KernelKind::Ttmqr, nb, "unblocked", || {
        w1.copy_from(&b);
        w2.copy_from(&c);
        qr::ttmqr_unblocked(&mut w1, &mut w2, &vtt, tf_tt.taus(), Trans::Transpose);
    });

    // LQ duals.
    h.bench("gelqt", KernelKind::Gelqt, nb, "blocked", || {
        w1.copy_from(&a);
        let _ = lq::gelqt(&mut w1, &mut ws);
    });
    h.bench("gelqt", KernelKind::Gelqt, nb, "unblocked", || {
        w1.copy_from(&a);
        let _ = lq::gelqt_unblocked(&mut w1);
    });
    h.bench("unmlq", KernelKind::Unmlq, nb, "blocked", || {
        w1.copy_from(&b);
        lq::unmlq(&vl, &tf_l, &mut w1, Trans::Transpose, &mut ws);
    });
    h.bench("unmlq", KernelKind::Unmlq, nb, "unblocked", || {
        w1.copy_from(&b);
        lq::unmlq_unblocked(&vl, tf_l.taus(), &mut w1, Trans::Transpose);
    });
    h.bench("tslqt", KernelKind::Tslqt, nb, "blocked", || {
        w1.copy_from(&l1);
        w2.copy_from(&b);
        let _ = lq::tslqt(&mut w1, &mut w2, &mut ws);
    });
    h.bench("tslqt", KernelKind::Tslqt, nb, "unblocked", || {
        w1.copy_from(&l1);
        w2.copy_from(&b);
        let _ = lq::tslqt_unblocked(&mut w1, &mut w2);
    });
    h.bench("tsmlq", KernelKind::Tsmlq, nb, "blocked", || {
        w1.copy_from(&b);
        w2.copy_from(&c);
        lq::tsmlq(&mut w1, &mut w2, &vlts, &tf_lts, Trans::Transpose, &mut ws);
    });
    h.bench("tsmlq", KernelKind::Tsmlq, nb, "unblocked", || {
        w1.copy_from(&b);
        w2.copy_from(&c);
        lq::tsmlq_unblocked(&mut w1, &mut w2, &vlts, tf_lts.taus(), Trans::Transpose);
    });
    h.bench("ttlqt", KernelKind::Ttlqt, nb, "blocked", || {
        w1.copy_from(&l1);
        w2.copy_from(&l2);
        let _ = lq::ttlqt(&mut w1, &mut w2, &mut ws);
    });
    h.bench("ttlqt", KernelKind::Ttlqt, nb, "unblocked", || {
        w1.copy_from(&l1);
        w2.copy_from(&l2);
        let _ = lq::ttlqt_unblocked(&mut w1, &mut w2);
    });
    h.bench("ttmlq", KernelKind::Ttmlq, nb, "blocked", || {
        w1.copy_from(&b);
        w2.copy_from(&c);
        lq::ttmlq(&mut w1, &mut w2, &vltt, &tf_ltt, Trans::Transpose, &mut ws);
    });
    h.bench("ttmlq", KernelKind::Ttmlq, nb, "unblocked", || {
        w1.copy_from(&b);
        w2.copy_from(&c);
        lq::ttmlq_unblocked(&mut w1, &mut w2, &vltt, tf_ltt.taus(), Trans::Transpose);
    });
}

fn write_json(path: &std::path::Path, records: &[Record]) {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"nb\": {}, \"variant\": \"{}\", \"ns_per_iter\": {:.1}, \"gflops\": {:.3}}}{}\n",
            r.name,
            r.nb,
            r.variant,
            r.ns_per_iter,
            r.gflops,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    std::fs::write(path, out).expect("writing bench JSON");
    println!("# wrote {}", path.display());
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (nbs, rounds, min_round_secs): (&[usize], usize, f64) = if test_mode {
        (&[8], 1, 0.0)
    } else {
        (&[32, 64, 128], 3, 0.05)
    };
    let mut h = Harness {
        rounds,
        min_round_secs,
        records: Vec::new(),
    };
    for &nb in nbs {
        bench_tile_size(&mut h, nb);
    }

    // Per-kernel comparison table.
    println!("# tile kernels: blocked compact-WY vs unblocked reference (best of {rounds})");
    println!("kernel\tnb\tunblocked_ns\tblocked_ns\tspeedup\tblocked_GFlop/s");
    let names = [
        "geqrt", "unmqr", "tsqrt", "tsmqr", "ttqrt", "ttmqr", "gelqt", "unmlq", "tslqt", "tsmlq",
        "ttlqt", "ttmlq",
    ];
    for &nb in nbs {
        for name in names {
            if let Some((u_ns, b_ns, speedup)) = h.pair(name, nb) {
                let gf = h
                    .records
                    .iter()
                    .find(|r| r.name == name && r.nb == nb && r.variant == "blocked")
                    .map(|r| r.gflops)
                    .unwrap_or(0.0);
                println!("{name}\t{nb}\t{u_ns:.0}\t{b_ns:.0}\t{speedup:.2}x\t{gf:.2}");
            }
        }
    }

    if !test_mode {
        // Acceptance check of the PR that introduced the blocked kernels:
        // UNMQR and TSMQR must be at least 2x their unblocked references at
        // nb = 64 (reported, not asserted — hosts vary).
        for name in ["unmqr", "tsmqr"] {
            if let Some((_, _, speedup)) = h.pair(name, 64) {
                let verdict = if speedup >= 2.0 { "PASS" } else { "FAIL" };
                println!(
                    "# check: blocked {name} @ nb=64 >= 2x unblocked: {speedup:.2}x [{verdict}]"
                );
            }
        }

        // End-to-end GE2BND on the ROADMAP reference case (768x512, nb=64,
        // GREEDY, BIDIAG, 1 thread; best of 3) against the pre-blocked
        // baseline of 173.7 ms recorded in ROADMAP.md.
        let points = measure_ge2bnd_scaling(768, 512, 64, &[1], 3);
        let secs = points[0].seconds;
        let baseline_ms = 173.7;
        let ratio = baseline_ms / (secs * 1.0e3);
        let verdict = if ratio >= 1.3 { "PASS" } else { "FAIL" };
        println!(
            "# ge2bnd 768x512 nb=64 @1 thread: {:.1} ms (baseline {baseline_ms} ms, {ratio:.2}x) [{verdict}]",
            secs * 1.0e3
        );
        h.records.push(Record {
            name: "ge2bnd_768x512",
            nb: 64,
            variant: "blocked",
            ns_per_iter: secs * 1.0e9,
            gflops: bidiag_flops(768, 512) / secs / 1.0e9,
        });
    }

    let path = if test_mode {
        std::env::temp_dir().join("BENCH_kernels.json")
    } else {
        std::path::PathBuf::from("BENCH_kernels.json")
    };
    write_json(&path, &h.records);
}
