//! Criterion benchmarks of the full GE2BND reduction: sequential vs the
//! multi-threaded task runtime, BIDIAG vs R-BIDIAG, and the four reduction
//! trees, on matrices small enough for repeated timing.  `bench_parallel`
//! additionally prints a measured speedup-vs-threads table for the
//! ROADMAP's 768x512 nb=64 reference case.

use bidiag_bench::{measure_ge2bnd_scaling, print_scaling_table};
use bidiag_core::pipeline::{ge2bnd, AlgorithmChoice, Ge2Options};
use bidiag_matrix::gen::{latms, SpectrumKind};
use bidiag_trees::NamedTree;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_trees(c: &mut Criterion) {
    let (a, _) = latms(512, 384, &SpectrumKind::Geometric { cond: 1.0e4 }, 42);
    let mut group = c.benchmark_group("ge2bnd_trees_512x384_nb64");
    for tree in [
        NamedTree::FlatTs,
        NamedTree::FlatTt,
        NamedTree::Greedy,
        NamedTree::Auto {
            gamma: 2.0,
            ncores: 4,
        },
    ] {
        group.bench_with_input(BenchmarkId::new("seq", tree.name()), &tree, |bench, &t| {
            bench.iter(|| {
                ge2bnd(
                    &a,
                    &Ge2Options::new(64)
                        .with_tree(t)
                        .with_algorithm(AlgorithmChoice::Bidiag),
                )
            })
        });
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let (a, _) = latms(768, 512, &SpectrumKind::Geometric { cond: 1.0e4 }, 7);
    let mut group = c.benchmark_group("ge2bnd_threads_768x512_nb64");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("greedy", threads),
            &threads,
            |bench, &t| {
                bench.iter(|| {
                    ge2bnd(
                        &a,
                        &Ge2Options::new(64)
                            .with_tree(NamedTree::Greedy)
                            .with_algorithm(AlgorithmChoice::Bidiag)
                            .with_threads(t),
                    )
                })
            },
        );
    }
    group.finish();

    // Companion speedup-vs-threads table (best of 3, relative to 1 thread).
    let points = measure_ge2bnd_scaling(768, 512, 64, &[1, 2, 4, 8], 3);
    print_scaling_table(
        "ge2bnd measured thread scaling, 768x512 nb=64 (Greedy, BiDiag)",
        &points,
    );
}

fn bench_rbidiag(c: &mut Criterion) {
    let (a, _) = latms(1536, 192, &SpectrumKind::Uniform, 9);
    let mut group = c.benchmark_group("ge2bnd_tall_skinny_1536x192_nb64");
    group.sample_size(10);
    for (label, alg) in [
        ("bidiag", AlgorithmChoice::Bidiag),
        ("rbidiag", AlgorithmChoice::RBidiag),
    ] {
        group.bench_with_input(BenchmarkId::new(label, 4), &alg, |bench, &alg| {
            bench.iter(|| {
                ge2bnd(
                    &a,
                    &Ge2Options::new(64)
                        .with_tree(NamedTree::Greedy)
                        .with_algorithm(alg)
                        .with_threads(4),
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_trees, bench_parallel, bench_rbidiag
}
criterion_main!(benches);
