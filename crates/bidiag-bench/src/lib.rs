//! # bidiag-bench
//!
//! Shared machinery for regenerating every table and figure of the paper:
//!
//! * a calibrated performance model mapping the task DAGs of `bidiag-core`
//!   onto a miriel-like machine (24-core Haswell nodes, 37 GFlop/s per core,
//!   40 Gb/s network) through the list-scheduling simulator of
//!   `bidiag-runtime`,
//! * GFlop/s helpers matching the paper's normalisation (the BIDIAG
//!   operation count is used for every algorithm),
//! * the harness binaries `table1_kernel_weights`, `critical_paths`,
//!   `crossover`, `fig1_snapshots`, `fig2_shared_memory`,
//!   `fig3_distributed_strong` and `fig4_weak_scaling` (see `src/bin/`).
//!
//! Absolute rates are model-based (this container is not a 600-core
//! InfiniBand cluster); the quantities that are expected to match the paper
//! are the *relative* behaviours: which tree wins on which shape, where
//! BIDIAG/R-BIDIAG cross over, and how the curves scale with nodes.

#![warn(missing_docs)]

use bidiag_baselines::{CompetitorClass, MachineSpec, PerfModel};
use bidiag_core::drivers::{ge2bnd_ops, Algorithm, GenConfig};
use bidiag_core::ops::TileOp;
use bidiag_kernels::band::bnd2bd_flops;
use bidiag_kernels::cost::KernelKind;
use bidiag_matrix::BlockCyclic;
use bidiag_runtime::{simulate, MachineModel, TaskGraph};
use bidiag_trees::NamedTree;

/// Kernel efficiency of the TS-family kernels relative to GEMM peak
/// (they are cast as calls to blocked Level-3 kernels).
pub const TS_KERNEL_EFFICIENCY: f64 = 0.85;
/// Kernel efficiency of the TT-family kernels: the paper stresses that they
/// "reach only a fraction of the performance of TS kernels".
pub const TT_KERNEL_EFFICIENCY: f64 = 0.45;
/// Sequential Level-2/memory-bound rate (GFlop/s) used for the BND2BD stage.
pub const BND2BD_GFLOPS: f64 = 12.0;

/// Per-core GEMM rate of the reference machine (GFlop/s).
pub const CORE_GFLOPS: f64 = 37.0;
/// Cores per node of the reference machine.
pub const CORES_PER_NODE: usize = 24;
/// Network latency (s) of the reference machine.
pub const NET_LATENCY: f64 = 2.0e-6;
/// Network bandwidth (GB/s) of the reference machine (40 Gb/s InfiniBand).
pub const NET_GBYTES: f64 = 5.0;

/// A point of a figure: the problem shape and the measured/modelled rate.
#[derive(Clone, Copy, Debug)]
pub struct RatePoint {
    /// Number of matrix rows.
    pub m: usize,
    /// Number of matrix columns.
    pub n: usize,
    /// Number of nodes used.
    pub nodes: usize,
    /// GFlop/s normalised by the BIDIAG operation count.
    pub gflops: f64,
}

/// Kernel efficiency of one tile operation (fraction of GEMM peak).
pub fn kernel_efficiency(kernel: KernelKind) -> f64 {
    match kernel {
        KernelKind::Ttqrt | KernelKind::Ttmqr | KernelKind::Ttlqt | KernelKind::Ttmlq => {
            TT_KERNEL_EFFICIENCY
        }
        KernelKind::Laset => 1.0,
        _ => TS_KERNEL_EFFICIENCY,
    }
}

/// Build the simulation task graph of an operation list: the weight of every
/// task is its Table I weight divided by its kernel efficiency, so that one
/// weight unit corresponds to `nb^3/3` flops at GEMM peak.
pub fn build_sim_graph(ops: &[TileOp], q: usize, dist: &BlockCyclic) -> TaskGraph {
    let mut g = TaskGraph::new();
    for op in ops {
        let (oi, oj) = op.output_tile();
        let owner = dist.owner(oi, oj);
        let weight = op.weight() / kernel_efficiency(op.kernel());
        g.add_task(weight, owner, op.kernel() as u32, &op.accesses(q));
    }
    g
}

/// The machine model of a cluster of miriel-like nodes for tile size `nb`.
pub fn paper_machine(nodes: usize, nb: usize) -> MachineModel {
    MachineModel::calibrated(
        nodes,
        CORES_PER_NODE,
        CORE_GFLOPS,
        nb,
        NET_GBYTES,
        NET_LATENCY,
    )
}

/// Simulated execution time (seconds) of GE2BND for an `m x n` matrix on
/// `nodes` nodes with the given tree and algorithm.
pub fn ge2bnd_sim_seconds(
    m: usize,
    n: usize,
    nb: usize,
    tree: NamedTree,
    algorithm: Algorithm,
    nodes: usize,
    grid: BlockCyclic,
) -> f64 {
    let p = m.div_ceil(nb);
    let q = n.div_ceil(nb);
    let cfg = if nodes <= 1 {
        GenConfig::shared(tree)
    } else {
        GenConfig::distributed(tree, grid)
    };
    let ops = ge2bnd_ops(p, q, algorithm, &cfg);
    let graph = build_sim_graph(&ops, q, &grid);
    let machine = paper_machine(nodes, nb);
    simulate(&graph, &machine).makespan
}

/// Simulated GE2BND rate (GFlop/s, BIDIAG normalisation).
pub fn ge2bnd_sim_gflops(
    m: usize,
    n: usize,
    nb: usize,
    tree: NamedTree,
    algorithm: Algorithm,
    nodes: usize,
    grid: BlockCyclic,
) -> f64 {
    let t = ge2bnd_sim_seconds(m, n, nb, tree, algorithm, nodes, grid);
    bidiag_core::flops::gflops(bidiag_core::flops::reporting_flops(m, n), t)
}

/// Simulated GE2VAL rate: GE2BND (parallel, simulated) followed by the
/// shared-memory BND2BD and BD2VAL stages executed on a single node, exactly
/// like the paper's implementation (the band is gathered on one node and the
/// remaining nodes stay idle).
pub fn ge2val_sim_gflops(
    m: usize,
    n: usize,
    nb: usize,
    tree: NamedTree,
    algorithm: Algorithm,
    nodes: usize,
    grid: BlockCyclic,
) -> f64 {
    let t1 = ge2bnd_sim_seconds(m, n, nb, tree, algorithm, nodes, grid);
    let t2 = bnd2bd_flops(n.min(m), nb) / (BND2BD_GFLOPS * 1.0e9);
    // BD2VAL is O(n^2) on the bidiagonal: negligible but accounted for.
    let t3 = 30.0 * (n.min(m) as f64).powi(2) / (BND2BD_GFLOPS * 1.0e9);
    bidiag_core::flops::gflops(bidiag_core::flops::reporting_flops(m, n), t1 + t2 + t3)
}

/// The serial-bottleneck upper bound of the distributed GE2VAL rate
/// (the "Upper Bound (BND2VAL)" line of Figure 3): even with an infinitely
/// fast GE2BND, the serial BND2BD + BD2VAL stages cap the rate.
pub fn ge2val_upper_bound_gflops(m: usize, n: usize, nb: usize) -> f64 {
    let t2 = bnd2bd_flops(n.min(m), nb) / (BND2BD_GFLOPS * 1.0e9);
    let t3 = 30.0 * (n.min(m) as f64).powi(2) / (BND2BD_GFLOPS * 1.0e9);
    bidiag_core::flops::gflops(bidiag_core::flops::reporting_flops(m, n), t2 + t3)
}

/// Competitor GE2VAL rate from the analytic models of `bidiag-baselines`.
pub fn competitor_gflops(class: CompetitorClass, m: usize, n: usize, nodes: usize) -> f64 {
    PerfModel::new(class, MachineSpec::paper_cluster(nodes)).gflops(m, n)
}

/// Print a TSV table: a header followed by one row per entry of `rows`.
pub fn print_tsv(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("# {title}");
    println!("{}", header.join("\t"));
    for r in rows {
        println!("{}", r.join("\t"));
    }
    println!();
}

/// Write a Chrome trace to `$BIDIAG_TRACE` if that variable is set.
///
/// Every fig/table binary calls this on exit, so any harness run can be
/// replayed in Perfetto (`ui.perfetto.dev`) without recompiling.  A write
/// failure is reported on stderr but never fails the run.
pub fn maybe_write_trace() {
    match bidiag_obs::write_trace_if_requested() {
        Ok(Some(path)) => eprintln!("trace written to {path} (open in ui.perfetto.dev)"),
        Ok(None) => {}
        Err(e) => eprintln!("warning: failed to write BIDIAG_TRACE: {e}"),
    }
}

/// One measured point of a real (wall-clock) thread-scaling run.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Best-of-`samples` wall time in seconds.
    pub seconds: f64,
    /// Speedup relative to the 1-thread run of the same sweep.
    pub speedup: f64,
    /// Parallel efficiency: `speedup / threads`.
    pub efficiency: f64,
}

/// Measure the *real* (not simulated) wall-clock scaling of the threaded
/// `ge2bnd` on an `m x n` latms matrix with a geometric spectrum
/// (cond 1e4, seed 7 — the BENCHMARKING.md reference input): run each
/// thread count in `threads` `samples` times and keep the best time.
/// `threads` must start with 1 (asserted) so every speedup is relative
/// to the single-thread run of the same sweep.
pub fn measure_ge2bnd_scaling(
    m: usize,
    n: usize,
    nb: usize,
    threads: &[usize],
    samples: usize,
) -> Vec<ScalingPoint> {
    use bidiag_core::pipeline::{ge2bnd, AlgorithmChoice, Ge2Options};
    assert_eq!(
        threads.first(),
        Some(&1),
        "threads must start with 1: speedups are relative to the 1-thread run of this sweep"
    );
    let (a, _) = bidiag_matrix::gen::latms(
        m,
        n,
        &bidiag_matrix::gen::SpectrumKind::Geometric { cond: 1.0e4 },
        7,
    );
    let opts = |t: usize| {
        Ge2Options::new(nb)
            .with_tree(NamedTree::Greedy)
            .with_algorithm(AlgorithmChoice::Bidiag)
            .with_threads(t)
    };
    // Warm up allocators and caches once before timing anything.
    let _ = ge2bnd(&a, &opts(1));

    let mut points = Vec::with_capacity(threads.len());
    let mut t1 = f64::NAN;
    for &t in threads {
        let mut best = f64::INFINITY;
        for _ in 0..samples.max(1) {
            let start = std::time::Instant::now();
            let r = ge2bnd(&a, &opts(t));
            let dt = start.elapsed().as_secs_f64();
            assert!(r.num_tasks > 0);
            best = best.min(dt);
        }
        if t == 1 {
            t1 = best;
        }
        let speedup = t1 / best; // t1 is set by the first (1-thread) pass
        points.push(ScalingPoint {
            threads: t,
            seconds: best,
            speedup,
            efficiency: speedup / t as f64,
        });
    }
    points
}

/// One GE2BND timing under a forced SIMD backend.
#[derive(Clone, Copy, Debug)]
pub struct BackendPoint {
    /// Backend name (`"scalar"` / `"avx2"`).
    pub backend: &'static str,
    /// Best-of-`samples` wall time in seconds.
    pub seconds: f64,
}

/// Time GE2BND on the reference input under each available SIMD backend
/// (scalar always; AVX2 when the host supports it), via
/// [`bidiag_matrix::simd::with_forced_backend`] — so the comparison is
/// independent of `BIDIAG_SIMD` and of whatever the process has already
/// auto-selected.  Same input and options as [`measure_ge2bnd_scaling`]
/// at 1 thread.
pub fn measure_ge2bnd_backends(m: usize, n: usize, nb: usize, samples: usize) -> Vec<BackendPoint> {
    use bidiag_core::pipeline::{ge2bnd, AlgorithmChoice, Ge2Options};
    use bidiag_matrix::simd::{self, SimdBackend};
    let (a, _) = bidiag_matrix::gen::latms(
        m,
        n,
        &bidiag_matrix::gen::SpectrumKind::Geometric { cond: 1.0e4 },
        7,
    );
    let opts = Ge2Options::new(nb)
        .with_tree(NamedTree::Greedy)
        .with_algorithm(AlgorithmChoice::Bidiag)
        .with_threads(1);
    let mut backends = vec![SimdBackend::Scalar];
    if simd::avx2_available() {
        backends.push(SimdBackend::Avx2);
    }
    backends
        .into_iter()
        .map(|be| {
            let seconds = simd::with_forced_backend(be, || {
                let _ = ge2bnd(&a, &opts); // warm caches under this backend
                let mut best = f64::INFINITY;
                for _ in 0..samples.max(1) {
                    let start = std::time::Instant::now();
                    let r = ge2bnd(&a, &opts);
                    let dt = start.elapsed().as_secs_f64();
                    assert!(r.num_tasks > 0);
                    best = best.min(dt);
                }
                best
            });
            BackendPoint {
                backend: be.name(),
                seconds,
            }
        })
        .collect()
}

/// Wall-time split of one measured GE2VAL run (seconds per stage).
#[derive(Clone, Copy, Debug)]
pub struct StageTimes {
    /// GE2BND: dense to band bidiagonal (the tile-kernel DAG).
    pub ge2bnd: f64,
    /// BND2BD: band to bidiagonal (bulge chasing).
    pub bnd2bd: f64,
    /// BD2VAL: singular values of the bidiagonal (bisection).
    pub bd2val: f64,
}

impl StageTimes {
    /// Total pipeline time in seconds.
    pub fn total(&self) -> f64 {
        self.ge2bnd + self.bnd2bd + self.bd2val
    }

    /// Percentage share of one stage time of the total.
    pub fn share(&self, stage: f64) -> f64 {
        100.0 * stage / self.total().max(1e-12)
    }
}

/// Measure the wall-time split of the sequential GE2VAL pipeline
/// (GE2BND / BND2BD / BD2VAL) on the BENCHMARKING.md reference input (latms
/// with a geometric spectrum, cond 1e4, seed 7).  Runs the full pipeline
/// `samples` times and returns the split of the run with the best total, so
/// the three numbers are a consistent snapshot of one run rather than a mix
/// of per-stage minima.  BD2VAL runs the *production* solver (the
/// [`bidiag_svd::Bd2ValOptions`] default, i.e. dqds), exactly what
/// `ge2val` executes — solver-vs-solver comparisons live in
/// [`measure_bd2val_solvers`].
///
/// This is the breakdown that picks the next perf target: GE2BND dominated
/// through PR 4, then BND2BD became the wall (101.3 ms of 177.0 ms) until
/// the pipelined bulge chase of PR 6 — see [`measure_bnd2bd`].
pub fn measure_ge2val_stages(m: usize, n: usize, nb: usize, samples: usize) -> StageTimes {
    use bidiag_core::pipeline::{ge2bnd, AlgorithmChoice, Ge2Options};
    use bidiag_svd::{singular_values_with, Bd2ValOptions};
    use std::time::Instant;

    let (a, _) = bidiag_matrix::gen::latms(
        m,
        n,
        &bidiag_matrix::gen::SpectrumKind::Geometric { cond: 1.0e4 },
        7,
    );
    let opts = Ge2Options::new(nb)
        .with_tree(NamedTree::Greedy)
        .with_algorithm(AlgorithmChoice::Bidiag);
    // Warm up allocators and caches once before timing anything.
    let _ = ge2bnd(&a, &opts);

    let mut best = StageTimes {
        ge2bnd: f64::INFINITY,
        bnd2bd: 0.0,
        bd2val: 0.0,
    };
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        let r = ge2bnd(&a, &opts);
        let t_ge2bnd = t0.elapsed().as_secs_f64();

        let mut band = r.band;
        let t1 = Instant::now();
        let bidiag = band.reduce_to_bidiagonal();
        let t_bnd2bd = t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        let sv = singular_values_with(&bidiag.diag, &bidiag.superdiag, &Bd2ValOptions::default());
        let t_bd2val = t2.elapsed().as_secs_f64();
        assert_eq!(sv.len(), m.min(n));

        let split = StageTimes {
            ge2bnd: t_ge2bnd,
            bnd2bd: t_bnd2bd,
            bd2val: t_bd2val,
        };
        if split.total() < best.total() {
            best = split;
        }
    }
    best
}

/// Best-of-`samples` wall times (seconds) of the three BD2VAL solvers on
/// one bidiagonal, plus the dqds iteration counters.
#[derive(Clone, Copy, Debug)]
pub struct Bd2ValTimings {
    /// Order of the bidiagonal (number of singular values).
    pub n: usize,
    /// Per-value bisection (the oracle — the pre-subsystem production path).
    pub bisection: f64,
    /// Sturm spectrum slicing with the batched Newton front.
    pub sliced: f64,
    /// The dqds fast path.
    pub dqds: f64,
    /// dqds iteration counters of the last run.
    pub dqds_stats: bidiag_svd::DqdsStats,
}

/// Measure all three BD2VAL solvers on the bidiagonal produced by the
/// first two pipeline stages of the reference input (latms, geometric
/// spectrum cond 1e4, seed 7 — the same matrix every other measurement in
/// this crate uses).  Each solver is timed best-of-`samples` on identical
/// input; the results are cross-checked against each other (sigma_max
/// relative 1e-12) so a solver can never "win" by being wrong.
pub fn measure_bd2val_solvers(m: usize, n: usize, nb: usize, samples: usize) -> Bd2ValTimings {
    use bidiag_core::pipeline::{ge2bnd, AlgorithmChoice, Ge2Options};
    use bidiag_svd::{singular_values_with, Bd2ValOptions, SvdSolver};
    use std::time::Instant;

    let (a, _) = bidiag_matrix::gen::latms(
        m,
        n,
        &bidiag_matrix::gen::SpectrumKind::Geometric { cond: 1.0e4 },
        7,
    );
    let opts = Ge2Options::new(nb)
        .with_tree(NamedTree::Greedy)
        .with_algorithm(AlgorithmChoice::Bidiag);
    let r = ge2bnd(&a, &opts);
    let mut band = r.band;
    let bd = band.reduce_to_bidiagonal();
    let k = bd.diag.len();

    let time_solver = |solver: SvdSolver| -> (f64, Vec<f64>) {
        let o = Bd2ValOptions::default().with_solver(solver);
        let mut best = f64::INFINITY;
        let mut sv = Vec::new();
        for _ in 0..samples.max(1) {
            let t0 = Instant::now();
            sv = singular_values_with(&bd.diag, &bd.superdiag, &o);
            best = best.min(t0.elapsed().as_secs_f64());
            assert_eq!(sv.len(), k);
        }
        (best, sv)
    };
    let (t_bis, sv_bis) = time_solver(SvdSolver::Bisection);
    let (t_sliced, sv_sliced) = time_solver(SvdSolver::SlicedBisection);
    let (t_dqds, sv_dqds) = time_solver(SvdSolver::Dqds);

    let smax = sv_bis.first().copied().unwrap_or(0.0);
    for (name, sv) in [("sliced", &sv_sliced), ("dqds", &sv_dqds)] {
        for (j, (s, o)) in sv.iter().zip(&sv_bis).enumerate() {
            assert!(
                (s - o).abs() <= 1e-12 * smax,
                "{name} disagrees with the oracle at value {j}: {s} vs {o}"
            );
        }
    }
    let (_, dqds_stats) = bidiag_svd::dqds_singular_values_with_stats(&bd.diag, &bd.superdiag);

    Bd2ValTimings {
        n: k,
        bisection: t_bis,
        sliced: t_sliced,
        dqds: t_dqds,
        dqds_stats,
    }
}

/// Best-of-`samples` wall times (seconds) of the two BND2BD back-ends on
/// one band matrix.
#[derive(Clone, Copy, Debug)]
pub struct Bnd2BdTimings {
    /// Order of the band matrix.
    pub n: usize,
    /// Upper bandwidth of the band matrix.
    pub bw: usize,
    /// The pipelined cache-blocked wavefront reduction (production path).
    pub pipelined: f64,
    /// The historical one-bulge-at-a-time chase (the oracle).
    pub single_bulge: f64,
}

impl Bnd2BdTimings {
    /// Speedup of the pipelined path over the single-bulge oracle.
    pub fn speedup(&self) -> f64 {
        self.single_bulge / self.pipelined.max(1e-12)
    }
}

/// Measure the BND2BD stage on the band produced by GE2BND on the reference
/// input (latms, geometric spectrum cond 1e4, seed 7): the pipelined
/// wavefront reduction against the retained single-bulge oracle, each
/// best-of-`samples` on identical clones of the band.  Before any timing,
/// the two reductions are cross-checked against each other (singular values
/// of the resulting bidiagonals via dqds, 1e-10 relative on sigma_max) so
/// the fast path can never "win" by being wrong.
pub fn measure_bnd2bd(m: usize, n: usize, nb: usize, samples: usize) -> Bnd2BdTimings {
    use bidiag_core::pipeline::{ge2bnd, AlgorithmChoice, Ge2Options};
    use std::time::Instant;

    let (a, _) = bidiag_matrix::gen::latms(
        m,
        n,
        &bidiag_matrix::gen::SpectrumKind::Geometric { cond: 1.0e4 },
        7,
    );
    let opts = Ge2Options::new(nb)
        .with_tree(NamedTree::Greedy)
        .with_algorithm(AlgorithmChoice::Bidiag);
    let band = ge2bnd(&a, &opts).band;

    // Correctness cross-check before any timing.
    let bd_pipe = band.clone().reduce_to_bidiagonal();
    let bd_oracle = band.clone().reduce_to_bidiagonal_single_bulge();
    let sv_pipe = bidiag_svd::dqds_singular_values(&bd_pipe.diag, &bd_pipe.superdiag);
    let sv_oracle = bidiag_svd::dqds_singular_values(&bd_oracle.diag, &bd_oracle.superdiag);
    let smax = sv_oracle.first().copied().unwrap_or(0.0);
    for (j, (s, o)) in sv_pipe.iter().zip(&sv_oracle).enumerate() {
        assert!(
            (s - o).abs() <= 1e-10 * smax,
            "pipelined BND2BD disagrees with the single-bulge oracle at value {j}: {s} vs {o}"
        );
    }

    let mut pipelined = f64::INFINITY;
    let mut single_bulge = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let mut b = band.clone();
        let t0 = Instant::now();
        let bd = b.reduce_to_bidiagonal();
        pipelined = pipelined.min(t0.elapsed().as_secs_f64());
        assert_eq!(bd.diag.len(), band.order());

        let mut b = band.clone();
        let t0 = Instant::now();
        let bd = b.reduce_to_bidiagonal_single_bulge();
        single_bulge = single_bulge.min(t0.elapsed().as_secs_f64());
        assert_eq!(bd.diag.len(), band.order());
    }
    Bnd2BdTimings {
        n: band.order(),
        bw: band.bandwidth(),
        pipelined,
        single_bulge,
    }
}

/// Best-of-`samples` wall times (seconds) of one batched-throughput size
/// point: a stream of `batch` problems of order `n` pushed through a
/// persistent [`bidiag_core::batch::SvdSession`] versus calling
/// [`bidiag_core::pipeline::ge2val`] once per problem.
#[derive(Clone, Copy, Debug)]
pub struct BatchThroughputPoint {
    /// Problem order (the problems are `n x n`).
    pub n: usize,
    /// Number of problems pushed through each path.
    pub batch: usize,
    /// Worker threads of the session (the per-call path gets the same).
    pub threads: usize,
    /// Best-of-samples seconds for the whole batch through the session.
    pub session_seconds: f64,
    /// Best-of-samples seconds for the whole batch through per-call ge2val.
    pub per_call_seconds: f64,
}

impl BatchThroughputPoint {
    /// Problems per second through the persistent session.
    pub fn session_problems_per_sec(&self) -> f64 {
        self.batch as f64 / self.session_seconds.max(1e-12)
    }

    /// Problems per second through per-call `ge2val`.
    pub fn per_call_problems_per_sec(&self) -> f64 {
        self.batch as f64 / self.per_call_seconds.max(1e-12)
    }

    /// Session throughput over per-call throughput.
    pub fn speedup(&self) -> f64 {
        self.per_call_seconds / self.session_seconds.max(1e-12)
    }
}

/// Measure batched-SVD throughput at one size: `batch` Gaussian `n x n`
/// problems (16 distinct matrices cycled, so the generator cost stays out
/// of the loop) pushed through one persistent
/// [`SvdSession`](bidiag_core::batch::SvdSession) — submitted in bounded
/// windows so thousands of problems never sit in flight at once — against
/// the per-call baseline, [`ge2val`](bidiag_core::pipeline::ge2val) once
/// per problem with the small-size crossover disabled (the pre-session
/// production path: fresh executor and scratch per call).  Both paths use
/// `threads` workers and `nb = 64`.  Before any timing, the session's
/// spectra are cross-checked against the per-call path on every distinct
/// problem (1e-10 relative on sigma_max) so the fast path can never "win"
/// by being wrong.
pub fn measure_batch_throughput(
    n: usize,
    batch: usize,
    threads: usize,
    samples: usize,
) -> BatchThroughputPoint {
    use bidiag_core::batch::SvdSession;
    use bidiag_core::pipeline::{ge2val, Ge2Options};
    use bidiag_matrix::checks::singular_values_match;
    use std::time::Instant;

    let distinct = 16.min(batch.max(1));
    let problems: Vec<bidiag_matrix::Matrix> = (0..distinct)
        .map(|i| bidiag_matrix::gen::random_gaussian(n, n, 900 + i as u64))
        .collect();
    let per_call_opts = Ge2Options::new(64).with_threads(threads);
    let session = SvdSession::new(threads);

    // Correctness cross-check before any timing.  The session runs the
    // hardened defaults (bounded blocking admission, input validation), so
    // the timed loop below measures the production service path.
    for (i, a) in problems.iter().enumerate() {
        let sv_session = session.submit(a).unwrap().wait().unwrap();
        let sv_per_call = ge2val(a, &per_call_opts).singular_values;
        assert!(
            singular_values_match(&sv_session, &sv_per_call, 1.0e-10),
            "session spectrum disagrees with per-call ge2val on problem {i} (n = {n})"
        );
    }

    // Keep a bounded window of problems in flight: enough to saturate the
    // pool and overlap independent DAGs, without materialising `batch`
    // task graphs at once.
    let window = (4 * threads).clamp(16, batch.max(1));
    let run_session = || {
        let mut jobs = Vec::with_capacity(window);
        let mut done = 0usize;
        let start = Instant::now();
        while done < batch {
            let take = window.min(batch - done);
            for j in 0..take {
                jobs.push(session.submit(&problems[(done + j) % distinct]).unwrap());
            }
            for job in jobs.drain(..) {
                assert_eq!(job.wait().unwrap().len(), n);
            }
            done += take;
        }
        start.elapsed().as_secs_f64()
    };
    let run_per_call = || {
        let start = Instant::now();
        for i in 0..batch {
            let r = ge2val(&problems[i % distinct], &per_call_opts);
            assert_eq!(r.singular_values.len(), n);
        }
        start.elapsed().as_secs_f64()
    };

    let mut session_seconds = f64::INFINITY;
    let mut per_call_seconds = f64::INFINITY;
    for _ in 0..samples.max(1) {
        session_seconds = session_seconds.min(run_session());
        per_call_seconds = per_call_seconds.min(run_per_call());
    }
    BatchThroughputPoint {
        n,
        batch,
        threads,
        session_seconds,
        per_call_seconds,
    }
}

/// Print a measured thread-scaling sweep as a TSV table.
pub fn print_scaling_table(title: &str, points: &[ScalingPoint]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.threads.to_string(),
                format!("{:.1}", p.seconds * 1.0e3),
                format!("{:.2}", p.speedup),
                format!("{:.2}", p.efficiency),
            ]
        })
        .collect();
    print_tsv(
        title,
        &["threads", "time_ms", "speedup", "efficiency"],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_ts_wins_large_square_and_greedy_wins_small() {
        // The qualitative content of Figure 2 (top-left): on small square
        // matrices the trees with more parallelism (Greedy/FlatTT) beat
        // FlatTS; on large matrices FlatTS catches up thanks to its more
        // efficient kernels.
        let grid = BlockCyclic::single_node();
        let small_greedy = ge2bnd_sim_gflops(
            2_000,
            2_000,
            160,
            NamedTree::Greedy,
            Algorithm::Bidiag,
            1,
            grid,
        );
        let small_flatts = ge2bnd_sim_gflops(
            2_000,
            2_000,
            160,
            NamedTree::FlatTs,
            Algorithm::Bidiag,
            1,
            grid,
        );
        assert!(
            small_greedy > small_flatts,
            "{small_greedy} vs {small_flatts}"
        );
        let large_greedy = ge2bnd_sim_gflops(
            12_000,
            12_000,
            160,
            NamedTree::Greedy,
            Algorithm::Bidiag,
            1,
            grid,
        );
        let large_flatts = ge2bnd_sim_gflops(
            12_000,
            12_000,
            160,
            NamedTree::FlatTs,
            Algorithm::Bidiag,
            1,
            grid,
        );
        assert!(
            large_flatts > large_greedy,
            "{large_flatts} vs {large_greedy}"
        );
    }

    #[test]
    fn auto_is_near_best_everywhere() {
        let grid = BlockCyclic::single_node();
        for (m, n) in [(2_000usize, 2_000usize), (10_000, 10_000), (24_000, 2_000)] {
            let auto = ge2bnd_sim_gflops(
                m,
                n,
                160,
                NamedTree::Auto {
                    gamma: 2.0,
                    ncores: 24,
                },
                Algorithm::Bidiag,
                1,
                grid,
            );
            let best = [NamedTree::FlatTs, NamedTree::FlatTt, NamedTree::Greedy]
                .into_iter()
                .map(|t| ge2bnd_sim_gflops(m, n, 160, t, Algorithm::Bidiag, 1, grid))
                .fold(0.0_f64, f64::max);
            assert!(auto >= 0.85 * best, "{m}x{n}: auto {auto} vs best {best}");
        }
    }

    #[test]
    fn rbidiag_beats_bidiag_on_tall_skinny_rates() {
        let grid = BlockCyclic::single_node();
        let (m, n) = (40_000usize, 2_000usize);
        let b = ge2bnd_sim_gflops(m, n, 160, NamedTree::Greedy, Algorithm::Bidiag, 1, grid);
        let r = ge2bnd_sim_gflops(m, n, 160, NamedTree::Greedy, Algorithm::RBidiag, 1, grid);
        assert!(r > b, "R-BiDiag {r} should beat BiDiag {b} on tall-skinny");
    }

    #[test]
    fn dplasma_model_beats_competitor_models_on_square_ge2val() {
        let grid = BlockCyclic::single_node();
        let (m, n) = (12_000usize, 12_000usize);
        let ours = ge2val_sim_gflops(
            m,
            n,
            160,
            NamedTree::Auto {
                gamma: 2.0,
                ncores: 24,
            },
            Algorithm::Bidiag,
            1,
            grid,
        );
        let sca = competitor_gflops(CompetitorClass::ScalapackLike, m, n, 1);
        let ele = competitor_gflops(CompetitorClass::ElementalLike, m, n, 1);
        assert!(
            ours > sca && ours > ele,
            "ours {ours}, scalapack {sca}, elemental {ele}"
        );
    }

    #[test]
    fn upper_bound_dominates_ge2val() {
        let grid = BlockCyclic::single_node();
        let (m, n) = (8_000usize, 8_000usize);
        let ub = ge2val_upper_bound_gflops(m, n, 160);
        let ours = ge2val_sim_gflops(m, n, 160, NamedTree::Greedy, Algorithm::Bidiag, 1, grid);
        assert!(ub >= ours);
    }
}
