//! Section IV: critical path lengths of the six algorithms
//! (BIDIAG / R-BIDIAG x FLATTS / FLATTT / GREEDY).
//!
//! For BIDIAG the closed-form expressions of the paper are printed next to
//! the critical path measured on the generated task DAG (they must agree
//! exactly); for R-BIDIAG the DAG measurement and the no-overlap estimate
//! are printed.  Lengths are in the paper's unit of `nb^3/3` flops.

use bidiag_bench::print_tsv;
use bidiag_core::cp;
use bidiag_core::drivers::Algorithm;
use bidiag_trees::NamedTree;

fn main() {
    let shapes: Vec<(usize, usize)> = vec![
        (4, 4),
        (8, 8),
        (16, 16),
        (32, 32),
        (16, 4),
        (32, 4),
        (64, 4),
        (64, 16),
        (128, 8),
    ];
    let trees = [NamedTree::FlatTs, NamedTree::FlatTt, NamedTree::Greedy];

    let mut rows = Vec::new();
    for &(p, q) in &shapes {
        for tree in trees {
            let formula = cp::bidiag_cp(tree, p, q);
            let measured = cp::measured_cp(Algorithm::Bidiag, tree, p, q);
            let r_measured = cp::measured_cp(Algorithm::RBidiag, tree, p, q);
            rows.push(vec![
                format!("{p}"),
                format!("{q}"),
                tree.name().to_string(),
                format!("{formula:.0}"),
                format!("{measured:.0}"),
                if (formula - measured).abs() < 1e-9 {
                    "yes".into()
                } else {
                    "NO".into()
                },
                format!("{r_measured:.0}"),
                format!("{:.3}", measured / r_measured),
            ]);
        }
    }
    print_tsv(
        "Critical paths (units of nb^3/3): paper formulas vs measured task DAG",
        &[
            "p",
            "q",
            "tree",
            "BiDiag_formula",
            "BiDiag_DAG",
            "match",
            "R-BiDiag_DAG",
            "ratio BiDiag/R-BiDiag",
        ],
        &rows,
    );

    // Asymptotic check of Theorem 1 for alpha = 0 (square matrices).
    let mut rows2 = Vec::new();
    for q in [8usize, 16, 32, 64, 128] {
        let exact = cp::bidiag_cp(NamedTree::Greedy, q, q);
        let asym = cp::bidiag_cp_asymptotic(0.0, q);
        rows2.push(vec![
            format!("{q}"),
            format!("{exact:.0}"),
            format!("{asym:.0}"),
            format!("{:.3}", exact / asym),
        ]);
    }
    print_tsv(
        "Theorem 1: BIDIAG-GREEDY(q,q) vs its asymptotic equivalent 12 q log2 q",
        &["q", "exact", "12 q log2 q", "ratio"],
        &rows2,
    );
    bidiag_bench::maybe_write_trace();
}
