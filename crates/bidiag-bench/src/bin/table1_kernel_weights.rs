//! Table I: measured kernel costs versus the paper's weights.
//!
//! Runs every tile kernel on random `nb x nb` tiles, measures wall-clock
//! time, converts it to the paper's unit (`nb^3/3` flops at the speed of the
//! fastest kernel) and prints it next to the Table I weight.  The measured
//! ratios reflect this pure-Rust implementation (the paper's point — TS
//! kernels are more efficient than TT kernels per flop — shows up in the
//! GFlop/s column).

use bidiag_bench::print_tsv;
use bidiag_kernels::cost::KernelKind;
use bidiag_kernels::{lq, qr, Workspace};
use bidiag_matrix::gen::random_gaussian;
use bidiag_matrix::Matrix;
use std::time::Instant;

fn upper(a: &Matrix) -> Matrix {
    Matrix::from_fn(
        a.rows(),
        a.cols(),
        |i, j| if j >= i { a.get(i, j) } else { 0.0 },
    )
}
fn lower(a: &Matrix) -> Matrix {
    Matrix::from_fn(
        a.rows(),
        a.cols(),
        |i, j| if j <= i { a.get(i, j) } else { 0.0 },
    )
}

fn time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let nb: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let reps = 3;
    let mut ws = Workspace::new();
    let a = random_gaussian(nb, nb, 1);
    let b = random_gaussian(nb, nb, 2);
    let c = random_gaussian(nb, nb, 3);

    let mut results: Vec<(KernelKind, f64)> = Vec::new();

    results.push((
        KernelKind::Geqrt,
        time(reps, || {
            let mut w = a.clone();
            let _ = qr::geqrt(&mut w, &mut ws);
        }),
    ));
    let mut v = a.clone();
    let tf = qr::geqrt(&mut v, &mut Workspace::new());
    results.push((
        KernelKind::Unmqr,
        time(reps, || {
            let mut w = b.clone();
            qr::unmqr(&v, &tf, &mut w, qr::Trans::Transpose, &mut ws);
        }),
    ));
    let r1 = upper(&v);
    results.push((
        KernelKind::Tsqrt,
        time(reps, || {
            let mut r = r1.clone();
            let mut w = b.clone();
            let _ = qr::tsqrt(&mut r, &mut w, &mut ws);
        }),
    ));
    let mut rts = r1.clone();
    let mut vts = b.clone();
    let tf_ts = qr::tsqrt(&mut rts, &mut vts, &mut Workspace::new());
    results.push((
        KernelKind::Tsmqr,
        time(reps, || {
            let mut w1 = b.clone();
            let mut w2 = c.clone();
            qr::tsmqr(
                &mut w1,
                &mut w2,
                &vts,
                &tf_ts,
                qr::Trans::Transpose,
                &mut ws,
            );
        }),
    ));
    let r2 = upper(&random_gaussian(nb, nb, 4));
    results.push((
        KernelKind::Ttqrt,
        time(reps, || {
            let mut x = r1.clone();
            let mut y = r2.clone();
            let _ = qr::ttqrt(&mut x, &mut y, &mut ws);
        }),
    ));
    let mut rtt = r1.clone();
    let mut vtt = r2.clone();
    let tf_tt = qr::ttqrt(&mut rtt, &mut vtt, &mut Workspace::new());
    results.push((
        KernelKind::Ttmqr,
        time(reps, || {
            let mut w1 = b.clone();
            let mut w2 = c.clone();
            qr::ttmqr(
                &mut w1,
                &mut w2,
                &vtt,
                &tf_tt,
                qr::Trans::Transpose,
                &mut ws,
            );
        }),
    ));
    // LQ duals.
    results.push((
        KernelKind::Gelqt,
        time(reps, || {
            let mut w = a.clone();
            let _ = lq::gelqt(&mut w, &mut ws);
        }),
    ));
    let l1 = lower(&random_gaussian(nb, nb, 5));
    results.push((
        KernelKind::Tslqt,
        time(reps, || {
            let mut l = l1.clone();
            let mut w = b.clone();
            let _ = lq::tslqt(&mut l, &mut w, &mut ws);
        }),
    ));

    let unit_flops = (nb as f64).powi(3) / 3.0;
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(k, secs)| {
            let weight = k.weight();
            let flops = k.flops(nb);
            let gflops = flops / secs / 1.0e9;
            let measured_units = secs / (results[0].1 / KernelKind::Geqrt.weight());
            vec![
                k.name().to_string(),
                format!("{weight:.0}"),
                format!("{measured_units:.2}"),
                format!("{:.3e}", secs),
                format!("{gflops:.2}"),
            ]
        })
        .collect();
    print_tsv(
        &format!("Table I — kernel weights (nb = {nb}, unit = nb^3/3 = {unit_flops:.0} flops)"),
        &[
            "kernel",
            "paper_weight",
            "measured_weight(norm. to GEQRT=4)",
            "seconds",
            "GFlop/s",
        ],
        &rows,
    );
    bidiag_bench::maybe_write_trace();
}
