//! Section IV.C: the BIDIAG -> R-BIDIAG crossover ratio `delta_s`.
//!
//! For each number of tile columns `q`, finds the smallest `p` such that the
//! critical path of R-BIDIAG (GREEDY trees) is no longer than the critical
//! path of BIDIAG, and prints the ratio `delta_s = p*/q`.  The paper reports
//! that this ratio is a complicated, oscillating function of `q` lying
//! roughly between 5 and 8 (when computed with its no-overlap estimate); the
//! DAG-measured crossover is also printed, together with Chan's flop-count
//! crossover (5/3) for reference.

use bidiag_bench::print_tsv;
use bidiag_core::cp::crossover;

fn main() {
    let qmax: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let mut rows = Vec::new();
    for q in 2..=qmax {
        let c = crossover(q, 16);
        rows.push(vec![
            format!("{q}"),
            c.p_star
                .map(|p| p.to_string())
                .unwrap_or_else(|| ">16q".into()),
            c.ratio
                .map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "-".into()),
            "1.67".to_string(),
        ]);
    }
    print_tsv(
        "Crossover delta_s(q): smallest p/q where R-BIDIAG-GREEDY beats BIDIAG-GREEDY (critical paths)",
        &["q", "p*", "delta_s = p*/q", "Chan flop crossover"],
        &rows,
    );
    bidiag_bench::maybe_write_trace();
}
