//! Figure 3: distributed-memory strong scaling on 1..25 nodes.
//!
//! Top row — GE2BND GFlop/s of the four tree variants: square matrices with
//! BIDIAG (sqrt(N) x sqrt(N) process grids) and tall-skinny matrices with
//! R-BIDIAG (N x 1 grids).  Bottom row — GE2VAL against the competitor
//! models, including the serial BND2BD+BD2VAL upper bound of the paper.
//!
//! Sizes are scaled down from the paper (20000/30000 square, 2M x 2000 and
//! 1M x 10000 tall-skinny) so the harness runs in minutes; pass `--full`
//! for larger sizes.

use bidiag_baselines::CompetitorClass;
use bidiag_bench::*;
use bidiag_core::drivers::Algorithm;
use bidiag_matrix::BlockCyclic;
use bidiag_trees::NamedTree;

fn grid_for(nodes: usize, square: bool) -> BlockCyclic {
    if square {
        BlockCyclic::square_grid(nodes)
    } else {
        BlockCyclic::tall_grid(nodes)
    }
}

fn ge2bnd_panel(
    title: &str,
    m: usize,
    n: usize,
    algorithm: Algorithm,
    square: bool,
    nodes_list: &[usize],
    nb: usize,
) {
    let mut rows = Vec::new();
    for &nodes in nodes_list {
        let grid = grid_for(nodes, square);
        let mut row = vec![nodes.to_string()];
        for t in NamedTree::paper_variants(CORES_PER_NODE) {
            let g = ge2bnd_sim_gflops(m, n, nb, t, algorithm, nodes, grid);
            row.push(format!("{g:.0}"));
        }
        // Perfect scalability reference: single-node best * nodes.
        let single = NamedTree::paper_variants(CORES_PER_NODE)
            .into_iter()
            .map(|t| ge2bnd_sim_gflops(m, n, nb, t, algorithm, 1, BlockCyclic::single_node()))
            .fold(0.0_f64, f64::max);
        row.push(format!("{:.0}", single * nodes as f64));
        rows.push(row);
    }
    print_tsv(
        &format!("{title} (M={m}, N={n}, {})", algorithm.name()),
        &[
            "nodes",
            "FlatTS",
            "FlatTT",
            "Greedy",
            "Auto",
            "PerfectScaling",
        ],
        &rows,
    );
}

fn ge2val_panel(
    title: &str,
    m: usize,
    n: usize,
    algorithm: Algorithm,
    square: bool,
    nodes_list: &[usize],
    nb: usize,
) {
    let mut rows = Vec::new();
    for &nodes in nodes_list {
        let grid = grid_for(nodes, square);
        let auto = NamedTree::Auto {
            gamma: 2.0,
            ncores: CORES_PER_NODE,
        };
        let ours = ge2val_sim_gflops(m, n, nb, auto, algorithm, nodes, grid);
        let ele = competitor_gflops(CompetitorClass::ElementalLike, m, n, nodes);
        let sca = competitor_gflops(CompetitorClass::ScalapackLike, m, n, nodes);
        let ub = ge2val_upper_bound_gflops(m, n, nb);
        rows.push(vec![
            nodes.to_string(),
            format!("{ours:.0}"),
            format!("{ele:.0}"),
            format!("{sca:.0}"),
            format!("{ub:.0}"),
        ]);
    }
    print_tsv(
        &format!("{title} (M={m}, N={n}, {})", algorithm.name()),
        &[
            "nodes",
            "DPLASMA(ours)",
            "Elemental",
            "Scalapack",
            "UpperBound(BND2VAL)",
        ],
        &rows,
    );
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let nb = 160;
    let nodes_list: Vec<usize> = vec![1, 2, 4, 9, 16, 25];
    let (sq1, sq2) = if full {
        (20_000, 30_000)
    } else {
        (8_000, 12_000)
    };
    let (ts1_m, ts1_n) = if full {
        (2_000_000, 2_000)
    } else {
        (200_000, 2_000)
    };
    let (ts2_m, ts2_n) = if full {
        (1_000_000, 10_000)
    } else {
        (100_000, 5_000)
    };

    println!("# Figure 3 — distributed-memory strong scaling (simulated cluster of 24-core nodes, nb = {nb})\n");

    ge2bnd_panel(
        "Fig 3 top-left: GE2BND square (small)",
        sq1,
        sq1,
        Algorithm::Bidiag,
        true,
        &nodes_list,
        nb,
    );
    ge2bnd_panel(
        "Fig 3 top-left: GE2BND square (large)",
        sq2,
        sq2,
        Algorithm::Bidiag,
        true,
        &nodes_list,
        nb,
    );
    ge2bnd_panel(
        "Fig 3 top-middle: GE2BND tall-skinny",
        ts1_m,
        ts1_n,
        Algorithm::RBidiag,
        false,
        &nodes_list,
        nb,
    );
    ge2bnd_panel(
        "Fig 3 top-right: GE2BND tall-skinny wide",
        ts2_m,
        ts2_n,
        Algorithm::RBidiag,
        false,
        &nodes_list,
        nb,
    );

    ge2val_panel(
        "Fig 3 bottom-left: GE2VAL square",
        sq1,
        sq1,
        Algorithm::Bidiag,
        true,
        &nodes_list,
        nb,
    );
    ge2val_panel(
        "Fig 3 bottom-middle: GE2VAL tall-skinny",
        ts1_m,
        ts1_n,
        Algorithm::RBidiag,
        false,
        &nodes_list,
        nb,
    );
    ge2val_panel(
        "Fig 3 bottom-right: GE2VAL tall-skinny wide",
        ts2_m,
        ts2_n,
        Algorithm::RBidiag,
        false,
        &nodes_list,
        nb,
    );
    bidiag_bench::maybe_write_trace();
}
