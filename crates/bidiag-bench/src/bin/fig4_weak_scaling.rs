//! Figure 4: distributed weak scaling on tall-skinny matrices.
//!
//! Row 1: matrices of size `(base1 * nodes) x 2000`; row 2: `(base2 * nodes)
//! x wide_n`.  Columns: GE2BND GFlop/s per tree (R-BIDIAG), GE2VAL GFlop/s
//! vs the competitor models, and GE2VAL parallel efficiency.
//!
//! Paper sizes are `80000 * nodes x 2000` and `100000 * nodes x 10000`; the
//! default here is scaled down (pass `--full` for the paper's sizes).

use bidiag_baselines::CompetitorClass;
use bidiag_bench::*;
use bidiag_core::drivers::Algorithm;
use bidiag_matrix::BlockCyclic;
use bidiag_trees::NamedTree;

fn weak_row(title: &str, base_m: usize, n: usize, nodes_list: &[usize], nb: usize) {
    let mut rows_bnd = Vec::new();
    let mut rows_val = Vec::new();
    let mut eff_rows = Vec::new();
    let mut ours_single = None;
    for &nodes in nodes_list {
        let m = base_m * nodes;
        let grid = BlockCyclic::tall_grid(nodes);
        let mut row = vec![nodes.to_string(), m.to_string()];
        for t in NamedTree::paper_variants(CORES_PER_NODE) {
            let g = ge2bnd_sim_gflops(m, n, nb, t, Algorithm::RBidiag, nodes, grid);
            row.push(format!("{g:.0}"));
        }
        rows_bnd.push(row);

        let auto = NamedTree::Auto {
            gamma: 2.0,
            ncores: CORES_PER_NODE,
        };
        let ours = ge2val_sim_gflops(m, n, nb, auto, Algorithm::RBidiag, nodes, grid);
        let ele = competitor_gflops(CompetitorClass::ElementalLike, m, n, nodes);
        let sca = competitor_gflops(CompetitorClass::ScalapackLike, m, n, nodes);
        rows_val.push(vec![
            nodes.to_string(),
            format!("{ours:.0}"),
            format!("{ele:.0}"),
            format!("{sca:.0}"),
        ]);

        if nodes == nodes_list[0] {
            ours_single = Some(ours / nodes as f64);
        }
        let base = ours_single.unwrap();
        eff_rows.push(vec![
            nodes.to_string(),
            format!("{:.3}", ours / (base * nodes as f64)),
            format!(
                "{:.3}",
                ele / (competitor_gflops(CompetitorClass::ElementalLike, base_m, n, 1)
                    * nodes as f64)
            ),
            format!(
                "{:.3}",
                sca / (competitor_gflops(CompetitorClass::ScalapackLike, base_m, n, 1)
                    * nodes as f64)
            ),
        ]);
    }
    print_tsv(
        &format!("{title}: GE2BND"),
        &["nodes", "M", "FlatTS", "FlatTT", "Greedy", "Auto"],
        &rows_bnd,
    );
    print_tsv(
        &format!("{title}: GE2VAL"),
        &["nodes", "DPLASMA(ours)", "Elemental", "Scalapack"],
        &rows_val,
    );
    print_tsv(
        &format!("{title}: GE2VAL efficiency"),
        &["nodes", "DPLASMA(ours)", "Elemental", "Scalapack"],
        &eff_rows,
    );
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let nb = 160;
    let nodes_list: Vec<usize> = vec![1, 2, 4, 8, 16, 25];
    let (base1, base2, wide_n) = if full {
        (80_000, 100_000, 10_000)
    } else {
        (20_000, 20_000, 5_000)
    };

    println!("# Figure 4 — weak scaling on tall-skinny matrices (simulated cluster, nb = {nb})\n");
    weak_row("Fig 4 row 1 (N=2000)", base1, 2_000, &nodes_list, nb);
    weak_row(
        &format!("Fig 4 row 2 (N={wide_n})"),
        base2,
        wide_n,
        &nodes_list,
        nb,
    );
    bidiag_bench::maybe_write_trace();
}
