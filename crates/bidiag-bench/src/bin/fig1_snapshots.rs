//! Figure 1: snapshots of the BIDIAG algorithm.
//!
//! Replays the operation list of BIDIAG on a small tile grid and prints the
//! logical state of every tile after each QR/LQ step, using the same visual
//! convention as the paper: `R` upper-triangular tile, `L` lower-triangular
//! tile, `.` zeroed tile (holding reflectors), `x` full tile.

use bidiag_core::drivers::{bidiag_ops, GenConfig};
use bidiag_core::ops::TileOp;
use bidiag_trees::NamedTree;

#[derive(Clone, Copy, PartialEq)]
enum S {
    Full,
    UpperTri,
    LowerTri,
    Zeroed,
}

fn render(state: &[Vec<S>], title: &str) {
    println!("{title}");
    for row in state {
        let line: String = row
            .iter()
            .map(|s| match s {
                S::Full => " x ",
                S::UpperTri => " R ",
                S::LowerTri => " L ",
                S::Zeroed => " . ",
            })
            .collect();
        println!("  {line}");
    }
    println!();
}

fn main() {
    let p: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let q: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("# Figure 1 — snapshots of BIDIAG on a {p} x {q} tile matrix (Greedy trees)\n");

    let ops = bidiag_ops(p, q, &GenConfig::shared(NamedTree::Greedy));
    let mut state = vec![vec![S::Full; q]; p];
    render(&state, "initial");

    // Group ops by (step, QR/LQ phase) and render after each phase.
    let mut current: Option<(usize, bool)> = None; // (k, is_lq)
    for op in &ops {
        let phase = match *op {
            TileOp::Geqrt { k, .. }
            | TileOp::Unmqr { k, .. }
            | TileOp::Tsqrt { k, .. }
            | TileOp::Tsmqr { k, .. }
            | TileOp::Ttqrt { k, .. }
            | TileOp::Ttmqr { k, .. } => (k, false),
            TileOp::Gelqt { k, .. }
            | TileOp::Unmlq { k, .. }
            | TileOp::Tslqt { k, .. }
            | TileOp::Tsmlq { k, .. }
            | TileOp::Ttlqt { k, .. }
            | TileOp::Ttmlq { k, .. } => (k, true),
            TileOp::ZeroLower { .. } => continue,
        };
        if let Some((k, lq)) = current.filter(|&c| c != phase) {
            render(
                &state,
                &if lq {
                    format!("after LQ({})", k + 1)
                } else {
                    format!("after QR({})", k + 1)
                },
            );
        }
        current = Some(phase);
        // Update the logical structure.
        match *op {
            TileOp::Geqrt { k, i } => state[i][k] = S::UpperTri,
            TileOp::Tsqrt { k, i, .. } | TileOp::Ttqrt { k, i, .. } => state[i][k] = S::Zeroed,
            TileOp::Gelqt { k, j } => state[k][j] = S::LowerTri,
            TileOp::Tslqt { k, j, .. } | TileOp::Ttlqt { k, j, .. } => state[k][j] = S::Zeroed,
            TileOp::Unmqr { .. }
            | TileOp::Tsmqr { .. }
            | TileOp::Ttmqr { .. }
            | TileOp::Unmlq { .. }
            | TileOp::Tsmlq { .. }
            | TileOp::Ttmlq { .. }
            | TileOp::ZeroLower { .. } => {}
        }
    }
    if let Some((k, lq)) = current {
        render(
            &state,
            &if lq {
                format!("after LQ({})", k + 1)
            } else {
                format!("after QR({})", k + 1)
            },
        );
    }
    println!("(R = triangularised tile, L = LQ-triangularised tile, . = annihilated tile, x = full tile)");
    bidiag_bench::maybe_write_trace();
}
