//! Figure 2: shared-memory performance on one 24-core node.
//!
//! Top row — GE2BND GFlop/s for the four trees (FlatTS, FlatTT, Greedy,
//! Auto), BIDIAG and R-BIDIAG, on the three shapes of the paper: square,
//! tall-skinny with n = 2000, tall-skinny with a wider second dimension.
//! Bottom row — GE2VAL GFlop/s of our best variant against the competitor
//! models (MKL-like, PLASMA-like = our FlatTS pipeline, ScaLAPACK-like,
//! Elemental-like).
//!
//! Rates come from the calibrated DAG simulator (see `bidiag-bench`
//! documentation); sizes are scaled down from the paper's 30000 so that the
//! harness completes in minutes (pass `--full` for the paper's sizes).
//!
//! The final panel is *measured*, not simulated: it times the real
//! work-stealing runtime on the ROADMAP's 768x512 nb=64 case at 1/2/4/8
//! threads and prints the speedup table.  When the host actually has >= 8
//! cores it enforces >= 1.5x speedup at 8 threads; on smaller hosts the
//! assertion is skipped (a 1-core container cannot speed anything up) and
//! the table is printed for the record.

use bidiag_baselines::CompetitorClass;
use bidiag_bench::*;
use bidiag_core::drivers::Algorithm;
use bidiag_matrix::BlockCyclic;
use bidiag_trees::NamedTree;

fn trees() -> Vec<NamedTree> {
    NamedTree::paper_variants(CORES_PER_NODE)
}

fn panel_ge2bnd(title: &str, shapes: &[(usize, usize)], algos: &[Algorithm], nb: usize) {
    let grid = BlockCyclic::single_node();
    let mut header = vec!["M".to_string(), "N".to_string()];
    for alg in algos {
        for t in trees() {
            header.push(if algos.len() > 1 {
                format!("{}-{}", alg.name(), t.name())
            } else {
                t.name().to_string()
            });
        }
    }
    let mut rows = Vec::new();
    for &(m, n) in shapes {
        let mut row = vec![m.to_string(), n.to_string()];
        for &alg in algos {
            for t in trees() {
                let g = ge2bnd_sim_gflops(m, n, nb, t, alg, 1, grid);
                row.push(format!("{g:.1}"));
            }
        }
        rows.push(row);
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_tsv(title, &hdr, &rows);
}

fn panel_ge2val(title: &str, shapes: &[(usize, usize)], best_algo: Algorithm, nb: usize) {
    let grid = BlockCyclic::single_node();
    let mut rows = Vec::new();
    for &(m, n) in shapes {
        let auto = NamedTree::Auto {
            gamma: 2.0,
            ncores: CORES_PER_NODE,
        };
        let dplasma = ge2val_sim_gflops(m, n, nb, auto, best_algo, 1, grid);
        let plasma = ge2val_sim_gflops(m, n, nb, NamedTree::FlatTs, Algorithm::Bidiag, 1, grid);
        let mkl = competitor_gflops(CompetitorClass::MklLike, m, n, 1);
        let sca = competitor_gflops(CompetitorClass::ScalapackLike, m, n, 1);
        let ele = competitor_gflops(CompetitorClass::ElementalLike, m, n, 1);
        rows.push(vec![
            m.to_string(),
            n.to_string(),
            format!("{dplasma:.1}"),
            format!("{mkl:.1}"),
            format!("{plasma:.1}"),
            format!("{ele:.1}"),
            format!("{sca:.1}"),
        ]);
    }
    print_tsv(
        title,
        &[
            "M",
            "N",
            "DPLASMA(ours)",
            "MKL",
            "PLASMA",
            "Elemental",
            "Scalapack",
        ],
        &rows,
    );
}

/// Measured (wall-clock) thread scaling of the real runtime on the
/// ROADMAP's reference case.  Enforces the >= 1.5x @ 8 threads acceptance
/// bar whenever the hardware can physically deliver it.
fn panel_measured_scaling() {
    let (m, n, nb) = (768usize, 512usize, 64usize);
    let threads = [1usize, 2, 4, 8];
    let points = measure_ge2bnd_scaling(m, n, nb, &threads, 3);
    print_scaling_table(
        &format!("Fig 2 extra: measured GE2BND thread scaling, {m}x{n} nb={nb} (Greedy, BiDiag)"),
        &points,
    );
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let at8 = points
        .iter()
        .find(|p| p.threads == 8)
        .expect("8-thread point measured");
    if cores >= 8 {
        assert!(
            at8.speedup >= 1.5,
            "8-thread speedup {:.2}x below the 1.5x bar on a {cores}-core host",
            at8.speedup
        );
        println!(
            "# scaling check: PASS ({:.2}x at 8 threads, {cores} cores)\n",
            at8.speedup
        );
    } else {
        println!(
            "# scaling check: SKIPPED (host exposes {cores} core(s); {:.2}x at 8 threads)\n",
            at8.speedup
        );
    }
}

/// Measured (wall-clock) GE2VAL stage breakdown on the ROADMAP reference
/// case: which of GE2BND / BND2BD / BD2VAL the next perf PR should attack
/// is read off this table, not guessed.
fn panel_stage_breakdown() {
    let (m, n, nb) = (768usize, 512usize, 64usize);
    let s = measure_ge2val_stages(m, n, nb, 3);
    let rows = vec![
        vec![
            "GE2BND".to_string(),
            format!("{:.1}", s.ge2bnd * 1.0e3),
            format!("{:.1}%", s.share(s.ge2bnd)),
        ],
        vec![
            "BND2BD".to_string(),
            format!("{:.1}", s.bnd2bd * 1.0e3),
            format!("{:.1}%", s.share(s.bnd2bd)),
        ],
        vec![
            "BD2VAL".to_string(),
            format!("{:.1}", s.bd2val * 1.0e3),
            format!("{:.1}%", s.share(s.bd2val)),
        ],
        vec![
            "total".to_string(),
            format!("{:.1}", s.total() * 1.0e3),
            "100.0%".to_string(),
        ],
    ];
    print_tsv(
        &format!(
            "Fig 2 extra: measured GE2VAL stage breakdown, {m}x{n} nb={nb} (best of 3; BD2VAL = dqds)"
        ),
        &["stage", "time_ms", "share"],
        &rows,
    );
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let nb = 160;
    let square: Vec<(usize, usize)> = if full {
        vec![5000, 10000, 15000, 20000, 25000, 30000]
            .into_iter()
            .map(|n| (n, n))
            .collect()
    } else {
        vec![2000, 4000, 6000, 8000, 10000, 12000]
            .into_iter()
            .map(|n| (n, n))
            .collect()
    };
    let ts2000: Vec<(usize, usize)> = if full {
        vec![5000, 10000, 20000, 30000, 40000]
            .into_iter()
            .map(|m| (m, 2000))
            .collect()
    } else {
        vec![4000, 8000, 16000, 24000, 32000, 40000]
            .into_iter()
            .map(|m| (m, 2000))
            .collect()
    };
    let ts_wide: Vec<(usize, usize)> = if full {
        vec![10000, 20000, 40000, 60000, 80000, 100000]
            .into_iter()
            .map(|m| (m, 10000))
            .collect()
    } else {
        vec![8000, 12000, 16000, 24000, 32000]
            .into_iter()
            .map(|m| (m, 4000))
            .collect()
    };

    println!("# Figure 2 — shared-memory performance on a single 24-core node (nb = {nb})");
    println!("# (simulated with the calibrated DAG model; see EXPERIMENTS.md)\n");

    panel_ge2bnd(
        "Fig 2 top-left: GE2BND, square matrices (BiDiag)",
        &square,
        &[Algorithm::Bidiag],
        nb,
    );
    panel_ge2bnd(
        "Fig 2 top-middle: GE2BND, tall-skinny N=2000 (BiDiag vs R-BiDiag)",
        &ts2000,
        &[Algorithm::Bidiag, Algorithm::RBidiag],
        nb,
    );
    panel_ge2bnd(
        "Fig 2 top-right: GE2BND, tall-skinny wide panel (BiDiag vs R-BiDiag)",
        &ts_wide,
        &[Algorithm::Bidiag, Algorithm::RBidiag],
        nb,
    );
    panel_ge2val(
        "Fig 2 bottom-left: GE2VAL, square matrices",
        &square,
        Algorithm::Bidiag,
        nb,
    );
    panel_ge2val(
        "Fig 2 bottom-middle: GE2VAL, tall-skinny N=2000",
        &ts2000,
        Algorithm::RBidiag,
        nb,
    );
    panel_ge2val(
        "Fig 2 bottom-right: GE2VAL, tall-skinny wide panel",
        &ts_wide,
        Algorithm::RBidiag,
        nb,
    );
    panel_measured_scaling();
    panel_stage_breakdown();
    bidiag_bench::maybe_write_trace();
}
