//! One-stage bidiagonalization baseline (LAPACK `GEBRD` algorithm class).
//!
//! This is the algorithm implemented by LAPACK, ScaLAPACK (`PxGEBRD`) and
//! Intel MKL before the two-stage rewrite: reduce the dense matrix directly
//! to bidiagonal form with alternating column/row Householder reflectors.
//! Roughly half of its flops are matrix-vector products that cannot be
//! blocked, which is precisely why the paper's two-stage tiled approach wins
//! — reproducing that contrast is the role of this baseline.

use bidiag_kernels::gebd2::{gebd2, gebd2_flops, Bidiagonal};
use bidiag_kernels::svd::singular_values;
use bidiag_matrix::Matrix;

/// Reduce a copy of `a` to bidiagonal form with the one-stage algorithm.
pub fn one_stage_bidiagonalize(a: &Matrix) -> Bidiagonal {
    let mut w = if a.rows() >= a.cols() {
        a.clone()
    } else {
        a.transpose()
    };
    gebd2(&mut w)
}

/// Compute all singular values of `a` with the one-stage baseline
/// (GEBD2 + bisection), returned in non-increasing order.
pub fn one_stage_singular_values(a: &Matrix) -> Vec<f64> {
    let b = one_stage_bidiagonalize(a);
    let mut s = singular_values(&b);
    s.sort_by(|x, y| y.partial_cmp(x).unwrap());
    s
}

/// Flop count of the one-stage reduction (same as the reporting count used
/// in the figures).
pub fn one_stage_flops(m: usize, n: usize) -> f64 {
    if m >= n {
        gebd2_flops(m, n)
    } else {
        gebd2_flops(n, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bidiag_matrix::checks::singular_values_match;
    use bidiag_matrix::gen::{latms, SpectrumKind};

    #[test]
    fn recovers_prescribed_spectrum() {
        let (a, sigma) = latms(25, 14, &SpectrumKind::Geometric { cond: 1e5 }, 4);
        let s = one_stage_singular_values(&a);
        assert!(singular_values_match(&s, &sigma, 1e-11));
    }

    #[test]
    fn wide_input_is_transposed() {
        let (a, sigma) = latms(6, 20, &SpectrumKind::Arithmetic { cond: 10.0 }, 5);
        let s = one_stage_singular_values(&a);
        assert!(singular_values_match(&s, &sigma, 1e-11));
    }

    #[test]
    fn flop_count_is_symmetric() {
        assert_eq!(one_stage_flops(100, 40), one_stage_flops(40, 100));
    }
}
