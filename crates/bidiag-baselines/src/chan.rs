//! Chan's algorithm: QR factorization followed by one-stage
//! bidiagonalization of the R factor.
//!
//! Elemental switches to this algorithm when `m >= 1.2 n`; the paper's
//! R-BIDIAG is its tiled, tree-driven descendant.  We implement it directly
//! on dense matrices as a second independent baseline: Householder QR of the
//! `m x n` matrix, then GEBD2 of the square `n x n` R factor.

use bidiag_kernels::gebd2::gebd2;
use bidiag_kernels::qr::geqrt;
use bidiag_kernels::svd::singular_values;
use bidiag_kernels::Workspace;
use bidiag_matrix::Matrix;

/// Singular values of `a` via Chan's algorithm (QR + one-stage
/// bidiagonalization of R), in non-increasing order.
pub fn chan_singular_values(a: &Matrix) -> Vec<f64> {
    let mut w = if a.rows() >= a.cols() {
        a.clone()
    } else {
        a.transpose()
    };
    let n = w.cols();
    // Dense Householder QR (blocked); keep only the R factor.
    let _tf = geqrt(&mut w, &mut Workspace::new());
    let mut r = Matrix::zeros(n, n);
    for j in 0..n {
        for i in 0..=j.min(w.rows() - 1) {
            r[(i, j)] = w.get(i, j);
        }
    }
    let b = gebd2(&mut r);
    let mut s = singular_values(&b);
    s.sort_by(|x, y| y.partial_cmp(x).unwrap());
    s
}

/// Flop count of Chan's algorithm (`2 n^2 (m + n)` for `m >= n`).
pub fn chan_flops(m: usize, n: usize) -> f64 {
    let (m, n) = if m >= n {
        (m as f64, n as f64)
    } else {
        (n as f64, m as f64)
    };
    2.0 * n * n * (m + n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_stage::one_stage_singular_values;
    use bidiag_matrix::checks::singular_values_match;
    use bidiag_matrix::gen::{latms, SpectrumKind};

    #[test]
    fn recovers_prescribed_spectrum_tall() {
        let (a, sigma) = latms(40, 10, &SpectrumKind::Geometric { cond: 1e4 }, 6);
        let s = chan_singular_values(&a);
        assert!(singular_values_match(&s, &sigma, 1e-11));
    }

    #[test]
    fn agrees_with_one_stage_on_square() {
        let (a, _) = latms(15, 15, &SpectrumKind::Arithmetic { cond: 100.0 }, 7);
        let s1 = chan_singular_values(&a);
        let s2 = one_stage_singular_values(&a);
        assert!(singular_values_match(&s1, &s2, 1e-11));
    }

    #[test]
    fn flops_cheaper_than_one_stage_for_tall_matrices() {
        assert!(chan_flops(10_000, 1_000) < crate::one_stage::one_stage_flops(10_000, 1_000));
        assert!(chan_flops(1_000, 1_000) > crate::one_stage::one_stage_flops(1_000, 1_000));
    }
}
