//! # bidiag-baselines
//!
//! The competitor algorithms the paper compares against:
//!
//! * [`one_stage`] — the classical one-stage Golub–Kahan bidiagonalization
//!   (LAPACK `GEBRD` class: what MKL, ScaLAPACK and PLASMA's predecessors
//!   implement), runnable end to end for correctness comparisons,
//! * [`chan`] — Chan's algorithm: QR factorization first, then one-stage
//!   bidiagonalization of the R factor (the switch Elemental applies when
//!   `m >= 1.2 n`),
//! * [`perf_model`] — calibrated analytic throughput models of the
//!   competitor classes (MKL-like, ScaLAPACK-like, Elemental-like), used by
//!   the figure-regeneration harnesses where running the real proprietary
//!   libraries is impossible.  The models encode the structural property the
//!   paper highlights: one-stage bidiagonalization performs ~50% of its
//!   flops in memory-bound Level-2 BLAS and therefore saturates at a rate
//!   dictated by memory bandwidth, not by core count.

#![warn(missing_docs)]

pub mod chan;
pub mod one_stage;
pub mod perf_model;

pub use chan::chan_singular_values;
pub use one_stage::one_stage_singular_values;
pub use perf_model::{CompetitorClass, MachineSpec, PerfModel};
